# Build / verify entry points for the Nimble reproduction.
#
#   make            - build + vet + test (the tier-1 gate)
#   make chaos      - long fault-injection run (panics/OOM/stalls) under -race
#   make bench      - quick one-shot pass over every paper benchmark
#   make bench-full - the full harness via cmd/nimble-bench
#   make ci         - what the GitHub Actions workflow runs

GO ?= go

.PHONY: all build vet test race api-check staticcheck chaos chaos-smoke registry-smoke fuzz-smoke invoke-fuzz-smoke sse-fuzz-smoke verify-smoke bench bench-full serve-bench serve-bench-closed serve-bench-quick ci

all: build vet test

# Race-detect the public API (cancellation semantics live in the root
# package), the serving runtime, and the packages that shard work onto
# the worker pool (16-goroutine shared-executable tests live in vm/serve).
race:
	$(GO) test -race . ./internal/serve ./internal/vm ./internal/runtime ./internal/kernels ./internal/conformance

# The API boundary gates: no nimble/internal/... import outside internal/,
# and the exported surface matches testdata/api.golden.
api-check:
	@bad=$$(grep -rn '"nimble/internal/' cmd examples --include='*.go' || true); \
	if [ -n "$$bad" ]; then echo "internal imports outside internal/:"; echo "$$bad"; exit 1; fi
	$(GO) test . -run 'APISurfaceLock|NoInternalImports'

# staticcheck, when the binary is on PATH (CI installs it; the target is a
# no-op elsewhere so `make ci` works on a bare toolchain).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping"; fi

# Fault-injection chaos harness. The smoke variant is the same harness
# `go test ./...` runs (3 seeds, short); `make chaos` widens the seed list
# and iteration counts. Both run under -race: the harness's invariants
# (pool conservation, typed errors only, no cross-request contamination)
# are only meaningful if the run is also data-race-free.
chaos-smoke:
	$(GO) test -race -run 'TestChaos|TestShutdown' -count=1 .
chaos:
	NIMBLE_CHAOS_LONG=1 $(GO) test -race -run 'TestChaos|TestShutdown' -count=1 -timeout 20m -v .

# Multi-model registry battery under -race: swap-under-load (64 clients
# across invoke + streaming while weights hot-swap), canary determinism,
# shutdown/deploy races, and the registry chaos storm. Every response must
# be byte-identical to exactly one version's reference output.
registry-smoke:
	$(GO) test -race -run 'TestRegistry|TestCanary|TestChaosRegistrySwap' -count=1 -timeout 10m .

# 30-second differential fuzz: compiled VM vs eager reference on random
# IR programs. Counterexamples land in internal/conformance/testdata.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzVMConformance -fuzztime 30s ./internal/conformance

# The static verifier's own gate: the seeded-mutation corpus must all be
# caught, every registered model must verify clean, and a short
# conformance fuzz runs with NIMBLE_VERIFY=1 so every random program is
# also checked after every pass (the verifier's false-positive hunt).
verify-smoke:
	$(GO) test -count=1 ./internal/verify
	NIMBLE_VERIFY=1 $(GO) test -run '^$$' -fuzz FuzzVMConformance -fuzztime 30s ./internal/conformance

# 30-second fuzz of nimble-serve's JSON decode + invoke path: malformed
# bodies must answer 4xx JSON, never a 5xx or a crash.
invoke-fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzInvokeHandler -fuzztime 30s ./cmd/nimble-serve

# Same contract for the SSE streaming endpoint: open failures are plain
# JSON statuses; a committed stream is token events ending in done/error.
sse-fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzSSEHandler -fuzztime 30s ./cmd/nimble-serve

build:
	$(GO) build ./...

# Toolchain vet plus the repo's own analyzer suite (cmd/nimble-vet):
# panic discipline in request paths, ctx-threaded blocking waits, no
# retained planner-owned buffers in kernels, no allocating Eval inside
# EvalInto. The tree must stay at zero findings.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/nimble-vet

test:
	$(GO) test ./...

# Smoke pass: every benchmark once, with allocation counters — catches
# harness rot without paying for full measurement runs.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./...

# Full-scale numbers for EXPERIMENTS.md.
bench-full:
	$(GO) run ./cmd/nimble-bench

# Serving sweeps. serve-bench regenerates the committed BENCH_serve.json:
# the open-loop (Poisson-arrival) sweep, latency measured from the
# scheduled arrival, with the pinned-stream A/B baseline for the decoder.
# serve-bench-closed is the legacy saturating-clients sweep.
serve-bench:
	$(GO) run ./cmd/nimble-bench -serve -arrival poisson -qps 16,32,48,64,96 \
		-pin-streams -serve-workers 8 -serve-duration 2s -json BENCH_serve.json
serve-bench-closed:
	$(GO) run ./cmd/nimble-bench -serve -serve-workers 8
# Quick CI variant: short cells, enough to catch harness rot and produce an
# uploadable artifact without paying for full measurement windows.
serve-bench-quick:
	$(GO) run ./cmd/nimble-bench -serve -arrival poisson -qps 16,48 \
		-pin-streams -serve-workers 4 -serve-duration 300ms -json BENCH_serve.json

ci: all staticcheck race api-check chaos-smoke registry-smoke bench
