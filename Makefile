# Build / verify entry points for the Nimble reproduction.
#
#   make            - build + vet + test (the tier-1 gate)
#   make bench      - quick one-shot pass over every paper benchmark
#   make bench-full - the full harness via cmd/nimble-bench
#   make ci         - what the GitHub Actions workflow runs

GO ?= go

.PHONY: all build vet test race bench bench-full ci

all: build vet test

# Race-detect the packages that shard work onto the worker pool.
race:
	$(GO) test -race ./internal/runtime ./internal/kernels ./internal/vm

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Smoke pass: every benchmark once, with allocation counters — catches
# harness rot without paying for full measurement runs.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./...

# Full-scale numbers for EXPERIMENTS.md.
bench-full:
	$(GO) run ./cmd/nimble-bench

ci: all race bench
