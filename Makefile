# Build / verify entry points for the Nimble reproduction.
#
#   make            - build + vet + test (the tier-1 gate)
#   make bench      - quick one-shot pass over every paper benchmark
#   make bench-full - the full harness via cmd/nimble-bench
#   make ci         - what the GitHub Actions workflow runs

GO ?= go

.PHONY: all build vet test race api-check fuzz-smoke bench bench-full serve-bench ci

all: build vet test

# Race-detect the public API (cancellation semantics live in the root
# package), the serving runtime, and the packages that shard work onto
# the worker pool (16-goroutine shared-executable tests live in vm/serve).
race:
	$(GO) test -race . ./internal/serve ./internal/vm ./internal/runtime ./internal/kernels ./internal/conformance

# The API boundary gates: no nimble/internal/... import outside internal/,
# and the exported surface matches testdata/api.golden.
api-check:
	@bad=$$(grep -rn '"nimble/internal/' cmd examples --include='*.go' || true); \
	if [ -n "$$bad" ]; then echo "internal imports outside internal/:"; echo "$$bad"; exit 1; fi
	$(GO) test . -run 'APISurfaceLock|NoInternalImports'

# 30-second differential fuzz: compiled VM vs eager reference on random
# IR programs. Counterexamples land in internal/conformance/testdata.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzVMConformance -fuzztime 30s ./internal/conformance

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Smoke pass: every benchmark once, with allocation counters — catches
# harness rot without paying for full measurement runs.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./...

# Full-scale numbers for EXPERIMENTS.md.
bench-full:
	$(GO) run ./cmd/nimble-bench

# Closed-loop serving sweep: 1-64 clients over an 8-session pool.
serve-bench:
	$(GO) run ./cmd/nimble-bench -serve -serve-workers 8

ci: all race api-check bench
