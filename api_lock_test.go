package nimble_test

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update-api", false, "rewrite testdata/api.golden from the current surface")

// TestAPISurfaceLock pins the exported surface of the public packages
// (nimble, nimble/ir, nimble/tensor, nimble/models, nimble/bench): every
// exported const, var, func, type, and method signature is dumped into a
// golden file. An accidental export change — rename, signature drift,
// removal — fails here; a deliberate one is recorded with
//
//	go test . -run APISurfaceLock -update-api
func TestAPISurfaceLock(t *testing.T) {
	dirs := []string{".", "ir", "tensor", "models", "bench"}
	var dump bytes.Buffer
	for _, dir := range dirs {
		decls, err := exportedDecls(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		name := "nimble"
		if dir != "." {
			name = "nimble/" + dir
		}
		fmt.Fprintf(&dump, "# package %s\n", name)
		for _, d := range decls {
			fmt.Fprintln(&dump, d)
		}
		fmt.Fprintln(&dump)
	}
	got := dump.String()

	golden := filepath.Join("testdata", "api.golden")
	if *updateAPI {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden API dump (run with -update-api to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("public API surface changed.\n--- want (testdata/api.golden)\n+++ got\n%s\n"+
			"If the change is deliberate, regenerate with:\n  go test . -run APISurfaceLock -update-api",
			diffLines(string(want), got))
	}
}

// exportedDecls renders every exported top-level declaration of the
// package in dir, one line each, sorted.
func exportedDecls(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var out []string
	render := func(node any) string {
		var b bytes.Buffer
		_ = printer.Fprint(&b, fset, node)
		// One line per decl: collapse struct/interface bodies' newlines.
		s := strings.Join(strings.Fields(b.String()), " ")
		return s
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() {
						continue
					}
					if d.Recv != nil {
						recvType := render(d.Recv.List[0].Type)
						if !ast.IsExported(strings.TrimPrefix(recvType, "*")) {
							continue
						}
						out = append(out, fmt.Sprintf("method (%s) %s%s", recvType, d.Name.Name, renderFuncType(fset, d.Type)))
					} else {
						out = append(out, fmt.Sprintf("func %s%s", d.Name.Name, renderFuncType(fset, d.Type)))
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if !s.Name.IsExported() {
								continue
							}
							out = append(out, "type "+s.Name.Name+" "+render(s.Type))
						case *ast.ValueSpec:
							for _, name := range s.Names {
								if !name.IsExported() {
									continue
								}
								kw := "var"
								if d.Tok == token.CONST {
									kw = "const"
								}
								line := kw + " " + name.Name
								if s.Type != nil {
									line += " " + render(s.Type)
								}
								out = append(out, line)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

func renderFuncType(fset *token.FileSet, ft *ast.FuncType) string {
	var b bytes.Buffer
	_ = printer.Fprint(&b, fset, ft)
	return strings.TrimPrefix(strings.Join(strings.Fields(b.String()), " "), "func")
}

// diffLines is a minimal line diff for readable failures.
func diffLines(want, got string) string {
	wantSet := map[string]bool{}
	for _, l := range strings.Split(want, "\n") {
		wantSet[l] = true
	}
	gotSet := map[string]bool{}
	for _, l := range strings.Split(got, "\n") {
		gotSet[l] = true
	}
	var b strings.Builder
	for _, l := range strings.Split(want, "\n") {
		if !gotSet[l] {
			fmt.Fprintf(&b, "- %s\n", l)
		}
	}
	for _, l := range strings.Split(got, "\n") {
		if !wantSet[l] {
			fmt.Fprintf(&b, "+ %s\n", l)
		}
	}
	return b.String()
}

// TestNoInternalImportsOutsideInternal is the import-boundary gate: no
// package outside internal/ (cmd, examples, the public re-exports, the
// root) may import nimble/internal/... except the public packages
// themselves, whose whole job is re-exporting. For cmd/ and examples/ the
// rule is absolute.
func TestNoInternalImportsOutsideInternal(t *testing.T) {
	strict := []string{"cmd", "examples"} // zero internal imports allowed
	fset := token.NewFileSet()
	for _, root := range strict {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if strings.HasPrefix(p, "nimble/internal/") {
					t.Errorf("%s imports %s; cmd/ and examples/ must use the public nimble API", path, p)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
