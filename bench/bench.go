// Package bench re-exports Nimble's evaluation harness — one entry point
// per table/figure of the paper's §6 plus the closed-loop serving load
// generator — so cmd/nimble-bench (and any external harness) runs it
// without reaching into internal packages.
package bench

import (
	"time"

	ibench "nimble/internal/bench"
)

type (
	// Config parameterizes the paper-table harness.
	Config = ibench.Config
	// Table and the result types render the measured numbers.
	Table         = ibench.Table
	Table4Result  = ibench.Table4Result
	Figure3Result = ibench.Figure3Result
	MemPlanResult = ibench.MemPlanResult
	// ServeConfig / ServeResult drive the closed-loop serving load
	// generator; OpenLoopConfig / OpenLoopResult the Poisson-arrival
	// open-loop one.
	ServeConfig    = ibench.ServeConfig
	ServeResult    = ibench.ServeResult
	ServeRow       = ibench.ServeRow
	OpenLoopConfig = ibench.OpenLoopConfig
	OpenLoopResult = ibench.OpenLoopResult
	OpenLoopRow    = ibench.OpenLoopRow
	// DecodeResult / CoreResult are the streaming-decode benchmark and the
	// committed machine-readable perf snapshot.
	DecodeResult = ibench.DecodeResult
	DecodeRow    = ibench.DecodeRow
	CoreResult   = ibench.CoreResult
	CoreRow      = ibench.CoreRow
)

// Table1 regenerates Table 1 (LSTM latency across systems).
func Table1(c Config) (*Table, error) { return ibench.Table1(c) }

// Table2 regenerates Table 2 (Tree-LSTM latency).
func Table2(c Config) (*Table, error) { return ibench.Table2(c) }

// Table3 regenerates Table 3 (BERT latency).
func Table3(c Config) (*Table, error) { return ibench.Table3(c) }

// Table4 regenerates Table 4 (VM instruction overhead).
func Table4(c Config) (*Table4Result, error) { return ibench.Table4(c) }

// Figure3 regenerates Figure 3 (symbolic dispatch width sweep).
func Figure3(c Config) (*Figure3Result, error) { return ibench.Figure3(c) }

// MemPlan regenerates the memory-planning ablation.
func MemPlan(c Config) (*MemPlanResult, error) { return ibench.MemPlan(c) }

// Decode measures the autoregressive decoder: tokens/s and
// time-to-first-token through the streaming path, per entry.
func Decode(c Config) (*DecodeResult, error) { return ibench.Decode(c) }

// Core produces the committed machine-readable perf snapshot
// (BENCH_core.json): Nimble host per-token latency per model, quick config.
func Core(c Config) (*CoreResult, error) { return ibench.Core(c) }

// Serve runs the closed-loop concurrent-serving load generator.
func Serve(c ServeConfig) (*ServeResult, error) { return ibench.Serve(c) }

// OpenLoop runs the open-loop (Poisson-arrival) serving benchmark: fixed
// offered QPS per cell, latency measured from the scheduled arrival so
// queueing delay is counted (the honest latency-under-load instrument).
func OpenLoop(c OpenLoopConfig) (*OpenLoopResult, error) { return ibench.OpenLoop(c) }

// DefaultServeDuration is the measured window per serve cell when
// ServeConfig.Duration is zero.
const DefaultServeDuration = 400 * time.Millisecond
