// This file exposes one testing.B benchmark per table and figure of the
// paper's evaluation (§6), wrapping the internal/bench harness. Benchmarks
// run the harness in quick mode so `go test -bench=.` finishes in minutes;
// the full-scale numbers are produced by `go run ./cmd/nimble-bench` and
// recorded in EXPERIMENTS.md. Key quantities (speedups, overheads) are
// attached as custom benchmark metrics.
package nimble_test

import (
	"testing"

	"nimble/internal/bench"
)

func benchCfg() bench.Config { return bench.Config{Quick: true, Seed: 7} }

// BenchmarkTable1LSTM regenerates Table 1: LSTM latency across systems.
func BenchmarkTable1LSTM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Table1(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Speedup("PyTorch", "Nimble", "Intel CPU"), "x-vs-pytorch")
		b.ReportMetric(t.Speedup("TensorFlow", "Nimble", "Intel CPU"), "x-vs-tf")
		b.ReportMetric(t.Cells["Nimble"]["Intel CPU"].Value, "nimble-us/token")
	}
}

// BenchmarkTable2TreeLSTM regenerates Table 2: Tree-LSTM latency.
func BenchmarkTable2TreeLSTM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Table2(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Speedup("PyTorch", "Nimble", "Intel CPU"), "x-vs-pytorch")
		b.ReportMetric(t.Speedup("TF Fold", "Nimble", "Intel CPU"), "x-vs-fold")
	}
}

// BenchmarkTable3BERT regenerates Table 3: BERT latency.
func BenchmarkTable3BERT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := bench.Table3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Speedup("PyTorch", "Nimble", "Intel CPU"), "x-vs-pytorch")
		b.ReportMetric(t.Cells["Nimble"]["Intel CPU"].Value, "nimble-us/token")
	}
}

// BenchmarkTable4Overhead regenerates Table 4: dynamic-handling overhead vs
// a static graph runtime, with the VM profiler's kernel/other split.
func BenchmarkTable4Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Table4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		overhead := 100 * (float64(r.NimbleLatency) - float64(r.TVMLatency)) / float64(r.TVMLatency)
		b.ReportMetric(overhead, "overhead-%")
		b.ReportMetric(float64(r.OtherLatency.Microseconds()), "others-us")
	}
}

// BenchmarkFigure3SymbolicCodegen regenerates Figure 3: relative latency of
// dispatch/8..1 vs static codegen on the three BERT dense operators.
func BenchmarkFigure3SymbolicCodegen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Series["dispatch/8"][0], "dense1-dispatch8-%")
		b.ReportMetric(100*r.Series["no dispatch"][0], "dense1-nodispatch-%")
		b.ReportMetric(100*r.Series["no dispatch"][1], "dense2-nodispatch-%")
	}
}

// BenchmarkMemoryPlanning regenerates the §6.3 memory-planning study:
// allocation reduction on BERT and CV-model footprints vs the optimal
// static plan.
func BenchmarkMemoryPlanning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.MemPlan(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		reduction := 100 * float64(r.AllocsWithout-r.AllocsWith) / float64(r.AllocsWithout)
		b.ReportMetric(reduction, "alloc-reduction-%")
		worst := 0.0
		for _, f := range r.Footprints {
			if o := f.Overhead(); o > worst {
				worst = o
			}
		}
		b.ReportMetric(worst, "worst-footprint-overhead-%")
	}
}
