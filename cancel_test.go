package nimble

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"nimble/internal/models"
)

func mlpService(t *testing.T, cfg ServiceConfig) (*models.MLP, *Service) {
	t.Helper()
	m := models.NewMLP(models.MLPConfig{In: 8, Hidden: 16, Out: 4, Layers: 1, Seed: 9})
	p, err := Compile(m.Module)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := p.NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return m, svc
}

// TestCanceledBeforeAcquire: a pre-canceled context returns ErrCanceled
// promptly without consuming a session — the pool's free list and wait
// counters are untouched.
func TestCanceledBeforeAcquire(t *testing.T) {
	m, svc := mlpService(t, ServiceConfig{Workers: 1, DisableBatching: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := TensorValue(m.RandomBatch(rand.New(rand.NewSource(1)), 2))
	_, err := svc.Invoke(ctx, "main", in)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled invoke error = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v should also match context.Canceled", err)
	}
	st := svc.Stats().Pool
	if st.Waits != 0 || st.InFlight != 0 || st.Invocations != 0 {
		t.Errorf("pre-canceled invoke touched the pool: %+v", st)
	}
	// The session is still available: a normal invoke succeeds immediately.
	if _, err := svc.Invoke(context.Background(), "main", in); err != nil {
		t.Fatalf("pool unusable after canceled acquire: %v", err)
	}
}

// TestCancelWhileWaitingForSession: an invoke parked behind a busy pool is
// abandoned when its deadline fires, surfaces context.DeadlineExceeded, and
// does not leak or consume the session that is eventually released.
func TestCancelWhileWaitingForSession(t *testing.T) {
	m, svc := mlpService(t, ServiceConfig{Workers: 1, DisableBatching: true})
	in := TensorValue(m.RandomBatch(rand.New(rand.NewSource(2)), 2))

	// Hold the only session so the invoke below must queue.
	held, err := svc.pool.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = svc.Invoke(ctx, "main", in)
	waited := time.Since(start)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued invoke error = %v, want ErrCanceled ∧ DeadlineExceeded", err)
	}
	if waited > 5*time.Second {
		t.Fatalf("canceled acquire took %v; should return promptly at the deadline", waited)
	}
	svc.pool.Release(held)
	// The released session serves new work; the canceled waiter is gone.
	if _, err := svc.Invoke(context.Background(), "main", in); err != nil {
		t.Fatalf("pool wedged after canceled wait: %v", err)
	}
	if st := svc.Stats().Pool; st.InFlight != 0 {
		t.Errorf("session leaked: %+v", st)
	}
}

// TestCancelWhileQueuedInBatch: a request canceled during the batcher's
// collection window is withdrawn from the pending batch; the remaining
// requests still dispatch and succeed.
func TestCancelWhileQueuedInBatch(t *testing.T) {
	m, svc := mlpService(t, ServiceConfig{Workers: 1, MaxBatch: 8, MaxDelay: 300 * time.Millisecond})
	rng := rand.New(rand.NewSource(3))
	ctx := context.Background()

	cctx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	errs := make([]error, 3)
	inputs := make([]Value, 3)
	for i := range inputs {
		inputs[i] = TensorValue(m.RandomBatch(rng, 1+i))
	}
	// Three concurrent requests land in one collection window (MaxDelay is
	// huge); request 0 is canceled while queued.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reqCtx := ctx
			if i == 0 {
				reqCtx = cctx
			}
			_, errs[i] = svc.Invoke(reqCtx, "main", inputs[i])
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // all three are queued in the window
	cancel()
	wg.Wait()

	if !errors.Is(errs[0], ErrCanceled) || !errors.Is(errs[0], context.Canceled) {
		t.Errorf("canceled request error = %v, want ErrCanceled ∧ context.Canceled", errs[0])
	}
	for i := 1; i < 3; i++ {
		if errs[i] != nil {
			t.Errorf("batch-mate %d failed after peer cancellation: %v", i, errs[i])
		}
	}
	bst := svc.Stats().Batchers[0]
	if bst.Canceled != 1 {
		t.Errorf("batcher Canceled = %d, want 1 (withdrawn from pending batch)", bst.Canceled)
	}
	if bst.Coalesced != 2 {
		t.Errorf("batcher Coalesced = %d, want 2 (remaining batch dispatched merged)", bst.Coalesced)
	}
	if bst.Fallbacks != 0 {
		t.Errorf("batcher fell back %d times", bst.Fallbacks)
	}
}

// TestDeadlineExceededMidServe: a deadline that fires while the VM is
// executing stops the run at a call boundary and surfaces as
// context.DeadlineExceeded (wrapped in ErrCanceled). The session survives
// and serves the next request.
func TestDeadlineExceededMidServe(t *testing.T) {
	cfg := models.LSTMConfig{Input: 64, Hidden: 64, Layers: 1, Seed: 4}
	m := models.NewLSTM(cfg)
	p, err := Compile(m.Module)
	if err != nil {
		t.Fatal(err)
	}
	sess := p.NewSession()
	rng := rand.New(rand.NewSource(5))
	ctx := context.Background()

	// A sequence long enough that 1ms cannot possibly finish it: the
	// deadline must fire mid-recursion, at an OpInvoke boundary.
	longSeq := objValue(t, m, rng, 50000)
	dctx, cancel := context.WithTimeout(ctx, time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = sess.Invoke(dctx, "main", longSeq)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-serve deadline error = %v, want ErrCanceled ∧ DeadlineExceeded", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v; VM is not checking the context", elapsed)
	}

	// Session state is intact: a short sequence still runs.
	out, err := sess.Invoke(ctx, "main", objValue(t, m, rng, 4))
	if err != nil {
		t.Fatalf("session broken after mid-run cancel: %v", err)
	}
	if ot, ok := out.Tensor(); !ok || ot.Shape()[1] != cfg.Hidden {
		t.Errorf("post-cancel output wrong: %v", out)
	}
}

// objValue builds an n-step LSTM input as a public Value (mirrors
// models.RandomSequenceValue without importing the public package, which
// would create an import cycle in this white-box test).
func objValue(t *testing.T, m *models.LSTM, rng *rand.Rand, n int) Value {
	t.Helper()
	steps := m.RandomSteps(rng, n)
	v := ADTValue(m.NilC.Tag)
	for i := len(steps) - 1; i >= 0; i-- {
		v = ADTValue(m.ConsC.Tag, TensorValue(steps[i]), v)
	}
	return v
}
