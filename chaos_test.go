package nimble

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nimble/internal/faults"
	"nimble/internal/models"
	"nimble/internal/tensor"
)

// TestChaosService is the fault-injection harness the fault-tolerance
// layer is pinned by: a Service whose kernels panic, simulate OOM, and
// stall on a deterministic seeded schedule, hammered by concurrent clients
// whose requests are additionally canceled mid-flight at random. Run under
// -race (the ci and chaos Make targets do). The invariants:
//
//   - the process survives — no injected panic escapes a request;
//   - the pool conserves its size and leaks no checkout;
//   - every request resolves to a typed error (ErrInternal, ErrOverloaded,
//     ErrCanceled, ErrClosed) or to a result byte-identical to the
//     per-input reference — a success carrying another request's output
//     (cross-request contamination) fails the run;
//   - the service still serves correctly once the faults stop.
//
// The default run keeps seeds and iteration counts small enough for
// `go test ./...`; NIMBLE_CHAOS_LONG=1 (the `make chaos` target) widens
// both.
func TestChaosService(t *testing.T) {
	seeds := []uint64{1, 7, 42}
	iters := 60
	if os.Getenv("NIMBLE_CHAOS_LONG") != "" {
		seeds = []uint64{1, 2, 3, 5, 7, 11, 42, 1337}
		iters = 400
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runChaos(t, seed, iters)
		})
	}
}

func runChaos(t *testing.T, seed uint64, iters int) {
	const clients = 16
	mcfg := models.MLPConfig{In: 12, Hidden: 24, Out: 6, Layers: 2, Seed: 21}

	// Per-client distinct inputs with per-input reference outputs from a
	// clean, identically-seeded program: the contamination oracle.
	clean, err := Compile(models.NewMLP(mcfg).Module)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	m := models.NewMLP(mcfg)
	inputs := make([]*tensor.Tensor, clients)
	want := make([]*tensor.Tensor, clients)
	ref := clean.NewSession()
	for i := range inputs {
		inputs[i] = m.RandomBatch(rng, 1+i%4)
		out, err := ref.Invoke(context.Background(), "main", TensorValue(inputs[i]))
		if err != nil {
			t.Fatal(err)
		}
		want[i], _ = out.Tensor()
	}
	ref.Close()

	// The served program gets the faulty kernel table: injection must
	// happen in the window between Compile and NewService (adoption
	// freezes the executable).
	faulty, err := Compile(models.NewMLP(mcfg).Module)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(faults.Config{
		Seed:             seed,
		PanicPer1024:     40, // ~4% of kernel dispatches die
		AllocFailPer1024: 20, // ~2% simulate OOM
		SlowPer1024:      60, // ~6% stall 2ms
		CancelPer1024:    128,
	})
	if err := inj.WrapExecutable(faulty.exe); err != nil {
		t.Fatal(err)
	}
	const workers = 4
	svc, err := faulty.NewService(ServiceConfig{
		Workers:          workers,
		MaxQueue:         8,
		RequestTimeout:   2 * time.Second,
		BreakerThreshold: 20,
		BreakerCooldown:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var ok, internal, overloaded, canceled atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			in := TensorValue(inputs[g])
			for i := 0; i < iters; i++ {
				ctx := context.Background()
				cancelFn := context.CancelFunc(func() {})
				if after, doCancel := inj.CancelRequest(3 * time.Millisecond); doCancel {
					ctx, cancelFn = context.WithTimeout(ctx, after)
				}
				out, err := svc.Invoke(ctx, "main", in)
				cancelFn()
				switch {
				case err == nil:
					got, isTensor := out.Tensor()
					if !isTensor || got == nil {
						t.Errorf("client %d: success without a tensor result", g)
						return
					}
					if !got.AllClose(want[g], 1e-5, 1e-6) {
						t.Errorf("client %d iter %d: output differs from this input's reference — cross-request contamination", g, i)
						return
					}
					ok.Add(1)
				case errors.Is(err, ErrInternal):
					internal.Add(1)
				case errors.Is(err, ErrOverloaded):
					overloaded.Add(1)
				case errors.Is(err, ErrCanceled):
					canceled.Add(1)
				case errors.Is(err, ErrClosed):
					// Tolerated only during shutdown; nothing closes the
					// service mid-run, so this is a failure here.
					t.Errorf("client %d: ErrClosed while service open", g)
					return
				default:
					t.Errorf("client %d: untyped error escaped the fault layer: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := svc.Stats()
	if st.Pool.Workers != workers {
		t.Errorf("pool size drifted: %d, want %d", st.Pool.Workers, workers)
	}
	if st.Pool.InFlight != 0 {
		t.Errorf("leaked session checkouts: InFlight = %d", st.Pool.InFlight)
	}
	if ok.Load() == 0 {
		t.Error("no request ever succeeded — fault rates drowned the signal")
	}
	injected := inj.Stats()
	if injected.Panics+injected.AllocFails > 0 && internal.Load() == 0 && st.Pool.Quarantined == 0 {
		t.Error("panics were injected but none surfaced as ErrInternal or quarantine")
	}

	// The faults only fire on their schedule; after the storm the service
	// must still serve every input correctly (fresh VMs, no residue). Retry
	// through any tail-end injected faults.
	for g := 0; g < clients; g++ {
		var lastErr error
		for attempt := 0; attempt < 50; attempt++ {
			out, err := svc.Invoke(context.Background(), "main", TensorValue(inputs[g]))
			if err != nil {
				lastErr = err
				continue
			}
			got, _ := out.Tensor()
			if got == nil || !got.AllClose(want[g], 1e-5, 1e-6) {
				t.Fatalf("post-chaos output for input %d wrong", g)
			}
			lastErr = nil
			break
		}
		if lastErr != nil {
			t.Fatalf("service unusable after chaos (input %d): %v", g, lastErr)
		}
	}
	t.Logf("seed %d: ok=%d internal=%d overloaded=%d canceled=%d quarantined=%d injected=%+v",
		seed, ok.Load(), internal.Load(), overloaded.Load(), canceled.Load(), st.Pool.Quarantined, injected)
}

// TestChaosSchedulerStreams drives the fault injector through the
// continuous-batching scheduler: concurrent decode streams share sessions
// at iteration granularity, so an injected panic in one stream's step
// poisons a VM that other streams are mid-generation on. The invariants
// extend the invoke-path chaos run to interleaved decode:
//
//   - every stream resolves to a typed error or to the full reference
//     sequence for its own start token;
//   - tokens delivered before a mid-stream fault are a strict prefix of
//     that stream's reference — a foreign token means the scheduler leaked
//     state between co-resident streams;
//   - the pool conserves its size, and the service decodes correctly after
//     the storm.
func TestChaosSchedulerStreams(t *testing.T) {
	seeds := []uint64{3, 17}
	iters := 8
	if os.Getenv("NIMBLE_CHAOS_LONG") != "" {
		seeds = []uint64{3, 5, 17, 23, 99}
		iters = 40
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runStreamChaos(t, seed, iters)
		})
	}
}

func runStreamChaos(t *testing.T, seed uint64, iters int) {
	const clients = 8
	// A shrunk decoder: a full-size decode dispatches thousands of kernels,
	// so even a 0.4% panic rate kills virtually every stream. Eight steps of
	// a one-layer model keeps the per-stream dispatch count low enough that
	// both outcomes — clean finishes and mid-flight poisonings — occur.
	dcfg := models.DecoderConfig{Vocab: 64, Dim: 16, Layers: 1, Heads: 2, FFN: 32, MaxNew: 8, Seed: 42, Temp: 0.8}

	// Per-client reference sequences from a clean program: greedy decode is
	// deterministic, so any delivered token either matches the reference at
	// its position or proves contamination.
	clean, err := Compile(models.NewDecoder(dcfg).Module)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]int64, clients)
	ref := clean.NewSession()
	for i := range want {
		out, err := ref.Invoke(context.Background(), "generate", TensorValue(models.StartToken(int64(i+1))))
		if err != nil {
			t.Fatal(err)
		}
		wt, _ := out.Tensor()
		want[i] = append([]int64(nil), wt.I64()...)
	}
	ref.Close()

	faulty, err := Compile(models.NewDecoder(dcfg).Module)
	if err != nil {
		t.Fatal(err)
	}
	// A panic does not just kill its own stream: it poisons the session, so
	// up to Window-1 batch-mates die with it. Rate and window are tuned
	// together so both clean finishes and poisonings occur every run.
	inj := faults.NewInjector(faults.Config{
		Seed:          seed,
		PanicPer1024:  1,
		SlowPer1024:   8,
		CancelPer1024: 96,
	})
	if err := inj.WrapExecutable(faulty.exe); err != nil {
		t.Fatal(err)
	}
	const workers = 2
	svc, err := faulty.Serve(
		WithWorkers(workers),
		WithSchedulerWindow(2), // bound the poison blast radius
		WithRequestTimeout(5*time.Second),
		WithBreaker(1000, 10*time.Millisecond), // keep the gate out of the way; poison is the subject
	)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var ok, failed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			start := TensorValue(models.StartToken(int64(g + 1)))
			for i := 0; i < iters; i++ {
				ctx := context.Background()
				cancelFn := context.CancelFunc(func() {})
				if after, doCancel := inj.CancelRequest(2 * time.Millisecond); doCancel {
					ctx, cancelFn = context.WithTimeout(ctx, after)
				}
				st, err := svc.InvokeStream(ctx, "generate", start)
				if err != nil {
					cancelFn()
					if !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrCanceled) {
						t.Errorf("client %d: untyped open error: %v", g, err)
						return
					}
					failed.Add(1)
					continue
				}
				var got []int64
				for st.Next() {
					tt, _ := st.Value().Tensor()
					got = append(got, tt.I64()...)
				}
				err = st.Close()
				cancelFn()
				if len(got) > len(want[g]) {
					t.Errorf("client %d iter %d: %d tokens delivered, reference has %d", g, i, len(got), len(want[g]))
					return
				}
				if fmt.Sprint(got) != fmt.Sprint(want[g][:len(got)]) {
					t.Errorf("client %d iter %d: delivered tokens are not a prefix of this stream's reference — cross-stream contamination\n  got %v\n  ref %v", g, i, got, want[g][:len(got)])
					return
				}
				switch {
				case err == nil:
					if len(got) != len(want[g]) {
						t.Errorf("client %d iter %d: clean finish with %d of %d tokens", g, i, len(got), len(want[g]))
						return
					}
					ok.Add(1)
				case errors.Is(err, ErrInternal), errors.Is(err, ErrOverloaded), errors.Is(err, ErrCanceled):
					failed.Add(1)
				default:
					t.Errorf("client %d: untyped stream error escaped: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := svc.Stats()
	if st.Pool.Workers != workers {
		t.Errorf("pool size drifted: %d, want %d", st.Pool.Workers, workers)
	}
	if st.Pool.InFlight != 0 {
		t.Errorf("leaked session checkouts: InFlight = %d", st.Pool.InFlight)
	}
	if ok.Load() == 0 {
		t.Error("no stream ever completed — fault rates drowned the signal")
	}

	// After the storm: still decodes every reference exactly, through the
	// same scheduler path. Retry across tail-end faults.
	for g := 0; g < clients; g++ {
		var lastErr error
		for attempt := 0; attempt < 50; attempt++ {
			out, err := svc.Invoke(context.Background(), "generate", TensorValue(models.StartToken(int64(g+1))))
			if err != nil {
				lastErr = err
				continue
			}
			gt, _ := out.Tensor()
			if fmt.Sprint(gt.I64()) != fmt.Sprint(want[g]) {
				t.Fatalf("post-chaos decode for start %d wrong", g+1)
			}
			lastErr = nil
			break
		}
		if lastErr != nil {
			t.Fatalf("service unusable after stream chaos (start %d): %v", g+1, lastErr)
		}
	}
	t.Logf("seed %d: ok=%d failed=%d quarantined=%d injected=%+v",
		seed, ok.Load(), failed.Load(), st.Pool.Quarantined, inj.Stats())
}

// TestChaosBreakerDegradesHealth: a sustained panic storm trips the
// breaker, Health flips to degraded, and after the cooldown with faults
// off the service recovers to healthy.
func TestChaosBreakerDegradesHealth(t *testing.T) {
	mcfg := models.MLPConfig{In: 8, Hidden: 16, Out: 4, Layers: 1, Seed: 9}
	p, err := Compile(models.NewMLP(mcfg).Module)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(faults.Config{Seed: 99, PanicPer1024: 1024}) // every kernel call dies
	if err := inj.WrapExecutable(p.exe); err != nil {
		t.Fatal(err)
	}
	svc, err := p.NewService(ServiceConfig{
		Workers: 1, DisableBatching: true,
		BreakerThreshold: 3, BreakerCooldown: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	m := models.NewMLP(mcfg)
	in := TensorValue(m.RandomBatch(rand.New(rand.NewSource(1)), 2))
	var sawOverload bool
	for i := 0; i < 20; i++ {
		_, err := svc.Invoke(context.Background(), "main", in)
		if errors.Is(err, ErrOverloaded) {
			sawOverload = true
			break
		}
		if !errors.Is(err, ErrInternal) {
			t.Fatalf("invoke %d: %v, want ErrInternal until the breaker opens", i, err)
		}
	}
	if !sawOverload {
		t.Fatal("breaker never opened under a 100% panic storm")
	}
	h := svc.Health()
	if !h.Degraded {
		t.Fatal("Health not degraded while breaker open")
	}
	var found bool
	for _, e := range h.Entries {
		if e.Entry == "main" && !e.Healthy {
			found = true
		}
	}
	if !found {
		t.Errorf("degraded entry not reported: %+v", h.Entries)
	}

	// RetryAfter hint is usable.
	_, err = svc.Invoke(context.Background(), "main", in)
	if errors.Is(err, ErrOverloaded) {
		if d, ok := RetryAfter(err); !ok || d <= 0 {
			t.Errorf("RetryAfter(%v) = %v, %v; want a positive hint", err, d, ok)
		}
	}

	// The injector cannot be disarmed (rate is 1024/1024), but health must
	// self-report accurately over time: after the cooldown the breaker
	// half-opens and Healthy flips back until the next failure.
	time.Sleep(30 * time.Millisecond)
	if deg := svc.Health().Degraded; deg {
		t.Error("breaker still reports open after cooldown (half-open should read healthy)")
	}
}
