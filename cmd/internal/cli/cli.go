// Package cli is the shared plumbing of the nimble-* commands: one model
// registry and one set of -model/-exe flag semantics, so every tool
// builds, loads, and names models the same way. It consumes only the
// public nimble API.
package cli

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"nimble"
	"nimble/models"
	"nimble/tensor"
)

// Model couples a built model's module (already compiled into Program)
// with a synthetic input generator for benchmarks and smoke runs.
type Model struct {
	Name    string
	Program *nimble.Program
	// Entry is the model's primary entry function; empty means "main"
	// (the decoder's is "generate").
	Entry string
	// RandomInput draws one input for the primary entry; n scales it
	// (sequence length, tree leaves, or batch rows).
	RandomInput func(rng *rand.Rand, n int) nimble.Value
	// Describe is a one-line human description for logs.
	Describe string
}

// MainEntry returns the primary entry name ("main" unless overridden).
func (m *Model) MainEntry() string {
	if m.Entry == "" {
		return "main"
	}
	return m.Entry
}

// Names lists the registered model names for flag usage strings.
func Names() string { return "mlp | lstm | lstm2 | treelstm | bert | bert-base | decoder" }

// ModelFlag registers the shared -model flag.
func ModelFlag(def string) *string {
	return flag.String("model", def, "model: "+Names())
}

// ExeFlag registers the shared -exe flag (a serialized executable path;
// empty means compile in memory).
func ExeFlag(def string) *string {
	return flag.String("exe", def, "serialized executable path (written by nimble-compile)")
}

// Build constructs and compiles the named model with the given options.
func Build(name string, opts ...nimble.Option) (*Model, error) {
	m := &Model{Name: name}
	var err error
	switch name {
	case "mlp":
		mm := models.NewMLP(models.DefaultMLPConfig())
		m.Program, err = nimble.Compile(mm.Module, opts...)
		m.RandomInput = func(rng *rand.Rand, n int) nimble.Value {
			return nimble.TensorValue(mm.RandomBatch(rng, max(1, n)))
		}
		m.Describe = fmt.Sprintf("mlp %d->%dx%d->%d (row-independent head)",
			mm.Config.In, mm.Config.Hidden, mm.Config.Layers, mm.Config.Out)
	case "lstm", "lstm2":
		layers := 1
		if name == "lstm2" {
			layers = 2
		}
		mm := models.NewLSTM(models.DefaultLSTMConfig(layers))
		m.Program, err = nimble.Compile(mm.Module, opts...)
		m.RandomInput = func(rng *rand.Rand, n int) nimble.Value {
			return models.RandomSequenceValue(mm, rng, max(1, n))
		}
		m.Describe = fmt.Sprintf("lstm in=%d hidden=%d layers=%d (ADT list input)",
			mm.Config.Input, mm.Config.Hidden, layers)
	case "treelstm":
		mm := models.NewTreeLSTM(models.DefaultTreeLSTMConfig())
		m.Program, err = nimble.Compile(mm.Module, opts...)
		m.RandomInput = func(rng *rand.Rand, n int) nimble.Value {
			return models.TreeValue(mm, models.RandomTree(rng, max(1, n), mm.Config.Input))
		}
		m.Describe = fmt.Sprintf("treelstm in=%d hidden=%d (Tree ADT input)",
			mm.Config.Input, mm.Config.Hidden)
	case "bert", "bert-base":
		cfg := models.BERTReduced()
		if name == "bert-base" {
			cfg = models.BERTBase()
		}
		mm := models.NewBERT(cfg)
		m.Program, err = nimble.Compile(mm.Module, opts...)
		m.RandomInput = func(rng *rand.Rand, n int) nimble.Value {
			return nimble.TensorValue(mm.RandomIDs(rng, max(1, n)))
		}
		m.Describe = fmt.Sprintf("bert L=%d H=%d (dynamic sequence length)",
			cfg.Layers, cfg.Hidden)
	case "decoder":
		cfg := models.DefaultDecoderConfig()
		mm := models.NewDecoder(cfg)
		m.Program, err = nimble.Compile(mm.Module, opts...)
		m.Entry = "generate"
		m.RandomInput = func(rng *rand.Rand, n int) nimble.Value {
			return models.StartTokenValue(rng.Int63n(int64(cfg.Vocab)))
		}
		m.Describe = fmt.Sprintf("decoder vocab=%d dim=%d layers=%d (streaming autoregressive generation, %d tokens)",
			cfg.Vocab, cfg.Dim, cfg.Layers, cfg.MaxNew)
	default:
		return nil, fmt.Errorf("unknown -model %q (%s)", name, Names())
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Load reads a serialized executable from path and links it against the
// named model's kernels (the model is rebuilt deterministically, exactly
// like production relinking from a registry). The returned Model runs the
// loaded program.
func Load(name, path string, opts ...nimble.Option) (*Model, error) {
	m, err := Build(name, opts...)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := nimble.Load(f, m.Program)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	m.Program = p
	return m, nil
}

// BuildOrLoad compiles the model, or — when exe is non-empty — loads the
// serialized executable and relinks it against the model's kernels.
func BuildOrLoad(name, exe string, opts ...nimble.Option) (*Model, error) {
	if exe == "" {
		return Build(name, opts...)
	}
	return Load(name, exe, opts...)
}

// TensorShapeOK loosely validates a request tensor against a signature
// parameter: dtype must match and every static dimension must agree (Any
// dims are free). Used by generic servers for fast 400s before dispatch.
func TensorShapeOK(t *tensor.Tensor, p nimble.TypeInfo) error {
	if p.Kind != nimble.KindTensorType {
		return fmt.Errorf("parameter is %s, not a tensor", p.Kind)
	}
	if p.DType != "" && p.DType != t.DType().String() {
		return fmt.Errorf("dtype %s, want %s", t.DType(), p.DType)
	}
	if len(p.Shape) != t.Rank() {
		return fmt.Errorf("rank %d, want %d", t.Rank(), len(p.Shape))
	}
	for i, d := range p.Shape {
		if d != nimble.DimAny && d != t.Shape()[i] {
			return fmt.Errorf("dim %d is %d, want %d", i, t.Shape()[i], d)
		}
	}
	return nil
}
