// Command nimble-bench regenerates the paper's tables and figures (see
// DESIGN.md §4 for the experiment index). Host-CPU columns are measured;
// ARM/GPU columns come from the platform cost model and print "(sim)".
//
// With -serve it instead runs the serving load generator. The default
// arrival process is the closed loop (1..64 concurrent clients over a
// shared session pool, reporting p50/p99 latency and requests/sec per
// client count); -arrival poisson switches to the open loop — arrivals on
// an exponential clock at each -qps rate, latency measured from the
// scheduled arrival so queueing delay is counted. The shared -model flag
// filters either sweep to one model.
//
//	nimble-bench -serve                                  # closed loop
//	nimble-bench -serve -arrival poisson -qps 16,32,48   # open loop
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"nimble/bench"
	"nimble/cmd/internal/cli"
)

func main() {
	exp := flag.String("experiment", "all", "table1 | table2 | table3 | table4 | figure3 | memplan | decode | all")
	quick := flag.Bool("quick", false, "reduced sample counts and model sizes")
	seed := flag.Int64("seed", 7, "sampler seed")
	model := cli.ModelFlag("")
	serveMode := flag.Bool("serve", false, "run the concurrent-serving load generator instead of the paper tables")
	serveWorkers := flag.Int("serve-workers", 8, "session pool size for -serve")
	serveDur := flag.Duration("serve-duration", time.Second, "measured window per -serve cell")
	serveBatch := flag.Bool("serve-batch", true, "enable micro-batching for the MLP rows in -serve")
	arrival := flag.String("arrival", "closed", "with -serve: arrival process, closed (saturating clients) | poisson (open loop at fixed -qps)")
	qpsList := flag.String("qps", "", "with -arrival poisson: comma-separated offered rates, e.g. 16,32,48")
	pinStreams := flag.Bool("pin-streams", false, "with -arrival poisson: also run the decoder rows with the scheduler disabled (A/B baseline)")
	jsonPath := flag.String("json", "", "with -serve: also write the sweep as machine-readable JSON to this path; otherwise: a directory to write the committed BENCH_core.json and BENCH_decode.json snapshots into")
	flag.Parse()

	if *serveMode {
		var res interface{ Format() string }
		var err error
		switch *arrival {
		case "poisson":
			res, err = bench.OpenLoop(bench.OpenLoopConfig{
				Workers:    *serveWorkers,
				QPS:        parseQPS(*qpsList),
				Duration:   *serveDur,
				Seed:       *seed,
				Model:      *model,
				PinStreams: *pinStreams,
			})
		case "closed":
			res, err = bench.Serve(bench.ServeConfig{
				Workers:  *serveWorkers,
				Duration: *serveDur,
				Seed:     *seed,
				Batch:    *serveBatch,
				Model:    *model,
			})
		default:
			log.Fatalf("serve: unknown -arrival %q (closed | poisson)", *arrival)
		}
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
		fmt.Println(res.Format())
		if *jsonPath != "" {
			blob, err := json.MarshalIndent(res, "", "  ")
			if err != nil {
				log.Fatalf("serve: marshal: %v", err)
			}
			if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
				log.Fatalf("serve: %v", err)
			}
			log.Printf("serve: wrote %s", *jsonPath)
		}
		return
	}

	cfg := bench.Config{Quick: *quick, Seed: *seed}
	run := func(name string, f func(bench.Config) (fmt.Stringer, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		r, err := f(cfg)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(r)
	}
	run("table1", func(c bench.Config) (fmt.Stringer, error) { return wrap(bench.Table1(c)) })
	run("table2", func(c bench.Config) (fmt.Stringer, error) { return wrap(bench.Table2(c)) })
	run("table3", func(c bench.Config) (fmt.Stringer, error) { return wrap(bench.Table3(c)) })
	run("table4", func(c bench.Config) (fmt.Stringer, error) { return wrapT4(bench.Table4(c)) })
	run("figure3", func(c bench.Config) (fmt.Stringer, error) { return wrapF3(bench.Figure3(c)) })
	run("memplan", func(c bench.Config) (fmt.Stringer, error) { return wrapMP(bench.MemPlan(c)) })
	run("decode", func(c bench.Config) (fmt.Stringer, error) { return wrapDec(bench.Decode(c)) })

	// -json DIR regenerates the committed perf snapshots: BENCH_core.json
	// (per-model host µs/token, quick config) and BENCH_decode.json
	// (streaming decode tokens/s and TTFT).
	if *jsonPath != "" {
		core, err := bench.Core(cfg)
		if err != nil {
			log.Fatalf("core snapshot: %v", err)
		}
		writeSnapshot(filepath.Join(*jsonPath, "BENCH_core.json"), core)
		dec, err := bench.Decode(cfg)
		if err != nil {
			log.Fatalf("decode snapshot: %v", err)
		}
		writeSnapshot(filepath.Join(*jsonPath, "BENCH_decode.json"), dec)
	}
}

// parseQPS parses the -qps flag ("16,32,48"). Empty returns nil so the
// open-loop harness applies its default sweep.
func parseQPS(s string) []float64 {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v <= 0 {
			log.Fatalf("serve: bad -qps element %q (want positive numbers, e.g. 16,32,48)", part)
		}
		out = append(out, v)
	}
	return out
}

func writeSnapshot(path string, v any) {
	blob, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatalf("snapshot %s: %v", path, err)
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		log.Fatalf("snapshot: %v", err)
	}
	log.Printf("wrote %s", path)
}

type str string

func (s str) String() string { return string(s) }

func wrap(t *bench.Table, err error) (fmt.Stringer, error) {
	if err != nil {
		return nil, err
	}
	return str(t.Format()), nil
}
func wrapT4(t *bench.Table4Result, err error) (fmt.Stringer, error) {
	if err != nil {
		return nil, err
	}
	return str(t.Format()), nil
}
func wrapF3(t *bench.Figure3Result, err error) (fmt.Stringer, error) {
	if err != nil {
		return nil, err
	}
	return str(t.Format()), nil
}
func wrapMP(t *bench.MemPlanResult, err error) (fmt.Stringer, error) {
	if err != nil {
		return nil, err
	}
	return str(t.Format()), nil
}
func wrapDec(t *bench.DecodeResult, err error) (fmt.Stringer, error) {
	if err != nil {
		return nil, err
	}
	return str(t.Format()), nil
}
