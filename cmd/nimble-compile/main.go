// Command nimble-compile builds one of the built-in models and writes its
// serialized VM executable — the "Nimble executable" of Figure 2, containing
// platform-independent bytecode and the kernel name table. Running it later
// requires relinking kernels (nimble-run does this by rebuilding the same
// model deterministically).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nimble/internal/compiler"
	"nimble/internal/ir"
	"nimble/internal/models"
)

func main() {
	model := flag.String("model", "lstm", "model to compile: lstm | lstm2 | treelstm | bert | bert-base")
	out := flag.String("o", "model.nimble", "output executable path")
	target := flag.String("target", "cpu", "target device: cpu | gpu")
	dispatch := flag.Int("dispatch", 8, "symbolic dense dispatch width (1, 2, 4, 8)")
	flag.Parse()

	mod, err := buildModel(*model)
	if err != nil {
		log.Fatal(err)
	}
	opts := compiler.Options{}
	if *target == "gpu" {
		opts.Target = ir.GPU(0)
	}
	opts.Codegen.Dispatch = *dispatch
	res, err := compiler.Compile(mod, opts)
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	n, err := res.Exe.WriteTo(f)
	if err != nil {
		log.Fatalf("write: %v", err)
	}
	fmt.Printf("compiled %s: %d instructions, %d kernels, %d constants, %d bytes -> %s\n",
		*model, res.Stats.Instructions, res.Stats.Kernels, len(res.Exe.Consts), n, *out)
	fmt.Printf("fusion: %d groups (%d ops); allocs: %d static, %d dynamic; coalesced: %d -> %d\n",
		res.Stats.Fusion.Groups, res.Stats.Fusion.OpsFused,
		res.Stats.Alloc.StaticAllocs, res.Stats.Alloc.DynamicAllocs,
		res.Stats.Coalesce.Before, res.Stats.Coalesce.After)
}

func buildModel(name string) (*ir.Module, error) {
	switch name {
	case "lstm":
		return models.NewLSTM(models.DefaultLSTMConfig(1)).Module, nil
	case "lstm2":
		return models.NewLSTM(models.DefaultLSTMConfig(2)).Module, nil
	case "treelstm":
		return models.NewTreeLSTM(models.DefaultTreeLSTMConfig()).Module, nil
	case "bert":
		return models.NewBERT(models.BERTReduced()).Module, nil
	case "bert-base":
		return models.NewBERT(models.BERTBase()).Module, nil
	}
	return nil, fmt.Errorf("unknown model %q", name)
}
