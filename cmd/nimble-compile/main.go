// Command nimble-compile builds one of the built-in models and writes its
// serialized VM executable — the "Nimble executable" of Figure 2, containing
// platform-independent bytecode and the kernel name table. Running it later
// requires relinking kernels (nimble-run and nimble-serve do this by
// rebuilding the same model deterministically).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nimble"
	"nimble/cmd/internal/cli"
	"nimble/ir"
)

func main() {
	model := cli.ModelFlag("lstm")
	out := flag.String("o", "model.nimble", "output executable path")
	target := flag.String("target", "cpu", "target device: cpu | gpu")
	dispatch := flag.Int("dispatch", 8, "symbolic dense dispatch width (1, 2, 4, 8)")
	verify := flag.Bool("verify", false, "run the static invariant verifier after every pass and over the bytecode; violations fail the build")
	flag.Parse()

	opts := []nimble.Option{nimble.WithDispatchWidth(*dispatch)}
	if *target == "gpu" {
		opts = append(opts, nimble.WithTarget(ir.GPU(0)))
	}
	if *verify {
		opts = append(opts, nimble.WithVerify())
	}
	m, err := cli.Build(*model, opts...)
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	if *verify {
		fmt.Println("verify: all pass boundaries and the executable check clean")
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	n, err := m.Program.Save(f)
	if err != nil {
		log.Fatalf("write: %v", err)
	}
	st := m.Program.Stats()
	fmt.Printf("compiled %s: %d instructions, %d kernels, %d bytes -> %s\n",
		*model, st.Instructions, st.Kernels, n, *out)
	fmt.Printf("fusion: %d groups (%d ops); allocs: %d static, %d dynamic; coalesced: %d -> %d\n",
		st.FusionGroups, st.FusedOps, st.StaticAllocs, st.DynamicAllocs,
		st.StoragesBefore, st.StoragesAfter)
	fmt.Println("entrypoints:")
	for _, sig := range m.Program.Entrypoints() {
		fmt.Printf("  %s\n", sig)
	}
}
