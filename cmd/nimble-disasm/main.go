// Command nimble-disasm prints the bytecode of a serialized executable —
// functions, the 20-instruction ISA stream, kernel names, and constant-pool
// metadata.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nimble/internal/vm"
)

func main() {
	flag.Parse()
	path := "model.nimble"
	if flag.NArg() > 0 {
		path = flag.Arg(0)
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	exe, err := vm.ReadExecutable(f)
	if err != nil {
		log.Fatalf("load: %v", err)
	}
	fmt.Print(exe.Disassemble())
	fmt.Printf("kernels (%d):\n", len(exe.KernelNames))
	for i, k := range exe.KernelNames {
		fmt.Printf("  #%-3d %s\n", i, k)
	}
	fmt.Printf("constants: %d\n", len(exe.Consts))
}
