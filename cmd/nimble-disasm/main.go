// Command nimble-disasm prints the bytecode of an executable — functions,
// the 20-instruction ISA stream, kernel names, and constant-pool metadata.
// It takes the same flags as the other tools: -exe reads a serialized
// executable (a positional path still works), -model compiles the named
// model in memory and disassembles that.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nimble"
	"nimble/cmd/internal/cli"
)

func main() {
	model := cli.ModelFlag("")
	exe := cli.ExeFlag("")
	verify := flag.Bool("verify", false, "check the executable against the static invariant catalog; violations print and exit non-zero")
	flag.Parse()

	report := func(p *nimble.Program) {
		if !*verify {
			return
		}
		if err := p.Verify(); err != nil {
			log.Fatalf("%v", err)
		}
		fmt.Println("verify: executable checks clean")
	}

	if *model != "" {
		// Compile in memory and disassemble: full signatures available.
		m, err := cli.Build(*model)
		if err != nil {
			log.Fatal(err)
		}
		for _, sig := range m.Program.Entrypoints() {
			fmt.Printf("entry %s\n", sig)
		}
		fmt.Print(m.Program.Disassemble())
		report(m.Program)
		return
	}
	path := *exe
	if flag.NArg() > 0 {
		path = flag.Arg(0)
	}
	if path == "" {
		path = "model.nimble" // the historical default
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	// Load unlinked: kernels are not needed to print bytecode.
	p, err := nimble.Load(f, nil)
	if err != nil {
		log.Fatalf("load: %v", err)
	}
	fmt.Print(p.Disassemble())
	report(p)
}
