// Command nimble-run loads a serialized executable produced by
// nimble-compile, relinks its kernels by recompiling the same model, and
// runs one inference on synthetic input, printing latency and the VM
// profile.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"nimble/internal/compiler"
	"nimble/internal/models"
	"nimble/internal/vm"
)

func main() {
	model := flag.String("model", "lstm", "model the executable was compiled from: lstm | lstm2 | treelstm | bert")
	in := flag.String("exe", "model.nimble", "executable path")
	length := flag.Int("len", 26, "sequence length / tree size")
	profile := flag.Bool("profile", false, "print the VM instruction profile")
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	exe, err := vm.ReadExecutable(f)
	f.Close()
	if err != nil {
		log.Fatalf("load: %v", err)
	}

	rng := rand.New(rand.NewSource(1))
	var input vm.Object
	var registry map[string]vm.PackedFunc
	switch *model {
	case "lstm", "lstm2":
		layers := 1
		if *model == "lstm2" {
			layers = 2
		}
		m := models.NewLSTM(models.DefaultLSTMConfig(layers))
		res, err := compiler.Compile(m.Module, compiler.Options{})
		if err != nil {
			log.Fatal(err)
		}
		registry = res.Registry
		input = m.RandomSequence(rng, *length)
	case "treelstm":
		m := models.NewTreeLSTM(models.DefaultTreeLSTMConfig())
		res, err := compiler.Compile(m.Module, compiler.Options{})
		if err != nil {
			log.Fatal(err)
		}
		registry = res.Registry
		input = m.ToObject(models.RandomTree(rng, *length, m.Config.Input))
	case "bert":
		m := models.NewBERT(models.BERTReduced())
		res, err := compiler.Compile(m.Module, compiler.Options{})
		if err != nil {
			log.Fatal(err)
		}
		registry = res.Registry
		input = vm.NewTensorObj(m.RandomIDs(rng, *length))
	default:
		log.Fatalf("unknown model %q", *model)
	}
	if err := exe.LinkKernels(registry); err != nil {
		log.Fatalf("link: %v", err)
	}

	machine := vm.New(exe)
	prof := vm.NewProfiler()
	machine.SetProfiler(prof)
	start := time.Now()
	out, err := machine.Invoke("main", input)
	lat := time.Since(start)
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	if t, ok := out.(*vm.TensorObj); ok {
		fmt.Printf("output: %s in %v (%.1f µs/token)\n", t.T, lat,
			float64(lat.Microseconds())/float64(*length))
	} else {
		fmt.Printf("output: %T in %v\n", out, lat)
	}
	if *profile {
		fmt.Print(prof.Summary())
	}
}
