// Command nimble-run executes one of the built-in models once on synthetic
// input and prints the latency (and optionally the VM profile). With -exe
// it loads a serialized executable produced by nimble-compile and relinks
// its kernels by recompiling the same model; without it the model runs
// straight from an in-memory compile.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"nimble/cmd/internal/cli"
)

func main() {
	model := cli.ModelFlag("lstm")
	exe := cli.ExeFlag("")
	length := flag.Int("len", 26, "sequence length / tree size / batch rows")
	profile := flag.Bool("profile", false, "print the VM instruction profile")
	timeout := flag.Duration("timeout", 0, "per-invocation deadline (0 = none)")
	flag.Parse()

	m, err := cli.BuildOrLoad(*model, *exe)
	if err != nil {
		log.Fatal(err)
	}
	for _, sig := range m.Program.Entrypoints() {
		fmt.Printf("entry %s\n", sig)
	}

	sess := m.Program.NewSession()
	if *profile {
		sess.EnableProfiling()
	}
	input := m.RandomInput(rand.New(rand.NewSource(1)), *length)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	out, err := sess.Invoke(ctx, m.MainEntry(), input)
	lat := time.Since(start)
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	if t, ok := out.Tensor(); ok {
		fmt.Printf("output: %s in %v (%.1f µs/token)\n", t, lat,
			float64(lat.Microseconds())/float64(*length))
	} else {
		fmt.Printf("output: %s in %v\n", out.Kind(), lat)
	}
	if *profile {
		fmt.Print(sess.Profile())
	}
}
