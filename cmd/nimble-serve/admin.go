package main

import (
	"encoding/json"
	"fmt"
	"net/http"

	"nimble"
	"nimble/cmd/internal/cli"
)

// deployRequest is the /admin/deploy body. Model must be a registered
// model name (the same set -model accepts); the build is deterministic, so
// a deploy without "exe" reproduces the model with fresh weights exactly
// as -model does at startup. "exe" loads a serialized executable written
// by nimble-compile instead — the production path, where new weights
// arrive as artifacts.
type deployRequest struct {
	Model string `json:"model"`
	// Exe optionally names a serialized executable to load and relink
	// (empty = compile in memory).
	Exe string `json:"exe,omitempty"`
	// Canary deploys the build as a canary at this percentage of unpinned
	// traffic (1–99) instead of hot-swapping outright.
	Canary int `json:"canary,omitempty"`
}

// adminTarget is the body of /admin/promote and /admin/rollback.
type adminTarget struct {
	Model string `json:"model"`
}

// handleDeploy builds (or loads) the named model and deploys it through
// the registry: a plain deploy is a zero-downtime hot-swap — the previous
// version drains and is released once its in-flight work finishes — and a
// canary deploy starts a percentage rollout ended by promote/rollback.
func (s *server) handleDeploy(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var req deployRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Model == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf(`"model" is required (%s)`, cli.Names()))
		return
	}
	if req.Canary < 0 || req.Canary > 99 {
		httpError(w, http.StatusBadRequest, fmt.Errorf("canary %d outside [0,99]", req.Canary))
		return
	}
	m, err := cli.BuildOrLoad(req.Model, req.Exe)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	var opts []nimble.DeployOption
	if req.Canary > 0 {
		opts = append(opts, nimble.WithCanary(req.Canary))
	}
	ver, err := s.reg.Deploy(req.Model, m.Program, opts...)
	if err != nil {
		httpError(w, invokeStatus(err), err)
		return
	}
	state := "stable"
	if req.Canary > 0 {
		state = "canary"
	}
	writeJSON(w, map[string]any{
		"model": req.Model, "version": ver, "state": state, "percent": req.Canary,
	})
}

// handlePromote ends a canary rollout in its favor: the canary becomes the
// stable version and the old stable drains.
func (s *server) handlePromote(w http.ResponseWriter, r *http.Request) {
	s.endRollout(w, r, true)
}

// handleRollback ends a canary rollout against it: the canary drains and
// the stable version keeps serving untouched.
func (s *server) handleRollback(w http.ResponseWriter, r *http.Request) {
	s.endRollout(w, r, false)
}

func (s *server) endRollout(w http.ResponseWriter, r *http.Request, promote bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var req adminTarget
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Model == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf(`"model" is required`))
		return
	}
	var ver string
	var err error
	action := "rolled-back"
	if promote {
		ver, err = s.reg.Promote(req.Model)
		action = "promoted"
	} else {
		ver, err = s.reg.Rollback(req.Model)
	}
	if err != nil {
		httpError(w, invokeStatus(err), err)
		return
	}
	writeJSON(w, map[string]any{"model": req.Model, "version": ver, "state": action})
}
