// Command nimble-serve exposes a compiled model over HTTP: one frozen
// executable, a pool of VM sessions, and (for row-independent models) a
// micro-batcher that coalesces concurrent requests into single kernel
// dispatches.
//
//	nimble-serve -model mlp -workers 8 -batch
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/invoke -d '{"args":[{"dtype":"float32","shape":[1,64],"data":[...]}]}'
//	curl -s localhost:8080/stats
//
// Endpoints:
//
//	POST /invoke  {"entry":"main","args":[tensor...]} -> {"output":tensor,"latency_us":...}
//	              lstm accepts {"seq":[tensor,...]} (one [1,1,in] step per element)
//	GET  /healthz -> {"ok":true,...}
//	GET  /stats   -> pool + batcher counters
//
// Tensors travel as {"dtype":"float32|int64","shape":[...],"data":[...]}.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"time"

	"nimble/internal/compiler"
	"nimble/internal/models"
	"nimble/internal/serve"
	"nimble/internal/tensor"
	"nimble/internal/vm"
)

type tensorJSON struct {
	DType string    `json:"dtype"`
	Shape []int     `json:"shape"`
	Data  []float64 `json:"data"`
}

func toTensor(tj tensorJSON) (*tensor.Tensor, error) {
	n := 1
	for _, d := range tj.Shape {
		if d < 0 {
			return nil, fmt.Errorf("negative dim %d", d)
		}
		n *= d
	}
	if len(tj.Data) != n {
		return nil, fmt.Errorf("shape %v wants %d elements, got %d", tj.Shape, n, len(tj.Data))
	}
	switch tj.DType {
	case "", "float32":
		data := make([]float32, n)
		for i, v := range tj.Data {
			data[i] = float32(v)
		}
		return tensor.FromF32(data, tj.Shape...), nil
	case "int64":
		data := make([]int64, n)
		for i, v := range tj.Data {
			data[i] = int64(v)
		}
		return tensor.FromI64(data, tj.Shape...), nil
	}
	return nil, fmt.Errorf("unsupported dtype %q (float32 and int64 are served)", tj.DType)
}

func fromTensor(t *tensor.Tensor) tensorJSON {
	return tensorJSON{
		DType: t.DType().String(),
		Shape: t.Shape(),
		Data:  t.AsF64(),
	}
}

type invokeRequest struct {
	Entry string       `json:"entry"`
	Args  []tensorJSON `json:"args"`
	// Seq is the LSTM input form: a list of step tensors packed into the
	// model's cons-list ADT server-side.
	Seq []tensorJSON `json:"seq"`
}

type invokeResponse struct {
	Output    tensorJSON `json:"output"`
	LatencyUS float64    `json:"latency_us"`
}

// server binds the pool and optional batcher to the model-specific input
// adapter.
type server struct {
	model   string
	pool    *serve.Pool
	batcher *serve.Batcher
	// toArgs converts a decoded request into VM arguments.
	toArgs func(req invokeRequest) ([]vm.Object, error)
	start  time.Time
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	model := flag.String("model", "mlp", "mlp | lstm | bert")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "session pool size")
	batch := flag.Bool("batch", true, "micro-batch concurrent requests (row-independent models only)")
	maxBatch := flag.Int("max-batch", 16, "micro-batch size cap")
	maxDelay := flag.Duration("max-delay", 200*time.Microsecond, "micro-batch collection window")
	flag.Parse()

	s := &server{model: *model, start: time.Now()}
	switch *model {
	case "mlp":
		m := models.NewMLP(models.DefaultMLPConfig())
		res, err := compiler.Compile(m.Module, compiler.Options{})
		if err != nil {
			log.Fatal(err)
		}
		s.pool = mustPool(res, *workers)
		if *batch {
			s.batcher = serve.NewBatcher(s.pool, serve.BatchConfig{
				Entry: "main", MaxBatch: *maxBatch, MaxDelay: *maxDelay,
			})
		}
		s.toArgs = singleTensorArgs
		log.Printf("serving mlp %d->%d (x%d)->%d: batch rows along dim 0",
			m.Config.In, m.Config.Hidden, m.Config.Layers, m.Config.Out)

	case "bert":
		m := models.NewBERT(models.BERTReduced())
		res, err := compiler.Compile(m.Module, compiler.Options{})
		if err != nil {
			log.Fatal(err)
		}
		s.pool = mustPool(res, *workers)
		// BERT attention mixes sequence positions: concatenating two
		// requests' ids would change both answers, so no batcher here —
		// per-request dispatch over the pool.
		s.toArgs = singleTensorArgs
		log.Printf("serving bert L=%d H=%d: dynamic sequence length, per-request dispatch",
			m.Config.Layers, m.Config.Hidden)

	case "lstm":
		m := models.NewLSTM(models.DefaultLSTMConfig(1))
		res, err := compiler.Compile(m.Module, compiler.Options{})
		if err != nil {
			log.Fatal(err)
		}
		s.pool = mustPool(res, *workers)
		nilTag, consTag, input := m.NilC.Tag, m.ConsC.Tag, m.Config.Input
		s.toArgs = func(req invokeRequest) ([]vm.Object, error) {
			if len(req.Seq) == 0 {
				return nil, fmt.Errorf("lstm requests use {\"seq\": [tensor,...]}")
			}
			steps := make([]*tensor.Tensor, len(req.Seq))
			for i, tj := range req.Seq {
				t, err := toTensor(tj)
				if err != nil {
					return nil, fmt.Errorf("seq[%d]: %w", i, err)
				}
				if t.NumElements() != input {
					return nil, fmt.Errorf("seq[%d]: model consumes %d features, got %d", i, input, t.NumElements())
				}
				r, err := t.Reshape(1, input)
				if err != nil {
					return nil, err
				}
				steps[i] = r
			}
			return []vm.Object{models.SequenceToList(nilTag, consTag, steps)}, nil
		}
		log.Printf("serving lstm in=%d hidden=%d: ADT list input, per-request dispatch",
			m.Config.Input, m.Config.Hidden)

	default:
		log.Fatalf("unknown -model %q (mlp | lstm | bert)", *model)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /invoke", s.handleInvoke)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	log.Printf("nimble-serve: model=%s workers=%d batch=%v listening on %s",
		*model, *workers, s.batcher != nil, *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

func mustPool(res *compiler.Result, workers int) *serve.Pool {
	p, err := serve.NewPool(res.Exe, workers)
	if err != nil {
		log.Fatal(err)
	}
	return p
}

// singleTensorArgs adapts {"args":[tensor]} requests.
func singleTensorArgs(req invokeRequest) ([]vm.Object, error) {
	if len(req.Args) != 1 {
		return nil, fmt.Errorf("this model takes exactly 1 tensor arg, got %d", len(req.Args))
	}
	t, err := toTensor(req.Args[0])
	if err != nil {
		return nil, err
	}
	return []vm.Object{vm.NewTensorObj(t)}, nil
}

func (s *server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	// Kernels surface shape violations as panics; a malformed request must
	// come back as a 500, not a dropped connection.
	defer func() {
		if rec := recover(); rec != nil {
			httpError(w, http.StatusInternalServerError, fmt.Errorf("execution panic: %v", rec))
		}
	}()
	var req invokeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Entry == "" {
		req.Entry = "main"
	}
	args, err := s.toArgs(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	start := time.Now()
	var out *tensor.Tensor
	if s.batcher != nil && req.Entry == "main" && len(args) == 1 {
		if to, ok := args[0].(*vm.TensorObj); ok && to.T.Rank() >= 1 {
			out, err = s.batcher.Invoke(to.T)
		}
	}
	if out == nil && err == nil {
		var obj vm.Object
		obj, err = s.pool.Invoke(req.Entry, args...)
		if err == nil {
			to, ok := obj.(*vm.TensorObj)
			if !ok {
				err = fmt.Errorf("entry %q returned %T, which does not serialize", req.Entry, obj)
			} else {
				out = to.T
			}
		}
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, invokeResponse{
		Output:    fromTensor(out),
		LatencyUS: float64(time.Since(start).Microseconds()),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"ok":         true,
		"model":      s.model,
		"workers":    s.pool.Size(),
		"uptime_sec": time.Since(s.start).Seconds(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := map[string]any{"pool": s.pool.Stats()}
	if s.batcher != nil {
		resp["batcher"] = s.batcher.Stats()
	}
	writeJSON(w, resp)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
