// Command nimble-serve exposes compiled models over HTTP through the
// public nimble API: a multi-model Registry of versioned Programs (each
// serving through a session pool with automatic micro-batching for
// row-separable entries) and handlers built entirely on
// Program.Entrypoints() — no per-model adapters. Any entry of any model is
// invocable; argument decoding is driven by the entry's introspected
// signature.
//
//	nimble-serve -model mlp,bert,decoder -workers 8
//	curl -s localhost:8080/models
//	curl -s -X POST localhost:8080/invoke -d '{"model":"mlp","args":[{"dtype":"float32","shape":[1,64],"data":[...]}]}'
//	curl -s -X POST localhost:8080/admin/deploy -d '{"model":"mlp","canary":10}'
//	curl -s localhost:8080/stats
//
// Every model is addressable as "name" (the routed serving mix), as
// "name@latest" (the newest live version), or pinned as "name@vN". A
// request's "model" field defaults to the first -model entry, so the
// single-model invocation shape is unchanged from earlier versions.
//
// Endpoints:
//
//	POST /invoke  {"model":"bert","entry":"main","args":[value...]}
//	              -> {"output":value,"latency_us":...}
//	              A value is a tensor {"dtype","shape","data"} or an ADT
//	              {"adt":{"ctor":"Cons"|"tag":1,"fields":[value...]}}.
//	              {"seq":[tensor,...]} is accepted for entries whose sole
//	              parameter is a cons-list ADT (e.g. the LSTM).
//	              Optional scheduling hints: "priority" selects the lane
//	              (0 = most urgent, see -lanes), "deadline_budget_ms" sheds
//	              the request up front when the backlog makes it unmeetable.
//	              "route_key" pins the request's canary-split decision, so
//	              one user's session never flaps between weight versions.
//	POST /stream  same body; responds with Server-Sent Events, one flushed
//	              "token" event per value the entry emits through
//	              stream.emit (the decoder's per-token output), then a
//	              terminal "done" (with the final result) or "error" event.
//	              Open failures are plain status responses exactly like
//	              /invoke; mid-stream failures arrive as the "error" event.
//	POST /admin/deploy   {"model":"mlp","exe":"path","canary":10} builds (or
//	              loads with "exe") a fresh build of the named model and
//	              hot-swaps it in with zero downtime — or starts a canary
//	              rollout at the given percentage. Returns the new version.
//	POST /admin/promote  {"model":"mlp"} makes the canary stable; the old
//	              stable drains. 409 when no rollout is in progress.
//	POST /admin/rollback {"model":"mlp"} drops the canary; stable untouched.
//	GET  /models  -> every model: live versions (stable/canary, traffic
//	              percent, in-flight) + entry signatures (types, Any dims,
//	              ADT constructors, row-separability)
//	GET  /healthz -> {"ok":true,...}; 503 + "ok":false while any version of
//	              any model has an open circuit breaker (degraded)
//	GET  /stats   -> per model-version pool + batcher + admission-gate +
//	              scheduler counters, plus the shared storage tier
//	GET  /metrics -> the same counters in Prometheus text exposition format,
//	              labeled {model, version, entry}
//
// Errors map onto status codes by family (docs/operations.md):
//
//	400 malformed body / malformed model reference / ErrBadInput / ErrBadArity
//	404 ErrUnknownEntry / ErrUnknownModel (unknown name or pinned version)
//	409 ErrNoCanary (promote/rollback with no rollout in progress)
//	413 body over -max-body
//	429 ErrOverloaded (queue full, deadline unmeetable, breaker open) with
//	    a Retry-After header from the admission controller's estimate
//	500 ErrInternal (isolated VM/kernel panic; session quarantined)
//	503 ErrClosed (shutting down)   504 ErrCanceled (deadline/cancel)
//
// SIGINT/SIGTERM shut the server down gracefully: listeners stop, then the
// Registry drains every live version — in-flight AND already-admitted
// queued requests get -shutdown-timeout to complete; stragglers are
// rejected with 503, never left hanging.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"nimble"
	"nimble/cmd/internal/cli"
	"nimble/tensor"
)

type tensorJSON struct {
	DType string    `json:"dtype"`
	Shape []int     `json:"shape"`
	Data  []float64 `json:"data"`
}

// valueJSON is the wire form of a nimble.Value: exactly one of the tensor
// fields (DType/Shape/Data) or ADT / Tuple is set.
type valueJSON struct {
	DType string      `json:"dtype,omitempty"`
	Shape []int       `json:"shape,omitempty"`
	Data  []float64   `json:"data,omitempty"`
	ADT   *adtJSON    `json:"adt,omitempty"`
	Tuple []valueJSON `json:"tuple,omitempty"`
}

type adtJSON struct {
	// Ctor names the constructor (resolved against the parameter's ADT
	// signature); Tag may be given directly instead.
	Ctor   string      `json:"ctor,omitempty"`
	Tag    *int        `json:"tag,omitempty"`
	Fields []valueJSON `json:"fields,omitempty"`
}

// maxTensorElems bounds a decoded tensor (64M elements ≈ 256MB float32):
// a shape like [1<<30, 1<<30, 1<<30] must be rejected here, not overflow
// the element-count product into something len(Data) happens to equal.
const maxTensorElems = 1 << 26

func toTensor(tj tensorJSON) (*tensor.Tensor, error) {
	n := 1
	for _, d := range tj.Shape {
		if d < 0 {
			return nil, fmt.Errorf("negative dim %d", d)
		}
		if d > 0 && n > maxTensorElems/d {
			return nil, fmt.Errorf("shape %v exceeds %d elements", tj.Shape, maxTensorElems)
		}
		n *= d
	}
	if len(tj.Data) != n {
		return nil, fmt.Errorf("shape %v wants %d elements, got %d", tj.Shape, n, len(tj.Data))
	}
	switch tj.DType {
	case "", "float32":
		data := make([]float32, n)
		for i, v := range tj.Data {
			data[i] = float32(v)
		}
		return tensor.FromF32(data, tj.Shape...), nil
	case "int64":
		data := make([]int64, n)
		for i, v := range tj.Data {
			data[i] = int64(v)
		}
		return tensor.FromI64(data, tj.Shape...), nil
	}
	return nil, fmt.Errorf("unsupported dtype %q (float32 and int64 are served)", tj.DType)
}

func fromTensor(t *tensor.Tensor) tensorJSON {
	return tensorJSON{DType: t.DType().String(), Shape: t.Shape(), Data: t.AsF64()}
}

// toValue decodes one wire value against its signature parameter type.
func toValue(vj valueJSON, p nimble.TypeInfo) (nimble.Value, error) {
	switch {
	case vj.ADT != nil:
		if p.Kind != nimble.KindADTType || p.ADT == nil {
			return nimble.Value{}, fmt.Errorf("parameter is %s, not an ADT", p.Kind)
		}
		return toADTValue(*vj.ADT, p.ADT)
	case vj.Tuple != nil:
		if p.Kind != nimble.KindTupleType {
			return nimble.Value{}, fmt.Errorf("parameter is %s, not a tuple", p.Kind)
		}
		if len(vj.Tuple) != len(p.Fields) {
			return nimble.Value{}, fmt.Errorf("tuple has %d fields, want %d", len(vj.Tuple), len(p.Fields))
		}
		fields := make([]nimble.Value, len(vj.Tuple))
		for i, f := range vj.Tuple {
			v, err := toValue(f, p.Fields[i])
			if err != nil {
				return nimble.Value{}, fmt.Errorf("tuple[%d]: %w", i, err)
			}
			fields[i] = v
		}
		return nimble.TupleValue(fields...), nil
	default:
		// A tensor where the signature wants an ADT/tuple is a malformed
		// request: reject it here (400) instead of letting the VM trip on it.
		if p.Kind != nimble.KindTensorType && p.Kind != nimble.KindUnknownType {
			return nimble.Value{}, fmt.Errorf("parameter is %s, not a tensor", p.Kind)
		}
		t, err := toTensor(tensorJSON{DType: vj.DType, Shape: vj.Shape, Data: vj.Data})
		if err != nil {
			return nimble.Value{}, err
		}
		if p.Kind == nimble.KindTensorType {
			if err := cli.TensorShapeOK(t, p); err != nil {
				return nimble.Value{}, err
			}
		}
		return nimble.TensorValue(t), nil
	}
}

// toADTValue decodes an ADT wire value, resolving constructors by name or
// tag against the signature. Nested ADT fields whose signature carries
// name-only info (recursive types) reuse the root description.
func toADTValue(aj adtJSON, info *nimble.ADTInfo) (nimble.Value, error) {
	var ctor *nimble.CtorInfo
	for i := range info.Constructors {
		c := &info.Constructors[i]
		if (aj.Tag != nil && c.Tag == *aj.Tag) || (aj.Ctor != "" && c.Name == aj.Ctor) {
			ctor = c
			break
		}
	}
	if ctor == nil {
		return nimble.Value{}, fmt.Errorf("ADT %s has no constructor %q/tag %v", info.Name, aj.Ctor, aj.Tag)
	}
	if len(aj.Fields) != len(ctor.Fields) {
		return nimble.Value{}, fmt.Errorf("%s.%s takes %d fields, got %d", info.Name, ctor.Name, len(ctor.Fields), len(aj.Fields))
	}
	fields := make([]nimble.Value, len(aj.Fields))
	for i, f := range aj.Fields {
		ft := ctor.Fields[i]
		if ft.Kind == nimble.KindADTType && ft.ADT != nil && ft.ADT.Name == info.Name && ft.ADT.Constructors == nil {
			ft.ADT = info // recursive reference: reuse the full description
		}
		v, err := toValue(f, ft)
		if err != nil {
			return nimble.Value{}, fmt.Errorf("%s.%s field %d: %w", info.Name, ctor.Name, i, err)
		}
		fields[i] = v
	}
	return nimble.ADTValue(ctor.Tag, fields...), nil
}

func fromValue(v nimble.Value) valueJSON {
	if t, ok := v.Tensor(); ok {
		tj := fromTensor(t)
		return valueJSON{DType: tj.DType, Shape: tj.Shape, Data: tj.Data}
	}
	fields := make([]valueJSON, len(v.Fields()))
	for i, f := range v.Fields() {
		fields[i] = fromValue(f)
	}
	if v.Kind() == nimble.KindTuple {
		return valueJSON{Tuple: fields}
	}
	tag := v.Tag()
	return valueJSON{ADT: &adtJSON{Tag: &tag, Fields: fields}}
}

// listParam recognizes cons-list ADT parameters (the {"seq": ...} sugar):
// exactly two constructors, one nullary (nil) and one binary whose fields
// are a tensor and the list itself. Returns the nil/cons info.
func listParam(p nimble.TypeInfo) (nilCtor, consCtor *nimble.CtorInfo, elem nimble.TypeInfo, ok bool) {
	if p.Kind != nimble.KindADTType || p.ADT == nil || len(p.ADT.Constructors) != 2 {
		return nil, nil, nimble.TypeInfo{}, false
	}
	for i := range p.ADT.Constructors {
		c := &p.ADT.Constructors[i]
		switch len(c.Fields) {
		case 0:
			nilCtor = c
		case 2:
			if c.Fields[0].Kind == nimble.KindTensorType &&
				c.Fields[1].Kind == nimble.KindADTType &&
				c.Fields[1].ADT != nil && c.Fields[1].ADT.Name == p.ADT.Name {
				consCtor = c
				elem = c.Fields[0]
			}
		}
	}
	ok = nilCtor != nil && consCtor != nil
	return nilCtor, consCtor, elem, ok
}

// seqToList folds step tensors into the entry's cons-list value, reshaping
// each step to the constructor's declared element shape when the element
// counts agree (so a flat [300] step feeds a Tensor[(1, 300)] field).
func seqToList(seq []tensorJSON, p nimble.TypeInfo) (nimble.Value, error) {
	nilCtor, consCtor, elem, ok := listParam(p)
	if !ok {
		return nimble.Value{}, fmt.Errorf(`this entry does not take a list; use "args"`)
	}
	want := 1
	static := true
	for _, d := range elem.Shape {
		if d == nimble.DimAny {
			static = false
			break
		}
		want *= d
	}
	steps := make([]*tensor.Tensor, len(seq))
	for i, tj := range seq {
		t, err := toTensor(tj)
		if err != nil {
			return nimble.Value{}, fmt.Errorf("seq[%d]: %w", i, err)
		}
		if static {
			if t.NumElements() != want {
				return nimble.Value{}, fmt.Errorf("seq[%d]: element wants %d values (%v), got %d",
					i, want, elem.Shape, t.NumElements())
			}
			if t, err = t.Reshape(elem.Shape...); err != nil {
				return nimble.Value{}, fmt.Errorf("seq[%d]: %w", i, err)
			}
		}
		steps[i] = t
	}
	v := nimble.ADTValue(nilCtor.Tag)
	for i := len(steps) - 1; i >= 0; i-- {
		v = nimble.ADTValue(consCtor.Tag, nimble.TensorValue(steps[i]), v)
	}
	return v, nil
}

type invokeRequest struct {
	// Model addresses the serving target: "name", "name@latest", or a
	// pinned "name@vN". Empty means the server's default (first -model).
	Model string      `json:"model,omitempty"`
	Entry string      `json:"entry"`
	Args  []valueJSON `json:"args"`
	// Seq is list-entry sugar: step tensors packed into the entry's
	// cons-list parameter server-side.
	Seq []tensorJSON `json:"seq"`
	// Priority selects the request's scheduling lane (0 = most urgent,
	// the default; values past -lanes-1 clamp). Maps to nimble.WithPriority.
	Priority *int `json:"priority,omitempty"`
	// DeadlineBudgetMS gives the request this many milliseconds from
	// arrival to finish, tightening any client-side deadline; the admission
	// gate and scheduler shed it up front when the backlog already makes
	// the budget unmeetable. Maps to nimble.WithDeadlineBudget.
	DeadlineBudgetMS float64 `json:"deadline_budget_ms,omitempty"`
	// RouteKey pins the request's canary-split decision: within one canary
	// epoch every request carrying the same key routes to the same weight
	// version. Maps to nimble.WithRouteKey.
	RouteKey string `json:"route_key,omitempty"`
}

type invokeResponse struct {
	Output    valueJSON `json:"output"`
	LatencyUS float64   `json:"latency_us"`
}

type server struct {
	reg *nimble.Registry
	// defaultModel is the first -model entry: what an unaddressed request
	// (no "model" field) routes to.
	defaultModel string
	maxBody      int64
	start        time.Time
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	model := flag.String("model", "mlp", "comma-separated models to serve (each: "+cli.Names()+"); the first is the default target")
	exe := cli.ExeFlag("")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "session pool size")
	batch := flag.Bool("batch", true, "micro-batch row-separable entries")
	maxBatch := flag.Int("max-batch", 16, "micro-batch size cap")
	maxDelay := flag.Duration("max-delay", 200*time.Microsecond, "micro-batch collection window")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline (0 = none)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "drain window for in-flight and queued requests on SIGINT/SIGTERM")
	maxQueue := flag.Int("max-queue", 0, "per-entry admission queue bound (0 = 4×workers, negative = unbounded)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive internal faults opening an entry's circuit breaker (0 = default 8, negative = disabled)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "how long an open breaker sheds before probing (0 = default 1s)")
	lanes := flag.Int("lanes", 1, "priority lanes requests may select with the \"priority\" body field (lane 0 served first)")
	schedWindow := flag.Int("sched-window", 0, "streams one session interleaves under the continuous-batching scheduler (0 = default 8)")
	pinStreams := flag.Bool("pin-streams", false, "disable the scheduler: each stream pins a pooled session for its whole run")
	maxBody := flag.Int64("max-body", 32<<20, "request body size cap in bytes")
	flag.Parse()

	names := strings.Split(*model, ",")
	for i, n := range names {
		names[i] = strings.TrimSpace(n)
	}
	if len(names) > 1 && *exe != "" {
		log.Fatal("-exe applies to a single -model; deploy additional builds via /admin/deploy")
	}
	opts := []nimble.ServiceOption{
		nimble.WithWorkers(*workers),
		nimble.WithBatchWindow(*maxBatch, *maxDelay),
		nimble.WithMaxQueue(*maxQueue),
		nimble.WithRequestTimeout(*reqTimeout),
		nimble.WithBreaker(*breakerThreshold, *breakerCooldown),
		nimble.WithPriorityLanes(*lanes),
		nimble.WithSchedulerWindow(*schedWindow),
	}
	if !*batch {
		opts = append(opts, nimble.WithoutBatching())
	}
	if *pinStreams {
		opts = append(opts, nimble.WithPinnedStreams())
	}
	reg := nimble.NewRegistry(
		nimble.WithServeDefaults(opts...),
		nimble.WithDrainTimeout(*shutdownTimeout),
	)
	for _, name := range names {
		m, err := cli.BuildOrLoad(name, *exe)
		if err != nil {
			log.Fatal(err)
		}
		ver, err := reg.Deploy(name, m.Program)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("serving %s@%s: %s", name, ver, m.Describe)
		for _, sig := range m.Program.Entrypoints() {
			mode := "pool"
			if sig.RowSeparable && *batch {
				mode = "micro-batched"
			}
			log.Printf("  entry %s  [%s]", sig, mode)
		}
	}
	s := &server{reg: reg, defaultModel: names[0], maxBody: *maxBody, start: time.Now()}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /invoke", s.handleInvoke)
	mux.HandleFunc("POST /stream", s.handleStream)
	mux.HandleFunc("POST /admin/deploy", s.handleDeploy)
	mux.HandleFunc("POST /admin/promote", s.handlePromote)
	mux.HandleFunc("POST /admin/rollback", s.handleRollback)
	mux.HandleFunc("GET /models", s.handleModels)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	srv := &http.Server{Addr: *addr, Handler: mux}

	// Graceful shutdown: stop accepting, give in-flight requests the drain
	// window, then close the service (batcher drains, pool closes).
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("nimble-serve: models=%s workers=%d listening on %s", strings.Join(names, ","), *workers, *addr)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("nimble-serve: signal received, draining (timeout %v)", *shutdownTimeout)
	shCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	// One drain window covers both layers: the HTTP server stops accepting
	// and waits for handlers, then the Registry drains every live version
	// (batcher queues + pool waiters + open streams), rejecting stragglers
	// with ErrClosed when the window expires instead of hanging.
	if err := srv.Shutdown(shCtx); err != nil {
		log.Printf("nimble-serve: http shutdown: %v", err)
	}
	var invocations, errCount, quarantined int64
	models := reg.Models()
	if err := reg.Shutdown(shCtx); err != nil {
		log.Printf("nimble-serve: registry drain: %v", err)
	}
	for _, ms := range models {
		for _, vs := range ms.Versions {
			invocations += vs.Stats.Pool.Invocations
			errCount += vs.Stats.Pool.Errors
			quarantined += vs.Stats.Pool.Quarantined
		}
	}
	log.Printf("nimble-serve: drained; served %d invocations (%d errors, %d quarantined)", invocations, errCount, quarantined)
}

// decodeInvoke reads and validates an invoke/stream request body against
// the addressed model's entry signature, writing the error response itself
// on failure (ok == false means the response is already sent). The
// returned options carry the body's scheduling hints (priority lane,
// deadline budget, canary route key); model is the reference to route the
// invocation with.
func (s *server) decodeInvoke(w http.ResponseWriter, r *http.Request) (model, entry string, args []nimble.Value, opts []nimble.InvokeOption, ok bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	var req invokeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body over %d bytes", tooBig.Limit))
			return "", "", nil, nil, false
		}
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return "", "", nil, nil, false
	}
	if req.Model == "" {
		req.Model = s.defaultModel
	}
	if req.Entry == "" {
		req.Entry = "main"
	}
	// Resolve the reference now for signature-driven decoding: a malformed
	// reference is a 400, an unknown model or pinned version a 404 —
	// decided before any work is admitted.
	prog, err := s.reg.Program(req.Model)
	if err != nil {
		httpError(w, invokeStatus(err), err)
		return "", "", nil, nil, false
	}
	sig, err := prog.Entry(req.Entry)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return "", "", nil, nil, false
	}
	if req.Priority != nil {
		if *req.Priority < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("priority %d is negative; 0 is the most urgent lane", *req.Priority))
			return "", "", nil, nil, false
		}
		opts = append(opts, nimble.WithPriority(*req.Priority))
	}
	if req.DeadlineBudgetMS != 0 {
		if req.DeadlineBudgetMS < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("deadline_budget_ms %v is negative", req.DeadlineBudgetMS))
			return "", "", nil, nil, false
		}
		opts = append(opts, nimble.WithDeadlineBudget(time.Duration(req.DeadlineBudgetMS*float64(time.Millisecond))))
	}
	if req.RouteKey != "" {
		opts = append(opts, nimble.WithRouteKey(req.RouteKey))
	}
	switch {
	case req.Seq != nil:
		if len(sig.Params) != 1 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("%s takes %d args; \"seq\" needs a single list parameter", sig.Name, len(sig.Params)))
			return "", "", nil, nil, false
		}
		v, err := seqToList(req.Seq, sig.Params[0])
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return "", "", nil, nil, false
		}
		args = []nimble.Value{v}
	default:
		if len(req.Args) != len(sig.Params) {
			httpError(w, http.StatusBadRequest, fmt.Errorf("%s takes %d args, got %d", sig.Name, len(sig.Params), len(req.Args)))
			return "", "", nil, nil, false
		}
		args = make([]nimble.Value, len(req.Args))
		for i, a := range req.Args {
			v, err := toValue(a, sig.Params[i])
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("arg %d: %w", i, err))
				return "", "", nil, nil, false
			}
			args[i] = v
		}
	}
	return req.Model, req.Entry, args, opts, true
}

// writeInvokeError maps err onto its status code (with the Retry-After
// header for the overload family) and writes the JSON error body.
func writeInvokeError(w http.ResponseWriter, err error) {
	code := invokeStatus(err)
	if code == http.StatusTooManyRequests {
		// The admission controller's estimate becomes Retry-After,
		// rounded up so a sub-second hint is never 0.
		if d, ok := nimble.RetryAfter(err); ok {
			secs := int(math.Ceil(d.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
	}
	httpError(w, code, err)
}

func (s *server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	// Execution panics are recovered and typed inside the Service
	// (ErrInternal + session quarantine); this recover is only the decoder
	// backstop so a malformed request can never drop the connection.
	defer func() {
		if rec := recover(); rec != nil {
			httpError(w, http.StatusInternalServerError, fmt.Errorf("handler panic: %v", rec))
		}
	}()
	model, entry, args, opts, ok := s.decodeInvoke(w, r)
	if !ok {
		return
	}

	// The Service applies -request-timeout itself (WithRequestTimeout) when
	// the caller's context carries no deadline; r.Context() still propagates
	// client disconnects.
	start := time.Now()
	out, err := s.reg.InvokeOpts(r.Context(), model, entry, args, opts...)
	if err != nil {
		writeInvokeError(w, err)
		return
	}
	writeJSON(w, invokeResponse{
		Output:    fromValue(out),
		LatencyUS: float64(time.Since(start).Microseconds()),
	})
}

// handleStream is the SSE form of /invoke: the same request body, but the
// response is a text/event-stream delivering each value the entry emits
// through stream.emit (a decoder's tokens) as its own flushed event.
//
// The error contract splits at the moment the stream opens. Everything
// that can be decided synchronously — malformed body, unknown entry, bad
// arguments, admission shedding (429 + Retry-After), service closed —
// happens before any header is written and maps onto exactly the /invoke
// status codes. Once the open succeeds the response is committed as a 200
// event stream, and a mid-stream failure (isolated VM panic, client
// deadline, drain cutoff) arrives as a terminal "error" event carrying the
// status code it would have had, so clients always learn the outcome
// in-band. A successful stream ends with a "done" event carrying the
// entry's final result.
//
//	event: token   data: {"dtype":"int64","shape":[1],"data":[42]}
//	event: done    data: {"tokens":32,"latency_us":...,"output":{...}}
//	event: error   data: {"error":"...","status":500}
func (s *server) handleStream(w http.ResponseWriter, r *http.Request) {
	committed := false
	defer func() {
		if rec := recover(); rec != nil {
			if !committed {
				httpError(w, http.StatusInternalServerError, fmt.Errorf("handler panic: %v", rec))
			}
			// Mid-stream the connection is already an event stream; dropping
			// it is the only honest signal left.
		}
	}()
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		httpError(w, http.StatusNotImplemented, fmt.Errorf("streaming needs a flushable connection"))
		return
	}
	model, entry, args, opts, ok := s.decodeInvoke(w, r)
	if !ok {
		return
	}
	// Synchronous open: validation, gate admission, and queue submission
	// all resolve here, while a plain status response is still possible.
	st, err := s.reg.InvokeStreamOpts(r.Context(), model, entry, args, opts...)
	if err != nil {
		writeInvokeError(w, err)
		return
	}
	defer st.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	committed = true
	fl.Flush()

	start := time.Now()
	tokens := 0
	for st.Next() {
		writeSSE(w, "token", fromValue(st.Value()))
		fl.Flush()
		tokens++
	}
	if err := st.Err(); err != nil {
		// Too late for a status line; the terminal error event carries the
		// status the open path would have used.
		writeSSE(w, "error", map[string]any{"error": err.Error(), "status": invokeStatus(err)})
		fl.Flush()
		return
	}
	res, _ := st.Result()
	writeSSE(w, "done", map[string]any{
		"tokens":     tokens,
		"latency_us": float64(time.Since(start).Microseconds()),
		"output":     fromValue(res),
	})
	fl.Flush()
}

// writeSSE frames one server-sent event. The data payload is JSON, which
// never contains a raw newline, so a single data: line is always valid SSE.
func writeSSE(w http.ResponseWriter, event string, v any) {
	blob, err := json.Marshal(v)
	if err != nil {
		blob = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, blob)
}

// invokeStatus maps the public error families onto HTTP status codes —
// the contract documented in docs/operations.md. Order matters only for
// readability; the families are disjoint except ErrBadArity ⊂ ErrBadInput.
func invokeStatus(err error) int {
	switch {
	case errors.Is(err, nimble.ErrBadInput), errors.Is(err, nimble.ErrBadArity):
		// Validation errors match both sentinels; either way it is the
		// client's request, not the server's state.
		return http.StatusBadRequest
	case errors.Is(err, nimble.ErrUnknownEntry), errors.Is(err, nimble.ErrUnknownModel):
		// Unknown entry, unknown model name, or a pinned version that is
		// not (or no longer) deployed.
		return http.StatusNotFound
	case errors.Is(err, nimble.ErrNoCanary):
		// Promote/rollback against a model with no rollout in progress.
		return http.StatusConflict
	case errors.Is(err, nimble.ErrOverloaded):
		// Queue full, deadline unmeetable, or circuit breaker open.
		return http.StatusTooManyRequests
	case errors.Is(err, nimble.ErrCanceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, nimble.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		// ErrInternal (quarantined panic) and anything unclassified.
		return http.StatusInternalServerError
	}
}

func (s *server) handleModels(w http.ResponseWriter, _ *http.Request) {
	type versionJSON struct {
		Version  string `json:"version"`
		State    string `json:"state"`
		Percent  int    `json:"percent,omitempty"`
		InFlight int64  `json:"in_flight"`
	}
	type modelJSON struct {
		Name        string        `json:"name"`
		Versions    []versionJSON `json:"versions"`
		Entrypoints any           `json:"entrypoints"`
	}
	var out []modelJSON
	for _, ms := range s.reg.Models() {
		mj := modelJSON{Name: ms.Name}
		for _, vs := range ms.Versions {
			mj.Versions = append(mj.Versions, versionJSON{
				Version:  vs.Version,
				State:    string(vs.State),
				Percent:  vs.Percent,
				InFlight: vs.InFlight,
			})
		}
		if p, err := s.reg.Program(ms.Name); err == nil {
			mj.Entrypoints = p.Entrypoints()
		}
		out = append(out, mj)
	}
	writeJSON(w, map[string]any{"default_model": s.defaultModel, "models": out})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	// Degraded (some entry's circuit breaker open on any live version of
	// any model) answers 503 so load balancers stop routing here before
	// users notice; the body still says which model/version/entries are
	// sick.
	type versionHealth struct {
		Model    string `json:"model"`
		Version  string `json:"version"`
		State    string `json:"state"`
		Degraded bool   `json:"degraded"`
		Entries  any    `json:"entries"`
	}
	degraded := false
	var versions []versionHealth
	for _, ms := range s.reg.Models() {
		for _, vs := range ms.Versions {
			if vs.Health.Degraded {
				degraded = true
			}
			versions = append(versions, versionHealth{
				Model:    ms.Name,
				Version:  vs.Version,
				State:    string(vs.State),
				Degraded: vs.Health.Degraded,
				Entries:  vs.Health.Entries,
			})
		}
	}
	if degraded {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, map[string]any{
		"ok":         !degraded,
		"uptime_sec": time.Since(s.start).Seconds(),
		"versions":   versions,
	})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	type versionStats struct {
		Version string             `json:"version"`
		State   string             `json:"state"`
		Percent int                `json:"percent,omitempty"`
		Stats   nimble.ServiceStats `json:"stats"`
	}
	models := map[string][]versionStats{}
	for _, ms := range s.reg.Models() {
		for _, vs := range ms.Versions {
			models[ms.Name] = append(models[ms.Name], versionStats{
				Version: vs.Version,
				State:   string(vs.State),
				Percent: vs.Percent,
				Stats:   vs.Stats,
			})
		}
	}
	out := map[string]any{"models": models}
	if st, ok := s.reg.SharedStorageStats(); ok {
		out["shared_storage"] = st
	}
	writeJSON(w, out)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
