// Command nimble-serve exposes a compiled model over HTTP through the
// public nimble API: one frozen Program, a Service (session pool +
// automatic micro-batching for row-separable entries), and handlers built
// entirely on Program.Entrypoints() — no per-model adapters. Any entry of
// any model is invocable; argument decoding is driven by the entry's
// introspected signature.
//
//	nimble-serve -model mlp -workers 8
//	curl -s localhost:8080/models
//	curl -s -X POST localhost:8080/invoke -d '{"args":[{"dtype":"float32","shape":[1,64],"data":[...]}]}'
//	curl -s localhost:8080/stats
//
// Endpoints:
//
//	POST /invoke  {"entry":"main","args":[value...]} -> {"output":value,"latency_us":...}
//	              A value is a tensor {"dtype","shape","data"} or an ADT
//	              {"adt":{"ctor":"Cons"|"tag":1,"fields":[value...]}}.
//	              {"seq":[tensor,...]} is accepted for entries whose sole
//	              parameter is a cons-list ADT (e.g. the LSTM).
//	GET  /models  -> model name + every entry signature (types, Any dims,
//	              ADT constructors, row-separability)
//	GET  /healthz -> {"ok":true,...}
//	GET  /stats   -> pool + batcher counters
//
// SIGINT/SIGTERM shut the server down gracefully: listeners stop, in-flight
// requests get -shutdown-timeout to complete, the batcher drains, and the
// pool closes.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"nimble"
	"nimble/cmd/internal/cli"
	"nimble/tensor"
)

type tensorJSON struct {
	DType string    `json:"dtype"`
	Shape []int     `json:"shape"`
	Data  []float64 `json:"data"`
}

// valueJSON is the wire form of a nimble.Value: exactly one of the tensor
// fields (DType/Shape/Data) or ADT / Tuple is set.
type valueJSON struct {
	DType string      `json:"dtype,omitempty"`
	Shape []int       `json:"shape,omitempty"`
	Data  []float64   `json:"data,omitempty"`
	ADT   *adtJSON    `json:"adt,omitempty"`
	Tuple []valueJSON `json:"tuple,omitempty"`
}

type adtJSON struct {
	// Ctor names the constructor (resolved against the parameter's ADT
	// signature); Tag may be given directly instead.
	Ctor   string      `json:"ctor,omitempty"`
	Tag    *int        `json:"tag,omitempty"`
	Fields []valueJSON `json:"fields,omitempty"`
}

func toTensor(tj tensorJSON) (*tensor.Tensor, error) {
	n := 1
	for _, d := range tj.Shape {
		if d < 0 {
			return nil, fmt.Errorf("negative dim %d", d)
		}
		n *= d
	}
	if len(tj.Data) != n {
		return nil, fmt.Errorf("shape %v wants %d elements, got %d", tj.Shape, n, len(tj.Data))
	}
	switch tj.DType {
	case "", "float32":
		data := make([]float32, n)
		for i, v := range tj.Data {
			data[i] = float32(v)
		}
		return tensor.FromF32(data, tj.Shape...), nil
	case "int64":
		data := make([]int64, n)
		for i, v := range tj.Data {
			data[i] = int64(v)
		}
		return tensor.FromI64(data, tj.Shape...), nil
	}
	return nil, fmt.Errorf("unsupported dtype %q (float32 and int64 are served)", tj.DType)
}

func fromTensor(t *tensor.Tensor) tensorJSON {
	return tensorJSON{DType: t.DType().String(), Shape: t.Shape(), Data: t.AsF64()}
}

// toValue decodes one wire value against its signature parameter type.
func toValue(vj valueJSON, p nimble.TypeInfo) (nimble.Value, error) {
	switch {
	case vj.ADT != nil:
		if p.Kind != nimble.KindADTType || p.ADT == nil {
			return nimble.Value{}, fmt.Errorf("parameter is %s, not an ADT", p.Kind)
		}
		return toADTValue(*vj.ADT, p.ADT)
	case vj.Tuple != nil:
		if p.Kind != nimble.KindTupleType {
			return nimble.Value{}, fmt.Errorf("parameter is %s, not a tuple", p.Kind)
		}
		if len(vj.Tuple) != len(p.Fields) {
			return nimble.Value{}, fmt.Errorf("tuple has %d fields, want %d", len(vj.Tuple), len(p.Fields))
		}
		fields := make([]nimble.Value, len(vj.Tuple))
		for i, f := range vj.Tuple {
			v, err := toValue(f, p.Fields[i])
			if err != nil {
				return nimble.Value{}, fmt.Errorf("tuple[%d]: %w", i, err)
			}
			fields[i] = v
		}
		return nimble.TupleValue(fields...), nil
	default:
		// A tensor where the signature wants an ADT/tuple is a malformed
		// request: reject it here (400) instead of letting the VM trip on it.
		if p.Kind != nimble.KindTensorType && p.Kind != nimble.KindUnknownType {
			return nimble.Value{}, fmt.Errorf("parameter is %s, not a tensor", p.Kind)
		}
		t, err := toTensor(tensorJSON{DType: vj.DType, Shape: vj.Shape, Data: vj.Data})
		if err != nil {
			return nimble.Value{}, err
		}
		if p.Kind == nimble.KindTensorType {
			if err := cli.TensorShapeOK(t, p); err != nil {
				return nimble.Value{}, err
			}
		}
		return nimble.TensorValue(t), nil
	}
}

// toADTValue decodes an ADT wire value, resolving constructors by name or
// tag against the signature. Nested ADT fields whose signature carries
// name-only info (recursive types) reuse the root description.
func toADTValue(aj adtJSON, info *nimble.ADTInfo) (nimble.Value, error) {
	var ctor *nimble.CtorInfo
	for i := range info.Constructors {
		c := &info.Constructors[i]
		if (aj.Tag != nil && c.Tag == *aj.Tag) || (aj.Ctor != "" && c.Name == aj.Ctor) {
			ctor = c
			break
		}
	}
	if ctor == nil {
		return nimble.Value{}, fmt.Errorf("ADT %s has no constructor %q/tag %v", info.Name, aj.Ctor, aj.Tag)
	}
	if len(aj.Fields) != len(ctor.Fields) {
		return nimble.Value{}, fmt.Errorf("%s.%s takes %d fields, got %d", info.Name, ctor.Name, len(ctor.Fields), len(aj.Fields))
	}
	fields := make([]nimble.Value, len(aj.Fields))
	for i, f := range aj.Fields {
		ft := ctor.Fields[i]
		if ft.Kind == nimble.KindADTType && ft.ADT != nil && ft.ADT.Name == info.Name && ft.ADT.Constructors == nil {
			ft.ADT = info // recursive reference: reuse the full description
		}
		v, err := toValue(f, ft)
		if err != nil {
			return nimble.Value{}, fmt.Errorf("%s.%s field %d: %w", info.Name, ctor.Name, i, err)
		}
		fields[i] = v
	}
	return nimble.ADTValue(ctor.Tag, fields...), nil
}

func fromValue(v nimble.Value) valueJSON {
	if t, ok := v.Tensor(); ok {
		tj := fromTensor(t)
		return valueJSON{DType: tj.DType, Shape: tj.Shape, Data: tj.Data}
	}
	fields := make([]valueJSON, len(v.Fields()))
	for i, f := range v.Fields() {
		fields[i] = fromValue(f)
	}
	if v.Kind() == nimble.KindTuple {
		return valueJSON{Tuple: fields}
	}
	tag := v.Tag()
	return valueJSON{ADT: &adtJSON{Tag: &tag, Fields: fields}}
}

// listParam recognizes cons-list ADT parameters (the {"seq": ...} sugar):
// exactly two constructors, one nullary (nil) and one binary whose fields
// are a tensor and the list itself. Returns the nil/cons info.
func listParam(p nimble.TypeInfo) (nilCtor, consCtor *nimble.CtorInfo, elem nimble.TypeInfo, ok bool) {
	if p.Kind != nimble.KindADTType || p.ADT == nil || len(p.ADT.Constructors) != 2 {
		return nil, nil, nimble.TypeInfo{}, false
	}
	for i := range p.ADT.Constructors {
		c := &p.ADT.Constructors[i]
		switch len(c.Fields) {
		case 0:
			nilCtor = c
		case 2:
			if c.Fields[0].Kind == nimble.KindTensorType &&
				c.Fields[1].Kind == nimble.KindADTType &&
				c.Fields[1].ADT != nil && c.Fields[1].ADT.Name == p.ADT.Name {
				consCtor = c
				elem = c.Fields[0]
			}
		}
	}
	ok = nilCtor != nil && consCtor != nil
	return nilCtor, consCtor, elem, ok
}

// seqToList folds step tensors into the entry's cons-list value, reshaping
// each step to the constructor's declared element shape when the element
// counts agree (so a flat [300] step feeds a Tensor[(1, 300)] field).
func seqToList(seq []tensorJSON, p nimble.TypeInfo) (nimble.Value, error) {
	nilCtor, consCtor, elem, ok := listParam(p)
	if !ok {
		return nimble.Value{}, fmt.Errorf(`this entry does not take a list; use "args"`)
	}
	want := 1
	static := true
	for _, d := range elem.Shape {
		if d == nimble.DimAny {
			static = false
			break
		}
		want *= d
	}
	steps := make([]*tensor.Tensor, len(seq))
	for i, tj := range seq {
		t, err := toTensor(tj)
		if err != nil {
			return nimble.Value{}, fmt.Errorf("seq[%d]: %w", i, err)
		}
		if static {
			if t.NumElements() != want {
				return nimble.Value{}, fmt.Errorf("seq[%d]: element wants %d values (%v), got %d",
					i, want, elem.Shape, t.NumElements())
			}
			if t, err = t.Reshape(elem.Shape...); err != nil {
				return nimble.Value{}, fmt.Errorf("seq[%d]: %w", i, err)
			}
		}
		steps[i] = t
	}
	v := nimble.ADTValue(nilCtor.Tag)
	for i := len(steps) - 1; i >= 0; i-- {
		v = nimble.ADTValue(consCtor.Tag, nimble.TensorValue(steps[i]), v)
	}
	return v, nil
}

type invokeRequest struct {
	Entry string      `json:"entry"`
	Args  []valueJSON `json:"args"`
	// Seq is list-entry sugar: step tensors packed into the entry's
	// cons-list parameter server-side.
	Seq []tensorJSON `json:"seq"`
}

type invokeResponse struct {
	Output    valueJSON `json:"output"`
	LatencyUS float64   `json:"latency_us"`
}

type server struct {
	model   string
	svc     *nimble.Service
	timeout time.Duration
	start   time.Time
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	model := cli.ModelFlag("mlp")
	exe := cli.ExeFlag("")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "session pool size")
	batch := flag.Bool("batch", true, "micro-batch row-separable entries")
	maxBatch := flag.Int("max-batch", 16, "micro-batch size cap")
	maxDelay := flag.Duration("max-delay", 200*time.Microsecond, "micro-batch collection window")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline (0 = none)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "drain window for in-flight requests on SIGINT/SIGTERM")
	flag.Parse()

	m, err := cli.BuildOrLoad(*model, *exe)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := m.Program.NewService(nimble.ServiceConfig{
		Workers:         *workers,
		DisableBatching: !*batch,
		MaxBatch:        *maxBatch,
		MaxDelay:        *maxDelay,
	})
	if err != nil {
		log.Fatal(err)
	}
	s := &server{model: *model, svc: svc, timeout: *reqTimeout, start: time.Now()}
	log.Printf("serving %s", m.Describe)
	for _, sig := range m.Program.Entrypoints() {
		mode := "pool"
		if sig.RowSeparable && *batch {
			mode = "micro-batched"
		}
		log.Printf("  entry %s  [%s]", sig, mode)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /invoke", s.handleInvoke)
	mux.HandleFunc("GET /models", s.handleModels)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	srv := &http.Server{Addr: *addr, Handler: mux}

	// Graceful shutdown: stop accepting, give in-flight requests the drain
	// window, then close the service (batcher drains, pool closes).
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("nimble-serve: model=%s workers=%d listening on %s", *model, svc.Workers(), *addr)
		errCh <- srv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Printf("nimble-serve: signal received, draining (timeout %v)", *shutdownTimeout)
	shCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		log.Printf("nimble-serve: shutdown: %v", err)
	}
	svc.Close()
	st := svc.Stats().Pool
	log.Printf("nimble-serve: drained; served %d invocations (%d errors)", st.Invocations, st.Errors)
}

func (s *server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	// Kernels surface shape violations as panics; a malformed request must
	// come back as a 500, not a dropped connection.
	defer func() {
		if rec := recover(); rec != nil {
			httpError(w, http.StatusInternalServerError, fmt.Errorf("execution panic: %v", rec))
		}
	}()
	var req invokeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Entry == "" {
		req.Entry = "main"
	}
	sig, err := s.svc.Program().Entry(req.Entry)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	var args []nimble.Value
	switch {
	case req.Seq != nil:
		if len(sig.Params) != 1 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("%s takes %d args; \"seq\" needs a single list parameter", sig.Name, len(sig.Params)))
			return
		}
		v, err := seqToList(req.Seq, sig.Params[0])
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		args = []nimble.Value{v}
	default:
		if len(req.Args) != len(sig.Params) {
			httpError(w, http.StatusBadRequest, fmt.Errorf("%s takes %d args, got %d", sig.Name, len(sig.Params), len(req.Args)))
			return
		}
		args = make([]nimble.Value, len(req.Args))
		for i, a := range req.Args {
			v, err := toValue(a, sig.Params[i])
			if err != nil {
				httpError(w, http.StatusBadRequest, fmt.Errorf("arg %d: %w", i, err))
				return
			}
			args[i] = v
		}
	}

	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	start := time.Now()
	out, err := s.svc.Invoke(ctx, req.Entry, args...)
	if err != nil {
		switch {
		case errors.Is(err, nimble.ErrCanceled):
			httpError(w, http.StatusGatewayTimeout, err)
		case errors.Is(err, nimble.ErrClosed):
			httpError(w, http.StatusServiceUnavailable, err)
		default:
			httpError(w, http.StatusInternalServerError, err)
		}
		return
	}
	writeJSON(w, invokeResponse{
		Output:    fromValue(out),
		LatencyUS: float64(time.Since(start).Microseconds()),
	})
}

func (s *server) handleModels(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"model":       s.model,
		"workers":     s.svc.Workers(),
		"entrypoints": s.svc.Program().Entrypoints(),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]any{
		"ok":         true,
		"model":      s.model,
		"workers":    s.svc.Workers(),
		"uptime_sec": time.Since(s.start).Seconds(),
	})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.svc.Stats())
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
