package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"nimble"
	"nimble/cmd/internal/cli"
	"nimble/models"
)

var (
	testSrvOnce sync.Once
	testSrv     *server
	testSrvErr  error
)

// testServer compiles a small MLP once and serves it through a registry
// (deployed as mlp@v1); handler tests and the fuzz target share it.
func testServer(t testing.TB) *server {
	t.Helper()
	testSrvOnce.Do(func() {
		m := models.NewMLP(models.MLPConfig{In: 8, Hidden: 16, Out: 4, Layers: 1, Seed: 3})
		p, err := nimble.Compile(m.Module)
		if err != nil {
			testSrvErr = err
			return
		}
		reg := nimble.NewRegistry(nimble.WithServeDefaults(nimble.WithWorkers(2), nimble.WithPriorityLanes(2)))
		if _, err := reg.Deploy("mlp", p); err != nil {
			testSrvErr = err
			return
		}
		testSrv = &server{reg: reg, defaultModel: "mlp", maxBody: 1 << 20, start: time.Now()}
	})
	if testSrvErr != nil {
		t.Fatal(testSrvErr)
	}
	return testSrv
}

func postInvoke(t testing.TB, s *server, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/invoke", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.handleInvoke(w, req)
	return w
}

func validBody(rows int) []byte {
	data := make([]float64, rows*8)
	for i := range data {
		data[i] = float64(i%7) * 0.25
	}
	b, _ := json.Marshal(map[string]any{
		"entry": "main",
		"args":  []map[string]any{{"dtype": "float32", "shape": []int{rows, 8}, "data": data}},
	})
	return b
}

var (
	testDecOnce sync.Once
	testDec     *server
	testDecErr  error
)

// testDecoderServer serves the streaming decoder model through a registry
// (deployed as decoder@v1); SSE tests and the SSE fuzz target share it.
func testDecoderServer(t testing.TB) *server {
	t.Helper()
	testDecOnce.Do(func() {
		p, err := nimble.Compile(models.NewDecoder(models.DefaultDecoderConfig()).Module)
		if err != nil {
			testDecErr = err
			return
		}
		reg := nimble.NewRegistry(nimble.WithServeDefaults(
			nimble.WithWorkers(2), nimble.WithoutBatching(), nimble.WithPriorityLanes(2)))
		if _, err := reg.Deploy("decoder", p); err != nil {
			testDecErr = err
			return
		}
		testDec = &server{reg: reg, defaultModel: "decoder", maxBody: 1 << 20, start: time.Now()}
	})
	if testDecErr != nil {
		t.Fatal(testDecErr)
	}
	return testDec
}

func postStream(t testing.TB, s *server, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/stream", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.handleStream(w, req)
	return w
}

// sseEvents parses an SSE body into (event, data) pairs, failing on any
// line that is not event:/data:/blank.
func sseEvents(t testing.TB, body string) [][2]string {
	t.Helper()
	var out [][2]string
	var event string
	for _, line := range strings.Split(body, "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			out = append(out, [2]string{event, strings.TrimPrefix(line, "data: ")})
		default:
			t.Fatalf("malformed SSE line %q in body:\n%s", line, body)
		}
	}
	return out
}

// TestInvokeHandlerStatusMapping: each rejection class lands on its
// documented status code, and a valid request succeeds.
func TestInvokeHandlerStatusMapping(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"valid", string(validBody(2)), http.StatusOK},
		{"garbage body", `{"entry": "main", "args": [`, http.StatusBadRequest},
		{"not json", `hello`, http.StatusBadRequest},
		{"unknown entry", `{"entry":"nope","args":[]}`, http.StatusNotFound},
		{"wrong arity", `{"entry":"main","args":[]}`, http.StatusBadRequest},
		{"wrong dtype", `{"args":[{"dtype":"float64","shape":[1,8],"data":[0,0,0,0,0,0,0,0]}]}`, http.StatusBadRequest},
		{"shape/data mismatch", `{"args":[{"dtype":"float32","shape":[1,8],"data":[1,2]}]}`, http.StatusBadRequest},
		{"negative dim", `{"args":[{"dtype":"float32","shape":[-1,8],"data":[]}]}`, http.StatusBadRequest},
		{"overflowing shape", `{"args":[{"dtype":"float32","shape":[1073741824,1073741824,1073741824],"data":[]}]}`, http.StatusBadRequest},
		{"wrong static dim", `{"args":[{"dtype":"float32","shape":[1,9],"data":[0,0,0,0,0,0,0,0,0]}]}`, http.StatusBadRequest},
		{"seq on non-list entry", `{"entry":"main","seq":[{"dtype":"float32","shape":[1,8],"data":[0,0,0,0,0,0,0,0]}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postInvoke(t, s, []byte(tc.body))
			if w.Code != tc.want {
				t.Fatalf("status = %d, want %d (body %s)", w.Code, tc.want, w.Body.String())
			}
			var resp map[string]any
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("response is not JSON: %v", err)
			}
			if tc.want != http.StatusOK {
				if _, ok := resp["error"]; !ok {
					t.Errorf("error response carries no error field: %s", w.Body.String())
				}
			}
		})
	}
}

// TestInvokeBodyCap: a body over -max-body answers 413, not a decode 400
// or a dropped connection.
func TestInvokeBodyCap(t *testing.T) {
	s := testServer(t)
	huge := append([]byte(`{"args":[{"data":[`), bytes.Repeat([]byte("1,"), 1<<20)...)
	huge = append(huge, []byte(`1]}]}`)...)
	w := postInvoke(t, s, huge)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", w.Code)
	}
}

// TestInvokeStatusFamilies: the documented error→status contract, pinned
// against wrapped members of each public family.
func TestInvokeStatusFamilies(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("x: %w", nimble.ErrBadInput), http.StatusBadRequest},
		{fmt.Errorf("x: %w", nimble.ErrBadArity), http.StatusBadRequest},
		{fmt.Errorf("x: %w", nimble.ErrUnknownEntry), http.StatusNotFound},
		{fmt.Errorf("x: %w", nimble.ErrUnknownModel), http.StatusNotFound},
		{fmt.Errorf("x: %w", nimble.ErrNoCanary), http.StatusConflict},
		{fmt.Errorf("x: %w", nimble.ErrOverloaded), http.StatusTooManyRequests},
		{fmt.Errorf("x: %w", nimble.ErrCanceled), http.StatusGatewayTimeout},
		{fmt.Errorf("x: %w", context.DeadlineExceeded), http.StatusInternalServerError},
		{fmt.Errorf("x: %w", nimble.ErrClosed), http.StatusServiceUnavailable},
		{fmt.Errorf("x: %w", nimble.ErrInternal), http.StatusInternalServerError},
		{errors.New("mystery"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := invokeStatus(tc.err); got != tc.want {
			t.Errorf("invokeStatus(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

// TestHealthzHealthy: a fresh registry reports ok with a 200, one health
// block per live model version.
func TestHealthzHealthy(t *testing.T) {
	s := testServer(t)
	w := httptest.NewRecorder()
	s.handleHealthz(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", w.Code)
	}
	var resp struct {
		OK       bool `json:"ok"`
		Versions []struct {
			Model    string `json:"model"`
			Version  string `json:"version"`
			Degraded bool   `json:"degraded"`
			Entries  []struct {
				Entry   string `json:"entry"`
				Healthy bool   `json:"healthy"`
			} `json:"entries"`
		} `json:"versions"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || len(resp.Versions) == 0 {
		t.Fatalf("healthz body = %s", w.Body.String())
	}
	v := resp.Versions[0]
	if v.Model != "mlp" || v.Version != "v1" || v.Degraded || len(v.Entries) == 0 || !v.Entries[0].Healthy {
		t.Errorf("healthz version block = %+v", v)
	}
}

// TestInvokeModelRouting: the "model" body field addresses the registry —
// unpinned, @latest, and pinned forms serve; unknown names and stale pins
// are 404; malformed references are 400. All decided before any work runs.
func TestInvokeModelRouting(t *testing.T) {
	s := testServer(t)
	withModel := func(model string) []byte {
		m := map[string]any{}
		_ = json.Unmarshal(validBody(1), &m)
		m["model"] = model
		b, _ := json.Marshal(m)
		return b
	}
	cases := []struct {
		model string
		want  int
	}{
		{"mlp", http.StatusOK},
		{"mlp@v1", http.StatusOK},
		{"mlp@latest", http.StatusOK},
		{"mlp@v999", http.StatusNotFound},
		{"nope", http.StatusNotFound},
		{"nope@v1", http.StatusNotFound},
		{"mlp@", http.StatusBadRequest},
		{"@", http.StatusBadRequest},
		{"@v1", http.StatusBadRequest},
		{"mlp@v1@v2", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.model, func(t *testing.T) {
			w := postInvoke(t, s, withModel(tc.model))
			if w.Code != tc.want {
				t.Fatalf("model %q status = %d, want %d (body %s)", tc.model, w.Code, tc.want, w.Body.String())
			}
			var resp map[string]any
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("response is not JSON: %s", w.Body.String())
			}
		})
	}
}

// TestAdminLifecycle drives the control plane over HTTP: hot-swap deploy,
// canary deploy, promote, rollback, and the error surface of each.
func TestAdminLifecycle(t *testing.T) {
	// A private registry: the admin deploy rebuilds the full-size cli
	// model, which must not shadow the shared fixture's small-MLP v1.
	m, err := cli.Build("mlp")
	if err != nil {
		t.Fatal(err)
	}
	reg := nimble.NewRegistry(nimble.WithServeDefaults(nimble.WithWorkers(1)))
	defer reg.Close()
	if _, err := reg.Deploy("mlp", m.Program); err != nil {
		t.Fatal(err)
	}
	s := &server{reg: reg, defaultModel: "mlp", maxBody: 1 << 20, start: time.Now()}

	post := func(path, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
		w := httptest.NewRecorder()
		switch path {
		case "/admin/deploy":
			s.handleDeploy(w, req)
		case "/admin/promote":
			s.handlePromote(w, req)
		case "/admin/rollback":
			s.handleRollback(w, req)
		}
		return w
	}

	// Hot-swap: a fresh build becomes v2 stable.
	w := post("/admin/deploy", `{"model":"mlp"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("deploy status = %d: %s", w.Code, w.Body.String())
	}
	var dep struct {
		Version string `json:"version"`
		State   string `json:"state"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &dep); err != nil {
		t.Fatal(err)
	}
	if dep.Version != "v2" || dep.State != "stable" {
		t.Fatalf("deploy response = %s", w.Body.String())
	}

	// Promote with nothing in flight is a 409.
	if w := post("/admin/promote", `{"model":"mlp"}`); w.Code != http.StatusConflict {
		t.Fatalf("promote without canary status = %d, want 409: %s", w.Code, w.Body.String())
	}

	// Canary rollout, then promote it.
	w = post("/admin/deploy", `{"model":"mlp","canary":25}`)
	if w.Code != http.StatusOK {
		t.Fatalf("canary deploy status = %d: %s", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &dep); err != nil {
		t.Fatal(err)
	}
	if dep.Version != "v3" || dep.State != "canary" {
		t.Fatalf("canary deploy response = %s", w.Body.String())
	}
	w = post("/admin/promote", `{"model":"mlp"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("promote status = %d: %s", w.Code, w.Body.String())
	}

	// Another rollout, rolled back.
	if w := post("/admin/deploy", `{"model":"mlp","canary":10}`); w.Code != http.StatusOK {
		t.Fatalf("second canary deploy status = %d: %s", w.Code, w.Body.String())
	}
	if w := post("/admin/rollback", `{"model":"mlp"}`); w.Code != http.StatusOK {
		t.Fatalf("rollback status = %d: %s", w.Code, w.Body.String())
	}

	// Error surface: bad model name, missing model, out-of-range canary,
	// unknown promote target, malformed body.
	for _, tc := range []struct {
		path, body string
		want       int
	}{
		{"/admin/deploy", `{"model":"not-a-model"}`, http.StatusBadRequest},
		{"/admin/deploy", `{}`, http.StatusBadRequest},
		{"/admin/deploy", `{"model":"mlp","canary":150}`, http.StatusBadRequest},
		{"/admin/deploy", `{"model":`, http.StatusBadRequest},
		{"/admin/promote", `{"model":"ghost"}`, http.StatusNotFound},
		{"/admin/rollback", `{"model":"ghost"}`, http.StatusNotFound},
		{"/admin/promote", `{}`, http.StatusBadRequest},
	} {
		if w := post(tc.path, tc.body); w.Code != tc.want {
			t.Errorf("%s %s status = %d, want %d: %s", tc.path, tc.body, w.Code, tc.want, w.Body.String())
		}
	}

	// The listing reflects the surviving stable version.
	wm := httptest.NewRecorder()
	s.handleModels(wm, httptest.NewRequest(http.MethodGet, "/models", nil))
	var list struct {
		Models []struct {
			Name     string `json:"name"`
			Versions []struct {
				Version string `json:"version"`
				State   string `json:"state"`
			} `json:"versions"`
		} `json:"models"`
	}
	if err := json.Unmarshal(wm.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Models) != 1 || len(list.Models[0].Versions) != 1 ||
		list.Models[0].Versions[0].Version != "v3" || list.Models[0].Versions[0].State != "stable" {
		t.Fatalf("/models after lifecycle = %s", wm.Body.String())
	}
}

// TestStreamHandlerTokens: a valid decode request over /stream answers 200
// text/event-stream, one flushed token event per generated token, and a
// terminal done event whose token sequence matches the non-streaming
// /invoke output of the same entry.
func TestStreamHandlerTokens(t *testing.T) {
	s := testDecoderServer(t)
	body := []byte(`{"entry":"generate","args":[{"dtype":"int64","shape":[1],"data":[5]}]}`)

	wInv := postInvoke(t, s, body)
	if wInv.Code != http.StatusOK {
		t.Fatalf("/invoke status = %d: %s", wInv.Code, wInv.Body.String())
	}
	var inv struct {
		Output struct {
			Data []float64 `json:"data"`
		} `json:"output"`
	}
	if err := json.Unmarshal(wInv.Body.Bytes(), &inv); err != nil {
		t.Fatal(err)
	}

	w := postStream(t, s, body)
	if w.Code != http.StatusOK {
		t.Fatalf("/stream status = %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	if !w.Flushed {
		t.Error("stream response never flushed")
	}
	events := sseEvents(t, w.Body.String())
	var got []float64
	for _, ev := range events[:len(events)-1] {
		if ev[0] != "token" {
			t.Fatalf("mid-stream event %q, want token", ev[0])
		}
		var tok struct {
			Data []float64 `json:"data"`
		}
		if err := json.Unmarshal([]byte(ev[1]), &tok); err != nil {
			t.Fatalf("token event data %q: %v", ev[1], err)
		}
		got = append(got, tok.Data...)
	}
	last := events[len(events)-1]
	if last[0] != "done" {
		t.Fatalf("terminal event %q (%s), want done", last[0], last[1])
	}
	var done struct {
		Tokens int `json:"tokens"`
		Output struct {
			Data []float64 `json:"data"`
		} `json:"output"`
	}
	if err := json.Unmarshal([]byte(last[1]), &done); err != nil {
		t.Fatal(err)
	}
	if want := models.DefaultDecoderConfig().MaxNew; done.Tokens != want || len(got) != want {
		t.Fatalf("streamed %d token events, done reports %d, want %d", len(got), done.Tokens, want)
	}
	if fmt.Sprint(got) != fmt.Sprint(inv.Output.Data) || fmt.Sprint(done.Output.Data) != fmt.Sprint(inv.Output.Data) {
		t.Errorf("streamed tokens diverge from /invoke:\n  stream %v\n  done   %v\n  invoke %v",
			got, done.Output.Data, inv.Output.Data)
	}
}

// TestStreamHandlerOpenErrors: stream-open failures are plain status
// responses with the full /invoke mapping — never a half-open event stream.
func TestStreamHandlerOpenErrors(t *testing.T) {
	s := testDecoderServer(t)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"garbage body", `{"entry": "generate", "args": [`, http.StatusBadRequest},
		{"unknown entry", `{"entry":"nope","args":[]}`, http.StatusNotFound},
		{"wrong arity", `{"entry":"generate","args":[]}`, http.StatusBadRequest},
		{"wrong dtype", `{"entry":"generate","args":[{"dtype":"float32","shape":[1],"data":[5]}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postStream(t, s, []byte(tc.body))
			if w.Code != tc.want {
				t.Fatalf("status = %d, want %d (body %s)", w.Code, tc.want, w.Body.String())
			}
			if ct := w.Header().Get("Content-Type"); ct != "application/json" {
				t.Errorf("open error Content-Type = %q, want application/json", ct)
			}
			var resp map[string]any
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("open error is not JSON: %s", w.Body.String())
			}
		})
	}
}

// FuzzInvokeHandler: no request body — malformed JSON, hostile shapes,
// deep nesting, binary junk — may crash the handler or surface as a 5xx.
// With no fault injection configured every failure is the client's fault:
// the contract is 2xx or 4xx, always JSON, never a panic.
func FuzzInvokeHandler(f *testing.F) {
	f.Add(validBody(1))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"entry":"main"}`))
	f.Add([]byte(`{"entry":"main","args":null}`))
	f.Add([]byte(`{"entry":"main","args":[{}]}`))
	f.Add([]byte(`{"args":[{"dtype":"float32","shape":[2,8]}]}`))
	f.Add([]byte(`{"args":[{"shape":[0,8],"data":[]}]}`))
	f.Add([]byte(`{"args":[{"adt":{"tag":0}}]}`))
	f.Add([]byte(`{"args":[{"tuple":[]}]}`))
	f.Add([]byte(`{"seq":[{"dtype":"float32","shape":[8],"data":[1,2,3,4,5,6,7,8]}]}`))
	f.Add([]byte(`{"args":[{"dtype":"float32","shape":[9223372036854775807,2],"data":[]}]}`))
	f.Add([]byte(`{"entry":"main","priority":1,"deadline_budget_ms":50,"args":[{"dtype":"float32","shape":[2,8],"data":[0]}]}`))
	f.Add([]byte(`{"entry":"main","priority":-3,"args":[]}`))
	f.Add([]byte(`{"entry":"main","deadline_budget_ms":-0.5,"args":[]}`))
	f.Add([]byte(`{"entry":"main","priority":9999999,"deadline_budget_ms":1e300,"args":[]}`))
	f.Add([]byte(strings.Repeat(`{"args":[`, 100)))
	f.Add([]byte("\x00\xff\xfe junk"))
	f.Add([]byte(`{"model":"mlp","route_key":"u1","entry":"main","args":[{"dtype":"float32","shape":[1,8],"data":[0,0,0,0,0,0,0,0]}]}`))
	f.Add([]byte(`{"model":"mlp@v1","entry":"main","args":[]}`))
	f.Add([]byte(`{"model":"mlp@latest","entry":"main","args":[]}`))
	f.Add([]byte(`{"model":"mlp@v999","entry":"main","args":[]}`))
	f.Add([]byte(`{"model":"mlp@","entry":"main","args":[]}`))
	f.Add([]byte(`{"model":"@","entry":"main","args":[]}`))
	f.Add([]byte(`{"model":"@v1","entry":"main","args":[]}`))
	f.Add([]byte(`{"model":"mlp@v1@v2","entry":"main","args":[]}`))
	f.Add([]byte(`{"model":"ghost","entry":"main","args":[]}`))
	f.Add([]byte(`{"model":12,"entry":"main","args":[]}`))
	f.Add([]byte(`{"model":"` + strings.Repeat("m", 4096) + `","entry":"main","args":[]}`))

	s := testServer(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		w := postInvoke(t, s, body)
		if w.Code >= 500 {
			t.Fatalf("5xx (%d) for client-supplied body %q: %s", w.Code, body, w.Body.String())
		}
		var resp map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("non-JSON response for body %q: %s", body, w.Body.String())
		}
	})
}

// FuzzSSEHandler: the /stream contract under hostile bodies. Every request
// either fails the open with a non-5xx JSON status response, or commits to
// a 200 event stream made exclusively of well-formed event:/data: frames
// ending in done or error — and never panics the handler.
func FuzzSSEHandler(f *testing.F) {
	f.Add([]byte(`{"entry":"generate","args":[{"dtype":"int64","shape":[1],"data":[5]}]}`))
	f.Add([]byte(`{"entry":"generate_sampled","args":[{"dtype":"int64","shape":[1],"data":[99]}]}`))
	f.Add([]byte(`{"entry":"generate","args":[{"dtype":"int64","shape":[1],"data":[-1]}]}`))
	f.Add([]byte(`{"entry":"generate","args":[{"dtype":"int64","shape":[1],"data":[123456789]}]}`))
	f.Add([]byte(`{"entry":"generate","args":[{"dtype":"float32","shape":[1],"data":[5]}]}`))
	f.Add([]byte(`{"entry":"generate","args":[{"dtype":"int64","shape":[2],"data":[5,6]}]}`))
	f.Add([]byte(`{"entry":"nope","args":[]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"entry":"generate","args":[{"adt":{"tag":0}}]}`))
	f.Add([]byte(`{"entry":"generate","seq":[{"dtype":"int64","shape":[1],"data":[5]}]}`))
	f.Add([]byte(`{"entry":"generate","priority":1,"deadline_budget_ms":30000,"args":[{"dtype":"int64","shape":[1],"data":[5]}]}`))
	f.Add([]byte(`{"entry":"generate","priority":-1,"args":[{"dtype":"int64","shape":[1],"data":[5]}]}`))
	f.Add([]byte(`{"entry":"generate","deadline_budget_ms":0.001,"args":[{"dtype":"int64","shape":[1],"data":[5]}]}`))
	f.Add([]byte("\x00\xff\xfe junk"))
	f.Add([]byte(`{"model":"decoder","route_key":"s1","entry":"generate","args":[{"dtype":"int64","shape":[1],"data":[5]}]}`))
	f.Add([]byte(`{"model":"decoder@v1","entry":"generate","args":[{"dtype":"int64","shape":[1],"data":[5]}]}`))
	f.Add([]byte(`{"model":"decoder@v42","entry":"generate","args":[{"dtype":"int64","shape":[1],"data":[5]}]}`))
	f.Add([]byte(`{"model":"decoder@","entry":"generate","args":[]}`))
	f.Add([]byte(`{"model":"decoder@v1@v1","entry":"generate","args":[]}`))
	f.Add([]byte(`{"model":"missing","entry":"generate","args":[]}`))

	s := testDecoderServer(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		w := postStream(t, s, body)
		if ct := w.Header().Get("Content-Type"); ct == "text/event-stream" {
			if w.Code != http.StatusOK {
				t.Fatalf("event stream with status %d for body %q", w.Code, body)
			}
			events := sseEvents(t, w.Body.String())
			if len(events) == 0 {
				t.Fatalf("committed stream carries no events for body %q", body)
			}
			for _, ev := range events[:len(events)-1] {
				if ev[0] != "token" {
					t.Fatalf("mid-stream event %q for body %q", ev[0], body)
				}
			}
			if last := events[len(events)-1][0]; last != "done" && last != "error" {
				t.Fatalf("stream for body %q ends with %q, want done or error", body, last)
			}
			return
		}
		if w.Code >= 500 {
			t.Fatalf("5xx (%d) open failure for body %q: %s", w.Code, body, w.Body.String())
		}
		var resp map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("non-JSON open failure for body %q: %s", body, w.Body.String())
		}
	})
}

// TestInvokeSchedulingFields: the "priority" and "deadline_budget_ms" body
// fields map onto InvokeOptions — valid values are accepted, negatives are
// a 400 before any work is admitted.
func TestInvokeSchedulingFields(t *testing.T) {
	s := testServer(t)
	withHints := func(prio any, budget any) []byte {
		m := map[string]any{}
		_ = json.Unmarshal(validBody(1), &m)
		if prio != nil {
			m["priority"] = prio
		}
		if budget != nil {
			m["deadline_budget_ms"] = budget
		}
		b, _ := json.Marshal(m)
		return b
	}
	if w := postInvoke(t, s, withHints(1, 5000)); w.Code != http.StatusOK {
		t.Errorf("priority+budget invoke status = %d: %s", w.Code, w.Body.String())
	}
	if w := postInvoke(t, s, withHints(99, nil)); w.Code != http.StatusOK {
		t.Errorf("out-of-range priority must clamp, not fail: %d: %s", w.Code, w.Body.String())
	}
	if w := postInvoke(t, s, withHints(-1, nil)); w.Code != http.StatusBadRequest {
		t.Errorf("negative priority status = %d, want 400", w.Code)
	}
	if w := postInvoke(t, s, withHints(nil, -5)); w.Code != http.StatusBadRequest {
		t.Errorf("negative budget status = %d, want 400", w.Code)
	}
}

// TestStreamSchedulingFields: the same hints ride an SSE request and the
// stream still completes.
func TestStreamSchedulingFields(t *testing.T) {
	s := testDecoderServer(t)
	body := []byte(`{"entry":"generate","args":[{"dtype":"int64","shape":[1],"data":[5]}],"priority":1,"deadline_budget_ms":30000}`)
	w := postStream(t, s, body)
	if w.Code != http.StatusOK {
		t.Fatalf("/stream status = %d: %s", w.Code, w.Body.String())
	}
	ev := sseEvents(t, w.Body.String())
	if len(ev) == 0 || ev[len(ev)-1][0] != "done" {
		t.Fatalf("stream with scheduling hints did not finish with done: %v", ev)
	}
}

// TestMetricsEndpoint: /metrics speaks the Prometheus text format and
// carries the scheduler series after a stream has run.
func TestMetricsEndpoint(t *testing.T) {
	s := testDecoderServer(t)
	// Drive one stream so scheduler counters exist.
	if w := postStream(t, s, []byte(`{"entry":"generate","args":[{"dtype":"int64","shape":[1],"data":[3]}]}`)); w.Code != http.StatusOK {
		t.Fatalf("stream status = %d", w.Code)
	}
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	s.handleMetrics(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	body := w.Body.String()
	for _, want := range []string{
		"# TYPE nimble_pool_invocations_total counter",
		`nimble_pool_workers{model="decoder",version="v1"} 2`,
		`nimble_version_canary{model="decoder",version="v1"} 0`,
		`nimble_gate_admitted_total{model="decoder",version="v1",entry="generate"}`,
		`nimble_sched_submitted_total{model="decoder",version="v1",entry="generate"}`,
		`nimble_sched_peak_occupancy{model="decoder",version="v1",entry="generate"}`,
		`nimble_sched_step_p99_seconds{model="decoder",version="v1",entry="generate"}`,
		`nimble_entry_healthy{model="decoder",version="v1",entry="generate"} 1`,
		"nimble_shared_storage_resident_bytes",
		"nimble_models 1",
		"nimble_up 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Every non-comment line is "name{labels} value" with a parseable value.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Fatalf("metrics line %q: value: %v", line, err)
		}
	}
}
