package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nimble"
	"nimble/models"
)

var (
	testSrvOnce sync.Once
	testSrv     *server
	testSrvErr  error
)

// testServer compiles a small MLP once and serves it; handler tests and
// the fuzz target share it.
func testServer(t testing.TB) *server {
	t.Helper()
	testSrvOnce.Do(func() {
		m := models.NewMLP(models.MLPConfig{In: 8, Hidden: 16, Out: 4, Layers: 1, Seed: 3})
		p, err := nimble.Compile(m.Module)
		if err != nil {
			testSrvErr = err
			return
		}
		svc, err := p.NewService(nimble.ServiceConfig{Workers: 2})
		if err != nil {
			testSrvErr = err
			return
		}
		testSrv = &server{model: "mlp", svc: svc, maxBody: 1 << 20, start: time.Now()}
	})
	if testSrvErr != nil {
		t.Fatal(testSrvErr)
	}
	return testSrv
}

func postInvoke(t testing.TB, s *server, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/invoke", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.handleInvoke(w, req)
	return w
}

func validBody(rows int) []byte {
	data := make([]float64, rows*8)
	for i := range data {
		data[i] = float64(i%7) * 0.25
	}
	b, _ := json.Marshal(map[string]any{
		"entry": "main",
		"args":  []map[string]any{{"dtype": "float32", "shape": []int{rows, 8}, "data": data}},
	})
	return b
}

// TestInvokeHandlerStatusMapping: each rejection class lands on its
// documented status code, and a valid request succeeds.
func TestInvokeHandlerStatusMapping(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"valid", string(validBody(2)), http.StatusOK},
		{"garbage body", `{"entry": "main", "args": [`, http.StatusBadRequest},
		{"not json", `hello`, http.StatusBadRequest},
		{"unknown entry", `{"entry":"nope","args":[]}`, http.StatusNotFound},
		{"wrong arity", `{"entry":"main","args":[]}`, http.StatusBadRequest},
		{"wrong dtype", `{"args":[{"dtype":"float64","shape":[1,8],"data":[0,0,0,0,0,0,0,0]}]}`, http.StatusBadRequest},
		{"shape/data mismatch", `{"args":[{"dtype":"float32","shape":[1,8],"data":[1,2]}]}`, http.StatusBadRequest},
		{"negative dim", `{"args":[{"dtype":"float32","shape":[-1,8],"data":[]}]}`, http.StatusBadRequest},
		{"overflowing shape", `{"args":[{"dtype":"float32","shape":[1073741824,1073741824,1073741824],"data":[]}]}`, http.StatusBadRequest},
		{"wrong static dim", `{"args":[{"dtype":"float32","shape":[1,9],"data":[0,0,0,0,0,0,0,0,0]}]}`, http.StatusBadRequest},
		{"seq on non-list entry", `{"entry":"main","seq":[{"dtype":"float32","shape":[1,8],"data":[0,0,0,0,0,0,0,0]}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postInvoke(t, s, []byte(tc.body))
			if w.Code != tc.want {
				t.Fatalf("status = %d, want %d (body %s)", w.Code, tc.want, w.Body.String())
			}
			var resp map[string]any
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("response is not JSON: %v", err)
			}
			if tc.want != http.StatusOK {
				if _, ok := resp["error"]; !ok {
					t.Errorf("error response carries no error field: %s", w.Body.String())
				}
			}
		})
	}
}

// TestInvokeBodyCap: a body over -max-body answers 413, not a decode 400
// or a dropped connection.
func TestInvokeBodyCap(t *testing.T) {
	s := testServer(t)
	huge := append([]byte(`{"args":[{"data":[`), bytes.Repeat([]byte("1,"), 1<<20)...)
	huge = append(huge, []byte(`1]}]}`)...)
	w := postInvoke(t, s, huge)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", w.Code)
	}
}

// TestInvokeStatusFamilies: the documented error→status contract, pinned
// against wrapped members of each public family.
func TestInvokeStatusFamilies(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("x: %w", nimble.ErrBadInput), http.StatusBadRequest},
		{fmt.Errorf("x: %w", nimble.ErrBadArity), http.StatusBadRequest},
		{fmt.Errorf("x: %w", nimble.ErrUnknownEntry), http.StatusNotFound},
		{fmt.Errorf("x: %w", nimble.ErrOverloaded), http.StatusTooManyRequests},
		{fmt.Errorf("x: %w", nimble.ErrCanceled), http.StatusGatewayTimeout},
		{fmt.Errorf("x: %w", context.DeadlineExceeded), http.StatusInternalServerError},
		{fmt.Errorf("x: %w", nimble.ErrClosed), http.StatusServiceUnavailable},
		{fmt.Errorf("x: %w", nimble.ErrInternal), http.StatusInternalServerError},
		{errors.New("mystery"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := invokeStatus(tc.err); got != tc.want {
			t.Errorf("invokeStatus(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

// TestHealthzHealthy: a fresh service reports ok with a 200.
func TestHealthzHealthy(t *testing.T) {
	s := testServer(t)
	w := httptest.NewRecorder()
	s.handleHealthz(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("healthz status = %d, want 200", w.Code)
	}
	var resp struct {
		OK      bool `json:"ok"`
		Entries []struct {
			Entry   string `json:"entry"`
			Healthy bool   `json:"healthy"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || len(resp.Entries) == 0 || !resp.Entries[0].Healthy {
		t.Errorf("healthz body = %s", w.Body.String())
	}
}

// FuzzInvokeHandler: no request body — malformed JSON, hostile shapes,
// deep nesting, binary junk — may crash the handler or surface as a 5xx.
// With no fault injection configured every failure is the client's fault:
// the contract is 2xx or 4xx, always JSON, never a panic.
func FuzzInvokeHandler(f *testing.F) {
	f.Add(validBody(1))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"entry":"main"}`))
	f.Add([]byte(`{"entry":"main","args":null}`))
	f.Add([]byte(`{"entry":"main","args":[{}]}`))
	f.Add([]byte(`{"args":[{"dtype":"float32","shape":[2,8]}]}`))
	f.Add([]byte(`{"args":[{"shape":[0,8],"data":[]}]}`))
	f.Add([]byte(`{"args":[{"adt":{"tag":0}}]}`))
	f.Add([]byte(`{"args":[{"tuple":[]}]}`))
	f.Add([]byte(`{"seq":[{"dtype":"float32","shape":[8],"data":[1,2,3,4,5,6,7,8]}]}`))
	f.Add([]byte(`{"args":[{"dtype":"float32","shape":[9223372036854775807,2],"data":[]}]}`))
	f.Add([]byte(strings.Repeat(`{"args":[`, 100)))
	f.Add([]byte("\x00\xff\xfe junk"))

	s := testServer(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		w := postInvoke(t, s, body)
		if w.Code >= 500 {
			t.Fatalf("5xx (%d) for client-supplied body %q: %s", w.Code, body, w.Body.String())
		}
		var resp map[string]any
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatalf("non-JSON response for body %q: %s", body, w.Body.String())
		}
	})
}
