package main

import (
	"fmt"
	"net/http"
	"strings"
	"time"
)

// handleMetrics renders every live model-version's counters in the
// Prometheus text exposition format, hand-rolled so the binary stays
// dependency-free. The catalog (documented in docs/operations.md):
//
//   - nimble_pool_*       session pool, labeled {model, version}: size,
//     checkouts, quarantines
//   - nimble_gate_*       per-entry admission gate, labeled {model,
//     version, entry}
//   - nimble_sched_*      per-entry continuous-batching scheduler, labeled
//     {model, version, entry}: queue depth, batch occupancy, step latency
//     quantiles
//   - nimble_batch_*      per-entry micro-batcher, labeled {model,
//     version, entry}
//   - nimble_version_*    routing: canary traffic percent and requests in
//     flight per live version
//   - nimble_shared_storage_*  the cross-model storage tier
//   - nimble_entry_healthy / nimble_up  breaker-driven health
//
// Durations are exported in seconds (Prometheus base units) even though
// /stats reports microseconds.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	models := s.reg.Models()

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	// Labeled series share one HELP/TYPE header per family, then one sample
	// per (model, version[, entry]); family collects rows and flushes them
	// under the header.
	family := func(name, typ, help string, rows []string) {
		if len(rows) == 0 {
			return
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, r := range rows {
			b.WriteString(r)
		}
	}

	up := 1.0
	for _, ms := range models {
		for _, vs := range ms.Versions {
			if vs.Health.Degraded {
				up = 0
			}
		}
	}
	gauge("nimble_up", "1 when no live version has an open circuit breaker.", up)
	gauge("nimble_uptime_seconds", "Seconds since the server started.", time.Since(s.start).Seconds())
	gauge("nimble_models", "Models deployed in the registry.", float64(len(models)))

	// rows[familyName] accumulates labeled samples across every model
	// version; families are emitted once, after the sweep.
	rows := map[string][]string{}
	add := func(familyName, labels string, v float64) {
		rows[familyName] = append(rows[familyName], fmt.Sprintf("%s{%s} %g\n", familyName, labels, v))
	}

	for _, ms := range models {
		for _, vs := range ms.Versions {
			mv := fmt.Sprintf("model=%q,version=%q", ms.Name, vs.Version)
			entryOf := func(entry string) string { return mv + fmt.Sprintf(",entry=%q", entry) }

			canary := 0.0
			if vs.State == "canary" {
				canary = 1
			}
			add("nimble_version_canary", mv, canary)
			add("nimble_version_traffic_percent", mv, float64(vs.Percent))
			add("nimble_version_requests_in_flight", mv, float64(vs.InFlight))

			p := vs.Stats.Pool
			add("nimble_pool_workers", mv, float64(p.Workers))
			add("nimble_pool_invocations_total", mv, float64(p.Invocations))
			add("nimble_pool_errors_total", mv, float64(p.Errors))
			add("nimble_pool_in_flight", mv, float64(p.InFlight))
			add("nimble_pool_peak_in_use", mv, float64(p.PeakInUse))
			add("nimble_pool_waits_total", mv, float64(p.Waits))
			add("nimble_pool_wait_seconds_total", mv, p.WaitTime.Seconds())
			add("nimble_pool_quarantined_total", mv, float64(p.Quarantined))

			for _, g := range vs.Stats.Gates {
				l := entryOf(g.Entry)
				add("nimble_gate_admitted_total", l, float64(g.Admitted))
				add("nimble_gate_queued", l, float64(g.Queued))
				add("nimble_gate_expected_wait_seconds", l, g.ExpectedWaitUS/1e6)
				add("nimble_gate_service_ewma_seconds", l, g.ServiceEWMAUS/1e6)
				add("nimble_gate_service_p50_seconds", l, g.P50US/1e6)
				add("nimble_gate_service_p99_seconds", l, g.P99US/1e6)
				add("nimble_gate_shed_queue_total", l, float64(g.ShedQueue))
				add("nimble_gate_shed_deadline_total", l, float64(g.ShedDeadline))
				add("nimble_gate_shed_breaker_total", l, float64(g.ShedBreaker))
				openV := 0.0
				if g.BreakerOpen {
					openV = 1
				}
				add("nimble_gate_breaker_open", l, openV)
				add("nimble_gate_breaker_trips_total", l, float64(g.BreakerTrips))
			}

			for _, sc := range vs.Stats.Schedulers {
				l := entryOf(sc.Entry)
				add("nimble_sched_submitted_total", l, float64(sc.Submitted))
				add("nimble_sched_completed_total", l, float64(sc.Completed))
				add("nimble_sched_canceled_total", l, float64(sc.Canceled))
				add("nimble_sched_failed_total", l, float64(sc.Failed))
				add("nimble_sched_shed_deadline_total", l, float64(sc.ShedDeadline))
				add("nimble_sched_queued", l, float64(sc.Queued))
				add("nimble_sched_active", l, float64(sc.Active))
				add("nimble_sched_sessions", l, float64(sc.Sessions))
				add("nimble_sched_peak_occupancy", l, float64(sc.PeakOccupancy))
				add("nimble_sched_occupancy_ewma", l, sc.OccupancyEWMA)
				add("nimble_sched_steps_total", l, float64(sc.Steps))
				add("nimble_sched_steps_per_stream", l, sc.StepsPerStream)
				add("nimble_sched_step_ewma_seconds", l, sc.StepEWMAUS/1e6)
				add("nimble_sched_step_p50_seconds", l, sc.StepP50US/1e6)
				add("nimble_sched_step_p99_seconds", l, sc.StepP99US/1e6)
				add("nimble_sched_projected_wait_seconds", l, sc.ProjectedWaitUS/1e6)
			}

			for _, bt := range vs.Stats.Batchers {
				l := entryOf(bt.Entry)
				add("nimble_batch_batches_total", l, float64(bt.Batches))
				add("nimble_batch_singles_total", l, float64(bt.Singles))
				add("nimble_batch_coalesced_total", l, float64(bt.Coalesced))
				add("nimble_batch_fallback_total", l, float64(bt.Fallbacks))
				add("nimble_batch_overflow_total", l, float64(bt.Overflows))
				add("nimble_batch_largest_batch", l, float64(bt.LargestBatch))
			}

			for _, e := range vs.Health.Entries {
				v := 0.0
				if e.Healthy {
					v = 1
				}
				add("nimble_entry_healthy", entryOf(e.Entry), v)
			}
		}
	}

	family("nimble_version_canary", "gauge", "1 while this version is the canary of a rollout.", rows["nimble_version_canary"])
	family("nimble_version_traffic_percent", "gauge", "Configured unpinned-traffic share (canary only).", rows["nimble_version_traffic_percent"])
	family("nimble_version_requests_in_flight", "gauge", "Requests and open streams holding this version.", rows["nimble_version_requests_in_flight"])

	family("nimble_pool_workers", "gauge", "Sessions in the pool.", rows["nimble_pool_workers"])
	family("nimble_pool_invocations_total", "counter", "Entry invocations executed.", rows["nimble_pool_invocations_total"])
	family("nimble_pool_errors_total", "counter", "Invocations that returned an error.", rows["nimble_pool_errors_total"])
	family("nimble_pool_in_flight", "gauge", "Sessions checked out right now.", rows["nimble_pool_in_flight"])
	family("nimble_pool_peak_in_use", "gauge", "Most sessions ever in use at once.", rows["nimble_pool_peak_in_use"])
	family("nimble_pool_waits_total", "counter", "Acquisitions that had to queue for a session.", rows["nimble_pool_waits_total"])
	family("nimble_pool_wait_seconds_total", "counter", "Total time spent queued for sessions.", rows["nimble_pool_wait_seconds_total"])
	family("nimble_pool_quarantined_total", "counter", "Poisoned sessions replaced by fresh VMs.", rows["nimble_pool_quarantined_total"])

	family("nimble_gate_admitted_total", "counter", "Requests admitted past the gate.", rows["nimble_gate_admitted_total"])
	family("nimble_gate_queued", "gauge", "Admitted requests not yet running.", rows["nimble_gate_queued"])
	family("nimble_gate_expected_wait_seconds", "gauge", "Arrival-time wait estimate.", rows["nimble_gate_expected_wait_seconds"])
	family("nimble_gate_service_ewma_seconds", "gauge", "Smoothed service time.", rows["nimble_gate_service_ewma_seconds"])
	family("nimble_gate_service_p50_seconds", "gauge", "Service-time median (log2-bucket histogram).", rows["nimble_gate_service_p50_seconds"])
	family("nimble_gate_service_p99_seconds", "gauge", "Service-time 99th percentile (log2-bucket histogram).", rows["nimble_gate_service_p99_seconds"])
	family("nimble_gate_shed_queue_total", "counter", "Arrivals shed because the queue was full.", rows["nimble_gate_shed_queue_total"])
	family("nimble_gate_shed_deadline_total", "counter", "Arrivals shed because their deadline was unmeetable.", rows["nimble_gate_shed_deadline_total"])
	family("nimble_gate_shed_breaker_total", "counter", "Arrivals shed by an open circuit breaker.", rows["nimble_gate_shed_breaker_total"])
	family("nimble_gate_breaker_open", "gauge", "1 while the entry's breaker is open.", rows["nimble_gate_breaker_open"])
	family("nimble_gate_breaker_trips_total", "counter", "Times the breaker opened.", rows["nimble_gate_breaker_trips_total"])

	family("nimble_sched_submitted_total", "counter", "Streams submitted to the run queue.", rows["nimble_sched_submitted_total"])
	family("nimble_sched_completed_total", "counter", "Streams that finished cleanly.", rows["nimble_sched_completed_total"])
	family("nimble_sched_canceled_total", "counter", "Streams canceled by their caller.", rows["nimble_sched_canceled_total"])
	family("nimble_sched_failed_total", "counter", "Streams that failed (faults, poisoning, close).", rows["nimble_sched_failed_total"])
	family("nimble_sched_shed_deadline_total", "counter", "Stream arrivals shed on projected deadline overrun.", rows["nimble_sched_shed_deadline_total"])
	family("nimble_sched_queued", "gauge", "Streams waiting for a session window.", rows["nimble_sched_queued"])
	family("nimble_sched_active", "gauge", "Streams adopted by workers right now.", rows["nimble_sched_active"])
	family("nimble_sched_sessions", "gauge", "Sessions the scheduler drives right now.", rows["nimble_sched_sessions"])
	family("nimble_sched_peak_occupancy", "gauge", "Most streams one session ever interleaved.", rows["nimble_sched_peak_occupancy"])
	family("nimble_sched_occupancy_ewma", "gauge", "Smoothed per-step batch size.", rows["nimble_sched_occupancy_ewma"])
	family("nimble_sched_steps_total", "counter", "Decode iterations executed.", rows["nimble_sched_steps_total"])
	family("nimble_sched_steps_per_stream", "gauge", "Smoothed iterations per completed stream.", rows["nimble_sched_steps_per_stream"])
	family("nimble_sched_step_ewma_seconds", "gauge", "Smoothed per-iteration latency.", rows["nimble_sched_step_ewma_seconds"])
	family("nimble_sched_step_p50_seconds", "gauge", "Per-iteration latency median (log2-bucket histogram).", rows["nimble_sched_step_p50_seconds"])
	family("nimble_sched_step_p99_seconds", "gauge", "Per-iteration latency 99th percentile (log2-bucket histogram).", rows["nimble_sched_step_p99_seconds"])
	family("nimble_sched_projected_wait_seconds", "gauge", "Current arrival-time completion estimate.", rows["nimble_sched_projected_wait_seconds"])

	family("nimble_batch_batches_total", "counter", "Coalesced dispatches executed.", rows["nimble_batch_batches_total"])
	family("nimble_batch_singles_total", "counter", "Requests dispatched alone.", rows["nimble_batch_singles_total"])
	family("nimble_batch_coalesced_total", "counter", "Requests that rode a shared batch.", rows["nimble_batch_coalesced_total"])
	family("nimble_batch_fallback_total", "counter", "Requests dispatched individually after a batch fault.", rows["nimble_batch_fallback_total"])
	family("nimble_batch_overflow_total", "counter", "Requests past the batch cap, dispatched individually.", rows["nimble_batch_overflow_total"])
	family("nimble_batch_largest_batch", "gauge", "Largest batch ever dispatched.", rows["nimble_batch_largest_batch"])

	family("nimble_entry_healthy", "gauge", "1 while the entry's circuit breaker is closed.", rows["nimble_entry_healthy"])

	if st, ok := s.reg.SharedStorageStats(); ok {
		gauge("nimble_shared_storage_resident_bytes", "Bytes parked in the cross-model storage tier.", float64(st.ResidentBytes))
		counter("nimble_shared_storage_hits_total", "Local-miss acquisitions served by the shared tier.", float64(st.Hits))
		counter("nimble_shared_storage_misses_total", "Shared-tier lookups that fell through to allocation.", float64(st.Misses))
		counter("nimble_shared_storage_donated_total", "Per-session overflow storages adopted by the shared tier.", float64(st.Donated))
		counter("nimble_shared_storage_dropped_total", "Donations refused at the per-class bound.", float64(st.Dropped))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
