package main

import (
	"fmt"
	"net/http"
	"strings"
	"time"
)

// handleMetrics renders the Service's counters in the Prometheus text
// exposition format, hand-rolled so the binary stays dependency-free. The
// catalog (documented in docs/operations.md):
//
//   - nimble_pool_*       session pool: size, checkouts, quarantines
//   - nimble_gate_*       per-entry admission gate, labeled {entry}
//   - nimble_sched_*      per-entry continuous-batching scheduler, labeled
//     {entry}: queue depth, batch occupancy, step latency quantiles
//   - nimble_batch_*      per-entry micro-batcher, labeled {entry}
//   - nimble_entry_healthy / nimble_up  breaker-driven health
//
// Durations are exported in seconds (Prometheus base units) even though
// /stats reports microseconds.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var b strings.Builder
	st := s.svc.Stats()
	h := s.svc.Health()

	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	// Labeled series share one HELP/TYPE header per family, then one sample
	// per entry; emit collects rows and flushes them under the header.
	family := func(name, typ, help string, rows []string) {
		if len(rows) == 0 {
			return
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, r := range rows {
			b.WriteString(r)
		}
	}
	row := func(name, entry string, v float64) string {
		return fmt.Sprintf("%s{entry=%q} %g\n", name, entry, v)
	}

	up := 1.0
	if h.Degraded {
		up = 0
	}
	gauge("nimble_up", "1 when no entry's circuit breaker is open.", up)
	gauge("nimble_uptime_seconds", "Seconds since the server started.", time.Since(s.start).Seconds())

	p := st.Pool
	gauge("nimble_pool_workers", "Sessions in the pool.", float64(p.Workers))
	counter("nimble_pool_invocations_total", "Entry invocations executed.", float64(p.Invocations))
	counter("nimble_pool_errors_total", "Invocations that returned an error.", float64(p.Errors))
	gauge("nimble_pool_in_flight", "Sessions checked out right now.", float64(p.InFlight))
	gauge("nimble_pool_peak_in_use", "Most sessions ever in use at once.", float64(p.PeakInUse))
	counter("nimble_pool_waits_total", "Acquisitions that had to queue for a session.", float64(p.Waits))
	counter("nimble_pool_wait_seconds_total", "Total time spent queued for sessions.", p.WaitTime.Seconds())
	counter("nimble_pool_quarantined_total", "Poisoned sessions replaced by fresh VMs.", float64(p.Quarantined))

	var admitted, queued, wait, svcT, p50, p99, shedQ, shedD, shedB, open, trips []string
	for _, g := range st.Gates {
		admitted = append(admitted, row("nimble_gate_admitted_total", g.Entry, float64(g.Admitted)))
		queued = append(queued, row("nimble_gate_queued", g.Entry, float64(g.Queued)))
		wait = append(wait, row("nimble_gate_expected_wait_seconds", g.Entry, g.ExpectedWaitUS/1e6))
		svcT = append(svcT, row("nimble_gate_service_ewma_seconds", g.Entry, g.ServiceEWMAUS/1e6))
		p50 = append(p50, row("nimble_gate_service_p50_seconds", g.Entry, g.P50US/1e6))
		p99 = append(p99, row("nimble_gate_service_p99_seconds", g.Entry, g.P99US/1e6))
		shedQ = append(shedQ, row("nimble_gate_shed_queue_total", g.Entry, float64(g.ShedQueue)))
		shedD = append(shedD, row("nimble_gate_shed_deadline_total", g.Entry, float64(g.ShedDeadline)))
		shedB = append(shedB, row("nimble_gate_shed_breaker_total", g.Entry, float64(g.ShedBreaker)))
		openV := 0.0
		if g.BreakerOpen {
			openV = 1
		}
		open = append(open, row("nimble_gate_breaker_open", g.Entry, openV))
		trips = append(trips, row("nimble_gate_breaker_trips_total", g.Entry, float64(g.BreakerTrips)))
	}
	family("nimble_gate_admitted_total", "counter", "Requests admitted past the gate.", admitted)
	family("nimble_gate_queued", "gauge", "Admitted requests not yet running.", queued)
	family("nimble_gate_expected_wait_seconds", "gauge", "Arrival-time wait estimate.", wait)
	family("nimble_gate_service_ewma_seconds", "gauge", "Smoothed service time.", svcT)
	family("nimble_gate_service_p50_seconds", "gauge", "Service-time median (log2-bucket histogram).", p50)
	family("nimble_gate_service_p99_seconds", "gauge", "Service-time 99th percentile (log2-bucket histogram).", p99)
	family("nimble_gate_shed_queue_total", "counter", "Arrivals shed because the queue was full.", shedQ)
	family("nimble_gate_shed_deadline_total", "counter", "Arrivals shed because their deadline was unmeetable.", shedD)
	family("nimble_gate_shed_breaker_total", "counter", "Arrivals shed by an open circuit breaker.", shedB)
	family("nimble_gate_breaker_open", "gauge", "1 while the entry's breaker is open.", open)
	family("nimble_gate_breaker_trips_total", "counter", "Times the breaker opened.", trips)

	var sub, comp, canc, fail, shed, squeued, active, sessions, peak, occ, steps, sps, ewma, sp50, sp99, proj []string
	for _, sc := range st.Schedulers {
		sub = append(sub, row("nimble_sched_submitted_total", sc.Entry, float64(sc.Submitted)))
		comp = append(comp, row("nimble_sched_completed_total", sc.Entry, float64(sc.Completed)))
		canc = append(canc, row("nimble_sched_canceled_total", sc.Entry, float64(sc.Canceled)))
		fail = append(fail, row("nimble_sched_failed_total", sc.Entry, float64(sc.Failed)))
		shed = append(shed, row("nimble_sched_shed_deadline_total", sc.Entry, float64(sc.ShedDeadline)))
		squeued = append(squeued, row("nimble_sched_queued", sc.Entry, float64(sc.Queued)))
		active = append(active, row("nimble_sched_active", sc.Entry, float64(sc.Active)))
		sessions = append(sessions, row("nimble_sched_sessions", sc.Entry, float64(sc.Sessions)))
		peak = append(peak, row("nimble_sched_peak_occupancy", sc.Entry, float64(sc.PeakOccupancy)))
		occ = append(occ, row("nimble_sched_occupancy_ewma", sc.Entry, sc.OccupancyEWMA))
		steps = append(steps, row("nimble_sched_steps_total", sc.Entry, float64(sc.Steps)))
		sps = append(sps, row("nimble_sched_steps_per_stream", sc.Entry, sc.StepsPerStream))
		ewma = append(ewma, row("nimble_sched_step_ewma_seconds", sc.Entry, sc.StepEWMAUS/1e6))
		sp50 = append(sp50, row("nimble_sched_step_p50_seconds", sc.Entry, sc.StepP50US/1e6))
		sp99 = append(sp99, row("nimble_sched_step_p99_seconds", sc.Entry, sc.StepP99US/1e6))
		proj = append(proj, row("nimble_sched_projected_wait_seconds", sc.Entry, sc.ProjectedWaitUS/1e6))
	}
	family("nimble_sched_submitted_total", "counter", "Streams submitted to the run queue.", sub)
	family("nimble_sched_completed_total", "counter", "Streams that finished cleanly.", comp)
	family("nimble_sched_canceled_total", "counter", "Streams canceled by their caller.", canc)
	family("nimble_sched_failed_total", "counter", "Streams that failed (faults, poisoning, close).", fail)
	family("nimble_sched_shed_deadline_total", "counter", "Stream arrivals shed on projected deadline overrun.", shed)
	family("nimble_sched_queued", "gauge", "Streams waiting for a session window.", squeued)
	family("nimble_sched_active", "gauge", "Streams adopted by workers right now.", active)
	family("nimble_sched_sessions", "gauge", "Sessions the scheduler drives right now.", sessions)
	family("nimble_sched_peak_occupancy", "gauge", "Most streams one session ever interleaved.", peak)
	family("nimble_sched_occupancy_ewma", "gauge", "Smoothed per-step batch size.", occ)
	family("nimble_sched_steps_total", "counter", "Decode iterations executed.", steps)
	family("nimble_sched_steps_per_stream", "gauge", "Smoothed iterations per completed stream.", sps)
	family("nimble_sched_step_ewma_seconds", "gauge", "Smoothed per-iteration latency.", ewma)
	family("nimble_sched_step_p50_seconds", "gauge", "Per-iteration latency median (log2-bucket histogram).", sp50)
	family("nimble_sched_step_p99_seconds", "gauge", "Per-iteration latency 99th percentile (log2-bucket histogram).", sp99)
	family("nimble_sched_projected_wait_seconds", "gauge", "Current arrival-time completion estimate.", proj)

	var batches, singles, coalesced, fallbacks, overflows, largest []string
	for _, bt := range st.Batchers {
		batches = append(batches, row("nimble_batch_batches_total", bt.Entry, float64(bt.Batches)))
		singles = append(singles, row("nimble_batch_singles_total", bt.Entry, float64(bt.Singles)))
		coalesced = append(coalesced, row("nimble_batch_coalesced_total", bt.Entry, float64(bt.Coalesced)))
		fallbacks = append(fallbacks, row("nimble_batch_fallback_total", bt.Entry, float64(bt.Fallbacks)))
		overflows = append(overflows, row("nimble_batch_overflow_total", bt.Entry, float64(bt.Overflows)))
		largest = append(largest, row("nimble_batch_largest_batch", bt.Entry, float64(bt.LargestBatch)))
	}
	family("nimble_batch_batches_total", "counter", "Coalesced dispatches executed.", batches)
	family("nimble_batch_singles_total", "counter", "Requests dispatched alone.", singles)
	family("nimble_batch_coalesced_total", "counter", "Requests that rode a shared batch.", coalesced)
	family("nimble_batch_fallback_total", "counter", "Requests dispatched individually after a batch fault.", fallbacks)
	family("nimble_batch_overflow_total", "counter", "Requests past the batch cap, dispatched individually.", overflows)
	family("nimble_batch_largest_batch", "gauge", "Largest batch ever dispatched.", largest)

	var healthy []string
	for _, e := range h.Entries {
		v := 0.0
		if e.Healthy {
			v = 1
		}
		healthy = append(healthy, row("nimble_entry_healthy", e.Entry, v))
	}
	family("nimble_entry_healthy", "gauge", "1 while the entry's circuit breaker is closed.", healthy)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
