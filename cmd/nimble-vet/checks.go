package main

// The four analyzers. Each operates purely syntactically (go/ast) so the
// tool builds with the standard library alone — the environment has no
// module cache, so golang.org/x/tools/go/analysis is deliberately not used.
// The trade-off is documented in docs/verifier.md: checks are conventions
// over this repo's idioms, not whole-program dataflow.

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	Pos   token.Position
	Check string
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Check, f.Msg)
}

// pkgFile is one parsed file plus the package-level context the checks need.
type pkgFile struct {
	fset *token.FileSet
	file *ast.File
	// pkgVars is the set of package-level var names across the package.
	pkgVars map[string]bool
}

// ---- panicpath -----------------------------------------------------------

// checkPanicPath flags panic calls in request-path packages (internal/serve,
// internal/vm). The serving contract is that faults surface as ErrInternal
// through the recover boundary, never as a process crash; the only allowed
// panics are construction-phase misuse guards explicitly marked with a
// "vet:panic-ok" comment on the panic line, the line above it, or in the
// enclosing function's doc comment.
func checkPanicPath(pf *pkgFile) []Finding {
	var out []Finding
	allowed := map[int]bool{}
	for _, cg := range pf.file.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "vet:panic-ok") {
				line := pf.fset.Position(c.Pos()).Line
				allowed[line] = true
				allowed[line+1] = true
			}
		}
	}
	for _, decl := range pf.file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		docAllowed := fd.Doc != nil && strings.Contains(fd.Doc.Text(), "vet:panic-ok")
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				pos := pf.fset.Position(call.Pos())
				if !docAllowed && !allowed[pos.Line] {
					out = append(out, Finding{Pos: pos, Check: "panicpath",
						Msg: fmt.Sprintf("panic in request-path function %s; return an error (the serve layer maps faults to ErrInternal) or mark a construction-phase guard with // vet:panic-ok", fd.Name.Name)})
				}
			}
			return true
		})
	}
	return out
}

// ---- ctxthread -----------------------------------------------------------

// checkCtxThread flags exported methods in the serving layers that block on
// channels (select, receive, send) without taking a context.Context: every
// blocking public wait must be abandonable. Methods whose blocking is
// deliberate and unbounded by design (drain-on-close) carry a "vet:no-ctx"
// doc-comment marker with the justification.
func checkCtxThread(pf *pkgFile) []Finding {
	var out []Finding
	for _, decl := range pf.file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil || fd.Recv == nil || !fd.Name.IsExported() {
			continue
		}
		if fd.Doc != nil && strings.Contains(fd.Doc.Text(), "vet:no-ctx") {
			continue
		}
		if hasCtxParam(fd.Type) {
			continue
		}
		if blocksOnChannel(fd.Body) {
			out = append(out, Finding{Pos: pf.fset.Position(fd.Pos()), Check: "ctxthread",
				Msg: fmt.Sprintf("exported method %s blocks on a channel but has no context.Context parameter; thread ctx or document with // vet:no-ctx", fd.Name.Name)})
		}
	}
	return out
}

// blocksOnChannel reports whether a statement tree contains a potentially
// unbounded channel wait: a receive, a send, or a select with no default.
// A select WITH a default is a non-blocking poll, so its communication
// operands do not count — but its clause bodies are still scanned.
// Function literals are skipped: a spawned goroutine blocks on its own
// schedule, not the caller's.
func blocksOnChannel(root ast.Node) bool {
	blocking := false
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if blocking {
			return false
		}
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range s.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				blocking = true
				return false
			}
			for _, cl := range s.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok {
					continue
				}
				for _, st := range cc.Body {
					ast.Inspect(st, visit)
				}
			}
			return false
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				blocking = true
			}
		case *ast.SendStmt:
			blocking = true
		}
		return !blocking
	}
	ast.Inspect(root, visit)
	return blocking
}

func hasCtxParam(ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, fld := range ft.Params.List {
		if sel, ok := fld.Type.(*ast.SelectorExpr); ok {
			if x, ok := sel.X.(*ast.Ident); ok && x.Name == "context" && sel.Sel.Name == "Context" {
				return true
			}
		}
	}
	return false
}

// ---- bufretain -----------------------------------------------------------

// checkBufRetain flags kernel functions that store a *tensor.Tensor
// parameter somewhere that outlives the call: a package-level variable, a
// struct field, or an append to either. Kernel arguments are planner-owned
// buffers — the memory plan recycles them the moment the call returns, so
// any retained pointer is a use-after-reuse bug waiting for the next
// invocation.
func checkBufRetain(pf *pkgFile) []Finding {
	var out []Finding
	for _, decl := range pf.file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		params := tensorParams(fd.Type)
		if len(params) == 0 {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				if !escapingTarget(lhs, pf.pkgVars) {
					continue
				}
				rhs := as.Rhs[0]
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				}
				if name := retainedParam(rhs, params); name != "" {
					out = append(out, Finding{Pos: pf.fset.Position(as.Pos()), Check: "bufretain",
						Msg: fmt.Sprintf("kernel %s stores planner-owned buffer %q beyond the call; copy the data instead of retaining the pointer", fd.Name.Name, name)})
				}
			}
			return true
		})
	}
	return out
}

// tensorParams returns the names of parameters typed *tensor.Tensor (or
// slices of it).
func tensorParams(ft *ast.FuncType) map[string]bool {
	out := map[string]bool{}
	if ft.Params == nil {
		return out
	}
	for _, fld := range ft.Params.List {
		t := fld.Type
		if sl, ok := t.(*ast.ArrayType); ok {
			t = sl.Elt
		}
		star, ok := t.(*ast.StarExpr)
		if !ok {
			continue
		}
		sel, ok := star.X.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Tensor" {
			continue
		}
		if x, ok := sel.X.(*ast.Ident); !ok || x.Name != "tensor" {
			continue
		}
		for _, name := range fld.Names {
			out[name.Name] = true
		}
	}
	return out
}

// escapingTarget reports whether an assignment target outlives the call:
// a field selector (x.f) or a package-level variable.
func escapingTarget(lhs ast.Expr, pkgVars map[string]bool) bool {
	switch t := lhs.(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.Ident:
		return pkgVars[t.Name]
	case *ast.IndexExpr:
		return escapingTarget(t.X, pkgVars)
	}
	return false
}

// retainedParam reports the first tensor parameter stored by rhs — the bare
// identifier, or an append onto an escaping slice.
func retainedParam(rhs ast.Expr, params map[string]bool) string {
	switch r := rhs.(type) {
	case *ast.Ident:
		if params[r.Name] {
			return r.Name
		}
	case *ast.CallExpr:
		if id, ok := r.Fun.(*ast.Ident); ok && id.Name == "append" {
			for _, a := range r.Args[1:] {
				if id, ok := a.(*ast.Ident); ok && params[id.Name] {
					return id.Name
				}
			}
		}
	}
	return ""
}

// ---- evalinto ------------------------------------------------------------

// checkEvalInto flags EvalInto implementations in the operator registry
// that reach for an allocating evaluation path: a call to a "*Eval" helper
// (the allocating wrappers — the in-place ones end in "*EvalInto") or to a
// kernels.X entry point without an Into suffix. An EvalInto that allocates
// defeats the §4.3 memory plan: the planned destination buffer goes unused
// and every invocation allocates anyway.
func checkEvalInto(pf *pkgFile) []Finding {
	var out []Finding
	ast.Inspect(pf.file, func(n ast.Node) bool {
		kv, ok := n.(*ast.KeyValueExpr)
		if !ok {
			return true
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || key.Name != "EvalInto" {
			return true
		}
		ast.Inspect(kv.Value, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if allocatingEvalName(fun.Name) {
					out = append(out, Finding{Pos: pf.fset.Position(call.Pos()), Check: "evalinto",
						Msg: fmt.Sprintf("EvalInto built from allocating helper %s; use the *Into variant so the planned buffer is written", fun.Name)})
				}
			case *ast.SelectorExpr:
				x, ok := fun.X.(*ast.Ident)
				if !ok || x.Name != "kernels" {
					return true
				}
				if !strings.Contains(fun.Sel.Name, "Into") {
					out = append(out, Finding{Pos: pf.fset.Position(call.Pos()), Check: "evalinto",
						Msg: fmt.Sprintf("EvalInto calls allocating kernel kernels.%s; use the *Into variant so the planned buffer is written", fun.Sel.Name)})
				}
			}
			return true
		})
		return true
	})
	return out
}

// allocatingEvalName matches the registry's allocating helper-constructor
// convention: names ending in "Eval" allocate, names ending in "EvalInto"
// write the planned buffer.
func allocatingEvalName(name string) bool {
	return strings.HasSuffix(name, "Eval") && !strings.HasSuffix(name, "EvalInto")
}
