// Command nimble-vet is the repo's own static lint suite: a small analyzer
// pack enforcing the Go-level invariants the Nimble runtime depends on but
// the compiler cannot express in types.
//
//	panicpath  internal/serve, internal/vm   no panic on request paths
//	ctxthread  internal/serve, package root  blocking exports thread ctx
//	bufretain  internal/kernels              kernels never retain buffers
//	evalinto   internal/ir                   EvalInto never allocates
//
// Usage:
//
//	nimble-vet [-root dir]
//
// Findings print one per line as file:line: [check] message; the exit code
// is 1 when anything is flagged, so CI can gate on it. The tool is built on
// go/parser alone (no go/analysis driver — the build environment is
// offline), which is why it runs directly rather than via go vet -vettool.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// scope maps a directory (relative to the module root) to the checks that
// apply there.
var scopes = []struct {
	dir    string
	checks []func(*pkgFile) []Finding
}{
	{"internal/serve", []func(*pkgFile) []Finding{checkPanicPath, checkCtxThread}},
	{"internal/vm", []func(*pkgFile) []Finding{checkPanicPath}},
	{"internal/kernels", []func(*pkgFile) []Finding{checkBufRetain}},
	{"internal/ir", []func(*pkgFile) []Finding{checkEvalInto}},
	{".", []func(*pkgFile) []Finding{checkCtxThread}},
}

func main() {
	root := flag.String("root", ".", "module root to analyze")
	flag.Parse()

	var all []Finding
	for _, sc := range scopes {
		fs, err := vetDir(filepath.Join(*root, sc.dir), sc.checks)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nimble-vet: %v\n", err)
			os.Exit(2)
		}
		all = append(all, fs...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Pos.Filename != all[j].Pos.Filename {
			return all[i].Pos.Filename < all[j].Pos.Filename
		}
		return all[i].Pos.Line < all[j].Pos.Line
	})
	for _, f := range all {
		fmt.Println(f)
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "nimble-vet: %d finding(s)\n", len(all))
		os.Exit(1)
	}
}

// vetDir parses every non-test .go file directly in dir (no recursion) and
// applies the checks with package-level context assembled across the files.
func vetDir(dir string, checks []func(*pkgFile) []Finding) ([]Finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkgVars := map[string]bool{}
	for _, f := range files {
		collectPkgVars(f, pkgVars)
	}
	var out []Finding
	for _, f := range files {
		pf := &pkgFile{fset: fset, file: f, pkgVars: pkgVars}
		for _, check := range checks {
			out = append(out, check(pf)...)
		}
	}
	return out, nil
}

func collectPkgVars(f *ast.File, into map[string]bool) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, n := range vs.Names {
				into[n.Name] = true
			}
		}
	}
}
