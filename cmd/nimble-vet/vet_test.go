package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func run(t *testing.T, check func(*pkgFile) []Finding, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkgVars := map[string]bool{}
	collectPkgVars(f, pkgVars)
	return check(&pkgFile{fset: fset, file: f, pkgVars: pkgVars})
}

func wantFindings(t *testing.T, fs []Finding, n int, substr string) {
	t.Helper()
	if len(fs) != n {
		t.Fatalf("got %d findings, want %d: %v", len(fs), n, fs)
	}
	for _, f := range fs {
		if !strings.Contains(f.String(), substr) {
			t.Errorf("finding %q does not mention %q", f, substr)
		}
	}
}

func TestPanicPath(t *testing.T) {
	src := `package p
func Handle() { panic("boom") }

// guard rejects misuse (vet:panic-ok construction-phase).
func guard() { panic("misuse") }

func alsoOK() {
	// vet:panic-ok: unreachable by construction
	panic("marked inline")
}
`
	wantFindings(t, run(t, checkPanicPath, src), 1, "Handle")
}

func TestCtxThread(t *testing.T) {
	src := `package p
import "context"
type S struct{ ch chan int }
func (s *S) Blocks() int { return <-s.ch }
func (s *S) Threaded(ctx context.Context) int { return <-s.ch }
// Documented drains on close.
//
// vet:no-ctx — bounded by construction.
func (s *S) Documented() int { return <-s.ch }
func (s *S) Polls() int {
	select {
	case v := <-s.ch:
		return v
	default:
		return 0
	}
}
func (s *S) unexported() int { return <-s.ch }
func (s *S) SpawnsOnly() {
	go func() { <-s.ch }()
}
`
	wantFindings(t, run(t, checkCtxThread, src), 1, "Blocks")
}

func TestBufRetain(t *testing.T) {
	src := `package p
var cache []*tensor.Tensor
var last *tensor.Tensor
type holder struct{ t *tensor.Tensor }
func Bad1(in *tensor.Tensor) { last = in }
func Bad2(in *tensor.Tensor) { cache = append(cache, in) }
func Bad3(h *holder, in *tensor.Tensor) { h.t = in }
func Good(in *tensor.Tensor) *tensor.Tensor {
	out := in
	return out
}
func GoodShadow(in *tensor.Tensor) {
	local := []*tensor.Tensor{}
	local = append(local, in)
	_ = local
}
`
	fs := run(t, checkBufRetain, src)
	if len(fs) != 3 {
		t.Fatalf("got %d findings, want 3: %v", len(fs), fs)
	}
}

func TestEvalInto(t *testing.T) {
	src := `package p
func register() {
	RegisterOp(&Op{
		Eval:     binaryEval(k),
		EvalInto: binaryEval(k),
	})
	RegisterOp(&Op{
		EvalInto: binaryEvalInto(kInto),
	})
	RegisterOp(&Op{
		EvalInto: func(args []*tensor.Tensor, out *tensor.Tensor) (*tensor.Tensor, error) {
			return kernels.MatMul(args[0], args[1]), nil
		},
	})
	RegisterOp(&Op{
		EvalInto: func(args []*tensor.Tensor, out *tensor.Tensor) (*tensor.Tensor, error) {
			return kernels.MatMulInto(args[0], args[1], out), nil
		},
	})
}
`
	fs := run(t, checkEvalInto, src)
	if len(fs) != 2 {
		t.Fatalf("got %d findings, want 2: %v", len(fs), fs)
	}
	if !strings.Contains(fs[0].String(), "binaryEval") || !strings.Contains(fs[1].String(), "MatMul") {
		t.Errorf("unexpected findings: %v", fs)
	}
}

// TestTreeIsClean runs the full suite over the real repository: the tree
// must stay at zero findings, so CI can fail on any new one.
func TestTreeIsClean(t *testing.T) {
	var all []Finding
	for _, sc := range scopes {
		fs, err := vetDir("../../"+sc.dir, sc.checks)
		if err != nil {
			t.Fatalf("%s: %v", sc.dir, err)
		}
		all = append(all, fs...)
	}
	for _, f := range all {
		t.Errorf("%s", f)
	}
}
