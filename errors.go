package nimble

import (
	"errors"
	"fmt"

	"nimble/internal/serve"
)

// Sentinel errors of the public API. All are matched with errors.Is; the
// errors actually returned wrap these with context (entry name, arity).
var (
	// ErrUnknownEntry reports an Invoke against an entry function the
	// program does not define. Program.Entrypoints lists what exists.
	ErrUnknownEntry = errors.New("nimble: unknown entry function")
	// ErrBadArity reports an Invoke with the wrong number of arguments for
	// the entry's signature.
	ErrBadArity = errors.New("nimble: wrong number of arguments")
	// ErrCanceled reports an invocation abandoned because its context was
	// canceled or its deadline passed. Returned errors wrap both this
	// sentinel and the underlying context error, so
	// errors.Is(err, context.DeadlineExceeded) also works.
	ErrCanceled = serve.ErrCanceled
	// ErrClosed reports an operation on a closed Session or Service.
	ErrClosed = serve.ErrClosed
)

func unknownEntry(name string) error {
	return fmt.Errorf("%w: %q", ErrUnknownEntry, name)
}

func badArity(sig *EntrySignature, got int) error {
	return fmt.Errorf("%w: %s takes %d, got %d", ErrBadArity, sig.Name, len(sig.Params), got)
}

// canceled wraps err in the ErrCanceled family when it is a context error
// (possibly buried in a wrap chain); other errors pass through untouched.
// The classification itself lives in internal/serve so both layers agree.
func canceled(err error) error {
	return serve.WrapCtxErr(err)
}
