package nimble

import (
	"errors"
	"fmt"
	"time"

	"nimble/internal/serve"
	"nimble/internal/verify"
)

// Sentinel errors of the public API. All are matched with errors.Is; the
// errors actually returned wrap these with context (entry name, arity).
var (
	// ErrUnknownEntry reports an Invoke against an entry function the
	// program does not define. Program.Entrypoints lists what exists.
	ErrUnknownEntry = errors.New("nimble: unknown entry function")
	// ErrBadArity reports an Invoke with the wrong number of arguments for
	// the entry's signature.
	ErrBadArity = errors.New("nimble: wrong number of arguments")
	// ErrCanceled reports an invocation abandoned because its context was
	// canceled or its deadline passed. Returned errors wrap both this
	// sentinel and the underlying context error, so
	// errors.Is(err, context.DeadlineExceeded) also works.
	ErrCanceled = serve.ErrCanceled
	// ErrClosed reports an operation on a closed Session or Service.
	ErrClosed = serve.ErrClosed
	// ErrBusy reports an Invoke or InvokeStream on a Session that still has
	// a stream open: sessions are single-threaded, so the open stream owns
	// the VM until it is drained or closed. Services have no such
	// restriction — their streams each check out a pooled session.
	ErrBusy = errors.New("nimble: session busy: a stream is still open")
	// ErrBadInput reports a request rejected at the Invoke boundary before
	// reaching the VM: wrong value kind, or a tensor whose dtype, rank, or
	// static dimensions contradict the entry's compiled signature. Arity
	// mismatches (ErrBadArity) match this sentinel too, so servers can map
	// the whole family to one 400. Rejected requests never consume a
	// session.
	ErrBadInput = serve.ErrBadInput
	// ErrInternal reports an execution fault: a VM or kernel panic
	// recovered at the session boundary instead of crashing the process.
	// In a Service the faulting session is quarantined (replaced by a
	// fresh VM), so no state the failed request touched can leak into a
	// later one; a plain Session poisons itself and returns ErrClosed from
	// then on.
	ErrInternal = serve.ErrInternal
	// ErrOverloaded reports a request shed by the Service's admission
	// control: the entry's queue is full, the request's deadline cannot be
	// met at the current backlog, or the entry's circuit breaker is open
	// after consecutive internal faults. RetryAfter extracts the back-off
	// hint these errors carry.
	ErrOverloaded = serve.ErrOverloaded
	// ErrUnknownModel reports a Registry request addressing a model name or
	// pinned version that is not deployed. Registry.Models lists what is.
	// Servers map it to 404 — the reference is well-formed, the target just
	// does not exist (malformed references are ErrBadInput → 400).
	ErrUnknownModel = errors.New("nimble: unknown model")
	// ErrNoCanary reports a Promote or Rollback against a model with no
	// canary rollout in progress: there is nothing to promote or roll back.
	// Servers map it to 409.
	ErrNoCanary = errors.New("nimble: no canary deployment in progress")
	// ErrVerify reports a static-verifier rejection: a compiled artifact
	// (the IR after some pass, the emitted bytecode, or a deserialized
	// executable in Load) violated a machine-checked invariant. The concrete
	// error is a *VerificationError listing every violation; it matches this
	// sentinel with errors.Is. See docs/verifier.md for the catalog.
	ErrVerify = errors.New("nimble: verification failed")
)

// RetryAfter extracts the back-off hint from an ErrOverloaded-family
// error: how long the admission controller estimates until capacity
// exists (or the circuit breaker closes). Servers surface it as a
// Retry-After header; ok is false for every other error.
func RetryAfter(err error) (d time.Duration, ok bool) {
	var oe *serve.OverloadError
	if errors.As(err, &oe) {
		return oe.RetryAfter, true
	}
	return 0, false
}

func unknownEntry(name string) error {
	return fmt.Errorf("%w: %q", ErrUnknownEntry, name)
}

// badArity matches both ErrBadArity (the precise sentinel) and ErrBadInput
// (the family servers map to 400).
func badArity(sig *EntrySignature, got int) error {
	return fmt.Errorf("%w: %s takes %d, got %d", errBadArityInput{}, sig.Name, len(sig.Params), got)
}

// errBadArityInput bridges the two sentinels an arity error belongs to.
type errBadArityInput struct{}

func (errBadArityInput) Error() string { return ErrBadArity.Error() }
func (errBadArityInput) Is(target error) bool {
	return target == ErrBadArity || target == ErrBadInput
}

// badInput wraps a boundary-validation failure in the ErrBadInput family.
func badInput(entry string, detail string) error {
	return fmt.Errorf("%w: %s: %s", ErrBadInput, entry, detail)
}

// canceled wraps err in the ErrCanceled family when it is a context error
// (possibly buried in a wrap chain); other errors pass through untouched.
// The classification itself lives in internal/serve so both layers agree.
func canceled(err error) error {
	return serve.WrapCtxErr(err)
}

// VerificationError reports invariant violations found by the static
// verifier (WithVerify, NIMBLE_VERIFY=1, or Load's executable check). It
// matches ErrVerify with errors.Is. Stage names the pipeline boundary that
// failed ("after manifest-alloc", "executable", "loaded executable");
// Violations holds one rendered diagnostic per violated invariant, each
// prefixed with its catalog ID ("[mem.coalesce-overlap] ...").
type VerificationError struct {
	Stage      string
	Violations []string
}

func (e *VerificationError) Error() string {
	msg := fmt.Sprintf("%s: %d invariant violation(s) %s", ErrVerify.Error(), len(e.Violations), e.Stage)
	for _, v := range e.Violations {
		msg += "\n  " + v
	}
	return msg
}

func (e *VerificationError) Is(target error) bool { return target == ErrVerify }

// wrapVerify converts an internal *verify.Error buried anywhere in err's
// chain into the public *VerificationError; other errors pass through.
func wrapVerify(err error) error {
	var ve *verify.Error
	if !errors.As(err, &ve) {
		return err
	}
	pub := &VerificationError{Stage: ve.Stage}
	for _, v := range ve.Violations {
		pub.Violations = append(pub.Violations, v.String())
	}
	return pub
}
