package nimble_test

import (
	"context"
	"fmt"
	"log"

	"nimble"
	"nimble/ir"
	"nimble/tensor"
)

// ExampleCompile builds a tiny dynamic model with an Any-shaped input,
// compiles it, and runs it on two different input sizes with one
// executable — the compile-once workflow of the paper.
func ExampleCompile() {
	// main(x: Tensor[(Any, 4)]) = tanh(x @ I)
	x := ir.NewVar("x", ir.TT(tensor.Float32, ir.DimAny, 4))
	w := ir.Const(tensor.FromF32([]float32{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}, 4, 4))
	b := ir.NewBuilder()
	out := b.Op("tanh", b.Op("dense", x, w))
	mod := ir.NewModule()
	mod.AddFunc("main", ir.NewFunc([]*ir.Var{x}, b.Finish(out), nil))

	prog, err := nimble.Compile(mod)
	if err != nil {
		log.Fatal(err)
	}
	sess := prog.NewSession()
	for _, rows := range []int{1, 3} {
		in := tensor.New(tensor.Float32, rows, 4)
		got, err := sess.Invoke(context.Background(), "main", nimble.TensorValue(in))
		if err != nil {
			log.Fatal(err)
		}
		t, _ := got.Tensor()
		fmt.Printf("(%d, 4) -> %v\n", rows, t.Shape())
	}
	// Output:
	// (1, 4) -> (1, 4)
	// (3, 4) -> (3, 4)
}

// ExampleProgram_Entrypoints shows compile-time introspection: parameter
// and result types (with Any dimensions) and the compiler's
// row-separability verdict, which decides micro-batching in a Service.
func ExampleProgram_Entrypoints() {
	x := ir.NewVar("x", ir.TT(tensor.Float32, ir.DimAny, 8))
	w := ir.Const(tensor.New(tensor.Float32, 8, 2))
	b := ir.NewBuilder()
	out := b.Op("relu", b.Op("dense", x, w))
	mod := ir.NewModule()
	mod.AddFunc("main", ir.NewFunc([]*ir.Var{x}, b.Finish(out), nil))

	prog, err := nimble.Compile(mod)
	if err != nil {
		log.Fatal(err)
	}
	for _, sig := range prog.Entrypoints() {
		fmt.Printf("%s  row-separable=%v\n", sig, sig.RowSeparable)
	}
	// Output:
	// main(Tensor[(Any, 8), float32]) -> Tensor[(Any, 2), float32]  row-separable=true
}

// ExampleProgram_NewService serves a program to concurrent callers: the
// service owns a session pool and routes this row-separable entry through
// its micro-batcher automatically.
func ExampleProgram_NewService() {
	x := ir.NewVar("x", ir.TT(tensor.Float32, ir.DimAny, 2))
	w := ir.Const(tensor.FromF32([]float32{1, 2, 3, 4}, 2, 2))
	b := ir.NewBuilder()
	out := b.Op("dense", x, w)
	mod := ir.NewModule()
	mod.AddFunc("main", ir.NewFunc([]*ir.Var{x}, b.Finish(out), nil))

	prog, err := nimble.Compile(mod)
	if err != nil {
		log.Fatal(err)
	}
	svc, err := prog.NewService(nimble.ServiceConfig{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	in := nimble.TensorValue(tensor.FromF32([]float32{1, 1}, 1, 2))
	got, err := svc.Invoke(context.Background(), "main", in)
	if err != nil {
		log.Fatal(err)
	}
	t, _ := got.Tensor()
	fmt.Println(t.AsF64())
	// Output:
	// [4 6]
}
