// BERT example: dynamic sequence lengths (dynamic data shapes) through the
// public API. The entry signature shows the Any dimension; note that the
// compiler does NOT mark it row-separable — attention couples sequence
// positions, so the serving layer dispatches BERT per request instead of
// micro-batching it.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"nimble"
	"nimble/models"
)

func main() {
	cfg := models.BERTConfig{Layers: 2, Hidden: 128, Heads: 4, FFN: 512, Vocab: 1000, MaxSeq: 64, Seed: 44}
	m := models.NewBERT(cfg)
	prog, err := nimble.Compile(m.Module)
	if err != nil {
		log.Fatal(err)
	}
	sig, err := prog.Entry("main")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("entry %s\n", sig)
	fmt.Printf("row-separable: %v (attention couples rows; no micro-batching)\n", sig.RowSeparable)
	fmt.Printf("compiled: %d instructions, %d kernels\n", prog.Stats().Instructions, prog.Stats().Kernels)

	sess := prog.NewSession()
	rng := rand.New(rand.NewSource(1))
	ctx := context.Background()
	for _, n := range []int{9, 16, 23, 40} {
		ids := m.RandomIDs(rng, n)
		start := time.Now()
		out, err := sess.Invoke(ctx, "main", nimble.TensorValue(ids))
		lat := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		t, _ := out.Tensor()
		fmt.Printf("seq len %2d (residue %d): output %v in %v\n", n, n%8, t.Shape(), lat)
	}
}
