// BERT example: dynamic sequence lengths (dynamic data shapes). Every dense
// kernel in the compiled program is symbolic and dispatched by the runtime
// residue of the sequence length (§4.5).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"nimble/internal/compiler"
	"nimble/internal/models"
)

func main() {
	cfg := models.BERTConfig{Layers: 2, Hidden: 128, Heads: 4, FFN: 512, Vocab: 1000, MaxSeq: 64, Seed: 44}
	m := models.NewBERT(cfg)
	machine, res, err := compiler.CompileToVM(m.Module, compiler.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var symbolic []string
	for _, k := range res.Exe.KernelNames {
		if strings.HasPrefix(k, "dense_sym_") {
			symbolic = append(symbolic, k)
		}
	}
	fmt.Printf("BERT L=%d H=%d compiled with symbolic kernels: %v\n", cfg.Layers, cfg.Hidden, symbolic)

	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{9, 16, 23, 40} {
		ids := m.RandomIDs(rng, n)
		start := time.Now()
		out, err := machine.InvokeTensors("main", ids)
		lat := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("seq len %2d (residue %d): output %v in %v\n",
			n, n%8, out.Shape(), lat)
	}
}
