// LSTM example: variable-length sequence inference (dynamic control flow)
// through the public API. The compiled program recurses over a cons-list
// ADT; the example shows the introspected signature, per-length latency,
// and context cancellation stopping a long sequence mid-run.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"time"

	"nimble"
	"nimble/models"
)

func main() {
	m := models.NewLSTM(models.LSTMConfig{Input: 128, Hidden: 128, Layers: 1, Seed: 42})
	prog, err := nimble.Compile(m.Module)
	if err != nil {
		log.Fatal(err)
	}
	st := prog.Stats()
	fmt.Printf("LSTM compiled: %d instructions, %d fused groups\n", st.Instructions, st.FusionGroups)
	for _, sig := range prog.Entrypoints() {
		fmt.Printf("entry %s\n", sig)
	}

	sess := prog.NewSession()
	rng := rand.New(rand.NewSource(1))
	ctx := context.Background()
	for _, n := range []int{8, 26, 60} {
		seq := models.RandomSequenceValue(m, rng, n)
		start := time.Now()
		out, err := sess.Invoke(ctx, "main", seq)
		lat := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		t, _ := out.Tensor()
		fmt.Printf("len=%3d  output %v  in %8v (%.1f µs/token)\n",
			n, t.Shape(), lat, float64(lat.Microseconds())/float64(n))
	}

	// Cancellation: a deadline that cannot fit a 10k-step sequence stops
	// the recursion at a call boundary instead of running to completion.
	long := models.RandomSequenceValue(m, rng, 10000)
	cctx, cancel := context.WithTimeout(ctx, time.Millisecond)
	defer cancel()
	_, err = sess.Invoke(cctx, "main", long)
	fmt.Printf("10000-step sequence under 1ms deadline: canceled=%v deadline=%v\n",
		errors.Is(err, nimble.ErrCanceled), errors.Is(err, context.DeadlineExceeded))
}
