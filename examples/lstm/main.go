// LSTM example: variable-length sequence inference (dynamic control flow).
// Compares the compiled Nimble VM against the eager define-by-run baseline
// on the same weights, checking outputs agree and printing latencies.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"nimble/internal/baselines"
	"nimble/internal/compiler"
	"nimble/internal/data"
	"nimble/internal/models"
	"nimble/internal/vm"
)

func main() {
	cfg := models.LSTMConfig{Input: 128, Hidden: 128, Layers: 1, Seed: 42}
	m := models.NewLSTM(cfg)
	machine, res, err := compiler.CompileToVM(m.Module, compiler.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LSTM in=%d hid=%d compiled: %d instructions, %d fused groups\n",
		cfg.Input, cfg.Hidden, res.Stats.Instructions, res.Stats.Fusion.Groups)

	e := baselines.NewEager()
	cells := e.CellsFromModel(m)
	rng := rand.New(rand.NewSource(1))
	sampler := data.NewMRPC(7)
	for i := 0; i < 3; i++ {
		n := sampler.Length()
		steps := m.RandomSteps(rng, n)

		start := time.Now()
		out, err := machine.Invoke("main", models.SequenceToList(m.NilC.Tag, m.ConsC.Tag, steps))
		nimbleLat := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		start = time.Now()
		ref := e.RunLSTM(cells, steps)
		eagerLat := time.Since(start)

		agree := out.(*vm.TensorObj).T.AllClose(ref, 1e-4, 1e-5)
		fmt.Printf("len=%3d  nimble=%8v  eager=%8v  outputs agree: %v\n",
			n, nimbleLat, eagerLat, agree)
	}
}
