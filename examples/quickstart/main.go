// Quickstart: build a tiny dynamic model with an Any-shaped input through
// the public nimble/ir builder, compile it with nimble.Compile, inspect
// its entry signature, and run it on inputs of different sizes with one
// executable.
package main

import (
	"context"
	"fmt"
	"log"

	"nimble"
	"nimble/ir"
	"nimble/tensor"
)

func main() {
	// A model over Tensor[(Any, 4)]: dense -> tanh -> concat with the input.
	x := ir.NewVar("x", ir.TT(tensor.Float32, ir.DimAny, 4))
	w := ir.Const(tensor.FromF32([]float32{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}, 4, 4))
	b := ir.NewBuilder()
	h := b.Op("dense", x, w)
	t := b.Op("tanh", h)
	out := b.OpAttrs("concat", ir.Attrs{"axis": 0}, x, t)
	mod := ir.NewModule()
	mod.AddFunc("main", ir.NewFunc([]*ir.Var{x}, b.Finish(out), nil))

	fmt.Println("=== IR before compilation ===")
	fmt.Println(ir.PrintModule(mod))

	prog, err := nimble.Compile(mod)
	if err != nil {
		log.Fatal(err)
	}
	st := prog.Stats()
	fmt.Printf("compiled: %d instructions, %d kernels, fusion groups: %d\n\n",
		st.Instructions, st.Kernels, st.FusionGroups)
	for _, sig := range prog.Entrypoints() {
		fmt.Printf("entry %s\n\n", sig)
	}
	fmt.Println("=== bytecode ===")
	fmt.Println(prog.Disassemble())

	// One executable, many shapes: the Any dimension is resolved at runtime
	// by shape functions.
	sess := prog.NewSession()
	ctx := context.Background()
	for _, rows := range []int{1, 3, 6} {
		in := tensor.New(tensor.Float32, rows, 4)
		in.Fill(0.5)
		got, err := sess.Invoke(ctx, "main", nimble.TensorValue(in))
		if err != nil {
			log.Fatal(err)
		}
		ot, _ := got.Tensor()
		fmt.Printf("input (%d, 4) -> output %v\n", rows, ot.Shape())
	}
}
