// Quickstart: build a tiny dynamic model with an Any-shaped input, compile
// it through the full Nimble pipeline, and run it on inputs of different
// sizes with one executable.
package main

import (
	"fmt"
	"log"

	"nimble/internal/compiler"
	"nimble/internal/ir"
	"nimble/internal/tensor"
)

func main() {
	// A model over Tensor[(Any, 4)]: dense -> tanh -> concat with the input.
	x := ir.NewVar("x", ir.TT(tensor.Float32, ir.DimAny, 4))
	w := ir.Const(tensor.FromF32([]float32{
		1, 0, 0, 0,
		0, 1, 0, 0,
		0, 0, 1, 0,
		0, 0, 0, 1,
	}, 4, 4))
	b := ir.NewBuilder()
	h := b.Op("dense", x, w)
	t := b.Op("tanh", h)
	out := b.OpAttrs("concat", ir.Attrs{"axis": 0}, x, t)
	mod := ir.NewModule()
	mod.AddFunc("main", ir.NewFunc([]*ir.Var{x}, b.Finish(out), nil))

	fmt.Println("=== IR before compilation ===")
	fmt.Println(ir.PrintModule(mod))

	machine, res, err := compiler.CompileToVM(mod, compiler.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d instructions, %d kernels, fusion groups: %d\n\n",
		res.Stats.Instructions, res.Stats.Kernels, res.Stats.Fusion.Groups)
	fmt.Println("=== bytecode ===")
	fmt.Println(res.Exe.Disassemble())

	// One executable, many shapes: the Any dimension is resolved at runtime
	// by shape functions.
	for _, rows := range []int{1, 3, 6} {
		in := tensor.New(tensor.Float32, rows, 4)
		in.Fill(0.5)
		got, err := machine.InvokeTensors("main", in)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("input (%d, 4) -> output %v\n", rows, got.Shape())
	}
}
