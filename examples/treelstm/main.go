// Tree-LSTM example: inference over runtime-shaped trees (dynamic data
// structures) through the public API. Inputs are built as nested ADT
// values; the compiled program recurses over the Tree ADT with the VM's
// AllocADT/GetTag/GetField/Invoke instructions.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"nimble"
	"nimble/models"
)

func main() {
	cfg := models.TreeLSTMConfig{Input: 64, Hidden: 64, Seed: 43}
	m := models.NewTreeLSTM(cfg)
	prog, err := nimble.Compile(m.Module)
	if err != nil {
		log.Fatal(err)
	}
	for _, sig := range prog.Entrypoints() {
		fmt.Printf("entry %s\n", sig)
	}

	sess := prog.NewSession()
	sess.EnableProfiling()
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	for _, words := range []int{5, 12, 21, 34} {
		tree := models.RandomTree(rng, words, cfg.Input)
		obj := models.TreeValue(m, tree)
		start := time.Now()
		out, err := sess.Invoke(ctx, "main", obj)
		lat := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		t, _ := out.Tensor()
		fmt.Printf("tree with %2d leaves (%2d nodes): root hidden %v in %v\n",
			tree.Leaves(), tree.Nodes(), t.Shape(), lat)
	}
	fmt.Println("\nVM profile (note GetTag/If per tree node — the dynamic control flow):")
	fmt.Print(sess.Profile())
}
