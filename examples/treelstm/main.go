// Tree-LSTM example: inference over runtime-shaped trees (dynamic data
// structures). The compiled program recurses over the Tree ADT with the
// VM's AllocADT/GetTag/GetField/Invoke instructions.
package main

import (
	"fmt"
	"log"
	"time"

	"nimble/internal/compiler"
	"nimble/internal/data"
	"nimble/internal/models"
	"nimble/internal/vm"
)

func main() {
	cfg := models.TreeLSTMConfig{Input: 64, Hidden: 64, Seed: 43}
	m := models.NewTreeLSTM(cfg)
	machine, _, err := compiler.CompileToVM(m.Module, compiler.Options{})
	if err != nil {
		log.Fatal(err)
	}
	prof := vm.NewProfiler()
	machine.SetProfiler(prof)

	sst := data.NewSST(7)
	for i := 0; i < 4; i++ {
		words := sst.Words()
		tree := models.RandomTree(sst.Rng(), words, cfg.Input)
		obj := m.ToObject(tree)
		start := time.Now()
		out, err := machine.Invoke("main", obj)
		lat := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tree with %2d leaves (%2d nodes): root hidden %v in %v\n",
			tree.Leaves(), tree.Nodes(), out.(*vm.TensorObj).T.Shape(), lat)
	}
	fmt.Println("\nVM profile (note GetTag/If per tree node — the dynamic control flow):")
	fmt.Print(prof.Summary())
}
