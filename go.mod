module nimble

go 1.24
