package baselines

import (
	"math"
	"math/rand"
	"testing"

	"nimble/internal/compiler"
	"nimble/internal/models"
	"nimble/internal/tensor"
	"nimble/internal/vm"
)

func lstmFixture(t *testing.T, layers int) (*models.LSTM, *vm.VM) {
	t.Helper()
	m := models.NewLSTM(models.LSTMConfig{Input: 12, Hidden: 16, Layers: layers, Seed: 30})
	machine, _, err := compiler.CompileToVM(m.Module, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m, machine
}

func TestEagerLSTMMatchesNimble(t *testing.T) {
	// Eager shares Nimble's weights, so the two systems must agree — the
	// latency tables compare identical computations.
	m, machine := lstmFixture(t, 1)
	rng := rand.New(rand.NewSource(31))
	steps := m.RandomSteps(rng, 7)

	e := NewEager()
	cells := e.CellsFromModel(m)
	eagerOut := e.RunLSTM(cells, steps)

	nimbleOut, err := machine.Invoke("main", models.SequenceToList(m.NilC.Tag, m.ConsC.Tag, steps))
	if err != nil {
		t.Fatal(err)
	}
	if !eagerOut.AllClose(nimbleOut.(*vm.TensorObj).T, 1e-4, 1e-5) {
		t.Error("eager and Nimble disagree on LSTM output")
	}
	// The tape records every framework op: an LSTM step is 14 ops + 4
	// slices per layer; the overhead Nimble fuses away.
	if e.TapeLen() == 0 || e.Ops == 0 {
		t.Error("eager tape not populated")
	}
}

func TestEagerTwoLayer(t *testing.T) {
	m, machine := lstmFixture(t, 2)
	rng := rand.New(rand.NewSource(32))
	steps := m.RandomSteps(rng, 4)
	e := NewEager()
	out := e.RunLSTM(e.CellsFromModel(m), steps)
	nimbleOut, err := machine.Invoke("main", models.SequenceToList(m.NilC.Tag, m.ConsC.Tag, steps))
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllClose(nimbleOut.(*vm.TensorObj).T, 1e-4, 1e-5) {
		t.Error("2-layer eager disagrees with Nimble")
	}
}

func TestDataflowLSTMMatchesNimble(t *testing.T) {
	m, machine := lstmFixture(t, 1)
	rng := rand.New(rand.NewSource(33))
	steps := m.RandomSteps(rng, 6)

	g := BuildDataflowLSTM(m, steps)
	var stats DFStats
	out, err := g.Run(&stats)
	if err != nil {
		t.Fatal(err)
	}
	nimbleOut, err := machine.Invoke("main", models.SequenceToList(m.NilC.Tag, m.ConsC.Tag, steps))
	if err != nil {
		t.Fatal(err)
	}
	if !out.AllClose(nimbleOut.(*vm.TensorObj).T, 1e-4, 1e-5) {
		t.Error("dataflow and Nimble disagree")
	}
	if stats.Iterations != 6 {
		t.Errorf("iterations = %d, want 6", stats.Iterations)
	}
	// Control primitives fire every iteration — the TF-style overhead.
	if stats.ControlNodes == 0 {
		t.Error("no control nodes executed")
	}
	if stats.NodesExecuted <= stats.ControlNodes {
		t.Error("kernel nodes missing")
	}
}

func TestDataflowLSTMTwoLayerAndLengthOne(t *testing.T) {
	m, machine := lstmFixture(t, 2)
	rng := rand.New(rand.NewSource(34))
	for _, n := range []int{1, 3} {
		steps := m.RandomSteps(rng, n)
		g := BuildDataflowLSTM(m, steps)
		out, err := g.Run(nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		nimbleOut, err := machine.Invoke("main", models.SequenceToList(m.NilC.Tag, m.ConsC.Tag, steps))
		if err != nil {
			t.Fatal(err)
		}
		if !out.AllClose(nimbleOut.(*vm.TensorObj).T, 1e-4, 1e-5) {
			t.Errorf("n=%d: dataflow disagrees", n)
		}
	}
}

func TestStaticLSTMPadding(t *testing.T) {
	m, machine := lstmFixture(t, 1)
	rng := rand.New(rand.NewSource(35))
	steps := m.RandomSteps(rng, 5)
	s := NewStaticLSTM(m, 16)
	out := s.Run(steps)
	// Padding with zero steps changes the final state (the static model
	// keeps stepping), so only the shape must match; the point is the
	// wasted work, which PaddedSteps records.
	if !out.Shape().Equal(tensor.Shape{1, 16}) {
		t.Errorf("static output shape = %v", out.Shape())
	}
	if s.PaddedSteps != 11 {
		t.Errorf("padded steps = %d, want 11", s.PaddedSteps)
	}
	// Full-length input needs no padding and matches Nimble exactly.
	full := m.RandomSteps(rng, 16)
	s2 := NewStaticLSTM(m, 16)
	out2 := s2.Run(full)
	nimbleOut, err := machine.Invoke("main", models.SequenceToList(m.NilC.Tag, m.ConsC.Tag, full))
	if err != nil {
		t.Fatal(err)
	}
	if s2.PaddedSteps != 0 {
		t.Errorf("unexpected padding: %d", s2.PaddedSteps)
	}
	if !out2.AllClose(nimbleOut.(*vm.TensorObj).T, 1e-4, 1e-5) {
		t.Error("unpadded static disagrees with Nimble")
	}
}

func TestEagerTreeLSTMRuns(t *testing.T) {
	cfg := models.TreeLSTMConfig{Input: 8, Hidden: 6, Seed: 36}
	e := NewEager()
	cell := NewEagerTreeCell(e, cfg)
	rng := rand.New(rand.NewSource(37))
	for _, leaves := range []int{1, 4, 11} {
		tree := models.RandomTree(rng, leaves, cfg.Input)
		h, c := e.RunTreeLSTM(cell, tree)
		if !h.T.Shape().Equal(tensor.Shape{1, cfg.Hidden}) || !c.T.Shape().Equal(tensor.Shape{1, cfg.Hidden}) {
			t.Errorf("leaves=%d: state shapes %v, %v", leaves, h.T.Shape(), c.T.Shape())
		}
		for _, v := range h.T.F32() {
			if math.IsNaN(float64(v)) {
				t.Fatal("NaN in eager tree output")
			}
		}
	}
}

func TestFoldMatchesEager(t *testing.T) {
	// Fold batches by depth but must compute the same function as the
	// unbatched recursive execution.
	cfg := models.TreeLSTMConfig{Input: 8, Hidden: 6, Seed: 38}
	e := NewEager()
	cell := NewEagerTreeCell(e, cfg)
	fold := NewFold(cell)
	rng := rand.New(rand.NewSource(39))
	for _, leaves := range []int{1, 2, 5, 12} {
		tree := models.RandomTree(rng, leaves, cfg.Input)
		want, _ := e.RunTreeLSTM(cell, tree)
		got := fold.RunTree(tree)
		if !got.AllClose(want.T, 1e-4, 1e-5) {
			t.Errorf("leaves=%d: fold disagrees with eager", leaves)
		}
	}
	if fold.GraphsBuilt != 4 {
		t.Errorf("GraphsBuilt = %d, want one per input", fold.GraphsBuilt)
	}
	if fold.BatchedKernels == 0 || fold.NodesBatched == 0 {
		t.Error("fold stats empty")
	}
}

func TestEagerBERTRuns(t *testing.T) {
	cfg := models.BERTConfig{Layers: 2, Hidden: 16, Heads: 2, FFN: 32, Vocab: 50, MaxSeq: 32, Seed: 40}
	e := NewEager()
	m := NewEagerBERT(e, cfg)
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{3, 9} {
		ids := tensor.RandomInts(rng, int64(cfg.Vocab), n)
		out := e.RunBERT(m, ids)
		if !out.Shape().Equal(tensor.Shape{n, cfg.Hidden}) {
			t.Errorf("n=%d: shape %v", n, out.Shape())
		}
		for _, v := range out.F32()[:4] {
			if math.IsNaN(float64(v)) {
				t.Fatal("NaN in eager BERT")
			}
		}
	}
	if e.Ops == 0 {
		t.Error("no eager ops recorded")
	}
}

func TestOptimalStaticPlan(t *testing.T) {
	// Three same-size buffers with disjoint lifetimes need one slot.
	ivs := []Interval{{100, 0, 1}, {100, 2, 3}, {100, 4, 5}}
	if got := OptimalStaticPlan(ivs); got != 100 {
		t.Errorf("disjoint plan = %d, want 100", got)
	}
	// Overlapping lifetimes need separate slots.
	ivs = []Interval{{100, 0, 5}, {100, 1, 3}, {50, 2, 4}}
	if got := OptimalStaticPlan(ivs); got != 250 {
		t.Errorf("overlapping plan = %d, want 250", got)
	}
	// Growing reuse: a small freed slot grows for a bigger later buffer.
	ivs = []Interval{{60, 0, 1}, {100, 2, 3}}
	if got := OptimalStaticPlan(ivs); got != 100 {
		t.Errorf("grown plan = %d, want 100", got)
	}
	if SumSizes(ivs) != 160 {
		t.Errorf("SumSizes = %d", SumSizes(ivs))
	}
	// Optimal never exceeds the no-reuse footprint.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var ivs []Interval
		for i := 0; i < 20; i++ {
			lo := rng.Intn(40)
			ivs = append(ivs, Interval{Size: 1 + rng.Intn(1000), Lo: lo, Hi: lo + 1 + rng.Intn(10)})
		}
		if OptimalStaticPlan(ivs) > SumSizes(ivs) {
			t.Fatal("plan exceeds sum of sizes")
		}
	}
}
