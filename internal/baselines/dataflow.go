package baselines

import (
	"fmt"
	"time"

	"nimble/internal/kernels"
	"nimble/internal/models"
	"nimble/internal/tensor"
)

// The dataflow executor models the define-then-run frameworks (TensorFlow,
// MXNet symbolic): a static graph where dynamism is encoded with
// control-flow primitives — Enter/Merge/Switch/Exit/NextIteration — executed
// by a tagged-token scheduler (Yu et al., "Dynamic control flow in
// large-scale machine learning"). The per-node scheduling work (ready queue,
// per-iteration value tagging, pending-count bookkeeping) is the "inefficient
// and complex control flow encoding" overhead of §7 / §2.1.

// DFKind enumerates dataflow node kinds.
type DFKind int

const (
	// DFKernel executes a tensor kernel.
	DFKernel DFKind = iota
	// DFConst produces a constant tensor.
	DFConst
	// DFEnter imports a value into the loop frame at iteration 0.
	DFEnter
	// DFMerge forwards whichever of its two inputs arrives (Enter at iter
	// 0, NextIteration afterwards).
	DFMerge
	// DFSwitch routes its input to the loop body or the exit depending on
	// the loop predicate.
	DFSwitch
	// DFExit exports the value that leaves the loop.
	DFExit
	// DFNextIter feeds a body result to the next iteration's Merge.
	DFNextIter
	// DFRead reads the iteration-indexed input (a TensorArray read).
	DFRead
)

// DFNode is one graph node.
type DFNode struct {
	ID     int
	Kind   DFKind
	Name   string
	Inputs []int
	Kernel func(args []*tensor.Tensor) *tensor.Tensor
	Value  *tensor.Tensor
}

// DFGraph is a built dataflow graph with (at most) one loop.
type DFGraph struct {
	Nodes []*DFNode
	// NodeOverhead charges a calibrated session cost per node firing,
	// modeling the framework executor's per-node work (allocator, scoped
	// bookkeeping) beyond this scheduler's own map and queue operations;
	// see Eager.OpOverhead for the calibration rationale.
	NodeOverhead time.Duration
	// Output is the node whose value is the graph result.
	Output int
	// Cond reports whether iteration i should run.
	Cond func(iter int) bool
	// Read provides the TensorArray backing DFRead nodes.
	Read func(iter int) *tensor.Tensor
	// loop bookkeeping
	merges, switches, exits, nextIters []int
}

// NewDFGraph creates an empty graph.
func NewDFGraph() *DFGraph { return &DFGraph{} }

func (g *DFGraph) add(n *DFNode) int {
	n.ID = len(g.Nodes)
	g.Nodes = append(g.Nodes, n)
	return n.ID
}

// Const adds a constant node.
func (g *DFGraph) Const(t *tensor.Tensor) int {
	return g.add(&DFNode{Kind: DFConst, Name: "const", Value: t})
}

// Kernel adds a compute node.
func (g *DFGraph) Kernel(name string, fn func([]*tensor.Tensor) *tensor.Tensor, inputs ...int) int {
	return g.add(&DFNode{Kind: DFKernel, Name: name, Kernel: fn, Inputs: inputs})
}

// LoopVar wires Enter->Merge->Switch for one loop-carried value and returns
// (mergeOutForBody, exitNode); the caller later connects the body result via
// CloseLoopVar.
func (g *DFGraph) LoopVar(initial int) (body, exit int) {
	enter := g.add(&DFNode{Kind: DFEnter, Name: "enter", Inputs: []int{initial}})
	merge := g.add(&DFNode{Kind: DFMerge, Name: "merge", Inputs: []int{enter, -1}})
	sw := g.add(&DFNode{Kind: DFSwitch, Name: "switch", Inputs: []int{merge}})
	ex := g.add(&DFNode{Kind: DFExit, Name: "exit", Inputs: []int{sw}})
	g.merges = append(g.merges, merge)
	g.switches = append(g.switches, sw)
	g.exits = append(g.exits, ex)
	return sw, ex
}

// CloseLoopVar connects a body result back to its Merge via NextIteration.
func (g *DFGraph) CloseLoopVar(mergeBodyOut, bodyResult int) {
	ni := g.add(&DFNode{Kind: DFNextIter, Name: "next_iteration", Inputs: []int{bodyResult}})
	// Find the merge feeding this switch.
	for i, sw := range g.switches {
		if sw == mergeBodyOut {
			g.Nodes[g.merges[i]].Inputs[1] = ni
			g.nextIters = append(g.nextIters, ni)
			return
		}
	}
	panic("baselines: CloseLoopVar on unknown loop variable")
}

// ReadInput adds a TensorArray read of the current iteration.
func (g *DFGraph) ReadInput() int {
	return g.add(&DFNode{Kind: DFRead, Name: "ta_read"})
}

// DFStats reports executor work for the harness.
type DFStats struct {
	// NodesExecuted counts node firings (including control primitives).
	NodesExecuted int64
	// ControlNodes counts Enter/Merge/Switch/Exit/NextIteration firings —
	// the pure control-flow-encoding overhead.
	ControlNodes int64
	// Iterations is the number of loop iterations executed.
	Iterations int
}

type valKey struct {
	node, iter int
}

// Run executes the graph with the tagged-token scheduler. Every node firing
// performs the framework bookkeeping a dataflow runtime does: ready-queue
// push/pop, per-(node, iteration) value-map writes, and downstream
// pending-count updates.
func (g *DFGraph) Run(stats *DFStats) (*tensor.Tensor, error) {
	vals := make(map[valKey]*tensor.Tensor, len(g.Nodes)*2)
	type token struct {
		node, iter int
	}
	var queue []token
	consumers := make([][]int, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			if in >= 0 {
				consumers[in] = append(consumers[in], n.ID)
			}
		}
	}
	invariant := g.invariantNodes()
	var readNodes []int
	for _, n := range g.Nodes {
		if n.Kind == DFRead {
			readNodes = append(readNodes, n.ID)
		}
	}

	// inputAt resolves an input's value: loop-invariant producers are read
	// at iteration 0, loop-variant ones at the consumer's iteration.
	inputAt := func(in, iter int) *tensor.Tensor {
		if invariant[in] {
			return vals[valKey{in, 0}]
		}
		return vals[valKey{in, iter}]
	}

	fired := map[valKey]bool{}
	enqueue := func(node, iter int) {
		k := valKey{node, iter}
		if fired[k] {
			return
		}
		n := g.Nodes[node]
		switch n.Kind {
		case DFMerge:
			if iter == 0 {
				if vals[valKey{n.Inputs[0], 0}] == nil {
					return
				}
			} else {
				if n.Inputs[1] < 0 || vals[valKey{n.Inputs[1], iter}] == nil {
					return
				}
			}
		case DFRead:
			// No data inputs.
		default:
			for _, in := range n.Inputs {
				if in >= 0 && inputAt(in, iter) == nil {
					return
				}
			}
		}
		fired[k] = true
		queue = append(queue, token{node, iter})
	}

	// Seed the sources.
	for _, n := range g.Nodes {
		switch n.Kind {
		case DFConst, DFRead:
			enqueue(n.ID, 0)
		case DFKernel:
			if len(n.Inputs) == 0 {
				enqueue(n.ID, 0)
			}
		}
	}
	var result *tensor.Tensor
	maxFirings := 1 << 24
	for len(queue) > 0 {
		if maxFirings--; maxFirings < 0 {
			return nil, fmt.Errorf("baselines: dataflow executor did not converge")
		}
		tok := queue[0]
		queue = queue[1:]
		n := g.Nodes[tok.node]
		if stats != nil {
			stats.NodesExecuted++
		}
		if g.NodeOverhead > 0 {
			deadline := time.Now().Add(g.NodeOverhead)
			for time.Now().Before(deadline) {
			}
		}
		var out *tensor.Tensor
		storeIter := tok.iter
		switch n.Kind {
		case DFConst:
			out = n.Value
		case DFKernel:
			args := make([]*tensor.Tensor, len(n.Inputs))
			for i, in := range n.Inputs {
				args[i] = inputAt(in, tok.iter)
			}
			out = n.Kernel(args)
		case DFRead:
			out = g.Read(tok.iter)
		case DFEnter:
			if stats != nil {
				stats.ControlNodes++
			}
			out = vals[valKey{n.Inputs[0], 0}]
		case DFMerge:
			if stats != nil {
				stats.ControlNodes++
			}
			if tok.iter == 0 {
				out = vals[valKey{n.Inputs[0], 0}]
			} else {
				out = vals[valKey{n.Inputs[1], tok.iter}]
			}
		case DFSwitch:
			if stats != nil {
				stats.ControlNodes++
			}
			out = vals[valKey{n.Inputs[0], tok.iter}]
		case DFExit:
			if stats != nil {
				stats.ControlNodes++
			}
			out = vals[valKey{n.Inputs[0], tok.iter}]
		case DFNextIter:
			if stats != nil {
				stats.ControlNodes++
			}
			// A NextIteration token produced at iter i is consumed by the
			// Merge of iter i+1; store it under the consuming iteration.
			out = vals[valKey{n.Inputs[0], tok.iter}]
			storeIter = tok.iter + 1
		}
		vals[valKey{n.ID, storeIter}] = out

		for _, cid := range consumers[n.ID] {
			c := g.Nodes[cid]
			switch {
			case n.Kind == DFSwitch && c.Kind == DFExit:
				if g.Cond == nil || !g.Cond(tok.iter) {
					enqueue(cid, tok.iter)
				}
			case n.Kind == DFSwitch:
				if g.Cond != nil && g.Cond(tok.iter) {
					enqueue(cid, tok.iter)
					if stats != nil && stats.Iterations <= tok.iter {
						stats.Iterations = tok.iter + 1
					}
					// Entering iteration tok.iter activates the
					// TensorArray reads of that iteration.
					for _, r := range readNodes {
						enqueue(r, tok.iter)
					}
				}
			case n.Kind == DFNextIter:
				enqueue(cid, storeIter)
			default:
				enqueue(cid, tok.iter)
			}
		}
		if tok.node == g.Output {
			result = out
		}
	}
	if result == nil {
		return nil, fmt.Errorf("baselines: dataflow graph produced no output")
	}
	return result, nil
}

// invariantNodes marks nodes whose value is the same on every iteration:
// constants and kernels computed solely from invariant inputs (weights and
// derived weights).
func (g *DFGraph) invariantNodes() []bool {
	inv := make([]bool, len(g.Nodes))
	changed := true
	for changed {
		changed = false
		for _, n := range g.Nodes {
			if inv[n.ID] {
				continue
			}
			ok := false
			switch n.Kind {
			case DFConst:
				ok = true
			case DFKernel:
				ok = len(n.Inputs) > 0
				for _, in := range n.Inputs {
					if in < 0 || !inv[in] {
						ok = false
					}
				}
			}
			if ok {
				inv[n.ID] = true
				changed = true
			}
		}
	}
	return inv
}

// BuildDataflowLSTM constructs the TF-style while-loop graph for a stacked
// LSTM over `steps`, mirroring the framework encoding of Table 1's baseline.
func BuildDataflowLSTM(m *models.LSTM, steps []*tensor.Tensor) *DFGraph {
	g := NewDFGraph()
	g.Cond = func(iter int) bool { return iter < len(steps) }
	g.Read = func(iter int) *tensor.Tensor {
		if iter < len(steps) {
			return steps[iter]
		}
		return steps[0]
	}
	type loopVar struct{ body, exit int }
	vars := make([]loopVar, 0, 2*len(m.Cells))
	weights := make([][3]int, len(m.Cells))
	for i, c := range m.Cells {
		bias2d, err := c.Bias.Value.Reshape(1, 4*c.Hidden)
		if err != nil {
			panic(err)
		}
		weights[i] = [3]int{g.Const(c.Wx.Value), g.Const(c.Wh.Value), g.Const(bias2d)}
		zero := g.Const(tensor.New(tensor.Float32, 1, c.Hidden))
		zb, ze := g.LoopVar(zero)
		vars = append(vars, loopVar{zb, ze})
		zero2 := g.Const(tensor.New(tensor.Float32, 1, c.Hidden))
		cb, ce := g.LoopVar(zero2)
		vars = append(vars, loopVar{cb, ce})
	}
	x := g.ReadInput()
	input := x
	dense := func(a, b int) int {
		return g.Kernel("matmul", func(t []*tensor.Tensor) *tensor.Tensor {
			return kernels.MatMul(t[0], t[1])
		}, a, b)
	}
	add := func(a, b int) int {
		return g.Kernel("add", func(t []*tensor.Tensor) *tensor.Tensor {
			return kernels.Add(t[0], t[1])
		}, a, b)
	}
	mul := func(a, b int) int {
		return g.Kernel("mul", func(t []*tensor.Tensor) *tensor.Tensor {
			return kernels.Mul(t[0], t[1])
		}, a, b)
	}
	act := func(name string, fn func(*tensor.Tensor) *tensor.Tensor, a int) int {
		return g.Kernel(name, func(t []*tensor.Tensor) *tensor.Tensor { return fn(t[0]) }, a)
	}
	for i, c := range m.Cells {
		hVar, cVar := vars[2*i], vars[2*i+1]
		hd := c.Hidden
		gates := add(add(dense(input, weights[i][0]), dense(hVar.body, weights[i][1])), weights[i][2])
		slice := func(idx int) int {
			lo, hi := idx*hd, (idx+1)*hd
			return g.Kernel("slice", func(t []*tensor.Tensor) *tensor.Tensor {
				return kernels.Slice(t[0], 1, lo, hi)
			}, gates)
		}
		iG := act("sigmoid", kernels.Sigmoid, slice(0))
		fG := act("sigmoid", kernels.Sigmoid, slice(1))
		gG := act("tanh", kernels.Tanh, slice(2))
		oG := act("sigmoid", kernels.Sigmoid, slice(3))
		cNew := add(mul(fG, cVar.body), mul(iG, gG))
		hNew := mul(oG, act("tanh", kernels.Tanh, cNew))
		g.CloseLoopVar(hVar.body, hNew)
		g.CloseLoopVar(cVar.body, cNew)
		input = hNew
	}
	g.Output = vars[2*(len(m.Cells)-1)].exit
	return g
}
