package baselines

import (
	"nimble/internal/kernels"
	"nimble/internal/tensor"
)

// BuildDataflowBERT constructs the straight-line dataflow graph a
// define-then-run framework executes for a transformer encoder. There is no
// control flow, but every operator is still a scheduled node (ready-queue
// pop, value-map writes), and no fusion happens — the structural gap to
// Nimble on Table 3.
func BuildDataflowBERT(m *EagerBERT, ids *tensor.Tensor) *DFGraph {
	g := NewDFGraph()
	cfg := m.Cfg
	headDim := cfg.Hidden / cfg.Heads

	k1 := func(name string, fn func(*tensor.Tensor) *tensor.Tensor, a int) int {
		return g.Kernel(name, func(t []*tensor.Tensor) *tensor.Tensor { return fn(t[0]) }, a)
	}
	k2 := func(name string, fn func(a, b *tensor.Tensor) *tensor.Tensor, a, b int) int {
		return g.Kernel(name, func(t []*tensor.Tensor) *tensor.Tensor { return fn(t[0], t[1]) }, a, b)
	}
	idsN := g.Const(ids)
	x := k2("take", kernels.Take, g.Const(m.Emb.T), idsN)
	scale := g.Const(tensor.Scalar(1 / float32(sqrtf(float64(headDim)))))

	for _, l := range m.Layers {
		dense := func(in, w, b int) int {
			return k2("add", kernels.Add, k2("matmul", kernels.MatMul, in, w), b)
		}
		q := dense(x, g.Const(l.wq.T), g.Const(l.bq.T))
		k := dense(x, g.Const(l.wk.T), g.Const(l.bk.T))
		v := dense(x, g.Const(l.wv.T), g.Const(l.bv.T))
		heads := make([]int, cfg.Heads)
		for h := 0; h < cfg.Heads; h++ {
			lo, hi := h*headDim, (h+1)*headDim
			sl := func(in int) int {
				return g.Kernel("slice", func(t []*tensor.Tensor) *tensor.Tensor {
					return kernels.Slice(t[0], 1, lo, hi)
				}, in)
			}
			qh, kh, vh := sl(q), sl(k), sl(v)
			kT := k1("transpose", func(t *tensor.Tensor) *tensor.Tensor {
				return kernels.Transpose(t, nil)
			}, kh)
			scores := k2("matmul", kernels.MatMul, qh, kT)
			probs := k1("softmax", kernels.Softmax, k2("mul", kernels.Mul, scores, scale))
			heads[h] = k2("matmul", kernels.MatMul, probs, vh)
		}
		ctx := g.Kernel("concat", func(t []*tensor.Tensor) *tensor.Tensor {
			return kernels.Concat(t, 1)
		}, heads...)
		attn := dense(ctx, g.Const(l.wo.T), g.Const(l.bo.T))
		ln1 := g.Kernel("layer_norm", func(t []*tensor.Tensor) *tensor.Tensor {
			return kernels.LayerNorm(t[0], t[1], t[2], 1e-5)
		}, k2("add", kernels.Add, x, attn), g.Const(l.g1.T), g.Const(l.b1.T))
		f1 := dense(ln1, g.Const(l.f1w.T), g.Const(l.f1b.T))
		f2 := dense(k1("gelu", kernels.Gelu, f1), g.Const(l.f2w.T), g.Const(l.f2b.T))
		x = g.Kernel("layer_norm", func(t []*tensor.Tensor) *tensor.Tensor {
			return kernels.LayerNorm(t[0], t[1], t[2], 1e-5)
		}, k2("add", kernels.Add, ln1, f2), g.Const(l.g2.T), g.Const(l.b2.T))
	}
	g.Output = x
	return g
}
