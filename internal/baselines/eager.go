// Package baselines implements the comparison systems of §6: an eager
// define-by-run executor (PyTorch/DyNet-like), a define-then-run dataflow
// executor with TF-style control-flow primitives, a TF-Fold-like
// dynamic-batching executor that rebuilds its graph per input, and a static
// padded graph runtime standing in for TVM's static compiler.
//
// All baselines compute with the same kernel library as Nimble
// (internal/kernels), so measured differences come from the structural
// causes the paper identifies — per-op bookkeeping and dispatch, absent
// fusion, per-input graph construction, control-flow primitive scheduling,
// and padding waste — not from different arithmetic.
package baselines

import (
	"fmt"
	"time"

	"nimble/internal/kernels"
	"nimble/internal/models"
	"nimble/internal/tensor"
)

// node is the autograd-tape record an eager framework allocates for every
// operator call: op identity, input references, and output metadata. The
// tape is what "requires the creation of a path specialized static data
// flow graph" per execution (§2.1); its maintenance is the eager overhead.
type node struct {
	op       string
	inputs   []*Value
	out      *tensor.Tensor
	gradFn   func() // placeholder: inference never calls it, but frameworks allocate it
	requires bool
}

// Value is an eager framework tensor: payload plus tape node.
type Value struct {
	T    *tensor.Tensor
	node *node
}

// Eager is a define-by-run session: each op call appends to the tape and
// dispatches dynamically by name, like the Python-dispatched frameworks it
// models.
type Eager struct {
	tape     []*node
	dispatch map[string]func(args []*Value) *tensor.Tensor
	// Ops counts operator invocations (for reports).
	Ops int64
	// OpOverhead charges a calibrated host-language dispatch cost per
	// operator call. The paper attributes the Tree-LSTM gap to "PyTorch
	// uses Python to handle the tree data structure": the Go executor has
	// no interpreter tax of its own, so the harness sets this to the
	// published ~2µs Python/pybind dispatch latency to model it (measured
	// columns report the setting in their notes; zero disables it).
	OpOverhead time.Duration
}

// NewEager creates a session with the standard operator table.
func NewEager() *Eager {
	e := &Eager{dispatch: map[string]func([]*Value) *tensor.Tensor{}}
	e.dispatch["dense"] = func(a []*Value) *tensor.Tensor { return kernels.MatMul(a[0].T, a[1].T) }
	e.dispatch["add"] = func(a []*Value) *tensor.Tensor { return kernels.Add(a[0].T, a[1].T) }
	e.dispatch["multiply"] = func(a []*Value) *tensor.Tensor { return kernels.Mul(a[0].T, a[1].T) }
	e.dispatch["sigmoid"] = func(a []*Value) *tensor.Tensor { return kernels.Sigmoid(a[0].T) }
	e.dispatch["tanh"] = func(a []*Value) *tensor.Tensor { return kernels.Tanh(a[0].T) }
	e.dispatch["gelu"] = func(a []*Value) *tensor.Tensor { return kernels.Gelu(a[0].T) }
	e.dispatch["softmax"] = func(a []*Value) *tensor.Tensor { return kernels.Softmax(a[0].T) }
	e.dispatch["transpose"] = func(a []*Value) *tensor.Tensor { return kernels.Transpose(a[0].T, nil) }
	e.dispatch["take"] = func(a []*Value) *tensor.Tensor { return kernels.Take(a[0].T, a[1].T) }
	return e
}

// Wrap lifts a raw tensor into the session.
func (e *Eager) Wrap(t *tensor.Tensor) *Value { return &Value{T: t} }

// Reset clears the tape between inferences (frameworks rebuild it per run).
func (e *Eager) Reset() { e.tape = e.tape[:0] }

// TapeLen reports the current tape length.
func (e *Eager) TapeLen() int { return len(e.tape) }

// apply performs one eager op: tape-node allocation, name dispatch, fresh
// output allocation.
func (e *Eager) apply(op string, args ...*Value) *Value {
	fn, ok := e.dispatch[op]
	if !ok {
		panic(fmt.Sprintf("baselines: eager op %q not registered", op))
	}
	n := &node{op: op, inputs: args, requires: true}
	n.gradFn = func() {}
	e.chargeOverhead()
	out := fn(args)
	n.out = out
	e.tape = append(e.tape, n)
	e.Ops++
	return &Value{T: out, node: n}
}

// sliceCols is the eager gate split (frameworks chunk the gate tensor).
func (e *Eager) sliceCols(v *Value, lo, hi int) *Value {
	n := &node{op: "slice", inputs: []*Value{v}, requires: true}
	e.chargeOverhead()
	out := kernels.Slice(v.T, 1, lo, hi)
	n.out = out
	e.tape = append(e.tape, n)
	e.Ops++
	return &Value{T: out, node: n}
}

// LSTMStep runs one eager LSTM step (no fusion: every gate op is a separate
// framework call, exactly how an imperative model executes).
func (e *Eager) LSTMStep(cell EagerLSTMCell, x, h, c *Value) (*Value, *Value) {
	hd := cell.Hidden
	gx := e.apply("dense", x, cell.Wx)
	gh := e.apply("dense", h, cell.Wh)
	sum := e.apply("add", gx, gh)
	gates := e.apply("add", sum, cell.Bias)
	i := e.apply("sigmoid", e.sliceCols(gates, 0, hd))
	f := e.apply("sigmoid", e.sliceCols(gates, hd, 2*hd))
	g := e.apply("tanh", e.sliceCols(gates, 2*hd, 3*hd))
	o := e.apply("sigmoid", e.sliceCols(gates, 3*hd, 4*hd))
	cNew := e.apply("add", e.apply("multiply", f, c), e.apply("multiply", i, g))
	hNew := e.apply("multiply", o, e.apply("tanh", cNew))
	return hNew, cNew
}

// EagerLSTMCell holds framework-side weights, shared with the Nimble model
// so outputs are comparable.
type EagerLSTMCell struct {
	Wx, Wh, Bias *Value
	Hidden       int
}

// CellsFromModel imports the Nimble LSTM's weights.
func (e *Eager) CellsFromModel(m *models.LSTM) []EagerLSTMCell {
	out := make([]EagerLSTMCell, len(m.Cells))
	for i, c := range m.Cells {
		bias2d, err := c.Bias.Value.Reshape(1, 4*c.Hidden)
		if err != nil {
			panic(err)
		}
		out[i] = EagerLSTMCell{
			Wx: e.Wrap(c.Wx.Value), Wh: e.Wrap(c.Wh.Value),
			Bias: e.Wrap(bias2d), Hidden: c.Hidden,
		}
	}
	return out
}

// RunLSTM executes a full sequence define-by-run, rebuilding the tape.
func (e *Eager) RunLSTM(cells []EagerLSTMCell, steps []*tensor.Tensor) *tensor.Tensor {
	e.Reset()
	hs := make([]*Value, len(cells))
	cs := make([]*Value, len(cells))
	for i, cell := range cells {
		zero := tensor.New(tensor.Float32, 1, cell.Hidden)
		hs[i] = e.Wrap(zero)
		cs[i] = e.Wrap(zero.Clone())
	}
	for _, x := range steps {
		in := e.Wrap(x)
		for i, cell := range cells {
			hs[i], cs[i] = e.LSTMStep(cell, in, hs[i], cs[i])
			in = hs[i]
		}
	}
	return hs[len(hs)-1].T
}

// EagerTreeCell holds Tree-LSTM weights for the eager driver.
type EagerTreeCell struct {
	Leaf       EagerLSTMCell
	WIOU, BIOU *Value
	WF, BF     *Value
	Hidden     int
}

// RunTreeLSTM executes a child-sum Tree-LSTM recursively in the host
// language — the "PyTorch uses Python to handle the tree data structure"
// pattern the paper measures 17-20x against.
func (e *Eager) RunTreeLSTM(cell EagerTreeCell, t *models.Tree) (*Value, *Value) {
	if t.Value != nil {
		zero := e.Wrap(tensor.New(tensor.Float32, 1, cell.Hidden))
		return e.LSTMStep(cell.Leaf, e.Wrap(t.Value), zero, zero)
	}
	hl, cl := e.RunTreeLSTM(cell, t.Left)
	hr, cr := e.RunTreeLSTM(cell, t.Right)
	h := cell.Hidden
	hsum := e.apply("add", hl, hr)
	iou := e.apply("add", e.apply("dense", hsum, cell.WIOU), cell.BIOU)
	i := e.apply("sigmoid", e.sliceCols(iou, 0, h))
	o := e.apply("sigmoid", e.sliceCols(iou, h, 2*h))
	u := e.apply("tanh", e.sliceCols(iou, 2*h, 3*h))
	fl := e.apply("sigmoid", e.apply("add", e.apply("dense", hl, cell.WF), cell.BF))
	fr := e.apply("sigmoid", e.apply("add", e.apply("dense", hr, cell.WF), cell.BF))
	cNew := e.apply("add",
		e.apply("multiply", i, u),
		e.apply("add", e.apply("multiply", fl, cl), e.apply("multiply", fr, cr)))
	hNew := e.apply("multiply", o, e.apply("tanh", cNew))
	return hNew, cNew
}

// EagerBERT holds imported BERT weights for the eager driver.
type EagerBERT struct {
	Cfg    models.BERTConfig
	Emb    *Value
	Layers []eagerBERTLayer
}

type eagerBERTLayer struct {
	wq, bq, wk, bk, wv, bv, wo, bo *Value
	g1, b1, g2, b2                 *Value
	f1w, f1b, f2w, f2b             *Value
}

// RunBERT executes the encoder define-by-run (per-op dispatch, no fusion).
func (e *Eager) RunBERT(m *EagerBERT, ids *tensor.Tensor) *tensor.Tensor {
	e.Reset()
	cfg := m.Cfg
	x := e.apply("take", m.Emb, e.Wrap(ids))
	headDim := cfg.Hidden / cfg.Heads
	scale := e.Wrap(tensor.Scalar(1 / float32(sqrtf(float64(headDim)))))
	for _, l := range m.Layers {
		q := e.apply("add", e.apply("dense", x, l.wq), l.bq)
		k := e.apply("add", e.apply("dense", x, l.wk), l.bk)
		v := e.apply("add", e.apply("dense", x, l.wv), l.bv)
		heads := make([]*tensor.Tensor, cfg.Heads)
		for h := 0; h < cfg.Heads; h++ {
			lo, hi := h*headDim, (h+1)*headDim
			qh, kh, vh := e.sliceCols(q, lo, hi), e.sliceCols(k, lo, hi), e.sliceCols(v, lo, hi)
			scores := e.apply("dense", qh, e.apply("transpose", kh))
			probs := e.apply("softmax", e.apply("multiply", scores, scale))
			heads[h] = e.apply("dense", probs, vh).T
		}
		ctxT := kernels.Concat(heads, 1)
		e.Ops++ // concat counts as a framework op
		ctx := e.Wrap(ctxT)
		attn := e.apply("add", e.apply("dense", ctx, l.wo), l.bo)
		x = e.layerNorm(e.apply("add", x, attn), l.g1, l.b1)
		ffn := e.apply("add", e.apply("dense",
			e.apply("gelu", e.apply("add", e.apply("dense", x, l.f1w), l.f1b)), l.f2w), l.f2b)
		x = e.layerNorm(e.apply("add", x, ffn), l.g2, l.b2)
	}
	return x.T
}

func (e *Eager) layerNorm(x, gamma, beta *Value) *Value {
	n := &node{op: "layer_norm", inputs: []*Value{x, gamma, beta}, requires: true}
	e.chargeOverhead()
	out := kernels.LayerNorm(x.T, gamma.T, beta.T, 1e-5)
	n.out = out
	e.tape = append(e.tape, n)
	e.Ops++
	return &Value{T: out, node: n}
}

// chargeOverhead spins for the configured per-op dispatch cost.
func (e *Eager) chargeOverhead() {
	if e.OpOverhead <= 0 {
		return
	}
	deadline := time.Now().Add(e.OpOverhead)
	for time.Now().Before(deadline) {
	}
}

func sqrtf(x float64) float64 {
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}
