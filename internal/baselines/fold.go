package baselines

import (
	"time"

	"nimble/internal/kernels"
	"nimble/internal/models"
	"nimble/internal/tensor"
)

// Fold models TensorFlow Fold's dynamic batching (§7): for every input tree
// it (1) analyzes the structure, (2) builds a fresh depth-batched dataflow
// graph whose operations at the same depth are batched together, and (3)
// executes that graph. Step (2) repeats per input — the "has to re-compile
// upon every input" cost the paper measures as 5.2x slower than Nimble on
// Tree-LSTM.
type Fold struct {
	Hidden int
	// Tree-LSTM weights (shared layout with the eager cell).
	Cell EagerTreeCell
	// BuildOverhead charges a calibrated per-node cost for the per-input
	// Python-side analysis and graph construction (see Eager.OpOverhead for
	// the rationale; Fold amortizes kernel dispatch through batching but
	// still pays construction on every input).
	BuildOverhead time.Duration
	// Stats
	GraphsBuilt    int64
	NodesBatched   int64
	BatchedKernels int64
}

// NewFold creates a Fold session around an eager weight set.
func NewFold(cell EagerTreeCell) *Fold {
	return &Fold{Hidden: cell.Hidden, Cell: cell}
}

// foldNode is one scheduled operation in the per-input batched graph.
type foldNode struct {
	tree  *models.Tree
	depth int
	// results
	h, c *tensor.Tensor
}

// RunTree performs one Tree-LSTM inference with per-input graph construction
// and depth-wise dynamic batching.
func (f *Fold) RunTree(t *models.Tree) *tensor.Tensor {
	// Phase 1-2 (per input): analyze the tree and build the batching plan —
	// group nodes by depth from the leaves so same-depth cells execute as
	// one batched kernel. This is real graph-construction work performed on
	// every input.
	f.GraphsBuilt++
	byDepth := map[int][]*foldNode{}
	index := map[*models.Tree]*foldNode{}
	maxDepth := 0
	var analyze func(tr *models.Tree) int
	analyze = func(tr *models.Tree) int {
		n := &foldNode{tree: tr}
		if tr.Value == nil {
			dl := analyze(tr.Left)
			dr := analyze(tr.Right)
			n.depth = 1 + maxI(dl, dr)
		}
		if f.BuildOverhead > 0 {
			deadline := time.Now().Add(f.BuildOverhead)
			for time.Now().Before(deadline) {
			}
		}
		index[tr] = n
		byDepth[n.depth] = append(byDepth[n.depth], n)
		if n.depth > maxDepth {
			maxDepth = n.depth
		}
		f.NodesBatched++
		return n.depth
	}
	analyze(t)

	// Phase 3: execute depth by depth; nodes at one depth form one batch.
	for d := 0; d <= maxDepth; d++ {
		batch := byDepth[d]
		if len(batch) == 0 {
			continue
		}
		if d == 0 {
			f.runLeafBatch(batch)
		} else {
			f.runNodeBatch(batch, index)
		}
		f.BatchedKernels++
	}
	return index[t].h
}

// runLeafBatch stacks leaf inputs into one [batch, in] matrix and runs the
// leaf cell once.
func (f *Fold) runLeafBatch(batch []*foldNode) {
	rows := make([]*tensor.Tensor, len(batch))
	for i, n := range batch {
		rows[i] = n.tree.Value
	}
	x := kernels.Concat(rows, 0)
	hd := f.Hidden
	gates := kernels.Add(kernels.MatMul(x, f.Cell.Leaf.Wx.T), f.Cell.Leaf.Bias.T)
	i := kernels.Sigmoid(kernels.Slice(gates, 1, 0, hd))
	g := kernels.Tanh(kernels.Slice(gates, 1, 2*hd, 3*hd))
	o := kernels.Sigmoid(kernels.Slice(gates, 1, 3*hd, 4*hd))
	c := kernels.Mul(i, g)
	h := kernels.Mul(o, kernels.Tanh(c))
	for r, n := range batch {
		n.h = kernels.Slice(h, 0, r, r+1)
		n.c = kernels.Slice(c, 0, r, r+1)
	}
}

// runNodeBatch gathers children states, batches the child-sum cell.
func (f *Fold) runNodeBatch(batch []*foldNode, index map[*models.Tree]*foldNode) {
	hd := f.Hidden
	hls := make([]*tensor.Tensor, len(batch))
	hrs := make([]*tensor.Tensor, len(batch))
	cls := make([]*tensor.Tensor, len(batch))
	crs := make([]*tensor.Tensor, len(batch))
	for i, n := range batch {
		l, r := index[n.tree.Left], index[n.tree.Right]
		hls[i], hrs[i], cls[i], crs[i] = l.h, r.h, l.c, r.c
	}
	hl := kernels.Concat(hls, 0)
	hr := kernels.Concat(hrs, 0)
	cl := kernels.Concat(cls, 0)
	cr := kernels.Concat(crs, 0)
	hsum := kernels.Add(hl, hr)
	iou := kernels.Add(kernels.MatMul(hsum, f.Cell.WIOU.T), f.Cell.BIOU.T)
	iG := kernels.Sigmoid(kernels.Slice(iou, 1, 0, hd))
	oG := kernels.Sigmoid(kernels.Slice(iou, 1, hd, 2*hd))
	uV := kernels.Tanh(kernels.Slice(iou, 1, 2*hd, 3*hd))
	fl := kernels.Sigmoid(kernels.Add(kernels.MatMul(hl, f.Cell.WF.T), f.Cell.BF.T))
	fr := kernels.Sigmoid(kernels.Add(kernels.MatMul(hr, f.Cell.WF.T), f.Cell.BF.T))
	c := kernels.Add(kernels.Mul(iG, uV), kernels.Add(kernels.Mul(fl, cl), kernels.Mul(fr, cr)))
	h := kernels.Mul(oG, kernels.Tanh(c))
	for r, n := range batch {
		n.h = kernels.Slice(h, 0, r, r+1)
		n.c = kernels.Slice(c, 0, r, r+1)
	}
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
