package baselines

import (
	"sort"

	"nimble/internal/kernels"
	"nimble/internal/models"
	"nimble/internal/tensor"
)

// StaticLSTM is the "reduce the dynamic model to a static one" baseline of
// §2.1: the network is unrolled to a maximal length at build time, inputs
// are padded, and every invocation executes all MaxLen steps regardless of
// the true sequence length. It stands in for the static-compiler treatment
// of RNNs (DeepCPU-style padding), and its wasted steps are why dynamic
// support matters.
type StaticLSTM struct {
	MaxLen int
	cells  []EagerLSTMCell
	// steps is the pre-compiled unrolled program: one closure per (step,
	// layer), fixed at build time like a static graph runtime's op list.
	program []func(state []*tensor.Tensor, x *tensor.Tensor)
	// PaddedSteps counts executed padding steps (for reports).
	PaddedSteps int64
}

// NewStaticLSTM unrolls the model to maxLen.
func NewStaticLSTM(m *models.LSTM, maxLen int) *StaticLSTM {
	e := NewEager()
	s := &StaticLSTM{MaxLen: maxLen, cells: e.CellsFromModel(m)}
	for step := 0; step < maxLen; step++ {
		for li := range s.cells {
			cell := s.cells[li]
			layer := li
			s.program = append(s.program, func(state []*tensor.Tensor, x *tensor.Tensor) {
				in := x
				if layer > 0 {
					in = state[2*(layer-1)]
				}
				h, c := staticLSTMStep(cell, in, state[2*layer], state[2*layer+1])
				state[2*layer], state[2*layer+1] = h, c
			})
		}
	}
	return s
}

func staticLSTMStep(cell EagerLSTMCell, x, h, c *tensor.Tensor) (*tensor.Tensor, *tensor.Tensor) {
	hd := cell.Hidden
	gates := kernels.Add(kernels.Add(kernels.MatMul(x, cell.Wx.T), kernels.MatMul(h, cell.Wh.T)), cell.Bias.T)
	i := kernels.Sigmoid(kernels.Slice(gates, 1, 0, hd))
	f := kernels.Sigmoid(kernels.Slice(gates, 1, hd, 2*hd))
	g := kernels.Tanh(kernels.Slice(gates, 1, 2*hd, 3*hd))
	o := kernels.Sigmoid(kernels.Slice(gates, 1, 3*hd, 4*hd))
	cNew := kernels.Add(kernels.Mul(f, c), kernels.Mul(i, g))
	return kernels.Mul(o, kernels.Tanh(cNew)), cNew
}

// Run pads the sequence to MaxLen (zero steps) and executes the full
// unrolled program.
func (s *StaticLSTM) Run(steps []*tensor.Tensor) *tensor.Tensor {
	if len(steps) > s.MaxLen {
		steps = steps[:s.MaxLen]
	}
	inputDim := steps[0].Shape()[1]
	zeroStep := tensor.New(tensor.Float32, 1, inputDim)
	state := make([]*tensor.Tensor, 2*len(s.cells))
	for i := range s.cells {
		state[2*i] = tensor.New(tensor.Float32, 1, s.cells[i].Hidden)
		state[2*i+1] = tensor.New(tensor.Float32, 1, s.cells[i].Hidden)
	}
	pc := 0
	for step := 0; step < s.MaxLen; step++ {
		x := zeroStep
		if step < len(steps) {
			x = steps[step]
		} else {
			s.PaddedSteps++
		}
		for range s.cells {
			s.program[pc](state, x)
			pc++
		}
	}
	return state[2*(len(s.cells)-1)]
}

// --- Static memory planner (the TVM whole-graph baseline of §6.3) ---

// Interval is one buffer's size and live range in a linearized graph.
type Interval struct {
	Size   int
	Lo, Hi int
}

// OptimalStaticPlan computes the liveness-based best-fit footprint a static
// compiler achieves when every size and lifetime is known at compile time.
// Nimble's chain-local coalescing is compared against this to reproduce the
// "up to 8% more memory footprint" concession of §6.3.
func OptimalStaticPlan(ivs []Interval) int {
	// Sort by start; greedily assign each buffer to the smallest free slot
	// whose previous occupant died, growing the arena otherwise.
	sorted := append([]Interval{}, ivs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })
	type slot struct {
		size   int
		freeAt int
	}
	var slots []slot
	total := 0
	for _, iv := range sorted {
		best := -1
		for si, s := range slots {
			if s.freeAt <= iv.Lo && s.size >= iv.Size {
				if best < 0 || slots[best].size > s.size {
					best = si
				}
			}
		}
		if best >= 0 {
			slots[best].freeAt = iv.Hi
			continue
		}
		// Try growing a free-but-small slot before adding a new one (a
		// static planner can resize because it plans the whole arena).
		grew := false
		for si, s := range slots {
			if s.freeAt <= iv.Lo {
				total += iv.Size - s.size
				slots[si].size = iv.Size
				slots[si].freeAt = iv.Hi
				grew = true
				break
			}
		}
		if !grew {
			slots = append(slots, slot{size: iv.Size, freeAt: iv.Hi})
			total += iv.Size
		}
	}
	return total
}

// SumSizes is the no-reuse footprint (every buffer distinct).
func SumSizes(ivs []Interval) int {
	t := 0
	for _, iv := range ivs {
		t += iv.Size
	}
	return t
}
