package baselines

import (
	"nimble/internal/models"
	"nimble/internal/nn"
	"nimble/internal/tensor"
)

// Weight constructors for the baseline executors. Latency experiments are
// weight-agnostic, so baselines that cannot share Nimble's exact constants
// (BERT and Tree-LSTM keep theirs inside the built IR) draw independent
// seeded weights with identical shapes; the LSTM baselines share weights
// with the Nimble model so outputs are bit-comparable in tests.

// NewEagerTreeCell creates Tree-LSTM weights matching cfg.
func NewEagerTreeCell(e *Eager, cfg models.TreeLSTMConfig) EagerTreeCell {
	init := nn.NewInit(cfg.Seed + 1000)
	h := cfg.Hidden
	leaf := EagerLSTMCell{
		Wx:     e.Wrap(init.Xavier(cfg.Input, 4*h)),
		Wh:     e.Wrap(init.Xavier(h, 4*h)),
		Bias:   e.Wrap(mustRow(init.Vector(4*h).Reshape(1, 4*h))),
		Hidden: h,
	}
	return EagerTreeCell{
		Leaf:   leaf,
		WIOU:   e.Wrap(init.Xavier(h, 3*h)),
		BIOU:   e.Wrap(mustRow(init.Vector(3*h).Reshape(1, 3*h))),
		WF:     e.Wrap(init.Xavier(h, h)),
		BF:     e.Wrap(mustRow(init.Vector(h).Reshape(1, h))),
		Hidden: h,
	}
}

// NewEagerBERT creates encoder weights matching cfg.
func NewEagerBERT(e *Eager, cfg models.BERTConfig) *EagerBERT {
	init := nn.NewInit(cfg.Seed + 2000)
	m := &EagerBERT{Cfg: cfg, Emb: e.Wrap(init.Xavier(cfg.Vocab, cfg.Hidden))}
	h, f := cfg.Hidden, cfg.FFN
	for i := 0; i < cfg.Layers; i++ {
		m.Layers = append(m.Layers, eagerBERTLayer{
			wq: e.Wrap(init.Xavier(h, h)), bq: e.Wrap(mustRow(init.Vector(h).Reshape(1, h))),
			wk: e.Wrap(init.Xavier(h, h)), bk: e.Wrap(mustRow(init.Vector(h).Reshape(1, h))),
			wv: e.Wrap(init.Xavier(h, h)), bv: e.Wrap(mustRow(init.Vector(h).Reshape(1, h))),
			wo: e.Wrap(init.Xavier(h, h)), bo: e.Wrap(mustRow(init.Vector(h).Reshape(1, h))),
			g1: e.Wrap(init.Ones(h)), b1: e.Wrap(init.Zeros(h)),
			g2: e.Wrap(init.Ones(h)), b2: e.Wrap(init.Zeros(h)),
			f1w: e.Wrap(init.Xavier(h, f)), f1b: e.Wrap(mustRow(init.Vector(f).Reshape(1, f))),
			f2w: e.Wrap(init.Xavier(f, h)), f2b: e.Wrap(mustRow(init.Vector(h).Reshape(1, h))),
		})
	}
	return m
}

// mustRow unwraps the (tensor, error) pair of Reshape for weight rows whose
// element counts are correct by construction.
func mustRow(t *tensor.Tensor, err error) *tensor.Tensor {
	if err != nil {
		panic(err)
	}
	return t
}
