package bench

import (
	"math/rand"
	"testing"

	"nimble/internal/compiler"
	"nimble/internal/models"
)

// TestLSTMStepAllocRegression locks in the destination-passing win on a
// compiled model: one LSTM timestep through the planned VM must stay under a
// fixed allocation budget. Before kernels wrote planned buffers directly,
// every packed call allocated a result tensor and copied it into the plan;
// if a future change reintroduces that pattern the count jumps well past
// this fence.
//
// The budget is NOT zero: the VM's object layer still allocates a small,
// bounded number of objects per step (tensor views carved from pooled
// storages, ADT list cells, register Objects for dynamic shapes). The fence
// is calibrated ~30% above the measured steady state (~98 allocs/step at
// this config) so it trips on systematic regressions, not jitter.
const maxAllocsPerLSTMStep = 128

func TestLSTMStepAllocRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc calibration is timing-insensitive but not short")
	}
	cfg := models.LSTMConfig{Input: 32, Hidden: 32, Layers: 1, Seed: 3}
	m := models.NewLSTM(cfg)
	machine, _, err := compiler.CompileToVM(m.Module, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	const steps = 8
	seq := m.RandomSequence(rng, steps)

	run := func() {
		if _, err := machine.Invoke("main", seq); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the storage pool and frame recycler
	perInvoke := testing.AllocsPerRun(20, run)
	perStep := perInvoke / steps
	t.Logf("compiled LSTM: %.0f allocs/invoke over %d steps = %.1f allocs/step", perInvoke, steps, perStep)
	if perStep > maxAllocsPerLSTMStep {
		t.Errorf("allocation regression: %.1f allocs/step exceeds the %d fence — did a kernel stop using its planned destination?",
			perStep, maxAllocsPerLSTMStep)
	}
}
