// Package bench is the evaluation harness: one entry point per table and
// figure of the paper's §6, each returning a structured result that prints
// in the paper's row/column layout. Host-CPU columns are measured on real
// executions; ARM-CPU and Nvidia-GPU columns are produced by the
// internal/platform cost model and labeled "(sim)".
package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"nimble/internal/data"
	"nimble/internal/models"
	"nimble/internal/platform"
	"nimble/internal/tensor"
	"nimble/internal/vm"
)

// Config bounds the harness's work.
type Config struct {
	// Quick shrinks sample counts and model sizes for CI-speed runs.
	Quick bool
	// Seed drives all samplers.
	Seed int64
}

// DefaultConfig is the full evaluation configuration.
func DefaultConfig() Config { return Config{Seed: 7} }

func (c Config) samples(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// measure runs f `runs` times and returns total wall time.
func measure(runs int, f func()) time.Duration {
	start := time.Now()
	for i := 0; i < runs; i++ {
		f()
	}
	return time.Since(start)
}

// Cell is one table entry: a measured or simulated per-token latency.
type Cell struct {
	Value     float64 // µs/token
	Simulated bool
}

func (c Cell) String() string {
	if c.Value == 0 {
		return "–"
	}
	if c.Simulated {
		return fmt.Sprintf("%.1f (sim)", c.Value)
	}
	return fmt.Sprintf("%.1f", c.Value)
}

// Table is a generic result grid.
type Table struct {
	Title   string
	Columns []string
	Rows    []string
	Cells   map[string]map[string]Cell
	Notes   []string
}

func newTable(title string, rows, cols []string) *Table {
	t := &Table{Title: title, Columns: cols, Rows: rows, Cells: map[string]map[string]Cell{}}
	for _, r := range rows {
		t.Cells[r] = map[string]Cell{}
	}
	return t
}

func (t *Table) set(row, col string, v float64, simulated bool) {
	t.Cells[row][col] = Cell{Value: v, Simulated: simulated}
}

// Format renders the table.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-14s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%16s", c)
	}
	b.WriteString("\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s", r)
		for _, c := range t.Columns {
			fmt.Fprintf(&b, "%16s", t.Cells[r][c].String())
		}
		b.WriteString("\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Speedup returns row a's value over row b's for a column (who-wins factor).
func (t *Table) Speedup(slow, fast, col string) float64 {
	f := t.Cells[fast][col].Value
	if f == 0 {
		return 0
	}
	return t.Cells[slow][col].Value / f
}

// nimbleWorkload converts a profiler run into the platform simulator's
// workload units.
func nimbleWorkload(prof *vm.Profiler, flops int64) platform.Workload {
	kernels := prof.Counts[vm.OpInvokePacked]
	return platform.Workload{
		Kernels:     kernels,
		Flops:       flops,
		Bytes:       flops / 2, // roofline proxy: one 4-byte access per 2 flops
		OtherInstrs: prof.TotalInstrs() - prof.Counts[vm.OpInvokePacked],
		CopyBytes:   prof.CopyBytes,
	}
}

// simulateColumns fills the Nvidia/ARM columns for a set of systems from
// one profiled Nimble workload.
func simulateColumns(t *Table, w platform.Workload, tokens int, systems map[string]platform.SystemTraits, cols map[string]platform.Platform) {
	for colName, plat := range cols {
		for rowName, sys := range systems {
			lat := platform.Latency(plat, sys, w)
			t.set(rowName, colName, platform.PerToken(lat, tokens), true)
		}
	}
}

// lstmInputs draws MRPC-profile sequences shared by Nimble and the
// baseline executors; returns the sequences and total token count.
func lstmInputs(cfg Config, m *models.LSTM, count int) ([][]*tensor.Tensor, int) {
	sampler := data.NewMRPC(cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	var seqs [][]*tensor.Tensor
	tokens := 0
	for i := 0; i < count; i++ {
		n := sampler.Length()
		if cfg.Quick && n > 24 {
			n = 24
		}
		seqs = append(seqs, m.RandomSteps(rng, n))
		tokens += n
	}
	return seqs, tokens
}
