package bench

import (
	"strings"
	"testing"
	"time"
)

func quickCfg() Config { return Config{Quick: true, Seed: 7} }

func TestTable1ShapeHolds(t *testing.T) {
	tab, err := Table1(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Format()
	for _, want := range []string{"Nimble", "PyTorch", "TensorFlow", "Intel CPU", "(sim)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// The headline property: Nimble beats every framework on the measured
	// host column.
	for _, rival := range []string{"PyTorch", "TensorFlow"} {
		if s := tab.Speedup(rival, "Nimble", "Intel CPU"); s <= 1.0 {
			t.Errorf("Nimble not faster than %s on Intel CPU (speedup %.2f)\n%s", rival, s, out)
		}
	}
	// Simulated ARM column: framework gap widens (poor vendor libraries),
	// matching the paper's 5-20x ARM speedups vs 1.7-6.3x on Intel.
	armGap := tab.Speedup("PyTorch", "Nimble", "ARM CPU")
	if armGap < 2 {
		t.Errorf("simulated ARM speedup %.2f too small\n%s", armGap, out)
	}
}

func TestTable2ShapeHolds(t *testing.T) {
	tab, err := Table2(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Format()
	// Paper: Nimble 17.4x over PyTorch, 5.2x over TF Fold on Intel.
	if s := tab.Speedup("PyTorch", "Nimble", "Intel CPU"); s <= 1.0 {
		t.Errorf("Nimble not faster than PyTorch on Tree-LSTM (%.2f)\n%s", s, out)
	}
	if s := tab.Speedup("TF Fold", "Nimble", "Intel CPU"); s <= 1.0 {
		t.Errorf("Nimble not faster than TF Fold (%.2f)\n%s", s, out)
	}
	// Fold sits between eager PyTorch and Nimble, as in the paper.
	if tab.Cells["TF Fold"]["Intel CPU"].Value >= tab.Cells["PyTorch"]["Intel CPU"].Value {
		t.Logf("note: TF Fold slower than PyTorch in quick mode (small trees amortize batching poorly):\n%s", out)
	}
}

func TestTable3ShapeHolds(t *testing.T) {
	tab, err := Table3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := tab.Format()
	// Paper: Nimble 1.05-1.5x over the best framework per platform — the
	// gaps are smaller than LSTM because dense kernels dominate. Quick mode
	// shrinks the hidden size far below the paper's, which understates
	// fusion gains; at the full reduced config Nimble measures ~1.2x (see
	// EXPERIMENTS.md), so the quick gate only rejects large regressions.
	if s := tab.Speedup("PyTorch", "Nimble", "Intel CPU"); s <= 0.80 {
		t.Errorf("Nimble materially slower than PyTorch on BERT (%.2f)\n%s", s, out)
	}
	if !strings.Contains(out, "Nvidia GPU") {
		t.Errorf("missing GPU column:\n%s", out)
	}
}

func TestTable4OverheadBounded(t *testing.T) {
	r, err := Table4(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Format()
	// TVM-static must not be slower than Nimble-dynamic beyond noise, and
	// the dynamic overhead should be modest, not a blowup (paper: 5-25%).
	// Quick-mode latencies are ~1.5ms, so allow a small noise band.
	if float64(r.TVMLatency) > 1.10*float64(r.NimbleLatency) {
		t.Errorf("static materially slower than dynamic:\n%s", out)
	}
	overhead := float64(r.NimbleLatency-r.TVMLatency) / float64(r.TVMLatency)
	if overhead > 1.0 {
		t.Errorf("dynamic overhead %.0f%% implausibly large:\n%s", overhead*100, out)
	}
	if r.KernelLatency == 0 || r.KernelLatency > r.NimbleLatency {
		t.Errorf("profiler split broken:\n%s", out)
	}
}

func TestFigure3ShapeHolds(t *testing.T) {
	r, err := Figure3(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Format()
	if len(r.Ops) != 3 {
		t.Fatalf("expected 3 dense ops:\n%s", out)
	}
	for i := range r.Ops {
		full := r.Series["dispatch/8"][i]
		none := r.Series["no dispatch"][i]
		// Full dispatch is near static; no dispatch is substantially
		// slower. Quick-mode matrices are tiny, so gates are loose enough
		// to survive scheduler noise when the whole test suite runs in
		// parallel; the full-scale run (results_full.txt) shows
		// 100%/~130%/~300%.
		if full > 1.6 {
			t.Errorf("%s: dispatch/8 at %.0f%% of static, expected near 100%%\n%s", r.Ops[i], full*100, out)
		}
		if none < 1.15 {
			t.Errorf("%s: no dispatch only %.0f%%, expected a large penalty\n%s", r.Ops[i], none*100, out)
		}
		if none <= full {
			t.Errorf("%s: penalty not monotone (full=%.2f none=%.2f)\n%s", r.Ops[i], full, none, out)
		}
	}
}

func TestMemPlanShapeHolds(t *testing.T) {
	r, err := MemPlan(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := r.Format()
	if r.AllocsWith >= r.AllocsWithout {
		t.Errorf("planning did not reduce allocations (%d -> %d)\n%s", r.AllocsWithout, r.AllocsWith, out)
	}
	if len(r.Footprints) != 4 {
		t.Fatalf("expected 4 CV models:\n%s", out)
	}
	for _, f := range r.Footprints {
		// Nimble's plan reuses memory (beats no-reuse) but may exceed the
		// whole-graph optimum (paper: up to +8%).
		if f.NimbleBytes > f.NoReuseBytes {
			t.Errorf("%s: plan worse than no reuse\n%s", f.Model, out)
		}
		if f.NimbleBytes < f.OptimalBytes {
			t.Errorf("%s: plan beats the optimum — interval extraction is broken\n%s", f.Model, out)
		}
		if f.Overhead() > 60 {
			t.Errorf("%s: overhead %.1f%% far above the paper's band\n%s", f.Model, f.Overhead(), out)
		}
	}
}

// TestServeSweepSmoke exercises the closed-loop serving benchmark at a
// tiny scale: both models, two client counts, real pool dispatch.
func TestServeSweepSmoke(t *testing.T) {
	res, err := Serve(ServeConfig{
		Workers:  2,
		Clients:  []int{1, 4},
		Duration: 40 * time.Millisecond,
		Seed:     7,
		Batch:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Requests == 0 || row.Throughput <= 0 || row.P99 < row.P50 {
			t.Errorf("degenerate row: %+v", row)
		}
	}
	if s := res.Format(); !strings.Contains(s, "bert") || !strings.Contains(s, "mlp+batch") {
		t.Errorf("format missing models:\n%s", s)
	}
}
