package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"nimble/internal/compiler"
	"nimble/internal/models"
	"nimble/internal/tensor"
	"nimble/internal/vm"
)

// DecodeRow is one decode-benchmark measurement: a full autoregressive
// generation of the configured token budget through one entry, streamed.
type DecodeRow struct {
	Entry string `json:"entry"`
	// Tokens is the tokens generated per run (the model's MaxNew).
	Tokens int `json:"tokens_per_run"`
	Runs   int `json:"runs"`
	// TTFTMicros is the mean time from stream open to the first emitted
	// token — the latency a streaming client perceives before output starts.
	TTFTMicros float64 `json:"ttft_us"`
	// TokensPerSec is the streamed steady-state generation rate.
	TokensPerSec float64 `json:"tokens_per_sec"`
	// PerTokenMicros is the streamed mean per-token latency (1e6/rate).
	PerTokenMicros float64 `json:"us_per_token"`
	// InvokeMicros is the non-streaming Invoke of the same entry, whole
	// generation; streaming overhead is the gap to Tokens×PerTokenMicros.
	InvokeMicros float64 `json:"invoke_us"`
}

// DecodeResult is the decode benchmark: tokens/s and time-to-first-token
// for the autoregressive decoder's greedy and temperature-sampled entries.
type DecodeResult struct {
	Vocab  int         `json:"vocab"`
	Dim    int         `json:"dim"`
	Layers int         `json:"layers"`
	Heads  int         `json:"heads"`
	MaxNew int         `json:"max_new"`
	Rows   []DecodeRow `json:"rows"`
}

// Format renders the decode benchmark.
func (r *DecodeResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Decode: autoregressive generation, KV-cache in VM (vocab=%d dim=%d layers=%d heads=%d, %d tokens/run)\n",
		r.Vocab, r.Dim, r.Layers, r.Heads, r.MaxNew)
	fmt.Fprintf(&b, "%-18s%14s%14s%14s%14s\n", "", "ttft µs", "tokens/s", "µs/token", "invoke µs")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s%14.1f%14.0f%14.1f%14.1f\n",
			row.Entry, row.TTFTMicros, row.TokensPerSec, row.PerTokenMicros, row.InvokeMicros)
	}
	b.WriteString("note: ttft and tokens/s measured through InvokeStream (per-token delivery); invoke µs is the non-streaming run\n")
	return b.String()
}

// Decode measures the decoder model's generation throughput and
// time-to-first-token over both entries, streaming each token through the
// VM's stream.emit sink exactly as Session.InvokeStream does.
func Decode(cfg Config) (*DecodeResult, error) {
	mcfg := models.DefaultDecoderConfig()
	m := models.NewDecoder(mcfg)
	machine, _, err := compiler.CompileToVM(m.Module, compiler.Options{})
	if err != nil {
		return nil, err
	}
	res := &DecodeResult{Vocab: mcfg.Vocab, Dim: mcfg.Dim, Layers: mcfg.Layers, Heads: mcfg.Heads, MaxNew: mcfg.MaxNew}
	runs := cfg.samples(30, 5)
	ctx := context.Background()
	for _, entry := range []string{"generate", "generate_sampled"} {
		start := vm.NewTensorObj(models.StartToken(1))
		// Warm: settle the storage pool and frame recycler before timing.
		for i := 0; i < 2; i++ {
			if _, err := machine.Invoke(entry, start); err != nil {
				return nil, fmt.Errorf("bench: decode warmup %s: %w", entry, err)
			}
		}
		var ttft, streamed time.Duration
		tokens := 0
		for i := 0; i < runs; i++ {
			first := time.Duration(-1)
			n := 0
			t0 := time.Now()
			_, err := machine.InvokeStreamContext(ctx, func(*tensor.Tensor) error {
				if first < 0 {
					first = time.Since(t0)
				}
				n++
				return nil
			}, entry, start)
			streamed += time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("bench: decode stream %s: %w", entry, err)
			}
			ttft += first
			tokens += n
		}
		invoke := measure(runs, func() {
			if _, err := machine.Invoke(entry, start); err != nil {
				panic(err)
			}
		})
		rate := float64(tokens) / streamed.Seconds()
		res.Rows = append(res.Rows, DecodeRow{
			Entry:          entry,
			Tokens:         tokens / runs,
			Runs:           runs,
			TTFTMicros:     float64(ttft.Microseconds()) / float64(runs),
			TokensPerSec:   rate,
			PerTokenMicros: 1e6 / rate,
			InvokeMicros:   float64(invoke.Microseconds()) / float64(runs),
		})
	}
	return res, nil
}

// CoreRow is one model's host-measured Nimble latency in the committed
// perf snapshot.
type CoreRow struct {
	Model          string  `json:"model"`
	MicrosPerToken float64 `json:"us_per_token"`
}

// CoreResult is the machine-readable perf snapshot written to
// BENCH_core.json: the host-measured Nimble per-token latencies of the
// paper's three dynamic models in the quick configuration. Committed per
// PR so the performance trajectory is diffable in-repo.
type CoreResult struct {
	Config string    `json:"config"`
	Rows   []CoreRow `json:"rows"`
}

// Format renders the snapshot.
func (r *CoreResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Core snapshot (%s): Nimble host µs/token\n", r.Config)
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s%10.1f\n", row.Model, row.MicrosPerToken)
	}
	return b.String()
}

// Core produces the BENCH_core.json snapshot. It always runs the quick
// configuration: the snapshot exists to make the perf trajectory diffable
// across commits, which requires a fixed, CI-affordable workload.
func Core(cfg Config) (*CoreResult, error) {
	cfg.Quick = true
	res := &CoreResult{Config: "quick"}
	for _, src := range []struct {
		model string
		f     func(Config) (*Table, error)
	}{
		{"lstm", Table1}, {"treelstm", Table2}, {"bert", Table3},
	} {
		t, err := src.f(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: core %s: %w", src.model, err)
		}
		res.Rows = append(res.Rows, CoreRow{Model: src.model, MicrosPerToken: t.Cells["Nimble"]["Intel CPU"].Value})
	}
	return res, nil
}
