package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"nimble/internal/codegen"
	"nimble/internal/data"
	"nimble/internal/kernels"
	"nimble/internal/models"
	"nimble/internal/tensor"
)

// Figure3Result holds the symbolic-vs-static codegen study: relative latency
// of k-way dispatch against the static kernel for the three BERT dense
// operators, measured on real executions over MRPC-profile sequence lengths.
type Figure3Result struct {
	// Ops names the three dense operators (Dense1..Dense3).
	Ops []string
	// Series maps configuration name ("static", "dispatch/8", ...) to one
	// relative latency per op (static == 1.0).
	Series map[string][]float64
	// Order fixes the printing order of configurations.
	Order []string
	Notes []string
}

// Format renders the figure as a series table.
func (r *Figure3Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 3: relative latency of symbolic vs static codegen (dense ops)\n")
	fmt.Fprintf(&b, "%-12s", "")
	for _, op := range r.Ops {
		fmt.Fprintf(&b, "%10s", op)
	}
	b.WriteString("\n")
	for _, name := range r.Order {
		fmt.Fprintf(&b, "%-12s", name)
		for _, v := range r.Series[name] {
			fmt.Fprintf(&b, "%9.0f%%", v*100)
		}
		b.WriteString("\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Figure3 measures the §4.5 dispatch experiment: the BERT dense shapes with
// a symbolic row count are run under the static kernel and under dispatch
// tables of width 8, 4, 2 and 1.
func Figure3(cfg Config) (*Figure3Result, error) {
	bcfg := models.BERTReduced()
	if cfg.Quick {
		bcfg.Hidden, bcfg.FFN = 64, 256
	}
	h, f := bcfg.Hidden, bcfg.FFN
	// The three dense operators of a BERT layer: projection, FFN up, FFN
	// down.
	shapes := []struct {
		name string
		k, n int
	}{
		{"Dense1", h, h},
		{"Dense2", h, f},
		{"Dense3", f, h},
	}
	sampler := data.NewMRPC(cfg.Seed)
	count := cfg.samples(24, 6)
	lens := make([]int, count)
	for i := range lens {
		lens[i] = sampler.Length()
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	// Best-of-N sweeps: the minimum is robust to scheduler noise, which
	// matters for the small quick-mode matrices.
	trials := cfg.samples(4, 5)

	res := &Figure3Result{
		Series: map[string][]float64{},
		Order:  []string{"static", "dispatch/8", "dispatch/4", "dispatch/2", "no dispatch"},
	}
	widths := map[string]int{"dispatch/8": 8, "dispatch/4": 4, "dispatch/2": 2, "no dispatch": 1}

	for _, sh := range shapes {
		res.Ops = append(res.Ops, sh.name)
		// Inputs per length, shared across configurations.
		as := make([]*tensor.Tensor, count)
		outs := make([]*tensor.Tensor, count)
		for i, m := range lens {
			as[i] = tensor.Random(rng, 1, m, sh.k)
			outs[i] = tensor.New(tensor.Float32, m, sh.n)
		}
		b := tensor.Random(rng, 1, sh.k, sh.n)

		staticTime := bestOf(trials, func() {
			for i := range as {
				kernels.MatMulStatic(as[i], b, outs[i])
			}
		})
		res.Series["static"] = append(res.Series["static"], 1.0)

		for _, name := range res.Order[1:] {
			table := codegen.BuildDispatchTable(widths[name])
			t := bestOf(trials, func() {
				for i := range as {
					table.Invoke(as[i], b, outs[i])
				}
			})
			res.Series[name] = append(res.Series[name], rel(t, staticTime))
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("Dense1=%dx%d Dense2=%dx%d Dense3=%dx%d; %d MRPC-profile row counts, tile factor %d",
			h, h, h, f, f, h, count, kernels.TileFactor),
		"paper: full dispatch ~= static; latency rises as kernels shrink, up to 42%/104%/45% at no dispatch")
	return res, nil
}

// bestOf returns the minimum wall time of n trials of f (after one warmup).
func bestOf(n int, f func()) time.Duration {
	f()
	best := time.Duration(1<<62 - 1)
	for i := 0; i < n; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

func rel(t, base time.Duration) float64 {
	if base == 0 {
		return 0
	}
	return float64(t) / float64(base)
}
