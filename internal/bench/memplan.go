package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"nimble/internal/baselines"
	"nimble/internal/compiler"
	"nimble/internal/ir"
	"nimble/internal/models"
	"nimble/internal/passes"
	"nimble/internal/typeinfer"
	"nimble/internal/vm"
)

// MemPlanResult holds the §6.3 memory-planning study.
type MemPlanResult struct {
	// Allocation reduction on BERT: fresh storage allocations with the
	// planner (static coalescing + runtime pool) on vs off.
	AllocsWithout, AllocsWith int64
	// Latency with/without planning (whole inference; the delta is
	// dominated by allocation work).
	LatencyWithout, LatencyWith time.Duration
	// Footprints per CV model: Nimble's chain-local plan vs the optimal
	// whole-graph static plan.
	Footprints []Footprint
	Notes      []string
}

// Footprint compares one CV model's planned bytes against the static
// optimum.
type Footprint struct {
	Model        string
	NimbleBytes  int
	OptimalBytes int
	NoReuseBytes int
}

// Overhead returns Nimble's footprint excess over the optimum in percent.
func (f Footprint) Overhead() float64 {
	if f.OptimalBytes == 0 {
		return 0
	}
	return 100 * (float64(f.NimbleBytes) - float64(f.OptimalBytes)) / float64(f.OptimalBytes)
}

// Format renders the study.
func (r *MemPlanResult) Format() string {
	var b strings.Builder
	b.WriteString("Memory planning (§6.3)\n")
	reduction := 0.0
	if r.AllocsWithout > 0 {
		reduction = 100 * float64(r.AllocsWithout-r.AllocsWith) / float64(r.AllocsWithout)
	}
	fmt.Fprintf(&b, "buffer allocations: %d -> %d (-%.0f%%; paper: -47%%)\n",
		r.AllocsWithout, r.AllocsWith, reduction)
	fmt.Fprintf(&b, "inference latency:  %.2fms -> %.2fms (alloc-dominated delta; paper: 2.0ms -> 0.5ms alloc latency)\n",
		ms(r.LatencyWithout), ms(r.LatencyWith))
	b.WriteString("memory footprint vs optimal static plan (paper: up to +8%):\n")
	for _, f := range r.Footprints {
		fmt.Fprintf(&b, "  %-12s nimble=%8.2fMB optimal=%8.2fMB no-reuse=%8.2fMB overhead=%+.1f%%\n",
			f.Model, mb(f.NimbleBytes), mb(f.OptimalBytes), mb(f.NoReuseBytes), f.Overhead())
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func mb(bytes int) float64 { return float64(bytes) / (1 << 20) }

// MemPlan runs the memory-planning study: BERT allocation counts and latency
// with the planner on/off, and CV-model footprints against the optimal
// static planner.
func MemPlan(cfg Config) (*MemPlanResult, error) {
	res := &MemPlanResult{}

	// Part 1: BERT allocations with and without planning.
	bcfg := models.BERTReduced()
	if cfg.Quick {
		bcfg = models.BERTConfig{Layers: 2, Hidden: 64, Heads: 2, FFN: 128, Vocab: 512, MaxSeq: 32, Seed: 44}
	}
	seq := cfg.samples(128, 24)
	rng := rand.New(rand.NewSource(cfg.Seed + 6))
	runs := cfg.samples(4, 2)

	runCase := func(coalesce, pool bool) (int64, time.Duration, error) {
		m := models.NewBERT(bcfg)
		machine, _, err := compiler.CompileToVM(m.Module, compiler.Options{DisableCoalescing: !coalesce})
		if err != nil {
			return 0, 0, err
		}
		if !pool {
			machine.DisablePool()
		}
		prof := vm.NewProfiler()
		prof.Timing = false
		machine.SetProfiler(prof)
		ids := m.RandomIDs(rng, seq)
		lat := measure(runs, func() {
			if _, err := machine.InvokeTensors("main", ids); err != nil {
				panic(err)
			}
		}) / time.Duration(runs)
		return prof.AllocFresh / int64(runs), lat, nil
	}
	var err error
	res.AllocsWithout, res.LatencyWithout, err = runCase(false, false)
	if err != nil {
		return nil, err
	}
	res.AllocsWith, res.LatencyWith, err = runCase(true, true)
	if err != nil {
		return nil, err
	}

	// Part 2: CV footprints vs the optimal static plan.
	spatial := 224
	if cfg.Quick {
		spatial = 64
	}
	for _, cv := range models.CVModels(spatial) {
		ivs, nimbleBytes, err := staticIntervals(cv.Module)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cv.Name, err)
		}
		res.Footprints = append(res.Footprints, Footprint{
			Model:        cv.Name,
			NimbleBytes:  nimbleBytes,
			OptimalBytes: baselines.OptimalStaticPlan(ivs),
			NoReuseBytes: baselines.SumSizes(ivs),
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("BERT config L=%d H=%d seq=%d; CV models at %dx%d", bcfg.Layers, bcfg.Hidden, seq, spatial, spatial))
	return res, nil
}

// staticIntervals lowers a CV module through the planning pipeline and
// extracts (size, live-range) intervals for its static allocations plus
// Nimble's coalesced footprint.
func staticIntervals(mod *ir.Module) ([]baselines.Interval, int, error) {
	var coalesce passes.CoalesceStats
	mgr := passes.NewManager(
		passes.ANF(), passes.ConstantFold(), passes.DCE(), passes.FuseOps(),
		passes.ManifestAlloc(ir.CPU(0)),
	)
	if err := mgr.Run(mod); err != nil {
		return nil, 0, err
	}
	fn, err := mod.Main()
	if err != nil {
		return nil, 0, err
	}
	ivs := extractIntervals(fn.Body)
	// Nimble's footprint: apply chain-local coalescing and sum what remains.
	if err := typeinfer.InferModule(mod); err != nil {
		return nil, 0, err
	}
	if err := passes.CoalesceStorageWithStats(&coalesce).Run(mod); err != nil {
		return nil, 0, err
	}
	return ivs, coalesce.BytesAfter, nil
}

// extractIntervals reads the manifested chain: each static alloc_storage
// opens an interval at its binding index; the kill of a tensor backed by it
// closes the interval (escaping buffers stay live to the end).
func extractIntervals(body ir.Expr) []baselines.Interval {
	type alloc struct {
		size, lo int
		hi       int
	}
	storages := map[*ir.Var]*alloc{}
	bufferStorage := map[*ir.Var]*ir.Var{}
	resultBuffer := map[*ir.Var]*ir.Var{}
	var order []*alloc
	idx := 0
	var walk func(e ir.Expr)
	walk = func(e ir.Expr) {
		for {
			l, ok := e.(*ir.Let)
			if !ok {
				return
			}
			idx++
			if call, ok := l.Value.(*ir.Call); ok {
				if ref, ok := call.Callee.(*ir.OpRef); ok {
					switch ref.Op.Name {
					case ir.OpAllocStorage:
						if size := call.Attrs.Int("size", -1); size >= 0 {
							a := &alloc{size: size, lo: idx, hi: -1}
							storages[l.Bound] = a
							order = append(order, a)
						}
					case ir.OpAllocTensor:
						if sv, ok := call.Args[0].(*ir.Var); ok {
							bufferStorage[l.Bound] = sv
						}
					case ir.OpInvokeMut:
						if bv, ok := call.Args[len(call.Args)-1].(*ir.Var); ok {
							resultBuffer[l.Bound] = bv
						}
					case ir.OpKill:
						if tv, ok := call.Args[0].(*ir.Var); ok {
							buf := resultBuffer[tv]
							if buf == nil {
								buf = tv
							}
							if sv := bufferStorage[buf]; sv != nil {
								if a := storages[sv]; a != nil {
									a.hi = idx
								}
							}
						}
					}
				}
			}
			e = l.Body
		}
	}
	walk(body)
	out := make([]baselines.Interval, 0, len(order))
	for _, a := range order {
		hi := a.hi
		if hi < 0 {
			hi = idx + 1
		}
		out = append(out, baselines.Interval{Size: a.size, Lo: a.lo, Hi: hi})
	}
	return out
}
