package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"nimble"
	"nimble/internal/models"
)

// OpenLoopConfig parameterizes the open-loop (Poisson-arrival) serving
// benchmark. The closed loop (ServeConfig) measures saturated throughput —
// every client always has a request in flight, so reported latency is
// dominated by self-inflicted queueing. The open loop is the honest
// latency-under-load instrument: arrivals come on an exponential clock at a
// fixed offered rate whether or not earlier requests have finished, and
// latency is measured from the scheduled arrival, so queueing delay (and
// coordinated omission) is counted, not hidden.
type OpenLoopConfig struct {
	// Workers is the session-pool size (default 8).
	Workers int
	// QPS enumerates offered arrival rates per cell (default 16, 32, 48).
	QPS []float64
	// Duration is the arrival window per cell (default 2s); the cell then
	// drains every issued request.
	Duration time.Duration
	// Seed drives arrivals and input sampling.
	Seed int64
	// Model filters the sweep ("bert" or "decoder"); empty runs both.
	Model string
	// PinStreams additionally runs the decoder rows with the
	// continuous-batching scheduler disabled (streams pin a session), as
	// the A/B baseline.
	PinStreams bool
}

func (c OpenLoopConfig) withDefaults() OpenLoopConfig {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if len(c.QPS) == 0 {
		c.QPS = []float64{16, 32, 48}
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	return c
}

// OpenLoopRow is one (model, qps) measurement — the machine-readable
// schema of BENCH_serve.json.
type OpenLoopRow struct {
	Model   string  `json:"model"`
	Workers int     `json:"workers"`
	QPS     float64 `json:"offered_qps"`
	// Offered counts scheduled arrivals; Completed the ones that returned a
	// result; Shed the ones the admission gate or scheduler rejected with
	// ErrOverloaded (an open-loop system must shed or collapse).
	Offered   int64   `json:"offered"`
	Completed int64   `json:"completed"`
	Shed      int64   `json:"shed"`
	GoodputPS float64 `json:"goodput_per_sec"`
	// P50/P99 are completion latencies measured from the scheduled arrival
	// time, so they include queueing delay.
	P50 time.Duration `json:"p50_ns"`
	P99 time.Duration `json:"p99_ns"`
	// TTFTP50/TTFTP99 are time-to-first-token quantiles (stream rows only):
	// the latency a user watching tokens render actually feels, and the
	// number iteration-level scheduling exists to improve.
	TTFTP50 time.Duration `json:"ttft_p50_ns,omitempty"`
	TTFTP99 time.Duration `json:"ttft_p99_ns,omitempty"`
}

// OpenLoopResult is the full sweep.
type OpenLoopResult struct {
	Config OpenLoopConfig `json:"config"`
	Rows   []OpenLoopRow  `json:"rows"`
	Notes  []string       `json:"notes"`
}

// Format renders the sweep as a table.
func (r *OpenLoopResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serving latency under open-loop Poisson load (%d workers, %v per cell)\n",
		r.Config.Workers, r.Config.Duration)
	fmt.Fprintf(&b, "%-16s %8s %8s %6s %10s %10s %10s %10s %10s\n",
		"model", "qps", "done", "shed", "goodput/s", "p50", "p99", "ttft p50", "ttft p99")
	for _, row := range r.Rows {
		ttft50, ttft99 := "-", "-"
		if row.TTFTP99 > 0 {
			ttft50 = row.TTFTP50.Round(time.Microsecond).String()
			ttft99 = row.TTFTP99.Round(time.Microsecond).String()
		}
		fmt.Fprintf(&b, "%-16s %8.0f %8d %6d %10.0f %10v %10v %10s %10s\n",
			row.Model, row.QPS, row.Completed, row.Shed, row.GoodputPS,
			row.P50.Round(time.Microsecond), row.P99.Round(time.Microsecond), ttft50, ttft99)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// openModel is one open-loop target: issue runs request job and reports its
// time to first token (zero for non-streaming entries).
type openModel struct {
	name  string
	issue func(ctx context.Context, job int) (ttft time.Duration, err error)
	close func()
}

// OpenLoop runs the open-loop sweep over the public Service API — through
// the admission gate, micro-batcher, and continuous-batching scheduler,
// exactly the stack nimble-serve exposes.
func OpenLoop(cfg OpenLoopConfig) (*OpenLoopResult, error) {
	cfg = cfg.withDefaults()
	result := &OpenLoopResult{Config: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var served []openModel
	if cfg.Model == "" || cfg.Model == "bert" {
		m, err := openBERT(cfg, rng)
		if err != nil {
			return nil, err
		}
		served = append(served, m)
	}
	if cfg.Model == "" || cfg.Model == "decoder" {
		m, err := openDecoder(cfg, rng, false)
		if err != nil {
			return nil, err
		}
		served = append(served, m)
		if cfg.PinStreams {
			pinned, err := openDecoder(cfg, rng, true)
			if err != nil {
				return nil, err
			}
			served = append(served, pinned)
		}
	}
	if len(served) == 0 {
		return nil, fmt.Errorf("bench: no open-loop model matches %q (bert | decoder)", cfg.Model)
	}
	defer func() {
		for _, m := range served {
			m.close()
		}
	}()

	for _, m := range served {
		for i, qps := range cfg.QPS {
			row, err := runOpenCell(m, qps, cfg, cfg.Seed+int64(i))
			if err != nil {
				return nil, fmt.Errorf("bench: %s at %.0f qps: %w", m.name, qps, err)
			}
			result.Rows = append(result.Rows, row)
		}
	}
	result.Notes = append(result.Notes,
		"latency measured from the scheduled Poisson arrival (queueing delay included; no coordinated omission)",
		"shed = ErrOverloaded from the admission gate / deadline projection; goodput counts completions only",
		"decoder rows stream via the continuous-batching scheduler; ttft is time to first emitted token",
	)
	if cfg.PinStreams {
		result.Notes = append(result.Notes,
			"decoder+pinned is the A/B baseline: scheduler disabled, each stream holds a session for its whole decode")
	}
	return result, nil
}

func openBERT(cfg OpenLoopConfig, rng *rand.Rand) (openModel, error) {
	bertCfg := models.BERTReduced()
	bertCfg.Layers = 2
	bert := models.NewBERT(bertCfg)
	prog, err := nimble.Compile(bert.Module)
	if err != nil {
		return openModel{}, err
	}
	svc, err := prog.Serve(nimble.WithWorkers(cfg.Workers))
	if err != nil {
		return openModel{}, err
	}
	inputs := make([]nimble.Value, 32)
	for i := range inputs {
		inputs[i] = nimble.TensorValue(bert.RandomIDs(rng, 8+rng.Intn(41)))
	}
	return openModel{
		name: "bert",
		issue: func(ctx context.Context, job int) (time.Duration, error) {
			_, err := svc.Invoke(ctx, "main", inputs[job%len(inputs)])
			return 0, err
		},
		close: func() { svc.Close() },
	}, nil
}

func openDecoder(cfg OpenLoopConfig, rng *rand.Rand, pinned bool) (openModel, error) {
	dec := models.NewDecoder(models.DefaultDecoderConfig())
	prog, err := nimble.Compile(dec.Module)
	if err != nil {
		return openModel{}, err
	}
	opts := []nimble.ServiceOption{nimble.WithWorkers(cfg.Workers)}
	name := "decoder"
	if pinned {
		opts = append(opts, nimble.WithPinnedStreams())
		name = "decoder+pinned"
	}
	svc, err := prog.Serve(opts...)
	if err != nil {
		return openModel{}, err
	}
	starts := make([]nimble.Value, 32)
	for i := range starts {
		starts[i] = nimble.TensorValue(models.StartToken(rng.Int63n(int64(dec.Config.Vocab))))
	}
	return openModel{
		name: name,
		issue: func(ctx context.Context, job int) (time.Duration, error) {
			issued := time.Now()
			st, err := svc.InvokeStream(ctx, "generate", starts[job%len(starts)])
			if err != nil {
				return 0, err
			}
			var ttft time.Duration
			for st.Next() {
				if ttft == 0 {
					ttft = time.Since(issued)
				}
			}
			if err := st.Close(); err != nil {
				return 0, err
			}
			return ttft, nil
		},
		close: func() { svc.Close() },
	}, nil
}

// runOpenCell offers requests at rate qps on an exponential clock for the
// window, then drains. Every scheduled arrival is issued regardless of how
// many are still in flight — that is the point of the open loop.
func runOpenCell(m openModel, qps float64, cfg OpenLoopConfig, seed int64) (OpenLoopRow, error) {
	row := OpenLoopRow{Model: m.name, Workers: cfg.Workers, QPS: qps}
	rng := rand.New(rand.NewSource(seed))

	var mu sync.Mutex
	var lats, ttfts []time.Duration
	var shed, failed int64
	var firstErr error

	var wg sync.WaitGroup
	start := time.Now()
	next := start
	for {
		next = next.Add(time.Duration(rng.ExpFloat64() / qps * float64(time.Second)))
		if next.Sub(start) > cfg.Duration {
			break
		}
		time.Sleep(time.Until(next))
		row.Offered++
		wg.Add(1)
		go func(arrival time.Time, job int64) {
			defer wg.Done()
			ttft, err := m.issue(context.Background(), int(job))
			lat := time.Since(arrival)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				lats = append(lats, lat)
				if ttft > 0 {
					ttfts = append(ttfts, ttft)
				}
			case errors.Is(err, nimble.ErrOverloaded):
				shed++
			default:
				failed++
				if firstErr == nil {
					firstErr = err
				}
			}
		}(next, row.Offered)
	}
	wg.Wait()
	if firstErr != nil {
		return row, firstErr
	}
	_ = failed
	if len(lats) == 0 {
		return row, fmt.Errorf("every arrival was shed (offered %d)", row.Offered)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	row.Completed = int64(len(lats))
	row.Shed = shed
	row.GoodputPS = float64(len(lats)) / cfg.Duration.Seconds()
	row.P50 = lats[len(lats)/2]
	row.P99 = lats[len(lats)*99/100]
	if len(ttfts) > 0 {
		sort.Slice(ttfts, func(i, j int) bool { return ttfts[i] < ttfts[j] })
		row.TTFTP50 = ttfts[len(ttfts)/2]
		row.TTFTP99 = ttfts[len(ttfts)*99/100]
	}
	return row, nil
}
