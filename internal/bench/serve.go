package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"nimble/internal/compiler"
	"nimble/internal/models"
	"nimble/internal/serve"
	"nimble/internal/tensor"
)

// ServeConfig parameterizes the closed-loop serving benchmark.
type ServeConfig struct {
	// Workers is the session-pool size (0 = 8, matching the acceptance
	// target of 4x single-session throughput at 8 workers).
	Workers int
	// Clients enumerates concurrent closed-loop client counts
	// (default 1,2,4,8,16,32,64).
	Clients []int
	// Duration is the measured window per cell (default 400ms; the
	// closed loop saturates quickly).
	Duration time.Duration
	// Seed drives input sampling.
	Seed int64
	// Batch enables the micro-batcher for the MLP rows.
	Batch bool
	// Model filters the sweep to one served model ("bert" or "mlp");
	// empty runs all.
	Model string
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if len(c.Clients) == 0 {
		c.Clients = []int{1, 2, 4, 8, 16, 32, 64}
	}
	if c.Duration <= 0 {
		c.Duration = 400 * time.Millisecond
	}
	return c
}

// ServeRow is one (model, clients) measurement. The JSON tags are the
// machine-readable schema of BENCH_serve.json (the CI artifact).
type ServeRow struct {
	Model    string `json:"model"`
	Workers  int    `json:"workers"`
	Clients  int    `json:"clients"`
	Requests int64  `json:"requests"`
	// Throughput is requests/second; TokensPerSec weights each request by
	// its token count (sequence length, tree leaves, or batch rows).
	Throughput   float64       `json:"req_per_sec"`
	TokensPerSec float64       `json:"tokens_per_sec"`
	P50          time.Duration `json:"p50_ns"`
	P99          time.Duration `json:"p99_ns"`
	// Speedup is this row's throughput over the same model's 1-client row.
	Speedup float64 `json:"speedup"`
	// Coalesced counts requests served by merged micro-batches (MLP only).
	Coalesced int64 `json:"coalesced,omitempty"`
}

// ServeResult is the full sweep.
type ServeResult struct {
	Config ServeConfig `json:"config"`
	Rows   []ServeRow  `json:"rows"`
	Notes  []string    `json:"notes"`
}

// Format renders the sweep as a table.
func (r *ServeResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serving throughput/latency (closed loop, %d workers, %v per cell)\n",
		r.Config.Workers, r.Config.Duration)
	fmt.Fprintf(&b, "%-10s %8s %10s %12s %14s %10s %10s %9s\n",
		"model", "clients", "requests", "req/s", "tokens/s", "p50", "p99", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %8d %10d %12.0f %14.0f %10v %10v %8.2fx\n",
			row.Model, row.Clients, row.Requests, row.Throughput, row.TokensPerSec,
			row.P50.Round(time.Microsecond), row.P99.Round(time.Microsecond), row.Speedup)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// servedModel abstracts one benchmarked entry point: Invoke runs one
// request by index and returns its token weight.
type servedModel struct {
	name   string
	jobs   int
	invoke func(job int) (int, error)
	stats  func() (coalesced int64)
}

// Serve runs the closed-loop load generator: for each model and each
// client count, N goroutines issue back-to-back requests against a shared
// session pool for the configured duration; the sweep reports throughput,
// token rate, and latency quantiles per cell.
func Serve(cfg ServeConfig) (*ServeResult, error) {
	cfg = cfg.withDefaults()
	result := &ServeResult{Config: cfg}

	rng := rand.New(rand.NewSource(cfg.Seed))

	// BERT (dynamic data shapes): per-request dispatch over the pool.
	bertCfg := models.BERTReduced()
	bertCfg.Layers = 2
	bert := models.NewBERT(bertCfg)
	bertRes, err := compiler.Compile(bert.Module, compiler.Options{})
	if err != nil {
		return nil, err
	}
	bertPool, err := serve.NewPool(bertRes.Exe, cfg.Workers)
	if err != nil {
		return nil, err
	}
	bertIDs := make([]*tensor.Tensor, 32)
	for i := range bertIDs {
		bertIDs[i] = bert.RandomIDs(rng, 8+rng.Intn(41)) // ragged lengths 8..48
	}
	bertModel := servedModel{
		name: "bert",
		jobs: len(bertIDs),
		invoke: func(job int) (int, error) {
			ids := bertIDs[job%len(bertIDs)]
			_, err := bertPool.InvokeTensors(context.Background(), "main", ids)
			return ids.NumElements(), err
		},
	}

	// MLP (row-independent): micro-batched when cfg.Batch is set.
	mlp := models.NewMLP(models.DefaultMLPConfig())
	mlpRes, err := compiler.Compile(mlp.Module, compiler.Options{})
	if err != nil {
		return nil, err
	}
	mlpPool, err := serve.NewPool(mlpRes.Exe, cfg.Workers)
	if err != nil {
		return nil, err
	}
	mlpInputs := make([]*tensor.Tensor, 32)
	for i := range mlpInputs {
		mlpInputs[i] = mlp.RandomBatch(rng, 1+rng.Intn(4))
	}
	mlpName := "mlp"
	var batcher *serve.Batcher
	if cfg.Batch {
		mlpName = "mlp+batch"
		batcher = serve.NewBatcher(mlpPool, serve.BatchConfig{Entry: "main", MaxBatch: 16})
		defer batcher.Close()
	}
	mlpModel := servedModel{
		name: mlpName,
		jobs: len(mlpInputs),
		invoke: func(job int) (int, error) {
			in := mlpInputs[job%len(mlpInputs)]
			var err error
			if batcher != nil {
				_, err = batcher.Invoke(context.Background(), in)
			} else {
				_, err = mlpPool.InvokeTensors(context.Background(), "main", in)
			}
			return in.Shape()[0], err
		},
		stats: func() int64 {
			if batcher == nil {
				return 0
			}
			return batcher.Stats().Coalesced
		},
	}

	served := []servedModel{bertModel, mlpModel}
	if cfg.Model != "" {
		var filtered []servedModel
		for _, m := range served {
			if m.name == cfg.Model || strings.HasPrefix(m.name, cfg.Model+"+") {
				filtered = append(filtered, m)
			}
		}
		if len(filtered) == 0 {
			return nil, fmt.Errorf("bench: no served model matches %q (bert | mlp)", cfg.Model)
		}
		served = filtered
	}
	for _, m := range served {
		var base float64
		var lastCoalesced int64
		for _, clients := range cfg.Clients {
			row, err := runServeCell(m, clients, cfg)
			if err != nil {
				return nil, err
			}
			row.Workers = cfg.Workers
			if clients == cfg.Clients[0] {
				base = row.Throughput
			}
			if base > 0 {
				row.Speedup = row.Throughput / base
			}
			if m.stats != nil {
				c := m.stats()
				row.Coalesced = c - lastCoalesced
				lastCoalesced = c
			}
			result.Rows = append(result.Rows, row)
		}
	}
	result.Notes = append(result.Notes,
		fmt.Sprintf("bert: %d layers, hidden %d, ragged seq 8..48 (tokens/s counts sequence positions)", bertCfg.Layers, bertCfg.Hidden),
		fmt.Sprintf("mlp: %d->%dx%d->%d rows 1..4 (tokens/s counts rows); batch=%v", mlp.Config.In, mlp.Config.Hidden, mlp.Config.Layers, mlp.Config.Out, cfg.Batch),
		"speedup is vs the 1-client row of the same model on the same pool")
	return result, nil
}

func runServeCell(m servedModel, clients int, cfg ServeConfig) (ServeRow, error) {
	row := ServeRow{Model: m.name, Clients: clients}
	var mu sync.Mutex
	var lats []time.Duration
	var tokens int64
	var firstErr error

	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var local []time.Duration
			var localTok int64
			job := c
			for time.Now().Before(deadline) {
				start := time.Now()
				tok, err := m.invoke(job)
				lat := time.Since(start)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				local = append(local, lat)
				localTok += int64(tok)
				job += clients
			}
			mu.Lock()
			lats = append(lats, local...)
			tokens += localTok
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return row, firstErr
	}
	if len(lats) == 0 {
		return row, fmt.Errorf("bench: no requests completed for %s at %d clients", m.name, clients)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	row.Requests = int64(len(lats))
	row.Throughput = float64(len(lats)) / cfg.Duration.Seconds()
	row.TokensPerSec = float64(tokens) / cfg.Duration.Seconds()
	row.P50 = lats[len(lats)/2]
	row.P99 = lats[len(lats)*99/100]
	return row, nil
}
