package bench

import (
	"fmt"
	"math/rand"
	"time"

	"nimble/internal/baselines"
	"nimble/internal/compiler"
	"nimble/internal/data"
	"nimble/internal/models"
	"nimble/internal/platform"
	"nimble/internal/tensor"
	"nimble/internal/vm"
)

// pyDispatch and foldBuild are the calibrated host-language overheads the Go
// baselines charge per framework operation: Go executors have no Python
// interpreter tax, so without these the measured gaps understate the paper's
// (whose baselines pay Python dispatch on every op and per-input TF graph
// construction). Values follow published framework dispatch latencies.
const (
	pyDispatch = 2 * time.Microsecond
	// TF Fold reconstructs a TensorFlow graph in Python for every input
	// (op-object creation per tree node); published TF1 graph-construction
	// rates are ~100-300µs per op, dominating small-tree inference — the
	// cause of the paper's 5.2x gap despite Fold's batched kernels.
	foldBuild = 150 * time.Microsecond
)

var simPlatforms = map[string]platform.Platform{
	"Nvidia GPU": platform.NvidiaGPU,
	"ARM CPU":    platform.ARMCPU,
}

// Table1 reproduces the LSTM latency comparison (µs/token): Nimble vs the
// eager (PyTorch-like) and dataflow (TensorFlow/MXNet-like) executors, one
// and two layers. Intel CPU is measured; Nvidia/ARM are simulated.
func Table1(cfg Config) (*Table, error) {
	rows := []string{"Nimble", "PyTorch", "MXNet", "TensorFlow"}
	var tables []*Table
	for _, layers := range []int{1, 2} {
		mcfg := models.DefaultLSTMConfig(layers)
		if cfg.Quick {
			mcfg.Input, mcfg.Hidden = 64, 96
		}
		m := models.NewLSTM(mcfg)
		machine, _, err := compiler.CompileToVM(m.Module, compiler.Options{})
		if err != nil {
			return nil, err
		}
		seqs, tokens := lstmInputs(cfg, m, cfg.samples(12, 3))

		t := newTable(fmt.Sprintf("Table 1 (%d layer(s)): LSTM inference latency, µs/token", layers),
			rows, []string{"Intel CPU", "Nvidia GPU", "ARM CPU"})

		prof := vm.NewProfiler()
		prof.Timing = false // counts only: per-instruction timing would tax the measured run
		machine.SetProfiler(prof)
		lists := make([]vm.Object, len(seqs))
		for i, steps := range seqs {
			lists[i] = models.SequenceToList(m.NilC.Tag, m.ConsC.Tag, steps)
		}
		runNimble := func() {
			for _, list := range lists {
				if _, err := machine.Invoke("main", list); err != nil {
					panic(err)
				}
			}
		}
		reps := cfg.samples(3, 2)
		runNimble() // warm caches, JIT-free but pool/GC state settles
		nimbleLat := measure(reps, runNimble) / time.Duration(reps)
		t.set("Nimble", "Intel CPU", usPerToken(nimbleLat, tokens), false)

		e := baselines.NewEager()
		e.OpOverhead = pyDispatch
		cells := e.CellsFromModel(m)
		runEager := func() {
			for _, steps := range seqs {
				e.RunLSTM(cells, steps)
			}
		}
		runEager()
		eagerLat := measure(reps, runEager) / time.Duration(reps)
		t.set("PyTorch", "Intel CPU", usPerToken(eagerLat, tokens), false)

		runDF := func() {
			for _, steps := range seqs {
				g := baselines.BuildDataflowLSTM(m, steps)
				g.NodeOverhead = pyDispatch
				if _, err := g.Run(nil); err != nil {
					panic(err)
				}
			}
		}
		runDF()
		dfLat := measure(reps, runDF) / time.Duration(reps)
		t.set("TensorFlow", "Intel CPU", usPerToken(dfLat, tokens), false)
		// MXNet shares the dataflow structure with heavier per-op cost;
		// the measured host column reuses the dataflow run and the
		// distinction appears in the simulated columns.
		t.set("MXNet", "Intel CPU", usPerToken(dfLat, tokens), false)

		flops := m.StepFlops() * int64(tokens)
		w := nimbleWorkload(prof, flops)
		simulateColumns(t, w, tokens, map[string]platform.SystemTraits{
			"Nimble": platform.Nimble, "PyTorch": platform.PyTorch,
			"MXNet": platform.MXNet, "TensorFlow": platform.TensorFlow,
		}, simPlatforms)
		t.Notes = append(t.Notes,
			fmt.Sprintf("measured on host CPU over %d MRPC-profile sequences (%d tokens); config in=%d hid=%d",
				len(seqs), tokens, mcfg.Input, mcfg.Hidden),
			"PyTorch column = eager executor charging 2µs/op Python dispatch; TensorFlow/MXNet = dataflow executor (measured host values identical by construction)")
		tables = append(tables, t)
	}
	merged := tables[0]
	merged.Title = "Table 1: LSTM inference latency, µs/token (1 layer, then 2 layers)"
	merged.Notes = append(merged.Notes, "--- 2 layers ---\n"+tables[1].Format())
	return merged, nil
}

func usPerToken(d time.Duration, tokens int) float64 {
	return float64(d.Microseconds()) / float64(tokens)
}

// Table2 reproduces the Tree-LSTM comparison: Nimble vs PyTorch (eager
// recursion) vs TF Fold (per-input batched graph). GPU is omitted as in the
// paper; ARM is simulated.
func Table2(cfg Config) (*Table, error) {
	mcfg := models.DefaultTreeLSTMConfig()
	if cfg.Quick {
		mcfg.Input, mcfg.Hidden = 32, 24
	}
	m := models.NewTreeLSTM(mcfg)
	machine, _, err := compiler.CompileToVM(m.Module, compiler.Options{})
	if err != nil {
		return nil, err
	}
	sst := data.NewSST(cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	count := cfg.samples(20, 4)
	trees := make([]*models.Tree, count)
	tokens := 0
	for i := range trees {
		n := sst.Words()
		if cfg.Quick && n > 12 {
			n = 12
		}
		trees[i] = models.RandomTree(rng, n, mcfg.Input)
		tokens += n
	}

	t := newTable("Table 2: Tree-LSTM inference latency, µs/token",
		[]string{"Nimble", "PyTorch", "TF Fold"}, []string{"Intel CPU", "ARM CPU"})

	prof := vm.NewProfiler()
	prof.Timing = false
	machine.SetProfiler(prof)
	objs := make([]vm.Object, len(trees))
	for i, tr := range trees {
		objs[i] = m.ToObject(tr)
	}
	runNimble := func() {
		for _, o := range objs {
			if _, err := machine.Invoke("main", o); err != nil {
				panic(err)
			}
		}
	}
	reps := cfg.samples(3, 2)
	runNimble()
	nimbleLat := measure(reps, runNimble) / time.Duration(reps)
	t.set("Nimble", "Intel CPU", usPerToken(nimbleLat, tokens), false)

	e := baselines.NewEager()
	e.OpOverhead = pyDispatch
	cell := baselines.NewEagerTreeCell(e, mcfg)
	runEager := func() {
		for _, tr := range trees {
			e.RunTreeLSTM(cell, tr)
		}
	}
	runEager()
	eagerLat := measure(reps, runEager) / time.Duration(reps)
	t.set("PyTorch", "Intel CPU", usPerToken(eagerLat, tokens), false)

	fold := baselines.NewFold(cell)
	fold.BuildOverhead = foldBuild
	runFold := func() {
		for _, tr := range trees {
			fold.RunTree(tr)
		}
	}
	runFold()
	foldLat := measure(reps, runFold) / time.Duration(reps)
	t.set("TF Fold", "Intel CPU", usPerToken(foldLat, tokens), false)

	nodes := 0
	for _, tr := range trees {
		nodes += tr.Nodes()
	}
	w := nimbleWorkload(prof, m.NodeFlops()*int64(nodes))
	simulateColumns(t, w, tokens, map[string]platform.SystemTraits{
		"Nimble": platform.Nimble, "PyTorch": platform.PyTorch, "TF Fold": platform.TFFold,
	}, map[string]platform.Platform{"ARM CPU": platform.ARMCPU})
	t.Notes = append(t.Notes,
		fmt.Sprintf("measured over %d SST-profile trees (%d tokens, %d nodes); config in=%d hid=%d",
			count, tokens, nodes, mcfg.Input, mcfg.Hidden),
		"TF Fold rebuilds its batched graph per input (GraphsBuilt="+fmt.Sprint(fold.GraphsBuilt)+"); Tree-LSTM on GPU omitted as in the paper")
	return t, nil
}

// Table3 reproduces the BERT comparison. The reduced architecture keeps
// pure-Go latencies tractable; EXPERIMENTS.md records the configuration.
func Table3(cfg Config) (*Table, error) {
	mcfg := models.BERTReduced()
	if cfg.Quick {
		mcfg = models.BERTConfig{Layers: 2, Hidden: 64, Heads: 2, FFN: 128, Vocab: 512, MaxSeq: 64, Seed: 44}
	}
	m := models.NewBERT(mcfg)
	machine, _, err := compiler.CompileToVM(m.Module, compiler.Options{})
	if err != nil {
		return nil, err
	}
	sampler := data.NewMRPC(cfg.Seed)
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	count := cfg.samples(10, 3)
	lens := make([]int, count)
	tokens := 0
	for i := range lens {
		lens[i] = sampler.Length()
		if cfg.Quick && lens[i] > 24 {
			lens[i] = 24
		}
		tokens += lens[i]
	}

	t := newTable("Table 3: BERT inference latency, µs/token",
		[]string{"Nimble", "PyTorch", "MXNet", "TensorFlow"},
		[]string{"Intel CPU", "Nvidia GPU", "ARM CPU"})

	prof := vm.NewProfiler()
	prof.Timing = false
	machine.SetProfiler(prof)
	var flops int64
	idsIn := make([]*tensor.Tensor, len(lens))
	for i, n := range lens {
		idsIn[i] = m.RandomIDs(rng, n)
		flops += m.SeqFlops(n)
	}
	runNimble := func() {
		for _, ids := range idsIn {
			if _, err := machine.InvokeTensors("main", ids); err != nil {
				panic(err)
			}
		}
	}
	reps := cfg.samples(3, 2)
	runNimble()
	nimbleLat := measure(reps, runNimble) / time.Duration(reps)
	t.set("Nimble", "Intel CPU", usPerToken(nimbleLat, tokens), false)

	e := baselines.NewEager()
	e.OpOverhead = pyDispatch
	eb := baselines.NewEagerBERT(e, mcfg)
	runEager := func() {
		for _, ids := range idsIn {
			e.RunBERT(eb, ids)
		}
	}
	runEager()
	eagerLat := measure(reps, runEager) / time.Duration(reps)
	t.set("PyTorch", "Intel CPU", usPerToken(eagerLat, tokens), false)

	runDF := func() {
		for _, ids := range idsIn {
			g := baselines.BuildDataflowBERT(eb, ids)
			g.NodeOverhead = pyDispatch
			if _, err := g.Run(nil); err != nil {
				panic(err)
			}
		}
	}
	runDF()
	dfLat := measure(reps, runDF) / time.Duration(reps)
	t.set("TensorFlow", "Intel CPU", usPerToken(dfLat, tokens), false)
	t.set("MXNet", "Intel CPU", usPerToken(dfLat, tokens), false)

	w := nimbleWorkload(prof, flops)
	simulateColumns(t, w, tokens, map[string]platform.SystemTraits{
		"Nimble": platform.Nimble, "PyTorch": platform.PyTorch,
		"MXNet": platform.MXNet, "TensorFlow": platform.TensorFlow,
	}, simPlatforms)
	t.Notes = append(t.Notes,
		fmt.Sprintf("config: L=%d H=%d A=%d FFN=%d over %d MRPC-profile lengths (%d tokens)",
			mcfg.Layers, mcfg.Hidden, mcfg.Heads, mcfg.FFN, count, tokens))
	return t, nil
}

// Table4Result carries the dynamic-overhead study: Nimble (dynamic shapes on
// the VM) versus a static graph runtime over the same model at a fixed
// sequence length, with the VM profiler splitting kernel from non-kernel
// time.
type Table4Result struct {
	Device        string
	TVMLatency    time.Duration
	NimbleLatency time.Duration
	KernelLatency time.Duration
	OtherLatency  time.Duration
	SeqLen        int
}

// Format prints the Table 4 row layout.
func (r *Table4Result) Format() string {
	return fmt.Sprintf(`Table 4: BERT latency (sequence length %d), TVM-static vs Nimble
%-8s %12s %14s %14s %12s
%-8s %12.2f %14.2f %14.2f %12.2f
note: overhead = %.1f%% (paper reports TVM 5-25%% faster on static shapes)
`,
		r.SeqLen,
		"device", "TVM (ms)", "Nimble (ms)", "kernel (ms)", "others (ms)",
		r.Device,
		ms(r.TVMLatency), ms(r.NimbleLatency), ms(r.KernelLatency), ms(r.OtherLatency),
		100*(float64(r.NimbleLatency)-float64(r.TVMLatency))/float64(r.TVMLatency))
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// Table4 measures dynamic-handling overhead: the dynamic executable's total
// latency split into kernel vs other instructions, against a static graph
// runtime (the statically compiled program executed without dynamic shape
// machinery — its non-kernel work is negligible by construction, like TVM's
// graph runtime).
func Table4(cfg Config) (*Table4Result, error) {
	mcfg := models.BERTReduced()
	seq := 128
	if cfg.Quick {
		mcfg = models.BERTConfig{Layers: 2, Hidden: 64, Heads: 2, FFN: 128, Vocab: 512, MaxSeq: 32, Seed: 44}
		seq = 32
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 4))

	// Nimble: dynamic module on the VM.
	dyn := models.NewBERT(mcfg)
	dynVM, _, err := compiler.CompileToVM(dyn.Module, compiler.Options{})
	if err != nil {
		return nil, err
	}
	prof := vm.NewProfiler()
	dynVM.SetProfiler(prof)
	ids := dyn.RandomIDs(rng, seq)
	// Warm up the storage pool, then measure.
	if _, err := dynVM.InvokeTensors("main", ids); err != nil {
		return nil, err
	}
	runs := cfg.samples(5, 4)
	// Best-of-N: keep the kernel/other split of the fastest run so the
	// split always sums to the reported latency.
	nimbleLat := time.Duration(1<<62 - 1)
	var kernelLat time.Duration
	for i := 0; i < runs; i++ {
		prof.Reset()
		d := measure(1, func() {
			if _, err := dynVM.InvokeTensors("main", ids); err != nil {
				panic(err)
			}
		})
		if d < nimbleLat {
			nimbleLat = d
			kernelLat = prof.KernelTime
		}
	}
	otherLat := nimbleLat - kernelLat
	if otherLat < 0 {
		otherLat = 0
	}

	// TVM static: same architecture compiled at a fixed length and executed
	// as a kernel sequence (the static graph runtime's cost is its kernels).
	static := models.NewBERTStatic(mcfg, seq)
	staticVM, _, err := compiler.CompileToVM(static.Module, compiler.Options{})
	if err != nil {
		return nil, err
	}
	sprof := vm.NewProfiler()
	staticVM.SetProfiler(sprof)
	if _, err := staticVM.InvokeTensors("main", ids); err != nil {
		return nil, err
	}
	sprof.Reset()
	tvmLat := time.Duration(1<<62 - 1)
	for i := 0; i < runs; i++ {
		sprof.Reset()
		measure(1, func() {
			if _, err := staticVM.InvokeTensors("main", ids); err != nil {
				panic(err)
			}
		})
		if sprof.KernelTime < tvmLat {
			tvmLat = sprof.KernelTime
		}
	}

	return &Table4Result{
		Device:        "Intel",
		TVMLatency:    tvmLat,
		NimbleLatency: nimbleLat,
		KernelLatency: kernelLat,
		OtherLatency:  otherLat,
		SeqLen:        seq,
	}, nil
}
