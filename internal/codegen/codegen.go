// Package codegen turns IR operators into executable kernels (PackedFuncs).
// It is the reproduction's stand-in for TVM's per-platform code generator:
// "generation" here means selecting and specializing Go loop nests per
// operator, shape class, tiling configuration and residue, which preserves
// exactly the loop-structure questions §4.5 studies — boundary-check
// elimination, residue dispatch, and the symbolic tuning strategy.
package codegen

import (
	"fmt"
	"sort"
	"strings"

	"nimble/internal/ir"
	"nimble/internal/kernels"
	"nimble/internal/tensor"
	"nimble/internal/vm"
)

// DispatchPolicy chooses how many symbolic kernels a dynamic dense operator
// compiles into (Figure 3's dispatch/k axis).
type DispatchPolicy int

const (
	// DispatchFull generates one kernel per residue (k = tile factor): the
	// best-performing configuration, matching static codegen.
	DispatchFull DispatchPolicy = kernels.TileFactor
	// DispatchNone generates a single guarded symbolic kernel.
	DispatchNone DispatchPolicy = 1
)

// Options configures kernel generation.
type Options struct {
	// Dispatch is the number of symbolic kernels per dynamic dense op
	// (8, 4, 2, or 1). Zero defaults to DispatchFull.
	Dispatch int
	// LibraryThreshold is the row count above which the dispatch function
	// calls the "third-party library" (parallel) kernel instead of the
	// generated one, mirroring §4.5's generated-vs-library selection; 0
	// disables the library path.
	LibraryThreshold int
	// LibraryWorkers caps the library kernel's parallelism (0 = GOMAXPROCS).
	LibraryWorkers int
}

// Normalize fills defaults and validates the dispatch width.
func (o Options) Normalize() (Options, error) {
	if o.Dispatch == 0 {
		o.Dispatch = int(DispatchFull)
	}
	switch o.Dispatch {
	case 1, 2, 4, 8:
	default:
		return o, fmt.Errorf("codegen: dispatch width %d must divide the tile factor %d", o.Dispatch, kernels.TileFactor)
	}
	return o, nil
}

// Kernel is a generated kernel with its stable name (used for executable
// serialization and profiling).
type Kernel struct {
	Name string
	Fn   vm.PackedFunc
}

// ForOp generates the kernel for one operator invocation. outType is the
// checked output type; a dynamic first dimension on a dense op triggers
// symbolic codegen with residue dispatch.
func ForOp(op *ir.Op, attrs ir.Attrs, outType *ir.TensorType, opts Options) (Kernel, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return Kernel{}, err
	}
	if op.Name == "dense" && outType != nil && outType.Rank() == 2 && outType.Dims[0].IsAny() {
		return symbolicDense(opts), nil
	}
	return genericKernel(op, attrs), nil
}

// ForShapeFunc generates the kernel that evaluates an operator's shape
// function at runtime. Shape functions are "realized as fragments of
// [the] tensor expression language" (§4.3); here they become packed
// functions like any other kernel, dispatched by InvokePacked and placed on
// the CPU by §4.4's rules.
func ForShapeFunc(op *ir.Op, attrs ir.Attrs) (Kernel, error) {
	if op.Shape.Fn == nil {
		return Kernel{}, fmt.Errorf("codegen: operator %s has no shape function", op.Name)
	}
	mode := op.Shape.Mode
	fn := op.Shape.Fn
	name := "shape:" + op.Name + attrsSuffix(attrs)
	packed := func(args []*tensor.Tensor, _ *tensor.Tensor) (*tensor.Tensor, error) {
		var shapes []tensor.Shape
		var vals []*tensor.Tensor
		if mode == ir.ShapeDataDependent {
			// Arguments are the operator's input values.
			vals = args
			shapes = make([]tensor.Shape, len(args))
			for i, a := range args {
				shapes[i] = a.Shape()
			}
		} else {
			// Arguments are shape tensors produced by ShapeOf.
			shapes = make([]tensor.Shape, len(args))
			for i, a := range args {
				s, err := a.ToShape()
				if err != nil {
					return nil, fmt.Errorf("codegen: shape func %s input %d: %w", op.Name, i, err)
				}
				shapes[i] = s
			}
		}
		out, err := fn(shapes, vals, attrs)
		if err != nil {
			return nil, err
		}
		if len(out) != 1 {
			return nil, fmt.Errorf("codegen: shape func %s produced %d outputs", op.Name, len(out))
		}
		return tensor.ShapeTensor(out[0]), nil
	}
	return Kernel{Name: name, Fn: packed}, nil
}

// genericKernel wraps an operator in the destination-passing packed
// convention. Operators providing EvalInto write the planned buffer
// directly — the fast path that makes §4.3 memory planning pay: no per-op
// allocation and no result copy. Operators without it fall back to Eval
// plus a copy into the plan when shapes match; upper-bound operators, whose
// precise result is smaller than the planned upper bound, return their
// precisely shaped tensor directly (§4.2: "use the real shape to slice the
// output tensors into precise output shape").
func genericKernel(op *ir.Op, attrs ir.Attrs) Kernel {
	name := op.Name + attrsSuffix(attrs)
	eval := op.Eval
	if evalInto := op.EvalInto; evalInto != nil {
		packed := func(args []*tensor.Tensor, out *tensor.Tensor) (*tensor.Tensor, error) {
			return evalInto(args, attrs, out)
		}
		return Kernel{Name: name, Fn: packed}
	}
	packed := func(args []*tensor.Tensor, out *tensor.Tensor) (*tensor.Tensor, error) {
		res, err := eval(args, attrs)
		if err != nil {
			return nil, err
		}
		if out == nil || !res.Shape().Equal(out.Shape()) || res.DType() != out.DType() {
			return res, nil
		}
		copyInto(out, res)
		return out, nil
	}
	return Kernel{Name: name, Fn: packed}
}

func copyInto(dst, src *tensor.Tensor) {
	switch dst.DType() {
	case tensor.Float32:
		copy(dst.F32(), src.F32())
	case tensor.Float64:
		copy(dst.F64(), src.F64())
	case tensor.Int32:
		copy(dst.I32(), src.I32())
	case tensor.Int64:
		copy(dst.I64(), src.I64())
	case tensor.Bool:
		copy(dst.Bools(), src.Bools())
	}
}

// symbolicDense builds the dispatch kernel of §4.5 for a dense operator
// whose row count is symbolic: k generated kernels, each covering
// TileFactor/k residues, selected at runtime by the actual shape ("we
// automatically generate a dispatch function that invokes the corresponding
// kernel based on the residue"). With a library threshold, large shapes are
// routed to the parallel library kernel instead, matching the dispatch
// function's ability to invoke "either compiler generated kernels or third
// party library whichever is faster".
func symbolicDense(opts Options) Kernel {
	k := opts.Dispatch
	name := fmt.Sprintf("dense_sym_dispatch%d", k)
	if opts.LibraryThreshold > 0 {
		name += fmt.Sprintf("_lib%d", opts.LibraryThreshold)
	}
	table := BuildDispatchTable(k)
	lib := opts.LibraryThreshold
	workers := opts.LibraryWorkers
	packed := func(args []*tensor.Tensor, out *tensor.Tensor) (*tensor.Tensor, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("codegen: dense expects 2 inputs, got %d", len(args))
		}
		a, b := args[0], args[1]
		m := a.Shape()[0]
		if out == nil {
			out = tensor.New(tensor.Float32, m, b.Shape()[1])
		}
		if lib > 0 && m >= lib {
			// The library kernel writes the planned buffer directly; the
			// persistent pool shards rows without spawning goroutines.
			return kernels.MatMulParallelInto(a, b, out, workers), nil
		}
		table.Invoke(a, b, out)
		return out, nil
	}
	return Kernel{Name: name, Fn: packed}
}

// DispatchTable maps residues to generated kernel variants; Figure 3's
// experiment sweeps its width.
type DispatchTable struct {
	// Width is the number of generated kernels.
	Width int
	// variants[r] handles residue r.
	variants [kernels.TileFactor]func(a, b, out *tensor.Tensor)
}

// BuildDispatchTable generates width symbolic kernels covering the
// TileFactor residues:
//
//	width=8: one fully specialized kernel per residue (epilogue unrolled)
//	width=4,2: each kernel covers TileFactor/width residues; the epilogue
//	           keeps per-row guards for the uncertain remainder
//	width=1: a single kernel with guards throughout (naive symbolic codegen)
func BuildDispatchTable(width int) *DispatchTable {
	t := &DispatchTable{Width: width}
	switch width {
	case kernels.TileFactor:
		for r := 0; r < kernels.TileFactor; r++ {
			t.variants[r] = kernels.MatMulSymbolicFull(r)
		}
	case 1:
		for r := 0; r < kernels.TileFactor; r++ {
			t.variants[r] = kernels.MatMulSymbolicNaive
		}
	default:
		span := kernels.TileFactor / width
		for c := 0; c < width; c++ {
			fn := kernels.MatMulSymbolicPartial(c*span, (c+1)*span-1)
			for r := c * span; r < (c+1)*span; r++ {
				t.variants[r] = fn
			}
		}
	}
	return t
}

// Invoke dispatches on the runtime residue of the symbolic dimension.
func (t *DispatchTable) Invoke(a, b, out *tensor.Tensor) {
	r := a.Shape()[0] % kernels.TileFactor
	t.variants[r](a, b, out)
}

// attrsSuffix renders attrs deterministically into a kernel name so kernels
// with different static parameters get distinct identities.
func attrsSuffix(attrs ir.Attrs) string {
	if len(attrs) == 0 {
		return ""
	}
	parts := make([]string, 0, len(attrs))
	for _, k := range attrs.Keys() {
		if strings.HasPrefix(k, "__") {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%v", k, attrs[k]))
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}
