package codegen

import (
	"math/rand"
	"strings"
	"testing"

	"nimble/internal/ir"
	"nimble/internal/kernels"
	"nimble/internal/tensor"
	"nimble/internal/vm"
)

func TestOptionsNormalize(t *testing.T) {
	o, err := Options{}.Normalize()
	if err != nil || o.Dispatch != kernels.TileFactor {
		t.Errorf("default dispatch = %d, %v", o.Dispatch, err)
	}
	for _, k := range []int{1, 2, 4, 8} {
		if _, err := (Options{Dispatch: k}).Normalize(); err != nil {
			t.Errorf("dispatch %d rejected: %v", k, err)
		}
	}
	if _, err := (Options{Dispatch: 3}).Normalize(); err == nil {
		t.Error("dispatch 3 accepted")
	}
}

func TestGenericKernelCopiesIntoPlannedBuffer(t *testing.T) {
	op := ir.MustGetOp("add")
	k, err := ForOp(op, nil, ir.TT(tensor.Float32, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "add" {
		t.Errorf("name = %q", k.Name)
	}
	a := tensor.FromF32([]float32{1, 2}, 2)
	b := tensor.FromF32([]float32{3, 4}, 2)
	out := tensor.New(tensor.Float32, 2)
	res, err := k.Fn([]*tensor.Tensor{a, b}, out)
	if err != nil {
		t.Fatal(err)
	}
	if res != out {
		t.Error("result not placed in planned buffer")
	}
	if !out.Equal(tensor.FromF32([]float32{4, 6}, 2)) {
		t.Errorf("add = %v", out.F32())
	}
	// nil out: kernel allocates.
	res, err = k.Fn([]*tensor.Tensor{a, b}, nil)
	if err != nil || res == nil {
		t.Fatalf("nil-out path: %v", err)
	}
}

// TestPackedKernelZeroAllocWithPlannedBuffer pins the tentpole property at
// the dispatch-convention level: a generated kernel handed a planned
// destination of the right shape performs zero heap allocations — no result
// tensor, no copy. This is what turns §4.3's compile-time memory planning
// into a runtime win.
func TestPackedKernelZeroAllocWithPlannedBuffer(t *testing.T) {
	mk := func(name string) vm.PackedFunc {
		k, err := ForOp(ir.MustGetOp(name), nil, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return k.Fn
	}
	a := tensor.New(tensor.Float32, 13, 24)
	b := tensor.New(tensor.Float32, 13, 24)
	w := tensor.New(tensor.Float32, 24, 16)
	a.Fill(0.5)
	b.Fill(0.25)
	w.Fill(0.1)
	cases := []struct {
		name string
		args []*tensor.Tensor
		out  *tensor.Tensor
	}{
		{"add", []*tensor.Tensor{a, b}, tensor.New(tensor.Float32, 13, 24)},
		{"sigmoid", []*tensor.Tensor{a}, tensor.New(tensor.Float32, 13, 24)},
		{"dense", []*tensor.Tensor{a, w}, tensor.New(tensor.Float32, 13, 16)},
	}
	for _, c := range cases {
		fn := mk(c.name)
		if n := testing.AllocsPerRun(100, func() {
			if _, err := fn(c.args, c.out); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("packed %s: %v allocs/op with planned buffer, want 0", c.name, n)
		}
	}
}

func TestGenericKernelUpperBoundReturnsPrecise(t *testing.T) {
	op := ir.MustGetOp("nms")
	k, err := ForOp(op, ir.Attrs{"iou_threshold": 0.5}, ir.TT(tensor.Float32, ir.DimAny, 5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	boxes := tensor.FromF32([]float32{
		0.9, 0, 0, 10, 10,
		0.8, 1, 1, 11, 11,
	}, 2, 5)
	// Planned upper-bound buffer is 2 rows; precise output is 1 row.
	out := tensor.New(tensor.Float32, 2, 5)
	res, err := k.Fn([]*tensor.Tensor{boxes}, out)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Shape().Equal(tensor.Shape{1, 5}) {
		t.Errorf("precise shape = %v", res.Shape())
	}
}

func TestKernelNamesEncodeAttrs(t *testing.T) {
	op := ir.MustGetOp("sum")
	k1, _ := ForOp(op, ir.Attrs{"axis": 0}, ir.TT(tensor.Float32, 2), Options{})
	k2, _ := ForOp(op, ir.Attrs{"axis": 1}, ir.TT(tensor.Float32, 2), Options{})
	if k1.Name == k2.Name {
		t.Errorf("distinct attrs share kernel name %q", k1.Name)
	}
}

func TestSymbolicDenseKernelSelected(t *testing.T) {
	op := ir.MustGetOp("dense")
	k, err := ForOp(op, nil, ir.TT(tensor.Float32, ir.DimAny, 16), Options{Dispatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(k.Name, "dense_sym_dispatch4") {
		t.Errorf("name = %q", k.Name)
	}
	// Static dense stays generic.
	ks, err := ForOp(op, nil, ir.TT(tensor.Float32, 3, 16), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(ks.Name, "sym") {
		t.Errorf("static dense got symbolic kernel %q", ks.Name)
	}
}

func TestDispatchTableCorrectAcrossWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	kDim, n := 12, 10
	for _, width := range []int{8, 4, 2, 1} {
		table := BuildDispatchTable(width)
		if table.Width != width {
			t.Errorf("width = %d", table.Width)
		}
		for m := 1; m <= 2*kernels.TileFactor+3; m++ {
			a := tensor.Random(rng, 1, m, kDim)
			b := tensor.Random(rng, 1, kDim, n)
			want := kernels.MatMulRef(a, b)
			out := tensor.New(tensor.Float32, m, n)
			table.Invoke(a, b, out)
			if !out.AllClose(want, 1e-4, 1e-5) {
				t.Errorf("width=%d m=%d: dispatch result wrong", width, m)
			}
		}
	}
}

func TestSymbolicDenseViaPackedFunc(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	op := ir.MustGetOp("dense")
	for _, disp := range []int{8, 1} {
		k, err := ForOp(op, nil, ir.TT(tensor.Float32, ir.DimAny, 8), Options{Dispatch: disp})
		if err != nil {
			t.Fatal(err)
		}
		a := tensor.Random(rng, 1, 13, 8)
		b := tensor.Random(rng, 1, 8, 6)
		out := tensor.New(tensor.Float32, 13, 6)
		res, err := k.Fn([]*tensor.Tensor{a, b}, out)
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllClose(kernels.MatMulRef(a, b), 1e-4, 1e-5) {
			t.Errorf("dispatch=%d symbolic dense wrong", disp)
		}
	}
}

func TestSymbolicDenseLibraryPath(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	op := ir.MustGetOp("dense")
	k, err := ForOp(op, nil, ir.TT(tensor.Float32, ir.DimAny, 8),
		Options{Dispatch: 8, LibraryThreshold: 4, LibraryWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(k.Name, "lib4") {
		t.Errorf("library threshold not in name: %q", k.Name)
	}
	a := tensor.Random(rng, 1, 32, 8) // above threshold: library path
	b := tensor.Random(rng, 1, 8, 6)
	out := tensor.New(tensor.Float32, 32, 6)
	res, err := k.Fn([]*tensor.Tensor{a, b}, out)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllClose(kernels.MatMulRef(a, b), 1e-4, 1e-5) {
		t.Error("library path wrong")
	}
}

func TestShapeFuncKernelDataIndependent(t *testing.T) {
	op := ir.MustGetOp("concat")
	k, err := ForShapeFunc(op, ir.Attrs{"axis": 0})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(k.Name, "shape:concat") {
		t.Errorf("name = %q", k.Name)
	}
	// Inputs are shape tensors.
	s1 := tensor.ShapeTensor(tensor.Shape{3, 2})
	s2 := tensor.ShapeTensor(tensor.Shape{1, 2})
	res, err := k.Fn([]*tensor.Tensor{s1, s2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	shape, err := res.ToShape()
	if err != nil || !shape.Equal(tensor.Shape{4, 2}) {
		t.Errorf("concat shape func = %v, %v", shape, err)
	}
}

func TestShapeFuncKernelDataDependent(t *testing.T) {
	op := ir.MustGetOp("arange")
	k, err := ForShapeFunc(op, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Inputs are the operator's values themselves.
	res, err := k.Fn([]*tensor.Tensor{tensor.Scalar(0), tensor.Scalar(6), tensor.Scalar(2)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	shape, err := res.ToShape()
	if err != nil || !shape.Equal(tensor.Shape{3}) {
		t.Errorf("arange shape func = %v, %v", shape, err)
	}
}

func TestShapeFuncKernelMissing(t *testing.T) {
	op := &ir.Op{Name: "noshape"}
	if _, err := ForShapeFunc(op, nil); err == nil {
		t.Error("missing shape function accepted")
	}
}

func TestMatMulWithConfigCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := tensor.Random(rng, 1, 9, 7)
	b := tensor.Random(rng, 1, 7, 11)
	want := kernels.MatMulRef(a, b)
	for _, cfg := range DefaultSearchSpace() {
		out := tensor.New(tensor.Float32, 9, 11)
		MatMulWithConfig(a, b, out, cfg)
		if !out.AllClose(want, 1e-4, 1e-5) {
			t.Errorf("config %v wrong", cfg)
		}
	}
	// Degenerate configs fall back safely.
	out := tensor.New(tensor.Float32, 9, 11)
	MatMulWithConfig(a, b, out, TileConfig{})
	if !out.AllClose(want, 1e-4, 1e-5) {
		t.Error("zero config wrong")
	}
}

func TestTuneSymbolicDense(t *testing.T) {
	// Tiny problem so the test stays fast; assert the strategy's structure
	// rather than exact timings.
	space := []TileConfig{{1, 16}, {8, 64}, {4, 32}}
	res := TuneSymbolicDense(16, 16, space, TunerOptions{
		K: 2, StaticDim: 32, MaxShape: 64, Repeats: 1, Seed: 1,
	})
	if len(res.TopK) != 2 {
		t.Errorf("TopK = %v", res.TopK)
	}
	if res.StaticShapeUsed != 32 {
		t.Errorf("static dim = %d", res.StaticShapeUsed)
	}
	// Shapes evaluated: 2,4,...,64 (powers of two, per §4.5).
	if len(res.ShapesEvaluated) != 6 || res.ShapesEvaluated[0] != 2 || res.ShapesEvaluated[5] != 64 {
		t.Errorf("shapes = %v", res.ShapesEvaluated)
	}
	// Measurement count: one static round over the space, plus topK x shapes
	// — far fewer than tuning every shape.
	wantMeasure := len(space) + 2*len(res.ShapesEvaluated)
	if res.MeasuredConfigs != wantMeasure {
		t.Errorf("measurements = %d, want %d", res.MeasuredConfigs, wantMeasure)
	}
	if naive := NaiveTuningCost(len(space), 256); naive <= res.MeasuredConfigs {
		t.Errorf("symbolic tuning (%d) not cheaper than naive (%d)", res.MeasuredConfigs, naive)
	}
	// Best must be one of the top-k.
	found := false
	for _, c := range res.TopK {
		if c == res.Best {
			found = true
		}
	}
	if !found {
		t.Errorf("best %v not in topK %v", res.Best, res.TopK)
	}
	if TileFactorOfBest(res) != res.Best.RowTile {
		t.Error("TileFactorOfBest broken")
	}
}
