package codegen

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"nimble/internal/kernels"
	"nimble/internal/tensor"
)

// TileConfig is one point in the dense-kernel schedule space: the row tile
// (register blocking) and the column block (cache blocking). It is the
// reproduction's analogue of a template-based schedule configuration.
type TileConfig struct {
	RowTile  int
	ColBlock int
}

func (c TileConfig) String() string { return fmt.Sprintf("rt%d/cb%d", c.RowTile, c.ColBlock) }

// DefaultSearchSpace enumerates the schedule template's configuration grid.
func DefaultSearchSpace() []TileConfig {
	var out []TileConfig
	for _, rt := range []int{1, 2, 4, 8} {
		for _, cb := range []int{16, 32, 64, 128, 256} {
			out = append(out, TileConfig{RowTile: rt, ColBlock: cb})
		}
	}
	return out
}

// MatMulWithConfig runs a dense kernel under an arbitrary schedule config;
// the tuner measures these to rank configurations.
func MatMulWithConfig(a, b, out *tensor.Tensor, cfg TileConfig) {
	m, k, n := a.Shape()[0], a.Shape()[1], b.Shape()[1]
	av, bv, ov := a.F32(), b.F32(), out.F32()
	rt := cfg.RowTile
	if rt <= 0 {
		rt = 1
	}
	cb := cfg.ColBlock
	if cb <= 0 {
		cb = n
	}
	for j0 := 0; j0 < n; j0 += cb {
		j1 := j0 + cb
		if j1 > n {
			j1 = n
		}
		for i0 := 0; i0 < m; i0 += rt {
			rows := rt
			if i0+rows > m {
				rows = m - i0
			}
			for i := i0; i < i0+rows; i++ {
				row := av[i*k : i*k+k]
				for j := j0; j < j1; j++ {
					var acc float32
					for p := 0; p < k; p++ {
						acc += row[p] * bv[p*n+j]
					}
					ov[i*n+j] = acc
				}
			}
		}
	}
}

// TuneResult reports the outcome of symbolic tuning.
type TuneResult struct {
	// Best is the configuration selected by cross-shape evaluation.
	Best TileConfig
	// TopK are the configurations that survived the static-shape round,
	// best first.
	TopK []TileConfig
	// StaticShapeUsed is the large static stand-in for the symbolic dim.
	StaticShapeUsed int
	// ShapesEvaluated are the cross-evaluation shapes (powers of two).
	ShapesEvaluated []int
	// MeasuredConfigs counts total (config, shape) measurements, showing the
	// tractability win over tuning every possible shape.
	MeasuredConfigs int
}

// TunerOptions bounds the tuning process.
type TunerOptions struct {
	// K is the number of top configurations carried into cross evaluation;
	// the paper found k=100 covers most best configs — our grid is smaller,
	// so the default is 5.
	K int
	// StaticDim replaces the symbolic dimension during the first round
	// ("replace the symbolic dimensions by a large enough value, e.g. 64").
	StaticDim int
	// MaxShape bounds the power-of-two cross-evaluation shapes (default 256,
	// per §4.5).
	MaxShape int
	// Repeats per measurement (median taken).
	Repeats int
	// Seed for input data.
	Seed int64
}

func (o TunerOptions) withDefaults() TunerOptions {
	if o.K == 0 {
		o.K = 5
	}
	if o.StaticDim == 0 {
		o.StaticDim = 64
	}
	if o.MaxShape == 0 {
		o.MaxShape = 256
	}
	if o.Repeats == 0 {
		o.Repeats = 3
	}
	return o
}

// TuneSymbolicDense implements the paper's symbolic tuning strategy (§4.5)
// for a dense operator [sym, k] x [k, n]:
//
//  1. tune on one large static shape,
//  2. keep the top-k configurations,
//  3. cross-evaluate them on power-of-two shapes up to MaxShape and pick the
//     configuration with the best average.
//
// The observation it encodes: "a good configuration for one shape usually
// performs well on other shapes."
func TuneSymbolicDense(k, n int, space []TileConfig, opts TunerOptions) TuneResult {
	opts = opts.withDefaults()
	if len(space) == 0 {
		space = DefaultSearchSpace()
	}
	rng := rand.New(rand.NewSource(opts.Seed + 11))
	res := TuneResult{StaticShapeUsed: opts.StaticDim}

	// Round 1: static-shape tuning.
	type scored struct {
		cfg TileConfig
		t   time.Duration
	}
	staticScores := make([]scored, 0, len(space))
	for _, cfg := range space {
		t := measureConfig(rng, opts.StaticDim, k, n, cfg, opts.Repeats)
		staticScores = append(staticScores, scored{cfg, t})
		res.MeasuredConfigs++
	}
	sort.Slice(staticScores, func(i, j int) bool { return staticScores[i].t < staticScores[j].t })
	topK := opts.K
	if topK > len(staticScores) {
		topK = len(staticScores)
	}
	for i := 0; i < topK; i++ {
		res.TopK = append(res.TopK, staticScores[i].cfg)
	}

	// Round 2: cross-shape evaluation on powers of two.
	for m := 2; m <= opts.MaxShape; m *= 2 {
		res.ShapesEvaluated = append(res.ShapesEvaluated, m)
	}
	best := res.TopK[0]
	bestAvg := time.Duration(1<<62 - 1)
	for _, cfg := range res.TopK {
		var total time.Duration
		for _, m := range res.ShapesEvaluated {
			total += measureConfig(rng, m, k, n, cfg, opts.Repeats)
			res.MeasuredConfigs++
		}
		avg := total / time.Duration(len(res.ShapesEvaluated))
		if avg < bestAvg {
			bestAvg = avg
			best = cfg
		}
	}
	res.Best = best
	return res
}

func measureConfig(rng *rand.Rand, m, k, n int, cfg TileConfig, repeats int) time.Duration {
	a := tensor.Random(rng, 1, m, k)
	b := tensor.Random(rng, 1, k, n)
	out := tensor.New(tensor.Float32, m, n)
	times := make([]time.Duration, repeats)
	for i := range times {
		start := time.Now()
		MatMulWithConfig(a, b, out, cfg)
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[repeats/2]
}

// NaiveTuningCost estimates the measurement count of tuning every shape
// independently, the intractable baseline the symbolic strategy avoids:
// |space| measurements for each possible shape.
func NaiveTuningCost(space, shapes int) int { return space * shapes }

// TileFactorOfBest reports the residue-dispatch tile factor implied by a
// tuning result; the dispatch table width then derives from it (the paper's
// tuner "chooses to tile the symbolic dimension ... by a factor of 8").
func TileFactorOfBest(r TuneResult) int {
	if r.Best.RowTile > 0 {
		return r.Best.RowTile
	}
	return kernels.TileFactor
}
