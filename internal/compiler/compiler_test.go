package compiler

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"nimble/internal/ir"
	"nimble/internal/kernels"
	"nimble/internal/tensor"
	"nimble/internal/vm"
)

const anyd = ir.DimAny

func mustCompile(t *testing.T, mod *ir.Module, opts Options) (*vm.VM, *Result) {
	t.Helper()
	machine, res, err := CompileToVM(mod, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return machine, res
}

func singleFuncModule(fn *ir.Function) *ir.Module {
	m := ir.NewModule()
	m.AddFunc("main", fn)
	return m
}

func TestCompileStaticDenseChain(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x := ir.NewVar("x", ir.TT(tensor.Float32, 4, 8))
	w := ir.NewVar("w", ir.TT(tensor.Float32, 8, 6))
	bias := ir.NewVar("b", ir.TT(tensor.Float32, 6))
	b := ir.NewBuilder()
	d := b.Op("dense", x, w)
	ba := b.Op("bias_add", d, bias)
	out := b.Op("relu", ba)
	mod := singleFuncModule(ir.NewFunc([]*ir.Var{x, w, bias}, b.Finish(out), nil))

	machine, res := mustCompile(t, mod, Options{})
	if res.Stats.Fusion.Groups != 1 {
		t.Errorf("fusion stats = %+v", res.Stats.Fusion)
	}
	xs := tensor.Random(rng, 1, 4, 8)
	ws := tensor.Random(rng, 1, 8, 6)
	bs := tensor.Random(rng, 1, 6)
	got, err := machine.InvokeTensors("main", xs, ws, bs)
	if err != nil {
		t.Fatal(err)
	}
	want := kernels.Relu(kernels.Add(kernels.MatMul(xs, ws), bs))
	if !got.AllClose(want, 1e-4, 1e-5) {
		t.Error("compiled result differs from reference")
	}
}

func TestCompileDynamicConcatAcrossShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := ir.NewVar("x", ir.TT(tensor.Float32, anyd, 3))
	y := ir.NewVar("y", ir.TT(tensor.Float32, 1, 3))
	mod := singleFuncModule(ir.NewFunc([]*ir.Var{x, y},
		ir.CallOpAttrs("concat", ir.Attrs{"axis": 0}, x, y), nil))
	machine, _ := mustCompile(t, mod, Options{})
	// The same executable serves every runtime extent of the Any dimension.
	for _, rows := range []int{1, 5, 17} {
		xs := tensor.Random(rng, 1, rows, 3)
		ys := tensor.Random(rng, 1, 1, 3)
		got, err := machine.InvokeTensors("main", xs, ys)
		if err != nil {
			t.Fatalf("rows=%d: %v", rows, err)
		}
		want := kernels.Concat([]*tensor.Tensor{xs, ys}, 0)
		if !got.Equal(want) {
			t.Errorf("rows=%d: concat mismatch", rows)
		}
	}
}

func TestCompileSymbolicDenseUsesDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := ir.NewVar("x", ir.TT(tensor.Float32, anyd, 8))
	w := ir.NewVar("w", ir.TT(tensor.Float32, 8, 6))
	mod := singleFuncModule(ir.NewFunc([]*ir.Var{x, w}, ir.CallOp("dense", x, w), nil))
	machine, res := mustCompile(t, mod, Options{DisableFusion: true})
	foundSym := false
	for _, n := range res.Exe.KernelNames {
		if strings.Contains(n, "dense_sym_dispatch8") {
			foundSym = true
		}
	}
	if !foundSym {
		t.Errorf("symbolic dispatch kernel missing: %v", res.Exe.KernelNames)
	}
	for _, m := range []int{1, 8, 13, 64} {
		xs := tensor.Random(rng, 1, m, 8)
		ws := tensor.Random(rng, 1, 8, 6)
		got, err := machine.InvokeTensors("main", xs, ws)
		if err != nil {
			t.Fatal(err)
		}
		if !got.AllClose(kernels.MatMulRef(xs, ws), 1e-4, 1e-5) {
			t.Errorf("m=%d mismatch", m)
		}
	}
}

func TestCompileIf(t *testing.T) {
	x := ir.NewVar("x", ir.TT(tensor.Float32, 2))
	c := ir.NewVar("c", ir.BoolType())
	body := &ir.If{Cond: c, Then: ir.CallOp("relu", x), Else: ir.CallOp("negative", x)}
	mod := singleFuncModule(ir.NewFunc([]*ir.Var{x, c}, body, nil))
	machine, _ := mustCompile(t, mod, Options{})
	xs := tensor.FromF32([]float32{-1, 2}, 2)
	got, err := machine.InvokeTensors("main", xs, tensor.ScalarBool(true))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tensor.FromF32([]float32{0, 2}, 2)) {
		t.Errorf("then branch = %v", got.F32())
	}
	got, err = machine.InvokeTensors("main", xs, tensor.ScalarBool(false))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tensor.FromF32([]float32{1, -2}, 2)) {
		t.Errorf("else branch = %v", got.F32())
	}
}

func TestCompileRecursionGrowingTensor(t *testing.T) {
	// The paper's decoder motif: a loop that grows a tensor each iteration.
	// grow(acc: [Any, 2], n: scalar) = n == 0 ? acc : grow(concat(acc, acc0), n-1)
	f32 := tensor.Float32
	acc := ir.NewVar("acc", ir.TT(f32, anyd, 2))
	n := ir.NewVar("n", ir.ScalarType(tensor.Int64))
	step := ir.NewVar("step", ir.TT(f32, 1, 2))
	grow := &ir.GlobalVar{Name: "grow"}
	b := ir.NewBuilder()
	bigger := b.OpAttrs("concat", ir.Attrs{"axis": 0}, acc, step)
	nm1 := b.OpAttrs("cast", ir.Attrs{"dtype": "int64"},
		b.Op("subtract",
			b.OpAttrs("cast", ir.Attrs{"dtype": "float32"}, n),
			ir.ConstScalar(1)))
	rec := b.Bind("rec", ir.NewCall(grow, []ir.Expr{bigger, nm1, step}, nil))
	loop := b.Finish(rec)
	cond := ir.CallOp("equal",
		ir.CallOpAttrs("cast", ir.Attrs{"dtype": "float32"}, n),
		ir.ConstScalar(0))
	body := &ir.If{Cond: cond, Then: acc, Else: loop}
	mod := ir.NewModule()
	mod.AddFunc("grow", ir.NewFunc([]*ir.Var{acc, n, step}, body, ir.TT(f32, anyd, 2)))

	acc0 := ir.NewVar("a0", ir.TT(f32, 1, 2))
	n0 := ir.NewVar("n0", ir.ScalarType(tensor.Int64))
	mod.AddFunc("main", ir.NewFunc([]*ir.Var{acc0, n0},
		ir.NewCall(&ir.GlobalVar{Name: "grow"}, []ir.Expr{acc0, n0, acc0}, nil), nil))

	machine, _ := mustCompile(t, mod, Options{})
	a0 := tensor.FromF32([]float32{1, 2}, 1, 2)
	got, err := machine.InvokeTensors("main", a0, tensor.ScalarI64(5))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Shape().Equal(tensor.Shape{6, 2}) {
		t.Errorf("grown shape = %v, want (6, 2)", got.Shape())
	}
	if got.F32()[10] != 1 || got.F32()[11] != 2 {
		t.Errorf("grown content wrong: %v", got.F32())
	}
}

func TestCompileMatchOverTree(t *testing.T) {
	// sum over a Tree ADT — the Tree-LSTM control skeleton.
	f32 := tensor.Float32
	leafT := ir.TT(f32, 1, 2)
	leaf := ir.NewConstructor("Leaf", leafT)
	node := ir.NewConstructor("Node")
	td := ir.NewTypeDef("Tree", leaf, node)
	node.Fields = []ir.Type{td.Type(), td.Type()}

	mod := ir.NewModule()
	mod.AddTypeDef(td)
	tree := ir.NewVar("tree", td.Type())
	l := ir.NewVar("l", nil)
	r := ir.NewVar("r", nil)
	v := ir.NewVar("v", nil)
	sum := &ir.GlobalVar{Name: "sum"}
	body := &ir.Match{Data: tree, Clauses: []*ir.Clause{
		{Pattern: ir.CtorPat(leaf, ir.VarPat(v)), Body: v},
		{Pattern: ir.CtorPat(node, ir.VarPat(l), ir.VarPat(r)),
			Body: ir.CallOp("add",
				ir.NewCall(sum, []ir.Expr{l}, nil),
				ir.NewCall(sum, []ir.Expr{r}, nil))},
	}}
	mod.AddFunc("sum", ir.NewFunc([]*ir.Var{tree}, body, leafT))
	tv := ir.NewVar("t", td.Type())
	mod.AddFunc("main", ir.NewFunc([]*ir.Var{tv},
		ir.NewCall(&ir.GlobalVar{Name: "sum"}, []ir.Expr{tv}, nil), nil))

	machine, _ := mustCompile(t, mod, Options{})
	mkLeaf := func(a, b float32) vm.Object {
		return &vm.ADT{Tag: leaf.Tag, Fields: []vm.Object{
			vm.NewTensorObj(tensor.FromF32([]float32{a, b}, 1, 2)),
		}}
	}
	treeObj := &vm.ADT{Tag: node.Tag, Fields: []vm.Object{
		mkLeaf(1, 2),
		&vm.ADT{Tag: node.Tag, Fields: []vm.Object{mkLeaf(3, 4), mkLeaf(5, 6)}},
	}}
	out, err := machine.Invoke("main", treeObj)
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*vm.TensorObj).T
	if !got.Equal(tensor.FromF32([]float32{9, 12}, 1, 2)) {
		t.Errorf("tree sum = %v", got.F32())
	}
}

func TestCompileDataDependentArange(t *testing.T) {
	s := ir.NewVar("stop", ir.ScalarType(tensor.Float32))
	b := ir.NewBuilder()
	out := b.Op("arange", ir.ConstScalar(0), s, ir.ConstScalar(1))
	mod := singleFuncModule(ir.NewFunc([]*ir.Var{s}, b.Finish(out), nil))
	machine, _ := mustCompile(t, mod, Options{})
	got, err := machine.InvokeTensors("main", tensor.Scalar(4))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tensor.FromF32([]float32{0, 1, 2, 3}, 4)) {
		t.Errorf("arange = %v", got.F32())
	}
	// Same executable, different data, different output shape.
	got, err = machine.InvokeTensors("main", tensor.Scalar(2))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumElements() != 2 {
		t.Errorf("second arange len = %d", got.NumElements())
	}
}

func TestCompileUpperBoundNMS(t *testing.T) {
	boxes := ir.NewVar("boxes", ir.TT(tensor.Float32, anyd, 5))
	mod := singleFuncModule(ir.NewFunc([]*ir.Var{boxes},
		ir.CallOpAttrs("nms", ir.Attrs{"iou_threshold": 0.5}, boxes), nil))
	machine, _ := mustCompile(t, mod, Options{})
	in := tensor.FromF32([]float32{
		0.9, 0, 0, 10, 10,
		0.8, 1, 1, 11, 11,
		0.7, 50, 50, 60, 60,
	}, 3, 5)
	got, err := machine.InvokeTensors("main", in)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Shape().Equal(tensor.Shape{2, 5}) {
		t.Errorf("nms precise shape = %v", got.Shape())
	}
}

func TestCompileClosureValue(t *testing.T) {
	f32 := tensor.Float32
	x := ir.NewVar("x", ir.TT(f32, 2))
	y := ir.NewVar("y", ir.TT(f32, 2))
	clos := ir.NewFunc([]*ir.Var{y}, ir.CallOp("add", x, y), nil)
	f := ir.NewVar("f", nil)
	body := ir.NewLet(f, clos, ir.NewCall(f, []ir.Expr{x}, nil))
	mod := singleFuncModule(ir.NewFunc([]*ir.Var{x}, body, nil))
	machine, _ := mustCompile(t, mod, Options{})
	got, err := machine.InvokeTensors("main", tensor.FromF32([]float32{1, 2}, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tensor.FromF32([]float32{2, 4}, 2)) {
		t.Errorf("closure = %v", got.F32())
	}
}

func TestAblationsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := ir.NewVar("x", ir.TT(tensor.Float32, anyd, 8))
	w := ir.NewVar("w", ir.TT(tensor.Float32, 8, 8))
	build := func() *ir.Module {
		x2 := ir.NewVar("x", ir.TT(tensor.Float32, anyd, 8))
		w2 := ir.NewVar("w", ir.TT(tensor.Float32, 8, 8))
		b := ir.NewBuilder()
		d := b.Op("dense", x2, w2)
		s := b.Op("sigmoid", d)
		out := b.OpAttrs("concat", ir.Attrs{"axis": 0}, s, x2)
		return singleFuncModule(ir.NewFunc([]*ir.Var{x2, w2}, b.Finish(out), nil))
	}
	_ = x
	_ = w
	xs := tensor.Random(rng, 1, 5, 8)
	ws := tensor.Random(rng, 1, 8, 8)

	var ref *tensor.Tensor
	for i, opts := range []Options{
		{},
		{DisableFusion: true},
		{DisableCoalescing: true},
		{DisableMemoryPlanning: true},
		{DisableFusion: true, DisableMemoryPlanning: true},
	} {
		machine, _ := mustCompile(t, build(), opts)
		got, err := machine.InvokeTensors("main", xs, ws)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		if ref == nil {
			ref = got
			continue
		}
		if !got.AllClose(ref, 1e-4, 1e-5) {
			t.Errorf("config %d disagrees with default pipeline", i)
		}
	}
}

func TestSerializedExecutableRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	x := ir.NewVar("x", ir.TT(tensor.Float32, anyd, 4))
	w := ir.Const(tensor.Random(rng, 1, 4, 4))
	b := ir.NewBuilder()
	d := b.Op("dense", x, w)
	out := b.Op("tanh", d)
	mod := singleFuncModule(ir.NewFunc([]*ir.Var{x}, b.Finish(out), nil))
	_, res := mustCompile(t, mod, Options{})

	var buf bytes.Buffer
	if _, err := res.Exe.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := vm.ReadExecutable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.LinkKernels(res.Registry); err != nil {
		t.Fatal(err)
	}
	xs := tensor.Random(rng, 1, 3, 4)
	got, err := vm.New(loaded).InvokeTensors("main", xs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := vm.New(res.Exe).InvokeTensors("main", xs)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Error("deserialized executable disagrees with original")
	}
}

func TestCompileStatsPopulated(t *testing.T) {
	x := ir.NewVar("x", ir.TT(tensor.Float32, 16))
	b := ir.NewBuilder()
	h := b.Op("sigmoid", x)
	h2 := b.Op("tanh", h)
	out := b.Op("relu", h2)
	mod := singleFuncModule(ir.NewFunc([]*ir.Var{x}, b.Finish(out), nil))
	_, res := mustCompile(t, mod, Options{})
	if res.Stats.Instructions == 0 || res.Stats.Kernels == 0 {
		t.Errorf("stats empty: %+v", res.Stats)
	}
	if res.Stats.Alloc.StaticAllocs == 0 {
		t.Errorf("no static allocs recorded: %+v", res.Stats.Alloc)
	}
}

func TestCompileGPUPlacementInsertsNoSpuriousCopies(t *testing.T) {
	x := ir.NewVar("x", ir.TT(tensor.Float32, anyd, 4))
	y := ir.NewVar("y", ir.TT(tensor.Float32, 1, 4))
	mod := singleFuncModule(ir.NewFunc([]*ir.Var{x, y},
		ir.CallOpAttrs("concat", ir.Attrs{"axis": 0}, x, y), nil))
	_, res := mustCompile(t, mod, Options{Target: ir.GPU(0)})
	if res.Stats.Placement.CopiesInserted != 0 {
		t.Errorf("spurious copies: %+v", res.Stats.Placement)
	}
	if res.Stats.Placement.CPUVars == 0 {
		t.Error("shape pipeline not pinned to CPU")
	}
	// The compiled program still runs (host executes "GPU" kernels).
	machine := vm.New(res.Exe)
	got, err := machine.InvokeTensors("main",
		tensor.New(tensor.Float32, 2, 4), tensor.New(tensor.Float32, 1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Shape().Equal(tensor.Shape{3, 4}) {
		t.Errorf("gpu-target result shape = %v", got.Shape())
	}
}
