package compiler

import (
	"fmt"

	"nimble/internal/codegen"
	"nimble/internal/ir"
	"nimble/internal/tensor"
	"nimble/internal/vm"
)

// funcCompiler emits bytecode for one function body over an infinite virtual
// register file (§5.1).
type funcCompiler struct {
	c    *compiler
	out  *compiledFunc
	regs map[*ir.Var]vm.Reg
	next vm.Reg
	// unit lazily holds a register with the integer 0, used as the value of
	// effect-only bindings (memory.kill).
	unit vm.Reg
	has  bool
	// selfIdx is the function's own index for tail-call detection; -1 in
	// lifted lambdas, which never self-recurse by global name.
	selfIdx int
}

func (fc *funcCompiler) fresh() vm.Reg {
	r := fc.next
	fc.next++
	return r
}

func (fc *funcCompiler) emit(in vm.Instruction) int {
	fc.out.code = append(fc.out.code, in)
	return len(fc.out.code) - 1
}

func (fc *funcCompiler) pc() int { return len(fc.out.code) }

func (fc *funcCompiler) unitReg() vm.Reg {
	if !fc.has {
		fc.unit = fc.fresh()
		fc.emit(vm.Instruction{Op: vm.OpLoadConsti, Dst: fc.unit, Imm: 0})
		fc.has = true
	}
	return fc.unit
}

// compile lowers an expression and returns the register holding its value.
func (fc *funcCompiler) compile(e ir.Expr) (vm.Reg, error) {
	switch n := e.(type) {
	case *ir.Var:
		r, ok := fc.regs[n]
		if !ok {
			return 0, fmt.Errorf("unbound variable %%%s at codegen", n.Name)
		}
		return r, nil

	case *ir.Constant:
		idx := fc.c.internConst(n.Value)
		dst := fc.fresh()
		fc.emit(vm.Instruction{Op: vm.OpLoadConst, Dst: dst, Imm: int64(idx)})
		return dst, nil

	case *ir.GlobalVar:
		// A first-class reference to a global becomes a capture-free
		// closure.
		idx, ok := fc.c.fnIndex[n.Name]
		if !ok {
			return 0, fmt.Errorf("unknown global @%s", n.Name)
		}
		dst := fc.fresh()
		fc.emit(vm.Instruction{Op: vm.OpAllocClosure, Dst: dst, Imm: int64(idx)})
		return dst, nil

	case *ir.Let:
		r, err := fc.compileBinding(n.Bound, n.Value)
		if err != nil {
			return 0, err
		}
		fc.regs[n.Bound] = r
		return fc.compile(n.Body)

	case *ir.Call:
		return fc.compileCall(n)

	case *ir.Tuple:
		args := make([]vm.Reg, len(n.Fields))
		for i, f := range n.Fields {
			r, err := fc.compile(f)
			if err != nil {
				return 0, err
			}
			args[i] = r
		}
		dst := fc.fresh()
		fc.emit(vm.Instruction{Op: vm.OpAllocADT, Dst: dst, Imm: int64(vm.TupleTag), Args: args})
		return dst, nil

	case *ir.TupleGet:
		src, err := fc.compile(n.Tuple)
		if err != nil {
			return 0, err
		}
		dst := fc.fresh()
		fc.emit(vm.Instruction{Op: vm.OpGetField, Dst: dst, A: src, Imm: int64(n.Index)})
		return dst, nil

	case *ir.If:
		return fc.compileIf(n)

	case *ir.Match:
		return fc.compileMatch(n)

	case *ir.Function:
		return fc.compileClosure(n)

	default:
		return 0, fmt.Errorf("cannot compile %s in value position", ir.ExprKind(e))
	}
}

// compileBinding lowers a let-bound value, special-casing effect-only
// dialect operations.
func (fc *funcCompiler) compileBinding(v *ir.Var, value ir.Expr) (vm.Reg, error) {
	if call, op := opCall(value); op != nil && op.Name == ir.OpKill {
		// kill is metadata for the static planner; at runtime, frame-exit
		// release (plus static coalescing) already reclaims the buffer.
		_ = call
		return fc.unitReg(), nil
	}
	return fc.compile(value)
}

func opCall(e ir.Expr) (*ir.Call, *ir.Op) {
	c, ok := e.(*ir.Call)
	if !ok {
		return nil, nil
	}
	if ref, ok := c.Callee.(*ir.OpRef); ok {
		return c, ref.Op
	}
	return c, nil
}

func (fc *funcCompiler) compileCall(n *ir.Call) (vm.Reg, error) {
	switch callee := n.Callee.(type) {
	case *ir.OpRef:
		return fc.compileOpCall(n, callee.Op)

	case *ir.GlobalVar:
		idx, ok := fc.c.fnIndex[callee.Name]
		if !ok {
			return 0, fmt.Errorf("unknown global @%s", callee.Name)
		}
		args, err := fc.compileArgs(n.Args)
		if err != nil {
			return 0, err
		}
		dst := fc.fresh()
		fc.emit(vm.Instruction{Op: vm.OpInvoke, Dst: dst, Imm: int64(idx), Args: args})
		return dst, nil

	case *ir.CtorRef:
		args, err := fc.compileArgs(n.Args)
		if err != nil {
			return 0, err
		}
		dst := fc.fresh()
		fc.emit(vm.Instruction{Op: vm.OpAllocADT, Dst: dst, Imm: int64(callee.Ctor.Tag), Args: args})
		return dst, nil

	default:
		// Closure call: compile the callee to a closure register.
		clo, err := fc.compile(n.Callee)
		if err != nil {
			return 0, err
		}
		args, err := fc.compileArgs(n.Args)
		if err != nil {
			return 0, err
		}
		dst := fc.fresh()
		fc.emit(vm.Instruction{Op: vm.OpInvokeClosure, Dst: dst, A: clo, Args: args})
		return dst, nil
	}
}

func (fc *funcCompiler) compileArgs(args []ir.Expr) ([]vm.Reg, error) {
	out := make([]vm.Reg, len(args))
	for i, a := range args {
		r, err := fc.compile(a)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// internalAttrKeys are attrs attached by passes, stripped before kernel
// generation so kernel identities depend only on operator semantics.
var internalAttrKeys = map[string]bool{
	"num_outputs": true, "device": true, "device_id": true, "mode": true,
	"src_device": true, "src_id": true, "dst_device": true, "dst_id": true,
}

func userAttrs(attrs ir.Attrs) ir.Attrs {
	out := ir.Attrs{}
	for k, v := range attrs {
		if !internalAttrKeys[k] {
			out[k] = v
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func (fc *funcCompiler) compileOpCall(n *ir.Call, op *ir.Op) (vm.Reg, error) {
	switch op.Name {
	case ir.OpAllocStorage:
		dst := fc.fresh()
		in := vm.Instruction{
			Op: vm.OpAllocStorage, Dst: dst, A: -1,
			Device:   uint8(n.Attrs.Int("device", int(fc.c.opts.Target.Type))),
			DeviceID: n.Attrs.Int("device_id", 0),
		}
		if len(n.Args) == 1 {
			// Dynamic size from a shape register.
			shapeReg, err := fc.compile(n.Args[0])
			if err != nil {
				return 0, err
			}
			dt, err := tensor.ParseDType(n.Attrs.String("dtype", "float32"))
			if err != nil {
				return 0, err
			}
			in.A = shapeReg
			in.DType = uint8(dt)
		} else {
			in.Imm = int64(n.Attrs.Int("size", 0))
		}
		fc.emit(in)
		return dst, nil

	case ir.OpAllocTensor:
		storage, err := fc.compile(n.Args[0])
		if err != nil {
			return 0, err
		}
		dt, err := tensor.ParseDType(n.Attrs.String("dtype", "float32"))
		if err != nil {
			return 0, err
		}
		dst := fc.fresh()
		fc.emit(vm.Instruction{
			Op: vm.OpAllocTensor, Dst: dst, A: storage,
			Imm: int64(n.Attrs.Int("offset", 0)), Shape: n.Attrs.Ints("shape"), DType: uint8(dt),
		})
		return dst, nil

	case ir.OpAllocTensorReg:
		storage, err := fc.compile(n.Args[0])
		if err != nil {
			return 0, err
		}
		shape, err := fc.compile(n.Args[1])
		if err != nil {
			return 0, err
		}
		dt, err := tensor.ParseDType(n.Attrs.String("dtype", "float32"))
		if err != nil {
			return 0, err
		}
		dst := fc.fresh()
		fc.emit(vm.Instruction{Op: vm.OpAllocTensorReg, Dst: dst, A: storage, B: shape, DType: uint8(dt)})
		return dst, nil

	case ir.OpInvokeMut:
		target, ok := n.Args[0].(*ir.OpRef)
		if !ok {
			return 0, fmt.Errorf("invoke_mut requires an operator reference, got %s", ir.ExprKind(n.Args[0]))
		}
		outType, _ := n.CheckedType().(*ir.TensorType)
		kern, err := codegen.ForOp(target.Op, userAttrs(n.Attrs), outType, fc.c.opts.Codegen)
		if err != nil {
			return 0, err
		}
		kIdx := fc.c.internKernel(kern)
		regs, err := fc.compileArgs(n.Args[1:])
		if err != nil {
			return 0, err
		}
		dst := fc.fresh()
		fc.emit(vm.Instruction{Op: vm.OpInvokePacked, Dst: dst, Imm: int64(kIdx), B: 1, Args: regs})
		return dst, nil

	case ir.OpInvokeShapeFunc:
		target, ok := n.Args[0].(*ir.OpRef)
		if !ok {
			return 0, fmt.Errorf("shape_func requires an operator reference")
		}
		kern, err := codegen.ForShapeFunc(target.Op, userAttrs(n.Attrs))
		if err != nil {
			return 0, err
		}
		kIdx := fc.c.internKernel(kern)
		regs, err := fc.compileArgs(n.Args[1:])
		if err != nil {
			return 0, err
		}
		dst := fc.fresh()
		fc.emit(vm.Instruction{Op: vm.OpInvokePacked, Dst: dst, Imm: int64(kIdx), B: 0, Args: regs})
		return dst, nil

	case ir.OpShapeOf:
		src, err := fc.compile(n.Args[0])
		if err != nil {
			return 0, err
		}
		dst := fc.fresh()
		fc.emit(vm.Instruction{Op: vm.OpShapeOf, Dst: dst, A: src})
		return dst, nil

	case ir.OpDeviceCopy:
		src, err := fc.compile(n.Args[0])
		if err != nil {
			return 0, err
		}
		dst := fc.fresh()
		fc.emit(vm.Instruction{
			Op: vm.OpDeviceCopy, Dst: dst, A: src,
			Device:   uint8(n.Attrs.Int("dst_device", int(ir.DevCPU))),
			DeviceID: n.Attrs.Int("dst_id", 0),
			Imm:      int64(n.Attrs.Int("src_device", 0)*1000 + n.Attrs.Int("src_id", 0)),
		})
		return dst, nil

	case ir.OpReshapeTensor:
		src, err := fc.compile(n.Args[0])
		if err != nil {
			return 0, err
		}
		shape, err := fc.compile(n.Args[1])
		if err != nil {
			return 0, err
		}
		dst := fc.fresh()
		fc.emit(vm.Instruction{Op: vm.OpReshapeTensor, Dst: dst, A: src, B: shape})
		return dst, nil

	case ir.OpKill:
		return fc.unitReg(), nil

	default:
		// An unmanifested primitive call (memory planning disabled): the
		// kernel allocates its own output.
		if op.Eval == nil {
			return 0, fmt.Errorf("operator %s is not executable", op.Name)
		}
		outType, _ := n.CheckedType().(*ir.TensorType)
		kern, err := codegen.ForOp(op, userAttrs(n.Attrs), outType, fc.c.opts.Codegen)
		if err != nil {
			return 0, err
		}
		kIdx := fc.c.internKernel(kern)
		regs, err := fc.compileArgs(n.Args)
		if err != nil {
			return 0, err
		}
		dst := fc.fresh()
		fc.emit(vm.Instruction{Op: vm.OpInvokePacked, Dst: dst, Imm: int64(kIdx), B: 0, Args: regs})
		return dst, nil
	}
}

func (fc *funcCompiler) compileIf(n *ir.If) (vm.Reg, error) {
	cond, err := fc.compile(n.Cond)
	if err != nil {
		return 0, err
	}
	trueReg := fc.fresh()
	fc.emit(vm.Instruction{Op: vm.OpLoadConsti, Dst: trueReg, Imm: 1})
	ifIdx := fc.emit(vm.Instruction{Op: vm.OpIf, A: cond, B: trueReg, Off1: 1})
	join := fc.fresh()

	thenReg, err := fc.compile(n.Then)
	if err != nil {
		return 0, err
	}
	fc.emit(vm.Instruction{Op: vm.OpMove, Dst: join, A: thenReg})
	gotoIdx := fc.emit(vm.Instruction{Op: vm.OpGoto})

	elseStart := fc.pc()
	fc.out.code[ifIdx].Off2 = elseStart - ifIdx
	elseReg, err := fc.compile(n.Else)
	if err != nil {
		return 0, err
	}
	fc.emit(vm.Instruction{Op: vm.OpMove, Dst: join, A: elseReg})
	fc.out.code[gotoIdx].Off1 = fc.pc() - gotoIdx
	return join, nil
}

func (fc *funcCompiler) compileMatch(n *ir.Match) (vm.Reg, error) {
	data, err := fc.compile(n.Data)
	if err != nil {
		return 0, err
	}
	tag := fc.fresh()
	fc.emit(vm.Instruction{Op: vm.OpGetTag, Dst: tag, A: data})
	join := fc.fresh()

	var exits []int
	for _, clause := range n.Clauses {
		var failIdx = -1
		switch clause.Pattern.Kind {
		case ir.PatCtor:
			want := fc.fresh()
			fc.emit(vm.Instruction{Op: vm.OpLoadConsti, Dst: want, Imm: int64(clause.Pattern.Ctor.Tag)})
			failIdx = fc.emit(vm.Instruction{Op: vm.OpIf, A: tag, B: want, Off1: 1})
			for i, sub := range clause.Pattern.Sub {
				switch sub.Kind {
				case ir.PatVar:
					fieldReg := fc.fresh()
					fc.emit(vm.Instruction{Op: vm.OpGetField, Dst: fieldReg, A: data, Imm: int64(i)})
					fc.regs[sub.Var] = fieldReg
				case ir.PatWildcard:
					// bind nothing
				default:
					return 0, fmt.Errorf("nested constructor patterns are not supported by codegen; flatten the match")
				}
			}
		case ir.PatVar:
			fc.regs[clause.Pattern.Var] = data
		case ir.PatWildcard:
			// always matches
		}
		body, err := fc.compile(clause.Body)
		if err != nil {
			return 0, err
		}
		fc.emit(vm.Instruction{Op: vm.OpMove, Dst: join, A: body})
		exits = append(exits, fc.emit(vm.Instruction{Op: vm.OpGoto}))
		if failIdx >= 0 {
			fc.out.code[failIdx].Off2 = fc.pc() - failIdx
		} else {
			// Irrefutable pattern: later clauses are unreachable.
			break
		}
	}
	// Fall-through: no clause matched.
	fc.emit(vm.Instruction{Op: vm.OpFatal})
	end := fc.pc()
	for _, g := range exits {
		fc.out.code[g].Off1 = end - g
	}
	return join, nil
}

// compileTail lowers an expression in tail position. Self-recursive tail
// calls become register moves plus a backward Goto instead of an OpInvoke, so
// compiled loops (the autoregressive decoders, the recurrent models) run in
// one frame with O(1) stack instead of one frame per iteration. The bool
// result reports "done": every path through the expression ended in a back
// edge, so the caller must not emit a Ret for it.
func (fc *funcCompiler) compileTail(e ir.Expr) (vm.Reg, bool, error) {
	switch n := e.(type) {
	case *ir.Let:
		// The ANF shape of a tail self-call is Let(v = @self(args), Var v);
		// recognize it before compiling the call as a real invoke.
		if call, ok := n.Value.(*ir.Call); ok && fc.isSelfCall(call) {
			if body, ok := n.Body.(*ir.Var); ok && body == n.Bound {
				return fc.emitSelfTail(call.Args)
			}
		}
		r, err := fc.compileBinding(n.Bound, n.Value)
		if err != nil {
			return 0, false, err
		}
		fc.regs[n.Bound] = r
		return fc.compileTail(n.Body)

	case *ir.Call:
		if fc.isSelfCall(n) {
			return fc.emitSelfTail(n.Args)
		}

	case *ir.If:
		return fc.compileIfTail(n)

	case *ir.Match:
		return fc.compileMatchTail(n)
	}
	r, err := fc.compile(e)
	return r, false, err
}

func (fc *funcCompiler) isSelfCall(n *ir.Call) bool {
	if fc.selfIdx < 0 {
		return false
	}
	gv, ok := n.Callee.(*ir.GlobalVar)
	if !ok {
		return false
	}
	idx, ok := fc.c.fnIndex[gv.Name]
	return ok && idx == fc.selfIdx && len(n.Args) == fc.out.numParams
}

// emitSelfTail lowers @self(args) in tail position: evaluate the arguments,
// move them into the parameter registers (staging through temporaries when a
// source still lives in a parameter register a later move would clobber),
// and jump back to instruction 0. B=1 marks the Goto as a loop back edge so
// the VM recycles the frame's loop-local storages before re-entering.
func (fc *funcCompiler) emitSelfTail(args []ir.Expr) (vm.Reg, bool, error) {
	regs, err := fc.compileArgs(args)
	if err != nil {
		return 0, false, err
	}
	np := fc.out.numParams
	staged := make([]vm.Reg, len(regs))
	copy(staged, regs)
	for i, r := range regs {
		if r < np && r != i {
			t := fc.fresh()
			fc.emit(vm.Instruction{Op: vm.OpMove, Dst: t, A: r})
			staged[i] = t
		}
	}
	for i, r := range staged {
		if r != i {
			fc.emit(vm.Instruction{Op: vm.OpMove, Dst: i, A: r})
		}
	}
	idx := fc.emit(vm.Instruction{Op: vm.OpGoto, B: 1})
	fc.out.code[idx].Off1 = -idx
	return 0, true, nil
}

// compileIfTail is compileIf with both branches in tail position: a branch
// that ends in a back edge skips the join move and exit jump entirely.
func (fc *funcCompiler) compileIfTail(n *ir.If) (vm.Reg, bool, error) {
	cond, err := fc.compile(n.Cond)
	if err != nil {
		return 0, false, err
	}
	trueReg := fc.fresh()
	fc.emit(vm.Instruction{Op: vm.OpLoadConsti, Dst: trueReg, Imm: 1})
	ifIdx := fc.emit(vm.Instruction{Op: vm.OpIf, A: cond, B: trueReg, Off1: 1})
	join := fc.fresh()

	thenReg, thenDone, err := fc.compileTail(n.Then)
	if err != nil {
		return 0, false, err
	}
	gotoIdx := -1
	if !thenDone {
		fc.emit(vm.Instruction{Op: vm.OpMove, Dst: join, A: thenReg})
		gotoIdx = fc.emit(vm.Instruction{Op: vm.OpGoto})
	}

	elseStart := fc.pc()
	fc.out.code[ifIdx].Off2 = elseStart - ifIdx
	elseReg, elseDone, err := fc.compileTail(n.Else)
	if err != nil {
		return 0, false, err
	}
	if !elseDone {
		fc.emit(vm.Instruction{Op: vm.OpMove, Dst: join, A: elseReg})
	}
	if gotoIdx >= 0 {
		fc.out.code[gotoIdx].Off1 = fc.pc() - gotoIdx
	}
	return join, thenDone && elseDone, nil
}

// compileMatchTail is compileMatch with clause bodies in tail position.
func (fc *funcCompiler) compileMatchTail(n *ir.Match) (vm.Reg, bool, error) {
	data, err := fc.compile(n.Data)
	if err != nil {
		return 0, false, err
	}
	tag := fc.fresh()
	fc.emit(vm.Instruction{Op: vm.OpGetTag, Dst: tag, A: data})
	join := fc.fresh()

	var exits []int
	allDone := true
	for _, clause := range n.Clauses {
		var failIdx = -1
		switch clause.Pattern.Kind {
		case ir.PatCtor:
			want := fc.fresh()
			fc.emit(vm.Instruction{Op: vm.OpLoadConsti, Dst: want, Imm: int64(clause.Pattern.Ctor.Tag)})
			failIdx = fc.emit(vm.Instruction{Op: vm.OpIf, A: tag, B: want, Off1: 1})
			for i, sub := range clause.Pattern.Sub {
				switch sub.Kind {
				case ir.PatVar:
					fieldReg := fc.fresh()
					fc.emit(vm.Instruction{Op: vm.OpGetField, Dst: fieldReg, A: data, Imm: int64(i)})
					fc.regs[sub.Var] = fieldReg
				case ir.PatWildcard:
					// bind nothing
				default:
					return 0, false, fmt.Errorf("nested constructor patterns are not supported by codegen; flatten the match")
				}
			}
		case ir.PatVar:
			fc.regs[clause.Pattern.Var] = data
		case ir.PatWildcard:
			// always matches
		}
		body, done, err := fc.compileTail(clause.Body)
		if err != nil {
			return 0, false, err
		}
		if !done {
			allDone = false
			fc.emit(vm.Instruction{Op: vm.OpMove, Dst: join, A: body})
			exits = append(exits, fc.emit(vm.Instruction{Op: vm.OpGoto}))
		}
		if failIdx >= 0 {
			fc.out.code[failIdx].Off2 = fc.pc() - failIdx
		} else {
			// Irrefutable pattern: later clauses are unreachable.
			break
		}
	}
	// Fall-through: no clause matched.
	fc.emit(vm.Instruction{Op: vm.OpFatal})
	end := fc.pc()
	for _, g := range exits {
		fc.out.code[g].Off1 = end - g
	}
	return join, allDone, nil
}

func (fc *funcCompiler) compileClosure(n *ir.Function) (vm.Reg, error) {
	free := ir.FreeVars(n)
	idx, err := fc.c.liftFunction(n, free)
	if err != nil {
		return 0, err
	}
	captured := make([]vm.Reg, len(free))
	for i, v := range free {
		r, ok := fc.regs[v]
		if !ok {
			return 0, fmt.Errorf("closure captures unbound %%%s", v.Name)
		}
		captured[i] = r
	}
	dst := fc.fresh()
	fc.emit(vm.Instruction{Op: vm.OpAllocClosure, Dst: dst, Imm: int64(idx), Args: captured})
	return dst, nil
}
