package conformance

import (
	"fmt"

	"nimble/internal/compiler"
	"nimble/internal/ir"
	"nimble/internal/tensor"
)

// Tolerances for VM-vs-eager comparison. The compiled pipeline reorders
// float work (fusion epilogues, destination passing, pooled buffers), so
// bit-equality is not the contract; 1e-5 relative agreement is.
const (
	RTol = 1e-5
	ATol = 1e-5
)

// checkable is any generated program the differential harness can drive:
// straight-line Programs and loop-carried LoopPrograms.
type checkable interface {
	Describe() string
	BuildModule() *ir.Module
	Inputs() []*tensor.Tensor
	EagerEval() (*tensor.Tensor, error)
}

// Check compiles the program through the full pipeline, runs it on the VM,
// runs the eager reference, and returns an error describing the first
// divergence. A nil return means the two executions agree within
// RTol/ATol.
func Check(p *Program) error { return check(p) }

// CheckLoop is Check for loop-carried in-place programs.
func CheckLoop(p *LoopProgram) error { return check(p) }

func check(p checkable) error {
	want, err := p.EagerEval()
	if err != nil {
		return fmt.Errorf("eager reference failed: %w\n%s", err, p.Describe())
	}
	// Verify: true runs the static verifier after every pass on every
	// generated program, so the fuzzer doubles as the verifier's
	// false-positive hunt — any invariant "violation" on a program whose
	// compiled output also matches eager execution is a verifier bug.
	machine, _, err := compiler.CompileToVM(p.BuildModule(), compiler.Options{Verify: true})
	if err != nil {
		return fmt.Errorf("compile failed: %w\n%s", err, p.Describe())
	}
	got, err := machine.InvokeTensors("main", p.Inputs()...)
	if err != nil {
		return fmt.Errorf("vm execution failed: %w\n%s", err, p.Describe())
	}
	if err := diff(got, want); err != nil {
		return fmt.Errorf("%w\n%s", err, p.Describe())
	}
	// Second invocation on the same VM: the storage pool and recycled
	// frames are now warm, so this exercises buffer-reuse paths the first
	// run cannot.
	got2, err := machine.InvokeTensors("main", p.Inputs()...)
	if err != nil {
		return fmt.Errorf("second vm execution failed: %w\n%s", err, p.Describe())
	}
	if err := diff(got2, want); err != nil {
		return fmt.Errorf("rerun with warm storage pool: %w\n%s", err, p.Describe())
	}
	return nil
}

func diff(got, want *tensor.Tensor) error {
	if !got.Shape().Equal(want.Shape()) {
		return fmt.Errorf("vm shape %v != eager shape %v", got.Shape(), want.Shape())
	}
	if !got.AllClose(want, RTol, ATol) {
		g, w := got.AsF64(), want.AsF64()
		worst, at := 0.0, 0
		for i := range g {
			d := g[i] - w[i]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst, at = d, i
			}
		}
		return fmt.Errorf("vm output diverges from eager reference: |Δ|=%g at flat index %d (vm=%g eager=%g)",
			worst, at, g[at], w[at])
	}
	return nil
}
