// Package conformance is a differential testing harness for the Nimble
// pipeline: it generates random small IR programs — elementwise chains,
// reductions, matmuls, shape ops, and control flow, optionally typed with
// Any leading dimensions so symbolic kernels and shape functions engage —
// and asserts that the fully compiled VM execution (fusion, memory
// planning, storage coalescing, destination-passing kernels) matches an
// eager per-op reference evaluation built on the operator registry's Eval
// functions, which the IR layer documents as the semantic ground truth.
// Divergence beyond float tolerance is a compiler or VM bug by definition.
package conformance

import (
	"fmt"
	"math/rand"

	"nimble/internal/ir"
	"nimble/internal/tensor"
)

// nodeKind discriminates generated program nodes.
type nodeKind int

const (
	kindInput nodeKind = iota
	kindConst
	kindUnary
	kindBinary
	kindReduce
	kindDense
	kindTranspose
	kindConcat
	kindSlice
	kindSoftmax
	kindIf
)

// node is one step of a generated program in SSA form: operands are indices
// of earlier nodes. The description is immutable, so it can build a fresh
// IR module for the compiler (passes mutate modules in place) and still
// drive the eager reference independently.
type node struct {
	kind nodeKind
	op   string // unary/binary/reduce operator name
	a, b int    // operand node indices (b unused for unary forms)
	// reduce / slice / concat parameters.
	axis     int
	keep     bool
	lo, hi   int
	weight   *tensor.Tensor // dense weight / const payload
	thresh   float32        // if: branch condition threshold
	shape    []int          // result shape, tracked during generation
	anyIndex int            // input ordinal for kindInput
}

// Program is a generated computation plus concrete inputs.
type Program struct {
	nodes  []node
	inputs []*tensor.Tensor
	out    int
	// anyLead types input params with an Any leading dimension, forcing
	// symbolic kernel dispatch and runtime shape functions.
	anyLead bool
}

// Describe renders a short human-readable trace for failure messages.
func (p *Program) Describe() string {
	s := fmt.Sprintf("program (anyLead=%v, %d inputs):\n", p.anyLead, len(p.inputs))
	for i, n := range p.nodes {
		s += fmt.Sprintf("  n%d: %s\n", i, n.describe())
	}
	return s + fmt.Sprintf("  out: n%d\n", p.out)
}

func (n node) describe() string {
	switch n.kind {
	case kindInput:
		return fmt.Sprintf("input#%d %v", n.anyIndex, n.shape)
	case kindConst:
		return fmt.Sprintf("const %v", n.shape)
	case kindUnary:
		return fmt.Sprintf("%s(n%d) %v", n.op, n.a, n.shape)
	case kindBinary:
		return fmt.Sprintf("%s(n%d, n%d) %v", n.op, n.a, n.b, n.shape)
	case kindReduce:
		return fmt.Sprintf("%s(n%d, axis=%d, keep=%v) %v", n.op, n.a, n.axis, n.keep, n.shape)
	case kindDense:
		return fmt.Sprintf("dense(n%d, w%v) %v", n.a, n.weight.Shape(), n.shape)
	case kindTranspose:
		return fmt.Sprintf("transpose(n%d) %v", n.a, n.shape)
	case kindConcat:
		return fmt.Sprintf("concat(n%d, n%d, axis=%d) %v", n.a, n.b, n.axis, n.shape)
	case kindSlice:
		return fmt.Sprintf("slice(n%d, axis=%d, %d:%d) %v", n.a, n.axis, n.lo, n.hi, n.shape)
	case kindSoftmax:
		return fmt.Sprintf("softmax(n%d) %v", n.a, n.shape)
	case kindIf:
		return fmt.Sprintf("if sum(n%d) > %v then n%d else n%d %v", n.a, n.thresh, n.a, n.b, n.shape)
	}
	return "?"
}

var unaryOps = []string{"sigmoid", "tanh", "relu", "negative"}
var binaryOps = []string{"add", "subtract", "multiply", "maximum", "minimum"}
var reduceOps = []string{"sum", "mean", "max"}

// Generate draws a random program: 1-2 rank-2 inputs followed by 3-10
// operations chosen among elementwise, reduce, matmul, transpose, concat,
// slice, softmax, and If nodes, each picking shape-compatible operands.
func Generate(rng *rand.Rand) *Program {
	p := &Program{anyLead: rng.Intn(2) == 0}
	nInputs := 1 + rng.Intn(2)
	rows := 1 + rng.Intn(5)
	for i := 0; i < nInputs; i++ {
		cols := 1 + rng.Intn(7)
		p.nodes = append(p.nodes, node{kind: kindInput, anyIndex: i, shape: []int{rows, cols}})
		p.inputs = append(p.inputs, tensor.Random(rng, 1, rows, cols))
	}
	steps := 3 + rng.Intn(8)
	for i := 0; i < steps; i++ {
		p.addRandomNode(rng)
	}
	// Return the deepest tensor-valued node to keep the whole chain live
	// through DCE.
	p.out = len(p.nodes) - 1
	return p
}

// pick returns a random existing node index, optionally restricted by a
// shape predicate; ok=false when nothing qualifies.
func (p *Program) pick(rng *rand.Rand, pred func(n node) bool) (int, bool) {
	var cands []int
	for i, n := range p.nodes {
		if pred == nil || pred(n) {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return 0, false
	}
	return cands[rng.Intn(len(cands))], true
}

func sameShape(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (p *Program) addRandomNode(rng *rand.Rand) {
	for attempts := 0; attempts < 8; attempts++ {
		var n node
		ok := false
		switch rng.Intn(9) {
		case 0: // unary elementwise
			a, _ := p.pick(rng, nil)
			n = node{kind: kindUnary, op: unaryOps[rng.Intn(len(unaryOps))], a: a,
				shape: p.nodes[a].shape}
			ok = true
		case 1: // binary elementwise on same-shape operands
			a, _ := p.pick(rng, nil)
			bIdx, found := p.pick(rng, func(m node) bool { return sameShape(m.shape, p.nodes[a].shape) })
			if found {
				n = node{kind: kindBinary, op: binaryOps[rng.Intn(len(binaryOps))], a: a, b: bIdx,
					shape: p.nodes[a].shape}
				ok = true
			}
		case 2: // binary with a broadcast scalar constant
			a, _ := p.pick(rng, nil)
			c := tensor.Random(rng, 1, 1)
			p.nodes = append(p.nodes, node{kind: kindConst, weight: c, shape: []int{1}})
			n = node{kind: kindBinary, op: binaryOps[rng.Intn(len(binaryOps))],
				a: a, b: len(p.nodes) - 1, shape: p.nodes[a].shape}
			ok = true
		case 3: // reduce
			a, found := p.pick(rng, func(m node) bool { return len(m.shape) >= 1 })
			if found {
				src := p.nodes[a].shape
				axis := rng.Intn(len(src))
				keep := rng.Intn(2) == 0
				var out []int
				for i, d := range src {
					if i == axis {
						if keep {
							out = append(out, 1)
						}
						continue
					}
					out = append(out, d)
				}
				n = node{kind: kindReduce, op: reduceOps[rng.Intn(len(reduceOps))],
					a: a, axis: axis, keep: keep, shape: out}
				ok = true
			}
		case 4: // dense against a fresh constant weight
			a, found := p.pick(rng, func(m node) bool { return len(m.shape) == 2 })
			if found {
				k := p.nodes[a].shape[1]
				m := 1 + rng.Intn(6)
				w := tensor.Random(rng, 0.5, k, m)
				n = node{kind: kindDense, a: a, weight: w,
					shape: []int{p.nodes[a].shape[0], m}}
				ok = true
			}
		case 5: // transpose rank-2
			a, found := p.pick(rng, func(m node) bool { return len(m.shape) == 2 })
			if found {
				src := p.nodes[a].shape
				n = node{kind: kindTranspose, a: a, shape: []int{src[1], src[0]}}
				ok = true
			}
		case 6: // concat two compatible rank-2 nodes
			a, found := p.pick(rng, func(m node) bool { return len(m.shape) == 2 })
			if found {
				axis := rng.Intn(2)
				other := 1 - axis
				bIdx, found2 := p.pick(rng, func(m node) bool {
					return len(m.shape) == 2 && m.shape[other] == p.nodes[a].shape[other]
				})
				if found2 {
					out := append([]int{}, p.nodes[a].shape...)
					out[axis] += p.nodes[bIdx].shape[axis]
					n = node{kind: kindConcat, a: a, b: bIdx, axis: axis, shape: out}
					ok = true
				}
			}
		case 7: // slice along the trailing axis
			a, found := p.pick(rng, func(m node) bool {
				return len(m.shape) == 2 && m.shape[1] >= 2
			})
			if found {
				w := p.nodes[a].shape[1]
				lo := rng.Intn(w - 1)
				hi := lo + 1 + rng.Intn(w-lo-1)
				n = node{kind: kindSlice, a: a, axis: 1, lo: lo, hi: hi,
					shape: []int{p.nodes[a].shape[0], hi - lo}}
				ok = true
			}
		case 8: // softmax or If
			if rng.Intn(2) == 0 {
				a, found := p.pick(rng, func(m node) bool { return len(m.shape) == 2 })
				if found {
					n = node{kind: kindSoftmax, a: a, shape: p.nodes[a].shape}
					ok = true
				}
			} else {
				a, _ := p.pick(rng, nil)
				bIdx, found := p.pick(rng, func(m node) bool { return sameShape(m.shape, p.nodes[a].shape) })
				if found {
					n = node{kind: kindIf, a: a, b: bIdx,
						thresh: float32(rng.Float64()*2 - 1), shape: p.nodes[a].shape}
					ok = true
				}
			}
		}
		if ok {
			p.nodes = append(p.nodes, n)
			return
		}
	}
	// All attempts failed (tiny program, restrictive shapes): append a safe
	// unary over the last node.
	last := len(p.nodes) - 1
	p.nodes = append(p.nodes, node{kind: kindUnary, op: "tanh", a: last, shape: p.nodes[last].shape})
}

// BuildModule lowers the description to a fresh IR module with entry
// "main". Each call returns a new module: the compiler's passes mutate
// modules in place, so a module must never be reused across compilations.
func (p *Program) BuildModule() *ir.Module {
	mod := ir.NewModule()
	b := ir.NewBuilder()
	var params []*ir.Var
	exprs := make([]ir.Expr, len(p.nodes))
	for i, n := range p.nodes {
		switch n.kind {
		case kindInput:
			dims := append([]int{}, n.shape...)
			if p.anyLead {
				dims[0] = ir.DimAny
			}
			v := ir.NewVar(fmt.Sprintf("in%d", n.anyIndex), ir.TT(tensor.Float32, dims...))
			params = append(params, v)
			exprs[i] = v
		case kindConst:
			exprs[i] = ir.Const(n.weight)
		case kindUnary:
			exprs[i] = b.Op(n.op, exprs[n.a])
		case kindBinary:
			exprs[i] = b.Op(n.op, exprs[n.a], exprs[n.b])
		case kindReduce:
			exprs[i] = b.OpAttrs(n.op, ir.Attrs{"axis": n.axis, "keepdims": n.keep}, exprs[n.a])
		case kindDense:
			exprs[i] = b.Op("dense", exprs[n.a], ir.Const(n.weight))
		case kindTranspose:
			exprs[i] = b.Op("transpose", exprs[n.a])
		case kindConcat:
			exprs[i] = b.OpAttrs("concat", ir.Attrs{"axis": n.axis}, exprs[n.a], exprs[n.b])
		case kindSlice:
			exprs[i] = b.OpAttrs("strided_slice", ir.Attrs{"axis": n.axis, "begin": n.lo, "end": n.hi}, exprs[n.a])
		case kindSoftmax:
			exprs[i] = b.Op("softmax", exprs[n.a])
		case kindIf:
			cond := scalarize(b, exprs[n.a], len(p.nodes[n.a].shape))
			test := b.Op("greater", cond, ir.ConstScalar(n.thresh))
			exprs[i] = b.Bind("sel", &ir.If{Cond: test, Then: exprs[n.a], Else: exprs[n.b]})
		}
	}
	mod.AddFunc("main", ir.NewFunc(params, b.Finish(exprs[p.out]), nil))
	return mod
}

// scalarize reduces an expression of known rank to a rank-0 scalar by
// summing every axis (always axis 0 of the shrinking result).
func scalarize(b *ir.Builder, e ir.Expr, rank int) ir.Expr {
	for i := 0; i < rank; i++ {
		e = b.OpAttrs("sum", ir.Attrs{"axis": 0, "keepdims": false}, e)
	}
	return e
}

// Inputs returns the program's concrete input tensors.
func (p *Program) Inputs() []*tensor.Tensor { return p.inputs }

// EagerEval runs the reference evaluation: per-op dispatch through the
// operator registry's Eval functions in SSA order, no fusion, no memory
// planning, no destination passing — the define-by-run ground truth.
func (p *Program) EagerEval() (*tensor.Tensor, error) {
	vals := make([]*tensor.Tensor, len(p.nodes))
	evalOp := func(name string, attrs ir.Attrs, args ...*tensor.Tensor) (*tensor.Tensor, error) {
		op := ir.MustGetOp(name)
		return op.Eval(args, attrs)
	}
	for i, n := range p.nodes {
		var err error
		switch n.kind {
		case kindInput:
			vals[i] = p.inputs[n.anyIndex]
		case kindConst:
			vals[i] = n.weight
		case kindUnary:
			vals[i], err = evalOp(n.op, nil, vals[n.a])
		case kindBinary:
			vals[i], err = evalOp(n.op, nil, vals[n.a], vals[n.b])
		case kindReduce:
			vals[i], err = evalOp(n.op, ir.Attrs{"axis": n.axis, "keepdims": n.keep}, vals[n.a])
		case kindDense:
			vals[i], err = evalOp("dense", nil, vals[n.a], n.weight)
		case kindTranspose:
			vals[i], err = evalOp("transpose", nil, vals[n.a])
		case kindConcat:
			vals[i], err = evalOp("concat", ir.Attrs{"axis": n.axis}, vals[n.a], vals[n.b])
		case kindSlice:
			vals[i], err = evalOp("strided_slice", ir.Attrs{"axis": n.axis, "begin": n.lo, "end": n.hi}, vals[n.a])
		case kindSoftmax:
			vals[i], err = evalOp("softmax", nil, vals[n.a])
		case kindIf:
			// Replicate the compiled condition with the same f32 kernels
			// (per-axis sum chain, then greater): a near-threshold value
			// must branch identically on both sides.
			cond := vals[n.a]
			for r := len(p.nodes[n.a].shape); r > 0 && err == nil; r-- {
				cond, err = evalOp("sum", ir.Attrs{"axis": 0, "keepdims": false}, cond)
			}
			if err == nil {
				var gt *tensor.Tensor
				gt, err = evalOp("greater", nil, cond, tensor.Scalar(n.thresh))
				if err == nil {
					if gt.Bools()[0] {
						vals[i] = vals[n.a]
					} else {
						vals[i] = vals[n.b]
					}
				}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("conformance: eager n%d (%s): %w", i, n.describe(), err)
		}
	}
	return vals[p.out], nil
}
