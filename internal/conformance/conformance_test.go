package conformance

import (
	"math/rand"
	"testing"
)

// TestSeedCorpus is the deterministic differential sweep: several hundred
// random programs through the full compile pipeline versus the eager
// reference. Any divergence prints the offending program trace and its
// generator seed for replay.
func TestSeedCorpus(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 60
	}
	for seed := int64(0); seed < int64(n); seed++ {
		p := Generate(rand.New(rand.NewSource(seed)))
		if err := Check(p); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestGeneratorCoversAllNodeKinds guards against the generator silently
// degenerating (e.g. every draw failing its shape predicate and falling
// back to tanh): across a fixed seed range every node kind must appear.
func TestGeneratorCoversAllNodeKinds(t *testing.T) {
	seen := map[nodeKind]int{}
	anyLead := 0
	for seed := int64(0); seed < 400; seed++ {
		p := Generate(rand.New(rand.NewSource(seed)))
		for _, n := range p.nodes {
			seen[n.kind]++
		}
		if p.anyLead {
			anyLead++
		}
	}
	for k := kindInput; k <= kindIf; k++ {
		if seen[k] == 0 {
			t.Errorf("node kind %d never generated", k)
		}
	}
	if anyLead == 0 || anyLead == 400 {
		t.Errorf("anyLead split degenerate: %d/400", anyLead)
	}
}

// TestLoopSeedCorpus sweeps loop-carried in-place programs: tail-call loops
// threading state buffers through cache_append (and reading them back via
// attn_cached) against the eager Go-loop reference.
func TestLoopSeedCorpus(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 40
	}
	for seed := int64(0); seed < int64(n); seed++ {
		p := GenerateLoop(rand.New(rand.NewSource(seed)))
		if err := CheckLoop(p); err != nil {
			t.Errorf("loop seed %d: %v", seed, err)
		}
	}
}

// TestLoopGeneratorCoverage guards the loop generator against degenerating:
// the attn read-back and constant-initialized-cache variants must both
// appear across a fixed seed range.
func TestLoopGeneratorCoverage(t *testing.T) {
	attn, constInit, twoCaches := 0, 0, 0
	for seed := int64(0); seed < 200; seed++ {
		p := GenerateLoop(rand.New(rand.NewSource(seed)))
		if p.useAttn {
			attn++
		}
		if p.constInit {
			constInit++
		}
		if p.twoCaches {
			twoCaches++
		}
	}
	if attn == 0 || constInit == 0 || twoCaches == 0 {
		t.Errorf("degenerate loop generator: attn=%d constInit=%d twoCaches=%d of 200", attn, constInit, twoCaches)
	}
}

// FuzzVMConformance is the native fuzz entry: bytes drive the generator
// seed, so the fuzzer explores program space while every counterexample
// minimizes to a single replayable seed. Each seed drives both the
// straight-line generator and the loop-carried in-place generator.
func FuzzVMConformance(f *testing.F) {
	for seed := int64(0); seed < 24; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		p := Generate(rand.New(rand.NewSource(seed)))
		if err := Check(p); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		lp := GenerateLoop(rand.New(rand.NewSource(seed)))
		if err := CheckLoop(lp); err != nil {
			t.Fatalf("loop seed %d: %v", seed, err)
		}
	})
}
