package conformance

import (
	"fmt"
	"math/rand"

	"nimble/internal/ir"
	"nimble/internal/kernels"
	"nimble/internal/tensor"
)

// LoopProgram is a randomly generated self-recursive loop threading mutable
// state buffers through in-place cache_append — the compiled shape of
// autoregressive decode. It exercises the paths single-pass programs cannot:
// tail-call optimization, loop-edge storage recycling, in-place invoke_mut
// routing, and reads (attn_cached) over a buffer mutated earlier in the same
// iteration. The eager reference replays the loop in Go over the pure kernel
// forms, so any divergence is a planner/VM aliasing bug by definition.
type LoopProgram struct {
	iters, width int
	// twoCaches adds a second state buffer; useAttn (implies twoCaches)
	// reads both back through attn_cached each iteration.
	twoCaches bool
	useAttn   bool
	// constInit seeds cache 0 from an ir.Constant instead of state_zeros,
	// covering the VM's refusal to mutate non-planner-owned buffers in
	// place (the append must then fall back to pure copy semantics).
	constInit bool
	initCache *tensor.Tensor
	// chains[i] maps the loop-carried row to the row appended to cache i;
	// nextChain maps this iteration's value to the next carried row.
	chains    [][]loopNode
	nextChain []loopNode
	row0      *tensor.Tensor
}

// loopNode is one elementwise step: unary when c is nil, otherwise a binary
// op against a broadcast scalar constant.
type loopNode struct {
	op string
	c  *tensor.Tensor
}

// GenerateLoop draws a random loop program.
func GenerateLoop(rng *rand.Rand) *LoopProgram {
	p := &LoopProgram{iters: 2 + rng.Intn(7), width: 1 + rng.Intn(6)}
	p.twoCaches = rng.Intn(2) == 0
	p.useAttn = p.twoCaches && rng.Intn(2) == 0
	p.constInit = rng.Intn(3) == 0
	if p.constInit {
		p.initCache = tensor.Random(rng, 1, p.iters, p.width)
	}
	chain := func() []loopNode {
		k := 1 + rng.Intn(3)
		out := make([]loopNode, k)
		for i := range out {
			if rng.Intn(2) == 0 {
				out[i] = loopNode{op: unaryOps[rng.Intn(len(unaryOps))]}
			} else {
				out[i] = loopNode{op: binaryOps[rng.Intn(len(binaryOps))], c: tensor.Random(rng, 1, 1)}
			}
		}
		return out
	}
	n := 1
	if p.twoCaches {
		n = 2
	}
	for i := 0; i < n; i++ {
		p.chains = append(p.chains, chain())
	}
	p.nextChain = chain()
	p.row0 = tensor.Random(rng, 1, 1, p.width)
	return p
}

// Describe renders the program for failure messages.
func (p *LoopProgram) Describe() string {
	s := fmt.Sprintf("loop program (iters=%d width=%d twoCaches=%v attn=%v constInit=%v):\n",
		p.iters, p.width, p.twoCaches, p.useAttn, p.constInit)
	desc := func(chain []loopNode) string {
		out := "row"
		for _, ln := range chain {
			if ln.c == nil {
				out = fmt.Sprintf("%s(%s)", ln.op, out)
			} else {
				out = fmt.Sprintf("%s(%s, %g)", ln.op, out, ln.c.F32()[0])
			}
		}
		return out
	}
	for i, c := range p.chains {
		s += fmt.Sprintf("  append[%d]: %s\n", i, desc(c))
	}
	return s + fmt.Sprintf("  next: %s\n", desc(p.nextChain))
}

// BuildModule lowers the loop to an IR module with entry "main". Each call
// builds fresh (passes mutate modules in place).
func (p *LoopProgram) BuildModule() *ir.Module {
	mod := ir.NewModule()
	M, W := p.iters, p.width
	rowT := ir.TT(tensor.Float32, 1, W)
	idxT := ir.TT(tensor.Int64, 1)
	cacheT := ir.TT(tensor.Float32, M, W)

	params := []*ir.Var{ir.NewVar("row", rowT), ir.NewVar("pos", idxT), ir.NewVar("c0", cacheT)}
	if p.twoCaches {
		params = append(params, ir.NewVar("c1", cacheT))
	}
	b := ir.NewBuilder()
	apply := func(chain []loopNode, x ir.Expr) ir.Expr {
		for _, ln := range chain {
			if ln.c == nil {
				x = b.Op(ln.op, x)
			} else {
				x = b.Op(ln.op, x, ir.Const(ln.c))
			}
		}
		return x
	}
	row, pos := ir.Expr(params[0]), params[1]
	npos := b.Op("index_inc", pos)
	newCaches := make([]ir.Expr, len(p.chains))
	for i, chain := range p.chains {
		newCaches[i] = b.Op("cache_append", params[2+i], apply(chain, row), pos)
	}
	next := row
	if p.useAttn {
		next = b.OpAttrs("attn_cached", ir.Attrs{"heads": 1}, row, newCaches[0], newCaches[1], npos)
	}
	next = apply(p.nextChain, next)
	more := b.Op("index_lt", npos, ir.Const(tensor.FromI64([]int64{int64(M)}, 1)))
	recArgs := append([]ir.Expr{next, npos}, newCaches...)
	body := b.Finish(&ir.If{
		Cond: more,
		Then: ir.NewCall(&ir.GlobalVar{Name: "loop"}, recArgs, nil),
		Else: newCaches[0],
	})
	mod.AddFunc("loop", ir.NewFunc(params, body, cacheT))

	start := ir.NewVar("row", rowT)
	eb := ir.NewBuilder()
	stateZeros := func() ir.Expr {
		return eb.OpAttrs("state_zeros", ir.Attrs{"shape": []int{M, W}, "dtype": "float32"})
	}
	var init0 ir.Expr
	if p.constInit {
		init0 = ir.Const(p.initCache)
	} else {
		init0 = stateZeros()
	}
	args := []ir.Expr{start, ir.Const(tensor.FromI64([]int64{0}, 1)), init0}
	if p.twoCaches {
		args = append(args, stateZeros())
	}
	mod.AddFunc("main", ir.NewFunc([]*ir.Var{start},
		eb.Finish(ir.NewCall(&ir.GlobalVar{Name: "loop"}, args, nil)), cacheT))
	return mod
}

// Inputs returns the entry arguments.
func (p *LoopProgram) Inputs() []*tensor.Tensor { return []*tensor.Tensor{p.row0} }

// EagerEval replays the loop in Go over pure kernels: CacheAppend clones,
// operator Evals allocate, nothing is mutated in place.
func (p *LoopProgram) EagerEval() (*tensor.Tensor, error) {
	M, W := p.iters, p.width
	apply := func(chain []loopNode, x *tensor.Tensor) (*tensor.Tensor, error) {
		var err error
		for _, ln := range chain {
			op := ir.MustGetOp(ln.op)
			if ln.c == nil {
				x, err = op.Eval([]*tensor.Tensor{x}, nil)
			} else {
				x, err = op.Eval([]*tensor.Tensor{x, ln.c}, nil)
			}
			if err != nil {
				return nil, err
			}
		}
		return x, nil
	}
	caches := make([]*tensor.Tensor, len(p.chains))
	for i := range caches {
		caches[i] = tensor.New(tensor.Float32, M, W)
	}
	if p.constInit {
		caches[0] = p.initCache.Clone()
	}
	row := p.row0
	for it := 0; it < M; it++ {
		pos := tensor.FromI64([]int64{int64(it)}, 1)
		for i, chain := range p.chains {
			r, err := apply(chain, row)
			if err != nil {
				return nil, fmt.Errorf("conformance: eager loop append[%d] iter %d: %w", i, it, err)
			}
			caches[i], err = kernels.CacheAppend(caches[i], r, pos)
			if err != nil {
				return nil, fmt.Errorf("conformance: eager loop append[%d] iter %d: %w", i, it, err)
			}
		}
		next := row
		if p.useAttn {
			var err error
			length := tensor.FromI64([]int64{int64(it + 1)}, 1)
			next, err = kernels.AttnCached(row, caches[0], caches[1], length, 1)
			if err != nil {
				return nil, fmt.Errorf("conformance: eager loop attn iter %d: %w", it, err)
			}
		}
		var err error
		row, err = apply(p.nextChain, next)
		if err != nil {
			return nil, fmt.Errorf("conformance: eager loop next iter %d: %w", it, err)
		}
	}
	return caches[0], nil
}
