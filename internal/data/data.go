// Package data provides seeded synthetic stand-ins for the paper's
// datasets. The experiments use MRPC only as a source of variable sentence
// lengths and SST only as a source of parse-tree shapes, so the samplers
// reproduce those distributions rather than the text itself (the
// substitution is recorded in DESIGN.md §2).
package data

import (
	"math"
	"math/rand"
)

// MRPCSampler draws sentence lengths following the Microsoft Research
// Paraphrase Corpus profile: mean ≈ 26 tokens with a long tail, clipped to
// [MinLen, MaxLen].
type MRPCSampler struct {
	rng    *rand.Rand
	Mean   float64
	Std    float64
	MinLen int
	MaxLen int
}

// NewMRPC creates the sampler with the corpus-matched defaults and a cap of
// 128 tokens (the sequence length the paper's BERT experiments use).
func NewMRPC(seed int64) *MRPCSampler {
	return &MRPCSampler{
		rng:  rand.New(rand.NewSource(seed)),
		Mean: 26, Std: 11, MinLen: 5, MaxLen: 128,
	}
}

// Length draws one sentence length.
func (s *MRPCSampler) Length() int {
	v := s.rng.NormFloat64()*s.Std + s.Mean
	n := int(math.Round(v))
	if n < s.MinLen {
		n = s.MinLen
	}
	if n > s.MaxLen {
		n = s.MaxLen
	}
	return n
}

// Lengths draws n lengths.
func (s *MRPCSampler) Lengths(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = s.Length()
	}
	return out
}

// SSTSampler draws sentence sizes following the Stanford Sentiment Treebank
// profile (mean ≈ 19 words); a binary parse over n words has 2n-1 nodes.
type SSTSampler struct {
	rng    *rand.Rand
	Mean   float64
	Std    float64
	MinLen int
	MaxLen int
}

// NewSST creates the sampler with treebank-matched defaults.
func NewSST(seed int64) *SSTSampler {
	return &SSTSampler{
		rng:  rand.New(rand.NewSource(seed)),
		Mean: 19, Std: 9, MinLen: 2, MaxLen: 52,
	}
}

// Words draws the number of words (leaves) of one sentence.
func (s *SSTSampler) Words() int {
	v := s.rng.NormFloat64()*s.Std + s.Mean
	n := int(math.Round(v))
	if n < s.MinLen {
		n = s.MinLen
	}
	if n > s.MaxLen {
		n = s.MaxLen
	}
	return n
}

// Sentences draws n sentence sizes.
func (s *SSTSampler) Sentences(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = s.Words()
	}
	return out
}

// Rng exposes the sampler's generator so callers can draw the tree
// topology and token content from the same seeded stream.
func (s *SSTSampler) Rng() *rand.Rand { return s.rng }

// MeanOf computes the average of sampled lengths, used by harness
// sanity checks and per-token normalization.
func MeanOf(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}
