package data

import "testing"

func TestMRPCSamplerBounds(t *testing.T) {
	s := NewMRPC(1)
	lens := s.Lengths(2000)
	for _, n := range lens {
		if n < s.MinLen || n > s.MaxLen {
			t.Fatalf("length %d outside [%d, %d]", n, s.MinLen, s.MaxLen)
		}
	}
	mean := MeanOf(lens)
	if mean < 20 || mean > 32 {
		t.Errorf("MRPC mean = %.1f, want ~26", mean)
	}
}

func TestSSTSamplerBounds(t *testing.T) {
	s := NewSST(1)
	lens := s.Sentences(2000)
	for _, n := range lens {
		if n < s.MinLen || n > s.MaxLen {
			t.Fatalf("words %d outside [%d, %d]", n, s.MinLen, s.MaxLen)
		}
	}
	mean := MeanOf(lens)
	if mean < 14 || mean > 24 {
		t.Errorf("SST mean = %.1f, want ~19", mean)
	}
	if s.Rng() == nil {
		t.Error("Rng accessor broken")
	}
}

func TestSamplersDeterministic(t *testing.T) {
	a := NewMRPC(7).Lengths(50)
	b := NewMRPC(7).Lengths(50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different lengths")
		}
	}
	c := NewMRPC(8).Lengths(50)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestMeanOfEmpty(t *testing.T) {
	if MeanOf(nil) != 0 {
		t.Error("MeanOf(nil) != 0")
	}
}
