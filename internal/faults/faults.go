// Package faults is Nimble's fault-injection toolkit: deterministic,
// seeded wrappers that make kernels panic, stall, or fail allocation on
// demand, plus a request-level cancellation schedule. The chaos harness
// (chaos_test.go in the root package, `make chaos`) wraps a compiled
// executable's kernel table with an Injector and hammers a Service under
// -race, asserting the fault-tolerance invariants: the process survives,
// the session pool conserves its size, every request resolves to a typed
// error or a correct result, and no output ever carries another request's
// data.
//
// Determinism: every fault decision is a pure function of (seed, event
// counter). Concurrency still interleaves *which request* observes the
// N-th kernel call, but the fault schedule itself — how many panics, how
// many stalls, at which event indices — is identical across runs of the
// same seed, which is what makes a chaos failure reproducible enough to
// debug.
package faults

import (
	"fmt"
	"sync/atomic"
	"time"

	"nimble/internal/tensor"
	"nimble/internal/vm"
)

// Config sets per-event fault probabilities in parts per 1024 (an event is
// one kernel dispatch for kernel faults, one request for cancellations).
// Zero means the fault never fires.
type Config struct {
	// Seed drives the deterministic decision sequence.
	Seed uint64
	// PanicPer1024 makes the wrapped kernel panic before running.
	PanicPer1024 int
	// AllocFailPer1024 simulates an allocation failure inside the kernel —
	// the panic an out-of-memory tensor allocation would raise.
	AllocFailPer1024 int
	// SlowPer1024 stalls the kernel for SlowDelay before running — the
	// shape of a page-fault storm or a contended lock, for exercising
	// deadline shedding and per-request timeouts.
	SlowPer1024 int
	// SlowDelay is the stall length (default 2ms).
	SlowDelay time.Duration
	// CancelPer1024 is consulted by CancelRequest for request-level
	// cancellation schedules.
	CancelPer1024 int
}

// Injector makes deterministic fault decisions and counts what it injected.
type Injector struct {
	cfg    Config
	events atomic.Uint64

	panics     atomic.Int64
	allocFails atomic.Int64
	slows      atomic.Int64
	cancels    atomic.Int64
}

// NewInjector builds an injector over the config.
func NewInjector(cfg Config) *Injector {
	if cfg.SlowDelay <= 0 {
		cfg.SlowDelay = 2 * time.Millisecond
	}
	return &Injector{cfg: cfg}
}

// splitmix64 is the standard 64-bit avalanche mix: a distinct,
// well-distributed value per (seed, counter) pair.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll draws the next event's uniform value in [0, 1024).
func (in *Injector) roll() uint64 {
	n := in.events.Add(1)
	return splitmix64(in.cfg.Seed^n) & 1023
}

// KernelPanic is the payload of an injected kernel panic.
const KernelPanic = "faults: injected kernel panic"

// AllocPanic is the payload of an injected allocation failure.
const AllocPanic = "faults: injected allocation failure (simulated OOM)"

// Wrap decorates one kernel with the injector's fault schedule. The
// wrapped kernel is semantically identical when no fault fires.
func (in *Injector) Wrap(name string, fn vm.PackedFunc) vm.PackedFunc {
	return func(args []*tensor.Tensor, out *tensor.Tensor) (*tensor.Tensor, error) {
		r := in.roll()
		bound := uint64(0)
		if p := uint64(in.cfg.PanicPer1024); r < bound+p {
			in.panics.Add(1)
			panic(fmt.Sprintf("%s: kernel %s", KernelPanic, name))
		} else {
			bound += p
		}
		if a := uint64(in.cfg.AllocFailPer1024); r < bound+a {
			in.allocFails.Add(1)
			panic(fmt.Sprintf("%s: kernel %s", AllocPanic, name))
		} else {
			bound += a
		}
		if s := uint64(in.cfg.SlowPer1024); r < bound+s {
			in.slows.Add(1)
			time.Sleep(in.cfg.SlowDelay)
		}
		return fn(args, out)
	}
}

// WrapExecutable rewraps every kernel of an unfrozen executable in place.
// Call it after compiling and before the executable is adopted by a
// session, service, or pool (adoption freezes it).
func (in *Injector) WrapExecutable(exe *vm.Executable) error {
	return exe.WrapKernels(in.Wrap)
}

// CancelRequest decides, deterministically, whether the next request
// should be canceled mid-flight, and after what fraction of delay d.
func (in *Injector) CancelRequest(d time.Duration) (after time.Duration, cancel bool) {
	r := in.roll()
	if r >= uint64(in.cfg.CancelPer1024) {
		return 0, false
	}
	in.cancels.Add(1)
	// Derive the delay fraction from an independent mix of the same event.
	frac := splitmix64(r^in.cfg.Seed^0xabcd) & 1023
	return d * time.Duration(frac) / 1024, true
}

// InjectedStats reports what actually fired.
type InjectedStats struct {
	Events     uint64
	Panics     int64
	AllocFails int64
	Slows      int64
	Cancels    int64
}

// Stats snapshots the injector counters.
func (in *Injector) Stats() InjectedStats {
	return InjectedStats{
		Events:     in.events.Load(),
		Panics:     in.panics.Load(),
		AllocFails: in.allocFails.Load(),
		Slows:      in.slows.Load(),
		Cancels:    in.cancels.Load(),
	}
}
