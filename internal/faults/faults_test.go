package faults

import (
	"strings"
	"testing"
	"time"

	"nimble/internal/tensor"
)

// identity is a trivial kernel for wrapper tests.
func identity(args []*tensor.Tensor, out *tensor.Tensor) (*tensor.Tensor, error) {
	return args[0], nil
}

// schedule replays n events through a fresh injector and records which
// fault (if any) fired at each index.
func schedule(cfg Config, n int) []string {
	in := NewInjector(cfg)
	wrapped := in.Wrap("k", identity)
	x := tensor.New(tensor.Float32, 1)
	out := make([]string, n)
	for i := 0; i < n; i++ {
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					s := rec.(string)
					switch {
					case strings.HasPrefix(s, KernelPanic):
						out[i] = "panic"
					case strings.HasPrefix(s, AllocPanic):
						out[i] = "alloc"
					default:
						out[i] = "???"
					}
				}
			}()
			if _, err := wrapped([]*tensor.Tensor{x}, nil); err != nil {
				out[i] = "err"
			}
		}()
	}
	return out
}

// TestDeterministicSchedule: same seed → identical fault schedule;
// different seed → (almost surely) different.
func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 7, PanicPer1024: 100, AllocFailPer1024: 100}
	a := schedule(cfg, 500)
	b := schedule(cfg, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across identically-seeded runs: %q vs %q", i, a[i], b[i])
		}
	}
	c := schedule(Config{Seed: 8, PanicPer1024: 100, AllocFailPer1024: 100}, 500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestInjectionRates: observed fault frequencies approximate the
// configured per-1024 rates, and the wrapper is transparent when no
// fault fires.
func TestInjectionRates(t *testing.T) {
	const n = 20000
	cfg := Config{Seed: 42, PanicPer1024: 64, AllocFailPer1024: 32}
	events := schedule(cfg, n)
	var panics, allocs int
	for _, e := range events {
		switch e {
		case "panic":
			panics++
		case "alloc":
			allocs++
		case "???", "err":
			t.Fatalf("unexpected event class %q", e)
		}
	}
	// 64/1024 of 20000 ≈ 1250, 32/1024 ≈ 625; allow ±40%.
	if panics < 750 || panics > 1750 {
		t.Errorf("panics = %d, want ≈1250", panics)
	}
	if allocs < 375 || allocs > 875 {
		t.Errorf("allocFails = %d, want ≈625", allocs)
	}
}

// TestZeroConfigTransparent: an injector with no rates never fires and the
// wrapped kernel behaves identically.
func TestZeroConfigTransparent(t *testing.T) {
	in := NewInjector(Config{Seed: 1})
	wrapped := in.Wrap("k", identity)
	x := tensor.New(tensor.Float32, 4)
	for i := 0; i < 1000; i++ {
		got, err := wrapped([]*tensor.Tensor{x}, nil)
		if err != nil || got != x {
			t.Fatalf("zero-config wrapper not transparent: got=%v err=%v", got, err)
		}
	}
	st := in.Stats()
	if st.Panics+st.AllocFails+st.Slows+st.Cancels != 0 {
		t.Fatalf("zero-config injector fired: %+v", st)
	}
	if st.Events != 1000 {
		t.Fatalf("Events = %d, want 1000", st.Events)
	}
}

// TestSlowInjection: slow faults delay but do not corrupt.
func TestSlowInjection(t *testing.T) {
	in := NewInjector(Config{Seed: 3, SlowPer1024: 1024, SlowDelay: time.Millisecond})
	wrapped := in.Wrap("k", identity)
	x := tensor.New(tensor.Float32, 1)
	start := time.Now()
	got, err := wrapped([]*tensor.Tensor{x}, nil)
	if err != nil || got != x {
		t.Fatalf("slow wrapper broke the kernel: got=%v err=%v", got, err)
	}
	if time.Since(start) < time.Millisecond {
		t.Error("always-slow injector did not stall")
	}
	if in.Stats().Slows != 1 {
		t.Errorf("Slows = %d, want 1", in.Stats().Slows)
	}
}

// TestCancelRequestDeterministic: the cancellation schedule is a pure
// function of the seed, with delays inside [0, d).
func TestCancelRequestDeterministic(t *testing.T) {
	d := 10 * time.Millisecond
	run := func(seed uint64) ([]bool, []time.Duration) {
		in := NewInjector(Config{Seed: seed, CancelPer1024: 512})
		cancels := make([]bool, 200)
		afters := make([]time.Duration, 200)
		for i := range cancels {
			afters[i], cancels[i] = in.CancelRequest(d)
		}
		return cancels, afters
	}
	c1, a1 := run(11)
	c2, a2 := run(11)
	var fired int
	for i := range c1 {
		if c1[i] != c2[i] || a1[i] != a2[i] {
			t.Fatalf("cancel schedule diverged at %d", i)
		}
		if c1[i] {
			fired++
			if a1[i] < 0 || a1[i] >= d {
				t.Fatalf("cancel delay %v outside [0, %v)", a1[i], d)
			}
		}
	}
	// 512/1024 of 200 ≈ 100; it should at least fire sometimes and not always.
	if fired < 50 || fired > 150 {
		t.Errorf("cancels fired %d/200, want ≈100", fired)
	}
}
