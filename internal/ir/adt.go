package ir

import "fmt"

// TypeDef declares an algebraic data type with its constructors, e.g.
//
//	type Tree { Leaf(Tensor[(1, 300), float32]); Node(Tree, Tree) }
//
// ADTs give the IR the "dynamic data structures" axis of model dynamism
// (§2): a Tree-LSTM's input is a runtime-shaped Tree value.
type TypeDef struct {
	Name         string
	Constructors []*Constructor
}

// Constructor builds one variant of an ADT. Tag is the runtime discriminant
// the VM's GetTag instruction reads.
type Constructor struct {
	Name   string
	Tag    int
	Fields []Type
	Def    *TypeDef
}

// NewTypeDef declares an ADT and wires constructor back-references and tags.
func NewTypeDef(name string, ctors ...*Constructor) *TypeDef {
	td := &TypeDef{Name: name, Constructors: ctors}
	for i, c := range ctors {
		c.Tag = i
		c.Def = td
	}
	return td
}

// NewConstructor creates an unattached constructor; NewTypeDef assigns its
// tag and definition.
func NewConstructor(name string, fields ...Type) *Constructor {
	return &Constructor{Name: name, Fields: fields}
}

// CtorByName finds a constructor by name.
func (td *TypeDef) CtorByName(name string) (*Constructor, error) {
	for _, c := range td.Constructors {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("ir: type %s has no constructor %s", td.Name, name)
}

// Type returns the ADTType referencing this definition.
func (td *TypeDef) Type() *ADTType { return &ADTType{Def: td} }
