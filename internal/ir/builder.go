package ir

import (
	"fmt"

	"nimble/internal/tensor"
)

// Builder accumulates a let-chain, the idiomatic way model front-ends
// construct IR: every intermediate gets a named binding, which keeps the
// printed program readable and puts the program close to A-normal form.
type Builder struct {
	bindings []*Let
	counter  int
}

// NewBuilder creates an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Fresh returns a fresh variable with a prefix-derived name.
func (b *Builder) Fresh(prefix string) *Var {
	b.counter++
	return NewVar(fmt.Sprintf("%s%d", prefix, b.counter), nil)
}

// Bind introduces `let v = value` and returns v.
func (b *Builder) Bind(prefix string, value Expr) *Var {
	v := b.Fresh(prefix)
	b.bindings = append(b.bindings, &Let{Bound: v, Value: value})
	return v
}

// Op binds a call to a registered operator and returns the bound variable.
func (b *Builder) Op(name string, args ...Expr) *Var {
	return b.Bind("t", CallOp(name, args...))
}

// OpAttrs binds a call with attributes.
func (b *Builder) OpAttrs(name string, attrs Attrs, args ...Expr) *Var {
	return b.Bind("t", CallOpAttrs(name, attrs, args...))
}

// Finish closes the let-chain with the result expression.
func (b *Builder) Finish(result Expr) Expr {
	out := result
	for i := len(b.bindings) - 1; i >= 0; i-- {
		l := b.bindings[i]
		out = &Let{Bound: l.Bound, Value: l.Value, Body: out}
	}
	return out
}

// ConstScalar builds a float32 scalar constant node.
func ConstScalar(v float32) *Constant { return Const(tensor.Scalar(v)) }

// ConstScalarI64 builds an int64 scalar constant node.
func ConstScalarI64(v int64) *Constant { return Const(tensor.ScalarI64(v)) }

// ConstBool builds a boolean scalar constant node.
func ConstBool(v bool) *Constant { return Const(tensor.ScalarBool(v)) }
