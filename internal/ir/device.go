package ir

import "fmt"

// DeviceType enumerates execution devices. The reproduction executes all
// kernels on the host, but the compiler's device-placement analysis (§4.4)
// and the VM's DeviceCopy instruction operate on these logical devices; the
// platform simulator (internal/platform) costs them differently.
type DeviceType uint8

const (
	// DevUnknown is the empty device domain: no placement constraint yet.
	DevUnknown DeviceType = iota
	// DevCPU is the host CPU, the mandatory domain of shape functions.
	DevCPU
	// DevGPU is an accelerator with a host-interaction execution model.
	DevGPU
)

func (d DeviceType) String() string {
	switch d {
	case DevUnknown:
		return "unknown"
	case DevCPU:
		return "cpu"
	case DevGPU:
		return "gpu"
	}
	return fmt.Sprintf("device(%d)", uint8(d))
}

// Device is a concrete device instance, e.g. cpu(0) or gpu(0).
type Device struct {
	Type DeviceType
	ID   int
}

// CPU returns the cpu(id) device.
func CPU(id int) Device { return Device{Type: DevCPU, ID: id} }

// GPU returns the gpu(id) device.
func GPU(id int) Device { return Device{Type: DevGPU, ID: id} }

func (d Device) String() string { return fmt.Sprintf("%s(%d)", d.Type, d.ID) }

// IsUnknown reports whether the device is the unconstrained domain.
func (d Device) IsUnknown() bool { return d.Type == DevUnknown }
