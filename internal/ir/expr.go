package ir

import (
	"fmt"

	"nimble/internal/tensor"
)

// Expr is the interface implemented by every IR expression node. Checked
// types are attached to nodes by the type inference pass (internal/typeinfer)
// via SetCheckedType; passes downstream of inference may rely on
// CheckedType being non-nil.
type Expr interface {
	isExpr()
	// CheckedType returns the type computed by inference, or nil before
	// inference has run.
	CheckedType() Type
	// SetCheckedType records the inferred type.
	SetCheckedType(Type)
}

// baseExpr provides checked-type storage for all node kinds.
type baseExpr struct {
	checked Type
}

func (b *baseExpr) CheckedType() Type     { return b.checked }
func (b *baseExpr) SetCheckedType(t Type) { b.checked = t }

// Var is a local variable. Vars are compared by pointer identity: two
// distinct Var nodes with the same name are different variables.
type Var struct {
	baseExpr
	Name string
	// TypeAnn is the user-provided annotation; may be nil for inferred vars.
	TypeAnn Type
}

func (*Var) isExpr() {}

// NewVar creates a variable with an optional type annotation.
func NewVar(name string, ann Type) *Var { return &Var{Name: name, TypeAnn: ann} }

// GlobalVar names a function in the module.
type GlobalVar struct {
	baseExpr
	Name string
}

func (*GlobalVar) isExpr() {}

// Constant wraps a tensor literal. Constants are hoisted into the VM
// executable's constant pool at compile time and referenced by LoadConst.
type Constant struct {
	baseExpr
	Value *tensor.Tensor
}

func (*Constant) isExpr() {}

// Const builds a Constant node.
func Const(v *tensor.Tensor) *Constant { return &Constant{Value: v} }

// OpRef references a registered primitive operator.
type OpRef struct {
	baseExpr
	Op *Op
}

func (*OpRef) isExpr() {}

// CtorRef references an ADT constructor (used as the callee of a Call that
// builds an ADT value).
type CtorRef struct {
	baseExpr
	Ctor *Constructor
}

func (*CtorRef) isExpr() {}

// Call applies a callee — an OpRef, GlobalVar, Function, Var holding a
// closure, or CtorRef — to arguments, with operator attributes.
type Call struct {
	baseExpr
	Callee Expr
	Args   []Expr
	Attrs  Attrs
}

func (*Call) isExpr() {}

// NewCall builds a call node; attrs may be nil.
func NewCall(callee Expr, args []Expr, attrs Attrs) *Call {
	return &Call{Callee: callee, Args: args, Attrs: attrs}
}

// CallOp builds a call to a registered operator by name, panicking if the
// operator is unknown (a build-time programming error, not a runtime one).
func CallOp(name string, args ...Expr) *Call {
	return NewCall(&OpRef{Op: MustGetOp(name)}, args, nil)
}

// CallOpAttrs builds a call to a registered operator with attributes.
func CallOpAttrs(name string, attrs Attrs, args ...Expr) *Call {
	return NewCall(&OpRef{Op: MustGetOp(name)}, args, attrs)
}

// Function is a (possibly anonymous) function literal. Functions in a module
// are named by GlobalVars; function literals appearing as expressions become
// closures in the VM.
type Function struct {
	baseExpr
	Params []*Var
	Body   Expr
	// RetAnn is the declared return type; may be nil for inferred returns.
	RetAnn Type
}

func (*Function) isExpr() {}

// NewFunc builds a function literal.
func NewFunc(params []*Var, body Expr, ret Type) *Function {
	return &Function{Params: params, Body: body, RetAnn: ret}
}

// Let binds Value to Bound within Body. The A-normal-form pass rewrites all
// nesting into let-chains so later passes (memory planning, device
// placement) see one operation per binding.
type Let struct {
	baseExpr
	Bound *Var
	Value Expr
	Body  Expr
}

func (*Let) isExpr() {}

// NewLet builds a let binding.
func NewLet(v *Var, value, body Expr) *Let { return &Let{Bound: v, Value: value, Body: body} }

// If is conditional control flow; Cond must be a boolean scalar.
type If struct {
	baseExpr
	Cond Expr
	Then Expr
	Else Expr
}

func (*If) isExpr() {}

// Tuple packs expressions into a product value.
type Tuple struct {
	baseExpr
	Fields []Expr
}

func (*Tuple) isExpr() {}

// TupleGet projects field Index out of a tuple.
type TupleGet struct {
	baseExpr
	Tuple Expr
	Index int
}

func (*TupleGet) isExpr() {}

// Match eliminates an ADT value by pattern matching — the construct
// Tree-LSTM style models use to recurse over dynamic data structures.
type Match struct {
	baseExpr
	Data    Expr
	Clauses []*Clause
}

func (*Match) isExpr() {}

// Clause is one arm of a Match.
type Clause struct {
	Pattern *Pattern
	Body    Expr
}

// PatternKind discriminates pattern forms.
type PatternKind int

const (
	// PatWildcard matches anything, binding nothing.
	PatWildcard PatternKind = iota
	// PatVar matches anything, binding it to Var.
	PatVar
	// PatCtor matches a specific constructor, binding its fields to Sub
	// patterns.
	PatCtor
)

// Pattern is a match pattern. Only one level beyond the constructor is
// needed by the models in the evaluation, but patterns nest generally.
type Pattern struct {
	Kind PatternKind
	Var  *Var         // for PatVar
	Ctor *Constructor // for PatCtor
	Sub  []*Pattern   // for PatCtor
}

// WildcardPat returns the wildcard pattern.
func WildcardPat() *Pattern { return &Pattern{Kind: PatWildcard} }

// VarPat returns a variable-binding pattern.
func VarPat(v *Var) *Pattern { return &Pattern{Kind: PatVar, Var: v} }

// CtorPat returns a constructor pattern with sub-patterns.
func CtorPat(c *Constructor, sub ...*Pattern) *Pattern {
	return &Pattern{Kind: PatCtor, Ctor: c, Sub: sub}
}

// BoundVars returns the variables a pattern binds, in left-to-right order.
func (p *Pattern) BoundVars() []*Var {
	var out []*Var
	var walk func(*Pattern)
	walk = func(q *Pattern) {
		switch q.Kind {
		case PatVar:
			out = append(out, q.Var)
		case PatCtor:
			for _, s := range q.Sub {
				walk(s)
			}
		}
	}
	walk(p)
	return out
}

// ExprKind returns a short tag for diagnostics.
func ExprKind(e Expr) string {
	switch e.(type) {
	case *Var:
		return "Var"
	case *GlobalVar:
		return "GlobalVar"
	case *Constant:
		return "Constant"
	case *OpRef:
		return "OpRef"
	case *CtorRef:
		return "CtorRef"
	case *Call:
		return "Call"
	case *Function:
		return "Function"
	case *Let:
		return "Let"
	case *If:
		return "If"
	case *Tuple:
		return "Tuple"
	case *TupleGet:
		return "TupleGet"
	case *Match:
		return "Match"
	default:
		return fmt.Sprintf("%T", e)
	}
}
