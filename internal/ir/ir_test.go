package ir

import (
	"strings"
	"testing"
	"testing/quick"

	"nimble/internal/tensor"
)

func TestDimBasics(t *testing.T) {
	d := StaticDim(5)
	if d.IsAny() || d.Static() != 5 || d.String() != "5" {
		t.Errorf("StaticDim broken: %v", d)
	}
	a := AnyDim()
	if !a.IsAny() || a.String() != "Any" {
		t.Errorf("AnyDim broken: %v", a)
	}
	s := SymDim(3)
	if !s.IsAny() || s.String() != "Any#3" {
		t.Errorf("SymDim broken: %v", s)
	}
	if !a.Equal(AnyDim()) || a.Equal(s) || d.Equal(StaticDim(6)) {
		t.Error("Dim.Equal broken")
	}
	assertPanic(t, "negative dim", func() { StaticDim(-2) })
	assertPanic(t, "Static on Any", func() { AnyDim().Static() })
}

func TestTensorType(t *testing.T) {
	tt := TT(tensor.Float32, 1, 10, DimAny)
	if got := tt.String(); got != "Tensor[(1, 10, Any), float32]" {
		t.Errorf("String = %q", got)
	}
	if tt.IsStatic() {
		t.Error("dynamic type reported static")
	}
	if _, ok := tt.StaticShape(); ok {
		t.Error("StaticShape on dynamic type succeeded")
	}
	st := TT(tensor.Float32, 2, 3)
	shape, ok := st.StaticShape()
	if !ok || !shape.Equal(tensor.Shape{2, 3}) {
		t.Errorf("StaticShape = %v, %v", shape, ok)
	}
	n, ok := st.NumElementsUpperBound()
	if !ok || n != 6 {
		t.Errorf("NumElementsUpperBound = %d, %v", n, ok)
	}
	if !st.EqualType(TT(tensor.Float32, 2, 3)) || st.EqualType(tt) || st.EqualType(TT(tensor.Int64, 2, 3)) {
		t.Error("EqualType broken")
	}
}

func TestSubShaping(t *testing.T) {
	// Sub-shaping (§4.1): a more specific shape flows into a less specific
	// context, never the reverse.
	specific := TT(tensor.Float32, 5, 3)
	dynamic := TT(tensor.Float32, 5, DimAny)
	if !specific.AssignableTo(dynamic) {
		t.Error("specific should be assignable to dynamic")
	}
	if dynamic.AssignableTo(specific) {
		t.Error("dynamic should not be assignable to specific")
	}
	if !specific.AssignableTo(specific) || !dynamic.AssignableTo(dynamic) {
		t.Error("assignability should be reflexive")
	}
	if specific.AssignableTo(TT(tensor.Float32, 6, DimAny)) {
		t.Error("mismatched static dim accepted")
	}
	if specific.AssignableTo(TT(tensor.Int64, 5, DimAny)) {
		t.Error("dtype mismatch accepted")
	}
}

func TestCompositeTypes(t *testing.T) {
	tup := &TupleType{Fields: []Type{TT(tensor.Float32, 2), BoolType()}}
	if tup.String() != "(Tensor[(2), float32], Tensor[(), bool])" {
		t.Errorf("TupleType.String = %q", tup.String())
	}
	if !tup.EqualType(&TupleType{Fields: []Type{TT(tensor.Float32, 2), BoolType()}}) {
		t.Error("TupleType equality broken")
	}
	fn := &FuncType{Params: []Type{TT(tensor.Float32, 2)}, Ret: BoolType()}
	if !strings.Contains(fn.String(), "fn(") {
		t.Errorf("FuncType.String = %q", fn.String())
	}
	if fn.EqualType(tup) || tup.EqualType(fn) {
		t.Error("cross-kind equality broken")
	}
	td := NewTypeDef("Tree", NewConstructor("Leaf", TT(tensor.Float32, 1, 4)), NewConstructor("Node"))
	adt := td.Type()
	if adt.String() != "Tree" || !adt.EqualType(td.Type()) {
		t.Error("ADTType broken")
	}
	st := &StorageType{}
	if st.String() != "Storage" || !st.EqualType(&StorageType{}) {
		t.Error("StorageType broken")
	}
}

func TestBroadcastRelPaperRules(t *testing.T) {
	f32 := tensor.Float32
	cases := []struct {
		a, b Dim
		want string
	}{
		{AnyDim(), StaticDim(1), "Any"},
		{AnyDim(), StaticDim(4), "4"},
		{AnyDim(), AnyDim(), "Any"},
		{StaticDim(1), AnyDim(), "Any"},
		{StaticDim(4), AnyDim(), "4"},
		{SymDim(2), StaticDim(1), "Any#2"},
		{SymDim(2), SymDim(2), "Any#2"},
		{SymDim(2), SymDim(3), "Any"},
	}
	for _, c := range cases {
		got, err := BroadcastRel([]Type{
			&TensorType{Dims: []Dim{c.a}, DType: f32},
			&TensorType{Dims: []Dim{c.b}, DType: f32},
		}, nil)
		if err != nil {
			t.Errorf("BroadcastRel(%v, %v): %v", c.a, c.b, err)
			continue
		}
		if got.(*TensorType).Dims[0].String() != c.want {
			t.Errorf("BroadcastRel(%v, %v) = %v, want %v", c.a, c.b, got.(*TensorType).Dims[0], c.want)
		}
	}
	// Static mismatch is a compile-time error.
	if _, err := BroadcastRel([]Type{TT(f32, 3), TT(f32, 4)}, nil); err == nil {
		t.Error("static broadcast mismatch accepted")
	}
	// Dtype mismatch.
	if _, err := BroadcastRel([]Type{TT(f32, 3), TT(tensor.Int64, 3)}, nil); err == nil {
		t.Error("dtype mismatch accepted")
	}
	// Paper's contamination example: arange output (Any,) + (5, 1) -> (5, Any).
	got, err := BroadcastRel([]Type{TT(f32, DimAny), TT(f32, 5, 1)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "Tensor[(5, Any), float32]" {
		t.Errorf("contamination example = %s", got)
	}
}

func TestBroadcastRelProperty(t *testing.T) {
	// Property: the type relation commutes, matching runtime broadcasting.
	f := func(aRaw, bRaw []int8) bool {
		mk := func(raw []int8) *TensorType {
			dims := make([]Dim, 0, 3)
			for i, r := range raw {
				if i == 3 {
					break
				}
				switch r % 3 {
				case 0:
					dims = append(dims, AnyDim())
				case 1, -1:
					dims = append(dims, StaticDim(1))
				default:
					dims = append(dims, StaticDim(4))
				}
			}
			return &TensorType{Dims: dims, DType: tensor.Float32}
		}
		ta, tb := mk(aRaw), mk(bRaw)
		r1, e1 := BroadcastRel([]Type{ta, tb}, nil)
		r2, e2 := BroadcastRel([]Type{tb, ta}, nil)
		if (e1 == nil) != (e2 == nil) {
			return false
		}
		if e1 != nil {
			return true
		}
		return r1.EqualType(r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestDenseRel(t *testing.T) {
	f32 := tensor.Float32
	got, err := denseRel([]Type{TT(f32, DimAny, 300), TT(f32, 300, 512)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "Tensor[(Any, 512), float32]" {
		t.Errorf("denseRel = %s", got)
	}
	if _, err := denseRel([]Type{TT(f32, 2, 3), TT(f32, 4, 5)}, nil); err == nil {
		t.Error("reduction mismatch accepted")
	}
	// Any unifies gradually.
	if _, err := denseRel([]Type{TT(f32, 2, DimAny), TT(f32, 4, 5)}, nil); err != nil {
		t.Errorf("Any reduction rejected: %v", err)
	}
}

func TestConcatRel(t *testing.T) {
	f32 := tensor.Float32
	// Static + static.
	got, err := concatRel([]Type{TT(f32, 2, 4), TT(f32, 3, 4)}, Attrs{"axis": 0})
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "Tensor[(5, 4), float32]" {
		t.Errorf("concat static = %s", got)
	}
	// The paper's §4.3 example: (Any, 2) ++ (1, 2) -> (Any, 2).
	got, err = concatRel([]Type{TT(f32, DimAny, 2), TT(f32, 1, 2)}, Attrs{"axis": 0})
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "Tensor[(Any, 2), float32]" {
		t.Errorf("concat dynamic = %s", got)
	}
	// Non-axis mismatch rejected.
	if _, err := concatRel([]Type{TT(f32, 2, 4), TT(f32, 2, 5)}, Attrs{"axis": 0}); err == nil {
		t.Error("non-axis mismatch accepted")
	}
	// Sub-shaping refinement: Any non-axis dim refined by static input.
	got, err = concatRel([]Type{TT(f32, 2, DimAny), TT(f32, 3, 7)}, Attrs{"axis": 0})
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != "Tensor[(5, 7), float32]" {
		t.Errorf("concat refinement = %s", got)
	}
}

func TestShapeFuncModes(t *testing.T) {
	// Registered modes match the paper's taxonomy.
	cases := map[string]ShapeFuncMode{
		"dense":  ShapeDataIndependent,
		"conv2d": ShapeDataIndependent,
		"concat": ShapeDataIndependent,
		"arange": ShapeDataDependent,
		"unique": ShapeDataDependent,
		"nms":    ShapeUpperBound,
	}
	for name, want := range cases {
		op := MustGetOp(name)
		if op.Shape.Mode != want {
			t.Errorf("%s shape mode = %v, want %v", name, op.Shape.Mode, want)
		}
	}
	if ShapeDataIndependent.String() != "data-independent" ||
		ShapeDataDependent.String() != "data-dependent" ||
		ShapeUpperBound.String() != "upper-bound" {
		t.Error("mode names wrong")
	}
}

func TestArangeShapeFunc(t *testing.T) {
	op := MustGetOp("arange")
	shapes, err := op.Shape.Fn(nil, []*tensor.Tensor{
		tensor.Scalar(0), tensor.Scalar(10), tensor.Scalar(2),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !shapes[0].Equal(tensor.Shape{5}) {
		t.Errorf("arange shape = %v", shapes[0])
	}
	if _, err := op.Shape.Fn(nil, nil, nil); err == nil {
		t.Error("data-dependent shape func without values accepted")
	}
}

func TestOpRegistry(t *testing.T) {
	if _, ok := GetOp("add"); !ok {
		t.Fatal("add not registered")
	}
	if _, ok := GetOp("nonexistent"); ok {
		t.Error("nonexistent op found")
	}
	assertPanic(t, "MustGetOp", func() { MustGetOp("nonexistent") })
	assertPanic(t, "duplicate", func() { RegisterOp(&Op{Name: "add"}) })
	names := OpNames()
	if len(names) < 30 {
		t.Errorf("expected a full registry, got %d ops", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("OpNames not sorted")
		}
	}
}

func TestAttrs(t *testing.T) {
	a := Attrs{"axis": 1, "eps": 0.5, "flag": true, "name": "x", "dims": []int{1, 2}}
	if a.Int("axis", 0) != 1 || a.Int("missing", 7) != 7 {
		t.Error("Int broken")
	}
	if a.Float("eps", 0) != 0.5 || a.Float("missing", 2.5) != 2.5 {
		t.Error("Float broken")
	}
	if !a.Bool("flag", false) || a.Bool("missing", true) != true {
		t.Error("Bool broken")
	}
	if a.String("name", "") != "x" || a.String("missing", "d") != "d" {
		t.Error("String broken")
	}
	if got := a.Ints("dims"); len(got) != 2 || got[0] != 1 {
		t.Error("Ints broken")
	}
	var nilAttrs Attrs
	if nilAttrs.Int("x", 3) != 3 || nilAttrs.Ints("x") != nil {
		t.Error("nil attrs broken")
	}
	keys := a.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Error("Keys not sorted")
		}
	}
}

func TestFreeVars(t *testing.T) {
	x := NewVar("x", nil)
	y := NewVar("y", nil)
	z := NewVar("z", nil)
	// let z = x + y in z + x  -> free: x, y
	body := NewLet(z, CallOp("add", x, y), CallOp("add", z, x))
	fv := FreeVars(body)
	if len(fv) != 2 || fv[0] != x || fv[1] != y {
		t.Errorf("FreeVars = %v", varNames(fv))
	}
	// Function params are bound.
	fn := NewFunc([]*Var{x}, CallOp("add", x, y), nil)
	fv = FreeVars(fn)
	if len(fv) != 1 || fv[0] != y {
		t.Errorf("FreeVars(fn) = %v", varNames(fv))
	}
	// Match patterns bind.
	td := NewTypeDef("T", NewConstructor("C", TT(tensor.Float32, 1)))
	v := NewVar("v", nil)
	m := &Match{Data: x, Clauses: []*Clause{
		{Pattern: CtorPat(td.Constructors[0], VarPat(v)), Body: CallOp("add", v, y)},
	}}
	fv = FreeVars(m)
	if len(fv) != 2 || fv[0] != x || fv[1] != y {
		t.Errorf("FreeVars(match) = %v", varNames(fv))
	}
}

func varNames(vs []*Var) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Name
	}
	return out
}

func TestVisitAndCount(t *testing.T) {
	x := NewVar("x", nil)
	e := NewLet(NewVar("a", nil), CallOp("sigmoid", x), ConstScalar(1))
	count := CountNodes(e)
	// let, var a, call, opref, var x, const = 6
	if count != 6 {
		t.Errorf("CountNodes = %d, want 6", count)
	}
	// Early cutoff.
	n := 0
	Visit(e, func(Expr) bool { n++; return false })
	if n != 1 {
		t.Errorf("Visit cutoff broken: %d", n)
	}
}

func TestRewrite(t *testing.T) {
	x := NewVar("x", nil)
	e := CallOp("add", CallOp("sigmoid", x), ConstScalar(2))
	// Replace all sigmoid calls with tanh.
	got := Rewrite(e, func(n Expr) Expr {
		if c, ok := n.(*Call); ok {
			if op, ok := c.Callee.(*OpRef); ok && op.Op.Name == "sigmoid" {
				return CallOp("tanh", c.Args...)
			}
		}
		return n
	})
	if !strings.Contains(Print(got), "tanh") {
		t.Errorf("Rewrite failed: %s", Print(got))
	}
	// Untouched trees are returned unchanged (pointer-equal).
	same := Rewrite(e, func(n Expr) Expr { return n })
	if same != e {
		t.Error("identity rewrite allocated a new tree")
	}
}

func TestPrinter(t *testing.T) {
	x := NewVar("x", TT(tensor.Float32, DimAny, 2))
	y := NewVar("y", TT(tensor.Float32, 1, 2))
	out := NewVar("out", nil)
	fn := NewFunc([]*Var{x, y},
		NewLet(out, CallOpAttrs("concat", Attrs{"axis": 0}, x, y), out),
		TT(tensor.Float32, DimAny, 2))
	m := NewModule()
	m.AddFunc("main", fn)
	text := PrintModule(m)
	for _, want := range []string{"def @main", "Tensor[(Any, 2), float32]", "concat", "axis=0", "let %out"} {
		if !strings.Contains(text, want) {
			t.Errorf("printed module missing %q:\n%s", want, text)
		}
	}
	// If/Tuple/Match/TupleGet printing paths.
	td := NewTypeDef("Tree", NewConstructor("Leaf"), NewConstructor("Node"))
	e := &If{
		Cond: ConstBool(true),
		Then: &TupleGet{Tuple: &Tuple{Fields: []Expr{x}}, Index: 0},
		Else: &Match{Data: y, Clauses: []*Clause{
			{Pattern: CtorPat(td.Constructors[0]), Body: x},
			{Pattern: WildcardPat(), Body: y},
		}},
	}
	s := Print(e)
	for _, want := range []string{"if (", "match (", "Leaf", "_", ".0"} {
		if !strings.Contains(s, want) {
			t.Errorf("Print missing %q in:\n%s", want, s)
		}
	}
	// Distinct vars with the same name are disambiguated.
	a1, a2 := NewVar("a", nil), NewVar("a", nil)
	s = Print(CallOp("add", a1, a2))
	if !strings.Contains(s, "%a") || !strings.Contains(s, "%a.1") {
		t.Errorf("name uniquing broken: %s", s)
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder()
	x := NewVar("x", nil)
	h := b.Op("sigmoid", x)
	out := b.OpAttrs("sum", Attrs{"axis": 0}, h)
	e := b.Finish(out)
	text := Print(e)
	if !strings.Contains(text, "let %t1 = sigmoid(%x)") {
		t.Errorf("builder chain wrong:\n%s", text)
	}
	if !strings.Contains(text, "sum(%t1){axis=0}") {
		t.Errorf("builder attrs wrong:\n%s", text)
	}
}

func TestADT(t *testing.T) {
	leaf := NewConstructor("Leaf", TT(tensor.Float32, 1, 4))
	node := NewConstructor("Node")
	td := NewTypeDef("Tree", leaf, node)
	if leaf.Tag != 0 || node.Tag != 1 || leaf.Def != td {
		t.Error("constructor wiring broken")
	}
	got, err := td.CtorByName("Node")
	if err != nil || got != node {
		t.Errorf("CtorByName = %v, %v", got, err)
	}
	if _, err := td.CtorByName("Missing"); err == nil {
		t.Error("missing constructor accepted")
	}
	p := CtorPat(node, VarPat(NewVar("l", nil)), WildcardPat())
	if len(p.BoundVars()) != 1 {
		t.Errorf("BoundVars = %v", p.BoundVars())
	}
}

func TestDeviceString(t *testing.T) {
	if CPU(0).String() != "cpu(0)" || GPU(1).String() != "gpu(1)" {
		t.Error("device strings wrong")
	}
	var d Device
	if !d.IsUnknown() || CPU(0).IsUnknown() {
		t.Error("IsUnknown broken")
	}
}

func TestModule(t *testing.T) {
	m := NewModule()
	fn := NewFunc(nil, ConstScalar(1), nil)
	m.AddFunc("main", fn)
	m.AddFunc("aux", fn)
	got, err := m.Main()
	if err != nil || got != fn {
		t.Errorf("Main = %v, %v", got, err)
	}
	if _, err := m.Func("nope"); err == nil {
		t.Error("missing func accepted")
	}
	names := m.FuncNames()
	if len(names) != 2 || names[0] != "aux" {
		t.Errorf("FuncNames = %v", names)
	}
	m.AddTypeDef(NewTypeDef("Tree"))
	if len(m.TypeDefNames()) != 1 {
		t.Error("TypeDefNames broken")
	}
}

func assertPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
