package ir

import (
	"fmt"
	"sort"
)

// Module is a compilation unit: named functions plus ADT declarations. The
// function named "main" is the model entry point.
type Module struct {
	Funcs    map[string]*Function
	TypeDefs map[string]*TypeDef
}

// NewModule creates an empty module.
func NewModule() *Module {
	return &Module{Funcs: map[string]*Function{}, TypeDefs: map[string]*TypeDef{}}
}

// AddFunc registers fn under name, replacing any previous definition.
func (m *Module) AddFunc(name string, fn *Function) {
	m.Funcs[name] = fn
}

// Func fetches a function by name.
func (m *Module) Func(name string) (*Function, error) {
	fn, ok := m.Funcs[name]
	if !ok {
		return nil, fmt.Errorf("ir: module has no function %q", name)
	}
	return fn, nil
}

// Main fetches the entry function.
func (m *Module) Main() (*Function, error) { return m.Func("main") }

// AddTypeDef registers an ADT declaration.
func (m *Module) AddTypeDef(td *TypeDef) {
	m.TypeDefs[td.Name] = td
}

// FuncNames returns function names in sorted order for deterministic
// compilation and printing.
func (m *Module) FuncNames() []string {
	names := make([]string, 0, len(m.Funcs))
	for n := range m.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// TypeDefNames returns ADT names in sorted order.
func (m *Module) TypeDefNames() []string {
	names := make([]string, 0, len(m.TypeDefs))
	for n := range m.TypeDefs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
