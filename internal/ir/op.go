package ir

import (
	"fmt"
	"sort"
	"sync"

	"nimble/internal/tensor"
)

// Attrs carries operator attributes (axis, stride, device, ...). Values are
// restricted to int, float64, bool, string, []int, and Device so attrs can
// be serialized into bytecode deterministically.
type Attrs map[string]interface{}

// Int fetches an int attribute with a default.
func (a Attrs) Int(key string, def int) int {
	if a == nil {
		return def
	}
	if v, ok := a[key]; ok {
		return v.(int)
	}
	return def
}

// Float fetches a float64 attribute with a default.
func (a Attrs) Float(key string, def float64) float64 {
	if a == nil {
		return def
	}
	if v, ok := a[key]; ok {
		return v.(float64)
	}
	return def
}

// Bool fetches a bool attribute with a default.
func (a Attrs) Bool(key string, def bool) bool {
	if a == nil {
		return def
	}
	if v, ok := a[key]; ok {
		return v.(bool)
	}
	return def
}

// String fetches a string attribute with a default.
func (a Attrs) String(key, def string) string {
	if a == nil {
		return def
	}
	if v, ok := a[key]; ok {
		return v.(string)
	}
	return def
}

// Ints fetches an []int attribute; nil when missing.
func (a Attrs) Ints(key string) []int {
	if a == nil {
		return nil
	}
	if v, ok := a[key]; ok {
		return v.([]int)
	}
	return nil
}

// Keys returns attribute keys in sorted order for deterministic printing
// and serialization.
func (a Attrs) Keys() []string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// OpPattern classifies operators for the fusion pass, following the
// TVM-style taxonomy the paper builds on.
type OpPattern int

const (
	// PatternElemWise ops map each input element to one output element.
	PatternElemWise OpPattern = iota
	// PatternBroadcast ops are element-wise after broadcasting.
	PatternBroadcast
	// PatternInjective ops are one-to-one data movements (reshape, take).
	PatternInjective
	// PatternOutFusable ops (matmul, conv) accept fused element-wise
	// epilogues but cannot be fused into other ops.
	PatternOutFusable
	// PatternOpaque ops never fuse (control ops, allocation dialect,
	// data-dependent shapes — the §4.2 fusion policy).
	PatternOpaque
)

func (p OpPattern) String() string {
	switch p {
	case PatternElemWise:
		return "elemwise"
	case PatternBroadcast:
		return "broadcast"
	case PatternInjective:
		return "injective"
	case PatternOutFusable:
		return "out-fusable"
	case PatternOpaque:
		return "opaque"
	}
	return fmt.Sprintf("pattern(%d)", int(p))
}

// ShapeFuncMode is the paper's three-way shape-function classification
// (§4.2).
type ShapeFuncMode int

const (
	// ShapeDataIndependent: output shape depends only on input shapes.
	ShapeDataIndependent ShapeFuncMode = iota
	// ShapeDataDependent: output shape depends on input values (arange,
	// unique).
	ShapeDataDependent
	// ShapeUpperBound: the shape function yields an upper bound; the kernel
	// returns the precise shape with its output (nms).
	ShapeUpperBound
)

func (m ShapeFuncMode) String() string {
	switch m {
	case ShapeDataIndependent:
		return "data-independent"
	case ShapeDataDependent:
		return "data-dependent"
	case ShapeUpperBound:
		return "upper-bound"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ShapeFunc computes concrete output shapes at runtime. For
// data-independent functions only inShapes is consulted; data-dependent and
// upper-bound functions may read inVals. The compiler embeds these
// computations into the program as first-class instructions, so they run on
// the CPU domain per the §4.4 placement rules.
type ShapeFunc struct {
	Mode ShapeFuncMode
	Fn   func(inShapes []tensor.Shape, inVals []*tensor.Tensor, attrs Attrs) ([]tensor.Shape, error)
}

// EvalFunc executes an operator's kernel over concrete tensors. It is the
// semantic ground truth; codegen wraps and specializes these.
type EvalFunc func(args []*tensor.Tensor, attrs Attrs) (*tensor.Tensor, error)

// EvalIntoFunc is the destination-passing form of EvalFunc: when out is a
// usable destination (matching dtype and precise result shape — the buffer
// the §4.3 memory planner allocated ahead of time), the kernel writes its
// result there and returns out; otherwise (out nil, or an upper-bound plan
// larger than the precise shape) it allocates like EvalFunc. Codegen prefers
// this path so planned executions pay neither a per-op allocation nor the
// result copy genericKernel's fallback needs.
type EvalIntoFunc func(args []*tensor.Tensor, attrs Attrs, out *tensor.Tensor) (*tensor.Tensor, error)

// TypeRel is an operator type relation (§4.1): it computes the output type
// from input types, propagating Any per the operator's rules, or reports a
// compile-time type error. Relations must relax (not reject) constraints
// that cannot be decided while a participating dimension is Any; those
// deferred checks happen at runtime in the shape function / kernel.
type TypeRel func(args []Type, attrs Attrs) (Type, error)

// Op is a registered primitive operator.
type Op struct {
	Name  string
	Rel   TypeRel
	Shape ShapeFunc
	Eval  EvalFunc
	// EvalInto, when non-nil, is the operator's destination-passing fast
	// path; hot operator families (element-wise, reductions, dense, conv)
	// provide it so planned buffers are written directly.
	EvalInto EvalIntoFunc
	Pattern  OpPattern
	// NumInputs < 0 means variadic.
	NumInputs int
	// InPlace marks an operator whose result aliases (and mutates) its
	// first argument — the append-style cache writes of autoregressive
	// decoding. The memory planner routes the first argument as the
	// invoke_mut destination instead of allocating a fresh buffer, and
	// treats that argument as escaping so kill insertion and storage
	// coalescing never recycle a buffer a later alias still reads. The
	// first argument must be a planner-owned buffer (e.g. a state_zeros
	// result or a value threaded through a loop), never an ir.Constant:
	// constants are shared by reference across sessions.
	InPlace bool
}

var (
	registryMu sync.RWMutex
	registry   = map[string]*Op{}
)

// RegisterOp adds an operator to the global registry; duplicate names panic
// (registration happens in package init, so a duplicate is a programming
// error).
func RegisterOp(op *Op) *Op {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[op.Name]; dup {
		panic(fmt.Sprintf("ir: duplicate operator %q", op.Name))
	}
	registry[op.Name] = op
	return op
}

// GetOp looks up an operator by name.
func GetOp(name string) (*Op, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	op, ok := registry[name]
	return op, ok
}

// MustGetOp looks up an operator, panicking when absent.
func MustGetOp(name string) *Op {
	op, ok := GetOp(name)
	if !ok {
		panic(fmt.Sprintf("ir: unknown operator %q", name))
	}
	return op
}

// OpNames returns all registered operator names, sorted.
func OpNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
