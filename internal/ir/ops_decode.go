package ir

import (
	"fmt"

	"nimble/internal/kernels"
	"nimble/internal/tensor"
)

// Operator names used by the compiler and runtime for streaming decode.
const (
	// OpStreamEmit is the identity operator the VM intercepts during
	// streaming invocations: when a sink is attached, every value passing
	// through it is also delivered (as a deep copy) to the sink.
	OpStreamEmit = "stream.emit"
)

// The autoregressive-decode operator family: a mutable state buffer
// (state_zeros), the in-place KV-cache append (cache_append), single-query
// attention over the cached prefix (attn_cached), deterministic sampling
// (sample_token), the loop-counter helpers (index_inc / index_lt), and the
// streaming tap (stream.emit). state_zeros is deliberately distinct from
// `zeros`: constant folding evaluates zeros into a shared ir.Constant, which
// must never happen to a buffer that cache_append mutates in place.
func init() {
	RegisterOp(&Op{
		Name: "state_zeros",
		Rel: func(_ []Type, attrs Attrs) (Type, error) {
			dims := attrs.Ints("shape")
			dt, err := tensor.ParseDType(attrs.String("dtype", "float32"))
			if err != nil {
				return nil, err
			}
			outDims := make([]Dim, len(dims))
			for i, d := range dims {
				outDims[i] = StaticDim(d)
			}
			return &TensorType{Dims: outDims, DType: dt}, nil
		},
		Shape: ShapeFunc{
			Mode: ShapeDataIndependent,
			Fn: func(_ []tensor.Shape, _ []*tensor.Tensor, attrs Attrs) ([]tensor.Shape, error) {
				return []tensor.Shape{tensor.Shape(attrs.Ints("shape")).Clone()}, nil
			},
		},
		Eval: func(_ []*tensor.Tensor, attrs Attrs) (*tensor.Tensor, error) {
			dt, err := tensor.ParseDType(attrs.String("dtype", "float32"))
			if err != nil {
				return nil, err
			}
			return tensor.New(dt, attrs.Ints("shape")...), nil
		},
		EvalInto: func(_ []*tensor.Tensor, attrs Attrs, out *tensor.Tensor) (*tensor.Tensor, error) {
			dt, err := tensor.ParseDType(attrs.String("dtype", "float32"))
			if err != nil {
				return nil, err
			}
			shape := tensor.Shape(attrs.Ints("shape"))
			if out == nil || out.DType() != dt || out.NumElements() != shape.NumElements() {
				return tensor.New(dt, shape...), nil
			}
			out.Fill(0)
			return out, nil
		},
		Pattern:   PatternOpaque,
		NumInputs: 0,
	})

	RegisterOp(&Op{
		Name: "cache_append",
		Rel: func(args []Type, _ Attrs) (Type, error) {
			cache, ok1 := args[0].(*TensorType)
			row, ok2 := args[1].(*TensorType)
			idx, ok3 := args[2].(*TensorType)
			if !ok1 || !ok2 || !ok3 {
				return nil, fmt.Errorf("ir: cache_append requires tensor args")
			}
			if cache.DType != row.DType {
				return nil, fmt.Errorf("ir: cache_append dtype mismatch: %s vs %s", cache, row)
			}
			if idx.DType != tensor.Int64 {
				return nil, fmt.Errorf("ir: cache_append position must be int64, got %s", idx)
			}
			if cache.Rank() == 0 {
				return nil, fmt.Errorf("ir: cache_append cache must be at least rank 1")
			}
			return cache, nil
		},
		Shape: ShapeFunc{
			Mode: ShapeDataIndependent,
			Fn: func(inShapes []tensor.Shape, _ []*tensor.Tensor, _ Attrs) ([]tensor.Shape, error) {
				return []tensor.Shape{inShapes[0].Clone()}, nil
			},
		},
		Eval: func(args []*tensor.Tensor, _ Attrs) (*tensor.Tensor, error) {
			return kernels.CacheAppend(args[0], args[1], args[2])
		},
		EvalInto: func(args []*tensor.Tensor, _ Attrs, out *tensor.Tensor) (*tensor.Tensor, error) {
			return kernels.CacheAppendInto(args[0], args[1], args[2], out)
		},
		Pattern:   PatternOpaque,
		NumInputs: 3,
		InPlace:   true,
	})

	RegisterOp(&Op{
		Name: "attn_cached",
		Rel: func(args []Type, attrs Attrs) (Type, error) {
			q, ok := args[0].(*TensorType)
			if !ok {
				return nil, fmt.Errorf("ir: attn_cached requires a tensor query")
			}
			if q.DType != tensor.Float32 {
				return nil, fmt.Errorf("ir: attn_cached requires float32, got %s", q)
			}
			heads := attrs.Int("heads", 1)
			if heads <= 0 {
				return nil, fmt.Errorf("ir: attn_cached requires positive heads, got %d", heads)
			}
			return q, nil
		},
		Shape: ShapeFunc{
			Mode: ShapeDataIndependent,
			Fn: func(inShapes []tensor.Shape, _ []*tensor.Tensor, _ Attrs) ([]tensor.Shape, error) {
				return []tensor.Shape{inShapes[0].Clone()}, nil
			},
		},
		Eval: func(args []*tensor.Tensor, attrs Attrs) (*tensor.Tensor, error) {
			return kernels.AttnCached(args[0], args[1], args[2], args[3], attrs.Int("heads", 1))
		},
		EvalInto: func(args []*tensor.Tensor, attrs Attrs, out *tensor.Tensor) (*tensor.Tensor, error) {
			return kernels.AttnCachedInto(args[0], args[1], args[2], args[3], attrs.Int("heads", 1), out)
		},
		Pattern:   PatternOpaque,
		NumInputs: 4,
	})

	RegisterOp(&Op{
		Name: "sample_token",
		Rel: func(args []Type, _ Attrs) (Type, error) {
			if _, ok := args[0].(*TensorType); !ok {
				return nil, fmt.Errorf("ir: sample_token requires tensor logits")
			}
			return TT(tensor.Int64, 1), nil
		},
		Shape: ShapeFunc{
			Mode: ShapeDataIndependent,
			Fn: func(_ []tensor.Shape, _ []*tensor.Tensor, _ Attrs) ([]tensor.Shape, error) {
				return []tensor.Shape{{1}}, nil
			},
		},
		Eval: func(args []*tensor.Tensor, attrs Attrs) (*tensor.Tensor, error) {
			return kernels.SampleToken(args[0], args[1], attrs.Float("temp", 0), int64(attrs.Int("seed", 0)))
		},
		Pattern:   PatternOpaque,
		NumInputs: 2,
	})

	// index_inc / index_lt are the loop-counter primitives of compiled
	// decode loops; the generic element-wise family is float32-only.
	RegisterOp(&Op{
		Name: "index_inc",
		Rel: func(args []Type, _ Attrs) (Type, error) {
			t, ok := args[0].(*TensorType)
			if !ok || t.DType != tensor.Int64 {
				return nil, fmt.Errorf("ir: index_inc requires an int64 tensor, got %s", args[0])
			}
			return t, nil
		},
		Shape: ShapeFunc{
			Mode: ShapeDataIndependent,
			Fn: func(inShapes []tensor.Shape, _ []*tensor.Tensor, _ Attrs) ([]tensor.Shape, error) {
				return []tensor.Shape{inShapes[0].Clone()}, nil
			},
		},
		Eval: func(args []*tensor.Tensor, _ Attrs) (*tensor.Tensor, error) {
			out := args[0].Clone()
			v := out.I64()
			for i := range v {
				v[i]++
			}
			return out, nil
		},
		Pattern:   PatternOpaque,
		NumInputs: 1,
	})

	RegisterOp(&Op{
		Name: "index_lt",
		Rel: func(args []Type, _ Attrs) (Type, error) {
			a, ok1 := args[0].(*TensorType)
			b, ok2 := args[1].(*TensorType)
			if !ok1 || !ok2 || a.DType != tensor.Int64 || b.DType != tensor.Int64 {
				return nil, fmt.Errorf("ir: index_lt requires int64 tensors")
			}
			return TT(tensor.Bool), nil
		},
		Shape: ShapeFunc{
			Mode: ShapeDataIndependent,
			Fn: func(_ []tensor.Shape, _ []*tensor.Tensor, _ Attrs) ([]tensor.Shape, error) {
				return []tensor.Shape{{}}, nil
			},
		},
		Eval: func(args []*tensor.Tensor, _ Attrs) (*tensor.Tensor, error) {
			return tensor.ScalarBool(args[0].I64()[0] < args[1].I64()[0]), nil
		},
		Pattern:   PatternOpaque,
		NumInputs: 2,
	})

	RegisterOp(&Op{
		Name: OpStreamEmit,
		Rel: func(args []Type, _ Attrs) (Type, error) {
			if _, ok := args[0].(*TensorType); !ok {
				return nil, fmt.Errorf("ir: stream.emit requires a tensor")
			}
			return args[0], nil
		},
		Shape: ShapeFunc{
			Mode: ShapeDataIndependent,
			Fn: func(inShapes []tensor.Shape, _ []*tensor.Tensor, _ Attrs) ([]tensor.Shape, error) {
				return []tensor.Shape{inShapes[0].Clone()}, nil
			},
		},
		Eval: func(args []*tensor.Tensor, _ Attrs) (*tensor.Tensor, error) {
			return args[0].Clone(), nil
		},
		Pattern:   PatternOpaque,
		NumInputs: 1,
	})
}
