package ir

import (
	"fmt"

	"nimble/internal/kernels"
	"nimble/internal/tensor"
)

// This file registers the operators with data-dependent and upper-bound
// shape functions that §4.2 singles out, plus the explicit-allocation and
// device dialect operators the memory-planning (§4.3) and device-placement
// (§4.4) passes introduce.

func init() {
	// arange(start, stop, step): output extent is a function of the input
	// *values* — the paper's flagship data-dependent shape function.
	RegisterOp(&Op{
		Name: "arange",
		Rel: func(args []Type, _ Attrs) (Type, error) {
			for i, a := range args {
				tt, ok := a.(*TensorType)
				if !ok || tt.Rank() != 0 {
					return nil, fmt.Errorf("ir: arange arg %d must be a scalar", i)
				}
			}
			return &TensorType{Dims: []Dim{AnyDim()}, DType: tensor.Float32}, nil
		},
		Shape: ShapeFunc{
			Mode: ShapeDataDependent,
			Fn: func(_ []tensor.Shape, inVals []*tensor.Tensor, _ Attrs) ([]tensor.Shape, error) {
				if len(inVals) != 3 || inVals[0] == nil {
					return nil, fmt.Errorf("ir: arange shape function requires input values")
				}
				n := kernels.ArangeLen(inVals[0].F32()[0], inVals[1].F32()[0], inVals[2].F32()[0])
				return []tensor.Shape{{n}}, nil
			},
		},
		Eval: func(args []*tensor.Tensor, _ Attrs) (*tensor.Tensor, error) {
			return kernels.Arange(args[0].F32()[0], args[1].F32()[0], args[2].F32()[0]), nil
		},
		Pattern:   PatternOpaque, // data-dependent: never fused (§4.2 policy)
		NumInputs: 3,
	})

	// unique(x): output extent depends on the distinct values of x.
	RegisterOp(&Op{
		Name: "unique",
		Rel: func(args []Type, _ Attrs) (Type, error) {
			tt, ok := args[0].(*TensorType)
			if !ok || tt.Rank() != 1 {
				return nil, fmt.Errorf("ir: unique requires a rank-1 tensor")
			}
			return &TensorType{Dims: []Dim{AnyDim()}, DType: tt.DType}, nil
		},
		Shape: ShapeFunc{
			Mode: ShapeDataDependent,
			Fn: func(_ []tensor.Shape, inVals []*tensor.Tensor, _ Attrs) ([]tensor.Shape, error) {
				if len(inVals) != 1 || inVals[0] == nil {
					return nil, fmt.Errorf("ir: unique shape function requires input values")
				}
				u := kernels.Unique(inVals[0])
				return []tensor.Shape{u.Shape().Clone()}, nil
			},
		},
		Eval: func(args []*tensor.Tensor, _ Attrs) (*tensor.Tensor, error) {
			return kernels.Unique(args[0]), nil
		},
		Pattern:   PatternOpaque,
		NumInputs: 1,
	})

	// nms(boxes): computing the true output size is as expensive as the
	// operator itself, so the registered shape function returns the upper
	// bound (the input box count) and the kernel reports the precise shape
	// with its output (§4.2).
	RegisterOp(&Op{
		Name: "nms",
		Rel: func(args []Type, _ Attrs) (Type, error) {
			tt, ok := args[0].(*TensorType)
			if !ok || tt.Rank() != 2 {
				return nil, fmt.Errorf("ir: nms requires [n, 5] boxes")
			}
			return &TensorType{Dims: []Dim{AnyDim(), StaticDim(5)}, DType: tt.DType}, nil
		},
		Shape: ShapeFunc{
			Mode: ShapeUpperBound,
			Fn: func(inShapes []tensor.Shape, _ []*tensor.Tensor, _ Attrs) ([]tensor.Shape, error) {
				// Upper bound: every box survives.
				return []tensor.Shape{inShapes[0].Clone()}, nil
			},
		},
		Eval: func(args []*tensor.Tensor, attrs Attrs) (*tensor.Tensor, error) {
			res := kernels.NMS(args[0], float32(attrs.Float("iou_threshold", 0.5)))
			return kernels.SliceNMS(res), nil
		},
		Pattern:   PatternOpaque,
		NumInputs: 1,
	})
}

// Names of the dialect operators introduced by compilation passes. They are
// registered like ordinary ops so the printer, type checker, and pass
// machinery treat them uniformly, but their execution is special-cased by
// the bytecode compiler, which lowers each to a dedicated VM instruction.
const (
	OpAllocStorage    = "memory.alloc_storage"
	OpAllocTensor     = "memory.alloc_tensor"
	OpAllocTensorReg  = "memory.alloc_tensor_reg"
	OpInvokeMut       = "memory.invoke_mut"
	OpKill            = "memory.kill"
	OpShapeOf         = "vm.shape_of"
	OpInvokeShapeFunc = "vm.shape_func"
	OpDeviceCopy      = "device_copy"
	OpReshapeTensor   = "vm.reshape_tensor"
)

func init() {
	// alloc_storage(size, alignment, device) -> Storage
	RegisterOp(&Op{
		Name: OpAllocStorage,
		Rel: func(_ []Type, _ Attrs) (Type, error) {
			return &StorageType{}, nil
		},
		Pattern:   PatternOpaque,
		NumInputs: 0,
	})
	// alloc_tensor(storage) {offset, shape, dtype} -> Tensor with static shape
	RegisterOp(&Op{
		Name: OpAllocTensor,
		Rel: func(args []Type, attrs Attrs) (Type, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("ir: alloc_tensor requires (storage)")
			}
			if _, ok := args[0].(*StorageType); !ok {
				return nil, fmt.Errorf("ir: alloc_tensor requires a storage, got %s", args[0])
			}
			dt, err := tensor.ParseDType(attrs.String("dtype", "float32"))
			if err != nil {
				return nil, err
			}
			dims := attrs.Ints("shape")
			outDims := make([]Dim, len(dims))
			for i, d := range dims {
				outDims[i] = StaticDim(d)
			}
			return &TensorType{Dims: outDims, DType: dt}, nil
		},
		Pattern:   PatternOpaque,
		NumInputs: 1,
	})
	// alloc_tensor_reg(storage, shape) -> Tensor with runtime shape
	RegisterOp(&Op{
		Name: OpAllocTensorReg,
		Rel: func(args []Type, attrs Attrs) (Type, error) {
			if len(args) != 2 {
				return nil, fmt.Errorf("ir: alloc_tensor_reg requires (storage, shape)")
			}
			dt, err := tensor.ParseDType(attrs.String("dtype", "float32"))
			if err != nil {
				return nil, err
			}
			rank := attrs.Int("rank", 1)
			dims := make([]Dim, rank)
			for i := range dims {
				dims[i] = AnyDim()
			}
			return &TensorType{Dims: dims, DType: dt}, nil
		},
		Pattern:   PatternOpaque,
		NumInputs: 2,
	})
	// invoke_mut(op-args..., outputs...) executes a kernel with explicit
	// destination buffers; "op" and arity live in attrs.
	RegisterOp(&Op{
		Name: OpInvokeMut,
		Rel: func(args []Type, attrs Attrs) (Type, error) {
			nOut := attrs.Int("num_outputs", 1)
			if nOut < 1 || nOut > len(args) {
				return nil, fmt.Errorf("ir: invoke_mut num_outputs %d out of range", nOut)
			}
			if nOut == 1 {
				return args[len(args)-1], nil
			}
			fields := make([]Type, nOut)
			copy(fields, args[len(args)-nOut:])
			return &TupleType{Fields: fields}, nil
		},
		Pattern:   PatternOpaque,
		NumInputs: -1,
	})
	// kill(tensor) frees a buffer before scope exit (§4.3).
	RegisterOp(&Op{
		Name: OpKill,
		Rel: func(args []Type, _ Attrs) (Type, error) {
			return &TupleType{}, nil
		},
		Pattern:   PatternOpaque,
		NumInputs: 1,
	})
	// shape_of(tensor) -> rank-1 int64 shape tensor; always CPU-placed.
	RegisterOp(&Op{
		Name: OpShapeOf,
		Rel: func(args []Type, _ Attrs) (Type, error) {
			tt, ok := args[0].(*TensorType)
			if !ok {
				return nil, fmt.Errorf("ir: shape_of requires a tensor type")
			}
			return &TensorType{Dims: []Dim{StaticDim(tt.Rank())}, DType: tensor.Int64}, nil
		},
		Shape: ShapeFunc{
			Mode: ShapeDataIndependent,
			Fn: func(inShapes []tensor.Shape, _ []*tensor.Tensor, _ Attrs) ([]tensor.Shape, error) {
				return []tensor.Shape{{len(inShapes[0])}}, nil
			},
		},
		Eval: func(args []*tensor.Tensor, _ Attrs) (*tensor.Tensor, error) {
			return tensor.ShapeTensor(args[0].Shape()), nil
		},
		Pattern:   PatternOpaque,
		NumInputs: 1,
	})
	// shape_func(op-shape-inputs...) runs a registered shape function; the
	// target op name lives in attrs["op"]. Output is a tuple of shape
	// tensors (one per operator output).
	RegisterOp(&Op{
		Name: OpInvokeShapeFunc,
		Rel: func(args []Type, attrs Attrs) (Type, error) {
			return &TensorType{Dims: []Dim{AnyDim()}, DType: tensor.Int64}, nil
		},
		Pattern:   PatternOpaque,
		NumInputs: -1,
	})
	// device_copy(x) {src, dst} transfers a tensor across device domains.
	RegisterOp(&Op{
		Name: OpDeviceCopy,
		Rel: func(args []Type, _ Attrs) (Type, error) {
			return args[0], nil
		},
		Shape:     identityShapeFunc,
		Pattern:   PatternOpaque,
		NumInputs: 1,
	})
	// vm.reshape_tensor(x, shape) gives x a runtime-computed shape without
	// moving data — the ReshapeTensor instruction.
	RegisterOp(&Op{
		Name: OpReshapeTensor,
		Rel: func(args []Type, attrs Attrs) (Type, error) {
			tt, ok := args[0].(*TensorType)
			if !ok {
				return nil, fmt.Errorf("ir: reshape_tensor requires a tensor type")
			}
			rank := attrs.Int("rank", 1)
			dims := make([]Dim, rank)
			for i := range dims {
				dims[i] = AnyDim()
			}
			return &TensorType{Dims: dims, DType: tt.DType}, nil
		},
		Pattern:   PatternOpaque,
		NumInputs: 2,
	})
}
