package ir

import (
	"fmt"

	"nimble/internal/kernels"
	"nimble/internal/tensor"
)

// broadcastDim implements the paper's broadcast type-relation rules for a
// single dimension pair (§4.1):
//
//	broadcast_rel(Any, 1)   -> Any
//	broadcast_rel(Any, d)   -> d   (d > 1)
//	broadcast_rel(Any, Any) -> Any
//
// Symbolic identities survive when the result remains the same unknown
// extent: Any#k against 1 is still Any#k, and Any#k against Any#k stays
// Any#k, enabling downstream shape specialization.
func broadcastDim(a, b Dim) (Dim, error) {
	switch {
	case !a.IsAny() && !b.IsAny():
		if a.Value == b.Value {
			return a, nil
		}
		if a.Value == 1 {
			return b, nil
		}
		if b.Value == 1 {
			return a, nil
		}
		return Dim{}, fmt.Errorf("ir: cannot broadcast %s with %s", a, b)
	case a.IsAny() && b.IsAny():
		if a.Sym != 0 && a.Sym == b.Sym {
			return a, nil
		}
		return AnyDim(), nil
	case a.IsAny():
		if b.Value == 1 {
			return a, nil // Any (possibly symbolic) vs 1 -> same Any
		}
		return b, nil // Any vs d>1 -> d; the d==Any case is gradually checked at runtime
	default: // b.IsAny()
		if a.Value == 1 {
			return b, nil
		}
		return a, nil
	}
}

// BroadcastRel is the broadcast type relation over full tensor types.
func BroadcastRel(args []Type, _ Attrs) (Type, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("ir: broadcast relation requires 2 args, got %d", len(args))
	}
	ta, ok1 := args[0].(*TensorType)
	tb, ok2 := args[1].(*TensorType)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("ir: broadcast relation requires tensor types, got %s and %s", args[0], args[1])
	}
	if ta.DType != tb.DType {
		return nil, fmt.Errorf("ir: broadcast dtype mismatch: %s vs %s", ta.DType, tb.DType)
	}
	rank := len(ta.Dims)
	if len(tb.Dims) > rank {
		rank = len(tb.Dims)
	}
	out := make([]Dim, rank)
	for i := 0; i < rank; i++ {
		da, db := StaticDim(1), StaticDim(1)
		if i >= rank-len(ta.Dims) {
			da = ta.Dims[i-(rank-len(ta.Dims))]
		}
		if i >= rank-len(tb.Dims) {
			db = tb.Dims[i-(rank-len(tb.Dims))]
		}
		d, err := broadcastDim(da, db)
		if err != nil {
			return nil, err
		}
		out[i] = d
	}
	return &TensorType{Dims: out, DType: ta.DType}, nil
}

// broadcastShapeFunc is the runtime shape function shared by every broadcast
// operator; it is data independent.
var broadcastShapeFunc = ShapeFunc{
	Mode: ShapeDataIndependent,
	Fn: func(inShapes []tensor.Shape, _ []*tensor.Tensor, _ Attrs) ([]tensor.Shape, error) {
		out, err := tensor.BroadcastShapes(inShapes[0], inShapes[1])
		if err != nil {
			return nil, err
		}
		return []tensor.Shape{out}, nil
	},
}

// identityRel types a unary op whose output type equals its input.
func identityRel(args []Type, _ Attrs) (Type, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("ir: unary relation requires 1 arg, got %d", len(args))
	}
	if _, ok := args[0].(*TensorType); !ok {
		return nil, fmt.Errorf("ir: unary relation requires a tensor type, got %s", args[0])
	}
	return args[0], nil
}

var identityShapeFunc = ShapeFunc{
	Mode: ShapeDataIndependent,
	Fn: func(inShapes []tensor.Shape, _ []*tensor.Tensor, _ Attrs) ([]tensor.Shape, error) {
		return []tensor.Shape{inShapes[0].Clone()}, nil
	},
}

func binaryEval(k func(a, b *tensor.Tensor) *tensor.Tensor) EvalFunc {
	return func(args []*tensor.Tensor, _ Attrs) (*tensor.Tensor, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("ir: binary op requires 2 args, got %d", len(args))
		}
		return k(args[0], args[1]), nil
	}
}

func binaryEvalInto(k func(a, b, out *tensor.Tensor) *tensor.Tensor) EvalIntoFunc {
	return func(args []*tensor.Tensor, _ Attrs, out *tensor.Tensor) (*tensor.Tensor, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("ir: binary op requires 2 args, got %d", len(args))
		}
		return k(args[0], args[1], out), nil
	}
}

func unaryEval(k func(a *tensor.Tensor) *tensor.Tensor) EvalFunc {
	return func(args []*tensor.Tensor, _ Attrs) (*tensor.Tensor, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("ir: unary op requires 1 arg, got %d", len(args))
		}
		return k(args[0]), nil
	}
}

func unaryEvalInto(k func(a, out *tensor.Tensor) *tensor.Tensor) EvalIntoFunc {
	return func(args []*tensor.Tensor, _ Attrs, out *tensor.Tensor) (*tensor.Tensor, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("ir: unary op requires 1 arg, got %d", len(args))
		}
		return k(args[0], out), nil
	}
}

// compareRel is like BroadcastRel but yields a bool tensor.
func compareRel(args []Type, attrs Attrs) (Type, error) {
	t, err := BroadcastRel(args, attrs)
	if err != nil {
		return nil, err
	}
	tt := t.(*TensorType)
	return &TensorType{Dims: tt.Dims, DType: tensor.Bool}, nil
}

func registerBroadcastOp(name string, k func(a, b *tensor.Tensor) *tensor.Tensor, kInto func(a, b, out *tensor.Tensor) *tensor.Tensor) {
	RegisterOp(&Op{
		Name:      name,
		Rel:       BroadcastRel,
		Shape:     broadcastShapeFunc,
		Eval:      binaryEval(k),
		EvalInto:  binaryEvalInto(kInto),
		Pattern:   PatternBroadcast,
		NumInputs: 2,
	})
}

func registerUnaryOp(name string, k func(a *tensor.Tensor) *tensor.Tensor, kInto func(a, out *tensor.Tensor) *tensor.Tensor) {
	RegisterOp(&Op{
		Name:      name,
		Rel:       identityRel,
		Shape:     identityShapeFunc,
		Eval:      unaryEval(k),
		EvalInto:  unaryEvalInto(kInto),
		Pattern:   PatternElemWise,
		NumInputs: 1,
	})
}

func init() {
	registerBroadcastOp("add", kernels.Add, kernels.AddInto)
	registerBroadcastOp("subtract", kernels.Sub, kernels.SubInto)
	registerBroadcastOp("multiply", kernels.Mul, kernels.MulInto)
	registerBroadcastOp("divide", kernels.Div, kernels.DivInto)
	registerBroadcastOp("maximum", kernels.Maximum, kernels.MaximumInto)
	registerBroadcastOp("minimum", kernels.Minimum, kernels.MinimumInto)
	registerBroadcastOp("power", kernels.Power, kernels.PowerInto)

	registerUnaryOp("negative", kernels.Neg, kernels.NegInto)
	registerUnaryOp("exp", kernels.Exp, kernels.ExpInto)
	registerUnaryOp("sqrt", kernels.Sqrt, kernels.SqrtInto)
	registerUnaryOp("sigmoid", kernels.Sigmoid, kernels.SigmoidInto)
	registerUnaryOp("tanh", kernels.Tanh, kernels.TanhInto)
	registerUnaryOp("relu", kernels.Relu, kernels.ReluInto)
	registerUnaryOp("gelu", kernels.Gelu, kernels.GeluInto)

	for _, c := range []struct {
		name string
		k    func(a, b *tensor.Tensor) *tensor.Tensor
	}{
		{"greater", kernels.Greater},
		{"less", kernels.Less},
		{"equal", kernels.EqualOp},
	} {
		RegisterOp(&Op{
			Name:      c.name,
			Rel:       compareRel,
			Shape:     broadcastShapeFunc,
			Eval:      binaryEval(c.k),
			Pattern:   PatternBroadcast,
			NumInputs: 2,
		})
	}

	RegisterOp(&Op{
		Name: "cast",
		Rel: func(args []Type, attrs Attrs) (Type, error) {
			tt, ok := args[0].(*TensorType)
			if !ok {
				return nil, fmt.Errorf("ir: cast requires a tensor type")
			}
			dt, err := tensor.ParseDType(attrs.String("dtype", "float32"))
			if err != nil {
				return nil, err
			}
			return &TensorType{Dims: tt.Dims, DType: dt}, nil
		},
		Shape: identityShapeFunc,
		Eval: func(args []*tensor.Tensor, attrs Attrs) (*tensor.Tensor, error) {
			dt, err := tensor.ParseDType(attrs.String("dtype", "float32"))
			if err != nil {
				return nil, err
			}
			return kernels.Cast(args[0], dt), nil
		},
		Pattern:   PatternElemWise,
		NumInputs: 1,
	})
}
