package ir

import (
	"fmt"

	"nimble/internal/kernels"
	"nimble/internal/tensor"
)

// denseRel types dense(x, w): [m, k] x [k, n] -> [m, n]. The m dimension may
// be Any (the dynamic sequence length in BERT); k must unify; n must be
// static in this reproduction (weights are constants).
func denseRel(args []Type, _ Attrs) (Type, error) {
	x, ok1 := args[0].(*TensorType)
	w, ok2 := args[1].(*TensorType)
	if !ok1 || !ok2 || x.Rank() != 2 || w.Rank() != 2 {
		return nil, fmt.Errorf("ir: dense requires rank-2 tensors, got %s and %s", args[0], args[1])
	}
	if err := unifyDim(x.Dims[1], w.Dims[0]); err != nil {
		return nil, fmt.Errorf("ir: dense reduction dims: %w", err)
	}
	return &TensorType{Dims: []Dim{x.Dims[0], w.Dims[1]}, DType: x.DType}, nil
}

// unifyDim checks that two dims can denote the same extent; Any unifies with
// anything (the residual check happens at runtime, per gradual typing).
func unifyDim(a, b Dim) error {
	if a.IsAny() || b.IsAny() {
		return nil
	}
	if a.Value != b.Value {
		return fmt.Errorf("dimension mismatch %s vs %s", a, b)
	}
	return nil
}

func init() {
	RegisterOp(&Op{
		Name: "dense",
		Rel:  denseRel,
		Shape: ShapeFunc{
			Mode: ShapeDataIndependent,
			Fn: func(inShapes []tensor.Shape, _ []*tensor.Tensor, _ Attrs) ([]tensor.Shape, error) {
				x, w := inShapes[0], inShapes[1]
				if x[1] != w[0] {
					// Runtime residual of the gradually typed k-dim check.
					return nil, fmt.Errorf("ir: dense runtime shape mismatch: %v x %v", x, w)
				}
				return []tensor.Shape{{x[0], w[1]}}, nil
			},
		},
		Eval: func(args []*tensor.Tensor, _ Attrs) (*tensor.Tensor, error) {
			return kernels.MatMul(args[0], args[1]), nil
		},
		EvalInto: func(args []*tensor.Tensor, _ Attrs, out *tensor.Tensor) (*tensor.Tensor, error) {
			return kernels.MatMulInto(args[0], args[1], out), nil
		},
		Pattern:   PatternOutFusable,
		NumInputs: 2,
	})

	RegisterOp(&Op{
		Name: "bias_add",
		Rel: func(args []Type, _ Attrs) (Type, error) {
			x, ok1 := args[0].(*TensorType)
			b, ok2 := args[1].(*TensorType)
			if !ok1 || !ok2 || b.Rank() != 1 {
				return nil, fmt.Errorf("ir: bias_add requires (tensor, rank-1 bias)")
			}
			if x.Rank() < 1 {
				return nil, fmt.Errorf("ir: bias_add input must have rank >= 1")
			}
			if err := unifyDim(x.Dims[x.Rank()-1], b.Dims[0]); err != nil {
				return nil, fmt.Errorf("ir: bias_add: %w", err)
			}
			return x, nil
		},
		Shape: identityShapeFunc,
		Eval: func(args []*tensor.Tensor, _ Attrs) (*tensor.Tensor, error) {
			return kernels.Add(args[0], args[1]), nil
		},
		EvalInto: func(args []*tensor.Tensor, _ Attrs, out *tensor.Tensor) (*tensor.Tensor, error) {
			return kernels.AddInto(args[0], args[1], out), nil
		},
		Pattern:   PatternBroadcast,
		NumInputs: 2,
	})

	RegisterOp(&Op{
		Name:      "softmax",
		Rel:       identityRel,
		Shape:     identityShapeFunc,
		Eval:      unaryEval(kernels.Softmax),
		EvalInto:  unaryEvalInto(kernels.SoftmaxInto),
		Pattern:   PatternOpaque, // row reduction: keep out of element-wise groups
		NumInputs: 1,
	})

	RegisterOp(&Op{
		Name: "layer_norm",
		Rel: func(args []Type, _ Attrs) (Type, error) {
			if len(args) != 3 {
				return nil, fmt.Errorf("ir: layer_norm requires (x, gamma, beta)")
			}
			return identityRel(args[:1], nil)
		},
		Shape: identityShapeFunc,
		Eval: func(args []*tensor.Tensor, attrs Attrs) (*tensor.Tensor, error) {
			eps := float32(attrs.Float("eps", 1e-5))
			return kernels.LayerNorm(args[0], args[1], args[2], eps), nil
		},
		EvalInto: func(args []*tensor.Tensor, attrs Attrs, out *tensor.Tensor) (*tensor.Tensor, error) {
			eps := float32(attrs.Float("eps", 1e-5))
			return kernels.LayerNormInto(args[0], args[1], args[2], out, eps), nil
		},
		Pattern:   PatternOpaque,
		NumInputs: 3,
	})

	registerReduceOp("sum", kernels.Sum, kernels.SumInto)
	registerReduceOp("mean", kernels.Mean, kernels.MeanInto)
	registerReduceOp("max", kernels.Max, kernels.MaxInto)

	RegisterOp(&Op{
		Name: "argmax",
		Rel: func(args []Type, attrs Attrs) (Type, error) {
			tt, ok := args[0].(*TensorType)
			if !ok {
				return nil, fmt.Errorf("ir: argmax requires a tensor type")
			}
			axis, err := checkAxis(attrs.Int("axis", -1), tt.Rank())
			if err != nil {
				return nil, err
			}
			dims := make([]Dim, 0, tt.Rank()-1)
			for i, d := range tt.Dims {
				if i != axis {
					dims = append(dims, d)
				}
			}
			return &TensorType{Dims: dims, DType: tensor.Int64}, nil
		},
		Shape: ShapeFunc{
			Mode: ShapeDataIndependent,
			Fn: func(inShapes []tensor.Shape, _ []*tensor.Tensor, attrs Attrs) ([]tensor.Shape, error) {
				in := inShapes[0]
				axis := attrs.Int("axis", -1)
				if axis < 0 {
					axis += len(in)
				}
				out := make(tensor.Shape, 0, len(in)-1)
				for i, d := range in {
					if i != axis {
						out = append(out, d)
					}
				}
				return []tensor.Shape{out}, nil
			},
		},
		Eval: func(args []*tensor.Tensor, attrs Attrs) (*tensor.Tensor, error) {
			return kernels.ArgMax(args[0], attrs.Int("axis", -1)), nil
		},
		EvalInto: func(args []*tensor.Tensor, attrs Attrs, out *tensor.Tensor) (*tensor.Tensor, error) {
			return kernels.ArgMaxInto(args[0], out, attrs.Int("axis", -1)), nil
		},
		Pattern:   PatternOpaque,
		NumInputs: 1,
	})

	registerConvOps()
}

func checkAxis(axis, rank int) (int, error) {
	if axis < 0 {
		axis += rank
	}
	if axis < 0 || axis >= rank {
		return 0, fmt.Errorf("ir: axis %d out of range for rank %d", axis, rank)
	}
	return axis, nil
}

func registerReduceOp(name string, k func(a *tensor.Tensor, axis int, keep bool) *tensor.Tensor, kInto func(a, out *tensor.Tensor, axis int, keep bool) *tensor.Tensor) {
	RegisterOp(&Op{
		Name: name,
		Rel: func(args []Type, attrs Attrs) (Type, error) {
			tt, ok := args[0].(*TensorType)
			if !ok {
				return nil, fmt.Errorf("ir: %s requires a tensor type", name)
			}
			axis, err := checkAxis(attrs.Int("axis", -1), tt.Rank())
			if err != nil {
				return nil, err
			}
			keep := attrs.Bool("keepdims", false)
			dims := make([]Dim, 0, tt.Rank())
			for i, d := range tt.Dims {
				if i == axis {
					if keep {
						dims = append(dims, StaticDim(1))
					}
					continue
				}
				dims = append(dims, d)
			}
			return &TensorType{Dims: dims, DType: tt.DType}, nil
		},
		Shape: ShapeFunc{
			Mode: ShapeDataIndependent,
			Fn: func(inShapes []tensor.Shape, _ []*tensor.Tensor, attrs Attrs) ([]tensor.Shape, error) {
				in := inShapes[0]
				axis := attrs.Int("axis", -1)
				if axis < 0 {
					axis += len(in)
				}
				keep := attrs.Bool("keepdims", false)
				out := make(tensor.Shape, 0, len(in))
				for i, d := range in {
					if i == axis {
						if keep {
							out = append(out, 1)
						}
						continue
					}
					out = append(out, d)
				}
				return []tensor.Shape{out}, nil
			},
		},
		Eval: func(args []*tensor.Tensor, attrs Attrs) (*tensor.Tensor, error) {
			return k(args[0], attrs.Int("axis", -1), attrs.Bool("keepdims", false)), nil
		},
		EvalInto: func(args []*tensor.Tensor, attrs Attrs, out *tensor.Tensor) (*tensor.Tensor, error) {
			return kInto(args[0], out, attrs.Int("axis", -1), attrs.Bool("keepdims", false)), nil
		},
		Pattern:   PatternOpaque,
		NumInputs: 1,
	})
}

func registerConvOps() {
	RegisterOp(&Op{
		Name: "conv2d",
		Rel: func(args []Type, attrs Attrs) (Type, error) {
			in, ok1 := args[0].(*TensorType)
			w, ok2 := args[1].(*TensorType)
			if !ok1 || !ok2 || in.Rank() != 4 || w.Rank() != 4 {
				return nil, fmt.Errorf("ir: conv2d requires rank-4 input and weight")
			}
			if err := unifyDim(in.Dims[1], w.Dims[1]); err != nil {
				return nil, fmt.Errorf("ir: conv2d channels: %w", err)
			}
			stride, pad := attrs.Int("stride", 1), attrs.Int("pad", 0)
			outH, outW := AnyDim(), AnyDim()
			if !in.Dims[2].IsAny() && !w.Dims[2].IsAny() {
				oh, _ := kernels.Conv2DOutDims(in.Dims[2].Value, 1, w.Dims[2].Value, 1, stride, pad)
				outH = StaticDim(oh)
			}
			if !in.Dims[3].IsAny() && !w.Dims[3].IsAny() {
				_, ow := kernels.Conv2DOutDims(1, in.Dims[3].Value, 1, w.Dims[3].Value, stride, pad)
				outW = StaticDim(ow)
			}
			return &TensorType{Dims: []Dim{in.Dims[0], w.Dims[0], outH, outW}, DType: in.DType}, nil
		},
		Shape: ShapeFunc{
			Mode: ShapeDataIndependent,
			Fn: func(inShapes []tensor.Shape, _ []*tensor.Tensor, attrs Attrs) ([]tensor.Shape, error) {
				in, w := inShapes[0], inShapes[1]
				oh, ow := kernels.Conv2DOutDims(in[2], in[3], w[2], w[3], attrs.Int("stride", 1), attrs.Int("pad", 0))
				return []tensor.Shape{{in[0], w[0], oh, ow}}, nil
			},
		},
		Eval: func(args []*tensor.Tensor, attrs Attrs) (*tensor.Tensor, error) {
			return kernels.Conv2D(args[0], args[1], attrs.Int("stride", 1), attrs.Int("pad", 0)), nil
		},
		EvalInto: func(args []*tensor.Tensor, attrs Attrs, out *tensor.Tensor) (*tensor.Tensor, error) {
			return kernels.Conv2DInto(args[0], args[1], out, attrs.Int("stride", 1), attrs.Int("pad", 0)), nil
		},
		Pattern:   PatternOutFusable,
		NumInputs: 2,
	})

	poolRel := func(args []Type, attrs Attrs) (Type, error) {
		in, ok := args[0].(*TensorType)
		if !ok || in.Rank() != 4 {
			return nil, fmt.Errorf("ir: pool requires a rank-4 tensor")
		}
		k, stride := attrs.Int("k", 2), attrs.Int("stride", 2)
		outH, outW := AnyDim(), AnyDim()
		if !in.Dims[2].IsAny() {
			oh, _ := kernels.Conv2DOutDims(in.Dims[2].Value, 1, k, 1, stride, 0)
			outH = StaticDim(oh)
		}
		if !in.Dims[3].IsAny() {
			_, ow := kernels.Conv2DOutDims(1, in.Dims[3].Value, 1, k, stride, 0)
			outW = StaticDim(ow)
		}
		return &TensorType{Dims: []Dim{in.Dims[0], in.Dims[1], outH, outW}, DType: in.DType}, nil
	}
	poolShape := ShapeFunc{
		Mode: ShapeDataIndependent,
		Fn: func(inShapes []tensor.Shape, _ []*tensor.Tensor, attrs Attrs) ([]tensor.Shape, error) {
			in := inShapes[0]
			oh, ow := kernels.Conv2DOutDims(in[2], in[3], attrs.Int("k", 2), attrs.Int("k", 2), attrs.Int("stride", 2), 0)
			return []tensor.Shape{{in[0], in[1], oh, ow}}, nil
		},
	}
	RegisterOp(&Op{
		Name:  "max_pool2d",
		Rel:   poolRel,
		Shape: poolShape,
		Eval: func(args []*tensor.Tensor, attrs Attrs) (*tensor.Tensor, error) {
			return kernels.MaxPool2D(args[0], attrs.Int("k", 2), attrs.Int("stride", 2)), nil
		},
		EvalInto: func(args []*tensor.Tensor, attrs Attrs, out *tensor.Tensor) (*tensor.Tensor, error) {
			return kernels.MaxPool2DInto(args[0], out, attrs.Int("k", 2), attrs.Int("stride", 2)), nil
		},
		Pattern:   PatternOpaque,
		NumInputs: 1,
	})
	RegisterOp(&Op{
		Name:  "avg_pool2d",
		Rel:   poolRel,
		Shape: poolShape,
		Eval: func(args []*tensor.Tensor, attrs Attrs) (*tensor.Tensor, error) {
			return kernels.AvgPool2D(args[0], attrs.Int("k", 2), attrs.Int("stride", 2)), nil
		},
		EvalInto: func(args []*tensor.Tensor, attrs Attrs, out *tensor.Tensor) (*tensor.Tensor, error) {
			return kernels.AvgPool2DInto(args[0], out, attrs.Int("k", 2), attrs.Int("stride", 2)), nil
		},
		Pattern:   PatternOpaque,
		NumInputs: 1,
	})
	RegisterOp(&Op{
		Name: "global_avg_pool2d",
		Rel: func(args []Type, _ Attrs) (Type, error) {
			in, ok := args[0].(*TensorType)
			if !ok || in.Rank() != 4 {
				return nil, fmt.Errorf("ir: global_avg_pool2d requires a rank-4 tensor")
			}
			return &TensorType{Dims: []Dim{in.Dims[0], in.Dims[1]}, DType: in.DType}, nil
		},
		Shape: ShapeFunc{
			Mode: ShapeDataIndependent,
			Fn: func(inShapes []tensor.Shape, _ []*tensor.Tensor, _ Attrs) ([]tensor.Shape, error) {
				in := inShapes[0]
				return []tensor.Shape{{in[0], in[1]}}, nil
			},
		},
		Eval: func(args []*tensor.Tensor, _ Attrs) (*tensor.Tensor, error) {
			return kernels.GlobalAvgPool2D(args[0]), nil
		},
		EvalInto: func(args []*tensor.Tensor, _ Attrs, out *tensor.Tensor) (*tensor.Tensor, error) {
			return kernels.GlobalAvgPool2DInto(args[0], out), nil
		},
		Pattern:   PatternOpaque,
		NumInputs: 1,
	})
}
