package ir

import (
	"fmt"

	"nimble/internal/kernels"
	"nimble/internal/tensor"
)

// concatRel is the paper's canonical dynamic-shape relation (§4.3's concat
// example): the concatenation axis sums input extents, producing Any when
// any participating extent is Any.
func concatRel(args []Type, attrs Attrs) (Type, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("ir: concat requires at least one input")
	}
	first, ok := args[0].(*TensorType)
	if !ok {
		return nil, fmt.Errorf("ir: concat requires tensor types")
	}
	axis, err := checkAxis(attrs.Int("axis", 0), first.Rank())
	if err != nil {
		return nil, err
	}
	outDims := append([]Dim{}, first.Dims...)
	total := 0
	anyAxis := first.Dims[axis].IsAny()
	if !anyAxis {
		total = first.Dims[axis].Value
	}
	for _, a := range args[1:] {
		t, ok := a.(*TensorType)
		if !ok || t.Rank() != first.Rank() || t.DType != first.DType {
			return nil, fmt.Errorf("ir: concat input mismatch: %s vs %s", args[0], a)
		}
		for d := 0; d < t.Rank(); d++ {
			if d == axis {
				if t.Dims[d].IsAny() {
					anyAxis = true
				} else {
					total += t.Dims[d].Value
				}
				continue
			}
			if err := unifyDim(outDims[d], t.Dims[d]); err != nil {
				return nil, fmt.Errorf("ir: concat non-axis dims: %w", err)
			}
			// A static dim refines an Any dim in the output (sub-shaping).
			if outDims[d].IsAny() && !t.Dims[d].IsAny() {
				outDims[d] = t.Dims[d]
			}
		}
	}
	if anyAxis {
		outDims[axis] = AnyDim()
	} else {
		outDims[axis] = StaticDim(total)
	}
	return &TensorType{Dims: outDims, DType: first.DType}, nil
}

func init() {
	RegisterOp(&Op{
		Name: "concat",
		Rel:  concatRel,
		Shape: ShapeFunc{
			Mode: ShapeDataIndependent,
			Fn: func(inShapes []tensor.Shape, _ []*tensor.Tensor, attrs Attrs) ([]tensor.Shape, error) {
				axis := attrs.Int("axis", 0)
				out := inShapes[0].Clone()
				if axis < 0 {
					axis += len(out)
				}
				for _, s := range inShapes[1:] {
					out[axis] += s[axis]
				}
				return []tensor.Shape{out}, nil
			},
		},
		Eval: func(args []*tensor.Tensor, attrs Attrs) (*tensor.Tensor, error) {
			return kernels.Concat(args, attrs.Int("axis", 0)), nil
		},
		EvalInto: func(args []*tensor.Tensor, attrs Attrs, out *tensor.Tensor) (*tensor.Tensor, error) {
			return kernels.ConcatInto(args, out, attrs.Int("axis", 0)), nil
		},
		Pattern:   PatternInjective,
		NumInputs: -1,
	})

	RegisterOp(&Op{
		Name: "strided_slice",
		Rel: func(args []Type, attrs Attrs) (Type, error) {
			tt, ok := args[0].(*TensorType)
			if !ok {
				return nil, fmt.Errorf("ir: strided_slice requires a tensor type")
			}
			axis, err := checkAxis(attrs.Int("axis", 0), tt.Rank())
			if err != nil {
				return nil, err
			}
			lo, hi := attrs.Int("begin", 0), attrs.Int("end", 0)
			if lo > hi {
				return nil, fmt.Errorf("ir: strided_slice begin %d > end %d", lo, hi)
			}
			if !tt.Dims[axis].IsAny() && hi > tt.Dims[axis].Value {
				return nil, fmt.Errorf("ir: strided_slice end %d beyond extent %s", hi, tt.Dims[axis])
			}
			outDims := append([]Dim{}, tt.Dims...)
			outDims[axis] = StaticDim(hi - lo)
			return &TensorType{Dims: outDims, DType: tt.DType}, nil
		},
		Shape: ShapeFunc{
			Mode: ShapeDataIndependent,
			Fn: func(inShapes []tensor.Shape, _ []*tensor.Tensor, attrs Attrs) ([]tensor.Shape, error) {
				out := inShapes[0].Clone()
				axis := attrs.Int("axis", 0)
				if axis < 0 {
					axis += len(out)
				}
				out[axis] = attrs.Int("end", 0) - attrs.Int("begin", 0)
				return []tensor.Shape{out}, nil
			},
		},
		Eval: func(args []*tensor.Tensor, attrs Attrs) (*tensor.Tensor, error) {
			return kernels.Slice(args[0], attrs.Int("axis", 0), attrs.Int("begin", 0), attrs.Int("end", 0)), nil
		},
		EvalInto: func(args []*tensor.Tensor, attrs Attrs, out *tensor.Tensor) (*tensor.Tensor, error) {
			return kernels.SliceInto(args[0], out, attrs.Int("axis", 0), attrs.Int("begin", 0), attrs.Int("end", 0)), nil
		},
		Pattern:   PatternInjective,
		NumInputs: 1,
	})

	RegisterOp(&Op{
		Name: "take",
		Rel: func(args []Type, _ Attrs) (Type, error) {
			table, ok1 := args[0].(*TensorType)
			idx, ok2 := args[1].(*TensorType)
			if !ok1 || !ok2 || table.Rank() != 2 {
				return nil, fmt.Errorf("ir: take requires (rank-2 table, integer indices)")
			}
			if !idx.DType.IsInt() {
				return nil, fmt.Errorf("ir: take indices must be integer, got %s", idx.DType)
			}
			dims := append(append([]Dim{}, idx.Dims...), table.Dims[1])
			return &TensorType{Dims: dims, DType: table.DType}, nil
		},
		Shape: ShapeFunc{
			Mode: ShapeDataIndependent,
			Fn: func(inShapes []tensor.Shape, _ []*tensor.Tensor, _ Attrs) ([]tensor.Shape, error) {
				out := append(inShapes[1].Clone(), inShapes[0][1])
				return []tensor.Shape{out}, nil
			},
		},
		Eval: func(args []*tensor.Tensor, _ Attrs) (*tensor.Tensor, error) {
			return kernels.Take(args[0], args[1]), nil
		},
		Pattern:   PatternInjective,
		NumInputs: 2,
	})

	RegisterOp(&Op{
		Name: "transpose",
		Rel: func(args []Type, attrs Attrs) (Type, error) {
			tt, ok := args[0].(*TensorType)
			if !ok {
				return nil, fmt.Errorf("ir: transpose requires a tensor type")
			}
			perm := attrs.Ints("perm")
			if perm == nil {
				perm = make([]int, tt.Rank())
				for i := range perm {
					perm[i] = tt.Rank() - 1 - i
				}
			}
			if len(perm) != tt.Rank() {
				return nil, fmt.Errorf("ir: transpose perm %v does not match rank %d", perm, tt.Rank())
			}
			outDims := make([]Dim, tt.Rank())
			for i, p := range perm {
				if p < 0 || p >= tt.Rank() {
					return nil, fmt.Errorf("ir: transpose perm index %d out of range", p)
				}
				outDims[i] = tt.Dims[p]
			}
			return &TensorType{Dims: outDims, DType: tt.DType}, nil
		},
		Shape: ShapeFunc{
			Mode: ShapeDataIndependent,
			Fn: func(inShapes []tensor.Shape, _ []*tensor.Tensor, attrs Attrs) ([]tensor.Shape, error) {
				in := inShapes[0]
				perm := attrs.Ints("perm")
				if perm == nil {
					perm = make([]int, len(in))
					for i := range perm {
						perm[i] = len(in) - 1 - i
					}
				}
				out := make(tensor.Shape, len(in))
				for i, p := range perm {
					out[i] = in[p]
				}
				return []tensor.Shape{out}, nil
			},
		},
		Eval: func(args []*tensor.Tensor, attrs Attrs) (*tensor.Tensor, error) {
			return kernels.Transpose(args[0], attrs.Ints("perm")), nil
		},
		Pattern:   PatternInjective,
		NumInputs: 1,
	})

	RegisterOp(&Op{
		Name: "reshape",
		Rel: func(args []Type, attrs Attrs) (Type, error) {
			tt, ok := args[0].(*TensorType)
			if !ok {
				return nil, fmt.Errorf("ir: reshape requires a tensor type")
			}
			newShape := attrs.Ints("shape")
			outDims := make([]Dim, len(newShape))
			for i, d := range newShape {
				switch {
				case d == -1:
					// Inferred extent: Any when input has dynamic dims,
					// computed when static.
					if shp, static := tt.StaticShape(); static {
						known := 1
						for _, x := range newShape {
							if x > 0 {
								known *= x
							}
						}
						if known > 0 && shp.NumElements()%known == 0 {
							outDims[i] = StaticDim(shp.NumElements() / known)
						} else {
							return nil, fmt.Errorf("ir: reshape %v incompatible with %s", newShape, tt)
						}
					} else {
						outDims[i] = AnyDim()
					}
				case d >= 0:
					outDims[i] = StaticDim(d)
				default:
					return nil, fmt.Errorf("ir: reshape dim %d invalid", d)
				}
			}
			return &TensorType{Dims: outDims, DType: tt.DType}, nil
		},
		Shape: ShapeFunc{
			Mode: ShapeDataIndependent,
			Fn: func(inShapes []tensor.Shape, _ []*tensor.Tensor, attrs Attrs) ([]tensor.Shape, error) {
				in := inShapes[0]
				newShape := attrs.Ints("shape")
				out := make(tensor.Shape, len(newShape))
				known, inferAt := 1, -1
				for i, d := range newShape {
					if d == -1 {
						inferAt = i
						continue
					}
					out[i] = d
					known *= d
				}
				if inferAt >= 0 {
					if known == 0 || in.NumElements()%known != 0 {
						return nil, fmt.Errorf("ir: reshape %v incompatible with %v", newShape, in)
					}
					out[inferAt] = in.NumElements() / known
				}
				return []tensor.Shape{out}, nil
			},
		},
		Eval: func(args []*tensor.Tensor, attrs Attrs) (*tensor.Tensor, error) {
			return args[0].Reshape(attrs.Ints("shape")...)
		},
		Pattern:   PatternInjective,
		NumInputs: 1,
	})

	RegisterOp(&Op{
		Name: "zeros",
		Rel: func(_ []Type, attrs Attrs) (Type, error) {
			dims := attrs.Ints("shape")
			dt, err := tensor.ParseDType(attrs.String("dtype", "float32"))
			if err != nil {
				return nil, err
			}
			outDims := make([]Dim, len(dims))
			for i, d := range dims {
				outDims[i] = StaticDim(d)
			}
			return &TensorType{Dims: outDims, DType: dt}, nil
		},
		Shape: ShapeFunc{
			Mode: ShapeDataIndependent,
			Fn: func(_ []tensor.Shape, _ []*tensor.Tensor, attrs Attrs) ([]tensor.Shape, error) {
				return []tensor.Shape{tensor.Shape(attrs.Ints("shape")).Clone()}, nil
			},
		},
		Eval: func(_ []*tensor.Tensor, attrs Attrs) (*tensor.Tensor, error) {
			dt, err := tensor.ParseDType(attrs.String("dtype", "float32"))
			if err != nil {
				return nil, err
			}
			return tensor.New(dt, attrs.Ints("shape")...), nil
		},
		Pattern:   PatternOpaque,
		NumInputs: 0,
	})
}
