package ir

import (
	"fmt"
	"strings"
)

// Print renders an expression in a Relay-like concrete syntax, used by pass
// debugging, golden tests, and the disassembler's source view. Variable
// names are uniqued with a per-printer counter so distinct Vars with equal
// names stay distinguishable.
func Print(e Expr) string {
	p := &printer{names: map[*Var]string{}, used: map[string]int{}}
	var b strings.Builder
	p.expr(&b, e, 0)
	return b.String()
}

// PrintModule renders all functions and type definitions of a module.
func PrintModule(m *Module) string {
	var b strings.Builder
	for _, name := range m.TypeDefNames() {
		td := m.TypeDefs[name]
		b.WriteString("type " + td.Name + " {")
		for i, c := range td.Constructors {
			if i > 0 {
				b.WriteString(";")
			}
			b.WriteString(" " + c.Name)
			if len(c.Fields) > 0 {
				parts := make([]string, len(c.Fields))
				for j, f := range c.Fields {
					parts[j] = f.String()
				}
				b.WriteString("(" + strings.Join(parts, ", ") + ")")
			}
		}
		b.WriteString(" }\n")
	}
	for _, name := range m.FuncNames() {
		p := &printer{names: map[*Var]string{}, used: map[string]int{}}
		b.WriteString("def @" + name)
		p.fnSig(&b, m.Funcs[name], 0)
		b.WriteString("\n")
	}
	return b.String()
}

type printer struct {
	names map[*Var]string
	used  map[string]int
}

func (p *printer) varName(v *Var) string {
	if n, ok := p.names[v]; ok {
		return n
	}
	base := v.Name
	if base == "" {
		base = "v"
	}
	n := base
	if c := p.used[base]; c > 0 {
		n = fmt.Sprintf("%s.%d", base, c)
	}
	p.used[base]++
	p.names[v] = n
	return n
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func (p *printer) fnSig(b *strings.Builder, fn *Function, depth int) {
	b.WriteString("(")
	for i, param := range fn.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("%" + p.varName(param))
		if param.TypeAnn != nil {
			b.WriteString(": " + param.TypeAnn.String())
		}
	}
	b.WriteString(")")
	if fn.RetAnn != nil {
		b.WriteString(" -> " + fn.RetAnn.String())
	}
	b.WriteString(" {\n")
	indent(b, depth+1)
	p.expr(b, fn.Body, depth+1)
	b.WriteString("\n")
	indent(b, depth)
	b.WriteString("}")
}

func (p *printer) expr(b *strings.Builder, e Expr, depth int) {
	switch n := e.(type) {
	case nil:
		b.WriteString("<nil>")
	case *Var:
		b.WriteString("%" + p.varName(n))
	case *GlobalVar:
		b.WriteString("@" + n.Name)
	case *Constant:
		if n.Value.NumElements() == 1 {
			b.WriteString(fmt.Sprintf("const(%g, %s)", n.Value.At(make([]int, n.Value.Rank())...), n.Value.DType()))
		} else {
			b.WriteString("const(" + n.Value.String() + ")")
		}
	case *OpRef:
		b.WriteString(n.Op.Name)
	case *CtorRef:
		b.WriteString(n.Ctor.Name)
	case *Call:
		p.expr(b, n.Callee, depth)
		b.WriteString("(")
		for i, a := range n.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			p.expr(b, a, depth)
		}
		b.WriteString(")")
		if len(n.Attrs) > 0 {
			parts := make([]string, 0, len(n.Attrs))
			for _, k := range n.Attrs.Keys() {
				parts = append(parts, fmt.Sprintf("%s=%v", k, n.Attrs[k]))
			}
			b.WriteString("{" + strings.Join(parts, ", ") + "}")
		}
	case *Function:
		b.WriteString("fn")
		p.fnSig(b, n, depth)
	case *Let:
		b.WriteString("let %" + p.varName(n.Bound) + " = ")
		p.expr(b, n.Value, depth)
		b.WriteString(";\n")
		indent(b, depth)
		p.expr(b, n.Body, depth)
	case *If:
		b.WriteString("if (")
		p.expr(b, n.Cond, depth)
		b.WriteString(") {\n")
		indent(b, depth+1)
		p.expr(b, n.Then, depth+1)
		b.WriteString("\n")
		indent(b, depth)
		b.WriteString("} else {\n")
		indent(b, depth+1)
		p.expr(b, n.Else, depth+1)
		b.WriteString("\n")
		indent(b, depth)
		b.WriteString("}")
	case *Tuple:
		b.WriteString("(")
		for i, fld := range n.Fields {
			if i > 0 {
				b.WriteString(", ")
			}
			p.expr(b, fld, depth)
		}
		b.WriteString(")")
	case *TupleGet:
		p.expr(b, n.Tuple, depth)
		b.WriteString(fmt.Sprintf(".%d", n.Index))
	case *Match:
		b.WriteString("match (")
		p.expr(b, n.Data, depth)
		b.WriteString(") {\n")
		for _, c := range n.Clauses {
			indent(b, depth+1)
			p.pattern(b, c.Pattern)
			b.WriteString(" => ")
			p.expr(b, c.Body, depth+1)
			b.WriteString("\n")
		}
		indent(b, depth)
		b.WriteString("}")
	default:
		b.WriteString(fmt.Sprintf("<%T>", e))
	}
}

func (p *printer) pattern(b *strings.Builder, pat *Pattern) {
	switch pat.Kind {
	case PatWildcard:
		b.WriteString("_")
	case PatVar:
		b.WriteString("%" + p.varName(pat.Var))
	case PatCtor:
		b.WriteString(pat.Ctor.Name)
		if len(pat.Sub) > 0 {
			b.WriteString("(")
			for i, s := range pat.Sub {
				if i > 0 {
					b.WriteString(", ")
				}
				p.pattern(b, s)
			}
			b.WriteString(")")
		}
	}
}
