// Package ir implements the Relay-style functional intermediate
// representation that Nimble's compiler manipulates: tensor-typed
// expressions with let-binding, control flow, tuples, closures, and
// algebraic data types, plus the paper's dynamic extensions — tensor types
// with statically unknown (Any) dimensions (§4.1), runtime shape functions
// (§4.2), and the explicit-allocation dialect used by memory planning
// (§4.3) and device placement (§4.4).
package ir

import (
	"fmt"
	"strings"

	"nimble/internal/tensor"
)

// DimAny is the sentinel value of a Dim whose extent is unknown at compile
// time — the paper's special Any dimension.
const DimAny = -1

// Dim is one dimension of a tensor type: either a concrete non-negative
// extent or Any. An Any dimension may carry a symbolic identity (Sym > 0);
// two Any dims with equal Sym are known to be identically sized even though
// the size itself is unknown. This identity is what the paper's "extra
// analysis on each Any dimension to detect if two Any dimensions point to an
// identically sized dimension" (§4.1) computes, and the codegen layer uses
// it to share residue-dispatch tables between kernels.
type Dim struct {
	// Value is the concrete extent, or DimAny.
	Value int
	// Sym is the symbolic identity class of an Any dim (0 = anonymous).
	Sym int
}

// StaticDim returns a concrete dimension.
func StaticDim(n int) Dim {
	if n < 0 {
		panic(fmt.Sprintf("ir: negative static dimension %d", n))
	}
	return Dim{Value: n}
}

// AnyDim returns an anonymous Any dimension.
func AnyDim() Dim { return Dim{Value: DimAny} }

// SymDim returns an Any dimension tagged with symbolic identity sym.
func SymDim(sym int) Dim { return Dim{Value: DimAny, Sym: sym} }

// IsAny reports whether the dimension is unknown at compile time.
func (d Dim) IsAny() bool { return d.Value == DimAny }

// Static returns the concrete extent, panicking on Any. Callers must check
// IsAny first; the panic indicates a compiler bug (using a dynamic dim where
// the pass pipeline guarantees a static one).
func (d Dim) Static() int {
	if d.IsAny() {
		panic("ir: Static() on Any dimension")
	}
	return d.Value
}

func (d Dim) String() string {
	if d.IsAny() {
		if d.Sym > 0 {
			return fmt.Sprintf("Any#%d", d.Sym)
		}
		return "Any"
	}
	return fmt.Sprintf("%d", d.Value)
}

// Equal reports structural equality. Anonymous Any dims compare equal to each
// other; symbolic Any dims compare by identity class.
func (d Dim) Equal(o Dim) bool { return d.Value == o.Value && d.Sym == o.Sym }

// Type is the interface implemented by all IR types.
type Type interface {
	isType()
	String() string
	// EqualType is structural type equality.
	EqualType(Type) bool
}

// TensorType is an n-dimensional tensor with (possibly dynamic) shape and a
// data type, e.g. Tensor[(1, 10, Any), float32].
type TensorType struct {
	Dims  []Dim
	DType tensor.DType
}

// TT builds a TensorType from int dims, where DimAny (-1) denotes Any.
func TT(dt tensor.DType, dims ...int) *TensorType {
	ds := make([]Dim, len(dims))
	for i, d := range dims {
		if d == DimAny {
			ds[i] = AnyDim()
		} else {
			ds[i] = StaticDim(d)
		}
	}
	return &TensorType{Dims: ds, DType: dt}
}

// ScalarType returns a rank-0 tensor type of the given dtype.
func ScalarType(dt tensor.DType) *TensorType { return &TensorType{DType: dt} }

// BoolType is the type of branch predicates.
func BoolType() *TensorType { return ScalarType(tensor.Bool) }

func (*TensorType) isType() {}

func (t *TensorType) String() string {
	parts := make([]string, len(t.Dims))
	for i, d := range t.Dims {
		parts[i] = d.String()
	}
	return fmt.Sprintf("Tensor[(%s), %s]", strings.Join(parts, ", "), t.DType)
}

// Rank returns the number of dimensions.
func (t *TensorType) Rank() int { return len(t.Dims) }

// IsStatic reports whether every dimension is concrete.
func (t *TensorType) IsStatic() bool {
	for _, d := range t.Dims {
		if d.IsAny() {
			return false
		}
	}
	return true
}

// StaticShape converts a fully static type to a concrete tensor.Shape.
func (t *TensorType) StaticShape() (tensor.Shape, bool) {
	out := make(tensor.Shape, len(t.Dims))
	for i, d := range t.Dims {
		if d.IsAny() {
			return nil, false
		}
		out[i] = d.Value
	}
	return out, true
}

// NumElementsUpperBound returns the element count if static; for dynamic
// types it returns (0, false). Memory planning uses it to decide between
// static pre-allocation and runtime shape-function-driven allocation.
func (t *TensorType) NumElementsUpperBound() (int, bool) {
	s, ok := t.StaticShape()
	if !ok {
		return 0, false
	}
	return s.NumElements(), true
}

func (t *TensorType) EqualType(o Type) bool {
	ot, ok := o.(*TensorType)
	if !ok || ot.DType != t.DType || len(ot.Dims) != len(t.Dims) {
		return false
	}
	for i := range t.Dims {
		if !t.Dims[i].Equal(ot.Dims[i]) {
			return false
		}
	}
	return true
}

// AssignableTo implements the paper's sub-shaping (§4.1): a value of type t
// may flow into a context expecting type o when t is at least as specific —
// every dimension of o is either Any or equal to t's dimension. This lets
// precisely shaped values pass where less specific shapes are required,
// limiting the contamination of Any.
func (t *TensorType) AssignableTo(o Type) bool {
	ot, ok := o.(*TensorType)
	if !ok || ot.DType != t.DType || len(ot.Dims) != len(t.Dims) {
		return false
	}
	for i := range t.Dims {
		if ot.Dims[i].IsAny() {
			continue // less specific context accepts anything
		}
		if t.Dims[i].IsAny() || t.Dims[i].Value != ot.Dims[i].Value {
			return false
		}
	}
	return true
}

// TupleType is the type of a fixed-arity tuple.
type TupleType struct {
	Fields []Type
}

func (*TupleType) isType() {}

func (t *TupleType) String() string {
	parts := make([]string, len(t.Fields))
	for i, f := range t.Fields {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func (t *TupleType) EqualType(o Type) bool {
	ot, ok := o.(*TupleType)
	if !ok || len(ot.Fields) != len(t.Fields) {
		return false
	}
	for i := range t.Fields {
		if !t.Fields[i].EqualType(ot.Fields[i]) {
			return false
		}
	}
	return true
}

// FuncType is the type of a function or closure.
type FuncType struct {
	Params []Type
	Ret    Type
}

func (*FuncType) isType() {}

func (t *FuncType) String() string {
	parts := make([]string, len(t.Params))
	for i, p := range t.Params {
		parts[i] = p.String()
	}
	return fmt.Sprintf("fn(%s) -> %s", strings.Join(parts, ", "), t.Ret)
}

func (t *FuncType) EqualType(o Type) bool {
	ot, ok := o.(*FuncType)
	if !ok || len(ot.Params) != len(t.Params) {
		return false
	}
	for i := range t.Params {
		if !t.Params[i].EqualType(ot.Params[i]) {
			return false
		}
	}
	return t.Ret.EqualType(ot.Ret)
}

// ADTType references an algebraic data type declared in the module, e.g. the
// Tree type Tree-LSTM recurses over.
type ADTType struct {
	Def *TypeDef
}

func (*ADTType) isType() {}

func (t *ADTType) String() string { return t.Def.Name }

func (t *ADTType) EqualType(o Type) bool {
	ot, ok := o.(*ADTType)
	return ok && ot.Def == t.Def
}

// StorageType is the type of a raw storage region produced by
// alloc_storage in the explicit-allocation dialect (§4.3).
type StorageType struct{}

func (*StorageType) isType() {}

func (t *StorageType) String() string { return "Storage" }

func (t *StorageType) EqualType(o Type) bool {
	_, ok := o.(*StorageType)
	return ok
}
