package ir

// Visit walks the expression tree in pre-order, calling f on every node.
// When f returns false the node's children are skipped.
func Visit(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch n := e.(type) {
	case *Call:
		Visit(n.Callee, f)
		for _, a := range n.Args {
			Visit(a, f)
		}
	case *Function:
		for _, p := range n.Params {
			Visit(p, f)
		}
		Visit(n.Body, f)
	case *Let:
		Visit(n.Bound, f)
		Visit(n.Value, f)
		Visit(n.Body, f)
	case *If:
		Visit(n.Cond, f)
		Visit(n.Then, f)
		Visit(n.Else, f)
	case *Tuple:
		for _, fld := range n.Fields {
			Visit(fld, f)
		}
	case *TupleGet:
		Visit(n.Tuple, f)
	case *Match:
		Visit(n.Data, f)
		for _, c := range n.Clauses {
			Visit(c.Body, f)
		}
	}
}

// Rewrite rebuilds the expression tree bottom-up, replacing each node with
// f(node-with-rewritten-children). Nodes are freshly allocated only when a
// child changed, so untouched subtrees are shared. Checked types are copied
// onto rebuilt nodes because structurally identical rewrites preserve types;
// passes that change types must re-run inference.
func Rewrite(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	var out Expr
	switch n := e.(type) {
	case *Var, *GlobalVar, *Constant, *OpRef, *CtorRef:
		out = n
	case *Call:
		callee := Rewrite(n.Callee, f)
		args := make([]Expr, len(n.Args))
		changed := callee != n.Callee
		for i, a := range n.Args {
			args[i] = Rewrite(a, f)
			changed = changed || args[i] != a
		}
		if changed {
			c := &Call{Callee: callee, Args: args, Attrs: n.Attrs}
			c.SetCheckedType(n.CheckedType())
			out = c
		} else {
			out = n
		}
	case *Function:
		body := Rewrite(n.Body, f)
		if body != n.Body {
			fn := &Function{Params: n.Params, Body: body, RetAnn: n.RetAnn}
			fn.SetCheckedType(n.CheckedType())
			out = fn
		} else {
			out = n
		}
	case *Let:
		value := Rewrite(n.Value, f)
		body := Rewrite(n.Body, f)
		if value != n.Value || body != n.Body {
			l := &Let{Bound: n.Bound, Value: value, Body: body}
			l.SetCheckedType(n.CheckedType())
			out = l
		} else {
			out = n
		}
	case *If:
		cond := Rewrite(n.Cond, f)
		then := Rewrite(n.Then, f)
		els := Rewrite(n.Else, f)
		if cond != n.Cond || then != n.Then || els != n.Else {
			i := &If{Cond: cond, Then: then, Else: els}
			i.SetCheckedType(n.CheckedType())
			out = i
		} else {
			out = n
		}
	case *Tuple:
		fields := make([]Expr, len(n.Fields))
		changed := false
		for i, fld := range n.Fields {
			fields[i] = Rewrite(fld, f)
			changed = changed || fields[i] != fld
		}
		if changed {
			t := &Tuple{Fields: fields}
			t.SetCheckedType(n.CheckedType())
			out = t
		} else {
			out = n
		}
	case *TupleGet:
		tup := Rewrite(n.Tuple, f)
		if tup != n.Tuple {
			tg := &TupleGet{Tuple: tup, Index: n.Index}
			tg.SetCheckedType(n.CheckedType())
			out = tg
		} else {
			out = n
		}
	case *Match:
		data := Rewrite(n.Data, f)
		clauses := make([]*Clause, len(n.Clauses))
		changed := data != n.Data
		for i, c := range n.Clauses {
			body := Rewrite(c.Body, f)
			if body != c.Body {
				clauses[i] = &Clause{Pattern: c.Pattern, Body: body}
				changed = true
			} else {
				clauses[i] = c
			}
		}
		if changed {
			m := &Match{Data: data, Clauses: clauses}
			m.SetCheckedType(n.CheckedType())
			out = m
		} else {
			out = n
		}
	default:
		out = n
	}
	return f(out)
}

// FreeVars returns the free variables of e in first-use order.
func FreeVars(e Expr) []*Var {
	bound := map[*Var]bool{}
	seen := map[*Var]bool{}
	var out []*Var
	var walk func(Expr)
	walk = func(x Expr) {
		switch n := x.(type) {
		case nil:
		case *Var:
			if !bound[n] && !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		case *Function:
			saved := snapshot(bound, n.Params)
			walk(n.Body)
			restore(bound, n.Params, saved)
		case *Let:
			walk(n.Value)
			was := bound[n.Bound]
			bound[n.Bound] = true
			walk(n.Body)
			bound[n.Bound] = was
		case *Call:
			walk(n.Callee)
			for _, a := range n.Args {
				walk(a)
			}
		case *If:
			walk(n.Cond)
			walk(n.Then)
			walk(n.Else)
		case *Tuple:
			for _, fld := range n.Fields {
				walk(fld)
			}
		case *TupleGet:
			walk(n.Tuple)
		case *Match:
			walk(n.Data)
			for _, c := range n.Clauses {
				vars := c.Pattern.BoundVars()
				saved := snapshot(bound, vars)
				walk(c.Body)
				restore(bound, vars, saved)
			}
		}
	}
	walk(e)
	return out
}

func snapshot(bound map[*Var]bool, vars []*Var) []bool {
	saved := make([]bool, len(vars))
	for i, v := range vars {
		saved[i] = bound[v]
		bound[v] = true
	}
	return saved
}

func restore(bound map[*Var]bool, vars []*Var, saved []bool) {
	for i, v := range vars {
		bound[v] = saved[i]
	}
}

// CountNodes returns the number of expression nodes, a cheap size metric
// used by pass statistics and tests.
func CountNodes(e Expr) int {
	n := 0
	Visit(e, func(Expr) bool {
		n++
		return true
	})
	return n
}
