package kernels

import (
	"math/rand"
	"testing"

	"nimble/internal/tensor"
)

// The destination-passing contract that makes memory planning pay (§4.3):
// when the caller hands a hot-path kernel a planned output buffer of the
// right dtype and shape, the kernel performs zero heap allocations. These
// tests are the regression fence — a future change that quietly reintroduces
// a per-invocation allocation (a materialized shape, an alloc+copy fallback)
// fails here immediately.

func fill(t *tensor.Tensor, v float64) *tensor.Tensor { t.Fill(v); return t }

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if n := testing.AllocsPerRun(100, f); n != 0 {
		t.Errorf("%s: %v allocs/op with a planned destination, want 0", name, n)
	}
}

func TestDenseKernelsZeroAlloc(t *testing.T) {
	a := fill(tensor.New(tensor.Float32, 13, 32), 0.5) // odd rows: exercises the residue epilogue
	b := fill(tensor.New(tensor.Float32, 32, 24), 0.25)
	out := tensor.New(tensor.Float32, 13, 24)
	assertZeroAllocs(t, "MatMulInto", func() { MatMulInto(a, b, out) })
	assertZeroAllocs(t, "MatMulStatic", func() { MatMulStatic(a, b, out) })
}

func TestElementwiseKernelsZeroAlloc(t *testing.T) {
	x := fill(tensor.New(tensor.Float32, 4, 64), 0.5)
	y := fill(tensor.New(tensor.Float32, 4, 64), 2)
	bias := fill(tensor.New(tensor.Float32, 64), 1)
	scalar := fill(tensor.New(tensor.Float32, 1), 3)
	out := tensor.New(tensor.Float32, 4, 64)
	assertZeroAllocs(t, "AddInto/same-shape", func() { AddInto(x, y, out) })
	assertZeroAllocs(t, "AddInto/bias", func() { AddInto(x, bias, out) })
	assertZeroAllocs(t, "MulInto/scalar", func() { MulInto(x, scalar, out) })
	assertZeroAllocs(t, "SigmoidInto", func() { SigmoidInto(x, out) })
	assertZeroAllocs(t, "TanhInto", func() { TanhInto(x, out) })
	assertZeroAllocs(t, "ReluInto", func() { ReluInto(x, out) })
	assertZeroAllocs(t, "GeluInto", func() { GeluInto(x, out) })
}

func TestReduceKernelsZeroAlloc(t *testing.T) {
	x := fill(tensor.New(tensor.Float32, 8, 32), 0.5)
	gamma := fill(tensor.New(tensor.Float32, 32), 1)
	beta := tensor.New(tensor.Float32, 32)
	rowOut := tensor.New(tensor.Float32, 8)
	keepOut := tensor.New(tensor.Float32, 8, 1)
	fullOut := tensor.New(tensor.Float32, 8, 32)
	assertZeroAllocs(t, "SumInto", func() { SumInto(x, rowOut, -1, false) })
	assertZeroAllocs(t, "SumInto/keepdims", func() { SumInto(x, keepOut, -1, true) })
	assertZeroAllocs(t, "MeanInto", func() { MeanInto(x, rowOut, -1, false) })
	assertZeroAllocs(t, "MaxInto", func() { MaxInto(x, rowOut, -1, false) })
	argOut := tensor.New(tensor.Int64, 8)
	assertZeroAllocs(t, "ArgMaxInto", func() { ArgMaxInto(x, argOut, -1) })
	assertZeroAllocs(t, "SoftmaxInto", func() { SoftmaxInto(x, fullOut) })
	assertZeroAllocs(t, "LayerNormInto", func() { LayerNormInto(x, gamma, beta, fullOut, 1e-5) })
}

func TestConvKernelsZeroAlloc(t *testing.T) {
	in := fill(tensor.New(tensor.Float32, 1, 2, 8, 8), 0.5)
	w := fill(tensor.New(tensor.Float32, 3, 2, 3, 3), 0.25)
	convOut := tensor.New(tensor.Float32, 1, 3, 8, 8) // stride 1, pad 1 preserves 8x8
	assertZeroAllocs(t, "Conv2DInto", func() { Conv2DInto(in, w, convOut, 1, 1) })
	poolOut := tensor.New(tensor.Float32, 1, 2, 4, 4)
	assertZeroAllocs(t, "MaxPool2DInto", func() { MaxPool2DInto(in, poolOut, 2, 2) })
	gOut := tensor.New(tensor.Float32, 1, 2)
	assertZeroAllocs(t, "GlobalAvgPool2DInto", func() { GlobalAvgPool2DInto(in, gOut) })
	sOut := tensor.New(tensor.Float32, 1, 2, 8, 4)
	assertZeroAllocs(t, "SliceInto", func() { SliceInto(in, sOut, 3, 0, 4) })
}

// Above parallelThreshold the element-wise loops shard onto the worker
// pool; the results must be identical to the serial path. This is also the
// test that puts the pool-sharded kernels under `go test -race`.
func TestParallelElementwiseMatchesSerial(t *testing.T) {
	n := 2 * parallelThreshold
	a := tensor.New(tensor.Float32, n)
	b := tensor.New(tensor.Float32, n)
	for i := 0; i < n; i++ {
		a.F32()[i] = float32(i%13) * 0.5
		b.F32()[i] = float32(i % 7)
	}
	scalar := fill(tensor.New(tensor.Float32, 1), 0.25)
	bias := fill(tensor.New(tensor.Float32, n), 1) // rank-1 bias over a [2, n] matrix
	mat := tensor.New(tensor.Float32, 2, n)
	copy(mat.F32()[:n], a.F32())
	copy(mat.F32()[n:], b.F32())
	out := tensor.New(tensor.Float32, n)
	check := func(name string, got *tensor.Tensor, want func(i int) float32) {
		t.Helper()
		for j := 0; j < n; j++ {
			if got.F32()[j] != want(j) {
				t.Fatalf("%s: parallel result diverges at %d", name, j)
			}
		}
	}
	check("add", AddInto(a, b, out), func(i int) float32 { return a.F32()[i] + b.F32()[i] })
	check("mul-scalar", MulInto(a, scalar, out), func(i int) float32 { return a.F32()[i] * 0.25 })
	check("neg", NegInto(a, out), func(i int) float32 { return -a.F32()[i] })
	biased := AddInto(mat, bias, tensor.New(tensor.Float32, 2, n))
	for j := 0; j < 2*n; j++ {
		if biased.F32()[j] != mat.F32()[j]+1 {
			t.Fatalf("parallel bias diverges at %d", j)
		}
	}
}

// Zero-width shapes are legal empty dynamic results (e.g. a slice with
// begin == end); the bias fast path must not divide by the zero-sized last
// dimension.
func TestBinaryOpEmptyTensors(t *testing.T) {
	a := tensor.New(tensor.Float32, 3, 0)
	b := tensor.New(tensor.Float32, 0)
	got := Add(a, b)
	if !got.Shape().Equal(tensor.Shape{3, 0}) || got.NumElements() != 0 {
		t.Errorf("empty add produced %v", got.Shape())
	}
	out := tensor.New(tensor.Float32, 3, 0)
	if got := AddInto(a, b, out); got != out {
		t.Error("empty AddInto ignored a matching destination")
	}
}

// Into kernels must still be correct when the destination does not match:
// they fall back to allocation and return the precise result.
func TestIntoKernelsFallbackOnMismatch(t *testing.T) {
	a := fill(tensor.New(tensor.Float32, 4, 8), 1)
	b := fill(tensor.New(tensor.Float32, 4, 8), 2)
	wrong := tensor.New(tensor.Float32, 3, 3)
	got := AddInto(a, b, wrong)
	if got == wrong {
		t.Fatal("AddInto wrote a mismatched destination")
	}
	if !got.Shape().Equal(tensor.Shape{4, 8}) || got.F32()[0] != 3 {
		t.Errorf("AddInto fallback produced %v", got)
	}
	if got := MatMulInto(a, tensor.New(tensor.Float32, 8, 2), wrong); got == wrong || !got.Shape().Equal(tensor.Shape{4, 2}) {
		t.Errorf("MatMulInto fallback produced %v", got.Shape())
	}
}

// Into kernels must agree with their allocating counterparts.
func TestIntoKernelsMatchAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := tensor.Random(rng, 1, 7, 33)
	b := tensor.Random(rng, 1, 7, 33)
	bias := tensor.Random(rng, 1, 33)
	cases := []struct {
		name string
		ref  func() *tensor.Tensor
		into func(out *tensor.Tensor) *tensor.Tensor
	}{
		{"add", func() *tensor.Tensor { return Add(a, b) }, func(o *tensor.Tensor) *tensor.Tensor { return AddInto(a, b, o) }},
		{"bias", func() *tensor.Tensor { return Add(a, bias) }, func(o *tensor.Tensor) *tensor.Tensor { return AddInto(a, bias, o) }},
		{"tanh", func() *tensor.Tensor { return Tanh(a) }, func(o *tensor.Tensor) *tensor.Tensor { return TanhInto(a, o) }},
		{"softmax", func() *tensor.Tensor { return Softmax(a) }, func(o *tensor.Tensor) *tensor.Tensor { return SoftmaxInto(a, o) }},
		{"sum", func() *tensor.Tensor { return Sum(a, -1, false) }, func(o *tensor.Tensor) *tensor.Tensor { return SumInto(a, o, -1, false) }},
	}
	for _, c := range cases {
		want := c.ref()
		out := tensor.New(tensor.Float32, want.Shape()...)
		got := c.into(out)
		if got != out {
			t.Errorf("%s: Into ignored a matching destination", c.name)
		}
		if !got.AllClose(want, 1e-6, 1e-6) {
			t.Errorf("%s: Into result diverges from allocating kernel", c.name)
		}
	}
}
