package kernels

import (
	"fmt"

	"nimble/internal/tensor"
)

// Conv2D computes a 2-D convolution in NCHW layout: input [n, cIn, h, w],
// weight [cOut, cIn, kh, kw], with symmetric padding and stride. It is the
// workhorse for the computer-vision graphs of the §6.3 memory-footprint
// study; the implementation favors clarity since those experiments measure
// allocation behavior, not conv throughput.
func Conv2D(in, weight *tensor.Tensor, stride, pad int) *tensor.Tensor {
	return Conv2DInto(in, weight, nil, stride, pad)
}

// Conv2DInto is Conv2D writing into out when it matches the NCHW result.
func Conv2DInto(in, weight, out *tensor.Tensor, stride, pad int) *tensor.Tensor {
	if in.Rank() != 4 || weight.Rank() != 4 {
		panic(fmt.Sprintf("kernels: conv2d requires rank-4 input/weight, got %v / %v", in.Shape(), weight.Shape()))
	}
	n, cIn, h, w := in.Shape()[0], in.Shape()[1], in.Shape()[2], in.Shape()[3]
	cOut, cInW, kh, kw := weight.Shape()[0], weight.Shape()[1], weight.Shape()[2], weight.Shape()[3]
	if cIn != cInW {
		panic(fmt.Sprintf("kernels: conv2d channel mismatch: input %d vs weight %d", cIn, cInW))
	}
	oh, ow := Conv2DOutDims(h, w, kh, kw, stride, pad)
	if !fits(out, tensor.Float32, n, cOut, oh, ow) {
		out = tensor.New(tensor.Float32, n, cOut, oh, ow)
	}
	iv, wv, ov := in.F32(), weight.F32(), out.F32()
	for b := 0; b < n; b++ {
		for co := 0; co < cOut; co++ {
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc float32
					for ci := 0; ci < cIn; ci++ {
						for ky := 0; ky < kh; ky++ {
							iy := oy*stride + ky - pad
							if iy < 0 || iy >= h {
								continue
							}
							inRow := iv[((b*cIn+ci)*h+iy)*w:]
							wRow := wv[((co*cIn+ci)*kh+ky)*kw:]
							for kx := 0; kx < kw; kx++ {
								ix := ox*stride + kx - pad
								if ix < 0 || ix >= w {
									continue
								}
								acc += inRow[ix] * wRow[kx]
							}
						}
					}
					ov[((b*cOut+co)*oh+oy)*ow+ox] = acc
				}
			}
		}
	}
	return out
}

// Conv2DOutDims returns the spatial output dimensions of a convolution or
// pooling window; it backs the data-independent shape function for conv2d.
func Conv2DOutDims(h, w, kh, kw, stride, pad int) (oh, ow int) {
	oh = (h+2*pad-kh)/stride + 1
	ow = (w+2*pad-kw)/stride + 1
	if oh < 0 {
		oh = 0
	}
	if ow < 0 {
		ow = 0
	}
	return oh, ow
}

// MaxPool2D applies kxk max pooling with the given stride in NCHW layout.
func MaxPool2D(in *tensor.Tensor, k, stride int) *tensor.Tensor {
	return pool2D(in, nil, k, stride, true)
}

// MaxPool2DInto is MaxPool2D writing into out when it matches.
func MaxPool2DInto(in, out *tensor.Tensor, k, stride int) *tensor.Tensor {
	return pool2D(in, out, k, stride, true)
}

// AvgPool2D applies kxk average pooling with the given stride in NCHW layout.
func AvgPool2D(in *tensor.Tensor, k, stride int) *tensor.Tensor {
	return pool2D(in, nil, k, stride, false)
}

// AvgPool2DInto is AvgPool2D writing into out when it matches.
func AvgPool2DInto(in, out *tensor.Tensor, k, stride int) *tensor.Tensor {
	return pool2D(in, out, k, stride, false)
}

func pool2D(in, out *tensor.Tensor, k, stride int, isMax bool) *tensor.Tensor {
	if in.Rank() != 4 {
		panic(fmt.Sprintf("kernels: pool2d requires rank-4 input, got %v", in.Shape()))
	}
	n, c, h, w := in.Shape()[0], in.Shape()[1], in.Shape()[2], in.Shape()[3]
	oh, ow := Conv2DOutDims(h, w, k, k, stride, 0)
	if !fits(out, tensor.Float32, n, c, oh, ow) {
		out = tensor.New(tensor.Float32, n, c, oh, ow)
	}
	iv, ov := in.F32(), out.F32()
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var acc float32
					if isMax {
						acc = iv[base+(oy*stride)*w+ox*stride]
					}
					for ky := 0; ky < k; ky++ {
						for kx := 0; kx < k; kx++ {
							v := iv[base+(oy*stride+ky)*w+(ox*stride+kx)]
							if isMax {
								if v > acc {
									acc = v
								}
							} else {
								acc += v
							}
						}
					}
					if !isMax {
						acc /= float32(k * k)
					}
					ov[((b*c+ch)*oh+oy)*ow+ox] = acc
				}
			}
		}
	}
	return out
}

// GlobalAvgPool2D reduces each channel's spatial plane to its mean, producing
// [n, c] from [n, c, h, w].
func GlobalAvgPool2D(in *tensor.Tensor) *tensor.Tensor {
	return GlobalAvgPool2DInto(in, nil)
}

// GlobalAvgPool2DInto is GlobalAvgPool2D writing into out when it matches.
func GlobalAvgPool2DInto(in, out *tensor.Tensor) *tensor.Tensor {
	if in.Rank() != 4 {
		panic(fmt.Sprintf("kernels: global pool requires rank-4 input, got %v", in.Shape()))
	}
	n, c, h, w := in.Shape()[0], in.Shape()[1], in.Shape()[2], in.Shape()[3]
	if !fits(out, tensor.Float32, n, c) {
		out = tensor.New(tensor.Float32, n, c)
	}
	iv, ov := in.F32(), out.F32()
	area := float32(h * w)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			base := (b*c + ch) * h * w
			var acc float32
			for i := 0; i < h*w; i++ {
				acc += iv[base+i]
			}
			ov[b*c+ch] = acc / area
		}
	}
	return out
}
