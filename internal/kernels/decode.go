package kernels

import (
	"fmt"
	"math"

	"nimble/internal/tensor"
)

// This file implements the kernels behind autoregressive decoding: the
// KV-cache append (the loop-carried mutable buffer of the decoder models),
// single-query attention over a cached prefix, and deterministic token
// sampling. The append kernel is the in-place member of the family: the
// memory planner routes the cache buffer itself as the destination of its
// invoke_mut, so CacheAppendInto recognizes the aliased case and writes one
// row without touching the other M-1.

// cacheRow validates a (cache, row, pos) triple and returns the row extent
// and the write position.
func cacheRow(cache, row, pos *tensor.Tensor) (rowSize int, at int, err error) {
	if cache.DType() != row.DType() {
		return 0, 0, fmt.Errorf("kernels: cache_append dtype mismatch: cache %v, row %v", cache.DType(), row.DType())
	}
	if pos.DType() != tensor.Int64 || pos.NumElements() != 1 {
		return 0, 0, fmt.Errorf("kernels: cache_append position must be a single int64, got %v %v", pos.DType(), pos.Shape())
	}
	cs := cache.Shape()
	if cs.Rank() == 0 || cs[0] == 0 {
		return 0, 0, fmt.Errorf("kernels: cache_append cache must have a non-empty leading axis, got %v", cs)
	}
	rowSize = cache.NumElements() / cs[0]
	if row.NumElements() != rowSize {
		return 0, 0, fmt.Errorf("kernels: cache_append row has %d elements, cache rows have %d", row.NumElements(), rowSize)
	}
	at = int(pos.I64()[0])
	if at < 0 || at >= cs[0] {
		return 0, 0, fmt.Errorf("kernels: cache_append position %d out of range [0, %d)", at, cs[0])
	}
	return rowSize, at, nil
}

// CacheAppend is the pure (eager-reference) form: a copy of the cache with
// row written at position pos along axis 0.
func CacheAppend(cache, row, pos *tensor.Tensor) (*tensor.Tensor, error) {
	out := cache.Clone()
	if _, err := cacheAppendInto(cache, row, pos, out); err != nil {
		return nil, err
	}
	return out, nil
}

// CacheAppendInto writes row into out at position pos. When out aliases the
// cache (the planner's in-place routing), only the target row is written;
// otherwise the rest of the cache is copied over first.
func CacheAppendInto(cache, row, pos, out *tensor.Tensor) (*tensor.Tensor, error) {
	if out == nil || out.DType() != cache.DType() || out.NumElements() != cache.NumElements() {
		return CacheAppend(cache, row, pos)
	}
	return cacheAppendInto(cache, row, pos, out)
}

func cacheAppendInto(cache, row, pos, out *tensor.Tensor) (*tensor.Tensor, error) {
	rowSize, at, err := cacheRow(cache, row, pos)
	if err != nil {
		return nil, err
	}
	switch cache.DType() {
	case tensor.Float32:
		cv, ov := cache.F32(), out.F32()
		if &cv[0] != &ov[0] {
			copy(ov, cv)
		}
		copy(ov[at*rowSize:(at+1)*rowSize], row.F32())
	case tensor.Int64:
		cv, ov := cache.I64(), out.I64()
		if &cv[0] != &ov[0] {
			copy(ov, cv)
		}
		copy(ov[at*rowSize:(at+1)*rowSize], row.I64())
	default:
		return nil, fmt.Errorf("kernels: cache_append does not support dtype %v", cache.DType())
	}
	return out, nil
}

// AttnCached computes single-query multi-head attention of q over the first
// `length` rows of the key/value caches: softmax(q·Kᵀ/√d_head)·V per head.
func AttnCached(q, k, v, length *tensor.Tensor, heads int) (*tensor.Tensor, error) {
	out := tensor.New(q.DType(), q.Shape()...)
	return AttnCachedInto(q, k, v, length, heads, out)
}

// AttnCachedInto is the destination-passing form of AttnCached.
func AttnCachedInto(q, k, v, length *tensor.Tensor, heads int, out *tensor.Tensor) (*tensor.Tensor, error) {
	if q.DType() != tensor.Float32 {
		return nil, fmt.Errorf("kernels: attn_cached requires float32, got %v", q.DType())
	}
	d := q.NumElements()
	ks, vs := k.Shape(), v.Shape()
	if ks.Rank() != 2 || vs.Rank() != 2 || ks[1] != d || vs[1] != d || ks[0] != vs[0] {
		return nil, fmt.Errorf("kernels: attn_cached cache shapes %v/%v incompatible with query width %d", ks, vs, d)
	}
	if heads <= 0 || d%heads != 0 {
		return nil, fmt.Errorf("kernels: attn_cached width %d not divisible by %d heads", d, heads)
	}
	n := int(length.I64()[0])
	if n <= 0 || n > ks[0] {
		return nil, fmt.Errorf("kernels: attn_cached length %d out of range (0, %d]", n, ks[0])
	}
	if out == nil || out.DType() != q.DType() || out.NumElements() != d {
		out = tensor.New(q.DType(), q.Shape()...)
	}
	hd := d / heads
	scale := 1 / math.Sqrt(float64(hd))
	qv, kv, vv, ov := q.F32(), k.F32(), v.F32(), out.F32()
	scores := make([]float64, n)
	for h := 0; h < heads; h++ {
		off := h * hd
		maxS := math.Inf(-1)
		for j := 0; j < n; j++ {
			var dot float64
			krow := kv[j*d+off : j*d+off+hd]
			qh := qv[off : off+hd]
			for i, x := range qh {
				dot += float64(x) * float64(krow[i])
			}
			scores[j] = dot * scale
			if scores[j] > maxS {
				maxS = scores[j]
			}
		}
		var sum float64
		for j := 0; j < n; j++ {
			scores[j] = math.Exp(scores[j] - maxS)
			sum += scores[j]
		}
		oh := ov[off : off+hd]
		for i := range oh {
			oh[i] = 0
		}
		for j := 0; j < n; j++ {
			p := float32(scores[j] / sum)
			vrow := vv[j*d+off : j*d+off+hd]
			for i, x := range vrow {
				oh[i] += p * x
			}
		}
	}
	return out, nil
}

// splitmix64 is the deterministic per-position random source for sampled
// decoding (the same generator internal/faults uses for schedules).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SampleToken picks the next token id from a logits row. temp <= 0 is
// greedy argmax (ties to the lowest id); temp > 0 samples the
// softmax(logits/temp) distribution using splitmix64(seed ^ pos), so a
// (seed, position) pair always yields the same token.
func SampleToken(logits, pos *tensor.Tensor, temp float64, seed int64) (*tensor.Tensor, error) {
	if logits.DType() != tensor.Float32 || logits.NumElements() == 0 {
		return nil, fmt.Errorf("kernels: sample_token requires non-empty float32 logits, got %v %v", logits.DType(), logits.Shape())
	}
	lv := logits.F32()
	var tok int64
	if temp <= 0 {
		best := lv[0]
		for i, x := range lv[1:] {
			if x > best {
				best = x
				tok = int64(i + 1)
			}
		}
	} else {
		p := int(pos.I64()[0])
		u := float64(splitmix64(uint64(seed)^uint64(p)*0x9e3779b97f4a7c15)>>11) / float64(1<<53)
		maxL := lv[0]
		for _, x := range lv[1:] {
			if x > maxL {
				maxL = x
			}
		}
		var sum float64
		ps := make([]float64, len(lv))
		for i, x := range lv {
			ps[i] = math.Exp((float64(x) - float64(maxL)) / temp)
			sum += ps[i]
		}
		target := u * sum
		var acc float64
		tok = int64(len(lv) - 1)
		for i, pi := range ps {
			acc += pi
			if acc > target {
				tok = int64(i)
				break
			}
		}
	}
	return tensor.FromI64([]int64{tok}, 1), nil
}
