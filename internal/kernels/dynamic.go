package kernels

import (
	"fmt"
	"sort"

	"nimble/internal/tensor"
)

// This file implements the operators the paper uses to motivate each shape
// function mode (§4.2): arange (data-dependent output shape), unique
// (data-dependent), and non-maximum suppression (upper-bound, where the
// kernel returns its true output size alongside the data so the runtime can
// slice the over-allocated buffer down to the precise shape).

// Arange produces [start, start+step, ...) < stop as a rank-1 float32
// tensor. The output length is a function of the *values* of its inputs,
// making its shape function data dependent.
func Arange(start, stop, step float32) *tensor.Tensor {
	n := ArangeLen(start, stop, step)
	out := tensor.New(tensor.Float32, n)
	v := start
	for i := 0; i < n; i++ {
		out.F32()[i] = v
		v += step
	}
	return out
}

// ArangeLen computes the output length of Arange; it is also the body of the
// registered data-dependent shape function for the arange operator.
func ArangeLen(start, stop, step float32) int {
	if step == 0 {
		panic("kernels: arange step must be non-zero")
	}
	n := 0
	if step > 0 {
		for v := start; v < stop; v += step {
			n++
		}
	} else {
		for v := start; v > stop; v += step {
			n++
		}
	}
	return n
}

// Unique returns the sorted distinct values of a rank-1 float32 tensor. Its
// output shape depends on the input *data*, the second data-dependent shape
// function example from §4.1.
func Unique(t *tensor.Tensor) *tensor.Tensor {
	if t.Rank() != 1 {
		panic(fmt.Sprintf("kernels: unique requires rank-1 input, got %v", t.Shape()))
	}
	vals := append([]float32{}, t.F32()...)
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	res := make([]float32, len(out))
	copy(res, out)
	return tensor.FromF32(res, len(res))
}

// NMSResult carries both the selected boxes and the true count: the paper's
// upper-bound shape functions "require such operators to return the output
// shape along with output value, so as to use the real shape to slice the
// output tensors into precise output shape" (§4.2).
type NMSResult struct {
	// Boxes is the over-allocated [maxBoxes, 5] buffer; only the first Count
	// rows are valid.
	Boxes *tensor.Tensor
	// Count is the number of boxes that survived suppression.
	Count int
}

// NMS performs greedy non-maximum suppression on boxes shaped [n, 5] with
// rows (score, x1, y1, x2, y2). Boxes with IoU above iouThreshold against an
// already-selected higher-scoring box are suppressed. The output buffer is
// allocated at the upper bound n; NMSResult.Count carries the precise size.
func NMS(boxes *tensor.Tensor, iouThreshold float32) NMSResult {
	if boxes.Rank() != 2 || boxes.Shape()[1] != 5 {
		panic(fmt.Sprintf("kernels: nms requires [n, 5] boxes, got %v", boxes.Shape()))
	}
	n := boxes.Shape()[0]
	bv := boxes.F32()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return bv[order[a]*5] > bv[order[b]*5] })

	out := tensor.New(tensor.Float32, n, 5) // upper-bound allocation
	selected := make([]int, 0, n)
	for _, cand := range order {
		keep := true
		for _, s := range selected {
			if iou(bv[cand*5+1:cand*5+5], bv[s*5+1:s*5+5]) > iouThreshold {
				keep = false
				break
			}
		}
		if keep {
			copy(out.F32()[len(selected)*5:], bv[cand*5:cand*5+5])
			selected = append(selected, cand)
		}
	}
	return NMSResult{Boxes: out, Count: len(selected)}
}

// SliceNMS converts an upper-bound NMS result into its precisely shaped
// tensor, the runtime step that follows every upper-bound shape function.
func SliceNMS(r NMSResult) *tensor.Tensor {
	return Slice(r.Boxes, 0, 0, r.Count)
}

func iou(a, b []float32) float32 {
	ax1, ay1, ax2, ay2 := a[0], a[1], a[2], a[3]
	bx1, by1, bx2, by2 := b[0], b[1], b[2], b[3]
	ix1, iy1 := maxF(ax1, bx1), maxF(ay1, by1)
	ix2, iy2 := minF(ax2, bx2), minF(ay2, by2)
	iw, ih := maxF(0, ix2-ix1), maxF(0, iy2-iy1)
	inter := iw * ih
	areaA := maxF(0, ax2-ax1) * maxF(0, ay2-ay1)
	areaB := maxF(0, bx2-bx1) * maxF(0, by2-by1)
	union := areaA + areaB - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

func maxF(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}
