package kernels

import (
	"fmt"
	"math"

	nrt "nimble/internal/runtime"
	"nimble/internal/tensor"
)

// parallelThreshold is the element count above which element-wise loops are
// sharded across the persistent worker pool. Below it the dispatch cost of
// even a resident pool exceeds the loop itself, so hot small-tensor kernels
// (an LSTM step's gates) stay serial and allocation-free.
const parallelThreshold = 1 << 15

// parallelGrain is the per-chunk iteration count for pooled loops.
const parallelGrain = 1 << 12

// intoOrAlloc returns out when it is a usable float32 destination of the
// given shape, and a fresh tensor otherwise. This is the destination-passing
// contract every *Into kernel follows: a planned buffer whose shape and
// dtype match the precise result is written in place; anything else (no
// buffer, or an upper-bound plan larger than the precise shape) falls back
// to allocation.
func intoOrAlloc(out *tensor.Tensor, dt tensor.DType, shape tensor.Shape) *tensor.Tensor {
	if out != nil && out.DType() == dt && out.Shape().Equal(shape) {
		return out
	}
	return tensor.New(dt, shape...)
}

// fits reports whether out is a usable destination of the given dtype and
// dims. The variadic dims never escape, so callers can test a destination
// without materializing a shape slice on the heap.
func fits(out *tensor.Tensor, dt tensor.DType, dims ...int) bool {
	if out == nil || out.DType() != dt || out.Rank() != len(dims) {
		return false
	}
	for i, d := range dims {
		if out.Shape()[i] != d {
			return false
		}
	}
	return true
}

// binaryOpInto applies f element-wise with NumPy broadcasting over float32
// tensors, writing into out when it matches the result shape. The fast
// paths derive the result shape without materializing it, so a
// destination-passing hit performs no heap allocation at all.
func binaryOpInto(name string, a, b, out *tensor.Tensor, f func(x, y float32) float32) *tensor.Tensor {
	if a.DType() != tensor.Float32 || b.DType() != tensor.Float32 {
		panic(fmt.Sprintf("kernels: %s requires float32 inputs, got %v and %v", name, a.DType(), b.DType()))
	}
	av, bv := a.F32(), b.F32()

	// Fast path: identical shapes, a dominant case in model graphs.
	if a.Shape().Equal(b.Shape()) {
		out = intoOrAlloc(out, tensor.Float32, a.Shape())
		ov := out.F32()
		if len(ov) >= parallelThreshold {
			nrt.Default().ParallelFor(len(ov), parallelGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					ov[i] = f(av[i], bv[i])
				}
			})
			return out
		}
		for i := range ov {
			ov[i] = f(av[i], bv[i])
		}
		return out
	}
	// Fast path: b is a scalar of rank <= a's — every b dim is 1, so the
	// broadcast result is exactly a's shape.
	if b.NumElements() == 1 && b.Rank() <= a.Rank() {
		out = intoOrAlloc(out, tensor.Float32, a.Shape())
		ov := out.F32()
		s := bv[0]
		if len(ov) >= parallelThreshold {
			nrt.Default().ParallelFor(len(ov), parallelGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					ov[i] = f(av[i], s)
				}
			})
			return out
		}
		for i := range ov {
			ov[i] = f(av[i], s)
		}
		return out
	}
	// Fast path: a is a scalar of rank <= b's.
	if a.NumElements() == 1 && a.Rank() <= b.Rank() {
		out = intoOrAlloc(out, tensor.Float32, b.Shape())
		ov := out.F32()
		s := av[0]
		if len(ov) >= parallelThreshold {
			nrt.Default().ParallelFor(len(ov), parallelGrain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					ov[i] = f(s, bv[i])
				}
			})
			return out
		}
		for i := range ov {
			ov[i] = f(s, bv[i])
		}
		return out
	}
	// Fast path: bias pattern — b is rank-1 matching a's last dimension
	// (dense outputs + bias vectors), so the result shape is a's. Runs
	// row-wise with no index arithmetic. n > 0 excludes zero-width shapes
	// (legal empty dynamic results), which take the general path.
	if n := b.NumElements(); n > 0 && b.Rank() == 1 && a.Rank() >= 1 && a.Shape()[a.Rank()-1] == n {
		out = intoOrAlloc(out, tensor.Float32, a.Shape())
		ov := out.F32()
		rows := len(av) / n
		if len(ov) >= parallelThreshold && rows > 1 {
			nrt.Default().ParallelFor(rows, maxInt(1, parallelGrain/n), func(lo, hi int) {
				biasRows(av, bv, ov, n, lo, hi, f)
			})
		} else {
			// The serial path calls a named function so no escaping closure
			// is materialized — keeps the hot bias kernel allocation-free.
			biasRows(av, bv, ov, n, 0, rows, f)
		}
		return out
	}
	// General broadcasting via stride-0 virtual strides.
	outShape, err := tensor.BroadcastShapes(a.Shape(), b.Shape())
	if err != nil {
		// This is the runtime type check deferred by the gradual typing of
		// Any dimensions (§4.1): incompatible concrete shapes surface here.
		panic(fmt.Sprintf("kernels: %s: %v", name, err))
	}
	out = intoOrAlloc(out, tensor.Float32, outShape)
	ov := out.F32()
	sa := broadcastStrides(a.Shape(), outShape)
	sb := broadcastStrides(b.Shape(), outShape)
	idx := make([]int, outShape.Rank())
	n := outShape.NumElements()
	for lin := 0; lin < n; lin++ {
		oa, ob := 0, 0
		for d := range idx {
			oa += idx[d] * sa[d]
			ob += idx[d] * sb[d]
		}
		ov[lin] = f(av[oa], bv[ob])
		for d := outShape.Rank() - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < outShape[d] {
				break
			}
			idx[d] = 0
		}
	}
	return out
}

// binaryOp is the allocating wrapper kept for callers without a planned
// destination.
func binaryOp(name string, a, b *tensor.Tensor, f func(x, y float32) float32) *tensor.Tensor {
	return binaryOpInto(name, a, b, nil, f)
}

// biasRows applies f(row-element, bias-element) over rows [lo, hi).
func biasRows(av, bv, ov []float32, n, lo, hi int, f func(x, y float32) float32) {
	for r := lo; r < hi; r++ {
		arow, orow := av[r*n:r*n+n], ov[r*n:r*n+n]
		for j, x := range arow {
			orow[j] = f(x, bv[j])
		}
	}
}

// broadcastStrides returns strides for shape `s` viewed as the broadcast
// shape `out`: broadcast (size-1 or missing) axes get stride 0.
func broadcastStrides(s, out tensor.Shape) []int {
	st := s.Strides()
	res := make([]int, out.Rank())
	offset := out.Rank() - s.Rank()
	for d := 0; d < out.Rank(); d++ {
		if d < offset {
			res[d] = 0
			continue
		}
		if s[d-offset] == 1 && out[d] != 1 {
			res[d] = 0
		} else {
			res[d] = st[d-offset]
		}
	}
	return res
}

func addScalar(x, y float32) float32 { return x + y }
func subScalar(x, y float32) float32 { return x - y }
func mulScalar(x, y float32) float32 { return x * y }
func divScalar(x, y float32) float32 { return x / y }
func maxScalar(x, y float32) float32 {
	if x > y {
		return x
	}
	return y
}
func minScalar(x, y float32) float32 {
	if x < y {
		return x
	}
	return y
}
func powScalar(x, y float32) float32 {
	return float32(math.Pow(float64(x), float64(y)))
}

// Add computes a+b with broadcasting.
func Add(a, b *tensor.Tensor) *tensor.Tensor { return binaryOp("add", a, b, addScalar) }

// AddInto computes a+b with broadcasting into out.
func AddInto(a, b, out *tensor.Tensor) *tensor.Tensor { return binaryOpInto("add", a, b, out, addScalar) }

// Sub computes a-b with broadcasting.
func Sub(a, b *tensor.Tensor) *tensor.Tensor { return binaryOp("sub", a, b, subScalar) }

// SubInto computes a-b with broadcasting into out.
func SubInto(a, b, out *tensor.Tensor) *tensor.Tensor { return binaryOpInto("sub", a, b, out, subScalar) }

// Mul computes a*b (element-wise) with broadcasting.
func Mul(a, b *tensor.Tensor) *tensor.Tensor { return binaryOp("mul", a, b, mulScalar) }

// MulInto computes a*b into out.
func MulInto(a, b, out *tensor.Tensor) *tensor.Tensor { return binaryOpInto("mul", a, b, out, mulScalar) }

// Div computes a/b with broadcasting.
func Div(a, b *tensor.Tensor) *tensor.Tensor { return binaryOp("div", a, b, divScalar) }

// DivInto computes a/b into out.
func DivInto(a, b, out *tensor.Tensor) *tensor.Tensor { return binaryOpInto("div", a, b, out, divScalar) }

// Maximum computes element-wise max(a, b) with broadcasting.
func Maximum(a, b *tensor.Tensor) *tensor.Tensor { return binaryOp("maximum", a, b, maxScalar) }

// MaximumInto computes element-wise max(a, b) into out.
func MaximumInto(a, b, out *tensor.Tensor) *tensor.Tensor {
	return binaryOpInto("maximum", a, b, out, maxScalar)
}

// Minimum computes element-wise min(a, b) with broadcasting.
func Minimum(a, b *tensor.Tensor) *tensor.Tensor { return binaryOp("minimum", a, b, minScalar) }

// MinimumInto computes element-wise min(a, b) into out.
func MinimumInto(a, b, out *tensor.Tensor) *tensor.Tensor {
	return binaryOpInto("minimum", a, b, out, minScalar)
}

// Power computes a^b element-wise with broadcasting.
func Power(a, b *tensor.Tensor) *tensor.Tensor { return binaryOp("power", a, b, powScalar) }

// PowerInto computes a^b into out.
func PowerInto(a, b, out *tensor.Tensor) *tensor.Tensor {
	return binaryOpInto("power", a, b, out, powScalar)
}

// unaryOpInto applies f element-wise to a float32 tensor, writing into out
// when it matches.
func unaryOpInto(name string, a, out *tensor.Tensor, f func(x float32) float32) *tensor.Tensor {
	if a.DType() != tensor.Float32 {
		panic(fmt.Sprintf("kernels: %s requires float32 input, got %v", name, a.DType()))
	}
	out = intoOrAlloc(out, tensor.Float32, a.Shape())
	av, ov := a.F32(), out.F32()
	if len(av) >= parallelThreshold {
		nrt.Default().ParallelFor(len(av), parallelGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ov[i] = f(av[i])
			}
		})
		return out
	}
	for i := range av {
		ov[i] = f(av[i])
	}
	return out
}

func unaryOp(name string, a *tensor.Tensor, f func(x float32) float32) *tensor.Tensor {
	return unaryOpInto(name, a, nil, f)
}

func negScalar(x float32) float32  { return -x }
func expScalar(x float32) float32  { return float32(math.Exp(float64(x))) }
func sqrtScalar(x float32) float32 { return float32(math.Sqrt(float64(x))) }
func tanhScalar(x float32) float32 { return float32(math.Tanh(float64(x))) }
func reluScalar(x float32) float32 {
	if x > 0 {
		return x
	}
	return 0
}

// Neg computes -a.
func Neg(a *tensor.Tensor) *tensor.Tensor { return unaryOp("neg", a, negScalar) }

// NegInto computes -a into out.
func NegInto(a, out *tensor.Tensor) *tensor.Tensor { return unaryOpInto("neg", a, out, negScalar) }

// Exp computes e^a element-wise.
func Exp(a *tensor.Tensor) *tensor.Tensor { return unaryOp("exp", a, expScalar) }

// ExpInto computes e^a into out.
func ExpInto(a, out *tensor.Tensor) *tensor.Tensor { return unaryOpInto("exp", a, out, expScalar) }

// Sqrt computes the element-wise square root.
func Sqrt(a *tensor.Tensor) *tensor.Tensor { return unaryOp("sqrt", a, sqrtScalar) }

// SqrtInto computes the element-wise square root into out.
func SqrtInto(a, out *tensor.Tensor) *tensor.Tensor { return unaryOpInto("sqrt", a, out, sqrtScalar) }

// Sigmoid computes 1/(1+e^-x) element-wise.
func Sigmoid(a *tensor.Tensor) *tensor.Tensor { return unaryOp("sigmoid", a, sigmoidScalar) }

// SigmoidInto computes the sigmoid into out.
func SigmoidInto(a, out *tensor.Tensor) *tensor.Tensor {
	return unaryOpInto("sigmoid", a, out, sigmoidScalar)
}

func sigmoidScalar(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// Tanh computes tanh(x) element-wise.
func Tanh(a *tensor.Tensor) *tensor.Tensor { return unaryOp("tanh", a, tanhScalar) }

// TanhInto computes tanh(x) into out.
func TanhInto(a, out *tensor.Tensor) *tensor.Tensor { return unaryOpInto("tanh", a, out, tanhScalar) }

// Relu computes max(0, x) element-wise.
func Relu(a *tensor.Tensor) *tensor.Tensor { return unaryOp("relu", a, reluScalar) }

// ReluInto computes max(0, x) into out.
func ReluInto(a, out *tensor.Tensor) *tensor.Tensor { return unaryOpInto("relu", a, out, reluScalar) }

// geluScalar is the tanh approximation BERT uses:
// 0.5x(1+tanh(sqrt(2/pi)(x+0.044715x^3))).
func geluScalar(x float32) float32 {
	const c = 0.7978845608028654 // sqrt(2/pi)
	x64 := float64(x)
	return float32(0.5 * x64 * (1 + math.Tanh(c*(x64+0.044715*x64*x64*x64))))
}

// Gelu computes the Gaussian error linear unit.
func Gelu(a *tensor.Tensor) *tensor.Tensor { return unaryOp("gelu", a, geluScalar) }

// GeluInto computes the GELU into out.
func GeluInto(a, out *tensor.Tensor) *tensor.Tensor { return unaryOpInto("gelu", a, out, geluScalar) }

// Greater returns a bool tensor of a > b with broadcasting.
func Greater(a, b *tensor.Tensor) *tensor.Tensor {
	return compareOp("greater", a, b, func(x, y float32) bool { return x > y })
}

// Less returns a bool tensor of a < b with broadcasting.
func Less(a, b *tensor.Tensor) *tensor.Tensor {
	return compareOp("less", a, b, func(x, y float32) bool { return x < y })
}

// EqualOp returns a bool tensor of a == b with broadcasting.
func EqualOp(a, b *tensor.Tensor) *tensor.Tensor {
	return compareOp("equal", a, b, func(x, y float32) bool { return x == y })
}

func compareOp(name string, a, b *tensor.Tensor, f func(x, y float32) bool) *tensor.Tensor {
	floats := binaryOp(name, a, b, func(x, y float32) float32 {
		if f(x, y) {
			return 1
		}
		return 0
	})
	out := tensor.New(tensor.Bool, floats.Shape()...)
	fv, bv := floats.F32(), out.Bools()
	for i := range fv {
		bv[i] = fv[i] != 0
	}
	return out
}

// Cast converts a tensor to the target dtype element-wise.
func Cast(a *tensor.Tensor, dt tensor.DType) *tensor.Tensor {
	out := tensor.New(dt, a.Shape()...)
	vals := a.AsF64()
	for i, v := range vals {
		out.SetAt(v, unravel(i, a.Shape())...)
	}
	return out
}

func unravel(lin int, s tensor.Shape) []int {
	idx := make([]int, s.Rank())
	for d := s.Rank() - 1; d >= 0; d-- {
		if s[d] > 0 {
			idx[d] = lin % s[d]
			lin /= s[d]
		}
	}
	return idx
}
