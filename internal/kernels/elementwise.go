package kernels

import (
	"fmt"
	"math"

	"nimble/internal/tensor"
)

// binaryOp applies f element-wise with NumPy broadcasting over float32
// tensors, allocating the result.
func binaryOp(name string, a, b *tensor.Tensor, f func(x, y float32) float32) *tensor.Tensor {
	if a.DType() != tensor.Float32 || b.DType() != tensor.Float32 {
		panic(fmt.Sprintf("kernels: %s requires float32 inputs, got %v and %v", name, a.DType(), b.DType()))
	}
	outShape, err := tensor.BroadcastShapes(a.Shape(), b.Shape())
	if err != nil {
		// This is the runtime type check deferred by the gradual typing of
		// Any dimensions (§4.1): incompatible concrete shapes surface here.
		panic(fmt.Sprintf("kernels: %s: %v", name, err))
	}
	out := tensor.New(tensor.Float32, outShape...)
	av, bv, ov := a.F32(), b.F32(), out.F32()

	// Fast path: identical shapes, a dominant case in model graphs.
	if a.Shape().Equal(b.Shape()) {
		for i := range ov {
			ov[i] = f(av[i], bv[i])
		}
		return out
	}
	// Fast path: b is a scalar.
	if b.NumElements() == 1 {
		s := bv[0]
		for i := range ov {
			ov[i] = f(av[i], s)
		}
		return out
	}
	// Fast path: a is a scalar.
	if a.NumElements() == 1 {
		s := av[0]
		for i := range ov {
			ov[i] = f(s, bv[i])
		}
		return out
	}
	// General broadcasting via stride-0 virtual strides.
	sa := broadcastStrides(a.Shape(), outShape)
	sb := broadcastStrides(b.Shape(), outShape)
	idx := make([]int, outShape.Rank())
	n := outShape.NumElements()
	for lin := 0; lin < n; lin++ {
		oa, ob := 0, 0
		for d := range idx {
			oa += idx[d] * sa[d]
			ob += idx[d] * sb[d]
		}
		ov[lin] = f(av[oa], bv[ob])
		for d := outShape.Rank() - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < outShape[d] {
				break
			}
			idx[d] = 0
		}
	}
	return out
}

// broadcastStrides returns strides for shape `s` viewed as the broadcast
// shape `out`: broadcast (size-1 or missing) axes get stride 0.
func broadcastStrides(s, out tensor.Shape) []int {
	st := s.Strides()
	res := make([]int, out.Rank())
	offset := out.Rank() - s.Rank()
	for d := 0; d < out.Rank(); d++ {
		if d < offset {
			res[d] = 0
			continue
		}
		if s[d-offset] == 1 && out[d] != 1 {
			res[d] = 0
		} else {
			res[d] = st[d-offset]
		}
	}
	return res
}

// Add computes a+b with broadcasting.
func Add(a, b *tensor.Tensor) *tensor.Tensor {
	return binaryOp("add", a, b, func(x, y float32) float32 { return x + y })
}

// Sub computes a-b with broadcasting.
func Sub(a, b *tensor.Tensor) *tensor.Tensor {
	return binaryOp("sub", a, b, func(x, y float32) float32 { return x - y })
}

// Mul computes a*b (element-wise) with broadcasting.
func Mul(a, b *tensor.Tensor) *tensor.Tensor {
	return binaryOp("mul", a, b, func(x, y float32) float32 { return x * y })
}

// Div computes a/b with broadcasting.
func Div(a, b *tensor.Tensor) *tensor.Tensor {
	return binaryOp("div", a, b, func(x, y float32) float32 { return x / y })
}

// Maximum computes element-wise max(a, b) with broadcasting.
func Maximum(a, b *tensor.Tensor) *tensor.Tensor {
	return binaryOp("maximum", a, b, func(x, y float32) float32 {
		if x > y {
			return x
		}
		return y
	})
}

// Minimum computes element-wise min(a, b) with broadcasting.
func Minimum(a, b *tensor.Tensor) *tensor.Tensor {
	return binaryOp("minimum", a, b, func(x, y float32) float32 {
		if x < y {
			return x
		}
		return y
	})
}

// Power computes a^b element-wise with broadcasting.
func Power(a, b *tensor.Tensor) *tensor.Tensor {
	return binaryOp("power", a, b, func(x, y float32) float32 {
		return float32(math.Pow(float64(x), float64(y)))
	})
}

// unaryOp applies f element-wise to a float32 tensor.
func unaryOp(name string, a *tensor.Tensor, f func(x float32) float32) *tensor.Tensor {
	if a.DType() != tensor.Float32 {
		panic(fmt.Sprintf("kernels: %s requires float32 input, got %v", name, a.DType()))
	}
	out := tensor.New(tensor.Float32, a.Shape()...)
	av, ov := a.F32(), out.F32()
	for i := range av {
		ov[i] = f(av[i])
	}
	return out
}

// Neg computes -a.
func Neg(a *tensor.Tensor) *tensor.Tensor {
	return unaryOp("neg", a, func(x float32) float32 { return -x })
}

// Exp computes e^a element-wise.
func Exp(a *tensor.Tensor) *tensor.Tensor {
	return unaryOp("exp", a, func(x float32) float32 { return float32(math.Exp(float64(x))) })
}

// Sqrt computes the element-wise square root.
func Sqrt(a *tensor.Tensor) *tensor.Tensor {
	return unaryOp("sqrt", a, func(x float32) float32 { return float32(math.Sqrt(float64(x))) })
}

// Sigmoid computes 1/(1+e^-x) element-wise.
func Sigmoid(a *tensor.Tensor) *tensor.Tensor {
	return unaryOp("sigmoid", a, sigmoidScalar)
}

func sigmoidScalar(x float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(x))))
}

// Tanh computes tanh(x) element-wise.
func Tanh(a *tensor.Tensor) *tensor.Tensor {
	return unaryOp("tanh", a, func(x float32) float32 { return float32(math.Tanh(float64(x))) })
}

// Relu computes max(0, x) element-wise.
func Relu(a *tensor.Tensor) *tensor.Tensor {
	return unaryOp("relu", a, func(x float32) float32 {
		if x > 0 {
			return x
		}
		return 0
	})
}

// Gelu computes the Gaussian error linear unit using the tanh approximation
// BERT uses: 0.5x(1+tanh(sqrt(2/pi)(x+0.044715x^3))).
func Gelu(a *tensor.Tensor) *tensor.Tensor {
	const c = 0.7978845608028654 // sqrt(2/pi)
	return unaryOp("gelu", a, func(x float32) float32 {
		x64 := float64(x)
		return float32(0.5 * x64 * (1 + math.Tanh(c*(x64+0.044715*x64*x64*x64))))
	})
}

// Greater returns a bool tensor of a > b with broadcasting.
func Greater(a, b *tensor.Tensor) *tensor.Tensor {
	return compareOp("greater", a, b, func(x, y float32) bool { return x > y })
}

// Less returns a bool tensor of a < b with broadcasting.
func Less(a, b *tensor.Tensor) *tensor.Tensor {
	return compareOp("less", a, b, func(x, y float32) bool { return x < y })
}

// EqualOp returns a bool tensor of a == b with broadcasting.
func EqualOp(a, b *tensor.Tensor) *tensor.Tensor {
	return compareOp("equal", a, b, func(x, y float32) bool { return x == y })
}

func compareOp(name string, a, b *tensor.Tensor, f func(x, y float32) bool) *tensor.Tensor {
	floats := binaryOp(name, a, b, func(x, y float32) float32 {
		if f(x, y) {
			return 1
		}
		return 0
	})
	out := tensor.New(tensor.Bool, floats.Shape()...)
	fv, bv := floats.F32(), out.Bools()
	for i := range fv {
		bv[i] = fv[i] != 0
	}
	return out
}

// Cast converts a tensor to the target dtype element-wise.
func Cast(a *tensor.Tensor, dt tensor.DType) *tensor.Tensor {
	out := tensor.New(dt, a.Shape()...)
	vals := a.AsF64()
	for i, v := range vals {
		out.SetAt(v, unravel(i, a.Shape())...)
	}
	return out
}

func unravel(lin int, s tensor.Shape) []int {
	idx := make([]int, s.Rank())
	for d := s.Rank() - 1; d >= 0; d-- {
		if s[d] > 0 {
			idx[d] = lin % s[d]
			lin /= s[d]
		}
	}
	return idx
}
