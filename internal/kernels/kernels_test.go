package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nimble/internal/tensor"
)

func TestAddBroadcast(t *testing.T) {
	a := tensor.FromF32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := tensor.FromF32([]float32{10, 20, 30}, 3)
	got := Add(a, b)
	want := tensor.FromF32([]float32{11, 22, 33, 14, 25, 36}, 2, 3)
	if !got.Equal(want) {
		t.Errorf("Add = %v", got.F32())
	}
	// Column broadcast: (2,1) + (2,3)
	col := tensor.FromF32([]float32{100, 200}, 2, 1)
	got = Add(col, a)
	want = tensor.FromF32([]float32{101, 102, 103, 204, 205, 206}, 2, 3)
	if !got.Equal(want) {
		t.Errorf("Add col = %v", got.F32())
	}
	// Scalar broadcast.
	got = Add(a, tensor.Scalar(1))
	want = tensor.FromF32([]float32{2, 3, 4, 5, 6, 7}, 2, 3)
	if !got.Equal(want) {
		t.Errorf("Add scalar = %v", got.F32())
	}
	got = Add(tensor.Scalar(1), a)
	if !got.Equal(want) {
		t.Errorf("scalar Add = %v", got.F32())
	}
	// The paper's broadcast_rel example: (Any,) against (5, 1) -> (5, Any).
	anyT := tensor.FromF32([]float32{1, 2, 3}, 3)
	fives := tensor.FromF32([]float32{10, 20, 30, 40, 50}, 5, 1)
	got = Add(fives, anyT)
	if !got.Shape().Equal(tensor.Shape{5, 3}) {
		t.Errorf("broadcast shape = %v", got.Shape())
	}
	if got.At(4, 2) != 53 {
		t.Errorf("broadcast value = %v", got.At(4, 2))
	}
}

func TestBinaryOps(t *testing.T) {
	a := tensor.FromF32([]float32{4, 9}, 2)
	b := tensor.FromF32([]float32{2, 3}, 2)
	if got := Sub(a, b); !got.Equal(tensor.FromF32([]float32{2, 6}, 2)) {
		t.Errorf("Sub = %v", got.F32())
	}
	if got := Mul(a, b); !got.Equal(tensor.FromF32([]float32{8, 27}, 2)) {
		t.Errorf("Mul = %v", got.F32())
	}
	if got := Div(a, b); !got.Equal(tensor.FromF32([]float32{2, 3}, 2)) {
		t.Errorf("Div = %v", got.F32())
	}
	if got := Maximum(a, b); !got.Equal(tensor.FromF32([]float32{4, 9}, 2)) {
		t.Errorf("Maximum = %v", got.F32())
	}
	if got := Minimum(a, b); !got.Equal(tensor.FromF32([]float32{2, 3}, 2)) {
		t.Errorf("Minimum = %v", got.F32())
	}
	if got := Power(a, b); !got.Equal(tensor.FromF32([]float32{16, 729}, 2)) {
		t.Errorf("Power = %v", got.F32())
	}
	assertPanics(t, "bad broadcast", func() {
		Add(tensor.New(tensor.Float32, 3), tensor.New(tensor.Float32, 4))
	})
	assertPanics(t, "dtype", func() {
		Add(tensor.New(tensor.Int64, 3), tensor.New(tensor.Float32, 3))
	})
}

func TestUnaryOps(t *testing.T) {
	x := tensor.FromF32([]float32{-1, 0, 1}, 3)
	if got := Neg(x); !got.Equal(tensor.FromF32([]float32{1, 0, -1}, 3)) {
		t.Errorf("Neg = %v", got.F32())
	}
	if got := Relu(x); !got.Equal(tensor.FromF32([]float32{0, 0, 1}, 3)) {
		t.Errorf("Relu = %v", got.F32())
	}
	sig := Sigmoid(x)
	if math.Abs(float64(sig.F32()[1])-0.5) > 1e-6 {
		t.Errorf("Sigmoid(0) = %v", sig.F32()[1])
	}
	th := Tanh(x)
	if math.Abs(float64(th.F32()[2])-math.Tanh(1)) > 1e-6 {
		t.Errorf("Tanh(1) = %v", th.F32()[2])
	}
	e := Exp(tensor.FromF32([]float32{0, 1}, 2))
	if math.Abs(float64(e.F32()[1])-math.E) > 1e-5 {
		t.Errorf("Exp(1) = %v", e.F32()[1])
	}
	s := Sqrt(tensor.FromF32([]float32{4, 9}, 2))
	if !s.Equal(tensor.FromF32([]float32{2, 3}, 2)) {
		t.Errorf("Sqrt = %v", s.F32())
	}
	g := Gelu(tensor.FromF32([]float32{0, 100}, 2))
	if g.F32()[0] != 0 {
		t.Errorf("Gelu(0) = %v", g.F32()[0])
	}
	if math.Abs(float64(g.F32()[1])-100) > 1e-3 {
		t.Errorf("Gelu(100) = %v (should approach identity)", g.F32()[1])
	}
}

func TestCompareAndCast(t *testing.T) {
	a := tensor.FromF32([]float32{1, 5}, 2)
	b := tensor.FromF32([]float32{3, 3}, 2)
	if got := Greater(a, b); !got.Equal(tensor.FromBool([]bool{false, true}, 2)) {
		t.Errorf("Greater = %v", got.Bools())
	}
	if got := Less(a, b); !got.Equal(tensor.FromBool([]bool{true, false}, 2)) {
		t.Errorf("Less = %v", got.Bools())
	}
	if got := EqualOp(a, tensor.FromF32([]float32{1, 3}, 2)); !got.Equal(tensor.FromBool([]bool{true, false}, 2)) {
		t.Errorf("EqualOp = %v", got.Bools())
	}
	c := Cast(a, tensor.Int64)
	if !c.Equal(tensor.FromI64([]int64{1, 5}, 2)) {
		t.Errorf("Cast = %v", c.I64())
	}
}

func TestReduceOps(t *testing.T) {
	a := tensor.FromF32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := Sum(a, 1, false); !got.Equal(tensor.FromF32([]float32{6, 15}, 2)) {
		t.Errorf("Sum axis=1 = %v", got.F32())
	}
	if got := Sum(a, 0, false); !got.Equal(tensor.FromF32([]float32{5, 7, 9}, 3)) {
		t.Errorf("Sum axis=0 = %v", got.F32())
	}
	if got := Sum(a, -1, true); !got.Shape().Equal(tensor.Shape{2, 1}) {
		t.Errorf("Sum keepdims shape = %v", got.Shape())
	}
	if got := Mean(a, 1, false); !got.Equal(tensor.FromF32([]float32{2, 5}, 2)) {
		t.Errorf("Mean = %v", got.F32())
	}
	if got := Max(a, 0, false); !got.Equal(tensor.FromF32([]float32{4, 5, 6}, 3)) {
		t.Errorf("Max = %v", got.F32())
	}
	am := ArgMax(tensor.FromF32([]float32{1, 9, 2, 8, 3, 7}, 2, 3), 1)
	if !am.Equal(tensor.FromI64([]int64{1, 0}, 2)) {
		t.Errorf("ArgMax = %v", am.I64())
	}
	assertPanics(t, "axis range", func() { Sum(a, 2, false) })
}

func TestSoftmax(t *testing.T) {
	a := tensor.FromF32([]float32{1, 2, 3, 1, 1, 1}, 2, 3)
	s := Softmax(a)
	for r := 0; r < 2; r++ {
		var sum float64
		for c := 0; c < 3; c++ {
			sum += s.At(r, c)
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("row %d sums to %v", r, sum)
		}
	}
	if math.Abs(s.At(1, 0)-1.0/3) > 1e-6 {
		t.Errorf("uniform row = %v", s.At(1, 0))
	}
	if s.At(0, 0) >= s.At(0, 2) {
		t.Error("softmax not monotone")
	}
	// Stability: large values must not overflow.
	big := Softmax(tensor.FromF32([]float32{1000, 1000}, 2))
	if math.IsNaN(big.At(0)) || math.Abs(big.At(0)-0.5) > 1e-6 {
		t.Errorf("softmax unstable: %v", big.F32())
	}
}

func TestLayerNorm(t *testing.T) {
	a := tensor.FromF32([]float32{1, 2, 3, 4}, 2, 2)
	gamma := tensor.FromF32([]float32{1, 1}, 2)
	beta := tensor.FromF32([]float32{0, 0}, 2)
	out := LayerNorm(a, gamma, beta, 1e-5)
	// Each row has mean 0 and unit variance after normalization.
	for r := 0; r < 2; r++ {
		if math.Abs(out.At(r, 0)+out.At(r, 1)) > 1e-4 {
			t.Errorf("row %d mean != 0", r)
		}
	}
	// Gamma/beta transform.
	out = LayerNorm(a, tensor.FromF32([]float32{2, 2}, 2), tensor.FromF32([]float32{5, 5}, 2), 1e-5)
	if math.Abs((out.At(0, 0)+out.At(0, 1))/2-5) > 1e-4 {
		t.Errorf("beta shift broken: %v", out.F32())
	}
	assertPanics(t, "param shape", func() { LayerNorm(a, tensor.New(tensor.Float32, 3), beta, 1e-5) })
}

func TestConcat(t *testing.T) {
	a := tensor.FromF32([]float32{1, 2}, 1, 2)
	b := tensor.FromF32([]float32{3, 4, 5, 6}, 2, 2)
	got := Concat([]*tensor.Tensor{a, b}, 0)
	want := tensor.FromF32([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	if !got.Equal(want) {
		t.Errorf("Concat axis 0 = %v", got.F32())
	}
	// Axis 1.
	c := tensor.FromF32([]float32{7, 8}, 2, 1)
	got = Concat([]*tensor.Tensor{b, c}, 1)
	want = tensor.FromF32([]float32{3, 4, 7, 5, 6, 8}, 2, 3)
	if !got.Equal(want) {
		t.Errorf("Concat axis 1 = %v", got.F32())
	}
	assertPanics(t, "empty", func() { Concat(nil, 0) })
	assertPanics(t, "mismatch", func() {
		Concat([]*tensor.Tensor{a, tensor.New(tensor.Float32, 2, 3)}, 0)
	})
}

func TestSplitSliceInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := tensor.Random(rng, 1, 4, 6)
	parts := Split(a, 3, 1)
	if len(parts) != 3 {
		t.Fatalf("Split count = %d", len(parts))
	}
	back := Concat(parts, 1)
	if !back.Equal(a) {
		t.Error("Concat(Split(x)) != x")
	}
	s := Slice(a, 0, 1, 3)
	if !s.Shape().Equal(tensor.Shape{2, 6}) {
		t.Errorf("Slice shape = %v", s.Shape())
	}
	if s.At(0, 0) != a.At(1, 0) {
		t.Error("Slice content wrong")
	}
	assertPanics(t, "split", func() { Split(a, 5, 1) })
	assertPanics(t, "slice range", func() { Slice(a, 0, 3, 10) })
}

func TestTake(t *testing.T) {
	table := tensor.FromF32([]float32{0, 0, 1, 1, 2, 2}, 3, 2)
	idx := tensor.FromI64([]int64{2, 0}, 2)
	got := Take(table, idx)
	want := tensor.FromF32([]float32{2, 2, 0, 0}, 2, 2)
	if !got.Equal(want) {
		t.Errorf("Take = %v", got.F32())
	}
	// int32 indices and higher-rank index tensors.
	idx32 := tensor.FromI32([]int32{1, 1, 0, 2}, 2, 2)
	got = Take(table, idx32)
	if !got.Shape().Equal(tensor.Shape{2, 2, 2}) {
		t.Errorf("Take rank-2 idx shape = %v", got.Shape())
	}
	assertPanics(t, "oob", func() { Take(table, tensor.FromI64([]int64{3}, 1)) })
	assertPanics(t, "float idx", func() { Take(table, tensor.New(tensor.Float32, 1)) })
}

func TestTranspose(t *testing.T) {
	a := tensor.FromF32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	got := Transpose(a, nil)
	want := tensor.FromF32([]float32{1, 4, 2, 5, 3, 6}, 3, 2)
	if !got.Equal(want) {
		t.Errorf("Transpose = %v", got.F32())
	}
	// Rank-3 permutation.
	b := tensor.FromF32([]float32{0, 1, 2, 3, 4, 5, 6, 7}, 2, 2, 2)
	got = Transpose(b, []int{1, 0, 2})
	if got.At(0, 1, 0) != b.At(1, 0, 0) {
		t.Error("rank-3 transpose wrong")
	}
	// Double transpose is identity.
	if !Transpose(got, []int{1, 0, 2}).Equal(b) {
		t.Error("transpose not involutive")
	}
	assertPanics(t, "perm", func() { Transpose(a, []int{0, 0}) })
}

func TestStack(t *testing.T) {
	a := tensor.FromF32([]float32{1, 2}, 2)
	b := tensor.FromF32([]float32{3, 4}, 2)
	got := Stack([]*tensor.Tensor{a, b})
	want := tensor.FromF32([]float32{1, 2, 3, 4}, 2, 2)
	if !got.Equal(want) {
		t.Errorf("Stack = %v", got.F32())
	}
	assertPanics(t, "mismatch", func() { Stack([]*tensor.Tensor{a, tensor.New(tensor.Float32, 3)}) })
	assertPanics(t, "empty", func() { Stack(nil) })
}

func TestPad(t *testing.T) {
	a := tensor.FromF32([]float32{1, 2, 3, 4}, 2, 2)
	got := Pad(a, 4, -1)
	want := tensor.FromF32([]float32{1, 2, -1, -1, 3, 4, -1, -1}, 2, 4)
	if !got.Equal(want) {
		t.Errorf("Pad = %v", got.F32())
	}
	got = PadRows(a, 3, 0)
	want = tensor.FromF32([]float32{1, 2, 3, 4, 0, 0}, 3, 2)
	if !got.Equal(want) {
		t.Errorf("PadRows = %v", got.F32())
	}
	assertPanics(t, "narrow", func() { Pad(a, 1, 0) })
}

func TestArange(t *testing.T) {
	got := Arange(0, 5, 1)
	if !got.Equal(tensor.FromF32([]float32{0, 1, 2, 3, 4}, 5)) {
		t.Errorf("Arange = %v", got.F32())
	}
	got = Arange(1, 0, -0.5)
	if !got.Equal(tensor.FromF32([]float32{1, 0.5}, 2)) {
		t.Errorf("Arange desc = %v", got.F32())
	}
	if Arange(3, 3, 1).NumElements() != 0 {
		t.Error("empty arange wrong")
	}
	if ArangeLen(0, 10, 3) != 4 {
		t.Errorf("ArangeLen = %d", ArangeLen(0, 10, 3))
	}
	assertPanics(t, "zero step", func() { Arange(0, 1, 0) })
}

func TestUnique(t *testing.T) {
	got := Unique(tensor.FromF32([]float32{3, 1, 3, 2, 1}, 5))
	if !got.Equal(tensor.FromF32([]float32{1, 2, 3}, 3)) {
		t.Errorf("Unique = %v", got.F32())
	}
	if Unique(tensor.New(tensor.Float32, 0)).NumElements() != 0 {
		t.Error("empty unique wrong")
	}
	// Property: output is sorted, deduplicated, and a subset of the input.
	f := func(vals []float32) bool {
		for i := range vals {
			if math.IsNaN(float64(vals[i])) {
				vals[i] = 0
			}
		}
		u := Unique(tensor.FromF32(append([]float32{}, vals...), len(vals)))
		uv := u.F32()
		in := map[float32]bool{}
		for _, v := range vals {
			in[v] = true
		}
		for i, v := range uv {
			if !in[v] {
				return false
			}
			if i > 0 && uv[i-1] >= v {
				return false
			}
		}
		return len(uv) == len(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNMS(t *testing.T) {
	// Two heavily overlapping boxes and one distinct box.
	boxes := tensor.FromF32([]float32{
		0.9, 0, 0, 10, 10,
		0.8, 1, 1, 11, 11,
		0.7, 100, 100, 110, 110,
	}, 3, 5)
	res := NMS(boxes, 0.5)
	if res.Count != 2 {
		t.Fatalf("NMS count = %d, want 2", res.Count)
	}
	// Upper-bound allocation is the full input size.
	if !res.Boxes.Shape().Equal(tensor.Shape{3, 5}) {
		t.Errorf("upper-bound shape = %v", res.Boxes.Shape())
	}
	precise := SliceNMS(res)
	if !precise.Shape().Equal(tensor.Shape{2, 5}) {
		t.Errorf("precise shape = %v", precise.Shape())
	}
	if precise.F32()[0] != 0.9 || precise.F32()[5] != 0.7 {
		t.Errorf("selected scores = %v, %v", precise.F32()[0], precise.F32()[5])
	}
	// Low threshold suppresses nothing but itself overlapping.
	resAll := NMS(boxes, 0.99)
	if resAll.Count != 3 {
		t.Errorf("high-threshold count = %d", resAll.Count)
	}
}

func TestConv2D(t *testing.T) {
	// Identity kernel: 1x1 conv with weight 1 copies input.
	in := tensor.FromF32([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	w := tensor.FromF32([]float32{1}, 1, 1, 1, 1)
	got := Conv2D(in, w, 1, 0)
	if !got.Shape().Equal(in.Shape()) {
		t.Errorf("identity conv shape = %v", got.Shape())
	}
	for i, v := range got.F32() {
		if v != in.F32()[i] {
			t.Errorf("identity conv[%d] = %v", i, v)
		}
	}
	// 2x2 sum kernel, stride 1, no padding -> single output 1+2+3+4.
	w = tensor.FromF32([]float32{1, 1, 1, 1}, 1, 1, 2, 2)
	got = Conv2D(in, w, 1, 0)
	if got.NumElements() != 1 || got.F32()[0] != 10 {
		t.Errorf("sum conv = %v", got.F32())
	}
	// Padding grows output.
	got = Conv2D(in, w, 1, 1)
	if !got.Shape().Equal(tensor.Shape{1, 1, 3, 3}) {
		t.Errorf("padded conv shape = %v", got.Shape())
	}
	oh, ow := Conv2DOutDims(224, 224, 7, 7, 2, 3)
	if oh != 112 || ow != 112 {
		t.Errorf("ResNet stem dims = %d, %d", oh, ow)
	}
	assertPanics(t, "channels", func() {
		Conv2D(in, tensor.New(tensor.Float32, 1, 2, 1, 1), 1, 0)
	})
}

func TestPooling(t *testing.T) {
	in := tensor.FromF32([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	mp := MaxPool2D(in, 2, 2)
	if mp.NumElements() != 1 || mp.F32()[0] != 4 {
		t.Errorf("MaxPool = %v", mp.F32())
	}
	ap := AvgPool2D(in, 2, 2)
	if ap.F32()[0] != 2.5 {
		t.Errorf("AvgPool = %v", ap.F32())
	}
	g := GlobalAvgPool2D(in)
	if !g.Shape().Equal(tensor.Shape{1, 1}) || g.F32()[0] != 2.5 {
		t.Errorf("GlobalAvgPool = %v %v", g.Shape(), g.F32())
	}
}
