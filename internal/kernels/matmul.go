// Package kernels implements the operator kernel library for the Nimble
// reproduction: pure-Go compute routines over internal/tensor values.
//
// The package plays the role of both TVM's generated kernels and the
// third-party vendor libraries the paper's baselines rely on. The codegen
// layer (internal/codegen) "generates" kernels by selecting and specializing
// the routines here per shape class, tiling configuration, and residue —
// mirroring the paper's §4.5 symbolic code generation where the loop
// structure, not the arithmetic, is what differs between variants.
package kernels

import (
	"fmt"

	nrt "nimble/internal/runtime"
	"nimble/internal/tensor"
)

// MatMulRef is the reference row-by-row matrix multiplication used by tests
// as ground truth: out[m,n] = sum_k a[m,k] * b[k,n].
func MatMulRef(a, b *tensor.Tensor) *tensor.Tensor {
	m, k, n := checkMatMul(a, b)
	out := tensor.New(tensor.Float32, m, n)
	av, bv, ov := a.F32(), b.F32(), out.F32()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for p := 0; p < k; p++ {
				acc += av[i*k+p] * bv[p*n+j]
			}
			ov[i*n+j] = acc
		}
	}
	return out
}

func checkMatMul(a, b *tensor.Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic(fmt.Sprintf("kernels: matmul requires rank-2 inputs, got %v x %v", a.Shape(), b.Shape()))
	}
	if a.Shape()[1] != b.Shape()[0] {
		panic(fmt.Sprintf("kernels: matmul inner dims mismatch: %v x %v", a.Shape(), b.Shape()))
	}
	return a.Shape()[0], a.Shape()[1], b.Shape()[1]
}

// TileFactor is the row-tiling factor the symbolic auto-tuner selects for
// dense operators. The paper reports the tuner chose 8 for the BERT dense
// layers (§6.3), so the codegen experiments fix the same value.
const TileFactor = 8

// microBlock computes `rows` output rows (1..8) starting at row i0, using a
// register-blocked inner loop specialized by an unrolled switch. It is the
// code a shape-specialized kernel contains when the residue is known at
// generation time: no bounds check survives into the accumulation loops.
func microBlock(av, bv, ov []float32, i0, rows, k, n int) {
	switch rows {
	case 8:
		micro8(av, bv, ov, i0, k, n)
	case 7:
		microN7(av, bv, ov, i0, k, n)
	case 6:
		microN6(av, bv, ov, i0, k, n)
	case 5:
		microN5(av, bv, ov, i0, k, n)
	case 4:
		microN4(av, bv, ov, i0, k, n)
	case 3:
		microN3(av, bv, ov, i0, k, n)
	case 2:
		microN2(av, bv, ov, i0, k, n)
	case 1:
		microN1(av, bv, ov, i0, k, n)
	case 0:
	default:
		panic(fmt.Sprintf("kernels: microBlock rows=%d out of range", rows))
	}
}

// micro8 is the fully unrolled 8-row micro-kernel: eight accumulators per
// output column give the scheduler instruction-level parallelism and each
// element of b is loaded once per 8 rows. This is the payoff the symbolic
// dispatch mechanism (§4.5) fights to keep.
func micro8(av, bv, ov []float32, i0, k, n int) {
	r0 := av[(i0+0)*k : (i0+0)*k+k]
	r1 := av[(i0+1)*k : (i0+1)*k+k]
	r2 := av[(i0+2)*k : (i0+2)*k+k]
	r3 := av[(i0+3)*k : (i0+3)*k+k]
	r4 := av[(i0+4)*k : (i0+4)*k+k]
	r5 := av[(i0+5)*k : (i0+5)*k+k]
	r6 := av[(i0+6)*k : (i0+6)*k+k]
	r7 := av[(i0+7)*k : (i0+7)*k+k]
	for j := 0; j < n; j++ {
		var a0, a1, a2, a3, a4, a5, a6, a7 float32
		for p := 0; p < k; p++ {
			bpj := bv[p*n+j]
			a0 += r0[p] * bpj
			a1 += r1[p] * bpj
			a2 += r2[p] * bpj
			a3 += r3[p] * bpj
			a4 += r4[p] * bpj
			a5 += r5[p] * bpj
			a6 += r6[p] * bpj
			a7 += r7[p] * bpj
		}
		ov[(i0+0)*n+j] = a0
		ov[(i0+1)*n+j] = a1
		ov[(i0+2)*n+j] = a2
		ov[(i0+3)*n+j] = a3
		ov[(i0+4)*n+j] = a4
		ov[(i0+5)*n+j] = a5
		ov[(i0+6)*n+j] = a6
		ov[(i0+7)*n+j] = a7
	}
}

// The microN* family are the residue-specialized epilogues a full-dispatch
// symbolic kernel embeds: one per possible remainder, each with the row
// count baked in so the accumulation loop carries no bound check.

func microN1(av, bv, ov []float32, i0, k, n int) {
	r0 := av[i0*k : i0*k+k]
	for j := 0; j < n; j++ {
		var a0 float32
		for p := 0; p < k; p++ {
			a0 += r0[p] * bv[p*n+j]
		}
		ov[i0*n+j] = a0
	}
}

func microN2(av, bv, ov []float32, i0, k, n int) {
	r0 := av[(i0+0)*k : (i0+0)*k+k]
	r1 := av[(i0+1)*k : (i0+1)*k+k]
	for j := 0; j < n; j++ {
		var a0, a1 float32
		for p := 0; p < k; p++ {
			bpj := bv[p*n+j]
			a0 += r0[p] * bpj
			a1 += r1[p] * bpj
		}
		ov[(i0+0)*n+j] = a0
		ov[(i0+1)*n+j] = a1
	}
}

func microN3(av, bv, ov []float32, i0, k, n int) {
	r0 := av[(i0+0)*k : (i0+0)*k+k]
	r1 := av[(i0+1)*k : (i0+1)*k+k]
	r2 := av[(i0+2)*k : (i0+2)*k+k]
	for j := 0; j < n; j++ {
		var a0, a1, a2 float32
		for p := 0; p < k; p++ {
			bpj := bv[p*n+j]
			a0 += r0[p] * bpj
			a1 += r1[p] * bpj
			a2 += r2[p] * bpj
		}
		ov[(i0+0)*n+j] = a0
		ov[(i0+1)*n+j] = a1
		ov[(i0+2)*n+j] = a2
	}
}

func microN4(av, bv, ov []float32, i0, k, n int) {
	r0 := av[(i0+0)*k : (i0+0)*k+k]
	r1 := av[(i0+1)*k : (i0+1)*k+k]
	r2 := av[(i0+2)*k : (i0+2)*k+k]
	r3 := av[(i0+3)*k : (i0+3)*k+k]
	for j := 0; j < n; j++ {
		var a0, a1, a2, a3 float32
		for p := 0; p < k; p++ {
			bpj := bv[p*n+j]
			a0 += r0[p] * bpj
			a1 += r1[p] * bpj
			a2 += r2[p] * bpj
			a3 += r3[p] * bpj
		}
		ov[(i0+0)*n+j] = a0
		ov[(i0+1)*n+j] = a1
		ov[(i0+2)*n+j] = a2
		ov[(i0+3)*n+j] = a3
	}
}

func microN5(av, bv, ov []float32, i0, k, n int) {
	microN4(av, bv, ov, i0, k, n)
	microN1(av, bv, ov, i0+4, k, n)
}

func microN6(av, bv, ov []float32, i0, k, n int) {
	microN4(av, bv, ov, i0, k, n)
	microN2(av, bv, ov, i0+4, k, n)
}

func microN7(av, bv, ov []float32, i0, k, n int) {
	microN4(av, bv, ov, i0, k, n)
	microN3(av, bv, ov, i0+4, k, n)
}

// microGuarded is the loop structure naive symbolic codegen produces when
// residue information is unavailable: every row is processed individually
// and the row-validity guard sits inside the block, exactly the "boundary
// condition checks stay" failure mode of §4.5. The arithmetic is identical;
// only the loop structure (and therefore the achieved ILP) differs.
func microGuarded(av, bv, ov []float32, i0, m, k, n int) {
	for r := 0; r < TileFactor; r++ {
		i := i0 + r
		if i >= m { // unsimplified boundary check
			continue
		}
		row := av[i*k : i*k+k]
		for j := 0; j < n; j++ {
			var acc float32
			for p := 0; p < k; p++ {
				acc += row[p] * bv[p*n+j]
			}
			ov[i*n+j] = acc
		}
	}
}

// MatMulStatic is the kernel "generated for a static shape": the row count is
// known at generation time, so the main loop runs an exact number of
// unguarded micro8 blocks and the epilogue is residue-specialized.
func MatMulStatic(a, b, out *tensor.Tensor) {
	m, k, n := checkMatMul(a, b)
	av, bv, ov := a.F32(), b.F32(), out.F32()
	q := m / TileFactor
	for i := 0; i < q; i++ {
		micro8(av, bv, ov, i*TileFactor, k, n)
	}
	microBlock(av, bv, ov, q*TileFactor, m%TileFactor, k, n)
}

// MatMulSymbolicFull is the residue-r symbolic kernel from a full dispatch
// set (k = TileFactor kernels): the caller guarantees m % TileFactor == r,
// so the epilogue is specialized and no guard survives. Performance is
// within noise of MatMulStatic — the property Figure 3's "dispatch/8" bar
// demonstrates.
func MatMulSymbolicFull(r int) func(a, b, out *tensor.Tensor) {
	if r < 0 || r >= TileFactor {
		panic(fmt.Sprintf("kernels: residue %d out of range", r))
	}
	return func(a, b, out *tensor.Tensor) {
		m, k, n := checkMatMul(a, b)
		if m%TileFactor != r {
			panic(fmt.Sprintf("kernels: residue kernel %d invoked with m=%d", r, m))
		}
		av, bv, ov := a.F32(), b.F32(), out.F32()
		q := m / TileFactor
		for i := 0; i < q; i++ {
			micro8(av, bv, ov, i*TileFactor, k, n)
		}
		microBlock(av, bv, ov, q*TileFactor, r, k, n)
	}
}

// MatMulSymbolicPartial is a symbolic kernel from a partial dispatch set: it
// covers the residue class [rLo, rHi]. Full blocks are provably in range and
// keep the unguarded micro-kernel, but the epilogue's row count is only known
// up to the class width, so it retains per-row guards (microGuarded). The
// wider the class, the more guarded work — the mechanism behind the rising
// bars of Figure 3.
func MatMulSymbolicPartial(rLo, rHi int) func(a, b, out *tensor.Tensor) {
	if rLo < 0 || rHi < rLo || rHi >= TileFactor {
		panic(fmt.Sprintf("kernels: invalid residue class [%d, %d]", rLo, rHi))
	}
	return func(a, b, out *tensor.Tensor) {
		m, k, n := checkMatMul(a, b)
		if r := m % TileFactor; r < rLo || r > rHi {
			panic(fmt.Sprintf("kernels: residue-class kernel [%d,%d] invoked with m=%d", rLo, rHi, m))
		}
		av, bv, ov := a.F32(), b.F32(), out.F32()
		q := m / TileFactor
		for i := 0; i < q; i++ {
			micro8(av, bv, ov, i*TileFactor, k, n)
		}
		if q*TileFactor < m {
			microGuarded(av, bv, ov, q*TileFactor, m, k, n)
		}
	}
}

// MatMulSymbolicNaive is the single symbolic kernel of the "no dispatch"
// configuration: with no residue information the simplifier cannot discharge
// the row guard anywhere, so every block — not just the tail — runs the
// guarded loop structure. This reproduces the paper's observation that
// unhandled boundary conditions make symbolic kernels perform badly (§2.2,
// §4.5).
func MatMulSymbolicNaive(a, b, out *tensor.Tensor) {
	m, k, n := checkMatMul(a, b)
	av, bv, ov := a.F32(), b.F32(), out.F32()
	blocks := (m + TileFactor - 1) / TileFactor
	for i := 0; i < blocks; i++ {
		microGuarded(av, bv, ov, i*TileFactor, m, k, n)
	}
}

// MatMul computes a@b with the static-shape kernel, allocating the output.
// It is the default kernel used outside the codegen experiments.
func MatMul(a, b *tensor.Tensor) *tensor.Tensor {
	return MatMulInto(a, b, nil)
}

// MatMulInto computes a@b with the static-shape kernel, writing into out
// when it matches the [m, n] float32 result (destination-passing; the §4.3
// planned-buffer contract) and allocating otherwise.
func MatMulInto(a, b, out *tensor.Tensor) *tensor.Tensor {
	m, _, n := checkMatMul(a, b)
	if !fits(out, tensor.Float32, m, n) {
		out = tensor.New(tensor.Float32, m, n)
	}
	MatMulStatic(a, b, out)
	return out
}

// MatMulParallel computes a@b splitting row blocks across the persistent
// worker pool; workers <= 0 selects the pool's full width. It stands in for
// the "third-party library" (MKL/cuDNN) kernel provider that Nimble's
// dispatch function may select when profiling shows it is faster (§4.5).
func MatMulParallel(a, b *tensor.Tensor, workers int) *tensor.Tensor {
	return MatMulParallelInto(a, b, nil, workers)
}

// MatMulParallelInto is MatMulParallel writing into out when it matches.
// Row blocks are sharded over the resident pool (no goroutine is spawned
// per call); the worker cap is expressed through the chunk grain.
func MatMulParallelInto(a, b, out *tensor.Tensor, workers int) *tensor.Tensor {
	m, k, n := checkMatMul(a, b)
	if !fits(out, tensor.Float32, m, n) {
		out = tensor.New(tensor.Float32, m, n)
	}
	pool := nrt.Default()
	if workers <= 0 || workers > pool.Workers() {
		workers = pool.Workers()
	}
	blocks := (m + TileFactor - 1) / TileFactor
	if workers > blocks {
		workers = blocks
	}
	if workers <= 1 {
		MatMulStatic(a, b, out)
		return out
	}
	av, bv, ov := a.F32(), b.F32(), out.F32()
	grain := (blocks + workers - 1) / workers
	pool.ParallelFor(blocks, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			i0 := i * TileFactor
			rows := TileFactor
			if i0+rows > m {
				rows = m - i0
			}
			microBlock(av, bv, ov, i0, rows, k, n)
		}
	})
	return out
}

// Dense computes x@w + bias where x is [m,k], w is [k,n] and bias is [n]
// (bias may be nil). This is the fused dense+bias kernel every model in the
// evaluation leans on.
func Dense(x, w, bias *tensor.Tensor) *tensor.Tensor {
	return DenseInto(x, w, bias, nil)
}

// DenseInto computes x@w + bias into out when it matches.
func DenseInto(x, w, bias, out *tensor.Tensor) *tensor.Tensor {
	out = MatMulInto(x, w, out)
	if bias != nil {
		addBiasInPlace(out, bias)
	}
	return out
}

func addBiasInPlace(out, bias *tensor.Tensor) {
	m, n := out.Shape()[0], out.Shape()[1]
	if bias.Rank() != 1 || bias.Shape()[0] != n {
		panic(fmt.Sprintf("kernels: bias shape %v does not match output %v", bias.Shape(), out.Shape()))
	}
	ov, bv := out.F32(), bias.F32()
	for i := 0; i < m; i++ {
		row := ov[i*n : i*n+n]
		for j := range row {
			row[j] += bv[j]
		}
	}
}
