package kernels

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nimble/internal/tensor"
)

func randMat(rng *rand.Rand, m, n int) *tensor.Tensor {
	return tensor.Random(rng, 1, m, n)
}

func TestMatMulStaticMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Cover every residue class of the tile factor plus tiny and empty cases.
	for _, m := range []int{0, 1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 23, 64, 65} {
		a := randMat(rng, m, 13)
		b := randMat(rng, 13, 11)
		want := MatMulRef(a, b)
		got := MatMul(a, b)
		if !got.AllClose(want, 1e-4, 1e-5) {
			t.Errorf("m=%d: tiled matmul disagrees with reference", m)
		}
	}
}

func TestMatMulSymbolicVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	k, n := 19, 17
	for m := 0; m <= 2*TileFactor+3; m++ {
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		want := MatMulRef(a, b)

		r := m % TileFactor
		outFull := tensor.New(tensor.Float32, m, n)
		MatMulSymbolicFull(r)(a, b, outFull)
		if !outFull.AllClose(want, 1e-4, 1e-5) {
			t.Errorf("m=%d: full-dispatch kernel wrong", m)
		}

		// Partial dispatch: class of width 2 and width 4 containing r.
		for _, width := range []int{2, 4} {
			lo := (r / width) * width
			hi := lo + width - 1
			if hi >= TileFactor {
				hi = TileFactor - 1
			}
			outPart := tensor.New(tensor.Float32, m, n)
			MatMulSymbolicPartial(lo, hi)(a, b, outPart)
			if !outPart.AllClose(want, 1e-4, 1e-5) {
				t.Errorf("m=%d width=%d: partial-dispatch kernel wrong", m, width)
			}
		}

		outNaive := tensor.New(tensor.Float32, m, n)
		MatMulSymbolicNaive(a, b, outNaive)
		if !outNaive.AllClose(want, 1e-4, 1e-5) {
			t.Errorf("m=%d: naive symbolic kernel wrong", m)
		}
	}
}

func TestMatMulSymbolicFullRejectsWrongResidue(t *testing.T) {
	a := tensor.New(tensor.Float32, 9, 4)
	b := tensor.New(tensor.Float32, 4, 4)
	out := tensor.New(tensor.Float32, 9, 4)
	defer func() {
		if recover() == nil {
			t.Error("residue mismatch not detected")
		}
	}()
	MatMulSymbolicFull(3)(a, b, out) // 9 % 8 == 1, not 3
}

func TestMatMulSymbolicPartialRejectsOutOfClass(t *testing.T) {
	a := tensor.New(tensor.Float32, 9, 4) // residue 1
	b := tensor.New(tensor.Float32, 4, 4)
	out := tensor.New(tensor.Float32, 9, 4)
	defer func() {
		if recover() == nil {
			t.Error("class mismatch not detected")
		}
	}()
	MatMulSymbolicPartial(4, 7)(a, b, out)
}

func TestMatMulParallelMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, m := range []int{1, 7, 8, 33, 100} {
		for _, workers := range []int{0, 1, 2, 4, 32} {
			a := randMat(rng, m, 24)
			b := randMat(rng, 24, 18)
			want := MatMulRef(a, b)
			got := MatMulParallel(a, b, workers)
			if !got.AllClose(want, 1e-4, 1e-5) {
				t.Errorf("m=%d workers=%d: parallel matmul wrong", m, workers)
			}
		}
	}
}

func TestMatMulShapeChecks(t *testing.T) {
	a := tensor.New(tensor.Float32, 2, 3)
	bad := tensor.New(tensor.Float32, 4, 2)
	assertPanics(t, "inner mismatch", func() { MatMul(a, bad) })
	assertPanics(t, "rank", func() { MatMul(tensor.New(tensor.Float32, 2), a) })
	assertPanics(t, "bad residue", func() { MatMulSymbolicFull(8) })
	assertPanics(t, "bad class", func() { MatMulSymbolicPartial(5, 3) })
}

func TestDense(t *testing.T) {
	x := tensor.FromF32([]float32{1, 2, 3, 4}, 2, 2)
	w := tensor.FromF32([]float32{1, 0, 0, 1}, 2, 2)
	b := tensor.FromF32([]float32{10, 20}, 2)
	got := Dense(x, w, b)
	want := tensor.FromF32([]float32{11, 22, 13, 24}, 2, 2)
	if !got.Equal(want) {
		t.Errorf("Dense = %v, want %v", got.F32(), want.F32())
	}
	// nil bias
	got = Dense(x, w, nil)
	if !got.Equal(tensor.FromF32([]float32{1, 2, 3, 4}, 2, 2)) {
		t.Errorf("Dense nil bias = %v", got.F32())
	}
	assertPanics(t, "bias shape", func() { Dense(x, w, tensor.New(tensor.Float32, 3)) })
}

// Property: all four kernel classes agree on random shapes.
func TestMatMulVariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(mSeed, kSeed, nSeed uint8) bool {
		m := int(mSeed%40) + 1
		k := int(kSeed%12) + 1
		n := int(nSeed%12) + 1
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		want := MatMulRef(a, b)
		if !MatMul(a, b).AllClose(want, 1e-4, 1e-5) {
			return false
		}
		outNaive := tensor.New(tensor.Float32, m, n)
		MatMulSymbolicNaive(a, b, outNaive)
		if !outNaive.AllClose(want, 1e-4, 1e-5) {
			return false
		}
		return MatMulParallel(a, b, 3).AllClose(want, 1e-4, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func BenchmarkMicroKernelStatic(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := randMat(rng, 61, 256)
	w := randMat(rng, 256, 256)
	out := tensor.New(tensor.Float32, 61, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulStatic(a, w, out)
	}
}

func BenchmarkMicroKernelNaiveSymbolic(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := randMat(rng, 61, 256)
	w := randMat(rng, 256, 256)
	out := tensor.New(tensor.Float32, 61, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulSymbolicNaive(a, w, out)
	}
}
