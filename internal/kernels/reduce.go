package kernels

import (
	"fmt"
	"math"

	"nimble/internal/tensor"
)

// reduceInto applies a row-reduction along `axis`, optionally keeping the
// reduced dimension as size 1, writing into out when it matches the result
// shape.
func reduceInto(name string, a, out *tensor.Tensor, axis int, keepDims bool, init float32, step func(acc, v float32) float32, finish func(acc float32, n int) float32) *tensor.Tensor {
	if a.DType() != tensor.Float32 {
		panic(fmt.Sprintf("kernels: %s requires float32, got %v", name, a.DType()))
	}
	axis = normalizeAxis(axis, a.Rank())
	in := a.Shape()
	if !reducedShapeFits(out, tensor.Float32, in, axis, keepDims) {
		outShape := make(tensor.Shape, 0, a.Rank())
		for d, v := range in {
			if d == axis {
				if keepDims {
					outShape = append(outShape, 1)
				}
				continue
			}
			outShape = append(outShape, v)
		}
		out = tensor.New(tensor.Float32, outShape...)
	}
	// Collapse to (outer, axis, inner).
	outer, inner := 1, 1
	for d := 0; d < axis; d++ {
		outer *= in[d]
	}
	for d := axis + 1; d < len(in); d++ {
		inner *= in[d]
	}
	nAxis := in[axis]
	av, ov := a.F32(), out.F32()
	for o := 0; o < outer; o++ {
		for i := 0; i < inner; i++ {
			acc := init
			for x := 0; x < nAxis; x++ {
				acc = step(acc, av[(o*nAxis+x)*inner+i])
			}
			ov[o*inner+i] = finish(acc, nAxis)
		}
	}
	return out
}

// reducedShapeFits reports whether out matches the shape `in` reduced along
// axis, without materializing that shape — the zero-allocation check behind
// the destination-passing reductions.
func reducedShapeFits(out *tensor.Tensor, dt tensor.DType, in tensor.Shape, axis int, keepDims bool) bool {
	if out == nil || out.DType() != dt {
		return false
	}
	want := len(in) - 1
	if keepDims {
		want = len(in)
	}
	os := out.Shape()
	if len(os) != want {
		return false
	}
	j := 0
	for d, v := range in {
		if d == axis {
			if keepDims {
				if os[j] != 1 {
					return false
				}
				j++
			}
			continue
		}
		if os[j] != v {
			return false
		}
		j++
	}
	return true
}

func normalizeAxis(axis, rank int) int {
	if axis < 0 {
		axis += rank
	}
	if axis < 0 || axis >= rank {
		panic(fmt.Sprintf("kernels: axis %d out of range for rank %d", axis, rank))
	}
	return axis
}

func sumStep(acc, v float32) float32 { return acc + v }
func maxStep(acc, v float32) float32 {
	if v > acc {
		return v
	}
	return acc
}
func identityFinish(acc float32, _ int) float32 { return acc }
func meanFinish(acc float32, n int) float32     { return acc / float32(n) }

// Sum reduces along axis by summation.
func Sum(a *tensor.Tensor, axis int, keepDims bool) *tensor.Tensor {
	return SumInto(a, nil, axis, keepDims)
}

// SumInto reduces along axis by summation into out.
func SumInto(a, out *tensor.Tensor, axis int, keepDims bool) *tensor.Tensor {
	return reduceInto("sum", a, out, axis, keepDims, 0, sumStep, identityFinish)
}

// Mean reduces along axis by arithmetic mean.
func Mean(a *tensor.Tensor, axis int, keepDims bool) *tensor.Tensor {
	return MeanInto(a, nil, axis, keepDims)
}

// MeanInto reduces along axis by arithmetic mean into out.
func MeanInto(a, out *tensor.Tensor, axis int, keepDims bool) *tensor.Tensor {
	return reduceInto("mean", a, out, axis, keepDims, 0, sumStep, meanFinish)
}

// Max reduces along axis by maximum.
func Max(a *tensor.Tensor, axis int, keepDims bool) *tensor.Tensor {
	return MaxInto(a, nil, axis, keepDims)
}

// MaxInto reduces along axis by maximum into out.
func MaxInto(a, out *tensor.Tensor, axis int, keepDims bool) *tensor.Tensor {
	return reduceInto("max", a, out, axis, keepDims, float32(math.Inf(-1)), maxStep, identityFinish)
}

// ArgMax returns the int64 indices of the maximum along axis (first winner on
// ties), dropping the reduced dimension.
func ArgMax(a *tensor.Tensor, axis int) *tensor.Tensor {
	return ArgMaxInto(a, nil, axis)
}

// ArgMaxInto computes ArgMax into out when it matches the int64 result shape.
func ArgMaxInto(a, out *tensor.Tensor, axis int) *tensor.Tensor {
	if a.DType() != tensor.Float32 {
		panic(fmt.Sprintf("kernels: argmax requires float32, got %v", a.DType()))
	}
	axis = normalizeAxis(axis, a.Rank())
	in := a.Shape()
	// The argmax result shape is `in` minus the reduced axis — the same
	// shape a keepdims=false reduction produces, checked without
	// materializing it so a destination hit stays allocation-free.
	if !reducedShapeFits(out, tensor.Int64, in, axis, false) {
		outShape := make(tensor.Shape, 0, a.Rank()-1)
		for d, v := range in {
			if d != axis {
				outShape = append(outShape, v)
			}
		}
		out = tensor.New(tensor.Int64, outShape...)
	}
	outer, inner := 1, 1
	for d := 0; d < axis; d++ {
		outer *= in[d]
	}
	for d := axis + 1; d < len(in); d++ {
		inner *= in[d]
	}
	nAxis := in[axis]
	av, ov := a.F32(), out.I64()
	for o := 0; o < outer; o++ {
		for i := 0; i < inner; i++ {
			best := float32(math.Inf(-1))
			var bestIdx int64
			for x := 0; x < nAxis; x++ {
				v := av[(o*nAxis+x)*inner+i]
				if v > best {
					best = v
					bestIdx = int64(x)
				}
			}
			ov[o*inner+i] = bestIdx
		}
	}
	return out
}

// Softmax computes a numerically stable softmax along the last axis.
func Softmax(a *tensor.Tensor) *tensor.Tensor { return SoftmaxInto(a, nil) }

// SoftmaxInto computes the softmax into out when it matches.
func SoftmaxInto(a, out *tensor.Tensor) *tensor.Tensor {
	if a.DType() != tensor.Float32 {
		panic(fmt.Sprintf("kernels: softmax requires float32, got %v", a.DType()))
	}
	if a.Rank() == 0 {
		if out != nil && out.DType() == tensor.Float32 && out.Rank() == 0 {
			out.F32()[0] = 1
			return out
		}
		return tensor.Scalar(1)
	}
	in := a.Shape()
	n := in[a.Rank()-1]
	rows := a.NumElements() / maxInt(n, 1)
	out = intoOrAlloc(out, tensor.Float32, in)
	av, ov := a.F32(), out.F32()
	for r := 0; r < rows; r++ {
		row := av[r*n : r*n+n]
		orow := ov[r*n : r*n+n]
		m := float32(math.Inf(-1))
		for _, v := range row {
			if v > m {
				m = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(float64(v - m))
			orow[i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := range orow {
			orow[i] *= inv
		}
	}
	return out
}

// LayerNorm normalizes over the last axis with learned scale gamma and shift
// beta (both shaped [lastDim]).
func LayerNorm(a, gamma, beta *tensor.Tensor, eps float32) *tensor.Tensor {
	return LayerNormInto(a, gamma, beta, nil, eps)
}

// LayerNormInto computes LayerNorm into out when it matches.
func LayerNormInto(a, gamma, beta, out *tensor.Tensor, eps float32) *tensor.Tensor {
	n := a.Shape()[a.Rank()-1]
	if gamma.Rank() != 1 || gamma.Shape()[0] != n || beta.Rank() != 1 || beta.Shape()[0] != n {
		panic(fmt.Sprintf("kernels: layernorm params %v/%v do not match last dim %d", gamma.Shape(), beta.Shape(), n))
	}
	rows := a.NumElements() / n
	out = intoOrAlloc(out, tensor.Float32, a.Shape())
	av, ov, gv, bv := a.F32(), out.F32(), gamma.F32(), beta.F32()
	for r := 0; r < rows; r++ {
		row := av[r*n : r*n+n]
		orow := ov[r*n : r*n+n]
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(n)
		var variance float64
		for _, v := range row {
			d := float64(v) - mean
			variance += d * d
		}
		variance /= float64(n)
		inv := float32(1 / math.Sqrt(variance+float64(eps)))
		for i, v := range row {
			orow[i] = (v-float32(mean))*inv*gv[i] + bv[i]
		}
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
