package kernels

import (
	"fmt"

	"nimble/internal/tensor"
)

// Concat concatenates tensors along `axis`. All inputs must share dtype and
// every dimension except `axis`. This is the canonical dynamic-output-shape
// operator of the paper's memory-planning example (§4.3): the output row
// count is the sum of input row counts, known only at runtime when any input
// has an Any dimension.
func Concat(ts []*tensor.Tensor, axis int) *tensor.Tensor {
	return ConcatInto(ts, nil, axis)
}

// ConcatInto is Concat writing into out when it matches the result shape.
func ConcatInto(ts []*tensor.Tensor, out *tensor.Tensor, axis int) *tensor.Tensor {
	if len(ts) == 0 {
		panic("kernels: concat of zero tensors")
	}
	first := ts[0]
	axis = normalizeAxis(axis, first.Rank())
	outShape := first.Shape().Clone()
	for _, t := range ts[1:] {
		if t.DType() != first.DType() || t.Rank() != first.Rank() {
			panic(fmt.Sprintf("kernels: concat dtype/rank mismatch: %v vs %v", first, t))
		}
		for d := 0; d < t.Rank(); d++ {
			if d == axis {
				continue
			}
			if t.Shape()[d] != first.Shape()[d] {
				panic(fmt.Sprintf("kernels: concat shape mismatch at axis %d: %v vs %v", d, first.Shape(), t.Shape()))
			}
		}
		outShape[axis] += t.Shape()[axis]
	}
	out = intoOrAlloc(out, first.DType(), outShape)
	// Copy in (outer, axis*inner) panels.
	outer := 1
	for d := 0; d < axis; d++ {
		outer *= outShape[d]
	}
	inner := 1
	for d := axis + 1; d < len(outShape); d++ {
		inner *= outShape[d]
	}
	outPanel := outShape[axis] * inner
	offset := 0
	for _, t := range ts {
		panel := t.Shape()[axis] * inner
		for o := 0; o < outer; o++ {
			copyRegion(out, o*outPanel+offset, t, o*panel, panel)
		}
		offset += panel
	}
	return out
}

// copyRegion copies n elements from src[srcOff:] to dst[dstOff:] respecting
// dtype. dst and src must share a dtype.
func copyRegion(dst *tensor.Tensor, dstOff int, src *tensor.Tensor, srcOff, n int) {
	switch dst.DType() {
	case tensor.Float32:
		copy(dst.F32()[dstOff:dstOff+n], src.F32()[srcOff:srcOff+n])
	case tensor.Float64:
		copy(dst.F64()[dstOff:dstOff+n], src.F64()[srcOff:srcOff+n])
	case tensor.Int32:
		copy(dst.I32()[dstOff:dstOff+n], src.I32()[srcOff:srcOff+n])
	case tensor.Int64:
		copy(dst.I64()[dstOff:dstOff+n], src.I64()[srcOff:srcOff+n])
	case tensor.Bool:
		copy(dst.Bools()[dstOff:dstOff+n], src.Bools()[srcOff:srcOff+n])
	}
}

// Split divides t into `parts` equal chunks along axis.
func Split(t *tensor.Tensor, parts, axis int) []*tensor.Tensor {
	axis = normalizeAxis(axis, t.Rank())
	if parts <= 0 || t.Shape()[axis]%parts != 0 {
		panic(fmt.Sprintf("kernels: cannot split axis of size %d into %d parts", t.Shape()[axis], parts))
	}
	size := t.Shape()[axis] / parts
	out := make([]*tensor.Tensor, parts)
	for p := 0; p < parts; p++ {
		out[p] = Slice(t, axis, p*size, (p+1)*size)
	}
	return out
}

// Slice extracts t[..., lo:hi, ...] along axis (copying).
func Slice(t *tensor.Tensor, axis, lo, hi int) *tensor.Tensor {
	return SliceInto(t, nil, axis, lo, hi)
}

// slicedShapeFits reports whether out matches t's shape with `axis` replaced
// by extent, without materializing that shape — keeps a destination hit
// allocation-free.
func slicedShapeFits(out, t *tensor.Tensor, axis, extent int) bool {
	if out == nil || out.DType() != t.DType() || out.Rank() != t.Rank() {
		return false
	}
	for d, v := range t.Shape() {
		if d == axis {
			v = extent
		}
		if out.Shape()[d] != v {
			return false
		}
	}
	return true
}

// SliceInto is Slice writing into out when it matches the result shape.
func SliceInto(t, out *tensor.Tensor, axis, lo, hi int) *tensor.Tensor {
	axis = normalizeAxis(axis, t.Rank())
	if lo < 0 || hi > t.Shape()[axis] || lo > hi {
		panic(fmt.Sprintf("kernels: slice [%d:%d] out of range for axis %d of %v", lo, hi, axis, t.Shape()))
	}
	if !slicedShapeFits(out, t, axis, hi-lo) {
		outShape := t.Shape().Clone()
		outShape[axis] = hi - lo
		out = tensor.New(t.DType(), outShape...)
	}
	outer := 1
	for d := 0; d < axis; d++ {
		outer *= t.Shape()[d]
	}
	inner := 1
	for d := axis + 1; d < t.Rank(); d++ {
		inner *= t.Shape()[d]
	}
	srcPanel := t.Shape()[axis] * inner
	dstPanel := (hi - lo) * inner
	for o := 0; o < outer; o++ {
		copyRegion(out, o*dstPanel, t, o*srcPanel+lo*inner, dstPanel)
	}
	return out
}

// Take gathers rows of `table` (shape [v, d]) by integer `indices` (any
// shape), producing shape indices.Shape() + [d]. This is the embedding-lookup
// kernel.
func Take(table, indices *tensor.Tensor) *tensor.Tensor {
	if table.Rank() != 2 {
		panic(fmt.Sprintf("kernels: take requires rank-2 table, got %v", table.Shape()))
	}
	v, d := table.Shape()[0], table.Shape()[1]
	var idx []int64
	switch indices.DType() {
	case tensor.Int64:
		idx = indices.I64()
	case tensor.Int32:
		idx = make([]int64, indices.NumElements())
		for i, x := range indices.I32() {
			idx[i] = int64(x)
		}
	default:
		panic(fmt.Sprintf("kernels: take requires integer indices, got %v", indices.DType()))
	}
	outShape := append(indices.Shape().Clone(), d)
	out := tensor.New(table.DType(), outShape...)
	for i, ix := range idx {
		if ix < 0 || ix >= int64(v) {
			panic(fmt.Sprintf("kernels: take index %d out of range [0, %d)", ix, v))
		}
		copyRegion(out, i*d, table, int(ix)*d, d)
	}
	return out
}

// Transpose permutes the axes of t by perm; a nil perm reverses all axes.
func Transpose(t *tensor.Tensor, perm []int) *tensor.Tensor {
	r := t.Rank()
	if perm == nil {
		perm = make([]int, r)
		for i := range perm {
			perm[i] = r - 1 - i
		}
	}
	if len(perm) != r {
		panic(fmt.Sprintf("kernels: transpose perm %v does not match rank %d", perm, r))
	}
	seen := make([]bool, r)
	outShape := make(tensor.Shape, r)
	for i, p := range perm {
		if p < 0 || p >= r || seen[p] {
			panic(fmt.Sprintf("kernels: invalid transpose perm %v", perm))
		}
		seen[p] = true
		outShape[i] = t.Shape()[p]
	}
	out := tensor.New(t.DType(), outShape...)
	inStrides := t.Shape().Strides()
	n := t.NumElements()
	if n == 0 {
		return out
	}
	// Special-case the dominant 2-D transpose.
	if r == 2 && perm[0] == 1 && t.DType() == tensor.Float32 {
		rows, cols := t.Shape()[0], t.Shape()[1]
		tv, ov := t.F32(), out.F32()
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				ov[j*rows+i] = tv[i*cols+j]
			}
		}
		return out
	}
	idx := make([]int, r)
	for lin := 0; lin < n; lin++ {
		src := 0
		for d := 0; d < r; d++ {
			src += idx[d] * inStrides[perm[d]]
		}
		copyRegion(out, lin, t, src, 1)
		for d := r - 1; d >= 0; d-- {
			idx[d]++
			if idx[d] < outShape[d] {
				break
			}
			idx[d] = 0
		}
	}
	return out
}

// Stack joins tensors of identical shape along a new leading axis.
func Stack(ts []*tensor.Tensor) *tensor.Tensor {
	if len(ts) == 0 {
		panic("kernels: stack of zero tensors")
	}
	base := ts[0].Shape()
	for _, t := range ts[1:] {
		if !t.Shape().Equal(base) || t.DType() != ts[0].DType() {
			panic(fmt.Sprintf("kernels: stack mismatch: %v vs %v", ts[0], t))
		}
	}
	outShape := append(tensor.Shape{len(ts)}, base...)
	out := tensor.New(ts[0].DType(), outShape...)
	per := base.NumElements()
	for i, t := range ts {
		copyRegion(out, i*per, t, 0, per)
	}
	return out
}

// Pad pads the last axis of a rank-2 float32 tensor to `width` with `value`,
// the transformation frameworks use to reduce a dynamic model to a static one
// (§2.1). Used by the static-padding baseline.
func Pad(t *tensor.Tensor, width int, value float32) *tensor.Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("kernels: pad requires rank-2 input, got %v", t.Shape()))
	}
	rows, cols := t.Shape()[0], t.Shape()[1]
	if width < cols {
		panic(fmt.Sprintf("kernels: pad width %d smaller than input %d", width, cols))
	}
	out := tensor.New(tensor.Float32, rows, width)
	ov, tv := out.F32(), t.F32()
	for i := 0; i < rows; i++ {
		copy(ov[i*width:i*width+cols], tv[i*cols:i*cols+cols])
		for j := cols; j < width; j++ {
			ov[i*width+j] = value
		}
	}
	return out
}

// PadRows pads the leading axis of a rank-2 float32 tensor to `rows` rows
// filled with `value`. Used to pad variable sequence lengths.
func PadRows(t *tensor.Tensor, rows int, value float32) *tensor.Tensor {
	if t.Rank() != 2 {
		panic(fmt.Sprintf("kernels: padRows requires rank-2 input, got %v", t.Shape()))
	}
	r, c := t.Shape()[0], t.Shape()[1]
	if rows < r {
		panic(fmt.Sprintf("kernels: padRows target %d smaller than input %d", rows, r))
	}
	out := tensor.New(tensor.Float32, rows, c)
	copy(out.F32(), t.F32())
	for i := r * c; i < rows*c; i++ {
		out.F32()[i] = value
	}
	return out
}
