package models

import (
	"math/rand"

	"nimble/internal/ir"
	"nimble/internal/nn"
	"nimble/internal/tensor"
)

// BERTConfig sizes the transformer encoder of Table 3. The paper uses BERT
// base (12 layers, hidden 768, 12 heads); the pure-Go benches default to a
// reduced configuration with the same architecture so one inference stays in
// milliseconds — EXPERIMENTS.md reports which config produced each number.
type BERTConfig struct {
	Layers int
	Hidden int
	Heads  int
	FFN    int
	Vocab  int
	MaxSeq int
	Seed   int64
}

// BERTBase is the paper's configuration.
func BERTBase() BERTConfig {
	return BERTConfig{Layers: 12, Hidden: 768, Heads: 12, FFN: 3072, Vocab: 30522, MaxSeq: 128, Seed: 44}
}

// BERTReduced is the default bench configuration: same architecture, scaled
// dimensions.
func BERTReduced() BERTConfig {
	return BERTConfig{Layers: 4, Hidden: 256, Heads: 4, FFN: 1024, Vocab: 8192, MaxSeq: 128, Seed: 44}
}

// BERT is a transformer encoder over a dynamic-length token sequence — the
// evaluation's "dynamic data shape" model: the sequence dimension is Any
// throughout, so every dense kernel is symbolic and residue-dispatched.
type BERT struct {
	Config BERTConfig
	Module *ir.Module
}

// NewBERT builds the encoder as a single static graph over Tensor[(Any,
// hidden)] activations: embedding lookup, then per layer multi-head
// self-attention (scores [Any, Any]) and a GELU FFN with residuals and
// layer norm.
func NewBERT(cfg BERTConfig) *BERT { return newBERT(cfg, ir.DimAny) }

// NewBERTStatic builds the same encoder with a fixed sequence length — the
// statically shaped variant Table 4 compares against: every kernel compiles
// with concrete shapes and no shape functions or dynamic allocation remain.
func NewBERTStatic(cfg BERTConfig, seq int) *BERT { return newBERT(cfg, seq) }

func newBERT(cfg BERTConfig, seqDim int) *BERT {
	nn.Validate(cfg.Layers, cfg.Hidden, cfg.Heads, cfg.FFN, cfg.Vocab)
	if cfg.Hidden%cfg.Heads != 0 {
		panic("models: hidden must divide by heads")
	}
	init := nn.NewInit(cfg.Seed)
	mod := ir.NewModule()
	b := ir.NewBuilder()

	ids := ir.NewVar("ids", ir.TT(tensor.Int64, seqDim))
	emb := nn.NewEmbedding(init, cfg.Vocab, cfg.Hidden)
	x := ir.Expr(emb.Apply(b, ids))

	headDim := cfg.Hidden / cfg.Heads
	scale := ir.ConstScalar(1.0 / float32sqrt(float32(headDim)))

	for layer := 0; layer < cfg.Layers; layer++ {
		wq := nn.NewLinear(init, cfg.Hidden, cfg.Hidden)
		wk := nn.NewLinear(init, cfg.Hidden, cfg.Hidden)
		wv := nn.NewLinear(init, cfg.Hidden, cfg.Hidden)
		wo := nn.NewLinear(init, cfg.Hidden, cfg.Hidden)
		ln1 := nn.NewLayerNorm(init, cfg.Hidden)
		ln2 := nn.NewLayerNorm(init, cfg.Hidden)
		ff1 := nn.NewLinear(init, cfg.Hidden, cfg.FFN)
		ff2 := nn.NewLinear(init, cfg.FFN, cfg.Hidden)

		q := wq.Apply(b, x)
		k := wk.Apply(b, x)
		v := wv.Apply(b, x)

		heads := make([]ir.Expr, cfg.Heads)
		for hIdx := 0; hIdx < cfg.Heads; hIdx++ {
			lo, hi := hIdx*headDim, (hIdx+1)*headDim
			sl := func(t ir.Expr) ir.Expr {
				return b.OpAttrs("strided_slice", ir.Attrs{"axis": 1, "begin": lo, "end": hi}, t)
			}
			qh, kh, vh := sl(q), sl(k), sl(v)
			kT := b.Op("transpose", kh)     // [headDim, Any]
			scores := b.Op("dense", qh, kT) // [Any, Any]
			scaled := b.Op("multiply", scores, scale)
			probs := b.Op("softmax", scaled)
			heads[hIdx] = b.Op("dense", probs, vh) // [Any, headDim]
		}
		ctx := b.OpAttrs("concat", ir.Attrs{"axis": 1}, heads...)
		attnOut := wo.Apply(b, ctx)
		x = ln1.Apply(b, b.Op("add", x, attnOut))

		ffn := ff2.Apply(b, b.Op("gelu", ff1.Apply(b, x)))
		x = ln2.Apply(b, b.Op("add", x, ffn))
	}

	mod.AddFunc("main", ir.NewFunc([]*ir.Var{ids}, b.Finish(x),
		ir.TT(tensor.Float32, ir.DimAny, cfg.Hidden)))
	return &BERT{Config: cfg, Module: mod}
}

func float32sqrt(x float32) float32 {
	// Newton iterations suffice for the attention scale constant.
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 20; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// RandomIDs draws a token-id sequence of length n.
func (m *BERT) RandomIDs(rng *rand.Rand, n int) *tensor.Tensor {
	return tensor.RandomInts(rng, int64(m.Config.Vocab), n)
}

// SeqFlops estimates the floating-point work of one inference at sequence
// length s, for the platform cost model.
func (m *BERT) SeqFlops(s int) int64 {
	h, f, L := int64(m.Config.Hidden), int64(m.Config.FFN), int64(m.Config.Layers)
	sl := int64(s)
	perLayer := 4*2*sl*h*h + // q,k,v,o projections
		2*2*sl*sl*h + // scores and context
		2*2*sl*h*f // ffn
	return L * perLayer
}
