package models

import (
	"fmt"

	"nimble/internal/ir"
	"nimble/internal/nn"
	"nimble/internal/tensor"
)

// The computer-vision graphs back the §6.3 memory-footprint comparison
// ("popular computer vision models such as ResNet, MobileNet, VGG and
// SqueezeNet"). They are structurally faithful reductions — the same
// conv/pool/dense skeletons with the canonical channel progressions — built
// at a configurable spatial size so the footprint study can run at 224 and
// the correctness tests at 32.

// CVModel bundles a built CV graph.
type CVModel struct {
	Name   string
	Module *ir.Module
	// InputShape is the NCHW input the graph expects.
	InputShape tensor.Shape
}

// conv emits conv2d+relu with fresh weights.
func conv(b *ir.Builder, init *nn.Init, x ir.Expr, cIn, cOut, k, stride, pad int, relu bool) ir.Expr {
	wt := tensor.Random(init.Rng, 0.1, cOut, cIn, k, k)
	y := b.OpAttrs("conv2d", ir.Attrs{"stride": stride, "pad": pad}, x, ir.Const(wt))
	if relu {
		return b.Op("relu", y)
	}
	return y
}

func classifier(b *ir.Builder, init *nn.Init, x ir.Expr, cIn, classes int) ir.Expr {
	pooled := b.Op("global_avg_pool2d", x) // [1, cIn]
	fc := nn.NewLinear(init, cIn, classes)
	return fc.Apply(b, pooled)
}

// NewResNet builds a ResNet-style graph: a stem followed by four stages of
// residual blocks with channel doubling and stride-2 downsampling.
func NewResNet(spatial int) *CVModel {
	init := nn.NewInit(50)
	b := ir.NewBuilder()
	in := ir.NewVar("img", ir.TT(tensor.Float32, 1, 3, spatial, spatial))
	x := conv(b, init, in, 3, 64, 7, 2, 3, true)
	x = b.OpAttrs("max_pool2d", ir.Attrs{"k": 2, "stride": 2}, x)
	channels := []int{64, 128, 256, 512}
	cPrev := 64
	for _, c := range channels {
		stride := 1
		if c != 64 {
			stride = 2
		}
		// Two residual blocks per stage.
		for blk := 0; blk < 2; blk++ {
			s := 1
			cin := c
			if blk == 0 {
				s = stride
				cin = cPrev
			}
			y := conv(b, init, x, cin, c, 3, s, 1, true)
			y = conv(b, init, y, c, c, 3, 1, 1, false)
			var short ir.Expr = x
			if blk == 0 && (s != 1 || cin != c) {
				short = conv(b, init, x, cin, c, 1, s, 0, false)
			}
			x = b.Op("relu", b.Op("add", y, short))
		}
		cPrev = c
	}
	out := classifier(b, init, x, 512, 1000)
	mod := ir.NewModule()
	mod.AddFunc("main", ir.NewFunc([]*ir.Var{in}, b.Finish(out), nil))
	return &CVModel{Name: "resnet", Module: mod, InputShape: tensor.Shape{1, 3, spatial, spatial}}
}

// NewMobileNet builds a MobileNet-style stack of strided convolutions with
// the canonical 32→64→128→256→512→1024 channel progression. (Depthwise
// separability affects FLOPs, not allocation structure, so the blocks use
// ordinary convs with the same activation shapes.)
func NewMobileNet(spatial int) *CVModel {
	init := nn.NewInit(51)
	b := ir.NewBuilder()
	in := ir.NewVar("img", ir.TT(tensor.Float32, 1, 3, spatial, spatial))
	x := conv(b, init, in, 3, 32, 3, 2, 1, true)
	plan := []struct{ c, stride int }{
		{64, 1}, {128, 2}, {128, 1}, {256, 2}, {256, 1},
		{512, 2}, {512, 1}, {512, 1}, {1024, 2},
	}
	cPrev := 32
	for _, p := range plan {
		x = conv(b, init, x, cPrev, p.c, 3, p.stride, 1, true)
		cPrev = p.c
	}
	out := classifier(b, init, x, 1024, 1000)
	mod := ir.NewModule()
	mod.AddFunc("main", ir.NewFunc([]*ir.Var{in}, b.Finish(out), nil))
	return &CVModel{Name: "mobilenet", Module: mod, InputShape: tensor.Shape{1, 3, spatial, spatial}}
}

// NewVGG builds a VGG-11-style graph: conv blocks with max-pooling between
// stages.
func NewVGG(spatial int) *CVModel {
	init := nn.NewInit(52)
	b := ir.NewBuilder()
	in := ir.NewVar("img", ir.TT(tensor.Float32, 1, 3, spatial, spatial))
	x := ir.Expr(in)
	cPrev := 3
	for _, stage := range [][]int{{64}, {128}, {256, 256}, {512, 512}, {512, 512}} {
		for _, c := range stage {
			x = conv(b, init, x, cPrev, c, 3, 1, 1, true)
			cPrev = c
		}
		x = b.OpAttrs("max_pool2d", ir.Attrs{"k": 2, "stride": 2}, x)
	}
	out := classifier(b, init, x, 512, 1000)
	mod := ir.NewModule()
	mod.AddFunc("main", ir.NewFunc([]*ir.Var{in}, b.Finish(out), nil))
	return &CVModel{Name: "vgg", Module: mod, InputShape: tensor.Shape{1, 3, spatial, spatial}}
}

// NewSqueezeNet builds a SqueezeNet-style graph of fire modules (squeeze
// 1x1 conv followed by parallel 1x1/3x3 expands concatenated on channels).
func NewSqueezeNet(spatial int) *CVModel {
	init := nn.NewInit(53)
	b := ir.NewBuilder()
	in := ir.NewVar("img", ir.TT(tensor.Float32, 1, 3, spatial, spatial))
	x := conv(b, init, in, 3, 64, 3, 2, 1, true)
	x = b.OpAttrs("max_pool2d", ir.Attrs{"k": 2, "stride": 2}, x)
	fire := func(x ir.Expr, cIn, squeeze, expand int) ir.Expr {
		s := conv(b, init, x, cIn, squeeze, 1, 1, 0, true)
		e1 := conv(b, init, s, squeeze, expand, 1, 1, 0, true)
		e3 := conv(b, init, s, squeeze, expand, 3, 1, 1, true)
		return b.OpAttrs("concat", ir.Attrs{"axis": 1}, e1, e3)
	}
	x = fire(x, 64, 16, 64)  // -> 128
	x = fire(x, 128, 16, 64) // -> 128
	x = b.OpAttrs("max_pool2d", ir.Attrs{"k": 2, "stride": 2}, x)
	x = fire(x, 128, 32, 128) // -> 256
	x = fire(x, 256, 32, 128) // -> 256
	x = b.OpAttrs("max_pool2d", ir.Attrs{"k": 2, "stride": 2}, x)
	x = fire(x, 256, 48, 192) // -> 384
	x = fire(x, 384, 64, 256) // -> 512
	out := classifier(b, init, x, 512, 1000)
	mod := ir.NewModule()
	mod.AddFunc("main", ir.NewFunc([]*ir.Var{in}, b.Finish(out), nil))
	return &CVModel{Name: "squeezenet", Module: mod, InputShape: tensor.Shape{1, 3, spatial, spatial}}
}

// CVModels builds all four study graphs at the given spatial size.
func CVModels(spatial int) []*CVModel {
	return []*CVModel{
		NewResNet(spatial), NewMobileNet(spatial), NewVGG(spatial), NewSqueezeNet(spatial),
	}
}

// String describes the model for reports.
func (m *CVModel) String() string {
	return fmt.Sprintf("%s%v", m.Name, m.InputShape)
}
