package models

import (
	"fmt"
	"math/rand"

	"nimble/internal/ir"
	"nimble/internal/nn"
	"nimble/internal/tensor"
)

// DecoderConfig sizes the autoregressive transformer decoder used by the
// streaming-decode evaluation: a pre-norm GPT-style block stack generating
// MaxNew tokens with a per-layer in-VM KV-cache.
type DecoderConfig struct {
	Vocab  int
	Dim    int
	Layers int
	Heads  int
	FFN    int
	// MaxNew is the number of tokens one invocation generates (and the
	// capacity of every cache buffer).
	MaxNew int
	// Seed initializes the weights and, for the sampled entry, the
	// deterministic sampler.
	Seed int64
	// Temp is the softmax temperature of the "generate_sampled" entry;
	// "generate" is always greedy.
	Temp float64
}

// DefaultDecoderConfig is a small decoder that exercises every piece of the
// streaming path while staying fast enough for tests.
func DefaultDecoderConfig() DecoderConfig {
	return DecoderConfig{Vocab: 128, Dim: 64, Layers: 2, Heads: 4, FFN: 128, MaxNew: 32, Seed: 42, Temp: 0.8}
}

// Decoder bundles the IR module with the metadata the harness needs.
type Decoder struct {
	Config DecoderConfig
	Module *ir.Module
}

type decoderLayer struct {
	ln1, ln2       *nn.LayerNorm
	wq, wk, wv, wo *nn.Linear
	ff1, ff2       *nn.Linear
}

// NewDecoder builds the decoder as a self-recursive IR function:
//
//	loop(tok, pos, out, K1, V1, ..., KL, VL) =
//	  x    = embed[tok] + posembed[pos]
//	  per layer: append k/v at pos (in place), attend over the prefix
//	  next = sample(logits, pos); emit(next); out[pos] = next
//	  if pos+1 < MaxNew then loop(next, pos+1, out, K', V', ...) else out
//
// The compiler turns the tail self-call into a backward jump (one frame for
// the whole generation) and the memory planner routes every cache_append
// onto its own cache buffer, so each step touches one cache row instead of
// copying the cache. Two entries share the weights: "generate" decodes
// greedily, "generate_sampled" samples at cfg.Temp with cfg.Seed.
func NewDecoder(cfg DecoderConfig) *Decoder {
	nn.Validate(cfg.Vocab, cfg.Dim, cfg.Layers, cfg.Heads, cfg.FFN, cfg.MaxNew)
	if cfg.Dim%cfg.Heads != 0 {
		panic(fmt.Sprintf("models: decoder dim %d not divisible by %d heads", cfg.Dim, cfg.Heads))
	}
	init := nn.NewInit(cfg.Seed)
	mod := ir.NewModule()

	embed := nn.NewEmbedding(init, cfg.Vocab, cfg.Dim)
	posEmbed := nn.NewEmbedding(init, cfg.MaxNew, cfg.Dim)
	layers := make([]*decoderLayer, cfg.Layers)
	for i := range layers {
		layers[i] = &decoderLayer{
			ln1: nn.NewLayerNorm(init, cfg.Dim), ln2: nn.NewLayerNorm(init, cfg.Dim),
			wq: nn.NewLinear(init, cfg.Dim, cfg.Dim), wk: nn.NewLinear(init, cfg.Dim, cfg.Dim),
			wv: nn.NewLinear(init, cfg.Dim, cfg.Dim), wo: nn.NewLinear(init, cfg.Dim, cfg.Dim),
			ff1: nn.NewLinear(init, cfg.Dim, cfg.FFN), ff2: nn.NewLinear(init, cfg.FFN, cfg.Dim),
		}
	}
	lnF := nn.NewLayerNorm(init, cfg.Dim)
	lmHead := nn.NewLinear(init, cfg.Dim, cfg.Vocab)

	d := &Decoder{Config: cfg, Module: mod}
	d.addEntry("loop", "generate", 0, embed, posEmbed, layers, lnF, lmHead)
	if cfg.Temp > 0 {
		d.addEntry("loop_sampled", "generate_sampled", cfg.Temp, embed, posEmbed, layers, lnF, lmHead)
	}
	return d
}

// addEntry emits one (loop, entry) pair at the given sampling temperature.
// The weights are shared *ir.Constant values, so the compiler's constant
// interning stores each tensor once however many entries reference it.
func (d *Decoder) addEntry(loopName, entryName string, temp float64,
	embed, posEmbed *nn.Embedding, layers []*decoderLayer, lnF *nn.LayerNorm, lmHead *nn.Linear) {
	cfg := d.Config
	idxT := ir.TT(tensor.Int64, 1)
	outT := ir.TT(tensor.Int64, cfg.MaxNew)
	cacheT := ir.TT(tensor.Float32, cfg.MaxNew, cfg.Dim)

	params := []*ir.Var{
		ir.NewVar("tok", idxT), ir.NewVar("pos", idxT), ir.NewVar("out", outT),
	}
	for i := range layers {
		params = append(params,
			ir.NewVar(fmt.Sprintf("k%d", i), cacheT),
			ir.NewVar(fmt.Sprintf("v%d", i), cacheT))
	}

	b := ir.NewBuilder()
	tok, pos, outBuf := params[0], params[1], params[2]
	x := ir.Expr(b.Op("add", embed.Apply(b, tok), posEmbed.Apply(b, pos)))
	npos := b.Op("index_inc", pos)
	recArgs := make([]ir.Expr, len(params))
	for i := range layers {
		l := layers[i]
		h := l.ln1.Apply(b, x)
		q := l.wq.Apply(b, h)
		k := l.wk.Apply(b, h)
		v := l.wv.Apply(b, h)
		kc := b.Op("cache_append", params[3+2*i], k, pos)
		vc := b.Op("cache_append", params[4+2*i], v, pos)
		recArgs[3+2*i], recArgs[4+2*i] = kc, vc
		attn := b.OpAttrs("attn_cached", ir.Attrs{"heads": cfg.Heads}, q, kc, vc, npos)
		x = b.Op("add", x, l.wo.Apply(b, attn))
		h2 := l.ln2.Apply(b, x)
		ff := l.ff2.Apply(b, b.Op("tanh", l.ff1.Apply(b, h2)))
		x = b.Op("add", x, ff)
	}
	logits := lmHead.ApplyNoBias(b, lnF.Apply(b, x))
	next := b.OpAttrs("sample_token", ir.Attrs{"temp": temp, "seed": int(cfg.Seed)}, logits, pos)
	// The emitted token rides the data path into the output buffer, so the
	// streaming tap can neither be dead-code-eliminated nor reordered past
	// the write it announces.
	em := b.Op(ir.OpStreamEmit, next)
	outNew := b.Op("cache_append", outBuf, em, pos)
	limit := ir.Const(tensor.FromI64([]int64{int64(cfg.MaxNew)}, 1))
	more := b.Op("index_lt", npos, limit)
	recArgs[0], recArgs[1], recArgs[2] = em, npos, outNew
	body := b.Finish(&ir.If{
		Cond: more,
		Then: ir.NewCall(&ir.GlobalVar{Name: loopName}, recArgs, nil),
		Else: outNew,
	})
	d.Module.AddFunc(loopName, ir.NewFunc(params, body, outT))

	// entry(start) seeds position 0 with zeroed planner-owned state buffers.
	// state_zeros (not `zeros`) keeps them out of constant folding: a folded
	// cache would be a shared constant mutated in place across sessions.
	start := ir.NewVar("start", idxT)
	eb := ir.NewBuilder()
	args := []ir.Expr{
		start,
		ir.Const(tensor.FromI64([]int64{0}, 1)),
		eb.OpAttrs("state_zeros", ir.Attrs{"shape": []int{cfg.MaxNew}, "dtype": "int64"}),
	}
	for range layers {
		args = append(args,
			eb.OpAttrs("state_zeros", ir.Attrs{"shape": []int{cfg.MaxNew, cfg.Dim}, "dtype": "float32"}),
			eb.OpAttrs("state_zeros", ir.Attrs{"shape": []int{cfg.MaxNew, cfg.Dim}, "dtype": "float32"}))
	}
	body = eb.Finish(ir.NewCall(&ir.GlobalVar{Name: loopName}, args, nil))
	d.Module.AddFunc(entryName, ir.NewFunc([]*ir.Var{start}, body, outT))
}

// StartToken wraps a token id as the [1] int64 tensor the entries expect.
func StartToken(id int64) *tensor.Tensor { return tensor.FromI64([]int64{id}, 1) }

// RandomStart draws a valid start token.
func (d *Decoder) RandomStart(rng *rand.Rand) *tensor.Tensor {
	return StartToken(rng.Int63n(int64(d.Config.Vocab)))
}

// StepFlops estimates the floating-point work of generating one token (for
// benchmark reporting): the projections and FFN matmuls plus attention over
// an average prefix of MaxNew/2 cached rows.
func (d *Decoder) StepFlops() int64 {
	c := d.Config
	dense := int64(8*c.Dim*c.Dim + 4*c.Dim*c.FFN)
	attn := int64(4 * c.Dim * (c.MaxNew / 2))
	return int64(c.Layers)*(dense+attn) + int64(2*c.Dim*c.Vocab)
}
