// Package models builds the paper's evaluation models as IR modules: LSTM
// (dynamic control flow, §6.1), Tree-LSTM (dynamic data structures), BERT
// (dynamic data shapes), and the computer-vision graphs used by the §6.3
// memory-footprint study.
package models

import (
	"fmt"
	"math/rand"

	"nimble/internal/ir"
	"nimble/internal/nn"
	"nimble/internal/tensor"
	"nimble/internal/vm"
)

// LSTMConfig sizes the LSTM of Table 1: "the input size / hidden size used
// in the LSTM ... are 300/512".
type LSTMConfig struct {
	Input  int
	Hidden int
	Layers int
	Seed   int64
}

// DefaultLSTMConfig matches the paper.
func DefaultLSTMConfig(layers int) LSTMConfig {
	return LSTMConfig{Input: 300, Hidden: 512, Layers: layers, Seed: 42}
}

// LSTM bundles the IR module with the pieces the harness needs to drive it.
type LSTM struct {
	Config LSTMConfig
	Module *ir.Module
	Cells  []*nn.LSTMCell
	// List constructors for building input sequences.
	ListDef *ir.TypeDef
	NilC    *ir.Constructor
	ConsC   *ir.Constructor
}

// NewLSTM builds a stacked LSTM as a recursive IR function over a cons-list
// of [1, input] step tensors. The dynamic control flow — "the execution
// path can only be determined at runtime" — is the match on the list spine:
//
//	loop(xs, h1, c1, ..., hN, cN) = match xs {
//	  Nil          => h_last
//	  Cons(x, rest) => step all layers; loop(rest, states')
//	}
func NewLSTM(cfg LSTMConfig) *LSTM {
	nn.Validate(cfg.Input, cfg.Hidden, cfg.Layers)
	init := nn.NewInit(cfg.Seed)
	mod := ir.NewModule()
	listDef, nilC, consC := nn.ListType("List", cfg.Input)
	mod.AddTypeDef(listDef)

	cells := make([]*nn.LSTMCell, cfg.Layers)
	for i := range cells {
		in := cfg.Input
		if i > 0 {
			in = cfg.Hidden
		}
		cells[i] = nn.NewLSTMCell(init, in, cfg.Hidden)
	}

	// loop(xs, h1, c1, ..., hL, cL) -> Tensor[(1, hidden)]
	stateT := ir.TT(tensor.Float32, 1, cfg.Hidden)
	params := []*ir.Var{ir.NewVar("xs", listDef.Type())}
	for i := 0; i < cfg.Layers; i++ {
		params = append(params,
			ir.NewVar(fmt.Sprintf("h%d", i), stateT),
			ir.NewVar(fmt.Sprintf("c%d", i), stateT))
	}
	x := ir.NewVar("x", nil)
	rest := ir.NewVar("rest", nil)

	b := ir.NewBuilder()
	input := ir.Expr(x)
	recArgs := []ir.Expr{rest}
	for i, cell := range cells {
		h, c := cell.Step(b, input, params[1+2*i], params[2+2*i])
		recArgs = append(recArgs, h, c)
		input = h
	}
	rec := b.Bind("rec", ir.NewCall(&ir.GlobalVar{Name: "loop"}, recArgs, nil))
	consBody := b.Finish(rec)

	body := &ir.Match{Data: params[0], Clauses: []*ir.Clause{
		{Pattern: ir.CtorPat(nilC), Body: params[len(params)-2]},
		{Pattern: ir.CtorPat(consC, ir.VarPat(x), ir.VarPat(rest)), Body: consBody},
	}}
	mod.AddFunc("loop", ir.NewFunc(params, body, stateT))

	// main(xs) seeds zero states.
	xsMain := ir.NewVar("xs", listDef.Type())
	mainArgs := []ir.Expr{xsMain}
	for i := 0; i < cfg.Layers; i++ {
		z1, z2 := cells[i].ZeroState(), cells[i].ZeroState()
		mainArgs = append(mainArgs, z1, z2)
	}
	mod.AddFunc("main", ir.NewFunc([]*ir.Var{xsMain},
		ir.NewCall(&ir.GlobalVar{Name: "loop"}, mainArgs, nil), stateT))

	return &LSTM{Config: cfg, Module: mod, Cells: cells, ListDef: listDef, NilC: nilC, ConsC: consC}
}

// SequenceToList packs step tensors into the VM cons-list the compiled
// model consumes (first step at the head).
func SequenceToList(nilTag, consTag int, steps []*tensor.Tensor) vm.Object {
	var list vm.Object = &vm.ADT{Tag: nilTag}
	for i := len(steps) - 1; i >= 0; i-- {
		list = &vm.ADT{Tag: consTag, Fields: []vm.Object{vm.NewTensorObj(steps[i]), list}}
	}
	return list
}

// RandomSequence draws a length-n input sequence for the model.
func (m *LSTM) RandomSequence(rng *rand.Rand, n int) vm.Object {
	steps := make([]*tensor.Tensor, n)
	for i := range steps {
		steps[i] = tensor.Random(rng, 1, 1, m.Config.Input)
	}
	return SequenceToList(m.NilC.Tag, m.ConsC.Tag, steps)
}

// RandomSteps draws the raw step tensors (for baseline executors that
// consume slices rather than ADT lists).
func (m *LSTM) RandomSteps(rng *rand.Rand, n int) []*tensor.Tensor {
	steps := make([]*tensor.Tensor, n)
	for i := range steps {
		steps[i] = tensor.Random(rng, 1, 1, m.Config.Input)
	}
	return steps
}

// StepFlops estimates the floating-point work of one LSTM time step across
// all layers (two dense ops per layer), for the platform cost model.
func (m *LSTM) StepFlops() int64 {
	var f int64
	for _, c := range m.Cells {
		f += 2 * int64(c.Input) * int64(4*c.Hidden) // x projection
		f += 2 * int64(c.Hidden) * int64(4*c.Hidden)
		f += 8 * int64(c.Hidden) // gates / elementwise
	}
	return f
}
