package models

import (
	"math/rand"

	"nimble/internal/ir"
	"nimble/internal/nn"
	"nimble/internal/tensor"
)

// MLPConfig sizes a feed-forward classifier head.
type MLPConfig struct {
	In     int
	Hidden int
	Out    int
	Layers int
	Seed   int64
}

// DefaultMLPConfig is a small head sized for serving benchmarks.
func DefaultMLPConfig() MLPConfig {
	return MLPConfig{In: 64, Hidden: 256, Out: 16, Layers: 2, Seed: 45}
}

// MLP is a dense feed-forward network over a dynamic batch: the input is
// Tensor[(Any, in)] and every operator in the body — dense, bias_add, relu
// — is row-independent, so concatenating requests along the leading
// dimension and slicing the output back apart is semantics-preserving.
// This is the property the serving micro-batcher (internal/serve.Batcher)
// relies on, and which the recurrent/attention models do NOT have: an LSTM
// consumes an ADT list and BERT's attention mixes sequence positions, so
// those entry points dispatch per request.
type MLP struct {
	Config MLPConfig
	Module *ir.Module
}

// NewMLP builds `main(x: Tensor[(Any, in)]) -> Tensor[(Any, out)]` as
// Layers hidden blocks (dense+bias+relu) and a linear head.
func NewMLP(cfg MLPConfig) *MLP {
	nn.Validate(cfg.In, cfg.Hidden, cfg.Out, cfg.Layers)
	init := nn.NewInit(cfg.Seed)
	mod := ir.NewModule()
	b := ir.NewBuilder()

	x := ir.NewVar("x", ir.TT(tensor.Float32, ir.DimAny, cfg.In))
	h := ir.Expr(x)
	in := cfg.In
	for i := 0; i < cfg.Layers; i++ {
		layer := nn.NewLinear(init, in, cfg.Hidden)
		h = b.Op("relu", layer.Apply(b, h))
		in = cfg.Hidden
	}
	head := nn.NewLinear(init, in, cfg.Out)
	out := head.Apply(b, h)

	mod.AddFunc("main", ir.NewFunc([]*ir.Var{x}, b.Finish(out),
		ir.TT(tensor.Float32, ir.DimAny, cfg.Out)))
	return &MLP{Config: cfg, Module: mod}
}

// RandomBatch draws a [rows, in] input batch.
func (m *MLP) RandomBatch(rng *rand.Rand, rows int) *tensor.Tensor {
	return tensor.Random(rng, 1, rows, m.Config.In)
}

// BatchFlops estimates the floating-point work of one inference over
// `rows` rows, for throughput accounting.
func (m *MLP) BatchFlops(rows int) int64 {
	cfg := m.Config
	per := 2 * int64(cfg.In) * int64(cfg.Hidden)
	for i := 1; i < cfg.Layers; i++ {
		per += 2 * int64(cfg.Hidden) * int64(cfg.Hidden)
	}
	per += 2 * int64(cfg.Hidden) * int64(cfg.Out)
	return per * int64(rows)
}
