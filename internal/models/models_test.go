package models

import (
	"math"
	"math/rand"
	"testing"

	"nimble/internal/compiler"
	"nimble/internal/tensor"
	"nimble/internal/vm"
)

func TestLSTMCompilesAndRuns(t *testing.T) {
	cfg := LSTMConfig{Input: 16, Hidden: 24, Layers: 1, Seed: 1}
	m := NewLSTM(cfg)
	machine, res, err := compiler.CompileToVM(m.Module, compiler.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if res.Stats.Fusion.Groups == 0 {
		t.Error("LSTM cell produced no fusion groups")
	}
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 3, 9} {
		out, err := machine.Invoke("main", m.RandomSequence(rng, n))
		if err != nil {
			t.Fatalf("seq len %d: %v", n, err)
		}
		h := out.(*vm.TensorObj).T
		if !h.Shape().Equal(tensor.Shape{1, cfg.Hidden}) {
			t.Errorf("hidden shape = %v", h.Shape())
		}
		for _, v := range h.F32() {
			if math.IsNaN(float64(v)) || v < -1 || v > 1 {
				t.Fatalf("hidden state out of tanh range: %v", v)
			}
		}
	}
}

func TestLSTMMatchesReferenceStep(t *testing.T) {
	// One step through the compiled model equals a hand-computed LSTM step.
	cfg := LSTMConfig{Input: 4, Hidden: 3, Layers: 1, Seed: 3}
	m := NewLSTM(cfg)
	machine, _, err := compiler.CompileToVM(m.Module, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	x := tensor.Random(rng, 1, 1, cfg.Input)
	out, err := machine.Invoke("main", SequenceToList(m.NilC.Tag, m.ConsC.Tag, []*tensor.Tensor{x}))
	if err != nil {
		t.Fatal(err)
	}
	got := out.(*vm.TensorObj).T

	// Reference: gates = x@Wx + 0@Wh + b.
	cell := m.Cells[0]
	wx, bias := cell.Wx.Value, cell.Bias.Value
	h := cfg.Hidden
	gates := make([]float64, 4*h)
	for j := 0; j < 4*h; j++ {
		acc := float64(bias.F32()[j])
		for k := 0; k < cfg.Input; k++ {
			acc += float64(x.F32()[k]) * float64(wx.F32()[k*4*h+j])
		}
		gates[j] = acc
	}
	sig := func(v float64) float64 { return 1 / (1 + math.Exp(-v)) }
	for j := 0; j < h; j++ {
		i := sig(gates[j])
		g := math.Tanh(gates[2*h+j])
		o := sig(gates[3*h+j])
		c := i * g
		want := o * math.Tanh(c)
		if math.Abs(float64(got.F32()[j])-want) > 1e-4 {
			t.Fatalf("h[%d] = %v, want %v", j, got.F32()[j], want)
		}
	}
}

func TestLSTMTwoLayer(t *testing.T) {
	m := NewLSTM(LSTMConfig{Input: 8, Hidden: 12, Layers: 2, Seed: 5})
	machine, _, err := compiler.CompileToVM(m.Module, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	out, err := machine.Invoke("main", m.RandomSequence(rng, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !out.(*vm.TensorObj).T.Shape().Equal(tensor.Shape{1, 12}) {
		t.Errorf("2-layer output shape = %v", out.(*vm.TensorObj).T.Shape())
	}
	if m.StepFlops() <= 0 {
		t.Error("StepFlops must be positive")
	}
}

func TestTreeLSTMCompilesAndRuns(t *testing.T) {
	cfg := TreeLSTMConfig{Input: 10, Hidden: 8, Seed: 7}
	m := NewTreeLSTM(cfg)
	machine, _, err := compiler.CompileToVM(m.Module, compiler.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	rng := rand.New(rand.NewSource(8))
	for _, leaves := range []int{1, 2, 7, 20} {
		tree := RandomTree(rng, leaves, cfg.Input)
		if tree.Leaves() != leaves {
			t.Fatalf("tree has %d leaves, want %d", tree.Leaves(), leaves)
		}
		if leaves > 1 && tree.Nodes() != 2*leaves-1 {
			t.Fatalf("binary tree nodes = %d, want %d", tree.Nodes(), 2*leaves-1)
		}
		out, err := machine.Invoke("main", m.ToObject(tree))
		if err != nil {
			t.Fatalf("leaves=%d: %v", leaves, err)
		}
		h := out.(*vm.TensorObj).T
		if !h.Shape().Equal(tensor.Shape{1, cfg.Hidden}) {
			t.Errorf("root hidden shape = %v", h.Shape())
		}
		for _, v := range h.F32() {
			if math.IsNaN(float64(v)) {
				t.Fatal("NaN in tree output")
			}
		}
	}
	if m.NodeFlops() <= 0 {
		t.Error("NodeFlops must be positive")
	}
}

func TestTreeLSTMDeterministicPerTree(t *testing.T) {
	cfg := TreeLSTMConfig{Input: 6, Hidden: 5, Seed: 9}
	m := NewTreeLSTM(cfg)
	machine, _, err := compiler.CompileToVM(m.Module, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	tree := RandomTree(rng, 5, cfg.Input)
	a, err := machine.Invoke("main", m.ToObject(tree))
	if err != nil {
		t.Fatal(err)
	}
	b, err := machine.Invoke("main", m.ToObject(tree))
	if err != nil {
		t.Fatal(err)
	}
	if !a.(*vm.TensorObj).T.Equal(b.(*vm.TensorObj).T) {
		t.Error("same tree produced different outputs")
	}
}

func TestBERTCompilesAndRunsAcrossLengths(t *testing.T) {
	cfg := BERTConfig{Layers: 2, Hidden: 32, Heads: 2, FFN: 64, Vocab: 100, MaxSeq: 64, Seed: 11}
	m := NewBERT(cfg)
	machine, res, err := compiler.CompileToVM(m.Module, compiler.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	// Dynamic sequence length: the same executable serves every length.
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{3, 8, 17, 33} {
		ids := m.RandomIDs(rng, n)
		out, err := machine.InvokeTensors("main", ids)
		if err != nil {
			t.Fatalf("len %d: %v", n, err)
		}
		if !out.Shape().Equal(tensor.Shape{n, cfg.Hidden}) {
			t.Errorf("len %d: output shape = %v", n, out.Shape())
		}
		for _, v := range out.F32()[:8] {
			if math.IsNaN(float64(v)) {
				t.Fatal("NaN in BERT output")
			}
		}
	}
	// The symbolic dense kernel must be present (dynamic shapes compile to
	// residue dispatch).
	found := false
	for _, k := range res.Exe.KernelNames {
		if len(k) > 10 && k[:10] == "dense_sym_" {
			found = true
		}
	}
	if !found {
		t.Errorf("no symbolic dense kernels in %v", res.Exe.KernelNames)
	}
	if m.SeqFlops(16) <= 0 {
		t.Error("SeqFlops must be positive")
	}
}

func TestBERTConfigs(t *testing.T) {
	base := BERTBase()
	if base.Layers != 12 || base.Hidden != 768 || base.Heads != 12 {
		t.Errorf("BERTBase = %+v", base)
	}
	red := BERTReduced()
	if red.Hidden%red.Heads != 0 {
		t.Error("reduced config heads do not divide hidden")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid heads accepted")
		}
	}()
	NewBERT(BERTConfig{Layers: 1, Hidden: 10, Heads: 3, FFN: 8, Vocab: 10, Seed: 1})
}

func TestCVModelsCompileAndRun(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, m := range CVModels(32) {
		machine, res, err := compiler.CompileToVM(m.Module, compiler.Options{})
		if err != nil {
			t.Fatalf("%s: compile: %v", m.Name, err)
		}
		if res.Stats.Coalesce.Reuses() == 0 {
			t.Errorf("%s: static planning found no reuse", m.Name)
		}
		img := tensor.Random(rng, 1, m.InputShape...)
		out, err := machine.InvokeTensors("main", img)
		if err != nil {
			t.Fatalf("%s: run: %v", m.Name, err)
		}
		if !out.Shape().Equal(tensor.Shape{1, 1000}) {
			t.Errorf("%s: logits shape = %v", m.Name, out.Shape())
		}
		if m.String() == "" {
			t.Error("empty description")
		}
	}
}

func TestMLPCompilesAndIsRowIndependent(t *testing.T) {
	m := NewMLP(MLPConfig{In: 8, Hidden: 16, Out: 4, Layers: 2, Seed: 45})
	machine, _, err := compiler.CompileToVM(m.Module, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	batch := m.RandomBatch(rng, 5)
	out, err := machine.InvokeTensors("main", batch)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape().Equal(tensor.Shape{5, 4}) {
		t.Fatalf("output shape = %v", out.Shape())
	}
	// Row independence is the property the serving micro-batcher relies
	// on: each row of the batched output must equal the model applied to
	// that row alone.
	for r := 0; r < 5; r++ {
		rowData := make([]float32, m.Config.In)
		copy(rowData, batch.F32()[r*m.Config.In:(r+1)*m.Config.In])
		row := tensor.FromF32(rowData, 1, m.Config.In)
		single, err := machine.InvokeTensors("main", row)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < m.Config.Out; c++ {
			got := out.At(r, c)
			want := single.At(0, c)
			if math.Abs(got-want) > 1e-5 {
				t.Fatalf("row %d col %d: batched %v != single %v", r, c, got, want)
			}
		}
	}
	if m.BatchFlops(5) <= 0 {
		t.Error("BatchFlops not positive")
	}
}
