package models

import (
	"math/rand"

	"nimble/internal/ir"
	"nimble/internal/nn"
	"nimble/internal/tensor"
	"nimble/internal/vm"
)

// TreeLSTMConfig sizes the Tree-LSTM of Table 2: "input size / hidden size
// ... 300/150".
type TreeLSTMConfig struct {
	Input  int
	Hidden int
	Seed   int64
}

// DefaultTreeLSTMConfig matches the paper.
func DefaultTreeLSTMConfig() TreeLSTMConfig {
	return TreeLSTMConfig{Input: 300, Hidden: 150, Seed: 43}
}

// TreeLSTM is a binary child-sum Tree-LSTM over the Tree ADT — the
// evaluation's "dynamic data structure" model. Its execution path is the
// shape of the input tree, unknowable before runtime.
type TreeLSTM struct {
	Config  TreeLSTMConfig
	Module  *ir.Module
	TreeDef *ir.TypeDef
	LeafC   *ir.Constructor
	NodeC   *ir.Constructor
}

// NewTreeLSTM builds the module:
//
//	type Tree { Leaf(Tensor[(1, in)]); Node(Tree, Tree) }
//	enc(t) -> (h, c) = match t {
//	  Leaf(x)    => leaf cell on x
//	  Node(l, r) => child-sum cell over enc(l), enc(r)
//	}
func NewTreeLSTM(cfg TreeLSTMConfig) *TreeLSTM {
	nn.Validate(cfg.Input, cfg.Hidden)
	init := nn.NewInit(cfg.Seed)
	mod := ir.NewModule()

	leafT := ir.TT(tensor.Float32, 1, cfg.Input)
	leafC := ir.NewConstructor("Leaf", leafT)
	nodeC := ir.NewConstructor("Node")
	treeDef := ir.NewTypeDef("Tree", leafC, nodeC)
	nodeC.Fields = []ir.Type{treeDef.Type(), treeDef.Type()}
	mod.AddTypeDef(treeDef)

	h := cfg.Hidden
	stateT := ir.TT(tensor.Float32, 1, h)
	pairT := &ir.TupleType{Fields: []ir.Type{stateT, stateT}}

	// Leaf cell: a standard LSTM step with zero recurrent state.
	leafCell := nn.NewLSTMCell(init, cfg.Input, h)
	// Node (child-sum) parameters: gates from summed child h, with
	// per-child forget gates.
	wIOU := ir.Const(init.Xavier(h, 3*h)) // input, output, update from h-sum
	bIOU := ir.Const(init.Vector(3 * h))
	wF := ir.Const(init.Xavier(h, h)) // forget gate per child
	bF := ir.Const(init.Vector(h))

	tv := ir.NewVar("t", treeDef.Type())
	x := ir.NewVar("x", nil)
	l := ir.NewVar("l", nil)
	r := ir.NewVar("r", nil)
	enc := &ir.GlobalVar{Name: "enc"}

	// Leaf clause.
	lb := ir.NewBuilder()
	lh, lc := leafCell.Step(lb, x, leafCell.ZeroState(), leafCell.ZeroState())
	leafBody := lb.Finish(&ir.Tuple{Fields: []ir.Expr{lh, lc}})

	// Node clause.
	nb := ir.NewBuilder()
	lp := nb.Bind("lp", ir.NewCall(enc, []ir.Expr{l}, nil))
	rp := nb.Bind("rp", ir.NewCall(enc, []ir.Expr{r}, nil))
	hl := nb.Bind("hl", &ir.TupleGet{Tuple: lp, Index: 0})
	cl := nb.Bind("cl", &ir.TupleGet{Tuple: lp, Index: 1})
	hr := nb.Bind("hr", &ir.TupleGet{Tuple: rp, Index: 0})
	cr := nb.Bind("cr", &ir.TupleGet{Tuple: rp, Index: 1})
	hsum := nb.Op("add", hl, hr)
	iou := nb.Op("bias_add", nb.Op("dense", hsum, wIOU), bIOU)
	slice := func(idx int) ir.Expr {
		return nb.OpAttrs("strided_slice", ir.Attrs{"axis": 1, "begin": idx * h, "end": (idx + 1) * h}, iou)
	}
	iGate := nb.Op("sigmoid", slice(0))
	oGate := nb.Op("sigmoid", slice(1))
	uVal := nb.Op("tanh", slice(2))
	fl := nb.Op("sigmoid", nb.Op("bias_add", nb.Op("dense", hl, wF), bF))
	fr := nb.Op("sigmoid", nb.Op("bias_add", nb.Op("dense", hr, wF), bF))
	cNew := nb.Op("add",
		nb.Op("multiply", iGate, uVal),
		nb.Op("add", nb.Op("multiply", fl, cl), nb.Op("multiply", fr, cr)))
	hNew := nb.Op("multiply", oGate, nb.Op("tanh", cNew))
	nodeBody := nb.Finish(&ir.Tuple{Fields: []ir.Expr{hNew, cNew}})

	body := &ir.Match{Data: tv, Clauses: []*ir.Clause{
		{Pattern: ir.CtorPat(leafC, ir.VarPat(x)), Body: leafBody},
		{Pattern: ir.CtorPat(nodeC, ir.VarPat(l), ir.VarPat(r)), Body: nodeBody},
	}}
	mod.AddFunc("enc", ir.NewFunc([]*ir.Var{tv}, body, pairT))

	// main returns the root hidden state.
	tMain := ir.NewVar("t", treeDef.Type())
	mb := ir.NewBuilder()
	root := mb.Bind("root", ir.NewCall(&ir.GlobalVar{Name: "enc"}, []ir.Expr{tMain}, nil))
	mod.AddFunc("main", ir.NewFunc([]*ir.Var{tMain},
		mb.Finish(&ir.TupleGet{Tuple: root, Index: 0}), stateT))

	return &TreeLSTM{Config: cfg, Module: mod, TreeDef: treeDef, LeafC: leafC, NodeC: nodeC}
}

// Tree is the host-side tree shape used to build inputs for both Nimble and
// the baseline executors.
type Tree struct {
	Left, Right *Tree
	// Value is non-nil exactly at leaves.
	Value *tensor.Tensor
}

// Leaves counts leaf nodes (tokens).
func (t *Tree) Leaves() int {
	if t.Value != nil {
		return 1
	}
	return t.Left.Leaves() + t.Right.Leaves()
}

// Nodes counts all nodes.
func (t *Tree) Nodes() int {
	if t.Value != nil {
		return 1
	}
	return 1 + t.Left.Nodes() + t.Right.Nodes()
}

// RandomTree builds a random binary tree over n leaves with seeded shape —
// the stand-in for SST parse trees.
func RandomTree(rng *rand.Rand, n, inputDim int) *Tree {
	if n <= 1 {
		return &Tree{Value: tensor.Random(rng, 1, 1, inputDim)}
	}
	split := 1 + rng.Intn(n-1)
	return &Tree{
		Left:  RandomTree(rng, split, inputDim),
		Right: RandomTree(rng, n-split, inputDim),
	}
}

// ToObject converts a host tree into the VM's ADT representation.
func (m *TreeLSTM) ToObject(t *Tree) vm.Object {
	if t.Value != nil {
		return &vm.ADT{Tag: m.LeafC.Tag, Fields: []vm.Object{vm.NewTensorObj(t.Value)}}
	}
	return &vm.ADT{Tag: m.NodeC.Tag, Fields: []vm.Object{m.ToObject(t.Left), m.ToObject(t.Right)}}
}

// NodeFlops estimates per-node floating point work for the cost model.
func (m *TreeLSTM) NodeFlops() int64 {
	h := int64(m.Config.Hidden)
	return 2*h*3*h + 2*2*h*h + 10*h
}
