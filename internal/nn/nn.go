// Package nn is the model-builder API on top of the IR: layers hold their
// weights as IR constants and emit operator calls into a builder. It plays
// the role of the framework frontend importers in the paper's pipeline —
// models enter Nimble as IR modules built here.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"nimble/internal/ir"
	"nimble/internal/tensor"
)

// Init provides seeded weight initialization. Weights are random because
// every evaluated quantity in the reproduction is a latency; the scale
// follows Xavier so activations stay finite through deep stacks.
type Init struct {
	Rng *rand.Rand
}

// NewInit creates an initializer from a seed.
func NewInit(seed int64) *Init { return &Init{Rng: rand.New(rand.NewSource(seed))} }

// Xavier draws a [rows, cols] weight with Xavier-uniform scale.
func (in *Init) Xavier(rows, cols int) *tensor.Tensor {
	scale := math.Sqrt(6.0 / float64(rows+cols))
	return tensor.Random(in.Rng, scale, rows, cols)
}

// Vector draws a length-n vector with small uniform values.
func (in *Init) Vector(n int) *tensor.Tensor {
	return tensor.Random(in.Rng, 0.01, n)
}

// Ones returns a length-n vector of ones (layer-norm gamma).
func (in *Init) Ones(n int) *tensor.Tensor {
	t := tensor.New(tensor.Float32, n)
	t.Fill(1)
	return t
}

// Zeros returns a length-n zero vector (layer-norm beta).
func (in *Init) Zeros(n int) *tensor.Tensor { return tensor.New(tensor.Float32, n) }

// Linear is a dense layer y = x@W + b.
type Linear struct {
	W *ir.Constant
	B *ir.Constant
	// In and Out record the layer dimensions for cost accounting.
	In, Out int
}

// NewLinear creates a dense layer with fresh weights.
func NewLinear(init *Init, in, out int) *Linear {
	return &Linear{
		W:  ir.Const(init.Xavier(in, out)),
		B:  ir.Const(init.Vector(out)),
		In: in, Out: out,
	}
}

// Apply emits dense+bias_add for input x.
func (l *Linear) Apply(b *ir.Builder, x ir.Expr) ir.Expr {
	d := b.Op("dense", x, l.W)
	return b.Op("bias_add", d, l.B)
}

// ApplyNoBias emits only the dense matmul.
func (l *Linear) ApplyNoBias(b *ir.Builder, x ir.Expr) ir.Expr {
	return b.Op("dense", x, l.W)
}

// LayerNorm is a layer-normalization layer over the last axis.
type LayerNorm struct {
	Gamma *ir.Constant
	Beta  *ir.Constant
	Dim   int
}

// NewLayerNorm creates a layer norm with unit gamma and zero beta.
func NewLayerNorm(init *Init, dim int) *LayerNorm {
	return &LayerNorm{Gamma: ir.Const(init.Ones(dim)), Beta: ir.Const(init.Zeros(dim)), Dim: dim}
}

// Apply emits layer_norm(x).
func (l *LayerNorm) Apply(b *ir.Builder, x ir.Expr) ir.Expr {
	return b.OpAttrs("layer_norm", ir.Attrs{"eps": 1e-5}, x, l.Gamma, l.Beta)
}

// Embedding is a token-id lookup table.
type Embedding struct {
	Table      *ir.Constant
	Vocab, Dim int
}

// NewEmbedding creates a [vocab, dim] embedding.
func NewEmbedding(init *Init, vocab, dim int) *Embedding {
	return &Embedding{Table: ir.Const(init.Xavier(vocab, dim)), Vocab: vocab, Dim: dim}
}

// Apply emits take(table, ids).
func (e *Embedding) Apply(b *ir.Builder, ids ir.Expr) ir.Expr {
	return b.Op("take", e.Table, ids)
}

// LSTMCell holds the fused gate weights of one LSTM layer: the input and
// hidden projections produce a [1, 4*hidden] pre-activation split into
// input/forget/cell/output gates.
type LSTMCell struct {
	Wx, Wh        *ir.Constant
	Bias          *ir.Constant
	Input, Hidden int
}

// NewLSTMCell creates a cell with input size in and hidden size h.
func NewLSTMCell(init *Init, in, h int) *LSTMCell {
	return &LSTMCell{
		Wx:    ir.Const(init.Xavier(in, 4*h)),
		Wh:    ir.Const(init.Xavier(h, 4*h)),
		Bias:  ir.Const(init.Vector(4 * h)),
		Input: in, Hidden: h,
	}
}

// Step emits one LSTM step; x is [1, in], h and c are [1, hidden]. It
// returns the new (h, c) expressions.
func (cell *LSTMCell) Step(b *ir.Builder, x, h, c ir.Expr) (ir.Expr, ir.Expr) {
	hd := cell.Hidden
	gx := b.Op("dense", x, cell.Wx)
	gh := b.Op("dense", h, cell.Wh)
	sum := b.Op("add", gx, gh)
	gates := b.Op("bias_add", sum, cell.Bias)
	slice := func(idx int) ir.Expr {
		return b.OpAttrs("strided_slice", ir.Attrs{"axis": 1, "begin": idx * hd, "end": (idx + 1) * hd}, gates)
	}
	i := b.Op("sigmoid", slice(0))
	f := b.Op("sigmoid", slice(1))
	g := b.Op("tanh", slice(2))
	o := b.Op("sigmoid", slice(3))
	fc := b.Op("multiply", f, c)
	ig := b.Op("multiply", i, g)
	cNew := b.Op("add", fc, ig)
	hNew := b.Op("multiply", o, b.Op("tanh", cNew))
	return hNew, cNew
}

// ZeroState returns a [1, hidden] zero constant for initial h/c.
func (cell *LSTMCell) ZeroState() *ir.Constant {
	return ir.Const(tensor.New(tensor.Float32, 1, cell.Hidden))
}

// ListType declares the cons-list ADT used to feed variable-length
// sequences to dynamic models: List = Nil | Cons(Tensor[(1, dim)], List).
// Frameworks express this with tensor arrays; the IR's ADTs make it a
// first-class dynamic data structure.
func ListType(name string, dim int) (*ir.TypeDef, *ir.Constructor, *ir.Constructor) {
	elemT := ir.TT(tensor.Float32, 1, dim)
	nilC := ir.NewConstructor("Nil")
	consC := ir.NewConstructor("Cons", elemT, nil)
	td := ir.NewTypeDef(name, nilC, consC)
	consC.Fields[1] = td.Type()
	return td, nilC, consC
}

// Validate panics if a layer dimension is non-positive — catching
// misconfigured model configs early.
func Validate(dims ...int) {
	for _, d := range dims {
		if d <= 0 {
			panic(fmt.Sprintf("nn: non-positive layer dimension %d", d))
		}
	}
}
