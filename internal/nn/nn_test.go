package nn

import (
	"testing"

	"nimble/internal/ir"
	"nimble/internal/tensor"
	"nimble/internal/typeinfer"
)

func TestInitShapesAndDeterminism(t *testing.T) {
	a := NewInit(5).Xavier(4, 6)
	b := NewInit(5).Xavier(4, 6)
	if !a.Equal(b) {
		t.Error("same seed gave different weights")
	}
	if !a.Shape().Equal(tensor.Shape{4, 6}) {
		t.Errorf("Xavier shape = %v", a.Shape())
	}
	ones := NewInit(1).Ones(3)
	for _, v := range ones.F32() {
		if v != 1 {
			t.Fatal("Ones broken")
		}
	}
	zeros := NewInit(1).Zeros(3)
	for _, v := range zeros.F32() {
		if v != 0 {
			t.Fatal("Zeros broken")
		}
	}
	if NewInit(1).Vector(7).NumElements() != 7 {
		t.Error("Vector length wrong")
	}
}

func TestLinearBuildsTypedIR(t *testing.T) {
	init := NewInit(2)
	l := NewLinear(init, 8, 4)
	x := ir.NewVar("x", ir.TT(tensor.Float32, ir.DimAny, 8))
	b := ir.NewBuilder()
	out := l.Apply(b, x)
	fn := ir.NewFunc([]*ir.Var{x}, b.Finish(out), nil)
	if err := typeinfer.InferFunc(fn); err != nil {
		t.Fatal(err)
	}
	if got := fn.RetAnn.String(); got != "Tensor[(Any#1, 4), float32]" {
		t.Errorf("linear output type = %s", got)
	}
	// No-bias path types identically.
	x2 := ir.NewVar("x", ir.TT(tensor.Float32, 3, 8))
	b2 := ir.NewBuilder()
	fn2 := ir.NewFunc([]*ir.Var{x2}, b2.Finish(l.ApplyNoBias(b2, x2)), nil)
	if err := typeinfer.InferFunc(fn2); err != nil {
		t.Fatal(err)
	}
}

func TestLSTMCellAndLayerNormTypes(t *testing.T) {
	init := NewInit(3)
	cell := NewLSTMCell(init, 6, 5)
	x := ir.NewVar("x", ir.TT(tensor.Float32, 1, 6))
	b := ir.NewBuilder()
	h, c := cell.Step(b, x, cell.ZeroState(), cell.ZeroState())
	fn := ir.NewFunc([]*ir.Var{x}, b.Finish(&ir.Tuple{Fields: []ir.Expr{h, c}}), nil)
	if err := typeinfer.InferFunc(fn); err != nil {
		t.Fatal(err)
	}
	want := "(Tensor[(1, 5), float32], Tensor[(1, 5), float32])"
	if got := fn.RetAnn.String(); got != want {
		t.Errorf("cell state types = %s", got)
	}

	ln := NewLayerNorm(init, 6)
	b3 := ir.NewBuilder()
	x3 := ir.NewVar("x", ir.TT(tensor.Float32, ir.DimAny, 6))
	fn3 := ir.NewFunc([]*ir.Var{x3}, b3.Finish(ln.Apply(b3, x3)), nil)
	if err := typeinfer.InferFunc(fn3); err != nil {
		t.Fatal(err)
	}

	emb := NewEmbedding(init, 100, 6)
	b4 := ir.NewBuilder()
	ids := ir.NewVar("ids", ir.TT(tensor.Int64, ir.DimAny))
	fn4 := ir.NewFunc([]*ir.Var{ids}, b4.Finish(emb.Apply(b4, ids)), nil)
	if err := typeinfer.InferFunc(fn4); err != nil {
		t.Fatal(err)
	}
	if got := fn4.RetAnn.String(); got != "Tensor[(Any#1, 6), float32]" {
		t.Errorf("embedding type = %s", got)
	}
}

func TestListType(t *testing.T) {
	td, nilC, consC := ListType("L", 4)
	if len(td.Constructors) != 2 || nilC.Tag != 0 || consC.Tag != 1 {
		t.Error("list constructors broken")
	}
	if !consC.Fields[1].EqualType(td.Type()) {
		t.Error("cons tail not recursive")
	}
}

func TestValidate(t *testing.T) {
	Validate(1, 2, 3)
	defer func() {
		if recover() == nil {
			t.Error("Validate accepted non-positive dim")
		}
	}()
	Validate(4, 0)
}
