package passes

import (
	"fmt"

	"nimble/internal/ir"
)

// ANF converts every function body to A-normal form: all operands of calls,
// tuples, projections, conditions and match scrutinees are atomic
// (variables or constants), and all intermediate results are let-bound.
// Later passes — fusion, memory planning, device placement — assume this
// "one operation per binding" discipline, just as the paper's transformation
// examples (§4.3) show let-normalized programs.
func ANF() Pass {
	return Pass{
		Name: "anf",
		Run: func(mod *ir.Module) error {
			return mapFuncs(mod, func(_ string, fn *ir.Function) (ir.Expr, error) {
				c := &anfConverter{}
				return c.normalizeTail(fn.Body), nil
			})
		},
	}
}

type anfConverter struct {
	counter int
}

func (c *anfConverter) fresh() *ir.Var {
	c.counter++
	return ir.NewVar(fmt.Sprintf("x%d", c.counter), nil)
}

// normalizeTail normalizes an expression in tail position: the result may be
// any (normalized) expression, not necessarily atomic.
func (c *anfConverter) normalizeTail(e ir.Expr) ir.Expr {
	var bs []binding
	res := c.normalizeInto(e, &bs, true)
	return buildChain(bs, res)
}

// normalizeAtom normalizes e and guarantees an atomic result, emitting
// bindings into bs.
func (c *anfConverter) normalizeAtom(e ir.Expr, bs *[]binding) ir.Expr {
	res := c.normalizeInto(e, bs, false)
	if isAtomic(res) {
		return res
	}
	v := c.fresh()
	*bs = append(*bs, binding{v: v, value: res})
	return v
}

// normalizeInto normalizes e, emitting helper bindings into bs. When tail is
// true the result may be compound (If/Match stay in tail position so
// branches remain expressions rather than being flattened into values).
func (c *anfConverter) normalizeInto(e ir.Expr, bs *[]binding, tail bool) ir.Expr {
	switch n := e.(type) {
	case *ir.Var, *ir.GlobalVar, *ir.Constant, *ir.OpRef, *ir.CtorRef:
		return n

	case *ir.Let:
		val := c.normalizeInto(n.Value, bs, false)
		*bs = append(*bs, binding{v: n.Bound, value: val})
		return c.normalizeInto(n.Body, bs, tail)

	case *ir.Call:
		callee := n.Callee
		if !isAtomic(callee) {
			callee = c.normalizeAtom(callee, bs)
		}
		args := make([]ir.Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = c.normalizeAtom(a, bs)
		}
		return ir.NewCall(callee, args, n.Attrs)

	case *ir.Tuple:
		fields := make([]ir.Expr, len(n.Fields))
		for i, f := range n.Fields {
			fields[i] = c.normalizeAtom(f, bs)
		}
		return &ir.Tuple{Fields: fields}

	case *ir.TupleGet:
		return &ir.TupleGet{Tuple: c.normalizeAtom(n.Tuple, bs), Index: n.Index}

	case *ir.If:
		cond := c.normalizeAtom(n.Cond, bs)
		return &ir.If{
			Cond: cond,
			Then: c.normalizeTail(n.Then),
			Else: c.normalizeTail(n.Else),
		}

	case *ir.Match:
		data := c.normalizeAtom(n.Data, bs)
		clauses := make([]*ir.Clause, len(n.Clauses))
		for i, cl := range n.Clauses {
			clauses[i] = &ir.Clause{Pattern: cl.Pattern, Body: c.normalizeTail(cl.Body)}
		}
		return &ir.Match{Data: data, Clauses: clauses}

	case *ir.Function:
		return ir.NewFunc(n.Params, c.normalizeTail(n.Body), n.RetAnn)

	default:
		return e
	}
}
