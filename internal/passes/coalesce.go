package passes

import (
	"nimble/internal/ir"
)

// CoalesceStats reports the effect of storage coalescing for the §6.3
// memory-planning study.
type CoalesceStats struct {
	// Before and After count static alloc_storage bindings.
	Before, After int
	// BytesBefore and BytesAfter sum static storage sizes; the difference
	// between After/Before and the TVM-style whole-graph-liveness optimum is
	// the "up to 8% more memory footprint" the paper concedes.
	BytesBefore, BytesAfter int
}

// Reuses returns the number of allocations eliminated by reuse.
func (s *CoalesceStats) Reuses() int { return s.Before - s.After }

// CoalesceStorage is the §4.3 storage-coalescing optimization: it walks each
// explicitly allocated chain, and when a statically sized alloc_storage is
// requested while a previously killed storage of sufficient size (same
// device) is free, the allocation is elided and the free storage reused.
// Dynamically sized storage cannot be coalesced statically; the VM's
// runtime storage pool handles that case.
func CoalesceStorage() Pass {
	return CoalesceStorageWithStats(nil)
}

// CoalesceStorageWithStats is CoalesceStorage recording statistics.
func CoalesceStorageWithStats(stats *CoalesceStats) Pass {
	return Pass{
		Name: "coalesce-storage",
		Run: func(mod *ir.Module) error {
			return mapFuncs(mod, func(_ string, fn *ir.Function) (ir.Expr, error) {
				return coalesceExpr(fn.Body, stats), nil
			})
		},
	}
}

func coalesceExpr(e ir.Expr, stats *CoalesceStats) ir.Expr {
	e = ir.Rewrite(e, func(x ir.Expr) ir.Expr {
		switch n := x.(type) {
		case *ir.If:
			return &ir.If{Cond: n.Cond, Then: coalesceChain(n.Then, stats), Else: coalesceChain(n.Else, stats)}
		case *ir.Match:
			clauses := make([]*ir.Clause, len(n.Clauses))
			for i, c := range n.Clauses {
				clauses[i] = &ir.Clause{Pattern: c.Pattern, Body: coalesceChain(c.Body, stats)}
			}
			return &ir.Match{Data: n.Data, Clauses: clauses}
		case *ir.Function:
			return ir.NewFunc(n.Params, coalesceChain(n.Body, stats), n.RetAnn)
		}
		return x
	})
	return coalesceChain(e, stats)
}

type freeStorage struct {
	v      *ir.Var
	size   int
	device int
}

func coalesceChain(e ir.Expr, stats *CoalesceStats) ir.Expr {
	bs, result := splitChain(e)

	// storageOf maps a buffer (alloc_tensor result) to its storage var;
	// sizes maps storage vars to their byte size.
	storageOf := map[*ir.Var]*ir.Var{}
	sizes := map[*ir.Var]int{}
	devices := map[*ir.Var]int{}
	// bufferOf maps an invoke_mut result var back to its destination buffer.
	bufferOf := map[*ir.Var]*ir.Var{}
	// subst redirects eliminated storage vars to their reused replacement.
	subst := map[*ir.Var]*ir.Var{}
	var free []freeStorage

	resolve := func(v *ir.Var) *ir.Var {
		for {
			next, ok := subst[v]
			if !ok {
				return v
			}
			v = next
		}
	}

	var out []binding
	for _, b := range bs {
		call, op := opCall(b.value)
		if op == nil {
			out = append(out, b)
			continue
		}
		switch op.Name {
		case ir.OpAllocStorage:
			size := call.Attrs.Int("size", -1)
			dev := call.Attrs.Int("device", 0)
			if size < 0 || len(call.Args) > 0 {
				// Dynamic size: leave for the runtime pool.
				out = append(out, b)
				continue
			}
			if stats != nil {
				stats.Before++
				stats.BytesBefore += size
			}
			reused := -1
			for i, f := range free {
				if f.device == dev && f.size >= size {
					reused = i
					break
				}
			}
			if reused >= 0 {
				subst[b.v] = free[reused].v
				free = append(free[:reused], free[reused+1:]...)
				// Binding dropped: downstream alloc_tensor uses the freed
				// storage through subst.
				continue
			}
			sizes[b.v] = size
			devices[b.v] = dev
			if stats != nil {
				stats.After++
				stats.BytesAfter += size
			}
			out = append(out, b)

		case ir.OpAllocTensor:
			if len(call.Args) == 1 {
				if sv, ok := call.Args[0].(*ir.Var); ok {
					target := resolve(sv)
					storageOf[b.v] = target
					if target != sv {
						nc := ir.CallOpAttrs(ir.OpAllocTensor, call.Attrs, target)
						nc.SetCheckedType(call.CheckedType())
						out = append(out, binding{v: b.v, value: nc})
						continue
					}
				}
			}
			out = append(out, b)

		case ir.OpInvokeMut:
			if len(call.Args) >= 2 {
				if bufVar, ok := call.Args[len(call.Args)-1].(*ir.Var); ok {
					bufferOf[b.v] = bufVar
				}
			}
			out = append(out, b)

		case ir.OpKill:
			if len(call.Args) == 1 {
				if tv, ok := call.Args[0].(*ir.Var); ok {
					buf := bufferOf[tv]
					if buf == nil {
						buf = tv
					}
					if sv, ok := storageOf[buf]; ok {
						if sz, sized := sizes[sv]; sized {
							free = append(free, freeStorage{v: sv, size: sz, device: devices[sv]})
						}
					}
				}
			}
			out = append(out, b)

		default:
			out = append(out, b)
		}
	}
	return buildChain(out, result)
}
