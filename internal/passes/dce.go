package passes

import (
	"nimble/internal/ir"
)

// DCE removes let bindings whose variable is never used, iterating to a
// fixpoint so chains of dead bindings disappear. Bindings with side effects
// — the allocation dialect's invoke_mut and kill — are preserved even when
// their result is unused, which is why DCE runs before ManifestAlloc in the
// default pipeline and is still safe afterwards.
func DCE() Pass {
	return Pass{
		Name: "dce",
		Run: func(mod *ir.Module) error {
			return mapFuncs(mod, func(_ string, fn *ir.Function) (ir.Expr, error) {
				body := fn.Body
				for {
					next := dceOnce(body)
					if next == body {
						return body, nil
					}
					body = next
				}
			})
		},
	}
}

// sideEffecting reports whether a bound expression must be kept even if its
// result is dead.
func sideEffecting(e ir.Expr) bool {
	_, op := opCall(e)
	if op == nil {
		// Calls to globals/closures may recurse or allocate; keep them.
		if _, isCall := e.(*ir.Call); isCall {
			return true
		}
		return false
	}
	switch op.Name {
	case ir.OpInvokeMut, ir.OpKill, ir.OpDeviceCopy:
		return true
	}
	return false
}

func dceOnce(body ir.Expr) ir.Expr {
	// Count uses of each var; countUses skips binder occurrences so a
	// binding is dead exactly when its variable appears nowhere else.
	uses := map[*ir.Var]int{}
	countUses(body, uses)
	return ir.Rewrite(body, func(e ir.Expr) ir.Expr {
		if l, ok := e.(*ir.Let); ok {
			if uses[l.Bound] == 0 && !sideEffecting(l.Value) {
				return l.Body
			}
		}
		return e
	})
}

func countUses(e ir.Expr, uses map[*ir.Var]int) {
	ir.Visit(e, func(x ir.Expr) bool {
		if l, ok := x.(*ir.Let); ok {
			countUses(l.Value, uses)
			countUses(l.Body, uses)
			return false
		}
		if v, ok := x.(*ir.Var); ok {
			uses[v]++
		}
		return true
	})
}
