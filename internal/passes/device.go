package passes

import (
	"fmt"

	"nimble/internal/ir"
)

// PlacementStats reports the outcome of device placement.
type PlacementStats struct {
	// CopiesInserted counts device_copy operations added.
	CopiesInserted int
	// CPUVars and TargetVars count variables resolved to each domain when
	// the target is not the CPU.
	CPUVars, TargetVars int
}

// PlaceDevices is the §4.4 heterogeneous device placement pass. It runs a
// unification-based analysis over the explicitly allocated IR: every
// variable belongs to a DeviceDomain tracked by a union-find structure;
// placement rules constrain domains (shape_of and shape functions are CPU,
// allocations carry their device, invoke_mut arguments share the kernel's
// domain); unconstrained domains default to the compilation target; and a
// device_copy is inserted exactly where a value's resolved domain differs
// from its consumer's requirement.
func PlaceDevices(target ir.Device) Pass {
	return PlaceDevicesWithStats(target, nil)
}

// PlaceDevicesWithStats is PlaceDevices recording statistics.
func PlaceDevicesWithStats(target ir.Device, stats *PlacementStats) Pass {
	return Pass{
		Name: "place-devices",
		Run: func(mod *ir.Module) error {
			for _, name := range mod.FuncNames() {
				fn := mod.Funcs[name]
				p := newPlacer(target, stats)
				body, err := p.placeExpr(fn.Body)
				if err != nil {
					return fmt.Errorf("%s: %w", name, err)
				}
				fn.Body = body
				p.tally()
			}
			return nil
		},
	}
}

// domain is a union-find node carrying the resolved device of its class.
type domain struct {
	parent *domain
	dev    ir.Device
}

func (d *domain) find() *domain {
	for d.parent != nil {
		if d.parent.parent != nil {
			d.parent = d.parent.parent // path halving
		}
		d = d.parent
	}
	return d
}

// union merges two domains; conflicting concrete devices are an internal
// error (callers must check and insert copies instead of unioning).
func union(a, b *domain) error {
	ra, rb := a.find(), b.find()
	if ra == rb {
		return nil
	}
	if !ra.dev.IsUnknown() && !rb.dev.IsUnknown() && ra.dev != rb.dev {
		return fmt.Errorf("passes: unioning conflicting device domains %s and %s", ra.dev, rb.dev)
	}
	if ra.dev.IsUnknown() {
		ra.dev = rb.dev
	}
	rb.parent = ra
	return nil
}

type placer struct {
	target  ir.Device
	stats   *PlacementStats
	domains map[*ir.Var]*domain
	fresh   int
}

func newPlacer(target ir.Device, stats *PlacementStats) *placer {
	return &placer{target: target, stats: stats, domains: map[*ir.Var]*domain{}}
}

func (p *placer) domainOf(v *ir.Var) *domain {
	d, ok := p.domains[v]
	if !ok {
		d = &domain{}
		p.domains[v] = d
	}
	return d
}

// deviceOf resolves the current device of an atomic expression; constants
// and globals are free (they materialize wherever consumed).
func (p *placer) deviceOf(e ir.Expr) ir.Device {
	if v, ok := e.(*ir.Var); ok {
		return p.domainOf(v).find().dev
	}
	return ir.Device{}
}

// Resolved returns the final device for a variable (target when the
// analysis left it unconstrained).
func (p *placer) resolved(v *ir.Var) ir.Device {
	d := p.domainOf(v).find().dev
	if d.IsUnknown() {
		return p.target
	}
	return d
}

func (p *placer) tally() {
	if p.stats == nil {
		return
	}
	for v := range p.domains {
		if p.resolved(v).Type == ir.DevCPU && p.target.Type != ir.DevCPU {
			p.stats.CPUVars++
		} else {
			p.stats.TargetVars++
		}
	}
}

func (p *placer) placeExpr(e ir.Expr) (ir.Expr, error) {
	var rerr error
	e = ir.Rewrite(e, func(x ir.Expr) ir.Expr {
		if rerr != nil {
			return x
		}
		switch n := x.(type) {
		case *ir.If:
			thenB, err := p.placeChain(n.Then)
			if err != nil {
				rerr = err
				return x
			}
			elseB, err := p.placeChain(n.Else)
			if err != nil {
				rerr = err
				return x
			}
			out := &ir.If{Cond: n.Cond, Then: thenB, Else: elseB}
			out.SetCheckedType(n.CheckedType())
			return out
		case *ir.Match:
			clauses := make([]*ir.Clause, len(n.Clauses))
			for i, c := range n.Clauses {
				b, err := p.placeChain(c.Body)
				if err != nil {
					rerr = err
					return x
				}
				clauses[i] = &ir.Clause{Pattern: c.Pattern, Body: b}
			}
			out := &ir.Match{Data: n.Data, Clauses: clauses}
			out.SetCheckedType(n.CheckedType())
			return out
		case *ir.Function:
			b, err := p.placeChain(n.Body)
			if err != nil {
				rerr = err
				return x
			}
			out := ir.NewFunc(n.Params, b, n.RetAnn)
			out.SetCheckedType(n.CheckedType())
			return out
		}
		return x
	})
	if rerr != nil {
		return nil, rerr
	}
	return p.placeChain(e)
}

// requireOn returns an expression for `arg` living on device want, inserting
// a device_copy binding into out when the resolved domain conflicts. An
// unconstrained variable is pinned to want instead (bidirectional
// propagation without a copy).
func (p *placer) requireOn(arg ir.Expr, want ir.Device, out *[]binding) ir.Expr {
	v, ok := arg.(*ir.Var)
	if !ok {
		return arg // constants/globals materialize on the consumer's device
	}
	root := p.domainOf(v).find()
	if root.dev.IsUnknown() {
		root.dev = want
		return arg
	}
	if root.dev == want {
		return arg
	}
	// Mandatory cross-device copy.
	p.fresh++
	cv := ir.NewVar(fmt.Sprintf("copy%d", p.fresh), nil)
	c := ir.CallOpAttrs(ir.OpDeviceCopy, ir.Attrs{
		"src_device": int(root.dev.Type), "src_id": root.dev.ID,
		"dst_device": int(want.Type), "dst_id": want.ID,
	}, v)
	c.SetCheckedType(v.CheckedType())
	*out = append(*out, binding{v: cv, value: c})
	p.domainOf(cv).find().dev = want
	if p.stats != nil {
		p.stats.CopiesInserted++
	}
	return cv
}

func (p *placer) placeChain(e ir.Expr) (ir.Expr, error) {
	bs, result := splitChain(e)
	cpu := ir.CPU(0)
	var out []binding
	for _, b := range bs {
		call, op := opCall(b.value)
		if op == nil {
			// Non-op values: unify the bound var with a used var when the
			// value is itself a var (aliasing); otherwise leave free.
			if call == nil {
				if v, ok := b.value.(*ir.Var); ok {
					if err := union(p.domainOf(b.v), p.domainOf(v)); err != nil {
						return nil, err
					}
				}
			}
			out = append(out, b)
			continue
		}
		switch op.Name {
		case ir.OpShapeOf:
			// "Defaults to the CPU domain because we can access a Tensor's
			// shape regardless of which device it is placed on" — the input
			// is unconstrained, the output lives on CPU.
			p.domainOf(b.v).find().dev = cpu
			out = append(out, b)

		case ir.OpInvokeShapeFunc:
			// Shape functions run on CPU: inputs and outputs are CPU.
			args := make([]ir.Expr, len(call.Args))
			args[0] = call.Args[0] // the OpRef
			changed := false
			for i := 1; i < len(call.Args); i++ {
				args[i] = p.requireOn(call.Args[i], cpu, &out)
				changed = changed || args[i] != call.Args[i]
			}
			p.domainOf(b.v).find().dev = cpu
			if changed {
				nc := ir.NewCall(call.Callee, args, call.Attrs)
				nc.SetCheckedType(call.CheckedType())
				out = append(out, binding{v: b.v, value: nc})
			} else {
				out = append(out, b)
			}

		case ir.OpAllocStorage:
			dev := ir.Device{Type: ir.DeviceType(call.Attrs.Int("device", int(p.target.Type))), ID: call.Attrs.Int("device_id", 0)}
			p.domainOf(b.v).find().dev = dev
			// A dynamic size argument is a CPU shape tensor.
			if len(call.Args) == 1 {
				args := []ir.Expr{p.requireOn(call.Args[0], cpu, &out)}
				if args[0] != call.Args[0] {
					nc := ir.NewCall(call.Callee, args, call.Attrs)
					nc.SetCheckedType(call.CheckedType())
					out = append(out, binding{v: b.v, value: nc})
					continue
				}
			}
			out = append(out, b)

		case ir.OpAllocTensor, ir.OpAllocTensorReg:
			// The tensor lives where its storage lives.
			if sv, ok := call.Args[0].(*ir.Var); ok {
				if err := union(p.domainOf(b.v), p.domainOf(sv)); err != nil {
					return nil, err
				}
			}
			if op.Name == ir.OpAllocTensorReg && len(call.Args) == 2 {
				// The shape argument is CPU data.
				_ = p.requireOn(call.Args[1], cpu, &out)
			}
			out = append(out, b)

		case ir.OpInvokeMut:
			// All arguments used in the invoke_mut must share the kernel's
			// domain, which is dictated by the output buffer's allocation.
			dev := p.target
			if buf, ok := call.Args[len(call.Args)-1].(*ir.Var); ok {
				if d := p.domainOf(buf).find().dev; !d.IsUnknown() {
					dev = d
				}
			}
			args := make([]ir.Expr, len(call.Args))
			args[0] = call.Args[0]
			changed := false
			for i := 1; i < len(call.Args); i++ {
				args[i] = p.requireOn(call.Args[i], dev, &out)
				changed = changed || args[i] != call.Args[i]
			}
			p.domainOf(b.v).find().dev = dev
			attrs := mergeAttrs(call.Attrs, ir.Attrs{"device": int(dev.Type), "device_id": dev.ID})
			nc := ir.NewCall(call.Callee, args, attrs)
			nc.SetCheckedType(call.CheckedType())
			_ = changed
			out = append(out, binding{v: b.v, value: nc})

		case ir.OpDeviceCopy:
			dst := ir.Device{Type: ir.DeviceType(call.Attrs.Int("dst_device", int(p.target.Type))), ID: call.Attrs.Int("dst_id", 0)}
			p.domainOf(b.v).find().dev = dst
			out = append(out, b)

		case ir.OpKill:
			out = append(out, b)

		default:
			// Unmanifested primitive call (pipelines without ManifestAlloc):
			// run it on the target device.
			args := make([]ir.Expr, len(call.Args))
			for i, a := range call.Args {
				args[i] = p.requireOn(a, p.target, &out)
			}
			p.domainOf(b.v).find().dev = p.target
			nc := ir.NewCall(call.Callee, args, call.Attrs)
			nc.SetCheckedType(call.CheckedType())
			out = append(out, binding{v: b.v, value: nc})
		}
	}

	// Branch conditions are read by the interpreter on the host; tail Ifs
	// were already processed by placeExpr's rewrite.
	return buildChain(out, result), nil
}
