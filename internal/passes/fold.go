package passes

import (
	"nimble/internal/ir"
	"nimble/internal/tensor"
)

// ConstantFold evaluates operator calls whose arguments are all constants at
// compile time, replacing the call with the resulting constant. Folding only
// fires for pure registered operators with an Eval; dialect ops (allocation,
// device copies) have no Eval and are never folded.
func ConstantFold() Pass {
	return Pass{
		Name: "constant-fold",
		Run: func(mod *ir.Module) error {
			return mapFuncs(mod, func(_ string, fn *ir.Function) (ir.Expr, error) {
				consts := map[*ir.Var]*ir.Constant{}
				// Pre-order pass records let-bound constants; Rewrite is
				// post-order, so chained folds (add of two folded results)
				// need a fixpoint over the chain. Two sweeps suffice in
				// practice for model graphs; iterate until stable.
				prev := fn.Body
				for iter := 0; iter < 8; iter++ {
					folded := foldOnce(prev, consts)
					if folded == prev {
						break
					}
					prev = folded
				}
				return prev, nil
			})
		},
	}
}

func foldOnce(body ir.Expr, consts map[*ir.Var]*ir.Constant) ir.Expr {
	// First collect constant bindings visible in the chain.
	ir.Visit(body, func(e ir.Expr) bool {
		if l, ok := e.(*ir.Let); ok {
			if c, ok := lookupConst(l.Value, consts); ok {
				consts[l.Bound] = c
			}
		}
		return true
	})
	return ir.Rewrite(body, func(e ir.Expr) ir.Expr {
		if call, ok := e.(*ir.Call); ok {
			return foldCall(call, consts)
		}
		return e
	})
}

func lookupConst(e ir.Expr, consts map[*ir.Var]*ir.Constant) (*ir.Constant, bool) {
	switch n := e.(type) {
	case *ir.Constant:
		return n, true
	case *ir.Var:
		c, ok := consts[n]
		return c, ok
	}
	return nil, false
}

func foldCall(call *ir.Call, consts map[*ir.Var]*ir.Constant) ir.Expr {
	_, op := opCall(call)
	if op == nil || op.Eval == nil {
		return call
	}
	if op.NumInputs == 0 && op.Name != "zeros" {
		return call
	}
	in := make([]*tensor.Tensor, len(call.Args))
	for i, a := range call.Args {
		c, ok := lookupConst(a, consts)
		if !ok {
			return call
		}
		in[i] = c.Value
	}
	out, err := op.Eval(in, call.Attrs)
	if err != nil {
		// A failed fold is not a compile error; leave the call for runtime,
		// where the shape machinery reports it properly.
		return call
	}
	folded := ir.Const(out)
	folded.SetCheckedType(call.CheckedType())
	return folded
}
