package passes

import (
	"fmt"
	"strings"

	"nimble/internal/ir"
	"nimble/internal/tensor"
)

// FusionStats reports what the fusion pass did, for tests and the fusion
// ablation bench.
type FusionStats struct {
	// Groups is the number of fused composite operators created.
	Groups int
	// OpsFused is the total number of primitive ops absorbed into groups.
	OpsFused int
}

// FuseOps combines chains of primitive operators into composite kernels:
// an out-fusable producer (dense, conv2d) followed by element-wise /
// broadcast / injective consumers, or pure element-wise chains. The §4.2
// fusion policy is enforced structurally: only operators whose shape
// functions are data independent may join a group, because a data-dependent
// or upper-bound shape function would need access to the intermediate
// tensors hidden inside the composite.
func FuseOps() Pass {
	return FuseOpsWithStats(nil)
}

// FuseOpsWithStats is FuseOps recording statistics into stats when non-nil.
func FuseOpsWithStats(stats *FusionStats) Pass {
	return Pass{
		Name:       "fuse-ops",
		NeedsTypes: true,
		Run: func(mod *ir.Module) error {
			// Group ids make fused operator names unique across the module:
			// two groups with the same member ops but different attrs or
			// weights must compile to distinct kernels.
			var groupID int
			return mapFuncs(mod, func(_ string, fn *ir.Function) (ir.Expr, error) {
				return fuseExpr(fn.Body, stats, &groupID), nil
			})
		},
	}
}

// fuseExpr fuses the top-level let-chain of e and recurses into branch
// bodies and nested functions.
func fuseExpr(e ir.Expr, stats *FusionStats, id *int) ir.Expr {
	// Recurse into non-chain sub-structure first.
	e = ir.Rewrite(e, func(x ir.Expr) ir.Expr {
		switch n := x.(type) {
		case *ir.If:
			return &ir.If{Cond: n.Cond, Then: fuseChainOnly(n.Then, stats, id), Else: fuseChainOnly(n.Else, stats, id)}
		case *ir.Match:
			clauses := make([]*ir.Clause, len(n.Clauses))
			for i, c := range n.Clauses {
				clauses[i] = &ir.Clause{Pattern: c.Pattern, Body: fuseChainOnly(c.Body, stats, id)}
			}
			return &ir.Match{Data: n.Data, Clauses: clauses}
		case *ir.Function:
			return ir.NewFunc(n.Params, fuseChainOnly(n.Body, stats, id), n.RetAnn)
		}
		return x
	})
	return fuseChainOnly(e, stats, id)
}

// fuseChainOnly fuses one let-chain (no recursion; branches were already
// handled by fuseExpr's rewrite).
func fuseChainOnly(e ir.Expr, stats *FusionStats, id *int) ir.Expr {
	bs, result := splitChain(e)
	if len(bs) < 2 {
		return e
	}
	uses := map[*ir.Var]int{}
	countUses(e, uses)

	var out []binding
	i := 0
	for i < len(bs) {
		group := collectGroup(bs, i, uses)
		if len(group) >= 2 {
			*id++
			fused := buildFusedBinding(bs[i:i+len(group)], group, *id)
			out = append(out, fused)
			if stats != nil {
				stats.Groups++
				stats.OpsFused += len(group)
			}
			i += len(group)
			continue
		}
		out = append(out, bs[i])
		i++
	}
	return buildChain(out, result)
}

// fusable reports whether an op may participate in fusion at all.
func fusable(op *ir.Op) bool {
	if op == nil || op.Eval == nil {
		return false
	}
	switch op.Pattern {
	case ir.PatternElemWise, ir.PatternBroadcast, ir.PatternInjective, ir.PatternOutFusable:
		// The §4.2 policy: only data-independent shape functions may fuse.
		return op.Shape.Fn != nil && op.Shape.Mode == ir.ShapeDataIndependent
	}
	return false
}

// collectGroup returns the member ops of the maximal group starting at bs[i]
// (nil entries never occur; a group of length 1 means "no fusion here").
// A binding joins when it consumes the previous member's result, that result
// has no other consumer, and the op is fusable. Only the first member may be
// out-fusable.
func collectGroup(bs []binding, i int, uses map[*ir.Var]int) []*ir.Op {
	_, op := opCall(bs[i].value)
	if !fusable(op) {
		return nil
	}
	group := []*ir.Op{op}
	for j := i + 1; j < len(bs); j++ {
		prev := bs[j-1]
		// The intermediate result must be consumed only once.
		if uses[prev.v] != 1 {
			break
		}
		call, next := opCall(bs[j].value)
		if !fusable(next) || next.Pattern == ir.PatternOutFusable {
			break
		}
		// Must consume the previous member's output.
		consumes := false
		for _, a := range call.Args {
			if v, ok := a.(*ir.Var); ok && v == prev.v {
				consumes = true
				break
			}
		}
		if !consumes {
			break
		}
		group = append(group, next)
	}
	if len(group) < 2 {
		return nil
	}
	return group
}

// argRef locates a fused member's argument: either the idx-th external
// parameter or the result of the idx-th earlier member.
type argRef struct {
	internal bool
	idx      int
}

type fusedMember struct {
	op    *ir.Op
	attrs ir.Attrs
	args  []argRef
}

// buildFusedBinding replaces the bindings of a group with a single binding
// of a synthesized composite operator.
func buildFusedBinding(bs []binding, ops []*ir.Op, id int) binding {
	n := len(ops)
	memberOf := map[*ir.Var]int{}
	var externals []ir.Expr
	extIdx := map[ir.Expr]int{}

	members := make([]fusedMember, n)
	names := make([]string, n)
	for m := 0; m < n; m++ {
		call, op := opCall(bs[m].value)
		names[m] = op.Name
		refs := make([]argRef, len(call.Args))
		for ai, a := range call.Args {
			if v, ok := a.(*ir.Var); ok {
				if mi, internal := memberOf[v]; internal {
					refs[ai] = argRef{internal: true, idx: mi}
					continue
				}
			}
			idx, seen := extIdx[a]
			if !seen {
				idx = len(externals)
				extIdx[a] = idx
				externals = append(externals, a)
			}
			refs[ai] = argRef{idx: idx}
		}
		members[m] = fusedMember{op: op, attrs: call.Attrs, args: refs}
		memberOf[bs[m].v] = m
	}

	outType := bs[n-1].value.CheckedType()
	fused := &ir.Op{
		Name: fmt.Sprintf("fused%d(%s)", id, strings.Join(names, "+")),
		Rel: func(_ []ir.Type, _ ir.Attrs) (ir.Type, error) {
			if outType == nil {
				return nil, fmt.Errorf("passes: fused op lost its output type")
			}
			return outType, nil
		},
		Shape: ir.ShapeFunc{
			Mode: ir.ShapeDataIndependent,
			Fn:   composeShapeFuncs(members),
		},
		Eval:      composeEvals(members),
		EvalInto:  composeEvalInto(members),
		Pattern:   ir.PatternOpaque,
		NumInputs: len(externals),
	}
	call := ir.NewCall(&ir.OpRef{Op: fused}, externals, nil)
	call.SetCheckedType(outType)
	return binding{v: bs[n-1].v, value: call}
}

// composeShapeFuncs chains the members' data-independent shape functions:
// "the compiler can easily connect the shape functions of basic operators to
// form the shape function for a composite operator when all shape functions
// are data independent" (§4.2).
func composeShapeFuncs(members []fusedMember) func([]tensor.Shape, []*tensor.Tensor, ir.Attrs) ([]tensor.Shape, error) {
	return func(inShapes []tensor.Shape, _ []*tensor.Tensor, _ ir.Attrs) ([]tensor.Shape, error) {
		memberShapes := make([]tensor.Shape, len(members))
		for m, mem := range members {
			argShapes := make([]tensor.Shape, len(mem.args))
			for i, r := range mem.args {
				if r.internal {
					argShapes[i] = memberShapes[r.idx]
				} else {
					if r.idx >= len(inShapes) {
						return nil, fmt.Errorf("passes: fused shape func missing input %d", r.idx)
					}
					argShapes[i] = inShapes[r.idx]
				}
			}
			out, err := mem.op.Shape.Fn(argShapes, nil, mem.attrs)
			if err != nil {
				return nil, err
			}
			memberShapes[m] = out[0]
		}
		return []tensor.Shape{memberShapes[len(members)-1]}, nil
	}
}

// composeEvals chains the members' kernels into one composite kernel.
func composeEvals(members []fusedMember) ir.EvalFunc {
	return func(args []*tensor.Tensor, _ ir.Attrs) (*tensor.Tensor, error) {
		return runFused(members, args, nil)
	}
}

// composeEvalInto is the destination-passing form of the composite kernel:
// intermediates still materialize (they are invisible to the planner), but
// the last member writes the planned output buffer directly, so a fused
// chain costs no final allocation or copy.
func composeEvalInto(members []fusedMember) ir.EvalIntoFunc {
	return func(args []*tensor.Tensor, _ ir.Attrs, out *tensor.Tensor) (*tensor.Tensor, error) {
		return runFused(members, args, out)
	}
}

func runFused(members []fusedMember, args []*tensor.Tensor, out *tensor.Tensor) (*tensor.Tensor, error) {
	results := make([]*tensor.Tensor, len(members))
	for m, mem := range members {
		in := make([]*tensor.Tensor, len(mem.args))
		for i, r := range mem.args {
			if r.internal {
				in[i] = results[r.idx]
			} else {
				in[i] = args[r.idx]
			}
		}
		var res *tensor.Tensor
		var err error
		if m == len(members)-1 && out != nil && mem.op.EvalInto != nil {
			res, err = mem.op.EvalInto(in, mem.attrs, out)
		} else {
			res, err = mem.op.Eval(in, mem.attrs)
		}
		if err != nil {
			return nil, fmt.Errorf("passes: fused member %s: %w", mem.op.Name, err)
		}
		results[m] = res
	}
	return results[len(members)-1], nil
}
