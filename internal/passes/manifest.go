package passes

import (
	"fmt"

	"nimble/internal/ir"
)

// AllocStats reports what the memory planner did, feeding the §6.3 study.
type AllocStats struct {
	// StaticAllocs counts alloc_storage bindings with compile-time sizes.
	StaticAllocs int
	// DynamicAllocs counts allocations whose size comes from a runtime
	// shape function.
	DynamicAllocs int
	// ShapeFuncs counts inserted shape-function invocations.
	ShapeFuncs int
	// Kills counts inserted kill operations.
	Kills int
	// InPlace counts in-place operators routed onto their own first
	// argument (no allocation).
	InPlace int
}

// ManifestAlloc is the §4.3 memory-planning transform: it rewrites the
// implicit-allocation IR ("each operator allocates its output") into the
// explicit dialect where buffers are allocated and passed around —
// alloc_storage / alloc_tensor / invoke_mut / kill. Statically shaped
// results get compile-time-sized storage; dynamically shaped results get a
// shape-function invocation followed by runtime-sized allocation, exactly
// the fixed-point the paper describes ("we must now manifest allocations...
// until we allocate for both the compute and necessary shape functions").
func ManifestAlloc(target ir.Device) Pass {
	return ManifestAllocWithStats(target, nil)
}

// ManifestAllocWithStats is ManifestAlloc recording statistics.
func ManifestAllocWithStats(target ir.Device, stats *AllocStats) Pass {
	return Pass{
		Name:       "manifest-alloc",
		NeedsTypes: true,
		Run: func(mod *ir.Module) error {
			for _, name := range mod.FuncNames() {
				fn := mod.Funcs[name]
				body, err := manifestExpr(fn.Body, target, stats)
				if err != nil {
					return fmt.Errorf("%s: %w", name, err)
				}
				fn.Body = body
			}
			return nil
		},
	}
}

func manifestExpr(e ir.Expr, target ir.Device, stats *AllocStats) (ir.Expr, error) {
	// Recurse into branch bodies and nested functions first.
	var rerr error
	e = ir.Rewrite(e, func(x ir.Expr) ir.Expr {
		if rerr != nil {
			return x
		}
		switch n := x.(type) {
		case *ir.If:
			thenB, err := manifestChain(n.Then, target, stats)
			if err != nil {
				rerr = err
				return x
			}
			elseB, err := manifestChain(n.Else, target, stats)
			if err != nil {
				rerr = err
				return x
			}
			out := &ir.If{Cond: n.Cond, Then: thenB, Else: elseB}
			out.SetCheckedType(n.CheckedType())
			return out
		case *ir.Match:
			clauses := make([]*ir.Clause, len(n.Clauses))
			for i, c := range n.Clauses {
				b, err := manifestChain(c.Body, target, stats)
				if err != nil {
					rerr = err
					return x
				}
				clauses[i] = &ir.Clause{Pattern: c.Pattern, Body: b}
			}
			out := &ir.Match{Data: n.Data, Clauses: clauses}
			out.SetCheckedType(n.CheckedType())
			return out
		case *ir.Function:
			b, err := manifestChain(n.Body, target, stats)
			if err != nil {
				rerr = err
				return x
			}
			out := ir.NewFunc(n.Params, b, n.RetAnn)
			out.SetCheckedType(n.CheckedType())
			return out
		}
		return x
	})
	if rerr != nil {
		return nil, rerr
	}
	return manifestChain(e, target, stats)
}

// alreadyDialect reports whether the binding is already part of the
// explicit-allocation dialect (idempotence guard).
func alreadyDialect(op *ir.Op) bool {
	if op == nil {
		return false
	}
	switch op.Name {
	case ir.OpAllocStorage, ir.OpAllocTensor, ir.OpAllocTensorReg,
		ir.OpInvokeMut, ir.OpKill, ir.OpShapeOf, ir.OpInvokeShapeFunc,
		ir.OpDeviceCopy, ir.OpReshapeTensor:
		return true
	}
	return false
}

func manifestChain(e ir.Expr, target ir.Device, stats *AllocStats) (ir.Expr, error) {
	bs, result := splitChain(e)
	fresh := 0
	newVar := func(prefix string) *ir.Var {
		fresh++
		return ir.NewVar(fmt.Sprintf("%s%d", prefix, fresh), nil)
	}
	// A primitive call in tail position is bound first so it is allocated
	// like any other operation.
	if _, op := opCall(result); op != nil && op.Eval != nil && !alreadyDialect(op) {
		rv := newVar("ret")
		rv.SetCheckedType(result.CheckedType())
		bs = append(bs, binding{v: rv, value: result})
		result = rv
	}

	var out []binding
	for _, b := range bs {
		call, op := opCall(b.value)
		if op == nil || op.Eval == nil || alreadyDialect(op) {
			out = append(out, b)
			continue
		}
		outType, ok := b.value.CheckedType().(*ir.TensorType)
		if !ok {
			// Non-tensor results (rare) stay implicit.
			out = append(out, b)
			continue
		}

		if op.InPlace {
			if _, isConst := call.Args[0].(*ir.Constant); !isConst {
				// In-place operator (cache_append): the result aliases its
				// first argument, so that buffer itself becomes the
				// invoke_mut destination — no allocation, no copy of the
				// other rows. Constants are excluded: they are shared by
				// reference across sessions, so an in-place write would
				// corrupt every other user; the allocation path below then
				// gives the operator a fresh buffer its EvalInto copies
				// into (pure append semantics).
				out = append(out, binding{v: b.v, value: invokeMut(op, call, call.Args[0])})
				if stats != nil {
					stats.InPlace++
				}
				continue
			}
		}

		if shape, static := outType.StaticShape(); static {
			// Static path: compile-time-sized storage.
			sizeBytes := shape.NumElements() * outType.DType.Size()
			sv := newVar("storage")
			out = append(out, binding{v: sv, value: callDialect(ir.OpAllocStorage, nil, ir.Attrs{
				"size": sizeBytes, "align": 64,
				"device": int(target.Type), "device_id": target.ID,
			})})
			tv := newVar("buf")
			out = append(out, binding{v: tv, value: callDialect(ir.OpAllocTensor, []ir.Expr{sv}, ir.Attrs{
				"shape": []int(shape), "dtype": outType.DType.String(), "offset": 0,
			})})
			out = append(out, binding{v: b.v, value: invokeMut(op, call, tv)})
			if stats != nil {
				stats.StaticAllocs++
			}
			continue
		}

		// Dynamic path: run the shape function, then allocate by its result.
		mode := op.Shape.Mode
		if op.Shape.Fn == nil {
			return nil, fmt.Errorf("operator %s has a dynamic output type but no shape function", op.Name)
		}
		var sfArgs []ir.Expr
		sfArgs = append(sfArgs, &ir.OpRef{Op: op})
		if mode == ir.ShapeDataDependent {
			// Data-dependent shape functions need the values themselves.
			sfArgs = append(sfArgs, call.Args...)
		} else {
			// Data-independent / upper-bound: shapes suffice.
			for _, a := range call.Args {
				shv := newVar("sh")
				out = append(out, binding{v: shv, value: callDialect(ir.OpShapeOf, []ir.Expr{a}, nil)})
				sfArgs = append(sfArgs, shv)
			}
		}
		oshv := newVar("osh")
		sfAttrs := ir.Attrs{"mode": int(mode)}
		for k, v := range call.Attrs {
			sfAttrs[k] = v
		}
		out = append(out, binding{v: oshv, value: callDialect(ir.OpInvokeShapeFunc, sfArgs, sfAttrs)})
		if stats != nil {
			stats.ShapeFuncs++
		}

		sv := newVar("storage")
		out = append(out, binding{v: sv, value: callDialect(ir.OpAllocStorage, []ir.Expr{oshv}, ir.Attrs{
			"align": 64, "dtype": outType.DType.String(),
			"device": int(target.Type), "device_id": target.ID,
		})})
		tv := newVar("buf")
		out = append(out, binding{v: tv, value: callDialect(ir.OpAllocTensorReg, []ir.Expr{sv, oshv}, ir.Attrs{
			"dtype": outType.DType.String(), "rank": outType.Rank(),
		})})
		out = append(out, binding{v: b.v, value: invokeMut(op, call, tv)})
		if stats != nil {
			stats.DynamicAllocs++
		}
	}

	out = insertKills(out, result, stats)
	return buildChain(out, result), nil
}

func callDialect(name string, args []ir.Expr, attrs ir.Attrs) ir.Expr {
	return ir.CallOpAttrs(name, attrs, args...)
}

// invokeMut builds invoke_mut(opref, inputs..., out). The callee operator
// travels as the first argument (an atomic OpRef) so synthesized fused
// operators — which are not in the global registry — can be referenced.
func invokeMut(op *ir.Op, call *ir.Call, out ir.Expr) ir.Expr {
	args := make([]ir.Expr, 0, len(call.Args)+2)
	args = append(args, &ir.OpRef{Op: op})
	args = append(args, call.Args...)
	args = append(args, out)
	c := ir.CallOpAttrs(ir.OpInvokeMut, mergeAttrs(call.Attrs, ir.Attrs{"num_outputs": 1}), args...)
	c.SetCheckedType(call.CheckedType())
	return c
}

func mergeAttrs(a, b ir.Attrs) ir.Attrs {
	out := ir.Attrs{}
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}

// consumingUse reports whether a binding's value only *reads* its operand
// tensors. Kernel-style calls (invoke_mut, shape functions, device_copy —
// which clones) consume their inputs synchronously, so a buffer whose
// uses are all consuming is dead after its last one. Everything else may
// alias or retain the operand — an If/Match selects one branch var as its
// value, a bare var binding is a move, tuples/ADTs/closures hold
// references, reshape_tensor shares the source storage, and a function
// call may return its own argument — so a use there keeps the buffer
// alive indefinitely.
func consumingUse(value ir.Expr) bool {
	call, op := opCall(value)
	if op == nil {
		return false
	}
	switch op.Name {
	case ir.OpInvokeMut, ir.OpShapeOf, ir.OpInvokeShapeFunc, ir.OpDeviceCopy, ir.OpKill:
		return true
	case ir.OpReshapeTensor, ir.OpAllocTensor, ir.OpAllocTensorReg, ir.OpAllocStorage:
		return false
	}
	// A remaining primitive operator call evaluates its kernel over the
	// inputs; synthesized fused operators behave the same way.
	_ = call
	return op.Eval != nil
}

// inPlaceAliasArg returns the variable an in-place invoke_mut both reads and
// overwrites (its routed destination), or nil for every other binding.
func inPlaceAliasArg(value ir.Expr) *ir.Var {
	call, op := opCall(value)
	if op == nil || op.Name != ir.OpInvokeMut || len(call.Args) < 2 {
		return nil
	}
	target, ok := call.Args[0].(*ir.OpRef)
	if !ok || !target.Op.InPlace {
		return nil
	}
	v, _ := call.Args[1].(*ir.Var)
	return v
}

// insertKills adds kill(v) after the last top-level use of every
// invoke_mut-produced tensor that does not escape the chain, freeing
// buffers "before their reference count becomes zero due to exiting the
// frame" (§4.3) so storage coalescing and the runtime pool can reuse them.
//
// Only buffers whose every use is a consuming read are killable: a use in
// an aliasing position (see consumingUse) publishes the buffer beyond its
// binding, and coalescing a storage that an alias still reads miscompiles
// the program (the differential fuzzer caught exactly this: an If-selected
// dense output was recycled as the destination of a later transpose).
// Kills are inserted in binding order so compilation is deterministic —
// serialized executables are byte-stable run over run.
func insertKills(bs []binding, result ir.Expr, stats *AllocStats) []binding {
	produced := map[*ir.Var]bool{}
	escapes := map[*ir.Var]bool{}
	var producedOrder []*ir.Var
	for _, b := range bs {
		if call, op := opCall(b.value); op != nil && op.Name == ir.OpInvokeMut {
			produced[b.v] = true
			producedOrder = append(producedOrder, b.v)
			// An in-place product aliases its input buffer; killing either
			// name while the other is still read would recycle live memory,
			// so both sides of the alias are pinned (the input below, the
			// product here).
			if target, ok := call.Args[0].(*ir.OpRef); ok && target.Op.InPlace {
				escapes[b.v] = true
			}
		}
	}
	if len(produced) == 0 {
		return bs
	}
	// Track the last top-level use index of every produced var, and mark
	// vars with any non-consuming use as escaping.
	lastUse := map[*ir.Var]int{}
	for i, b := range bs {
		consuming := consumingUse(b.value)
		aliased := inPlaceAliasArg(b.value)
		for _, v := range ir.FreeVars(b.value) {
			if produced[v] {
				lastUse[v] = i
				if !consuming || v == aliased {
					escapes[v] = true
				}
			}
		}
	}
	for _, v := range ir.FreeVars(result) {
		escapes[v] = true
	}

	// Group killable vars by their last-use binding, preserving production
	// order within each site.
	killsAt := map[int][]*ir.Var{}
	for _, v := range producedOrder {
		i, used := lastUse[v]
		if !used || escapes[v] {
			continue
		}
		killsAt[i] = append(killsAt[i], v)
	}
	var out []binding
	killCounter := 0
	for i, b := range bs {
		out = append(out, b)
		for _, v := range killsAt[i] {
			if v == b.v {
				continue
			}
			killCounter++
			kv := ir.NewVar(fmt.Sprintf("kill%d", killCounter), nil)
			out = append(out, binding{v: kv, value: callDialect(ir.OpKill, []ir.Expr{v}, nil)})
			if stats != nil {
				stats.Kills++
			}
		}
	}
	return out
}
