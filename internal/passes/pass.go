// Package passes implements Nimble's compilation passes over the IR: A-normal
// form conversion, constant folding, dead-code elimination, the §4.2
// fusion policy, the §4.3 explicit-allocation (memory planning) transform
// with storage coalescing, and the §4.4 union-find device placement.
//
// Passes operate on whole modules. The canonical pipeline, applied by
// internal/compiler, is:
//
//	ANF -> ConstantFold -> DCE -> FuseOps -> ManifestAlloc ->
//	CoalesceStorage -> PlaceDevices
package passes

import (
	"fmt"

	"nimble/internal/ir"
	"nimble/internal/typeinfer"
)

// Pass is a named module transformation.
type Pass struct {
	Name string
	Run  func(*ir.Module) error
	// NeedsTypes marks passes that consult checked types; the manager
	// re-runs inference before them when a prior pass invalidated types.
	NeedsTypes bool
}

// Manager sequences passes with type-inference maintenance.
type Manager struct {
	passes []Pass
	// Trace receives one line per executed pass when non-nil.
	Trace func(string)
	// AfterPass, when non-nil, runs after every pass with the pass name and
	// the transformed module; a non-nil error aborts the pipeline. The
	// compiler's check mode hangs the static verifier here so a bad pass is
	// reported at its own boundary.
	AfterPass func(name string, mod *ir.Module) error
}

// NewManager builds a manager over the given passes.
func NewManager(passes ...Pass) *Manager { return &Manager{passes: passes} }

// DefaultPipeline returns the full Nimble lowering pipeline for the given
// target device.
func DefaultPipeline(target ir.Device) *Manager {
	return NewManager(
		ANF(),
		ConstantFold(),
		DCE(),
		FuseOps(),
		ManifestAlloc(target),
		CoalesceStorage(),
		PlaceDevices(target),
	)
}

// Run applies the pipeline to the module, running type inference up front
// and again before every pass that needs types.
func (m *Manager) Run(mod *ir.Module) error {
	if err := typeinfer.InferModule(mod); err != nil {
		return fmt.Errorf("passes: initial type inference: %w", err)
	}
	for _, p := range m.passes {
		if p.NeedsTypes {
			if err := typeinfer.InferModule(mod); err != nil {
				return fmt.Errorf("passes: re-inference before %s: %w", p.Name, err)
			}
		}
		if err := p.Run(mod); err != nil {
			return fmt.Errorf("passes: %s: %w", p.Name, err)
		}
		if m.Trace != nil {
			m.Trace(p.Name)
		}
		if m.AfterPass != nil {
			if err := m.AfterPass(p.Name, mod); err != nil {
				return err
			}
		}
	}
	return nil
}

// mapFuncs applies f to every function body in the module.
func mapFuncs(mod *ir.Module, f func(name string, fn *ir.Function) (ir.Expr, error)) error {
	for _, name := range mod.FuncNames() {
		fn := mod.Funcs[name]
		body, err := f(name, fn)
		if err != nil {
			return err
		}
		fn.Body = body
	}
	return nil
}

// binding is one link of a let-chain.
type binding struct {
	v     *ir.Var
	value ir.Expr
}

// splitChain decomposes a let-chain into its bindings and final result.
func splitChain(e ir.Expr) ([]binding, ir.Expr) {
	var out []binding
	for {
		l, ok := e.(*ir.Let)
		if !ok {
			return out, e
		}
		out = append(out, binding{v: l.Bound, value: l.Value})
		e = l.Body
	}
}

// buildChain reassembles a let-chain.
func buildChain(bs []binding, result ir.Expr) ir.Expr {
	out := result
	for i := len(bs) - 1; i >= 0; i-- {
		out = ir.NewLet(bs[i].v, bs[i].value, out)
	}
	return out
}

// isAtomic reports whether an expression may appear as an operand in
// A-normal form.
func isAtomic(e ir.Expr) bool {
	switch e.(type) {
	case *ir.Var, *ir.GlobalVar, *ir.Constant, *ir.OpRef, *ir.CtorRef:
		return true
	}
	return false
}

// opCall returns the operator of a call whose callee is an OpRef, or nil.
func opCall(e ir.Expr) (*ir.Call, *ir.Op) {
	c, ok := e.(*ir.Call)
	if !ok {
		return nil, nil
	}
	ref, ok := c.Callee.(*ir.OpRef)
	if !ok {
		return c, nil
	}
	return c, ref.Op
}
