package passes

import (
	"strings"
	"testing"

	"nimble/internal/ir"
	"nimble/internal/tensor"
	"nimble/internal/typeinfer"
)

const anyd = ir.DimAny

func inferred(t *testing.T, fn *ir.Function) *ir.Module {
	t.Helper()
	m := ir.NewModule()
	m.AddFunc("main", fn)
	if err := typeinfer.InferModule(m); err != nil {
		t.Fatalf("infer: %v", err)
	}
	return m
}

func runPass(t *testing.T, m *ir.Module, p Pass) {
	t.Helper()
	if p.NeedsTypes {
		if err := typeinfer.InferModule(m); err != nil {
			t.Fatalf("re-infer before %s: %v", p.Name, err)
		}
	}
	if err := p.Run(m); err != nil {
		t.Fatalf("%s: %v", p.Name, err)
	}
}

func mainBody(t *testing.T, m *ir.Module) ir.Expr {
	t.Helper()
	fn, err := m.Main()
	if err != nil {
		t.Fatal(err)
	}
	return fn.Body
}

// --- ANF ---

func TestANFFlattensNestedCalls(t *testing.T) {
	x := ir.NewVar("x", ir.TT(tensor.Float32, 2, 2))
	// relu(sigmoid(tanh(x)))
	e := ir.CallOp("relu", ir.CallOp("sigmoid", ir.CallOp("tanh", x)))
	m := inferred(t, ir.NewFunc([]*ir.Var{x}, e, nil))
	runPass(t, m, ANF())
	body := mainBody(t, m)
	bs, result := splitChain(body)
	if len(bs) != 2 {
		t.Fatalf("expected 2 bindings, got %d:\n%s", len(bs), ir.Print(body))
	}
	// Every call operand must now be atomic.
	ir.Visit(body, func(e ir.Expr) bool {
		if c, ok := e.(*ir.Call); ok {
			for _, a := range c.Args {
				if !isAtomic(a) {
					t.Errorf("non-atomic arg %s", ir.ExprKind(a))
				}
			}
		}
		return true
	})
	if _, ok := result.(*ir.Call); !ok {
		t.Errorf("tail should remain a call, got %s", ir.ExprKind(result))
	}
}

func TestANFKeepsBranchesInTailPosition(t *testing.T) {
	x := ir.NewVar("x", ir.TT(tensor.Float32, 2))
	c := ir.NewVar("c", ir.BoolType())
	e := ir.CallOp("relu", &ir.If{Cond: c, Then: x, Else: ir.CallOp("sigmoid", x)})
	m := inferred(t, ir.NewFunc([]*ir.Var{x, c}, e, nil))
	runPass(t, m, ANF())
	body := mainBody(t, m)
	// The If must be let-bound (it is an operand), and its branches must be
	// normalized chains.
	bs, _ := splitChain(body)
	foundIf := false
	for _, b := range bs {
		if iff, ok := b.value.(*ir.If); ok {
			foundIf = true
			if !isAtomic(iff.Cond) {
				t.Error("if condition not atomic")
			}
		}
	}
	if !foundIf {
		t.Fatalf("if not let-bound:\n%s", ir.Print(body))
	}
}

func TestANFIdempotent(t *testing.T) {
	x := ir.NewVar("x", ir.TT(tensor.Float32, 2, 2))
	e := ir.CallOp("relu", ir.CallOp("sigmoid", x))
	m := inferred(t, ir.NewFunc([]*ir.Var{x}, e, nil))
	runPass(t, m, ANF())
	first := ir.Print(mainBody(t, m))
	runPass(t, m, ANF())
	second := ir.Print(mainBody(t, m))
	if first != second {
		t.Errorf("ANF not idempotent:\n%s\nvs\n%s", first, second)
	}
}

// --- Constant folding ---

func TestConstantFold(t *testing.T) {
	x := ir.NewVar("x", ir.TT(tensor.Float32, 2))
	// add(const 2, const 3) -> const 5; then multiply(x, 5) stays.
	b := ir.NewBuilder()
	c := b.Op("add", ir.ConstScalar(2), ir.ConstScalar(3))
	out := b.Op("multiply", x, c)
	m := inferred(t, ir.NewFunc([]*ir.Var{x}, b.Finish(out), nil))
	runPass(t, m, ANF())
	runPass(t, m, ConstantFold())
	runPass(t, m, DCE())
	body := ir.Print(mainBody(t, m))
	if !strings.Contains(body, "const(5") {
		t.Errorf("fold missing:\n%s", body)
	}
	if strings.Contains(body, "add") {
		t.Errorf("folded add still present:\n%s", body)
	}
}

func TestConstantFoldChains(t *testing.T) {
	// Folding through let-bound intermediates: relu(neg(const -3)) -> 3...
	// negative(-3)=3, relu(3)=3.
	b := ir.NewBuilder()
	n := b.Op("negative", ir.ConstScalar(-3))
	out := b.Op("relu", n)
	m := inferred(t, ir.NewFunc(nil, b.Finish(out), nil))
	runPass(t, m, ANF())
	runPass(t, m, ConstantFold())
	runPass(t, m, DCE())
	body := ir.Print(mainBody(t, m))
	if !strings.Contains(body, "const(3") || strings.Contains(body, "relu") {
		t.Errorf("chained fold failed:\n%s", body)
	}
}

func TestConstantFoldSkipsNonConst(t *testing.T) {
	x := ir.NewVar("x", ir.TT(tensor.Float32, 2))
	m := inferred(t, ir.NewFunc([]*ir.Var{x}, ir.CallOp("relu", x), nil))
	runPass(t, m, ConstantFold())
	if !strings.Contains(ir.Print(mainBody(t, m)), "relu") {
		t.Error("non-constant call folded")
	}
}

// --- DCE ---

func TestDCERemovesDeadChains(t *testing.T) {
	x := ir.NewVar("x", ir.TT(tensor.Float32, 2))
	b := ir.NewBuilder()
	dead1 := b.Op("sigmoid", x)
	_ = b.Op("tanh", dead1) // dead, and killing it makes dead1 dead too
	live := b.Op("relu", x)
	m := inferred(t, ir.NewFunc([]*ir.Var{x}, b.Finish(live), nil))
	runPass(t, m, DCE())
	body := ir.Print(mainBody(t, m))
	if strings.Contains(body, "sigmoid") || strings.Contains(body, "tanh") {
		t.Errorf("dead bindings survive:\n%s", body)
	}
	if !strings.Contains(body, "relu") {
		t.Errorf("live binding removed:\n%s", body)
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	x := ir.NewVar("x", ir.TT(tensor.Float32, 2))
	b := ir.NewBuilder()
	_ = b.Bind("k", ir.CallOp(ir.OpKill, x))
	out := b.Op("relu", x)
	m := inferred(t, ir.NewFunc([]*ir.Var{x}, b.Finish(out), nil))
	runPass(t, m, DCE())
	if !strings.Contains(ir.Print(mainBody(t, m)), "kill") {
		t.Error("side-effecting kill removed")
	}
}

// --- Fusion ---

func TestFuseDenseEpilogue(t *testing.T) {
	x := ir.NewVar("x", ir.TT(tensor.Float32, anyd, 8))
	w := ir.NewVar("w", ir.TT(tensor.Float32, 8, 4))
	bias := ir.NewVar("b", ir.TT(tensor.Float32, 4))
	b := ir.NewBuilder()
	d := b.Op("dense", x, w)
	ba := b.Op("bias_add", d, bias)
	out := b.Op("relu", ba)
	m := inferred(t, ir.NewFunc([]*ir.Var{x, w, bias}, b.Finish(out), nil))
	runPass(t, m, ANF())
	var stats FusionStats
	runPass(t, m, FuseOpsWithStats(&stats))
	if stats.Groups != 1 || stats.OpsFused != 3 {
		t.Errorf("stats = %+v, want 1 group of 3", stats)
	}
	body := ir.Print(mainBody(t, m))
	if !strings.Contains(body, "(dense+bias_add+relu)") {
		t.Errorf("fused op missing:\n%s", body)
	}
	// Semantics preserved: evaluate fused op directly.
	bs, _ := splitChain(mainBody(t, m))
	var fusedOp *ir.Op
	for _, bd := range bs {
		if _, op := opCall(bd.value); op != nil && strings.HasPrefix(op.Name, "fused") {
			fusedOp = op
		}
	}
	if fusedOp == nil {
		t.Fatal("fused op not found in chain")
	}
	xs := tensor.FromF32([]float32{1, 0, 0, 0, 0, 0, 0, 0}, 1, 8)
	ws := tensor.New(tensor.Float32, 8, 4)
	ws.F32()[0] = -2 // x@w = [-2,0,0,0]
	bb := tensor.FromF32([]float32{1, 1, 1, 1}, 4)
	got, err := fusedOp.Eval([]*tensor.Tensor{xs, ws, bb}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.FromF32([]float32{0, 1, 1, 1}, 1, 4) // relu(-2+1)=0, relu(0+1)=1
	if !got.Equal(want) {
		t.Errorf("fused eval = %v, want %v", got.F32(), want.F32())
	}
	// Composed shape function works.
	shapes, err := fusedOp.Shape.Fn([]tensor.Shape{{7, 8}, {8, 4}, {4}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !shapes[0].Equal(tensor.Shape{7, 4}) {
		t.Errorf("fused shape = %v", shapes[0])
	}
}

func TestFusePolicyBlocksDataDependent(t *testing.T) {
	// arange (data-dependent shape) must not fuse with its consumer (§4.2).
	b := ir.NewBuilder()
	r := b.Op("arange", ir.ConstScalar(0), ir.ConstScalar(5), ir.ConstScalar(1))
	out := b.Op("sigmoid", r)
	m := inferred(t, ir.NewFunc(nil, b.Finish(out), nil))
	runPass(t, m, ANF())
	var stats FusionStats
	runPass(t, m, FuseOpsWithStats(&stats))
	if stats.Groups != 0 {
		t.Errorf("data-dependent producer fused: %+v", stats)
	}
}

func TestFuseStopsAtMultiUse(t *testing.T) {
	x := ir.NewVar("x", ir.TT(tensor.Float32, 4, 4))
	b := ir.NewBuilder()
	s := b.Op("sigmoid", x)
	t1 := b.Op("tanh", s)
	// s used twice: once by tanh, once by add — chain must not fuse through s.
	out := b.Op("add", t1, s)
	m := inferred(t, ir.NewFunc([]*ir.Var{x}, b.Finish(out), nil))
	runPass(t, m, ANF())
	var stats FusionStats
	runPass(t, m, FuseOpsWithStats(&stats))
	for _, g := range []int{stats.Groups} {
		if g > 1 {
			t.Errorf("over-fused: %+v", stats)
		}
	}
	// tanh+add can fuse (t1 single use feeding add).
	body := ir.Print(mainBody(t, m))
	if strings.Contains(body, "(sigmoid+tanh") {
		t.Errorf("fused through multi-use value:\n%s", body)
	}
}

func TestFuseTwoOutFusablesDoNotMerge(t *testing.T) {
	x := ir.NewVar("x", ir.TT(tensor.Float32, 4, 8))
	w1 := ir.NewVar("w1", ir.TT(tensor.Float32, 8, 8))
	w2 := ir.NewVar("w2", ir.TT(tensor.Float32, 8, 8))
	b := ir.NewBuilder()
	d1 := b.Op("dense", x, w1)
	d2 := b.Op("dense", d1, w2)
	m := inferred(t, ir.NewFunc([]*ir.Var{x, w1, w2}, b.Finish(d2), nil))
	runPass(t, m, ANF())
	var stats FusionStats
	runPass(t, m, FuseOpsWithStats(&stats))
	if stats.Groups != 0 {
		t.Errorf("two matmuls fused together: %+v", stats)
	}
}

// --- Memory planning ---

func TestManifestAllocStatic(t *testing.T) {
	x := ir.NewVar("x", ir.TT(tensor.Float32, 10))
	m := inferred(t, ir.NewFunc([]*ir.Var{x}, ir.CallOp("add", x, x), nil))
	runPass(t, m, ANF())
	var stats AllocStats
	runPass(t, m, ManifestAllocWithStats(ir.CPU(0), &stats))
	body := ir.Print(mainBody(t, m))
	// The paper's first transformation example: a single static buffer of
	// 40 bytes for a Tensor<10> add.
	for _, want := range []string{"memory.alloc_storage", "size=40", "memory.alloc_tensor", "memory.invoke_mut"} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q:\n%s", want, body)
		}
	}
	if stats.StaticAllocs != 1 || stats.DynamicAllocs != 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestManifestAllocDynamicConcat(t *testing.T) {
	// The §4.3 concat example: dynamic output needs shape_of + shape_func
	// before allocation.
	x := ir.NewVar("x", ir.TT(tensor.Float32, anyd, 2))
	y := ir.NewVar("y", ir.TT(tensor.Float32, 1, 2))
	m := inferred(t, ir.NewFunc([]*ir.Var{x, y},
		ir.CallOpAttrs("concat", ir.Attrs{"axis": 0}, x, y), nil))
	runPass(t, m, ANF())
	var stats AllocStats
	runPass(t, m, ManifestAllocWithStats(ir.CPU(0), &stats))
	body := ir.Print(mainBody(t, m))
	for _, want := range []string{"vm.shape_of", "vm.shape_func", "memory.alloc_tensor_reg", "memory.invoke_mut"} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q:\n%s", want, body)
		}
	}
	if stats.DynamicAllocs != 1 || stats.ShapeFuncs != 1 {
		t.Errorf("stats = %+v", stats)
	}
	// Both inputs' shapes feed the shape function.
	if strings.Count(body, "vm.shape_of") != 2 {
		t.Errorf("expected 2 shape_of calls:\n%s", body)
	}
}

func TestManifestAllocDataDependentPassesValues(t *testing.T) {
	b := ir.NewBuilder()
	out := b.Op("arange", ir.ConstScalar(0), ir.ConstScalar(5), ir.ConstScalar(1))
	m := inferred(t, ir.NewFunc(nil, b.Finish(out), nil))
	runPass(t, m, ANF())
	runPass(t, m, ManifestAlloc(ir.CPU(0)))
	body := ir.Print(mainBody(t, m))
	// Data-dependent: no shape_of; values flow straight into the shape func.
	if strings.Contains(body, "vm.shape_of") {
		t.Errorf("data-dependent shape func got shape_of:\n%s", body)
	}
	if !strings.Contains(body, "vm.shape_func") {
		t.Errorf("shape_func missing:\n%s", body)
	}
}

func TestManifestInsertsKills(t *testing.T) {
	x := ir.NewVar("x", ir.TT(tensor.Float32, 8))
	b := ir.NewBuilder()
	h1 := b.Op("sigmoid", x)
	h2 := b.Op("tanh", h1) // h1 dead after this
	out := b.Op("relu", h2)
	m := inferred(t, ir.NewFunc([]*ir.Var{x}, b.Finish(out), nil))
	runPass(t, m, ANF())
	var stats AllocStats
	runPass(t, m, ManifestAllocWithStats(ir.CPU(0), &stats))
	if stats.Kills < 2 {
		t.Errorf("expected kills for h1 and h2, stats = %+v\n%s", stats, ir.Print(mainBody(t, m)))
	}
	body := ir.Print(mainBody(t, m))
	if !strings.Contains(body, "memory.kill") {
		t.Errorf("kill missing:\n%s", body)
	}
}

// --- Storage coalescing ---

func TestCoalesceReusesFreedStorage(t *testing.T) {
	x := ir.NewVar("x", ir.TT(tensor.Float32, 64))
	b := ir.NewBuilder()
	h1 := b.Op("sigmoid", x)
	h2 := b.Op("tanh", h1)
	h3 := b.Op("relu", h2)
	out := b.Op("negative", h3)
	m := inferred(t, ir.NewFunc([]*ir.Var{x}, b.Finish(out), nil))
	runPass(t, m, ANF())
	runPass(t, m, ManifestAlloc(ir.CPU(0)))
	var stats CoalesceStats
	runPass(t, m, CoalesceStorageWithStats(&stats))
	if stats.Before != 4 {
		t.Fatalf("expected 4 allocations before, got %+v", stats)
	}
	// h1's storage is dead once h2 is computed, so h3 can reuse it, and so
	// on: a chain of same-size ops needs only 2 live buffers.
	if stats.After != 2 {
		t.Errorf("expected 2 allocations after coalescing, got %+v\n%s", stats, ir.Print(mainBody(t, m)))
	}
	if stats.Reuses() != 2 {
		t.Errorf("Reuses = %d", stats.Reuses())
	}
	if stats.BytesAfter >= stats.BytesBefore {
		t.Errorf("bytes did not shrink: %+v", stats)
	}
}

func TestCoalesceRespectsSizes(t *testing.T) {
	// A freed small buffer must not satisfy a larger request.
	x := ir.NewVar("x", ir.TT(tensor.Float32, 4))
	big := ir.NewVar("big", ir.TT(tensor.Float32, 4, 100))
	b := ir.NewBuilder()
	h1 := b.Op("sigmoid", x)    // 16 bytes
	h2 := b.Op("tanh", h1)      // 16 bytes, h1 freed after
	t3 := b.Op("add", big, big) // 1600 bytes: must NOT reuse h1's storage
	pair := b.Bind("pair", &ir.Tuple{Fields: []ir.Expr{h2, t3}})
	m := inferred(t, ir.NewFunc([]*ir.Var{x, big}, b.Finish(pair), nil))
	runPass(t, m, ANF())
	runPass(t, m, ManifestAlloc(ir.CPU(0)))
	var stats CoalesceStats
	runPass(t, m, CoalesceStorageWithStats(&stats))
	if stats.After != stats.Before {
		t.Errorf("undersized storage was reused: %+v\n%s", stats, ir.Print(mainBody(t, m)))
	}
}

// --- Device placement ---

func TestPlaceDevicesPinsShapeFuncsToCPU(t *testing.T) {
	x := ir.NewVar("x", ir.TT(tensor.Float32, anyd, 2))
	y := ir.NewVar("y", ir.TT(tensor.Float32, 1, 2))
	m := inferred(t, ir.NewFunc([]*ir.Var{x, y},
		ir.CallOpAttrs("concat", ir.Attrs{"axis": 0}, x, y), nil))
	runPass(t, m, ANF())
	runPass(t, m, ManifestAlloc(ir.GPU(0)))
	var stats PlacementStats
	runPass(t, m, PlaceDevicesWithStats(ir.GPU(0), &stats))
	body := ir.Print(mainBody(t, m))
	// Kernel inputs x, y default to GPU; shape tensors stay on CPU; no
	// copies are needed because shape_of reads metadata from any domain.
	if stats.CopiesInserted != 0 {
		t.Errorf("unnecessary copies inserted: %+v\n%s", stats, body)
	}
	if stats.CPUVars == 0 {
		t.Errorf("no CPU-domain vars found: %+v", stats)
	}
	if !strings.Contains(body, "device=2") { // invoke_mut annotated gpu
		t.Errorf("kernel not annotated with gpu device:\n%s", body)
	}
}

func TestPlaceDevicesInsertsMandatoryCopy(t *testing.T) {
	// A data-dependent shape function (arange) whose inputs are produced on
	// GPU: the values must be copied to CPU — the §4.4 overhead case.
	s := ir.NewVar("s", ir.TT(tensor.Float32))
	b := ir.NewBuilder()
	// stop = relu(s) executes on GPU; arange(0, stop, 1) shape func needs it
	// on CPU.
	stop := b.Op("relu", s)
	out := b.Op("arange", ir.ConstScalar(0), stop, ir.ConstScalar(1))
	m := inferred(t, ir.NewFunc([]*ir.Var{s}, b.Finish(out), nil))
	runPass(t, m, ANF())
	runPass(t, m, ManifestAlloc(ir.GPU(0)))
	var stats PlacementStats
	runPass(t, m, PlaceDevicesWithStats(ir.GPU(0), &stats))
	body := ir.Print(mainBody(t, m))
	if stats.CopiesInserted == 0 {
		t.Fatalf("expected a device copy:\n%s", body)
	}
	if !strings.Contains(body, "device_copy") {
		t.Errorf("device_copy missing:\n%s", body)
	}
}

func TestPlaceDevicesAllCPUNeedsNoCopies(t *testing.T) {
	x := ir.NewVar("x", ir.TT(tensor.Float32, anyd, 4))
	b := ir.NewBuilder()
	h := b.Op("sigmoid", x)
	out := b.Op("tanh", h)
	m := inferred(t, ir.NewFunc([]*ir.Var{x}, b.Finish(out), nil))
	runPass(t, m, ANF())
	runPass(t, m, ManifestAlloc(ir.CPU(0)))
	var stats PlacementStats
	runPass(t, m, PlaceDevicesWithStats(ir.CPU(0), &stats))
	if stats.CopiesInserted != 0 {
		t.Errorf("CPU-only program got copies: %+v", stats)
	}
}

// --- Full pipeline ---

func TestDefaultPipelineRuns(t *testing.T) {
	x := ir.NewVar("x", ir.TT(tensor.Float32, anyd, 8))
	w := ir.NewVar("w", ir.TT(tensor.Float32, 8, 8))
	bias := ir.NewVar("bias", ir.TT(tensor.Float32, 8))
	b := ir.NewBuilder()
	d := b.Op("dense", x, w)
	ba := b.Op("bias_add", d, bias)
	act := b.Op("tanh", ba)
	out := b.OpAttrs("concat", ir.Attrs{"axis": 0}, act, x)
	m := inferred(t, ir.NewFunc([]*ir.Var{x, w, bias}, b.Finish(out), nil))
	mgr := DefaultPipeline(ir.CPU(0))
	var traced []string
	mgr.Trace = func(s string) { traced = append(traced, s) }
	if err := mgr.Run(m); err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if len(traced) != 7 {
		t.Errorf("expected 7 passes, traced %v", traced)
	}
	body := ir.Print(mainBody(t, m))
	// concat is injective with a data-independent shape function, so the
	// §4.2 policy allows it into the group.
	for _, want := range []string{"(dense+bias_add+tanh+concat)", "memory.invoke_mut", "vm.shape_func"} {
		if !strings.Contains(body, want) {
			t.Errorf("pipeline output missing %q:\n%s", want, body)
		}
	}
}

func TestUnionFind(t *testing.T) {
	a, b, c := &domain{}, &domain{}, &domain{dev: ir.CPU(0)}
	if err := union(a, b); err != nil {
		t.Fatal(err)
	}
	if err := union(b, c); err != nil {
		t.Fatal(err)
	}
	if a.find().dev != ir.CPU(0) {
		t.Errorf("device did not propagate: %v", a.find().dev)
	}
	d := &domain{dev: ir.GPU(0)}
	if err := union(a, d); err == nil {
		t.Error("conflicting union accepted")
	}
	// Union is idempotent on same class.
	if err := union(a, b); err != nil {
		t.Errorf("re-union failed: %v", err)
	}
}
