package passes

import (
	"nimble/internal/ir"
	"nimble/internal/typeinfer"
)

// RowSeparable reports whether a single-tensor-parameter function is
// row-independent along its leading dimension: row i of the result depends
// only on row i of the input, so concatenating two inputs along dim 0 and
// slicing the output back apart is a semantics-preserving rewrite. This is
// the property the serving micro-batcher needs, and it is decided here from
// the IR — not declared by callers — so the public nimble.Service can route
// entries to the batcher automatically and a BERT-style entry (whose
// attention mixes sequence positions even though its input and output both
// lead with Any) is provably excluded.
//
// The analysis is a conservative abstract interpretation over the
// let-chain with three facts per value:
//
//   - rowFree: the value does not depend on the parameter at all
//     (weights, biases, literals) — safe in any position.
//   - rowWise: the value's leading dimension ranges over the parameter's
//     rows, and row i depends only on parameter row i.
//   - tainted: anything else (mixes rows, reshapes them away, or flows
//     through a construct the analysis does not model).
//
// The result must be rowWise for the function to be row-separable. Any
// construct outside the modeled transfer rules (control flow, tuples,
// ADTs, calls to other functions) taints, so "true" is a proof and
// "false" merely means "not provably separable".
//
// Two transfer rules need shape information (from checked types; type
// inference is run on demand when the function has not been inferred):
// trailing-axis normalizations (softmax, layer_norm) are only row-wise
// when the operand's rank is >= 2 — on a rank-1 value the trailing axis
// IS the batch axis — and a row-free operand of an element-wise op may
// only broadcast UNDER the batch dimension (rank below the row-wise
// operand's, or an explicit leading extent of 1), never span it.
func RowSeparable(fn *ir.Function) bool {
	if len(fn.Params) != 1 {
		return false
	}
	pt, ok := fn.Params[0].TypeAnn.(*ir.TensorType)
	if !ok || pt.Rank() < 1 || !pt.Dims[0].IsAny() {
		return false
	}
	if fn.Body.CheckedType() == nil {
		// The shape-sensitive rules below read checked types; an
		// uninferrable function (e.g. one calling module globals, which
		// would taint anyway) is simply not provable.
		if err := typeinfer.InferFunc(fn); err != nil {
			return false
		}
	}
	a := &rowAnalysis{facts: map[*ir.Var]rowFact{fn.Params[0]: rowWise}}
	return a.eval(fn.Body) == rowWise
}

type rowFact int

const (
	tainted rowFact = iota
	rowFree
	rowWise
)

type rowAnalysis struct {
	facts map[*ir.Var]rowFact
}

func (a *rowAnalysis) eval(e ir.Expr) rowFact {
	switch n := e.(type) {
	case *ir.Var:
		return a.facts[n] // unbound vars default to tainted
	case *ir.Constant:
		return rowFree
	case *ir.Let:
		a.facts[n.Bound] = a.eval(n.Value)
		return a.eval(n.Body)
	case *ir.Call:
		return a.evalCall(n)
	}
	// Control flow, tuples, ADTs, closures: out of scope — tainted.
	return tainted
}

// tensorRank returns the expression's tensor rank from its checked type
// (falling back to annotations and constant payloads); ok is false when
// the rank cannot be determined.
func tensorRank(e ir.Expr) (rank int, leadingOne bool, ok bool) {
	t := e.CheckedType()
	if t == nil {
		switch n := e.(type) {
		case *ir.Var:
			t = n.TypeAnn
		case *ir.Constant:
			if n.Value != nil {
				sh := n.Value.Shape()
				return len(sh), len(sh) > 0 && sh[0] == 1, true
			}
		}
	}
	tt, isTensor := t.(*ir.TensorType)
	if !isTensor {
		return 0, false, false
	}
	lead := false
	if tt.Rank() > 0 {
		d := tt.Dims[0]
		lead = !d.IsAny() && d.Value == 1
	}
	return tt.Rank(), lead, true
}

func (a *rowAnalysis) evalCall(n *ir.Call) rowFact {
	opRef, ok := n.Callee.(*ir.OpRef)
	if !ok {
		return tainted // call to a global function or closure
	}
	args := make([]rowFact, len(n.Args))
	allFree := true
	for i, arg := range n.Args {
		args[i] = a.eval(arg)
		if args[i] != rowFree {
			allFree = false
		}
	}
	// A computation over weights only never sees the parameter; its result
	// is a constant of the request and safe anywhere.
	if allFree {
		return rowFree
	}
	op := opRef.Op
	switch op.Name {
	case "dense", "matmul", "bias_add":
		// x @ W / x + b: output row i is a function of input row i alone,
		// provided the right operand carries no row data AND the left
		// operand's batch axis is not its trailing axis (a rank-1 [Any]
		// value would consume the merged batch as one vector).
		if len(args) == 2 && args[0] == rowWise && args[1] == rowFree {
			if rank, _, known := tensorRank(n.Args[0]); known && rank >= 2 {
				return rowWise
			}
		}
		return tainted
	case "softmax", "layer_norm":
		// Normalize over the trailing axis: per-row only when the batch
		// axis is NOT the trailing axis — on a rank-1 value the two
		// coincide and batching would normalize across requests.
		if len(args) >= 1 && args[0] == rowWise {
			if rank, _, known := tensorRank(n.Args[0]); known && rank >= 2 {
				return rowWise
			}
		}
		return tainted
	case "concat":
		// Concatenation along a trailing axis keeps rows aligned; along the
		// leading axis it would interleave rows from different origins.
		// Negative axes are normalized the way the kernels do (axis+rank).
		axis := n.Attrs.Int("axis", 0)
		if axis < 0 {
			rank, _, known := tensorRank(n.Args[0])
			if !known {
				return tainted
			}
			axis += rank
		}
		if axis <= 0 {
			return tainted
		}
		for _, f := range args {
			if f != rowWise {
				return tainted
			}
		}
		return rowWise
	}
	switch op.Pattern {
	case ir.PatternElemWise, ir.PatternBroadcast:
		return a.elemwiseFact(n, args)
	}
	return tainted
}

// elemwiseFact decides element-wise/broadcast calls with at least one
// non-rowFree operand: every operand must be row-wise or a row-free value
// that provably broadcasts under the batch dimension. A row-free operand
// whose leading extent could align with the batch (rank equal to the
// row-wise operands' with leading dim != 1) would be consumed per-row in a
// single request but per-concatenated-batch in a merged one — e.g.
// add(x[Any,4], C[5,4]) type-checks per request yet breaks (or silently
// changes) under concatenation — so it taints.
func (a *rowAnalysis) elemwiseFact(n *ir.Call, args []rowFact) rowFact {
	rowRank := -1
	for i, f := range args {
		if f != rowWise {
			continue
		}
		rank, _, known := tensorRank(n.Args[i])
		if !known {
			return tainted
		}
		if rank > rowRank {
			rowRank = rank
		}
	}
	if rowRank < 1 {
		// Row-wise scalars have no batch dimension to preserve.
		return tainted
	}
	for i, f := range args {
		switch f {
		case tainted:
			return tainted
		case rowFree:
			rank, leadingOne, known := tensorRank(n.Args[i])
			if !known {
				return tainted
			}
			if rank >= rowRank && !(rank == rowRank && leadingOne) {
				return tainted
			}
		}
	}
	return rowWise
}
