package passes

import (
	"testing"

	"nimble/internal/ir"
	"nimble/internal/models"
	"nimble/internal/tensor"
)

func TestRowSeparableModels(t *testing.T) {
	mlp := models.NewMLP(models.MLPConfig{In: 8, Hidden: 16, Out: 4, Layers: 2, Seed: 1})
	if !RowSeparable(mlp.Module.Funcs["main"]) {
		t.Error("MLP main (dense/bias_add/relu over [Any, in]) should be row-separable")
	}

	// BERT leads with Any in and out, but attention mixes sequence
	// positions; the analysis must not be fooled by the shape alone.
	bert := models.NewBERT(models.BERTConfig{Layers: 1, Hidden: 16, Heads: 2, FFN: 32, Vocab: 50, MaxSeq: 16, Seed: 2})
	if RowSeparable(bert.Module.Funcs["main"]) {
		t.Error("BERT main must NOT be row-separable: attention couples rows")
	}

	// LSTM consumes an ADT list — not even a tensor parameter.
	lstm := models.NewLSTM(models.LSTMConfig{Input: 8, Hidden: 8, Layers: 1, Seed: 3})
	if RowSeparable(lstm.Module.Funcs["main"]) {
		t.Error("LSTM main must NOT be row-separable: ADT input")
	}
}

func TestRowSeparableStructural(t *testing.T) {
	newFn := func(build func(b *ir.Builder, x *ir.Var) ir.Expr) *ir.Function {
		x := ir.NewVar("x", ir.TT(tensor.Float32, ir.DimAny, 4))
		b := ir.NewBuilder()
		out := build(b, x)
		return ir.NewFunc([]*ir.Var{x}, b.Finish(out), nil)
	}
	w := ir.Const(tensor.New(tensor.Float32, 4, 4))

	if !RowSeparable(newFn(func(b *ir.Builder, x *ir.Var) ir.Expr {
		return b.Op("tanh", b.Op("dense", x, w))
	})) {
		t.Error("dense+tanh should be row-separable")
	}

	// dense with a row-dependent right operand mixes rows (x @ x^T).
	if RowSeparable(newFn(func(b *ir.Builder, x *ir.Var) ir.Expr {
		return b.Op("dense", x, b.Op("transpose", x))
	})) {
		t.Error("x @ x^T must NOT be row-separable")
	}

	// concat along the leading axis interleaves row origins.
	if RowSeparable(newFn(func(b *ir.Builder, x *ir.Var) ir.Expr {
		return b.OpAttrs("concat", ir.Attrs{"axis": 0}, x, b.Op("tanh", x))
	})) {
		t.Error("concat on axis 0 must NOT be row-separable")
	}
	if !RowSeparable(newFn(func(b *ir.Builder, x *ir.Var) ir.Expr {
		return b.OpAttrs("concat", ir.Attrs{"axis": 1}, x, b.Op("tanh", x))
	})) {
		t.Error("concat on axis 1 of row-wise values should be row-separable")
	}

	// softmax over a rank-1 value normalizes across the batch axis itself:
	// concatenating two requests would couple them. Rank >= 2 is fine.
	x1 := ir.NewVar("x", ir.TT(tensor.Float32, ir.DimAny))
	b1 := ir.NewBuilder()
	fn1 := ir.NewFunc([]*ir.Var{x1}, b1.Finish(b1.Op("softmax", x1)), nil)
	if RowSeparable(fn1) {
		t.Error("softmax over rank-1 [Any] must NOT be row-separable (trailing axis IS the batch axis)")
	}
	if !RowSeparable(newFn(func(b *ir.Builder, x *ir.Var) ir.Expr {
		return b.Op("softmax", b.Op("dense", x, w))
	})) {
		t.Error("softmax over rank-2 [Any, d] should be row-separable")
	}

	// A row-free broadcast operand whose leading extent could align with
	// the batch (add(x[Any,4], C[5,4]) type-checks per request) breaks
	// under concatenation and must taint; rank-below and leading-1
	// operands broadcast under the batch and are fine.
	c54 := ir.Const(tensor.New(tensor.Float32, 5, 4))
	if RowSeparable(newFn(func(b *ir.Builder, x *ir.Var) ir.Expr {
		return b.Op("add", x, c54)
	})) {
		t.Error("add with a [5, 4] row-free operand must NOT be row-separable")
	}
	if !RowSeparable(newFn(func(b *ir.Builder, x *ir.Var) ir.Expr {
		return b.Op("add", x, ir.Const(tensor.New(tensor.Float32, 4)))
	})) {
		t.Error("add with a rank-1 [4] bias should be row-separable")
	}
	if !RowSeparable(newFn(func(b *ir.Builder, x *ir.Var) ir.Expr {
		return b.Op("add", x, ir.Const(tensor.New(tensor.Float32, 1, 4)))
	})) {
		t.Error("add with a leading-1 [1, 4] operand should be row-separable")
	}

	// bias_add on a rank-1 [Any] value consumes the merged batch as one
	// vector — like softmax, it needs the rank >= 2 guard.
	xb := ir.NewVar("x", ir.TT(tensor.Float32, ir.DimAny))
	bb := ir.NewBuilder()
	fnB := ir.NewFunc([]*ir.Var{xb},
		bb.Finish(bb.Op("bias_add", xb, ir.Const(tensor.New(tensor.Float32, 4)))), nil)
	if RowSeparable(fnB) {
		t.Error("bias_add over rank-1 [Any] must NOT be row-separable")
	}

	// Negative concat axes normalize like the kernels: -2 on rank-2 IS the
	// leading axis.
	if RowSeparable(newFn(func(b *ir.Builder, x *ir.Var) ir.Expr {
		return b.OpAttrs("concat", ir.Attrs{"axis": -2}, x, b.Op("tanh", x))
	})) {
		t.Error("concat on axis -2 (== 0 after normalization) must NOT be row-separable")
	}
	if !RowSeparable(newFn(func(b *ir.Builder, x *ir.Var) ir.Expr {
		return b.OpAttrs("concat", ir.Attrs{"axis": -1}, x, b.Op("tanh", x))
	})) {
		t.Error("concat on axis -1 (trailing) should be row-separable")
	}

	// A static leading dimension has no request rows to split.
	xs := ir.NewVar("x", ir.TT(tensor.Float32, 2, 4))
	bs := ir.NewBuilder()
	fn := ir.NewFunc([]*ir.Var{xs}, bs.Finish(bs.Op("tanh", xs)), nil)
	if RowSeparable(fn) {
		t.Error("static-batch function must NOT be batchable")
	}
}
