// Package platform is the cost-model simulator that produces the ARM-CPU
// and Nvidia-GPU columns of the evaluation tables. The reproduction has no
// such hardware (repro band 2: CUDA/ARM interop is gated), so those columns
// are simulated per DESIGN.md §2: the *measured* host-CPU column exercises
// every real code path, and the simulator re-costs the same workload with
// per-platform parameters — sustained FLOP rate, memory bandwidth, kernel
// launch latency, per-instruction dispatch cost — plus per-system traits
// (framework per-op overhead, vendor-library kernel efficiency on that
// platform). All parameters are explicit in this file; EXPERIMENTS.md
// reports simulated columns as simulated.
package platform

import (
	"fmt"
	"time"
)

// Platform models one hardware target.
type Platform struct {
	Name string
	// FlopsPerSec is the sustained rate a well-tuned kernel achieves.
	FlopsPerSec float64
	// MemBW is sustained memory bandwidth in bytes/sec.
	MemBW float64
	// KernelLaunch is charged per kernel invocation (device launch or
	// function-call cost).
	KernelLaunch time.Duration
	// DispatchCost is charged per non-kernel instruction / scheduled node.
	DispatchCost time.Duration
	// OverlapHost reports whether host-side instruction time overlaps with
	// device kernel execution — true for the GPU, where "most of bytecode
	// latency is overlapped with the GPU execution" (§6.3, Table 4).
	OverlapHost bool
}

// The evaluation platforms (c5.9xlarge Skylake, g4dn T4, a1.4xlarge A72).
// Rates are effective kernel-level throughputs, not peak datasheet numbers.
var (
	IntelCPU = Platform{
		Name: "Intel CPU", FlopsPerSec: 250e9, MemBW: 60e9,
		KernelLaunch: 150 * time.Nanosecond, DispatchCost: 25 * time.Nanosecond,
	}
	NvidiaGPU = Platform{
		Name: "Nvidia GPU", FlopsPerSec: 2500e9, MemBW: 250e9,
		KernelLaunch: 6 * time.Microsecond, DispatchCost: 25 * time.Nanosecond,
		OverlapHost: true,
	}
	ARMCPU = Platform{
		Name: "ARM CPU", FlopsPerSec: 25e9, MemBW: 15e9,
		KernelLaunch: 200 * time.Nanosecond, DispatchCost: 40 * time.Nanosecond,
	}
)

// SystemTraits models how a software system uses a platform.
type SystemTraits struct {
	Name string
	// PerOpOverhead is framework bookkeeping per operator call (tape node,
	// Python dispatch, scheduler token). Nimble's is its instruction
	// dispatch, already counted via DispatchCost.
	PerOpOverhead time.Duration
	// KernelEfficiency scales the platform's FLOP rate: vendor libraries
	// reach ~1.0 on first-tier platforms but far less on ARM, the paper's
	// explanation for the 9-20x gaps ("frameworks generally perform poorly
	// on devices ... not in the first tier of device support").
	KernelEfficiency map[string]float64
	// FusionFactor scales the number of kernel launches relative to the
	// fused Nimble program (unfused frameworks launch ~3-4x more kernels).
	FusionFactor float64
	// GraphBuildPerRun is charged once per inference (eager tape rebuild,
	// Fold graph reconstruction).
	GraphBuildPerRun time.Duration
}

// Traits for the evaluated systems. Efficiencies encode vendor-library
// availability per platform; overheads are in the range measured from the
// real host executors in internal/baselines.
var (
	Nimble = SystemTraits{
		Name: "Nimble", PerOpOverhead: 0,
		KernelEfficiency: map[string]float64{"Intel CPU": 1.0, "Nvidia GPU": 1.0, "ARM CPU": 1.0},
		FusionFactor:     1.0,
	}
	PyTorch = SystemTraits{
		Name: "PyTorch", PerOpOverhead: 2 * time.Microsecond,
		KernelEfficiency: map[string]float64{"Intel CPU": 0.85, "Nvidia GPU": 0.9, "ARM CPU": 0.10},
		FusionFactor:     3.5,
	}
	MXNet = SystemTraits{
		Name: "MXNet", PerOpOverhead: 5 * time.Microsecond,
		KernelEfficiency: map[string]float64{"Intel CPU": 0.5, "Nvidia GPU": 0.8, "ARM CPU": 0.05},
		FusionFactor:     3.5,
	}
	TensorFlow = SystemTraits{
		Name: "TensorFlow", PerOpOverhead: 8 * time.Microsecond,
		KernelEfficiency: map[string]float64{"Intel CPU": 0.45, "Nvidia GPU": 0.45, "ARM CPU": 0.35},
		FusionFactor:     4.0,
	}
	TFFold = SystemTraits{
		Name: "TF Fold", PerOpOverhead: 8 * time.Microsecond,
		KernelEfficiency: map[string]float64{"Intel CPU": 0.6, "Nvidia GPU": 0.5, "ARM CPU": 0.3},
		FusionFactor:     2.0,                    // batching amortizes kernels...
		GraphBuildPerRun: 800 * time.Microsecond, // ...but the graph is rebuilt per input
	}
)

// Workload describes one inference's work in platform-neutral units.
type Workload struct {
	// Kernels is the number of fused-kernel invocations Nimble issues.
	Kernels int64
	// Flops is total floating-point work.
	Flops int64
	// Bytes is total kernel memory traffic.
	Bytes int64
	// OtherInstrs counts non-kernel VM instructions / scheduler tokens.
	OtherInstrs int64
	// CopyBytes counts cross-device transfer bytes.
	CopyBytes int64
}

// Latency simulates one inference of system `sys` running workload `w` on
// platform `p` using a roofline kernel model plus launch, dispatch, per-op,
// and graph-build overheads.
func Latency(p Platform, sys SystemTraits, w Workload) time.Duration {
	eff := sys.KernelEfficiency[p.Name]
	if eff <= 0 {
		eff = 0.05
	}
	compute := float64(w.Flops) / (p.FlopsPerSec * eff)
	memory := float64(w.Bytes) / p.MemBW
	kernel := compute
	if memory > kernel {
		kernel = memory
	}
	launches := float64(w.Kernels) * sys.FusionFactor
	launchTime := launches * p.KernelLaunch.Seconds()
	opOverhead := launches * sys.PerOpOverhead.Seconds()
	hostTime := float64(w.OtherInstrs)*p.DispatchCost.Seconds() + opOverhead + sys.GraphBuildPerRun.Seconds()
	copyTime := float64(w.CopyBytes) / p.MemBW

	var total float64
	if p.OverlapHost {
		// Host-side work overlaps device kernels; only the longer matters,
		// plus launches which serialize on the stream.
		device := kernel + launchTime + copyTime
		if hostTime > device {
			total = hostTime
		} else {
			total = device
		}
	} else {
		total = kernel + launchTime + hostTime + copyTime
	}
	return time.Duration(total * float64(time.Second))
}

// PerToken converts a whole-inference latency to the paper's µs/token unit.
func PerToken(lat time.Duration, tokens int) float64 {
	if tokens == 0 {
		return 0
	}
	return float64(lat.Microseconds()) / float64(tokens)
}

// String summarizes a platform for reports.
func (p Platform) String() string {
	return fmt.Sprintf("%s (%.0f GFLOP/s, %.0f GB/s, launch %v)",
		p.Name, p.FlopsPerSec/1e9, p.MemBW/1e9, p.KernelLaunch)
}
