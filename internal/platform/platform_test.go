package platform

import (
	"strings"
	"testing"
	"time"
)

var workload = Workload{Kernels: 100, Flops: 1e9, Bytes: 5e8, OtherInstrs: 500}

func TestLatencyOrderingAcrossPlatforms(t *testing.T) {
	// For a fixed system, the GPU is fastest and the ARM CPU slowest on a
	// compute-heavy workload.
	gpu := Latency(NvidiaGPU, Nimble, workload)
	intel := Latency(IntelCPU, Nimble, workload)
	arm := Latency(ARMCPU, Nimble, workload)
	if !(gpu < intel && intel < arm) {
		t.Errorf("platform ordering broken: gpu=%v intel=%v arm=%v", gpu, intel, arm)
	}
}

func TestFrameworkGapWidensOnARM(t *testing.T) {
	// The paper's key cross-platform observation: framework slowdowns are
	// far larger on ARM (no first-tier vendor libraries) than on Intel.
	gapIntel := float64(Latency(IntelCPU, PyTorch, workload)) / float64(Latency(IntelCPU, Nimble, workload))
	gapARM := float64(Latency(ARMCPU, PyTorch, workload)) / float64(Latency(ARMCPU, Nimble, workload))
	if gapARM <= gapIntel {
		t.Errorf("ARM gap (%.1fx) not wider than Intel gap (%.1fx)", gapARM, gapIntel)
	}
	if gapARM < 5 {
		t.Errorf("ARM gap %.1fx below the paper's 5-20x band", gapARM)
	}
}

func TestGPUOverlapHidesHostTime(t *testing.T) {
	// On the GPU, host instruction time overlaps kernels (Table 4's
	// "negligible others"): adding host instructions must not add latency
	// while kernels dominate.
	small := workload
	big := workload
	big.OtherInstrs *= 10
	if Latency(NvidiaGPU, Nimble, big) != Latency(NvidiaGPU, Nimble, small) {
		t.Error("host time not overlapped on GPU")
	}
	// On the CPU it adds.
	if Latency(IntelCPU, Nimble, big) <= Latency(IntelCPU, Nimble, small) {
		t.Error("host time should add on CPU")
	}
}

func TestGraphBuildCharge(t *testing.T) {
	// TF Fold pays a per-inference graph build.
	withBuild := Latency(IntelCPU, TFFold, workload)
	noBuild := TFFold
	noBuild.GraphBuildPerRun = 0
	without := Latency(IntelCPU, noBuild, workload)
	if withBuild-without < 700*time.Microsecond {
		t.Errorf("graph build charge missing: %v vs %v", withBuild, without)
	}
}

func TestMemoryBoundWorkload(t *testing.T) {
	// A byte-heavy workload is bandwidth-limited: raising flops below the
	// roofline knee must not change latency.
	memBound := Workload{Kernels: 1, Flops: 1, Bytes: 6e9}
	a := Latency(IntelCPU, Nimble, memBound)
	memBound.Flops = 1e6
	if Latency(IntelCPU, Nimble, memBound) != a {
		t.Error("memory-bound latency changed with negligible flops")
	}
}

func TestPerTokenAndString(t *testing.T) {
	if PerToken(2*time.Millisecond, 100) != 20 {
		t.Error("PerToken wrong")
	}
	if PerToken(time.Second, 0) != 0 {
		t.Error("PerToken zero tokens")
	}
	if !strings.Contains(IntelCPU.String(), "GFLOP") {
		t.Error("String missing units")
	}
	unknownEff := SystemTraits{Name: "x", KernelEfficiency: map[string]float64{}, FusionFactor: 1}
	if Latency(IntelCPU, unknownEff, workload) <= 0 {
		t.Error("missing efficiency should fall back, not zero out")
	}
}
