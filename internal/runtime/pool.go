// Package runtime provides the persistent execution substrate shared by the
// kernel library: a process-wide worker pool executing chunked parallel-for
// loops. The paper's runtime keeps "third-party library" kernels (MKL-style
// parallel GEMM, §4.5) resident between invocations; spawning goroutines per
// kernel call would instead pay scheduler and stack-setup cost on every
// dispatch, which is exactly the per-invocation overhead Nimble's ahead-of-
// time design eliminates. Workers are started once (GOMAXPROCS of them) and
// live for the life of the process.
package runtime

import (
	"fmt"
	stdruntime "runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ChunkPanic is a panic captured on a pool worker goroutine and re-raised
// on the goroutine that called ParallelFor. Without this transfer a kernel
// panic on a shared worker would crash the whole process with no recover in
// sight; with it, the panic surfaces where the request-level isolation
// (internal/serve's session recovery) can catch it. Value is the original
// panic payload; Stack is the worker's stack at capture time.
type ChunkPanic struct {
	Value any
	Stack []byte
}

func (c *ChunkPanic) String() string {
	return fmt.Sprintf("parallel-for chunk panicked: %v", c.Value)
}

// Pool is a fixed set of persistent worker goroutines serving parallel-for
// shards. The zero value is not usable; construct with NewPool or use the
// process-wide Default pool.
type Pool struct {
	workers int
	tasks   chan func()
}

// NewPool starts a pool with the given number of workers (<= 0 selects
// GOMAXPROCS). The workers are goroutines blocked on an idle channel; an
// idle pool costs no CPU.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = stdruntime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, tasks: make(chan func(), workers*4)}
	// The calling goroutine always participates in ParallelFor, so
	// workers-1 helpers saturate the pool's advertised width.
	for i := 0; i < workers-1; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for fn := range p.tasks {
		fn()
	}
}

// Workers returns the pool's parallelism.
func (p *Pool) Workers() int { return p.workers }

// ParallelFor runs body over [0, n) split into chunks of at most `grain`
// iterations, load-balanced across the pool by an atomic cursor. The caller
// participates, so progress never depends on worker availability: if the
// submission queue is full the caller simply processes every chunk itself.
// body must be safe to call concurrently on disjoint ranges.
func (p *Pool) ParallelFor(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	shards := p.workers
	if shards > chunks {
		shards = chunks
	}
	if shards <= 1 {
		body(0, n)
		return
	}
	var cursor atomic.Int64
	// A panicking body must not take down a shared worker goroutine (the
	// process would die with it): the first panic is captured here, the
	// cursor is exhausted so remaining shards stop early, and the panic is
	// re-raised on the calling goroutine after every shard has stopped.
	var panicked atomic.Pointer[ChunkPanic]
	run := func() {
		defer func() {
			if r := recover(); r != nil {
				if cp, ok := r.(*ChunkPanic); ok {
					// Nested ParallelFor: pass the original capture through.
					panicked.CompareAndSwap(nil, cp)
				} else {
					panicked.CompareAndSwap(nil, &ChunkPanic{Value: r, Stack: debug.Stack()})
				}
				cursor.Store(int64(chunks))
			}
		}()
		for {
			c := int(cursor.Add(1)) - 1
			if c >= chunks {
				return
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}
	}
	var wg sync.WaitGroup
	helper := func() {
		defer wg.Done()
		run()
	}
	for i := 0; i < shards-1; i++ {
		wg.Add(1)
		select {
		case p.tasks <- helper:
		default:
			// Queue full (pool saturated by other callers): skip the helper
			// rather than block — the caller's run loop covers the chunks.
			wg.Done()
		}
	}
	run()
	wg.Wait()
	if cp := panicked.Load(); cp != nil {
		panic(cp)
	}
}

var (
	defaultPool *Pool
	defaultOnce sync.Once
)

// Default returns the process-wide pool, started on first use with
// GOMAXPROCS workers.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = NewPool(0) })
	return defaultPool
}
