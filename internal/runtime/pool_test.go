package runtime

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestParallelForCoversRangeExactlyOnce(t *testing.T) {
	p := NewPool(4)
	for _, n := range []int{0, 1, 7, 64, 1000, 4097} {
		hits := make([]int32, n)
		p.ParallelFor(n, 13, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestParallelForSerialFallback(t *testing.T) {
	p := NewPool(1)
	calls := 0
	p.ParallelFor(100, 10, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Errorf("single-worker pool should run one chunk, got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("expected exactly one inline call, got %d", calls)
	}
}

// Concurrent ParallelFor callers must all complete even when they exceed the
// pool's submission queue: the caller-participates design guarantees
// progress without worker availability.
func TestParallelForConcurrentCallers(t *testing.T) {
	p := NewPool(2)
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.ParallelFor(1000, 7, func(lo, hi int) {
				total.Add(int64(hi - lo))
			})
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 16*1000 {
		t.Errorf("iterations = %d, want %d", got, 16*1000)
	}
}

func TestDefaultPoolSingleton(t *testing.T) {
	if Default() != Default() {
		t.Error("Default() must return the same pool")
	}
	if Default().Workers() < 1 {
		t.Error("default pool must have at least one worker")
	}
}

// A panic inside a ParallelFor body must re-surface on the calling
// goroutine as a *ChunkPanic — never kill a shared worker (which would
// crash the process) — and must leave the pool serviceable.
func TestParallelForPanicTransfersToCaller(t *testing.T) {
	p := NewPool(4)
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		p.ParallelFor(1000, 1, func(lo, hi int) {
			if lo >= 500 {
				panic("kernel died")
			}
		})
	}()
	cp, ok := recovered.(*ChunkPanic)
	if !ok {
		t.Fatalf("recovered %T (%v), want *ChunkPanic", recovered, recovered)
	}
	if cp.Value != "kernel died" {
		t.Errorf("ChunkPanic.Value = %v, want the original payload", cp.Value)
	}
	if len(cp.Stack) == 0 {
		t.Error("ChunkPanic.Stack is empty; the worker stack was not captured")
	}
	// Workers survived: the pool still runs full sweeps.
	var total atomic.Int64
	for i := 0; i < 4; i++ {
		p.ParallelFor(1000, 7, func(lo, hi int) { total.Add(int64(hi - lo)) })
	}
	if got := total.Load(); got != 4*1000 {
		t.Errorf("post-panic iterations = %d, want %d (a worker died?)", got, 4*1000)
	}
}

// A panic on the single-shard fast path (no workers involved) propagates
// directly — the capture machinery must not swallow it.
func TestParallelForPanicSingleShard(t *testing.T) {
	p := NewPool(1)
	defer func() {
		if recover() == nil {
			t.Error("single-shard panic did not propagate")
		}
	}()
	p.ParallelFor(10, 100, func(lo, hi int) { panic("boom") })
}
