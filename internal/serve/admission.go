package serve

import (
	"context"
	"errors"
	"sync"
	"time"
)

// GateConfig parameterizes one entry's admission controller.
type GateConfig struct {
	// Entry names the entry function the gate fronts (for error messages
	// and stats).
	Entry string
	// Workers is the session-pool size the entry shares; the expected-wait
	// estimate divides the backlog across it.
	Workers int
	// MaxQueue bounds how many admitted requests may be waiting (admitted
	// minus running) before arrivals are shed with ErrOverloaded
	// (default 4×Workers). Negative disables the bound.
	MaxQueue int
	// BreakerThreshold is how many consecutive internal failures
	// (ErrInternal — panics, not cancellations or bad input) open the
	// entry's circuit breaker (default 8). Negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds before allowing
	// traffic again (default 1s). The first post-cooldown failure re-opens
	// it immediately (half-open semantics); a success closes it fully.
	BreakerCooldown time.Duration
}

func (c GateConfig) withDefaults() GateConfig {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.Workers
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 8
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	return c
}

// Gate is one entry's admission controller: a bounded logical queue with
// deadline-aware load shedding and a consecutive-failure circuit breaker.
// It does not queue requests itself — the session pool does — it decides,
// at arrival, whether a request should be allowed to queue at all:
//
//   - breaker open (too many consecutive internal faults): shed;
//   - logical queue (admitted − running capacity) at MaxQueue: shed;
//   - the request carries a deadline the backlog makes unmeetable
//     (expected wait, from an EWMA of observed service times, exceeds the
//     time remaining): shed on arrival instead of timing out after
//     occupying a queue slot.
//
// Shed requests fail fast with an *OverloadError carrying a Retry-After
// estimate, so clients back off instead of piling on. All methods are safe
// for concurrent use.
type Gate struct {
	cfg GateConfig

	mu       sync.Mutex
	admitted int           // requests admitted and not yet released
	ewma     time.Duration // service-time EWMA (0 until the first sample)

	consecFails int
	openUntil   time.Time // breaker open while now < openUntil
	halfOpen    bool      // cooldown expired; next outcome decides
	probing     bool      // half-open probe in flight; arrivals shed until it resolves

	// shed counters by cause, plus totals.
	admittedTotal int64
	shedQueue     int64
	shedDeadline  int64
	shedBreaker   int64
	breakerTrips  int64

	// lat distributes completed-request service times (cancellations
	// excluded, like the EWMA) for the P50/P99 stats.
	lat histogram
}

// NewGate builds a gate over the config.
func NewGate(cfg GateConfig) *Gate {
	return &Gate{cfg: cfg.withDefaults()}
}

// expectedWaitLocked estimates how long a request arriving now waits before
// a session frees up: the backlog ahead of it, divided across the workers,
// times the observed per-request service time. Zero until the first
// completed request seeds the EWMA.
func (g *Gate) expectedWaitLocked() time.Duration {
	if g.ewma <= 0 {
		return 0
	}
	backlog := g.admitted - g.cfg.Workers
	if backlog < 0 {
		backlog = 0
	}
	// +1: the arriving request itself still needs a full service slot
	// before its deadline — a request whose deadline cannot even cover its
	// own expected service time is unmeetable at any queue depth.
	waves := (backlog + g.cfg.Workers) / g.cfg.Workers
	return time.Duration(waves) * g.ewma
}

// Admit decides whether the request may enter the system. On admission it
// returns a release func the caller MUST invoke exactly once with the
// request's service duration and outcome; on shedding it returns a typed
// *OverloadError. Cancellation errors passed to release do not count
// against the breaker; ErrInternal failures do.
func (g *Gate) Admit(ctx context.Context) (release func(d time.Duration, err error), admitErr error) {
	now := time.Now()
	g.mu.Lock()
	defer g.mu.Unlock()

	if g.cfg.BreakerThreshold > 0 {
		if !g.openUntil.IsZero() {
			if now.Before(g.openUntil) {
				g.shedBreaker++
				return nil, &OverloadError{
					Entry:      g.cfg.Entry,
					Reason:     "circuit open after consecutive internal faults",
					RetryAfter: g.openUntil.Sub(now),
				}
			}
			// Cooldown over: half-open. Exactly one probe goes through; an
			// internal failure re-opens immediately, any other completion
			// closes the breaker.
			g.openUntil = time.Time{}
			g.halfOpen = true
		}
		if g.halfOpen && g.probing {
			// A probe is already in flight. Admitting more traffic before
			// its outcome is known would land a thundering herd on a
			// possibly-still-broken entry, so shed until it resolves.
			g.shedBreaker++
			retry := g.ewma
			if retry <= 0 {
				retry = 10 * time.Millisecond
			}
			return nil, &OverloadError{
				Entry:      g.cfg.Entry,
				Reason:     "half-open: probe in flight",
				RetryAfter: retry,
			}
		}
	}

	if g.cfg.MaxQueue > 0 {
		if queued := g.admitted - g.cfg.Workers; queued >= g.cfg.MaxQueue {
			g.shedQueue++
			retry := g.expectedWaitLocked()
			if retry <= 0 {
				retry = 10 * time.Millisecond
			}
			return nil, &OverloadError{
				Entry:      g.cfg.Entry,
				Reason:     "queue full",
				RetryAfter: retry,
			}
		}
	}

	if dl, ok := ctx.Deadline(); ok {
		if wait := g.expectedWaitLocked(); wait > 0 && wait > dl.Sub(now) {
			g.shedDeadline++
			return nil, &OverloadError{
				Entry:      g.cfg.Entry,
				Reason:     "deadline unmeetable at current load",
				RetryAfter: wait,
			}
		}
	}

	g.admitted++
	g.admittedTotal++
	probe := false
	if g.halfOpen && !g.probing {
		// This request is the half-open probe; its release clears the
		// probing latch so the gate either closes or re-opens.
		g.probing = true
		probe = true
	}
	return func(d time.Duration, err error) { g.release(d, err, probe) }, nil
}

// release records one completed request: backlog shrinks, the service-time
// EWMA absorbs the sample, and the breaker counts the outcome.
func (g *Gate) release(d time.Duration, err error, probe bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.admitted--
	if probe {
		g.probing = false
	}
	// Cancellations say nothing about service speed or health: a client
	// giving up early must neither shrink the EWMA nor trip the breaker.
	// halfOpen is left as-is so the next arrival becomes the new probe.
	if err != nil && errors.Is(err, ErrCanceled) {
		return
	}
	if d > 0 {
		g.lat.observe(d)
		if g.ewma == 0 {
			g.ewma = d
		} else {
			// 1/8 smoothing: stable under noise, still adapts within ~16
			// requests when the workload shifts.
			g.ewma += (d - g.ewma) / 8
		}
	}
	if g.cfg.BreakerThreshold <= 0 {
		return
	}
	if err != nil && errors.Is(err, ErrInternal) {
		g.consecFails++
		if g.consecFails >= g.cfg.BreakerThreshold || g.halfOpen {
			g.openUntil = time.Now().Add(g.cfg.BreakerCooldown)
			g.breakerTrips++
			g.consecFails = 0
		}
		g.halfOpen = false
		return
	}
	if err == nil {
		g.consecFails = 0
	}
	// Success — or a non-internal failure like bad input: either way the
	// entry executed and answered, which is what a half-open probe exists
	// to establish. Clear halfOpen on both, or a single later internal
	// fault would re-open the breaker instantly despite healthy traffic.
	g.halfOpen = false
}

// GateStats is a snapshot of one entry's admission counters.
type GateStats struct {
	Entry    string `json:"entry"`
	Admitted int64  `json:"admitted"`
	// Queued is the instantaneous logical backlog (admitted − running).
	Queued int `json:"queued"`
	// ExpectedWaitUS is the current arrival-time wait estimate.
	ExpectedWaitUS float64 `json:"expected_wait_us"`
	// ServiceEWMAUS is the smoothed observed service time.
	ServiceEWMAUS float64 `json:"service_ewma_us"`
	// P50US/P99US are service-time quantiles from a log₂-bucketed
	// histogram (so ~±41% bucket resolution, zero until the first sample).
	P50US     float64 `json:"p50_us"`
	P99US     float64 `json:"p99_us"`
	ShedQueue int64   `json:"shed_queue"`
	ShedDeadline  int64   `json:"shed_deadline"`
	ShedBreaker   int64   `json:"shed_breaker"`
	BreakerOpen   bool    `json:"breaker_open"`
	BreakerTrips  int64   `json:"breaker_trips"`
}

// Stats snapshots the gate.
func (g *Gate) Stats() GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	queued := g.admitted - g.cfg.Workers
	if queued < 0 {
		queued = 0
	}
	return GateStats{
		Entry:          g.cfg.Entry,
		Admitted:       g.admittedTotal,
		Queued:         queued,
		ExpectedWaitUS: float64(g.expectedWaitLocked().Microseconds()),
		ServiceEWMAUS:  float64(g.ewma.Microseconds()),
		P50US:          float64(g.lat.quantile(0.50).Microseconds()),
		P99US:          float64(g.lat.quantile(0.99).Microseconds()),
		ShedQueue:      g.shedQueue,
		ShedDeadline:   g.shedDeadline,
		ShedBreaker:    g.shedBreaker,
		BreakerOpen:    !g.openUntil.IsZero() && time.Now().Before(g.openUntil),
		BreakerTrips:   g.breakerTrips,
	}
}

// Healthy reports false while the breaker is open — the signal /healthz
// uses to flip to degraded.
func (g *Gate) Healthy() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.openUntil.IsZero() || !time.Now().Before(g.openUntil)
}
