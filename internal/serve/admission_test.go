package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func mustAdmit(t *testing.T, g *Gate) func(time.Duration, error) {
	t.Helper()
	rel, err := g.Admit(context.Background())
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	return rel
}

// TestGateQueueBound: once admitted − workers reaches MaxQueue, arrivals
// shed with ErrOverloaded and a positive Retry-After.
func TestGateQueueBound(t *testing.T) {
	g := NewGate(GateConfig{Entry: "main", Workers: 2, MaxQueue: 3})
	var rels []func(time.Duration, error)
	for i := 0; i < 5; i++ { // 2 running + 3 queued
		rels = append(rels, mustAdmit(t, g))
	}
	_, err := g.Admit(context.Background())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("6th admit error = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("error %T does not unwrap to *OverloadError", err)
	}
	if oe.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", oe.RetryAfter)
	}
	if oe.Entry != "main" {
		t.Errorf("Entry = %q, want main", oe.Entry)
	}
	// Releasing one makes room again.
	rels[0](time.Millisecond, nil)
	if rel, err := g.Admit(context.Background()); err != nil {
		t.Fatalf("admit after release: %v", err)
	} else {
		rel(time.Millisecond, nil)
	}
	st := g.Stats()
	if st.ShedQueue != 1 {
		t.Errorf("ShedQueue = %d, want 1", st.ShedQueue)
	}
	for _, r := range rels[1:] {
		r(time.Millisecond, nil)
	}
}

// TestGateQueueUnbounded: negative MaxQueue disables the bound.
func TestGateQueueUnbounded(t *testing.T) {
	g := NewGate(GateConfig{Entry: "main", Workers: 1, MaxQueue: -1})
	for i := 0; i < 100; i++ {
		mustAdmit(t, g)
	}
	if _, err := g.Admit(context.Background()); err != nil {
		t.Fatalf("unbounded gate shed: %v", err)
	}
}

// TestGateDeadlineShed: a request whose deadline the backlog cannot meet
// is shed on arrival instead of queuing to time out.
func TestGateDeadlineShed(t *testing.T) {
	g := NewGate(GateConfig{Entry: "main", Workers: 1, MaxQueue: 100})
	// Seed the EWMA: 20ms service time.
	rel := mustAdmit(t, g)
	rel(20*time.Millisecond, nil)
	// Fill one running slot + 3 queued → expected wait = 4 waves × 20ms = 80ms.
	var rels []func(time.Duration, error)
	for i := 0; i < 4; i++ {
		rels = append(rels, mustAdmit(t, g))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := g.Admit(ctx)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("doomed request error = %v, want ErrOverloaded", err)
	}
	if st := g.Stats(); st.ShedDeadline != 1 {
		t.Errorf("ShedDeadline = %d, want 1", st.ShedDeadline)
	}

	// A generous deadline still gets in.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if rel, err := g.Admit(ctx2); err != nil {
		t.Fatalf("meetable deadline shed: %v", err)
	} else {
		rel(time.Millisecond, nil)
	}
	for _, r := range rels {
		r(time.Millisecond, nil)
	}
}

// TestGateCancellationNeutral: ErrCanceled outcomes neither feed the EWMA
// nor count toward the breaker.
func TestGateCancellationNeutral(t *testing.T) {
	g := NewGate(GateConfig{Entry: "main", Workers: 1, BreakerThreshold: 2})
	for i := 0; i < 10; i++ {
		rel := mustAdmit(t, g)
		rel(time.Hour, ErrCanceled) // absurd duration must be ignored
	}
	st := g.Stats()
	if st.ServiceEWMAUS != 0 {
		t.Errorf("EWMA fed by canceled requests: %v µs", st.ServiceEWMAUS)
	}
	if !g.Healthy() {
		t.Error("cancellations tripped the breaker")
	}
}

// TestGateBreaker: consecutive internal faults open the breaker; it sheds
// during cooldown, half-opens after, re-opens instantly on a half-open
// failure, and closes on a half-open success.
func TestGateBreaker(t *testing.T) {
	g := NewGate(GateConfig{
		Entry: "main", Workers: 1,
		BreakerThreshold: 3, BreakerCooldown: 40 * time.Millisecond,
		MaxQueue: -1,
	})
	boom := &InternalError{Entry: "main", Panic: "boom"}

	// Two faults then a success: streak resets, breaker stays closed.
	for i := 0; i < 2; i++ {
		mustAdmit(t, g)(time.Millisecond, boom)
	}
	mustAdmit(t, g)(time.Millisecond, nil)
	if !g.Healthy() {
		t.Fatal("breaker opened below threshold")
	}

	// Three consecutive faults: open.
	for i := 0; i < 3; i++ {
		mustAdmit(t, g)(time.Millisecond, boom)
	}
	if g.Healthy() {
		t.Fatal("breaker not open after threshold consecutive faults")
	}
	_, err := g.Admit(context.Background())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("open-breaker admit error = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if errors.As(err, &oe) && oe.RetryAfter <= 0 {
		t.Errorf("open-breaker RetryAfter = %v, want > 0", oe.RetryAfter)
	}
	st := g.Stats()
	if st.BreakerTrips != 1 || st.ShedBreaker != 1 || !st.BreakerOpen {
		t.Errorf("stats after trip = %+v", st)
	}

	// Cooldown expires → half-open; one more fault re-opens immediately.
	time.Sleep(50 * time.Millisecond)
	mustAdmit(t, g)(time.Millisecond, boom)
	if g.Healthy() {
		t.Fatal("half-open fault did not re-open the breaker")
	}

	// Cooldown again → half-open; a success closes it for good.
	time.Sleep(50 * time.Millisecond)
	mustAdmit(t, g)(time.Millisecond, nil)
	if !g.Healthy() {
		t.Fatal("half-open success did not close the breaker")
	}
	// And a single subsequent fault does not trip it (streak restarted).
	mustAdmit(t, g)(time.Millisecond, boom)
	if !g.Healthy() {
		t.Fatal("closed breaker tripped on a single fault")
	}
}

// TestGateHalfOpenSingleProbe: when the cooldown expires, exactly one
// arrival may probe the entry; concurrent arrivals are shed with a
// Retry-After hint until the probe's outcome is known. Regression test for
// the half-open thundering herd: every post-cooldown arrival used to be
// admitted before the first outcome was observed.
func TestGateHalfOpenSingleProbe(t *testing.T) {
	g := NewGate(GateConfig{
		Entry: "main", Workers: 4,
		BreakerThreshold: 2, BreakerCooldown: 30 * time.Millisecond,
		MaxQueue: -1,
	})
	boom := &InternalError{Entry: "main", Panic: "boom"}
	for i := 0; i < 2; i++ {
		mustAdmit(t, g)(time.Millisecond, boom)
	}
	if g.Healthy() {
		t.Fatal("breaker not open after threshold faults")
	}
	time.Sleep(40 * time.Millisecond) // cooldown over → half-open

	const herd = 16
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		admitted []func(time.Duration, error)
		shed     int
	)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := g.Admit(context.Background())
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				admitted = append(admitted, rel)
				return
			}
			if !errors.Is(err, ErrOverloaded) {
				t.Errorf("herd admit error = %v, want ErrOverloaded", err)
			}
			var oe *OverloadError
			if !errors.As(err, &oe) {
				t.Errorf("herd error %T does not unwrap to *OverloadError", err)
			} else if oe.RetryAfter <= 0 {
				t.Errorf("herd RetryAfter = %v, want > 0", oe.RetryAfter)
			}
			shed++
		}()
	}
	wg.Wait()
	if len(admitted) != 1 {
		t.Fatalf("half-open admitted %d of %d concurrent arrivals, want exactly 1 probe", len(admitted), herd)
	}
	if shed != herd-1 {
		t.Fatalf("shed = %d, want %d", shed, herd-1)
	}

	// The probe succeeds: the breaker closes and traffic flows again.
	admitted[0](time.Millisecond, nil)
	if !g.Healthy() {
		t.Fatal("probe success did not close the breaker")
	}
	rel, err := g.Admit(context.Background())
	if err != nil {
		t.Fatalf("post-probe admit: %v", err)
	}
	rel(time.Millisecond, nil)
}

// TestGateHalfOpenOutcomes pins what each probe outcome does to the
// half-open state. Regression test: a probe failing with a non-internal,
// non-canceled error (e.g. bad input) used to leave halfOpen set, so one
// later internal fault re-opened the breaker instantly despite the entry
// having proven it serves.
func TestGateHalfOpenOutcomes(t *testing.T) {
	boom := &InternalError{Entry: "main", Panic: "boom"}
	cases := []struct {
		name     string
		probeErr error
		// openAfterProbe: the probe outcome itself re-opens the breaker.
		openAfterProbe bool
		// openAfterNextFault: one subsequent internal fault re-opens it
		// (only meaningful when openAfterProbe is false).
		openAfterNextFault bool
	}{
		// Success closes the breaker; a single fault is below threshold.
		{name: "success", probeErr: nil},
		// A bad-input completion proves the entry serves: the breaker
		// closes just like success, and one fault does not re-open it.
		{name: "bad_input", probeErr: ErrBadInput},
		// An internal fault on the probe re-opens immediately.
		{name: "internal", probeErr: boom, openAfterProbe: true},
		// A canceled probe says nothing: half-open persists, so the next
		// admitted request is the new probe and its fault re-opens.
		{name: "canceled", probeErr: ErrCanceled, openAfterNextFault: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := NewGate(GateConfig{
				Entry: "main", Workers: 1,
				BreakerThreshold: 3, BreakerCooldown: 30 * time.Millisecond,
				MaxQueue: -1,
			})
			for i := 0; i < 3; i++ {
				mustAdmit(t, g)(time.Millisecond, boom)
			}
			if g.Healthy() {
				t.Fatal("breaker not open after threshold faults")
			}
			time.Sleep(40 * time.Millisecond) // half-open

			mustAdmit(t, g)(time.Millisecond, tc.probeErr)
			if open := !g.Healthy(); open != tc.openAfterProbe {
				t.Fatalf("breaker open after %s probe = %v, want %v", tc.name, open, tc.openAfterProbe)
			}
			if tc.openAfterProbe {
				return
			}
			mustAdmit(t, g)(time.Millisecond, boom)
			if open := !g.Healthy(); open != tc.openAfterNextFault {
				t.Fatalf("breaker open after post-probe fault = %v, want %v", open, tc.openAfterNextFault)
			}
		})
	}
}

// TestGateBreakerDisabled: negative threshold never opens.
func TestGateBreakerDisabled(t *testing.T) {
	g := NewGate(GateConfig{Entry: "main", Workers: 1, BreakerThreshold: -1, MaxQueue: -1})
	boom := &InternalError{Entry: "main", Panic: "boom"}
	for i := 0; i < 50; i++ {
		mustAdmit(t, g)(time.Millisecond, boom)
	}
	if !g.Healthy() {
		t.Fatal("disabled breaker opened")
	}
}

// TestGateEWMA: the estimate tracks observed service times.
func TestGateEWMA(t *testing.T) {
	g := NewGate(GateConfig{Entry: "main", Workers: 1})
	mustAdmit(t, g)(8*time.Millisecond, nil)
	if got := g.Stats().ServiceEWMAUS; got != 8000 {
		t.Fatalf("first sample EWMA = %vµs, want 8000", got)
	}
	// 1/8 smoothing toward 16ms: 8 + (16-8)/8 = 9ms.
	mustAdmit(t, g)(16*time.Millisecond, nil)
	if got := g.Stats().ServiceEWMAUS; got != 9000 {
		t.Fatalf("smoothed EWMA = %vµs, want 9000", got)
	}
}
