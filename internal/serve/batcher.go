package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nimble/internal/kernels"
	"nimble/internal/tensor"
)

// BatchConfig parameterizes a Batcher.
type BatchConfig struct {
	// Entry is the executable function the batcher serves. It MUST be
	// row-independent along its leading dimension (an MLP/classifier head
	// over [batch, features], not a BERT sequence whose positions attend to
	// each other): the batcher concatenates requests along dim 0 and slices
	// the result back apart, which is only a semantics-preserving rewrite
	// when rows do not interact. passes.RowSeparable decides this from the
	// IR; the public nimble.Service wires it automatically.
	Entry string
	// MaxBatch bounds how many requests one dispatch may coalesce
	// (default 8).
	MaxBatch int
	// MaxDelay bounds how long the first request of a batch waits for
	// company (default 200µs). Zero keeps the default; batching trades this
	// much worst-case latency for kernel-level throughput.
	MaxDelay time.Duration
	// QueueCap bounds the request queue (default 4 * MaxBatch).
	QueueCap int
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 200 * time.Microsecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4 * c.MaxBatch
	}
	return c
}

type batchReq struct {
	in   *tensor.Tensor
	resp chan batchResp
	// canceled is set by the submitting goroutine when its context fires
	// while the request is still queued; the collector drops flagged
	// requests from the batch it is assembling, so one abandoned request
	// does not ride along in (or fail) everyone else's dispatch.
	canceled atomic.Bool
}

type batchResp struct {
	out *tensor.Tensor
	err error
}

// Batcher coalesces concurrent single-tensor requests to one batchable
// entry point into fewer, larger kernel dispatches: pad-free concatenation
// along the leading dimension when trailing dimensions and dtype agree,
// per-request fallback for ragged shapes — the paper's dynamic workloads
// never pay padding waste. One collector goroutine groups requests; each
// group is dispatched on its own goroutine so the pool, not the collector,
// is the concurrency limit.
type Batcher struct {
	pool  *Pool
	cfg   BatchConfig
	queue chan *batchReq
	done  chan struct{}
	wg    sync.WaitGroup

	// closeMu serializes Invoke's enqueue against Close: once closed is
	// set no new request can enter the queue, so the collector's final
	// drain provably answers every accepted request.
	closeMu sync.RWMutex
	closed  bool

	mu sync.Mutex
	// stats, guarded by mu.
	batches   int64 // dispatches that merged >= 2 requests
	singles   int64 // dispatches of exactly one request
	coalesced int64 // requests served by merged dispatches
	fallbacks int64 // requests re-dispatched per-request after a batched failure
	canceled  int64 // requests withdrawn from a pending batch by cancellation
	overflows int64 // requests spilled to per-request dispatch by a full queue
	largest   int   // largest merged batch
}

// NewBatcher starts a batcher over the pool. Close releases its collector.
func NewBatcher(pool *Pool, cfg BatchConfig) *Batcher {
	cfg = cfg.withDefaults()
	b := &Batcher{
		pool:  pool,
		cfg:   cfg,
		queue: make(chan *batchReq, cfg.QueueCap),
		done:  make(chan struct{}),
	}
	b.wg.Add(1)
	go b.collect()
	return b
}

// Invoke submits one request and blocks for its result or the context. The
// input must be a tensor of rank >= 1 whose leading dimension is the
// request's row count. When ctx fires while the request is still queued,
// the request is withdrawn from its pending batch (the rest of the batch
// dispatches normally) and the error wraps ErrCanceled and ctx.Err(); when
// it fires mid-dispatch the computation completes on the pool but the
// caller returns immediately with the same error.
func (b *Batcher) Invoke(ctx context.Context, in *tensor.Tensor) (*tensor.Tensor, error) {
	if in == nil || in.Rank() == 0 {
		return nil, fmt.Errorf("serve: batchable entry %q requires a rank>=1 tensor input", b.cfg.Entry)
	}
	if err := ctx.Err(); err != nil {
		return nil, Canceled(err)
	}
	r := &batchReq{in: in, resp: make(chan batchResp, 1)}
	b.closeMu.RLock()
	if b.closed {
		b.closeMu.RUnlock()
		return nil, fmt.Errorf("serve: batcher: %w", ErrClosed)
	}
	select {
	case b.queue <- r:
		b.closeMu.RUnlock()
	default:
		// Queue full: overflow straight to the pool instead of blocking —
		// a blocking send here would hold closeMu against Close (wedging
		// graceful shutdown) and ignore the caller's context. Under
		// saturation per-request dispatch is the natural spillover; the
		// pool checkout below still honors ctx.
		b.closeMu.RUnlock()
		b.mu.Lock()
		b.overflows++
		b.mu.Unlock()
		return b.pool.InvokeTensors(ctx, b.cfg.Entry, in)
	}
	select {
	case resp := <-r.resp:
		return resp.out, resp.err
	case <-ctx.Done():
		// The response channel is buffered, so a dispatch racing this
		// cancellation parks its answer there and nothing leaks.
		r.canceled.Store(true)
		return nil, Canceled(ctx.Err())
	}
}

// Close stops the collector; requests already accepted are still
// dispatched and answered. Idempotent.
func (b *Batcher) Close() {
	b.closeMu.Lock()
	if b.closed {
		b.closeMu.Unlock()
		return
	}
	b.closed = true
	close(b.done)
	b.closeMu.Unlock()
	b.wg.Wait()
}

// collect is the scheduler loop: take one request, wait at most MaxDelay
// for up to MaxBatch-1 more, then dispatch compatible groups. Requests
// whose submitter canceled while queued are dropped here — removing them
// from the pending batch — and counted.
func (b *Batcher) collect() {
	defer b.wg.Done()
	for {
		var first *batchReq
		select {
		case first = <-b.queue:
		case <-b.done:
			b.drain()
			return
		}
		batch := []*batchReq{first}
		timer := time.NewTimer(b.cfg.MaxDelay)
	gather:
		for len(batch) < b.cfg.MaxBatch {
			select {
			case r := <-b.queue:
				batch = append(batch, r)
			case <-timer.C:
				break gather
			case <-b.done:
				break gather
			}
		}
		timer.Stop()
		batch = b.dropCanceled(batch)
		for _, group := range groupCompatible(batch) {
			g := group
			b.wg.Add(1)
			go b.dispatch(g)
		}
		select {
		case <-b.done:
			b.drain()
			return
		default:
		}
	}
}

// dropCanceled filters requests whose submitters gave up while queued.
func (b *Batcher) dropCanceled(batch []*batchReq) []*batchReq {
	live := batch[:0]
	dropped := 0
	for _, r := range batch {
		if r.canceled.Load() {
			dropped++
			continue
		}
		live = append(live, r)
	}
	if dropped > 0 {
		b.mu.Lock()
		b.canceled += int64(dropped)
		b.mu.Unlock()
	}
	return live
}

// drain serves whatever is still queued at Close time, per-request.
func (b *Batcher) drain() {
	for {
		select {
		case r := <-b.queue:
			if r.canceled.Load() {
				continue
			}
			b.wg.Add(1)
			go b.dispatch([]*batchReq{r})
		default:
			return
		}
	}
}

// batchKey identifies concat-compatibility: same dtype, same rank, same
// trailing extents. Shapes that differ only in the leading dimension share
// a key and concatenate with zero padding.
func batchKey(t *tensor.Tensor) string {
	return fmt.Sprintf("%d|%v", t.DType(), t.Shape()[1:])
}

// groupCompatible partitions a batch into pad-free concatenation groups,
// preserving arrival order within each group.
func groupCompatible(batch []*batchReq) [][]*batchReq {
	if len(batch) == 0 {
		return nil
	}
	if len(batch) == 1 {
		return [][]*batchReq{batch}
	}
	var order []string
	groups := map[string][]*batchReq{}
	for _, r := range batch {
		k := batchKey(r.in)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], r)
	}
	out := make([][]*batchReq, 0, len(order))
	for _, k := range order {
		out = append(out, groups[k])
	}
	return out
}

// dispatch runs one compatible group: a merged invocation when the group
// has company, with a per-request fallback if the merged run fails or the
// entry turns out not to be row-separable for these inputs. It runs on its
// own goroutine (tracked by b.wg so Close waits for accepted requests);
// kernel panics — shape violations surface as panics, not errors — are
// converted into per-request error responses instead of killing the
// process.
func (b *Batcher) dispatch(group []*batchReq) {
	defer b.wg.Done()
	defer func() {
		if rec := recover(); rec != nil {
			err := fmt.Errorf("serve: entry %q panicked: %v", b.cfg.Entry, rec)
			for _, r := range group {
				select {
				case r.resp <- batchResp{err: err}:
				default: // already answered before the panic
				}
			}
		}
	}()
	// The merged dispatch runs under the background context: individual
	// submitters' deadlines detach at their own resp/ctx select, and one
	// request's cancellation must not fail its batch-mates.
	ctx := context.Background()
	if len(group) == 1 {
		if group[0].canceled.Load() {
			return // withdrawn after grouping; nobody reads the answer
		}
		out, err := b.pool.InvokeTensors(ctx, b.cfg.Entry, group[0].in)
		b.mu.Lock()
		b.singles++
		b.mu.Unlock()
		group[0].resp <- batchResp{out: out, err: err}
		return
	}
	ins := make([]*tensor.Tensor, len(group))
	rows := 0
	for i, r := range group {
		ins[i] = r.in
		rows += r.in.Shape()[0]
	}
	merged := kernels.Concat(ins, 0)
	out, err := b.pool.InvokeTensors(ctx, b.cfg.Entry, merged)
	if err == nil && (out.Rank() == 0 || out.Shape()[0] != rows) {
		// The entry did not map rows to rows — it is not batchable for
		// these inputs. Re-dispatching per request preserves semantics.
		err = fmt.Errorf("serve: entry %q returned %v for %d batched rows; not row-separable",
			b.cfg.Entry, out.Shape(), rows)
	}
	if err != nil {
		b.mu.Lock()
		b.fallbacks += int64(len(group))
		b.mu.Unlock()
		for _, r := range group {
			if r.canceled.Load() {
				continue // withdrawn mid-dispatch: don't pay a re-run nobody reads
			}
			o, e := b.pool.InvokeTensors(ctx, b.cfg.Entry, r.in)
			r.resp <- batchResp{out: o, err: e}
		}
		return
	}
	b.mu.Lock()
	b.batches++
	b.coalesced += int64(len(group))
	if len(group) > b.largest {
		b.largest = len(group)
	}
	b.mu.Unlock()
	lo := 0
	for _, r := range group {
		hi := lo + r.in.Shape()[0]
		r.resp <- batchResp{out: kernels.Slice(out, 0, lo, hi)}
		lo = hi
	}
}

// BatchStats is a snapshot of batcher counters.
type BatchStats struct {
	Entry        string `json:"entry"`
	MaxBatch     int    `json:"max_batch"`
	Batches      int64  `json:"batches"`
	Singles      int64  `json:"singles"`
	Coalesced    int64  `json:"coalesced_requests"`
	Fallbacks    int64  `json:"fallback_requests"`
	Canceled     int64  `json:"canceled_requests"`
	Overflows    int64  `json:"overflow_requests"`
	LargestBatch int    `json:"largest_batch"`
}

// Stats snapshots the batcher counters.
func (b *Batcher) Stats() BatchStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BatchStats{
		Entry:        b.cfg.Entry,
		MaxBatch:     b.cfg.MaxBatch,
		Batches:      b.batches,
		Singles:      b.singles,
		Coalesced:    b.coalesced,
		Fallbacks:    b.fallbacks,
		Canceled:     b.canceled,
		Overflows:    b.overflows,
		LargestBatch: b.largest,
	}
}
