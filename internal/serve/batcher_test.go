package serve

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"nimble/internal/models"
	"nimble/internal/tensor"
)

func newBatcherUnderTest(t *testing.T, maxBatch int, delay time.Duration) (*models.MLP, *Pool, *Batcher) {
	t.Helper()
	m, res := compileMLP(t)
	p, err := NewPool(res.Exe, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(p, BatchConfig{Entry: "main", MaxBatch: maxBatch, MaxDelay: delay})
	t.Cleanup(b.Close)
	return m, p, b
}

func TestBatcherMatchesPerRequest(t *testing.T) {
	m, p, b := newBatcherUnderTest(t, 8, 2*time.Millisecond)
	rng := rand.New(rand.NewSource(11))
	const n = 32
	inputs := make([]*tensor.Tensor, n)
	want := make([]*tensor.Tensor, n)
	for i := range inputs {
		inputs[i] = m.RandomBatch(rng, 1+i%3)
		var err error
		want[i], err = p.InvokeTensors(context.Background(), "main", inputs[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := b.Invoke(context.Background(), inputs[i])
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			if !out.Shape().Equal(want[i].Shape()) {
				t.Errorf("request %d: shape %v, want %v", i, out.Shape(), want[i].Shape())
				return
			}
			if !out.AllClose(want[i], 1e-5, 1e-6) {
				t.Errorf("request %d: batched output differs from per-request output", i)
			}
		}(i)
	}
	wg.Wait()
	st := b.Stats()
	if st.Coalesced == 0 {
		t.Errorf("no requests were coalesced under concurrent load: %+v", st)
	}
	if st.Fallbacks != 0 {
		t.Errorf("row-separable entry fell back %d times", st.Fallbacks)
	}
	if st.LargestBatch > 8 {
		t.Errorf("batch of %d exceeds MaxBatch", st.LargestBatch)
	}
}

func TestBatcherRaggedInputsStayPadFree(t *testing.T) {
	// Requests whose trailing dims disagree must not be concatenated (that
	// would require padding); they form separate dispatch groups.
	reqs := []*batchReq{
		{in: tensor.New(tensor.Float32, 2, 16)},
		{in: tensor.New(tensor.Float32, 1, 16)},
		{in: tensor.New(tensor.Float32, 2, 8)},
		{in: tensor.New(tensor.Float32, 3, 16)},
		{in: tensor.New(tensor.Int64, 2, 16)},
	}
	groups := groupCompatible(reqs)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3 (f32x16, f32x8, i64x16)", len(groups))
	}
	if len(groups[0]) != 3 {
		t.Errorf("f32 [·,16] group has %d members, want 3", len(groups[0]))
	}
	// Arrival order is preserved within a group.
	if groups[0][0] != reqs[0] || groups[0][1] != reqs[1] || groups[0][2] != reqs[3] {
		t.Error("group does not preserve arrival order")
	}
}

func TestBatcherRejectsScalar(t *testing.T) {
	_, _, b := newBatcherUnderTest(t, 4, time.Millisecond)
	if _, err := b.Invoke(context.Background(), tensor.Scalar(1)); err == nil {
		t.Error("scalar input accepted by batcher")
	}
	if _, err := b.Invoke(context.Background(), nil); err == nil {
		t.Error("nil input accepted by batcher")
	}
}

func TestBatcherClose(t *testing.T) {
	m, _, b := newBatcherUnderTest(t, 4, time.Millisecond)
	in := m.RandomBatch(rand.New(rand.NewSource(2)), 1)
	if _, err := b.Invoke(context.Background(), in); err != nil {
		t.Fatal(err)
	}
	b.Close()
	if _, err := b.Invoke(context.Background(), in); err == nil {
		t.Error("Invoke on closed batcher succeeded")
	}
}

func TestBatcherConvertsKernelPanicToError(t *testing.T) {
	// A request with the wrong feature width passes the rank check but
	// blows up inside the dense kernel (shape violations surface as
	// panics). The batcher must answer with an error — on every request of
	// the group — rather than letting the panic kill the process.
	m, p, b := newBatcherUnderTest(t, 4, time.Millisecond)
	bad := tensor.New(tensor.Float32, 1, 7) // model expects 16 features
	if _, err := b.Invoke(context.Background(), bad); err == nil {
		t.Fatal("mis-shaped request did not error")
	}
	// The batcher and pool keep serving afterwards.
	good := m.RandomBatch(rand.New(rand.NewSource(4)), 2)
	if _, err := b.Invoke(context.Background(), good); err != nil {
		t.Fatalf("batcher wedged after panic: %v", err)
	}
	if st := p.Stats(); st.InFlight != 0 {
		t.Errorf("session leaked after panic: %+v", st)
	}
}

func TestBatcherFullQueueOverflowsToPool(t *testing.T) {
	// A full queue must not block Invoke (that would hold closeMu against
	// Close and ignore the caller's context): excess requests spill to
	// per-request dispatch over the pool, and Close stays prompt.
	m, res := compileMLP(t)
	p, err := NewPool(res.Exe, 2)
	if err != nil {
		t.Fatal(err)
	}
	// White-box: no collector goroutine, so a primed 1-slot queue STAYS
	// full and the overflow path is deterministic.
	b := &Batcher{
		pool:  p,
		cfg:   BatchConfig{Entry: "main"}.withDefaults(),
		queue: make(chan *batchReq, 1),
		done:  make(chan struct{}),
	}
	in := m.RandomBatch(rand.New(rand.NewSource(5)), 1)
	b.queue <- &batchReq{in: in, resp: make(chan batchResp, 1)} // fill the queue

	result := make(chan error, 1)
	go func() {
		out, err := b.Invoke(context.Background(), in)
		if err == nil && out == nil {
			err = errContext("nil output")
		}
		result <- err
	}()
	select {
	case err := <-result:
		if err != nil {
			t.Fatalf("overflow request failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Invoke blocked on a full queue instead of spilling to the pool")
	}
	if st := b.Stats(); st.Overflows != 1 {
		t.Errorf("Overflows = %d, want 1", st.Overflows)
	}
	if len(b.queue) != 1 {
		t.Errorf("overflow request should not have entered the queue (len %d)", len(b.queue))
	}
}

func errContext(msg string) error { return fmt.Errorf("batcher overflow: %s", msg) }

func TestBatcherCloseAnswersAcceptedRequests(t *testing.T) {
	// Close must wait for accepted requests: a client blocked in Invoke
	// when Close lands still gets an answer, not a stranded channel read.
	m, _, b := newBatcherUnderTest(t, 8, 50*time.Millisecond)
	in := m.RandomBatch(rand.New(rand.NewSource(8)), 1)
	const n = 6
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := b.Invoke(context.Background(), in)
			errs <- err
		}()
	}
	time.Sleep(5 * time.Millisecond) // let requests enter the queue
	b.Close()
	answered := 0
	for i := 0; i < n; i++ {
		select {
		case err := <-errs:
			// A goroutine that lost the race to Close gets a clean
			// "closed" rejection; one that was accepted must succeed.
			if err == nil {
				answered++
			} else if !strings.Contains(err.Error(), "closed") {
				t.Errorf("accepted request got error after Close: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("request stranded by Close")
		}
	}
	if answered == 0 {
		t.Error("no queued request was answered across Close")
	}
}
