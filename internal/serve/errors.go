package serve

import (
	"context"
	"errors"
)

// ErrClosed reports an operation on a closed pool, batcher, session, or
// service. The public nimble package re-exports this sentinel, so
// errors.Is(err, ErrClosed) holds across every layer of the stack.
var ErrClosed = errors.New("nimble: closed")

// ErrCanceled reports an invocation abandoned because its context was
// canceled or timed out. Errors returned from cancelable paths wrap BOTH
// this sentinel and the underlying context error, so callers may test with
// errors.Is against ErrCanceled, context.Canceled, or
// context.DeadlineExceeded interchangeably.
var ErrCanceled = errors.New("nimble: canceled")

// canceledError wraps a context error so it matches ErrCanceled too.
type canceledError struct{ cause error }

func (e *canceledError) Error() string { return "nimble: canceled: " + e.cause.Error() }

// Is makes errors.Is(err, ErrCanceled) true; the cause (context.Canceled or
// context.DeadlineExceeded) is matched through Unwrap.
func (e *canceledError) Is(target error) bool { return target == ErrCanceled }

func (e *canceledError) Unwrap() error { return e.cause }

// Canceled wraps a context error (ctx.Err()) into the canceled form. A nil
// cause degrades to context.Canceled so double-faulted paths still produce
// a well-formed error.
func Canceled(cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return &canceledError{cause: cause}
}

// WrapCtxErr lifts a bare context error (what the VM dispatch loop returns
// when a deadline fires mid-run) into the ErrCanceled family; every other
// error — including ones already wrapped — passes through unchanged. The
// public nimble package shares this classification so both layers agree on
// what counts as a cancellation.
func WrapCtxErr(err error) error {
	if err == nil || errors.Is(err, ErrCanceled) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &canceledError{cause: err}
	}
	return err
}
