package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"nimble/internal/runtime"
)

// ErrClosed reports an operation on a closed pool, batcher, session, or
// service. The public nimble package re-exports this sentinel, so
// errors.Is(err, ErrClosed) holds across every layer of the stack.
var ErrClosed = errors.New("nimble: closed")

// ErrCanceled reports an invocation abandoned because its context was
// canceled or timed out. Errors returned from cancelable paths wrap BOTH
// this sentinel and the underlying context error, so callers may test with
// errors.Is against ErrCanceled, context.Canceled, or
// context.DeadlineExceeded interchangeably.
var ErrCanceled = errors.New("nimble: canceled")

// canceledError wraps a context error so it matches ErrCanceled too.
type canceledError struct{ cause error }

func (e *canceledError) Error() string { return "nimble: canceled: " + e.cause.Error() }

// Is makes errors.Is(err, ErrCanceled) true; the cause (context.Canceled or
// context.DeadlineExceeded) is matched through Unwrap.
func (e *canceledError) Is(target error) bool { return target == ErrCanceled }

func (e *canceledError) Unwrap() error { return e.cause }

// Canceled wraps a context error (ctx.Err()) into the canceled form. A nil
// cause degrades to context.Canceled so double-faulted paths still produce
// a well-formed error.
func Canceled(cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return &canceledError{cause: cause}
}

// ErrInternal reports an execution fault — a VM or kernel panic recovered
// at the session boundary. The session that hit it is quarantined (the pool
// discards it and mints a fresh one), so poisoned per-session state can
// never leak into a later request. Errors in this family are *InternalError
// values carrying the entry name and a sanitized stack.
var ErrInternal = errors.New("nimble: internal execution fault")

// ErrOverloaded reports a request shed by admission control: the entry's
// queue is full, the expected wait exceeds the request's deadline, or the
// entry's circuit breaker is open. Errors in this family are
// *OverloadError values carrying a Retry-After hint.
var ErrOverloaded = errors.New("nimble: overloaded")

// ErrBadInput reports a request rejected at the Invoke boundary before
// reaching the VM: wrong arity, wrong value kind, or a tensor whose
// dtype/rank/static dims contradict the entry's compiled signature.
var ErrBadInput = errors.New("nimble: bad input")

// InternalError is the concrete ErrInternal: one recovered panic.
type InternalError struct {
	// Entry is the entry function that was executing.
	Entry string
	// Panic renders the recovered value.
	Panic string
	// Stack is a sanitized capture: frame addresses and goroutine headers
	// stripped, truncated to the frames nearest the fault.
	Stack string
}

func (e *InternalError) Error() string {
	return fmt.Sprintf("nimble: internal: entry %q panicked: %s", e.Entry, e.Panic)
}

// Is makes errors.Is(err, ErrInternal) true.
func (e *InternalError) Is(target error) bool { return target == ErrInternal }

// Internal converts a recovered panic into its typed error. When the panic
// crossed a ParallelFor worker (runtime.ChunkPanic) the worker's stack — the
// one that names the faulting kernel — is preferred over ours.
func Internal(entry string, rec any, stack []byte) *InternalError {
	if cp, ok := rec.(*runtime.ChunkPanic); ok {
		return &InternalError{Entry: entry, Panic: fmt.Sprint(cp.Value), Stack: SanitizeStack(cp.Stack, 12)}
	}
	return &InternalError{Entry: entry, Panic: fmt.Sprint(rec), Stack: SanitizeStack(stack, 12)}
}

// SanitizeStack reduces a debug.Stack capture to at most maxFrames
// function/location pairs with goroutine headers, argument values, and
// frame offsets removed — enough to localize a fault in a log or HTTP
// error body without leaking addresses or stack contents.
func SanitizeStack(stack []byte, maxFrames int) string {
	lines := strings.Split(string(stack), "\n")
	var out []string
	frames := 0
	for i := 0; i < len(lines) && frames < maxFrames; i++ {
		l := lines[i]
		if strings.HasPrefix(l, "goroutine ") || strings.TrimSpace(l) == "" {
			continue
		}
		if strings.HasPrefix(l, "\t") {
			// "\t/path/file.go:123 +0x1a4" -> "file.go:123" appended to the
			// preceding function line.
			loc := strings.TrimSpace(l)
			if i := strings.LastIndexByte(loc, ' '); i >= 0 && strings.HasPrefix(loc[i+1:], "+0x") {
				loc = loc[:i]
			}
			if i := strings.LastIndexByte(loc, '/'); i >= 0 {
				loc = loc[i+1:]
			}
			if n := len(out); n > 0 {
				out[n-1] += " (" + loc + ")"
			}
			continue
		}
		// "nimble/internal/kernels.MatMul(0xc0000b2000, ...)" -> drop args.
		fn := l
		if i := strings.IndexByte(fn, '('); i > 0 {
			fn = fn[:i]
		}
		// Skip the capture/recovery machinery above the interesting frames.
		if strings.Contains(fn, "runtime/debug.Stack") || strings.Contains(fn, "sanitize") ||
			strings.Contains(fn, "runtime.gopanic") || strings.Contains(fn, "panic.go") {
			continue
		}
		out = append(out, fn)
		frames++
	}
	return strings.Join(out, "; ")
}

// OverloadError is the concrete ErrOverloaded: one shed request.
type OverloadError struct {
	// Entry is the entry function the request targeted.
	Entry string
	// Reason distinguishes the shed: "queue full", "deadline unmeetable",
	// or "circuit open".
	Reason string
	// RetryAfter estimates when capacity should exist again; servers
	// surface it as a Retry-After header.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("nimble: overloaded: entry %q: %s (retry after %v)", e.Entry, e.Reason, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) true.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// WrapCtxErr lifts a bare context error (what the VM dispatch loop returns
// when a deadline fires mid-run) into the ErrCanceled family; every other
// error — including ones already wrapped — passes through unchanged. The
// public nimble package shares this classification so both layers agree on
// what counts as a cancellation.
func WrapCtxErr(err error) error {
	if err == nil || errors.Is(err, ErrCanceled) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &canceledError{cause: err}
	}
	return err
}
