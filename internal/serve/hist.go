package serve

import (
	"math/bits"
	"time"
)

// histogram is a fixed-size log₂-bucketed latency histogram: bucket i
// counts observations in [2^i, 2^(i+1)) microseconds, with everything
// under 1µs in bucket 0. 40 buckets cover sub-microsecond to ~12 days, so
// no observation is ever dropped. Quantiles come back as the geometric
// midpoint of the covering bucket — ~±41% worst-case error, which is the
// right trade for a lock-striped hot path: two integer ops to record, no
// allocation, no sorting. Not self-synchronized; callers observe and read
// under their own mutex (the Gate's or Scheduler's), which both already
// hold at the call sites.
type histogram struct {
	counts [40]int64
	total  int64
}

func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	idx := 0
	if us > 0 {
		idx = bits.Len64(uint64(us)) - 1
		if idx >= len(h.counts) {
			idx = len(h.counts) - 1
		}
	}
	h.counts[idx]++
	h.total++
}

// quantile returns the q-th quantile (0 < q ≤ 1) as the geometric midpoint
// of the bucket where the cumulative count crosses q·total; zero when
// nothing has been observed.
func (h *histogram) quantile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	rank := int64(q * float64(h.total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			// Geometric midpoint of [2^i, 2^(i+1)) µs ≈ 2^i · √2.
			mid := float64(int64(1)<<uint(i)) * 1.41421356
			return time.Duration(mid * float64(time.Microsecond))
		}
	}
	return 0
}
