// Package serve is Nimble's concurrent serving runtime. The paper's
// compile-once VM makes dynamic models servable; this package makes them
// serve concurrent traffic: one frozen vm.Executable (weights, bytecode,
// kernel table — all immutable) is shared by a pool of vm.VM sessions, each
// owning the mutable per-execution state (storage pool, frames, scratch,
// profiler). Requests check a session out, run, and return it; a
// micro-batcher (Batcher) additionally coalesces compatible requests for
// batchable entry points so one kernel dispatch serves many clients.
//
// Every blocking path accepts a context.Context: Acquire abandons its wait
// when the context is canceled (without consuming a session), and Batcher
// requests can be withdrawn from a pending batch. Cancellation errors wrap
// both ErrCanceled and the underlying context error.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"nimble/internal/tensor"
	"nimble/internal/vm"
)

// Session is one checked-out execution context over the pool's shared
// executable. A session must be used by at most one goroutine between
// Acquire and Release; its storage pool and frame recycler carry over
// between invocations, so repeated requests on one session reuse memory
// exactly like the single-VM hot path.
type Session struct {
	machine *vm.VM
	id      int
	// invocations counts Invoke calls served by this session. Atomic:
	// increments happen on the goroutine holding the session while Stats
	// may read concurrently from another.
	invocations atomic.Int64
	// poisoned marks a session whose VM panicked mid-execution. Its storage
	// pool, frames, and scratch may be inconsistent (a kernel died halfway
	// through writing a planner buffer), so Release quarantines it: the
	// session is discarded and a fresh VM minted in its place. Written and
	// read on the goroutine that holds the session.
	poisoned bool
}

// Invoke runs the named entry function on this session. The context is
// checked at VM call boundaries, so a deep recursion (an LSTM stepping a
// long sequence) notices cancellation mid-run. A VM or kernel panic is
// recovered here — the isolation boundary between one request and the
// process — converted into an *InternalError, and the session is poisoned
// so the pool replaces it instead of reusing its state.
func (s *Session) Invoke(ctx context.Context, name string, args ...vm.Object) (out vm.Object, err error) {
	s.invocations.Add(1)
	defer func() {
		if rec := recover(); rec != nil {
			s.poisoned = true
			out, err = nil, Internal(name, rec, debug.Stack())
		}
	}()
	out, err = s.machine.InvokeContext(ctx, name, args...)
	return out, WrapCtxErr(err)
}

// InvokeStream runs the named entry on this session, delivering every
// tensor the program passes through the IR's stream.emit operator to sink
// while the run is still in flight. A sink error aborts the run. Panics are
// recovered and poison the session exactly as in Invoke — including panics
// raised while a partial token stream has already been delivered, which is
// why streaming consumers must treat the stream's final error, not the
// tokens, as the request's outcome.
func (s *Session) InvokeStream(ctx context.Context, sink func(*tensor.Tensor) error, name string, args ...vm.Object) (out vm.Object, err error) {
	s.invocations.Add(1)
	defer func() {
		if rec := recover(); rec != nil {
			s.poisoned = true
			out, err = nil, Internal(name, rec, debug.Stack())
		}
	}()
	out, err = s.machine.InvokeStreamContext(ctx, sink, name, args...)
	return out, WrapCtxErr(err)
}

// BeginStream prepares a step-resumable streaming run on this session: the
// vm.StreamRun executes one compiled-loop iteration per StepStream call
// instead of pinning the session for the whole decode. Many StreamRuns may
// be parked on one session at once — that is the point — but their Begin
// and Step calls must all happen on the goroutine that holds the session.
// Panics poison the session exactly as in Invoke.
func (s *Session) BeginStream(sink func(*tensor.Tensor) error, name string, args ...vm.Object) (r *vm.StreamRun, err error) {
	s.invocations.Add(1)
	defer func() {
		if rec := recover(); rec != nil {
			s.poisoned = true
			r, err = nil, Internal(name, rec, debug.Stack())
		}
	}()
	return s.machine.BeginStream(sink, name, args...)
}

// StepStream advances a run begun with BeginStream by one compiled-loop
// iteration (or to completion for loop-free entries). A panic poisons the
// session and surfaces as *InternalError; the caller must then treat every
// other run parked on this session as lost too, since they share the
// poisoned VM's storage pool.
func (s *Session) StepStream(ctx context.Context, name string, r *vm.StreamRun) (done bool, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			s.poisoned = true
			done, err = true, Internal(name, rec, debug.Stack())
		}
	}()
	done, err = r.Step(ctx)
	return done, WrapCtxErr(err)
}

// Poisoned reports whether this session's VM panicked mid-execution. Valid
// on the goroutine holding the session.
func (s *Session) Poisoned() bool { return s.poisoned }

// InvokeTensors is the tensors-in, tensor-out convenience form.
func (s *Session) InvokeTensors(ctx context.Context, name string, args ...*tensor.Tensor) (out *tensor.Tensor, err error) {
	s.invocations.Add(1)
	defer func() {
		if rec := recover(); rec != nil {
			s.poisoned = true
			out, err = nil, Internal(name, rec, debug.Stack())
		}
	}()
	out, err = s.machine.InvokeTensorsContext(ctx, name, args...)
	return out, WrapCtxErr(err)
}

// ID returns the session's index within its pool.
func (s *Session) ID() int { return s.id }

// waiter is one goroutine parked in Acquire with no free session. Release
// hands a session directly to the oldest live waiter (ownership transfers
// without touching the free stack); Close delivers nil, which the waiter
// reads as ErrClosed. The channel is buffered so the handoff never blocks
// the releasing goroutine.
type waiter struct {
	ch chan *Session
	id uint64
	// lane orders the wait queue: lower lanes are handed sessions first,
	// FIFO (by id) within a lane. Plain Acquire parks in lane 0.
	lane int
}

// Pool shares one immutable executable across nWorkers VM sessions with
// LIFO checkout: the most recently released session is handed out first,
// so under light load a few hot sessions serve everything and their
// storage pools and frame recyclers stay cache-resident; cold sessions
// are only touched when concurrency actually demands them.
type Pool struct {
	exe *vm.Executable
	// shared is the cross-VM storage tier every session (including the
	// fresh VMs minted by quarantine) attaches to; nil means each session
	// keeps a purely private storage pool.
	shared *vm.SharedStoragePool

	mu       sync.Mutex
	free     []*Session // LIFO stack
	all      []*Session
	waiters  []*waiter          // FIFO queue of parked Acquires
	waiterID map[uint64]*waiter // live waiters, for O(1) cancel removal
	nextWait uint64
	closed   bool

	// stats. inFlight/peakInUse/waits/waitTime piggyback on the checkout
	// lock; invocations/errors are atomic so the result path does not take
	// the pool mutex a third time per request.
	invocations atomic.Int64
	errors      atomic.Int64
	inFlight    int
	peakInUse   int
	waits       int64 // acquires that found the stack empty and blocked
	waitTime    time.Duration
	quarantined int64 // poisoned sessions replaced by fresh VMs
}

// NewPool freezes exe and builds nWorkers sessions over it. The executable
// must be fully constructed (compiled, or deserialized and linked) before
// pooling; Freeze makes any later mutation a panic instead of a data race.
func NewPool(exe *vm.Executable, nWorkers int) (*Pool, error) {
	return NewPoolShared(exe, nWorkers, nil)
}

// NewPoolShared is NewPool with a cross-VM storage tier: every session —
// including the fresh VMs quarantine mints over poisoned ones — attaches
// to shared, so local storage misses draw from the common stock and local
// overflow migrates there instead of dying. Passing the same shared pool
// to the pools of several executables is the point: a multi-model server's
// resident buffer memory then tracks the concurrent working set, not the
// model count. A nil shared pool degrades to NewPool.
func NewPoolShared(exe *vm.Executable, nWorkers int, shared *vm.SharedStoragePool) (*Pool, error) {
	if nWorkers <= 0 {
		return nil, fmt.Errorf("serve: pool needs at least 1 worker, got %d", nWorkers)
	}
	if len(exe.KernelNames) > 0 {
		// Surface unlinked kernels at pool construction, not first request.
		if _, err := exe.Kernel(0); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	exe.Freeze()
	p := &Pool{exe: exe, shared: shared, waiterID: map[uint64]*waiter{}}
	for i := 0; i < nWorkers; i++ {
		s := p.newSession(i)
		p.all = append(p.all, s)
		p.free = append(p.free, s)
	}
	return p, nil
}

// newSession mints session i's VM with the pool's storage configuration
// applied; construction and the quarantine replacement path share it so a
// fresh VM can never silently lose the shared-tier attachment.
func (p *Pool) newSession(i int) *Session {
	m := vm.New(p.exe)
	if p.shared != nil {
		m.AttachSharedPool(p.shared)
	}
	m.MarkPooled()
	return &Session{machine: m, id: i}
}

// Executable returns the shared (frozen) executable.
func (p *Pool) Executable() *vm.Executable { return p.exe }

// Size returns the number of sessions the pool owns.
func (p *Pool) Size() int { return len(p.all) }

// Acquire checks out a session, blocking until one is free, the context is
// canceled, or the pool is closed. A canceled context returns an error
// wrapping ErrCanceled and ctx.Err() without consuming a session — a
// pre-canceled context never joins the wait queue at all. A closed pool
// returns ErrClosed.
func (p *Pool) Acquire(ctx context.Context) (*Session, error) {
	return p.AcquireLane(ctx, 0)
}

// AcquireLane is Acquire with a priority lane: when the pool is contended,
// parked lane-0 acquires are handed sessions before lane-1, and so on;
// arrival order breaks ties within a lane. An uncontended checkout ignores
// the lane entirely.
func (p *Pool) AcquireLane(ctx context.Context, lane int) (*Session, error) {
	if err := ctx.Err(); err != nil {
		return nil, Canceled(err)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("serve: pool: %w", ErrClosed)
	}
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		p.checkoutLocked()
		p.mu.Unlock()
		return s, nil
	}
	// No session free: park. Release hands a session straight to the best
	// (lowest-lane, then oldest) live waiter; cancellation removes the
	// waiter from the live set so the handoff skips it.
	w := &waiter{ch: make(chan *Session, 1), id: p.nextWait, lane: lane}
	p.nextWait++
	p.insertWaiterLocked(w)
	p.waiterID[w.id] = w
	p.waits++
	start := time.Now()
	p.mu.Unlock()

	select {
	case s := <-w.ch:
		if s == nil {
			return nil, fmt.Errorf("serve: pool: %w", ErrClosed)
		}
		p.mu.Lock()
		p.waitTime += time.Since(start)
		p.mu.Unlock()
		return s, nil
	case <-ctx.Done():
		p.mu.Lock()
		if _, live := p.waiterID[w.id]; live {
			delete(p.waiterID, w.id)
			// Dead waiters normally drain when a Release walks the queue;
			// under retry storms with no Release in sight (one long run
			// holding every session), compact eagerly so the queue stays
			// proportional to the live waiters.
			if len(p.waiters) > 16 && len(p.waiters) > 2*len(p.waiterID) {
				kept := p.waiters[:0]
				for _, lw := range p.waiters {
					if _, ok := p.waiterID[lw.id]; ok {
						kept = append(kept, lw)
					}
				}
				clear(p.waiters[len(kept):])
				p.waiters = kept
			}
			p.mu.Unlock()
			return nil, Canceled(ctx.Err())
		}
		p.mu.Unlock()
		// A session (or the close marker) was handed off concurrently with
		// the cancellation; the session must not leak out of the pool.
		if s := <-w.ch; s != nil {
			p.Release(s)
		}
		return nil, Canceled(ctx.Err())
	}
}

// checkoutLocked updates checkout stats; the caller holds p.mu.
func (p *Pool) checkoutLocked() {
	p.inFlight++
	if p.inFlight > p.peakInUse {
		p.peakInUse = p.inFlight
	}
}

// Release returns a session to the pool. If an Acquire is parked, the
// session transfers directly (it stays in flight, just under a new owner);
// otherwise it joins the LIFO free stack. A poisoned session (its VM
// panicked mid-execution) never re-enters circulation: it is quarantined —
// dropped on the floor for the GC, with a fresh VM over the same frozen
// executable minted in its place — so pool size is conserved and no state
// touched by the faulting request can resurface in a later one.
//
// vet:no-ctx — the only channel operation is the direct handoff to a parked
// Acquire, whose single-slot buffer the waiter owns; the send can never
// block.
func (p *Pool) Release(s *Session) {
	if s.poisoned {
		fresh := p.newSession(s.id)
		fresh.invocations.Store(s.invocations.Load())
		p.mu.Lock()
		p.quarantined++
		for i, old := range p.all {
			if old == s {
				p.all[i] = fresh
				break
			}
		}
		p.mu.Unlock()
		s = fresh
	}
	p.mu.Lock()
	if w := p.popWaiterLocked(); w != nil {
		p.mu.Unlock()
		w.ch <- s
		return
	}
	p.free = append(p.free, s)
	p.inFlight--
	p.mu.Unlock()
}

// insertWaiterLocked places w by (lane, arrival). Linear scan from the
// back: arrivals are overwhelmingly same-or-higher lane than the tail, so
// the common case is a plain append; queues are MaxQueue-scale anyway.
func (p *Pool) insertWaiterLocked(w *waiter) {
	i := len(p.waiters)
	for i > 0 && p.waiters[i-1].lane > w.lane {
		i--
	}
	p.waiters = append(p.waiters, nil)
	copy(p.waiters[i+1:], p.waiters[i:])
	p.waiters[i] = w
}

// popWaiterLocked dequeues the best live waiter (lowest lane, oldest
// arrival — the queue is kept in that order), or nil.
func (p *Pool) popWaiterLocked() *waiter {
	for len(p.waiters) > 0 {
		w := p.waiters[0]
		p.waiters = p.waiters[1:]
		if _, live := p.waiterID[w.id]; live {
			delete(p.waiterID, w.id)
			return w
		}
	}
	return nil
}

// Invoke checks out a session, runs the entry function, and returns the
// session before reporting the result. Safe for any number of concurrent
// callers; calls beyond the pool size queue on the checkout, and the queue
// wait is abandoned when ctx is canceled.
func (p *Pool) Invoke(ctx context.Context, name string, args ...vm.Object) (vm.Object, error) {
	return p.InvokeLane(ctx, 0, name, args...)
}

// InvokeLane is Invoke through a priority lane (see AcquireLane).
func (p *Pool) InvokeLane(ctx context.Context, lane int, name string, args ...vm.Object) (vm.Object, error) {
	s, err := p.AcquireLane(ctx, lane)
	if err != nil {
		return nil, err
	}
	// Release via defer: a panicking kernel (shape violation surfaced at
	// dispatch) must not leak the session out of the pool.
	defer p.Release(s)
	out, err := s.Invoke(ctx, name, args...)
	p.Note(err)
	return out, err
}

// InvokeTensors is the tensors-in, tensor-out form of Invoke.
func (p *Pool) InvokeTensors(ctx context.Context, name string, args ...*tensor.Tensor) (*tensor.Tensor, error) {
	s, err := p.Acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer p.Release(s)
	out, err := s.InvokeTensors(ctx, name, args...)
	p.Note(err)
	return out, err
}

func (p *Pool) Note(err error) {
	p.invocations.Add(1)
	// Client-initiated cancellations are not execution failures; counting
	// them would let request deadlines inflate the pool's error rate.
	if err != nil && !errors.Is(err, ErrCanceled) {
		p.errors.Add(1)
	}
}

// Close marks the pool closed; blocked and future Acquires fail with
// ErrClosed. Sessions already checked out may finish and Release normally.
//
// vet:no-ctx — the only channel operations are the wake-ups of parked
// waiters, each a send into a single-slot buffer the waiter owns; none can
// block.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	var parked []*waiter
	for {
		w := p.popWaiterLocked()
		if w == nil {
			break
		}
		parked = append(parked, w)
	}
	p.mu.Unlock()
	for _, w := range parked {
		w.ch <- nil // read as ErrClosed by the waiter
	}
}

// Stats is a snapshot of pool counters.
type Stats struct {
	Workers     int           `json:"workers"`
	Invocations int64         `json:"invocations"`
	Errors      int64         `json:"errors"`
	InFlight    int           `json:"in_flight"`
	PeakInUse   int           `json:"peak_in_use"`
	Waits       int64         `json:"waits"`
	WaitTime    time.Duration `json:"wait_time_ns"`
	// Quarantined counts poisoned sessions (VM/kernel panics) replaced by
	// fresh VMs; the pool's size never changes when this rises.
	Quarantined int64 `json:"quarantined"`
	// PerSession lists invocation counts by session id; a steep skew
	// toward low ids is the LIFO policy working as intended.
	PerSession []int64 `json:"per_session"`
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Stats{
		Workers:     len(p.all),
		Invocations: p.invocations.Load(),
		Errors:      p.errors.Load(),
		InFlight:    p.inFlight,
		PeakInUse:   p.peakInUse,
		Waits:       p.waits,
		WaitTime:    p.waitTime,
		Quarantined: p.quarantined,
	}
	for _, s := range p.all {
		st.PerSession = append(st.PerSession, s.invocations.Load())
	}
	return st
}
