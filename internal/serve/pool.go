// Package serve is Nimble's concurrent serving runtime. The paper's
// compile-once VM makes dynamic models servable; this package makes them
// serve concurrent traffic: one frozen vm.Executable (weights, bytecode,
// kernel table — all immutable) is shared by a pool of vm.VM sessions, each
// owning the mutable per-execution state (storage pool, frames, scratch,
// profiler). Requests check a session out, run, and return it; a
// micro-batcher (Batcher) additionally coalesces compatible requests for
// batchable entry points so one kernel dispatch serves many clients.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nimble/internal/tensor"
	"nimble/internal/vm"
)

// Session is one checked-out execution context over the pool's shared
// executable. A session must be used by at most one goroutine between
// Acquire and Release; its storage pool and frame recycler carry over
// between invocations, so repeated requests on one session reuse memory
// exactly like the single-VM hot path.
type Session struct {
	machine *vm.VM
	id      int
	// invocations counts Invoke calls served by this session. Atomic:
	// increments happen on the goroutine holding the session while Stats
	// may read concurrently from another.
	invocations atomic.Int64
}

// Invoke runs the named entry function on this session.
func (s *Session) Invoke(name string, args ...vm.Object) (vm.Object, error) {
	s.invocations.Add(1)
	return s.machine.Invoke(name, args...)
}

// InvokeTensors is the tensors-in, tensor-out convenience form.
func (s *Session) InvokeTensors(name string, args ...*tensor.Tensor) (*tensor.Tensor, error) {
	s.invocations.Add(1)
	return s.machine.InvokeTensors(name, args...)
}

// ID returns the session's index within its pool.
func (s *Session) ID() int { return s.id }

// Pool shares one immutable executable across nWorkers VM sessions with
// LIFO checkout: the most recently released session is handed out first,
// so under light load a few hot sessions serve everything and their
// storage pools and frame recyclers stay cache-resident; cold sessions
// are only touched when concurrency actually demands them.
type Pool struct {
	exe *vm.Executable

	mu     sync.Mutex
	cond   *sync.Cond
	free   []*Session // LIFO stack
	all    []*Session
	closed bool

	// stats. inFlight/peakInUse/waits/waitTime piggyback on the checkout
	// lock; invocations/errors are atomic so the result path does not take
	// the pool mutex a third time per request.
	invocations atomic.Int64
	errors      atomic.Int64
	inFlight    int
	peakInUse   int
	waits       int64 // acquires that found the stack empty and blocked
	waitTime    time.Duration
}

// NewPool freezes exe and builds nWorkers sessions over it. The executable
// must be fully constructed (compiled, or deserialized and linked) before
// pooling; Freeze makes any later mutation a panic instead of a data race.
func NewPool(exe *vm.Executable, nWorkers int) (*Pool, error) {
	if nWorkers <= 0 {
		return nil, fmt.Errorf("serve: pool needs at least 1 worker, got %d", nWorkers)
	}
	if len(exe.KernelNames) > 0 {
		// Surface unlinked kernels at pool construction, not first request.
		if _, err := exe.Kernel(0); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
	}
	exe.Freeze()
	p := &Pool{exe: exe}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < nWorkers; i++ {
		m := vm.New(exe)
		m.MarkPooled()
		s := &Session{machine: m, id: i}
		p.all = append(p.all, s)
		p.free = append(p.free, s)
	}
	return p, nil
}

// Executable returns the shared (frozen) executable.
func (p *Pool) Executable() *vm.Executable { return p.exe }

// Size returns the number of sessions the pool owns.
func (p *Pool) Size() int { return len(p.all) }

// Acquire checks out a session, blocking until one is free. It returns an
// error only when the pool has been closed.
func (p *Pool) Acquire() (*Session, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) == 0 && !p.closed {
		p.waits++
		start := time.Now()
		for len(p.free) == 0 && !p.closed {
			p.cond.Wait()
		}
		p.waitTime += time.Since(start)
	}
	if p.closed {
		return nil, fmt.Errorf("serve: pool is closed")
	}
	s := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	p.inFlight++
	if p.inFlight > p.peakInUse {
		p.peakInUse = p.inFlight
	}
	return s, nil
}

// Release returns a session to the pool's LIFO stack.
func (p *Pool) Release(s *Session) {
	p.mu.Lock()
	p.free = append(p.free, s)
	p.inFlight--
	p.mu.Unlock()
	p.cond.Signal()
}

// Invoke checks out a session, runs the entry function, and returns the
// session before reporting the result. Safe for any number of concurrent
// callers; calls beyond the pool size queue on the checkout.
func (p *Pool) Invoke(name string, args ...vm.Object) (vm.Object, error) {
	s, err := p.Acquire()
	if err != nil {
		return nil, err
	}
	// Release via defer: a panicking kernel (shape violation surfaced at
	// dispatch) must not leak the session out of the pool.
	defer p.Release(s)
	out, err := s.Invoke(name, args...)
	p.note(err)
	return out, err
}

// InvokeTensors is the tensors-in, tensor-out form of Invoke.
func (p *Pool) InvokeTensors(name string, args ...*tensor.Tensor) (*tensor.Tensor, error) {
	s, err := p.Acquire()
	if err != nil {
		return nil, err
	}
	defer p.Release(s)
	out, err := s.InvokeTensors(name, args...)
	p.note(err)
	return out, err
}

func (p *Pool) note(err error) {
	p.invocations.Add(1)
	if err != nil {
		p.errors.Add(1)
	}
}

// Close marks the pool closed; blocked and future Acquires fail. Sessions
// already checked out may finish and Release normally.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Stats is a snapshot of pool counters.
type Stats struct {
	Workers     int           `json:"workers"`
	Invocations int64         `json:"invocations"`
	Errors      int64         `json:"errors"`
	InFlight    int           `json:"in_flight"`
	PeakInUse   int           `json:"peak_in_use"`
	Waits       int64         `json:"waits"`
	WaitTime    time.Duration `json:"wait_time_ns"`
	// PerSession lists invocation counts by session id; a steep skew
	// toward low ids is the LIFO policy working as intended.
	PerSession []int64 `json:"per_session"`
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := Stats{
		Workers:     len(p.all),
		Invocations: p.invocations.Load(),
		Errors:      p.errors.Load(),
		InFlight:    p.inFlight,
		PeakInUse:   p.peakInUse,
		Waits:       p.waits,
		WaitTime:    p.waitTime,
	}
	for _, s := range p.all {
		st.PerSession = append(st.PerSession, s.invocations.Load())
	}
	return st
}
