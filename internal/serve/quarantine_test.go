package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"nimble/internal/compiler"
	"nimble/internal/models"
	"nimble/internal/tensor"
	"nimble/internal/vm"
)

// compileMLPWithBomb compiles an MLP whose kernels panic whenever the
// armed flag is set — the controlled stand-in for the ~77 real panic sites
// reachable from the request path.
func compileMLPWithBomb(t testing.TB) (*models.MLP, *compiler.Result, *bombControl) {
	t.Helper()
	m := models.NewMLP(models.MLPConfig{In: 16, Hidden: 32, Out: 8, Layers: 2, Seed: 45})
	res, err := compiler.Compile(m.Module, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctl := &bombControl{}
	err = res.Exe.WrapKernels(func(name string, fn vm.PackedFunc) vm.PackedFunc {
		return func(args []*tensor.Tensor, out *tensor.Tensor) (*tensor.Tensor, error) {
			if ctl.armed() {
				panic(fmt.Sprintf("test bomb in kernel %s", name))
			}
			return fn(args, out)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, res, ctl
}

type bombControl struct {
	mu sync.Mutex
	on bool
}

func (b *bombControl) arm(v bool) {
	b.mu.Lock()
	b.on = v
	b.mu.Unlock()
}

func (b *bombControl) armed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.on
}

// TestSessionPanicBecomesErrInternal: a kernel panic surfaces as a typed
// *InternalError carrying the entry name and a sanitized stack, not as a
// process crash.
func TestSessionPanicBecomesErrInternal(t *testing.T) {
	m, res, ctl := compileMLPWithBomb(t)
	p, err := NewPool(res.Exe, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := m.RandomBatch(rand.New(rand.NewSource(1)), 2)

	ctl.arm(true)
	_, err = p.InvokeTensors(context.Background(), "main", in)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("panicked invoke error = %v, want ErrInternal", err)
	}
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("error %T does not unwrap to *InternalError", err)
	}
	if ie.Entry != "main" {
		t.Errorf("InternalError.Entry = %q, want main", ie.Entry)
	}
	if ie.Stack == "" {
		t.Error("InternalError.Stack is empty")
	}
	if errors.Is(err, ErrCanceled) {
		t.Error("internal fault must not classify as cancellation")
	}
}

// TestPoolQuarantinesPoisonedSession: after a panic the poisoned session
// is replaced by a fresh VM — pool size conserved, the poisoned machine
// out of circulation forever — and subsequent requests compute correct
// results (nothing from the faulted execution resurfaces).
func TestPoolQuarantinesPoisonedSession(t *testing.T) {
	m, res, ctl := compileMLPWithBomb(t)
	p, err := NewPool(res.Exe, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	in := m.RandomBatch(rng, 3)

	// Reference output from an identically-seeded clean model.
	refM := models.NewMLP(models.MLPConfig{In: 16, Hidden: 32, Out: 8, Layers: 2, Seed: 45})
	refVM, _, err := compiler.CompileToVM(refM.Module, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := refVM.InvokeTensors("main", in)
	if err != nil {
		t.Fatal(err)
	}

	// Identify the session that will serve (LIFO: top of the free stack),
	// then poison it.
	s0, _ := p.Acquire(context.Background())
	poisonedMachine := s0.machine
	p.Release(s0)

	ctl.arm(true)
	if _, err := p.InvokeTensors(context.Background(), "main", in); !errors.Is(err, ErrInternal) {
		t.Fatalf("want ErrInternal, got %v", err)
	}
	ctl.arm(false)

	if got := p.Size(); got != 2 {
		t.Fatalf("pool size after quarantine = %d, want 2", got)
	}
	st := p.Stats()
	if st.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", st.Quarantined)
	}
	if st.InFlight != 0 {
		t.Errorf("InFlight = %d after quarantine, want 0 (no leaked checkout)", st.InFlight)
	}

	// The poisoned machine never comes back: drain every session and check
	// machine identity; then verify results are still correct.
	a, _ := p.Acquire(context.Background())
	b, _ := p.Acquire(context.Background())
	if a.machine == poisonedMachine || b.machine == poisonedMachine {
		t.Fatal("poisoned VM resurfaced in the pool")
	}
	p.Release(a)
	p.Release(b)
	for i := 0; i < 8; i++ {
		got, err := p.InvokeTensors(context.Background(), "main", in)
		if err != nil {
			t.Fatalf("post-quarantine invoke %d: %v", i, err)
		}
		if !got.AllClose(want, 1e-5, 1e-6) {
			t.Fatalf("post-quarantine output differs from reference (buffer contamination?)")
		}
	}
}

// TestQuarantineUnderConcurrency: panics racing real traffic never change
// the pool's size and never wedge it.
func TestQuarantineUnderConcurrency(t *testing.T) {
	m, res, ctl := compileMLPWithBomb(t)
	p, err := NewPool(res.Exe, 4)
	if err != nil {
		t.Fatal(err)
	}
	in := m.RandomBatch(rand.New(rand.NewSource(3)), 2)

	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				ctl.arm(i%5 == g%5) // waves of faults interleaved with clean traffic
				_, err := p.InvokeTensors(context.Background(), "main", in)
				if err != nil && !errors.Is(err, ErrInternal) {
					t.Errorf("unexpected error class: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	ctl.arm(false)
	if p.Size() != 4 {
		t.Fatalf("pool size = %d, want 4", p.Size())
	}
	if st := p.Stats(); st.InFlight != 0 {
		t.Fatalf("InFlight = %d, want 0", st.InFlight)
	}
	// Pool still serves.
	if _, err := p.InvokeTensors(context.Background(), "main", in); err != nil {
		t.Fatalf("pool unusable after concurrent quarantines: %v", err)
	}
}
