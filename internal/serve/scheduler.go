package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nimble/internal/tensor"
	"nimble/internal/vm"
)

// SchedConfig parameterizes one entry's continuous-batching scheduler.
type SchedConfig struct {
	// Entry names the entry function this scheduler runs.
	Entry string
	// Window caps how many streams one session interleaves at once — the
	// iteration-level batch size (default 8).
	Window int
	// Lanes is the number of priority lanes (default 1). Lane 0 is served
	// first; FIFO within a lane, earliest-deadline first among deadlined
	// requests of the same lane.
	Lanes int
	// MaxSessions caps how many pool sessions the scheduler drives at once
	// (default: the pool size).
	MaxSessions int
}

func (c SchedConfig) withDefaults(pool *Pool) SchedConfig {
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.Lanes <= 0 {
		c.Lanes = 1
	}
	if c.MaxSessions <= 0 || c.MaxSessions > pool.Size() {
		c.MaxSessions = pool.Size()
	}
	return c
}

// Scheduler is one entry's iteration-level continuous-batching run queue —
// the serving architecture production LLM systems converged on, applied to
// the paper's VM: instead of a stream pinning a pooled session for its
// whole decode loop, each loop is decomposed into steps (vm.StreamRun
// parks at every compiled backward-Goto with its KV-cache state in
// planner-owned buffers), and a worker goroutine holding one session
// round-robins steps across up to Window streams. New arrivals join a
// running session's active set at the next iteration boundary; finished
// streams retire without draining their batch-mates. The submit queue is
// ordered by (lane, deadline, arrival) and sheds on arrival when the
// EWMA-projected completion already overshoots the request's deadline.
//
// All methods are safe for concurrent use.
type Scheduler struct {
	pool *Pool
	cfg  SchedConfig

	mu      sync.Mutex
	queue   []*schedStream
	workers map[*schedWorker]struct{}
	active  int // streams adopted by workers and not yet retired
	nextSeq uint64
	closed  bool

	// stats, under mu.
	submitted     int64
	completed     int64
	canceledN     int64
	failed        int64
	shedDeadline  int64
	steps         int64
	stepEWMA      time.Duration
	streamSteps   float64 // EWMA of steps per completed stream
	occupancyEWMA float64 // EWMA of active streams observed per step
	peakOccupancy int
	stepHist      histogram
}

// NewScheduler builds a scheduler over the pool. The pool is shared: plain
// Invokes and the scheduler's workers draw from the same sessions, so
// MaxSessions bounds how much of it streaming may occupy.
func NewScheduler(pool *Pool, cfg SchedConfig) *Scheduler {
	return &Scheduler{pool: pool, cfg: cfg.withDefaults(pool), workers: map[*schedWorker]struct{}{}}
}

// schedStream is one streaming request's life in the scheduler: queued,
// then adopted by a worker that steps it to completion, one iteration at a
// time, interleaved with its batch-mates.
type schedStream struct {
	ctx      context.Context
	entry    string
	args     []vm.Object
	lane     int
	deadline time.Time // zero = none
	seq      uint64

	// tokens hands each emitted tensor from the stepping worker to the
	// consumer relay. Capacity 1: the worker only steps a stream whose
	// previous token has been consumed (pending false), so the send never
	// blocks for one-emit-per-iteration programs, and a multi-emit
	// iteration falls back to a context-bounded blocking send.
	tokens chan *tensor.Tensor
	// pending is set (before the send) when a token sits undelivered and
	// cleared by the relay after receiving it; the worker skips pending
	// streams so one slow consumer cannot head-of-line-block the batch.
	pending atomic.Bool
	// killErr, once set, makes the worker retire the stream at its next
	// boundary (consumer sink failed without a context cancellation).
	killErr atomic.Pointer[error]

	run   *vm.StreamRun // nil until the worker's first step
	steps int

	// done closes at retirement; result/err are valid after.
	done   chan struct{}
	result vm.Object
	err    error
}

func (s *schedStream) kill(err error) { s.killErr.CompareAndSwap(nil, &err) }

func (s *schedStream) killed() error {
	if p := s.killErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Stream runs one streaming request through the run queue: it blocks until
// the run finishes (or ctx cancels it) and returns the entry's final
// result, delivering each emitted tensor to sink along the way. Backpressure
// is per-stream: an unconsumed token parks only its own stream at the next
// iteration boundary while batch-mates keep stepping. The deadline, if ctx
// carries one, both orders the queue and sheds on arrival when the
// projected completion already overshoots it.
func (sc *Scheduler) Stream(ctx context.Context, lane int, sink func(*tensor.Tensor) error, entry string, args ...vm.Object) (vm.Object, error) {
	if lane < 0 {
		lane = 0
	}
	if lane >= sc.cfg.Lanes {
		lane = sc.cfg.Lanes - 1
	}
	s := &schedStream{
		ctx:    ctx,
		entry:  entry,
		args:   args,
		lane:   lane,
		tokens: make(chan *tensor.Tensor, 1),
		done:   make(chan struct{}),
	}
	if dl, ok := ctx.Deadline(); ok {
		s.deadline = dl
	}
	if err := sc.submit(s); err != nil {
		return nil, err
	}
	for {
		select {
		case t := <-s.tokens:
			s.pending.Store(false)
			sc.wakeAll()
			if err := sink(t); err != nil {
				s.kill(fmt.Errorf("serve: stream sink: %w", err))
				sc.wakeAll()
				return sc.awaitRetire(s)
			}
		case <-ctx.Done():
			if sc.removeQueued(s) {
				// Never adopted: the relay retires it directly — a worker
				// blocked behind other traffic must not delay a client that
				// already gave up.
				sc.finishUnadopted(s, Canceled(ctx.Err()))
				return nil, s.err
			}
			sc.wakeAll()
			return sc.awaitRetire(s)
		case <-s.done:
			return sc.drainRetired(s, sink)
		}
	}
}

// awaitRetire discards further tokens (so a blocked emit unwinds) until the
// worker retires the stream at its next iteration boundary.
//
// vet:no-ctx — the worker observes the same cancellation/kill that brought
// us here and retires the stream within one step.
func (sc *Scheduler) awaitRetire(s *schedStream) (vm.Object, error) {
	for {
		select {
		case <-s.tokens:
		case <-s.done:
			return s.result, s.err
		}
	}
}

// drainRetired delivers tokens that were emitted in the stream's final
// step (the decoder's last iteration emits, then returns — both land in
// the same Step call), then reports the outcome.
func (sc *Scheduler) drainRetired(s *schedStream, sink func(*tensor.Tensor) error) (vm.Object, error) {
	for {
		select {
		case t := <-s.tokens:
			if err := sink(t); err != nil {
				return s.result, s.err
			}
		default:
			return s.result, s.err
		}
	}
}

// submit queues the stream, shedding on arrival when its deadline is
// already unmeetable, and makes sure a worker will pick it up.
func (sc *Scheduler) submit(s *schedStream) error {
	if err := s.ctx.Err(); err != nil {
		return Canceled(err)
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.closed {
		return fmt.Errorf("serve: scheduler: %w", ErrClosed)
	}
	if !s.deadline.IsZero() {
		if proj := sc.projectedWaitLocked(); proj > 0 {
			if remaining := time.Until(s.deadline); proj > remaining {
				sc.shedDeadline++
				return &OverloadError{
					Entry:      sc.cfg.Entry,
					Reason:     "projected completion past deadline",
					RetryAfter: proj - remaining,
				}
			}
		}
	}
	s.seq = sc.nextSeq
	sc.nextSeq++
	sc.queue = append(sc.queue, s)
	sc.submitted++
	// Capacity check: spare window across live workers, counting the queue
	// depth ahead of this stream. Spawn while the pool allows; always wake,
	// so a sleeping worker with spare window adopts at its next boundary.
	if spare := len(sc.workers)*sc.cfg.Window - sc.active; len(sc.queue) > spare && len(sc.workers) < sc.cfg.MaxSessions {
		sc.spawnLocked()
	}
	sc.wakeAllLocked()
	return nil
}

// projectedWaitLocked estimates a new arrival's completion time from the
// step-latency EWMA: a full solo stream costs streamSteps·stepEWMA;
// interleaving multiplies that by the share of a session's window the
// stream will contend with, and arrivals beyond a full complement
// (MaxSessions·Window) wait in whole waves behind it. Deliberately rough —
// it exists to shed hopeless deadlines at arrival, not to promise latency.
func (sc *Scheduler) projectedWaitLocked() time.Duration {
	if sc.stepEWMA <= 0 || sc.streamSteps <= 0 {
		return 0
	}
	streamTime := time.Duration(sc.streamSteps * float64(sc.stepEWMA))
	inFlight := sc.active + len(sc.queue) + 1
	share := (inFlight + sc.cfg.MaxSessions - 1) / sc.cfg.MaxSessions
	if share > sc.cfg.Window {
		share = sc.cfg.Window
	}
	proj := time.Duration(share) * streamTime
	if full := sc.cfg.MaxSessions * sc.cfg.Window; inFlight > full {
		waves := (inFlight - full + full - 1) / full
		proj += time.Duration(waves*sc.cfg.Window) * streamTime
	}
	return proj
}

// popLocked removes and returns the best queued stream: lowest lane, then
// earliest deadline (deadline-less last), then arrival order. Linear scan;
// the queue is admission-bounded upstream.
func (sc *Scheduler) popLocked() *schedStream {
	if len(sc.queue) == 0 {
		return nil
	}
	best := 0
	for i := 1; i < len(sc.queue); i++ {
		if streamLess(sc.queue[i], sc.queue[best]) {
			best = i
		}
	}
	s := sc.queue[best]
	sc.queue = append(sc.queue[:best], sc.queue[best+1:]...)
	sc.active++
	return s
}

func streamLess(a, b *schedStream) bool {
	if a.lane != b.lane {
		return a.lane < b.lane
	}
	if !a.deadline.Equal(b.deadline) {
		if a.deadline.IsZero() {
			return false
		}
		if b.deadline.IsZero() {
			return true
		}
		return a.deadline.Before(b.deadline)
	}
	return a.seq < b.seq
}

func (sc *Scheduler) removeQueued(s *schedStream) bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for i, q := range sc.queue {
		if q == s {
			sc.queue = append(sc.queue[:i], sc.queue[i+1:]...)
			return true
		}
	}
	return false
}

// finishUnadopted retires a stream the relay pulled back out of the queue
// before any worker adopted it.
func (sc *Scheduler) finishUnadopted(s *schedStream, err error) {
	s.err = err
	close(s.done)
	sc.mu.Lock()
	sc.canceledN++
	sc.mu.Unlock()
}

func (sc *Scheduler) spawnLocked() {
	w := &schedWorker{sc: sc, wake: make(chan struct{}, 1)}
	sc.workers[w] = struct{}{}
	go w.run()
}

func (sc *Scheduler) wakeAll() {
	sc.mu.Lock()
	sc.wakeAllLocked()
	sc.mu.Unlock()
}

// vet:no-ctx — each wake is a non-blocking send into a single-slot buffer.
func (sc *Scheduler) wakeAllLocked() {
	for w := range sc.workers {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// noteStep records one iteration's latency and the batch occupancy it ran
// under.
func (sc *Scheduler) noteStep(d time.Duration, occupancy int) {
	sc.mu.Lock()
	sc.steps++
	sc.stepHist.observe(d)
	if sc.stepEWMA == 0 {
		sc.stepEWMA = d
	} else {
		sc.stepEWMA += (d - sc.stepEWMA) / 8
	}
	occ := float64(occupancy)
	if sc.occupancyEWMA == 0 {
		sc.occupancyEWMA = occ
	} else {
		sc.occupancyEWMA += (occ - sc.occupancyEWMA) / 8
	}
	sc.mu.Unlock()
}

// Close fails queued streams with ErrClosed and tells workers to retire
// their active ones at the next iteration boundary. In-flight relays
// observe the retirement through their done channels; Close does not wait
// for them.
func (sc *Scheduler) Close() {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return
	}
	sc.closed = true
	q := sc.queue
	sc.queue = nil
	sc.failed += int64(len(q))
	sc.wakeAllLocked()
	sc.mu.Unlock()
	for _, s := range q {
		s.err = fmt.Errorf("serve: scheduler: %w", ErrClosed)
		close(s.done)
	}
}

// SchedStats is a snapshot of one entry's scheduler counters.
type SchedStats struct {
	Entry     string `json:"entry"`
	Submitted int64  `json:"submitted"`
	Completed int64  `json:"completed"`
	Canceled  int64  `json:"canceled"`
	Failed    int64  `json:"failed"`
	// ShedDeadline counts arrivals rejected because the EWMA-projected
	// completion already overshot their deadline.
	ShedDeadline int64 `json:"shed_deadline"`
	// Queued/Active/Sessions are instantaneous: waiting streams, streams
	// adopted by workers, and sessions currently driven.
	Queued   int `json:"queued"`
	Active   int `json:"active"`
	Sessions int `json:"sessions"`
	// PeakOccupancy is the most streams one session ever interleaved;
	// OccupancyEWMA smooths the per-step batch size.
	PeakOccupancy int     `json:"peak_occupancy"`
	OccupancyEWMA float64 `json:"occupancy_ewma"`
	// Steps counts loop iterations executed; StepsPerStream smooths how
	// many a completed stream needed.
	Steps          int64   `json:"steps"`
	StepsPerStream float64 `json:"steps_per_stream"`
	StepEWMAUS     float64 `json:"step_ewma_us"`
	StepP50US      float64 `json:"step_p50_us"`
	StepP99US      float64 `json:"step_p99_us"`
	// ProjectedWaitUS is the current arrival-time completion estimate.
	ProjectedWaitUS float64 `json:"projected_wait_us"`
}

// Stats snapshots the scheduler.
func (sc *Scheduler) Stats() SchedStats {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return SchedStats{
		Entry:           sc.cfg.Entry,
		Submitted:       sc.submitted,
		Completed:       sc.completed,
		Canceled:        sc.canceledN,
		Failed:          sc.failed,
		ShedDeadline:    sc.shedDeadline,
		Queued:          len(sc.queue),
		Active:          sc.active,
		Sessions:        len(sc.workers),
		PeakOccupancy:   sc.peakOccupancy,
		OccupancyEWMA:   sc.occupancyEWMA,
		Steps:           sc.steps,
		StepsPerStream:  sc.streamSteps,
		StepEWMAUS:      float64(sc.stepEWMA.Microseconds()),
		StepP50US:       float64(sc.stepHist.quantile(0.50).Microseconds()),
		StepP99US:       float64(sc.stepHist.quantile(0.99).Microseconds()),
		ProjectedWaitUS: float64(sc.projectedWaitLocked().Microseconds()),
	}
}

// schedWorker drives one pool session: it adopts queued streams up to the
// window and round-robins one iteration step across them per pass.
type schedWorker struct {
	sc     *Scheduler
	sess   *Session
	wake   chan struct{}
	active []*schedStream
}

func (w *schedWorker) run() {
	sc := w.sc
	sess, err := sc.pool.Acquire(context.Background())
	if err != nil {
		// Pool closed while spawning: deregister; Close (or the relays'
		// cancellations) settles whatever is queued.
		sc.mu.Lock()
		delete(sc.workers, w)
		sc.mu.Unlock()
		return
	}
	w.sess = sess
	for {
		sc.mu.Lock()
		for len(w.active) < sc.cfg.Window {
			s := sc.popLocked()
			if s == nil {
				break
			}
			w.active = append(w.active, s)
			if len(w.active) > sc.peakOccupancy {
				sc.peakOccupancy = len(w.active)
			}
		}
		if len(w.active) == 0 {
			// Nothing active and nothing queued: retire this worker. Check
			// and deregistration are atomic under sc.mu, so a racing submit
			// either still sees this worker (and its wake is consumed by
			// nobody — but the spare-capacity math no longer counts us) or
			// spawns afresh.
			delete(sc.workers, w)
			sc.mu.Unlock()
			sc.pool.Release(w.sess)
			return
		}
		closed := sc.closed
		sc.mu.Unlock()

		progressed := false
		n, i := 0, 0
		for ; i < len(w.active); i++ {
			s := w.active[i]
			occupancy := len(w.active)
			retired := true
			switch {
			case closed:
				w.retire(s, nil, fmt.Errorf("serve: scheduler: %w", ErrClosed), true)
			case s.ctx.Err() != nil:
				w.retire(s, nil, Canceled(s.ctx.Err()), true)
			case s.killed() != nil:
				w.retire(s, nil, s.killed(), true)
			case s.pending.Load():
				// Last token not consumed yet: stepping would force the
				// emit into a blocking send and stall the batch.
				retired = false
				w.active[n] = s
				n++
				continue
			default:
				retired = w.step(s, occupancy)
			}
			progressed = true
			if !retired {
				w.active[n] = s
				n++
			}
			if w.sess.poisoned {
				i++
				break
			}
		}
		// On a poison break the streams after i were never visited this
		// pass; compact them in with the kept ones so the poison path below
		// retires every survivor — dropping one would strand its relay in
		// awaitRetire forever.
		for ; i < len(w.active); i++ {
			w.active[n] = w.active[i]
			n++
		}
		for j := n; j < len(w.active); j++ {
			w.active[j] = nil
		}
		w.active = w.active[:n]

		if w.sess.poisoned {
			// The panic corrupted the whole VM — every co-resident stream's
			// parked frames live in its storage pool — so they are lost
			// with it. Release quarantines the session and mints a fresh
			// one; a successor worker picks up the queue.
			coErr := fmt.Errorf("serve: scheduler: session poisoned by a batch-mate's fault: %w", ErrInternal)
			for i, s := range w.active {
				w.retire(s, nil, coErr, false)
				w.active[i] = nil
			}
			w.active = w.active[:0]
			sc.mu.Lock()
			delete(sc.workers, w)
			respawn := len(sc.queue) > 0 && !sc.closed
			if respawn {
				sc.spawnLocked()
			}
			sc.mu.Unlock()
			sc.pool.Release(w.sess)
			return
		}

		if !progressed {
			// Every active stream is waiting on its consumer; sleep until a
			// relay drains a token, a cancellation arrives, or a submit
			// lands. vet:no-ctx — every path that changes the condition
			// above sends a wake.
			<-w.wake
		}
	}
}

// step advances one stream by one iteration; reports whether it retired.
func (w *schedWorker) step(s *schedStream, occupancy int) bool {
	if s.run == nil {
		r, err := w.sess.BeginStream(vmSink(s), s.entry, s.args...)
		if err != nil {
			w.retire(s, nil, err, false)
			return true
		}
		s.run = r
	}
	start := time.Now()
	done, err := w.sess.StepStream(s.ctx, s.entry, s.run)
	w.sc.noteStep(time.Since(start), occupancy)
	s.steps++
	if !done {
		return false
	}
	if err != nil {
		w.retire(s, nil, err, false)
		return true
	}
	out, _ := s.run.Result()
	w.retire(s, out, nil, false)
	return true
}

// vmSink builds the VM-level emit sink for one stream: a non-blocking send
// into the stream's single-slot buffer (pending is set first, so the
// worker's skip check can never miss a buffered token), falling back to a
// context-bounded blocking send for multi-emit iterations.
func vmSink(s *schedStream) func(*tensor.Tensor) error {
	return func(t *tensor.Tensor) error {
		s.pending.Store(true)
		select {
		case s.tokens <- t:
			return nil
		default:
		}
		select {
		case s.tokens <- t:
			return nil
		case <-s.ctx.Done():
			return s.ctx.Err()
		}
	}
}

// retire seals a stream's outcome. abortRun releases a parked run's
// buffers (cancellation paths); a poisoned session skips that — its pool
// is garbage wholesale and the VM is about to be quarantined.
func (w *schedWorker) retire(s *schedStream, out vm.Object, err error, abortRun bool) {
	if abortRun && s.run != nil && !w.sess.poisoned {
		s.run.Abort()
	}
	s.result, s.err = out, err
	close(s.done)
	sc := w.sc
	sc.pool.Note(err)
	sc.mu.Lock()
	sc.active--
	switch {
	case err == nil:
		sc.completed++
		if s.steps > 0 {
			fs := float64(s.steps)
			if sc.streamSteps == 0 {
				sc.streamSteps = fs
			} else {
				sc.streamSteps += (fs - sc.streamSteps) / 8
			}
		}
	case errors.Is(err, ErrCanceled):
		sc.canceledN++
	default:
		sc.failed++
	}
	sc.mu.Unlock()
}
