package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"nimble/internal/compiler"
	"nimble/internal/models"
	"nimble/internal/tensor"
	"nimble/internal/vm"
)

func startObj(id int64) vm.Object { return vm.NewTensorObj(models.StartToken(id)) }

func compileDecoder(t testing.TB) *compiler.Result {
	t.Helper()
	res, err := compiler.Compile(models.NewDecoder(models.DefaultDecoderConfig()).Module, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// pinnedDecode produces the reference token sequence for one start token on
// a dedicated, freshly compiled VM — the pre-scheduler semantics every
// scheduled stream must reproduce byte for byte.
func pinnedDecode(t testing.TB, entry string, start int64) []int64 {
	t.Helper()
	m, _, err := compiler.CompileToVM(models.NewDecoder(models.DefaultDecoderConfig()).Module, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var toks []int64
	_, err = m.InvokeStreamContext(context.Background(), func(tt *tensor.Tensor) error {
		toks = append(toks, tt.I64()...)
		return nil
	}, entry, startObj(start))
	if err != nil {
		t.Fatal(err)
	}
	return toks
}

func TestSchedulerInterleavesStreamsOnOneSession(t *testing.T) {
	res := compileDecoder(t)
	pool, err := NewPool(res.Exe, 1) // ONE session: any concurrency is interleaving
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScheduler(pool, SchedConfig{Entry: "generate", Window: 8})

	const streams = 8
	want := make([][]int64, streams)
	for i := range want {
		want[i] = pinnedDecode(t, "generate", int64(i+1))
	}

	// Each stream's sink blocks at a barrier after its first token, so the
	// decode is too fast to matter: all eight must be resident on the one
	// session before any of them may proceed past token one.
	var barrier sync.WaitGroup
	barrier.Add(streams)
	got := make([][]int64, streams)
	errs := make([]error, streams)
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			first := true
			_, errs[i] = sc.Stream(context.Background(), 0, func(tt *tensor.Tensor) error {
				if first {
					first = false
					barrier.Done()
					barrier.Wait()
				}
				got[i] = append(got[i], tt.I64()...)
				return nil
			}, "generate", startObj(int64(i+1)))
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("stream %d: %v", i, errs[i])
		}
		if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
			t.Errorf("stream %d tokens diverge from pinned-session decode:\n  scheduled %v\n  pinned    %v", i, got[i], want[i])
		}
	}
	st := sc.Stats()
	if st.Completed != streams {
		t.Errorf("Completed = %d, want %d", st.Completed, streams)
	}
	// The acceptance bar: with one session and eight simultaneous arrivals,
	// the window must actually interleave ≥ 4 decode loops mid-flight.
	if st.PeakOccupancy < 4 {
		t.Errorf("peak occupancy = %d, want >= 4 concurrent streams on the one session", st.PeakOccupancy)
	}
	if st.Sessions != 0 || st.Active != 0 || st.Queued != 0 {
		t.Errorf("scheduler did not quiesce: %+v", st)
	}
	if ps := pool.Stats(); ps.InFlight != 0 {
		t.Errorf("pool session leaked: %+v", ps)
	}
}

// TestSchedulerMidFlightJoin forces a join after the first stream is
// already generating: the late stream's output must still be identical.
func TestSchedulerMidFlightJoin(t *testing.T) {
	res := compileDecoder(t)
	pool, err := NewPool(res.Exe, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScheduler(pool, SchedConfig{Entry: "generate", Window: 4})

	firstToken := make(chan struct{})
	var earlyToks, lateToks []int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		once := sync.Once{}
		if _, err := sc.Stream(context.Background(), 0, func(tt *tensor.Tensor) error {
			once.Do(func() { close(firstToken) })
			earlyToks = append(earlyToks, tt.I64()...)
			return nil
		}, "generate", startObj(5)); err != nil {
			t.Error(err)
		}
	}()
	<-firstToken // the early stream is mid-generation
	if _, err := sc.Stream(context.Background(), 0, func(tt *tensor.Tensor) error {
		lateToks = append(lateToks, tt.I64()...)
		return nil
	}, "generate", startObj(11)); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if want := pinnedDecode(t, "generate", 5); fmt.Sprint(earlyToks) != fmt.Sprint(want) {
		t.Errorf("early stream diverged after a mid-flight join: got %v want %v", earlyToks, want)
	}
	if want := pinnedDecode(t, "generate", 11); fmt.Sprint(lateToks) != fmt.Sprint(want) {
		t.Errorf("late-joining stream diverged: got %v want %v", lateToks, want)
	}
}

// TestSchedulerQueueOrdering is the deadline-ordering property test: for
// random mixes of lanes, deadlines, and arrival orders, popLocked must
// always yield (lane asc, deadline asc with deadline-less last, seq asc).
func TestSchedulerQueueOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := time.Now()
	for trial := 0; trial < 200; trial++ {
		sc := &Scheduler{cfg: SchedConfig{Lanes: 3, Window: 8, MaxSessions: 1}}
		n := 1 + rng.Intn(12)
		for i := 0; i < n; i++ {
			s := &schedStream{lane: rng.Intn(3), seq: uint64(i)}
			if rng.Intn(2) == 0 {
				s.deadline = base.Add(time.Duration(rng.Intn(1000)) * time.Millisecond)
			}
			sc.queue = append(sc.queue, s)
		}
		var popped []*schedStream
		for {
			s := sc.popLocked()
			if s == nil {
				break
			}
			popped = append(popped, s)
		}
		if len(popped) != n {
			t.Fatalf("trial %d: popped %d of %d", trial, len(popped), n)
		}
		ok := sort.SliceIsSorted(popped, func(i, j int) bool { return streamLess(popped[i], popped[j]) })
		for i := 1; i < len(popped); i++ {
			if streamLess(popped[i], popped[i-1]) {
				ok = false
			}
		}
		if !ok {
			t.Fatalf("trial %d: pop order violates (lane, deadline, arrival)", trial)
		}
	}
}

// TestSchedulerPriorityOvertake: with one session and a window of 1, a
// lane-0 arrival queued behind lane-1 work must run before it.
func TestSchedulerPriorityOvertake(t *testing.T) {
	res := compileDecoder(t)
	pool, err := NewPool(res.Exe, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScheduler(pool, SchedConfig{Entry: "generate", Window: 1, Lanes: 2})

	var mu sync.Mutex
	var order []string
	note := func(name string) {
		mu.Lock()
		order = append(order, name)
		mu.Unlock()
	}
	awaitQueued := func(n int) {
		deadline := time.Now().Add(5 * time.Second)
		for sc.Stats().Queued < n {
			if time.Now().After(deadline) {
				t.Fatalf("queue never reached depth %d", n)
			}
			time.Sleep(time.Millisecond)
		}
	}

	var wg sync.WaitGroup
	running := make(chan struct{})
	release := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		first := true
		if _, err := sc.Stream(context.Background(), 0, func(*tensor.Tensor) error {
			if first {
				first = false
				note("running")
				close(running)
				<-release // hold the window hostage until both rivals are queued
			}
			return nil
		}, "generate", startObj(1)); err != nil {
			t.Error(err)
		}
	}()
	<-running
	// Two more while the window (of 1) is occupied: background lands in the
	// queue first, then urgent. Urgent (lane 0) must overtake.
	launch := func(name string, lane int, start int64) {
		defer wg.Done()
		first := true
		if _, err := sc.Stream(context.Background(), lane, func(*tensor.Tensor) error {
			if first {
				first = false
				note(name)
			}
			return nil
		}, "generate", startObj(start)); err != nil {
			t.Error(err)
		}
	}
	wg.Add(1)
	go launch("background", 1, 2)
	awaitQueued(1)
	wg.Add(1)
	go launch("urgent", 0, 3)
	awaitQueued(2)
	close(release)
	wg.Wait()
	if len(order) != 3 || order[1] != "urgent" {
		t.Errorf("first-token order %v; lane-0 arrival should overtake lane-1", order)
	}
}

// TestSchedulerDeadlineShed: once the step EWMA knows a full stream costs
// ~32ms, an arrival with a 5ms budget is hopeless and must shed on submit
// with a typed, Retry-After-carrying overload error.
func TestSchedulerDeadlineShed(t *testing.T) {
	res := compileDecoder(t)
	pool, err := NewPool(res.Exe, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScheduler(pool, SchedConfig{Entry: "generate", Window: 8})
	sc.mu.Lock()
	sc.stepEWMA = time.Millisecond
	sc.streamSteps = 32
	sc.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err = sc.Stream(ctx, 0, func(*tensor.Tensor) error { return nil }, "generate", startObj(1))
	var oe *OverloadError
	if !errors.As(err, &oe) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want *OverloadError", err)
	}
	if oe.RetryAfter <= 0 {
		t.Errorf("shed without a Retry-After hint: %+v", oe)
	}
	if st := sc.Stats(); st.ShedDeadline != 1 {
		t.Errorf("ShedDeadline = %d, want 1", st.ShedDeadline)
	}
}

// TestSchedulerCancelMidStream: canceling one stream retires it at the next
// iteration boundary without disturbing its batch-mates.
func TestSchedulerCancelMidStream(t *testing.T) {
	res := compileDecoder(t)
	pool, err := NewPool(res.Exe, 1)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScheduler(pool, SchedConfig{Entry: "generate", Window: 4})

	ctx, cancel := context.WithCancel(context.Background())
	gotOne := make(chan struct{})
	var wg sync.WaitGroup
	var cancelErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		once := sync.Once{}
		_, cancelErr = sc.Stream(ctx, 0, func(*tensor.Tensor) error {
			once.Do(func() { close(gotOne) })
			return nil
		}, "generate", startObj(9))
	}()
	<-gotOne
	cancel()

	// A healthy stream alongside must still produce the full exact output.
	var toks []int64
	if _, err := sc.Stream(context.Background(), 0, func(tt *tensor.Tensor) error {
		toks = append(toks, tt.I64()...)
		return nil
	}, "generate", startObj(4)); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !errors.Is(cancelErr, ErrCanceled) {
		t.Errorf("canceled stream err = %v, want ErrCanceled", cancelErr)
	}
	if want := pinnedDecode(t, "generate", 4); fmt.Sprint(toks) != fmt.Sprint(want) {
		t.Errorf("surviving stream diverged after a batch-mate's cancel")
	}
	if st := sc.Stats(); st.Canceled == 0 {
		t.Errorf("cancel not counted: %+v", st)
	}
}
