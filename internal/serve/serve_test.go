package serve

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"nimble/internal/compiler"
	"nimble/internal/models"
	"nimble/internal/tensor"
)

// compileMLP returns a compiled MLP plus a single reference VM's outputs
// for a fixed input set.
func compileMLP(t testing.TB) (*models.MLP, *compiler.Result) {
	t.Helper()
	m := models.NewMLP(models.MLPConfig{In: 16, Hidden: 32, Out: 8, Layers: 2, Seed: 45})
	res, err := compiler.Compile(m.Module, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

func TestPoolMatchesSingleSession(t *testing.T) {
	m, res := compileMLP(t)
	rng := rand.New(rand.NewSource(9))
	inputs := make([]*tensor.Tensor, 24)
	for i := range inputs {
		inputs[i] = m.RandomBatch(rng, 1+i%5)
	}
	// Reference outputs from one plain VM over an identically compiled
	// executable (the pool freezes its own copy).
	refM := models.NewMLP(models.MLPConfig{In: 16, Hidden: 32, Out: 8, Layers: 2, Seed: 45})
	refVM, _, err := compiler.CompileToVM(refM.Module, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*tensor.Tensor, len(inputs))
	for i, in := range inputs {
		want[i], err = refVM.InvokeTensors("main", in)
		if err != nil {
			t.Fatal(err)
		}
	}

	p, err := NewPool(res.Exe, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exe.Frozen() {
		t.Fatal("pool did not freeze the executable")
	}
	var wg sync.WaitGroup
	errs := make([]error, len(inputs))
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := p.InvokeTensors(context.Background(), "main", inputs[i])
			if err != nil {
				errs[i] = err
				return
			}
			if !out.AllClose(want[i], 1e-5, 1e-6) {
				t.Errorf("request %d: pool output differs from single-session output", i)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	st := p.Stats()
	if st.Invocations != int64(len(inputs)) {
		t.Errorf("Invocations = %d, want %d", st.Invocations, len(inputs))
	}
	if st.Errors != 0 || st.InFlight != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.PeakInUse > p.Size() {
		t.Errorf("PeakInUse %d exceeds pool size %d", st.PeakInUse, p.Size())
	}
	var total int64
	for _, n := range st.PerSession {
		total += n
	}
	if total != int64(len(inputs)) {
		t.Errorf("per-session counts sum to %d, want %d", total, len(inputs))
	}
}

func TestPoolLIFOCheckout(t *testing.T) {
	_, res := compileMLP(t)
	p, err := NewPool(res.Exe, 3)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.Acquire(context.Background())
	b, _ := p.Acquire(context.Background())
	p.Release(a)
	p.Release(b)
	// b was released last, so LIFO hands it back first.
	got, _ := p.Acquire(context.Background())
	if got != b {
		t.Errorf("checkout is not LIFO: got session %d, want %d", got.ID(), b.ID())
	}
	p.Release(got)
}

func TestPoolSerialInvocationsStayOnOneSession(t *testing.T) {
	_, res := compileMLP(t)
	p, err := NewPool(res.Exe, 4)
	if err != nil {
		t.Fatal(err)
	}
	in := models.NewMLP(models.MLPConfig{In: 16, Hidden: 32, Out: 8, Layers: 2, Seed: 45}).
		RandomBatch(rand.New(rand.NewSource(3)), 2)
	for i := 0; i < 10; i++ {
		if _, err := p.InvokeTensors(context.Background(), "main", in); err != nil {
			t.Fatal(err)
		}
	}
	st := p.Stats()
	busy := 0
	for _, n := range st.PerSession {
		if n > 0 {
			busy++
		}
	}
	if busy != 1 {
		t.Errorf("serial load touched %d sessions (%v); LIFO should keep one hot", busy, st.PerSession)
	}
	if st.Waits != 0 {
		t.Errorf("serial load blocked %d times", st.Waits)
	}
}

func TestPoolClose(t *testing.T) {
	_, res := compileMLP(t)
	p, err := NewPool(res.Exe, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := p.Acquire(context.Background())
	released := make(chan error, 1)
	go func() {
		_, err := p.Acquire(context.Background()) // blocks: the only session is out
		released <- err
	}()
	p.Close()
	if err := <-released; err == nil {
		t.Error("Acquire on closed pool succeeded")
	}
	p.Release(s) // releasing after close must not panic
	if _, err := p.Acquire(context.Background()); err == nil {
		t.Error("Acquire after close succeeded")
	}
}

func TestPoolRejectsBadConfig(t *testing.T) {
	_, res := compileMLP(t)
	if _, err := NewPool(res.Exe, 0); err == nil {
		t.Error("0-worker pool accepted")
	}
}

func TestFrozenExecutableRejectsMutation(t *testing.T) {
	_, res := compileMLP(t)
	p, err := NewPool(res.Exe, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("AddKernel on frozen executable did not panic")
		}
	}()
	p.Executable().AddKernel("rogue", nil)
}
