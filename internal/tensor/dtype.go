// Package tensor implements the dense n-dimensional array substrate that the
// Nimble compiler and virtual machine operate on. It provides typed storage,
// shape and stride arithmetic, element access, broadcasting helpers, and a
// compact binary serialization format used by the VM constant pool.
//
// The package is deliberately free of any operator math; compute kernels live
// in internal/kernels so that the codegen layer can swap kernel
// implementations without touching the data representation.
package tensor

import "fmt"

// DType enumerates the element types supported by the runtime. The set
// mirrors the types Nimble's evaluation needs: float32 for model weights and
// activations, float64 for reductions in tests, int32/int64 for indices and
// shape data, and bool for masks and predicates.
type DType uint8

const (
	// Float32 is the default dtype for weights and activations.
	Float32 DType = iota
	// Float64 is used by high-precision reference paths in tests.
	Float64
	// Int32 is used for small index tensors.
	Int32
	// Int64 is the dtype of shape tensors and token ids.
	Int64
	// Bool is used for masks and branch predicates.
	Bool
)

// Size returns the byte width of one element of the dtype.
func (d DType) Size() int {
	switch d {
	case Float32, Int32:
		return 4
	case Float64, Int64:
		return 8
	case Bool:
		return 1
	}
	panic(fmt.Sprintf("tensor: unknown dtype %d", d))
}

// String returns the canonical lower-case name used by the IR printer,
// e.g. "float32".
func (d DType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Bool:
		return "bool"
	}
	return fmt.Sprintf("dtype(%d)", uint8(d))
}

// IsFloat reports whether the dtype is a floating-point type.
func (d DType) IsFloat() bool { return d == Float32 || d == Float64 }

// IsInt reports whether the dtype is an integer type.
func (d DType) IsInt() bool { return d == Int32 || d == Int64 }

// ParseDType converts a canonical dtype name back to its DType. It is the
// inverse of String and is used by the executable deserializer and the CLI
// tools.
func ParseDType(s string) (DType, error) {
	switch s {
	case "float32", "f32":
		return Float32, nil
	case "float64", "f64":
		return Float64, nil
	case "int32", "i32":
		return Int32, nil
	case "int64", "i64":
		return Int64, nil
	case "bool":
		return Bool, nil
	}
	return 0, fmt.Errorf("tensor: unknown dtype %q", s)
}
