package tensor

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary layout (little-endian):
//
//	u8   dtype
//	u32  rank
//	u64  dims[rank]
//	u64  payload element count (redundant with dims; checked on load)
//	...  payload (elements in row-major order)
//
// The format backs the constant pool of serialized VM executables. It is
// intentionally simple: constants dominate executable size, so the only
// property that matters is streaming without reflection.

// WriteTo serializes the tensor to w.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	var n int64
	hdr := make([]byte, 1+4)
	hdr[0] = byte(t.dtype)
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(t.shape)))
	k, err := w.Write(hdr)
	n += int64(k)
	if err != nil {
		return n, err
	}
	buf8 := make([]byte, 8)
	for _, d := range t.shape {
		binary.LittleEndian.PutUint64(buf8, uint64(d))
		k, err = w.Write(buf8)
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	binary.LittleEndian.PutUint64(buf8, uint64(t.NumElements()))
	k, err = w.Write(buf8)
	n += int64(k)
	if err != nil {
		return n, err
	}
	payload := t.encodePayload()
	k, err = w.Write(payload)
	n += int64(k)
	return n, err
}

func (t *Tensor) encodePayload() []byte {
	n := t.NumElements()
	out := make([]byte, n*t.dtype.Size())
	switch t.dtype {
	case Float32:
		for i, v := range t.f32 {
			binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
		}
	case Float64:
		for i, v := range t.f64 {
			binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
		}
	case Int32:
		for i, v := range t.i32 {
			binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
		}
	case Int64:
		for i, v := range t.i64 {
			binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
		}
	case Bool:
		for i, v := range t.b {
			if v {
				out[i] = 1
			}
		}
	}
	return out
}

// ReadFrom deserializes a tensor previously written by WriteTo.
func ReadFrom(r io.Reader) (*Tensor, error) {
	hdr := make([]byte, 5)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("tensor: reading header: %w", err)
	}
	dt := DType(hdr[0])
	if dt > Bool {
		return nil, fmt.Errorf("tensor: corrupt dtype byte %d", hdr[0])
	}
	rank := binary.LittleEndian.Uint32(hdr[1:])
	if rank > 64 {
		return nil, fmt.Errorf("tensor: implausible rank %d", rank)
	}
	buf8 := make([]byte, 8)
	shape := make(Shape, rank)
	for i := range shape {
		if _, err := io.ReadFull(r, buf8); err != nil {
			return nil, fmt.Errorf("tensor: reading dim %d: %w", i, err)
		}
		d := binary.LittleEndian.Uint64(buf8)
		if d > math.MaxInt32 {
			return nil, fmt.Errorf("tensor: implausible dimension %d", d)
		}
		shape[i] = int(d)
	}
	if _, err := io.ReadFull(r, buf8); err != nil {
		return nil, fmt.Errorf("tensor: reading element count: %w", err)
	}
	count := binary.LittleEndian.Uint64(buf8)
	if int(count) != shape.NumElements() {
		return nil, fmt.Errorf("tensor: element count %d does not match shape %v", count, shape)
	}
	t := New(dt, shape...)
	payload := make([]byte, int(count)*dt.Size())
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("tensor: reading payload: %w", err)
	}
	switch dt {
	case Float32:
		for i := range t.f32 {
			t.f32[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[i*4:]))
		}
	case Float64:
		for i := range t.f64 {
			t.f64[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
		}
	case Int32:
		for i := range t.i32 {
			t.i32[i] = int32(binary.LittleEndian.Uint32(payload[i*4:]))
		}
	case Int64:
		for i := range t.i64 {
			t.i64[i] = int64(binary.LittleEndian.Uint64(payload[i*8:]))
		}
	case Bool:
		for i := range t.b {
			t.b[i] = payload[i] != 0
		}
	}
	return t, nil
}

// String renders a compact description such as "Tensor[(2, 3), float32]".
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor[%s, %s]", t.shape, t.dtype)
}
