package tensor

import (
	"fmt"
	"strings"
)

// Shape is a concrete (fully known) tensor shape. Symbolic shapes containing
// Any dimensions exist only in the IR type system (internal/ir); by the time
// data reaches a Tensor every dimension is a concrete non-negative integer.
type Shape []int

// NumElements returns the product of all dimensions. A scalar (rank 0) has
// one element. Shapes with a zero dimension have zero elements, which is a
// legal transient state for dynamic models (e.g. an empty beam).
func (s Shape) NumElements() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// Clone returns an independent copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Equal reports whether two shapes have identical rank and dimensions.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Valid reports whether every dimension is non-negative.
func (s Shape) Valid() bool {
	for _, d := range s {
		if d < 0 {
			return false
		}
	}
	return true
}

// String renders the shape as "(d0, d1, ...)" matching the paper's
// Tensor[(1, 10, Any), float32] notation (without the Any, which cannot
// appear in a concrete shape).
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Strides returns the row-major element strides for the shape.
func (s Shape) Strides() []int {
	st := make([]int, len(s))
	acc := 1
	for i := len(s) - 1; i >= 0; i-- {
		st[i] = acc
		acc *= s[i]
	}
	return st
}

// BroadcastShapes computes the NumPy-broadcast result of two concrete shapes,
// aligning trailing dimensions. It returns an error when a dimension pair is
// incompatible (neither equal nor one of them 1). This is the runtime
// counterpart of the broadcast type relation in internal/ir; the type
// relation may defer checks involving Any to runtime, and this function is
// where those deferred (gradually typed) checks finally fail.
func BroadcastShapes(a, b Shape) (Shape, error) {
	rank := len(a)
	if len(b) > rank {
		rank = len(b)
	}
	out := make(Shape, rank)
	for i := 0; i < rank; i++ {
		da, db := 1, 1
		if i >= rank-len(a) {
			da = a[i-(rank-len(a))]
		}
		if i >= rank-len(b) {
			db = b[i-(rank-len(b))]
		}
		switch {
		case da == db:
			out[i] = da
		case da == 1:
			out[i] = db
		case db == 1:
			out[i] = da
		default:
			return nil, fmt.Errorf("tensor: cannot broadcast shapes %v and %v at axis %d (%d vs %d)", a, b, i, da, db)
		}
	}
	return out, nil
}

// index computes the linear offset of coordinate idx under strides st.
func index(idx, st []int) int {
	off := 0
	for i, v := range idx {
		off += v * st[i]
	}
	return off
}
