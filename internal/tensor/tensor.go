package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense, contiguous, row-major n-dimensional array. Exactly one
// of the typed backing slices is non-nil, selected by dtype. Tensors are the
// only bulk-data object the VM manipulates; instructions move references to
// them between registers, so copies are explicit (Clone) and cheap reference
// passing is the default, matching the paper's copy-on-write register file
// discussion (§5.2).
type Tensor struct {
	dtype DType
	shape Shape

	f32 []float32
	f64 []float64
	i32 []int32
	i64 []int64
	b   []bool
}

// New allocates a zero-filled tensor of the given dtype and shape.
func New(dt DType, shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	t := &Tensor{dtype: dt, shape: s}
	n := s.NumElements()
	switch dt {
	case Float32:
		t.f32 = make([]float32, n)
	case Float64:
		t.f64 = make([]float64, n)
	case Int32:
		t.i32 = make([]int32, n)
	case Int64:
		t.i64 = make([]int64, n)
	case Bool:
		t.b = make([]bool, n)
	default:
		panic(fmt.Sprintf("tensor: unknown dtype %v", dt))
	}
	return t
}

// FromF32 wraps data (not copied) as a float32 tensor with the given shape.
func FromF32(data []float32, shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if len(data) != s.NumElements() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elements)", len(data), s, s.NumElements()))
	}
	return &Tensor{dtype: Float32, shape: s, f32: data}
}

// FromF64 wraps data as a float64 tensor.
func FromF64(data []float64, shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if len(data) != s.NumElements() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), s))
	}
	return &Tensor{dtype: Float64, shape: s, f64: data}
}

// FromI32 wraps data as an int32 tensor.
func FromI32(data []int32, shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if len(data) != s.NumElements() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), s))
	}
	return &Tensor{dtype: Int32, shape: s, i32: data}
}

// FromI64 wraps data as an int64 tensor.
func FromI64(data []int64, shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if len(data) != s.NumElements() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), s))
	}
	return &Tensor{dtype: Int64, shape: s, i64: data}
}

// FromBool wraps data as a bool tensor.
func FromBool(data []bool, shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if len(data) != s.NumElements() {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), s))
	}
	return &Tensor{dtype: Bool, shape: s, b: data}
}

// Scalar creates a rank-0 float32 tensor holding v.
func Scalar(v float32) *Tensor { return FromF32([]float32{v}) }

// ScalarI64 creates a rank-0 int64 tensor holding v.
func ScalarI64(v int64) *Tensor { return FromI64([]int64{v}) }

// ScalarBool creates a rank-0 bool tensor holding v.
func ScalarBool(v bool) *Tensor { return FromBool([]bool{v}) }

// ShapeTensor converts a concrete Shape into a rank-1 int64 tensor, the
// runtime representation produced by the ShapeOf VM instruction (§4.4).
func ShapeTensor(s Shape) *Tensor {
	d := make([]int64, len(s))
	for i, v := range s {
		d[i] = int64(v)
	}
	return FromI64(d, len(s))
}

// DType returns the element type.
func (t *Tensor) DType() DType { return t.dtype }

// Shape returns the tensor's shape. Callers must not mutate it.
func (t *Tensor) Shape() Shape { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// NumElements returns the total element count.
func (t *Tensor) NumElements() int { return t.shape.NumElements() }

// NumBytes returns the size of the backing storage in bytes.
func (t *Tensor) NumBytes() int { return t.NumElements() * t.dtype.Size() }

// F32 returns the float32 backing slice, panicking on dtype mismatch. The
// accessor panics rather than returning an error because a mismatch here is
// always a compiler bug (the type checker guarantees dtypes before codegen).
func (t *Tensor) F32() []float32 {
	if t.dtype != Float32 {
		panic(fmt.Sprintf("tensor: F32 access on %v tensor", t.dtype))
	}
	return t.f32
}

// F64 returns the float64 backing slice.
func (t *Tensor) F64() []float64 {
	if t.dtype != Float64 {
		panic(fmt.Sprintf("tensor: F64 access on %v tensor", t.dtype))
	}
	return t.f64
}

// I32 returns the int32 backing slice.
func (t *Tensor) I32() []int32 {
	if t.dtype != Int32 {
		panic(fmt.Sprintf("tensor: I32 access on %v tensor", t.dtype))
	}
	return t.i32
}

// I64 returns the int64 backing slice.
func (t *Tensor) I64() []int64 {
	if t.dtype != Int64 {
		panic(fmt.Sprintf("tensor: I64 access on %v tensor", t.dtype))
	}
	return t.i64
}

// Bools returns the bool backing slice.
func (t *Tensor) Bools() []bool {
	if t.dtype != Bool {
		panic(fmt.Sprintf("tensor: Bools access on %v tensor", t.dtype))
	}
	return t.b
}

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.dtype, t.shape...)
	switch t.dtype {
	case Float32:
		copy(c.f32, t.f32)
	case Float64:
		copy(c.f64, t.f64)
	case Int32:
		copy(c.i32, t.i32)
	case Int64:
		copy(c.i64, t.i64)
	case Bool:
		copy(c.b, t.b)
	}
	return c
}

// Reshape returns a tensor sharing t's storage with a new shape holding the
// same number of elements. One dimension may be -1, in which case it is
// inferred. This backs the ReshapeTensor VM instruction, which "assigns a new
// shape to a tensor without altering its data" (Appendix A).
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	s := Shape(shape).Clone()
	infer := -1
	known := 1
	for i, d := range s {
		if d == -1 {
			if infer >= 0 {
				return nil, fmt.Errorf("tensor: reshape with multiple -1 dims %v", s)
			}
			infer = i
		} else if d < 0 {
			return nil, fmt.Errorf("tensor: reshape with negative dim %v", s)
		} else {
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || t.NumElements()%known != 0 {
			return nil, fmt.Errorf("tensor: cannot infer -1 in reshape %v from %v", s, t.shape)
		}
		s[infer] = t.NumElements() / known
	}
	if s.NumElements() != t.NumElements() {
		return nil, fmt.Errorf("tensor: reshape %v incompatible with %v", s, t.shape)
	}
	c := *t
	c.shape = s
	return &c, nil
}

// At returns the element at the multi-index as a float64 regardless of
// dtype. It is intended for tests and formatting, not for kernels.
func (t *Tensor) At(idx ...int) float64 {
	off := t.offset(idx)
	switch t.dtype {
	case Float32:
		return float64(t.f32[off])
	case Float64:
		return t.f64[off]
	case Int32:
		return float64(t.i32[off])
	case Int64:
		return float64(t.i64[off])
	case Bool:
		if t.b[off] {
			return 1
		}
		return 0
	}
	panic("unreachable")
}

// SetAt stores v (converted to the tensor's dtype) at the multi-index.
func (t *Tensor) SetAt(v float64, idx ...int) {
	off := t.offset(idx)
	switch t.dtype {
	case Float32:
		t.f32[off] = float32(v)
	case Float64:
		t.f64[off] = v
	case Int32:
		t.i32[off] = int32(v)
	case Int64:
		t.i64[off] = int64(v)
	case Bool:
		t.b[off] = v != 0
	}
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.shape))
	}
	for i, v := range idx {
		if v < 0 || v >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
	}
	return index(idx, t.shape.Strides())
}

// Equal reports exact element-wise equality including dtype and shape.
func (t *Tensor) Equal(o *Tensor) bool {
	if t.dtype != o.dtype || !t.shape.Equal(o.shape) {
		return false
	}
	switch t.dtype {
	case Float32:
		for i := range t.f32 {
			if t.f32[i] != o.f32[i] {
				return false
			}
		}
	case Float64:
		for i := range t.f64 {
			if t.f64[i] != o.f64[i] {
				return false
			}
		}
	case Int32:
		for i := range t.i32 {
			if t.i32[i] != o.i32[i] {
				return false
			}
		}
	case Int64:
		for i := range t.i64 {
			if t.i64[i] != o.i64[i] {
				return false
			}
		}
	case Bool:
		for i := range t.b {
			if t.b[i] != o.b[i] {
				return false
			}
		}
	}
	return true
}

// AllClose reports element-wise approximate equality for float tensors with
// absolute tolerance atol and relative tolerance rtol. Non-float tensors fall
// back to exact equality.
func (t *Tensor) AllClose(o *Tensor, rtol, atol float64) bool {
	if !t.dtype.IsFloat() || !o.dtype.IsFloat() {
		return t.Equal(o)
	}
	if !t.shape.Equal(o.shape) {
		return false
	}
	n := t.NumElements()
	for i := 0; i < n; i++ {
		var a, b float64
		if t.dtype == Float32 {
			a = float64(t.f32[i])
		} else {
			a = t.f64[i]
		}
		if o.dtype == Float32 {
			b = float64(o.f32[i])
		} else {
			b = o.f64[i]
		}
		if math.IsNaN(a) != math.IsNaN(b) {
			return false
		}
		if math.IsNaN(a) {
			continue
		}
		if math.Abs(a-b) > atol+rtol*math.Abs(b) {
			return false
		}
	}
	return true
}

// Fill sets every element to v (converted to the tensor's dtype).
func (t *Tensor) Fill(v float64) {
	switch t.dtype {
	case Float32:
		f := float32(v)
		for i := range t.f32 {
			t.f32[i] = f
		}
	case Float64:
		for i := range t.f64 {
			t.f64[i] = v
		}
	case Int32:
		x := int32(v)
		for i := range t.i32 {
			t.i32[i] = x
		}
	case Int64:
		x := int64(v)
		for i := range t.i64 {
			t.i64[i] = x
		}
	case Bool:
		x := v != 0
		for i := range t.b {
			t.b[i] = x
		}
	}
}

// Random fills a new float32 tensor with uniform values in [-scale, scale)
// drawn from rng. Model weights in the reproduction are seeded random data:
// every evaluated quantity is a latency, so weight values are irrelevant
// beyond keeping arithmetic finite.
func Random(rng *rand.Rand, scale float64, shape ...int) *Tensor {
	t := New(Float32, shape...)
	for i := range t.f32 {
		t.f32[i] = float32((rng.Float64()*2 - 1) * scale)
	}
	return t
}

// RandomInts fills a new int64 tensor with uniform values in [0, high).
func RandomInts(rng *rand.Rand, high int64, shape ...int) *Tensor {
	t := New(Int64, shape...)
	for i := range t.i64 {
		t.i64[i] = rng.Int63n(high)
	}
	return t
}

// AsF64 returns the tensor's contents converted element-wise to float64,
// regardless of dtype. Used by reference implementations in tests.
func (t *Tensor) AsF64() []float64 {
	n := t.NumElements()
	out := make([]float64, n)
	switch t.dtype {
	case Float32:
		for i, v := range t.f32 {
			out[i] = float64(v)
		}
	case Float64:
		copy(out, t.f64)
	case Int32:
		for i, v := range t.i32 {
			out[i] = float64(v)
		}
	case Int64:
		for i, v := range t.i64 {
			out[i] = float64(v)
		}
	case Bool:
		for i, v := range t.b {
			if v {
				out[i] = 1
			}
		}
	}
	return out
}

// ToShape interprets a rank-1 integer tensor as a concrete Shape. This is the
// inverse of ShapeTensor and is used when a shape computed by a shape
// function feeds an AllocTensorReg instruction.
func (t *Tensor) ToShape() (Shape, error) {
	if t.Rank() != 1 {
		return nil, fmt.Errorf("tensor: shape tensor must be rank 1, got %v", t.shape)
	}
	out := make(Shape, t.shape[0])
	switch t.dtype {
	case Int64:
		for i, v := range t.i64 {
			if v < 0 {
				return nil, fmt.Errorf("tensor: negative dimension %d in shape tensor", v)
			}
			out[i] = int(v)
		}
	case Int32:
		for i, v := range t.i32 {
			if v < 0 {
				return nil, fmt.Errorf("tensor: negative dimension %d in shape tensor", v)
			}
			out[i] = int(v)
		}
	default:
		return nil, fmt.Errorf("tensor: shape tensor must be integer, got %v", t.dtype)
	}
	return out, nil
}
