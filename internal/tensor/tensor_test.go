package tensor

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDTypeSizeAndString(t *testing.T) {
	cases := []struct {
		dt   DType
		size int
		name string
	}{
		{Float32, 4, "float32"},
		{Float64, 8, "float64"},
		{Int32, 4, "int32"},
		{Int64, 8, "int64"},
		{Bool, 1, "bool"},
	}
	for _, c := range cases {
		if c.dt.Size() != c.size {
			t.Errorf("%v.Size() = %d, want %d", c.dt, c.dt.Size(), c.size)
		}
		if c.dt.String() != c.name {
			t.Errorf("%v.String() = %q, want %q", c.dt, c.dt.String(), c.name)
		}
		back, err := ParseDType(c.name)
		if err != nil || back != c.dt {
			t.Errorf("ParseDType(%q) = %v, %v", c.name, back, err)
		}
	}
	if _, err := ParseDType("complex128"); err == nil {
		t.Error("ParseDType accepted unknown dtype")
	}
}

func TestShapeBasics(t *testing.T) {
	s := Shape{2, 3, 4}
	if s.NumElements() != 24 {
		t.Errorf("NumElements = %d, want 24", s.NumElements())
	}
	if s.Rank() != 3 {
		t.Errorf("Rank = %d", s.Rank())
	}
	if got := s.String(); got != "(2, 3, 4)" {
		t.Errorf("String = %q", got)
	}
	if !s.Equal(Shape{2, 3, 4}) || s.Equal(Shape{2, 3}) || s.Equal(Shape{2, 3, 5}) {
		t.Error("Equal misbehaves")
	}
	st := s.Strides()
	want := []int{12, 4, 1}
	for i := range want {
		if st[i] != want[i] {
			t.Errorf("Strides = %v, want %v", st, want)
		}
	}
	c := s.Clone()
	c[0] = 99
	if s[0] != 2 {
		t.Error("Clone aliases original")
	}
	var scalar Shape
	if scalar.NumElements() != 1 {
		t.Errorf("scalar NumElements = %d, want 1", scalar.NumElements())
	}
	zero := Shape{3, 0, 2}
	if zero.NumElements() != 0 {
		t.Errorf("zero-dim NumElements = %d, want 0", zero.NumElements())
	}
	if (Shape{-1, 2}).Valid() {
		t.Error("negative shape reported valid")
	}
}

func TestBroadcastShapes(t *testing.T) {
	cases := []struct {
		a, b, want Shape
		ok         bool
	}{
		{Shape{5, 1}, Shape{3}, Shape{5, 3}, true},
		{Shape{2, 3}, Shape{2, 3}, Shape{2, 3}, true},
		{Shape{1}, Shape{7, 4}, Shape{7, 4}, true},
		{Shape{}, Shape{2, 2}, Shape{2, 2}, true},
		{Shape{4, 1, 6}, Shape{5, 1}, Shape{4, 5, 6}, true},
		{Shape{3}, Shape{4}, nil, false},
		{Shape{2, 3}, Shape{3, 3}, nil, false},
	}
	for _, c := range cases {
		got, err := BroadcastShapes(c.a, c.b)
		if c.ok {
			if err != nil {
				t.Errorf("BroadcastShapes(%v, %v) error: %v", c.a, c.b, err)
				continue
			}
			if !got.Equal(c.want) {
				t.Errorf("BroadcastShapes(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
			}
		} else if err == nil {
			t.Errorf("BroadcastShapes(%v, %v) = %v, want error", c.a, c.b, got)
		}
	}
}

func TestBroadcastCommutative(t *testing.T) {
	// Property: broadcasting is commutative where defined.
	f := func(dims []uint8) bool {
		if len(dims) == 0 {
			return true
		}
		a := make(Shape, 0)
		b := make(Shape, 0)
		for i, d := range dims {
			v := int(d%3) + 1 // dims in 1..3 so broadcasts often succeed
			if i%2 == 0 {
				a = append(a, v)
			} else {
				b = append(b, v)
			}
		}
		r1, e1 := BroadcastShapes(a, b)
		r2, e2 := BroadcastShapes(b, a)
		if (e1 == nil) != (e2 == nil) {
			return false
		}
		if e1 != nil {
			return true
		}
		return r1.Equal(r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNewAndAccessors(t *testing.T) {
	for _, dt := range []DType{Float32, Float64, Int32, Int64, Bool} {
		tt := New(dt, 2, 3)
		if tt.DType() != dt || tt.NumElements() != 6 || tt.Rank() != 2 {
			t.Errorf("New(%v) metadata wrong", dt)
		}
		if tt.NumBytes() != 6*dt.Size() {
			t.Errorf("NumBytes(%v) = %d", dt, tt.NumBytes())
		}
		tt.SetAt(1, 1, 2)
		if tt.At(1, 2) != 1 {
			t.Errorf("At after SetAt (%v) = %v", dt, tt.At(1, 2))
		}
		if tt.At(0, 0) != 0 {
			t.Errorf("zero init broken for %v", dt)
		}
	}
}

func TestAccessorPanicsOnWrongDType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("F32 on int64 tensor did not panic")
		}
	}()
	New(Int64, 2).F32()
}

func TestFromConstructorsValidateLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromF32 with mismatched length did not panic")
		}
	}()
	FromF32([]float32{1, 2, 3}, 2, 2)
}

func TestCloneIndependence(t *testing.T) {
	a := FromF32([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.F32()[0] = 99
	if a.F32()[0] != 1 {
		t.Error("Clone shares storage")
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone not equal to original")
	}
}

func TestReshape(t *testing.T) {
	a := FromF32([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b, err := a.Reshape(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Shape().Equal(Shape{3, 2}) {
		t.Errorf("shape = %v", b.Shape())
	}
	// Storage is shared: reshape must not copy.
	b.F32()[0] = 42
	if a.F32()[0] != 42 {
		t.Error("Reshape copied storage")
	}
	c, err := a.Reshape(-1, 2)
	if err != nil || !c.Shape().Equal(Shape{3, 2}) {
		t.Errorf("Reshape(-1, 2) = %v, %v", c.Shape(), err)
	}
	if _, err := a.Reshape(4, 2); err == nil {
		t.Error("incompatible reshape accepted")
	}
	if _, err := a.Reshape(-1, -1); err == nil {
		t.Error("double -1 reshape accepted")
	}
	if _, err := a.Reshape(-1, 4); err == nil {
		t.Error("non-divisible -1 reshape accepted")
	}
}

func TestEqualAndAllClose(t *testing.T) {
	a := FromF32([]float32{1, 2}, 2)
	b := FromF32([]float32{1, 2.00001}, 2)
	if a.Equal(b) {
		t.Error("Equal ignored difference")
	}
	if !a.AllClose(b, 1e-5, 1e-5) {
		t.Error("AllClose too strict")
	}
	if a.AllClose(FromF32([]float32{1, 3}, 2), 1e-5, 1e-5) {
		t.Error("AllClose too lax")
	}
	if a.Equal(FromF32([]float32{1, 2}, 1, 2)) {
		t.Error("Equal ignored shape")
	}
	if a.Equal(FromF64([]float64{1, 2}, 2)) {
		t.Error("Equal ignored dtype")
	}
	nan := FromF32([]float32{float32(math.NaN())}, 1)
	if !nan.AllClose(nan.Clone(), 0, 0) {
		t.Error("AllClose should treat matching NaNs as close")
	}
	if nan.AllClose(FromF32([]float32{0}, 1), 0, 0) {
		t.Error("AllClose NaN vs 0 should differ")
	}
}

func TestFillAndRandom(t *testing.T) {
	a := New(Int64, 4)
	a.Fill(7)
	for _, v := range a.I64() {
		if v != 7 {
			t.Fatal("Fill failed")
		}
	}
	rng := rand.New(rand.NewSource(1))
	r := Random(rng, 0.5, 3, 3)
	for _, v := range r.F32() {
		if v < -0.5 || v >= 0.5 {
			t.Fatalf("Random out of range: %v", v)
		}
	}
	ri := RandomInts(rng, 10, 5)
	for _, v := range ri.I64() {
		if v < 0 || v >= 10 {
			t.Fatalf("RandomInts out of range: %v", v)
		}
	}
}

func TestShapeTensorRoundTrip(t *testing.T) {
	s := Shape{4, 1, 7}
	st := ShapeTensor(s)
	back, err := st.ToShape()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s) {
		t.Errorf("round trip = %v", back)
	}
	if _, err := New(Float32, 3).ToShape(); err == nil {
		t.Error("float shape tensor accepted")
	}
	if _, err := New(Int64, 2, 2).ToShape(); err == nil {
		t.Error("rank-2 shape tensor accepted")
	}
	if _, err := FromI64([]int64{-1}, 1).ToShape(); err == nil {
		t.Error("negative dim accepted")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tensors := []*Tensor{
		Random(rng, 1, 4, 5),
		RandomInts(rng, 1000, 7),
		FromBool([]bool{true, false, true}, 3),
		FromF64([]float64{math.Pi, -math.E}, 2),
		FromI32([]int32{-5, 0, 5}, 3),
		Scalar(3.5),
		New(Float32, 0), // zero-element tensor
	}
	for _, orig := range tensors {
		var buf bytes.Buffer
		if _, err := orig.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo(%v): %v", orig, err)
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("ReadFrom(%v): %v", orig, err)
		}
		if !got.Equal(orig) {
			t.Errorf("round trip mismatch for %v", orig)
		}
	}
}

func TestSerializePropertyRoundTrip(t *testing.T) {
	f := func(vals []float32) bool {
		tt := FromF32(append([]float32{}, vals...), len(vals))
		var buf bytes.Buffer
		if _, err := tt.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			return false
		}
		// NaNs round-trip bit-exactly because encoding uses Float32bits.
		for i := range vals {
			if math.Float32bits(got.F32()[i]) != math.Float32bits(vals[i]) {
				return false
			}
		}
		return got.Shape().Equal(Shape{len(vals)})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeserializeCorruptInput(t *testing.T) {
	bad := [][]byte{
		{},
		{99, 0, 0, 0, 0},         // bad dtype
		{0, 255, 255, 255, 255},  // implausible rank
		{0, 1, 0, 0, 0},          // truncated dims
		{0, 0, 0, 0, 0, 9, 9, 9}, // truncated count
	}
	for i, b := range bad {
		if _, err := ReadFrom(bytes.NewReader(b)); err == nil {
			t.Errorf("case %d: corrupt input accepted", i)
		}
	}
	// Count/shape mismatch.
	var buf bytes.Buffer
	tt := FromF32([]float32{1, 2}, 2)
	if _, err := tt.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[5+8] = 7 // overwrite element count
	if _, err := ReadFrom(bytes.NewReader(raw)); err == nil {
		t.Error("count mismatch accepted")
	}
}

func TestAtBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-bounds At did not panic")
		}
	}()
	New(Float32, 2, 2).At(2, 0)
}

func TestAsF64(t *testing.T) {
	b := FromBool([]bool{true, false}, 2)
	got := b.AsF64()
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("AsF64(bool) = %v", got)
	}
	i := FromI64([]int64{-3, 9}, 2)
	got = i.AsF64()
	if got[0] != -3 || got[1] != 9 {
		t.Errorf("AsF64(int64) = %v", got)
	}
}

func TestStringFormat(t *testing.T) {
	tt := New(Float32, 2, 3)
	if got := tt.String(); got != "Tensor[(2, 3), float32]" {
		t.Errorf("String = %q", got)
	}
}
