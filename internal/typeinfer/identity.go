package typeinfer

import (
	"sort"

	"nimble/internal/ir"
)

// IdentityReport summarizes the Any-identity analysis for a function: which
// symbolic dimension classes exist and how many expression sites reference
// each. The codegen layer consults it to share one residue-dispatch table
// across all kernels whose symbolic dimension belongs to the same class
// (§4.1: "we can use this analysis in the downstream compilation to generate
// shape-specialized code during codegen").
type IdentityReport struct {
	// Classes maps symbolic id -> number of expression sites whose checked
	// type mentions that id.
	Classes map[int]int
}

// SymClasses returns the symbolic ids in ascending order.
func (r *IdentityReport) SymClasses() []int {
	out := make([]int, 0, len(r.Classes))
	for s := range r.Classes {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// SharedClasses returns ids referenced by more than one site — the dims
// provably identical across multiple tensors.
func (r *IdentityReport) SharedClasses() []int {
	var out []int
	for _, s := range r.SymClasses() {
		if r.Classes[s] > 1 {
			out = append(out, s)
		}
	}
	return out
}

// AnalyzeIdentity runs after inference and reports the symbolic dimension
// classes appearing in a function's checked types.
func AnalyzeIdentity(fn *ir.Function) *IdentityReport {
	rep := &IdentityReport{Classes: map[int]int{}}
	count := func(t ir.Type) {
		var walk func(ir.Type)
		walk = func(x ir.Type) {
			switch tt := x.(type) {
			case *ir.TensorType:
				for _, d := range tt.Dims {
					if d.IsAny() && d.Sym > 0 {
						rep.Classes[d.Sym]++
					}
				}
			case *ir.TupleType:
				for _, f := range tt.Fields {
					walk(f)
				}
			case *ir.FuncType:
				for _, p := range tt.Params {
					walk(p)
				}
				if tt.Ret != nil {
					walk(tt.Ret)
				}
			}
		}
		if t != nil {
			walk(t)
		}
	}
	ir.Visit(fn, func(e ir.Expr) bool {
		if _, isFn := e.(*ir.Function); isFn && e != ir.Expr(fn) {
			// Closure types are analyzed through their own sites.
			count(e.CheckedType())
			return true
		}
		if _, isOp := e.(*ir.OpRef); isOp {
			return true // operator function types double-count arguments
		}
		count(e.CheckedType())
		return true
	})
	return rep
}
