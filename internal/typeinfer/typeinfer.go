// Package typeinfer implements Nimble's dynamic type inference (§4.1): it
// checks and infers tensor types whose dimensions may be Any, propagating
// unknown dimensions through operator type relations, joining control-flow
// branches in the sub-shape lattice, and deferring checks that cannot be
// decided statically to runtime (gradual typing). It also performs the
// Any-identity analysis: Any dimensions that provably denote the same
// runtime extent share a symbolic id, which the codegen layer uses to share
// residue-dispatch tables between kernels.
package typeinfer

import (
	"fmt"

	"nimble/internal/ir"
)

// InferModule type-checks every function in the module, attaching checked
// types to all expression nodes. Functions may be mutually recursive: their
// signatures (from annotations) are registered before any body is inferred.
func InferModule(m *ir.Module) error {
	inf := &inferencer{
		mod:     m,
		sigs:    map[string]*ir.FuncType{},
		nextSym: 1,
	}
	// First pass: collect signatures from annotations so recursive calls
	// (Tree-LSTM's recursion over the Tree ADT) resolve without inferring
	// callee bodies.
	for _, name := range m.FuncNames() {
		fn := m.Funcs[name]
		sig, err := inf.signatureOf(name, fn)
		if err != nil {
			return err
		}
		inf.sigs[name] = sig
	}
	// Second pass: infer bodies and check them against declared returns.
	for _, name := range m.FuncNames() {
		fn := m.Funcs[name]
		if err := inf.inferFunction(name, fn); err != nil {
			return err
		}
	}
	return nil
}

// InferFunc type-checks a standalone function (used by tests and by passes
// that synthesize helper functions).
func InferFunc(fn *ir.Function) error {
	inf := &inferencer{mod: ir.NewModule(), sigs: map[string]*ir.FuncType{}, nextSym: 1}
	return inf.inferFunction("<anon>", fn)
}

type inferencer struct {
	mod     *ir.Module
	sigs    map[string]*ir.FuncType
	nextSym int
}

// freshSym allocates a new symbolic identity class for an Any dimension.
func (inf *inferencer) freshSym() int {
	s := inf.nextSym
	inf.nextSym++
	return s
}

// signatureOf derives a function's type from its annotations. Parameters
// must be annotated (models always annotate inputs); anonymous Any dims in
// parameter annotations are assigned fresh symbolic identities here, seeding
// the identity analysis. The return annotation may be nil for
// non-recursive functions (it is then discovered during body inference).
func (inf *inferencer) signatureOf(name string, fn *ir.Function) (*ir.FuncType, error) {
	params := make([]ir.Type, len(fn.Params))
	for i, p := range fn.Params {
		if p.TypeAnn == nil {
			return nil, fmt.Errorf("typeinfer: %s: parameter %q lacks a type annotation", name, p.Name)
		}
		p.TypeAnn = inf.symbolize(p.TypeAnn)
		params[i] = p.TypeAnn
	}
	return &ir.FuncType{Params: params, Ret: fn.RetAnn}, nil
}

// symbolize replaces anonymous Any dims in a type with fresh symbolic ids.
func (inf *inferencer) symbolize(t ir.Type) ir.Type {
	switch tt := t.(type) {
	case *ir.TensorType:
		dims := make([]ir.Dim, len(tt.Dims))
		changed := false
		for i, d := range tt.Dims {
			if d.IsAny() && d.Sym == 0 {
				dims[i] = ir.SymDim(inf.freshSym())
				changed = true
			} else {
				dims[i] = d
			}
		}
		if !changed {
			return tt
		}
		return &ir.TensorType{Dims: dims, DType: tt.DType}
	case *ir.TupleType:
		fields := make([]ir.Type, len(tt.Fields))
		for i, f := range tt.Fields {
			fields[i] = inf.symbolize(f)
		}
		return &ir.TupleType{Fields: fields}
	default:
		return t
	}
}

func (inf *inferencer) inferFunction(name string, fn *ir.Function) error {
	env := map[*ir.Var]ir.Type{}
	for _, p := range fn.Params {
		if p.TypeAnn == nil {
			return fmt.Errorf("typeinfer: %s: parameter %q lacks a type annotation", name, p.Name)
		}
		p.TypeAnn = inf.symbolize(p.TypeAnn)
		env[p] = p.TypeAnn
		p.SetCheckedType(p.TypeAnn)
	}
	bodyT, err := inf.infer(fn.Body, env)
	if err != nil {
		return fmt.Errorf("typeinfer: %s: %w", name, err)
	}
	if fn.RetAnn != nil {
		if !assignable(bodyT, fn.RetAnn) {
			return fmt.Errorf("typeinfer: %s: body type %s not assignable to declared return %s", name, bodyT, fn.RetAnn)
		}
	} else {
		fn.RetAnn = bodyT
	}
	params := make([]ir.Type, len(fn.Params))
	for i, p := range fn.Params {
		params[i] = p.TypeAnn
	}
	fn.SetCheckedType(&ir.FuncType{Params: params, Ret: fn.RetAnn})
	if sig, ok := inf.sigs[name]; ok && sig.Ret == nil {
		sig.Ret = fn.RetAnn
	}
	return nil
}

// assignable implements sub-shaping assignability across all type kinds.
func assignable(from, to ir.Type) bool {
	if from == nil || to == nil {
		return false
	}
	if ft, ok := from.(*ir.TensorType); ok {
		if tt, ok := to.(*ir.TensorType); ok {
			return ft.AssignableTo(tt)
		}
		return false
	}
	if ft, ok := from.(*ir.TupleType); ok {
		tt, ok := to.(*ir.TupleType)
		if !ok || len(ft.Fields) != len(tt.Fields) {
			return false
		}
		for i := range ft.Fields {
			if !assignable(ft.Fields[i], tt.Fields[i]) {
				return false
			}
		}
		return true
	}
	return from.EqualType(to)
}

// join computes the least upper bound of two types in the sub-shape lattice,
// used at control-flow merges (If branches, Match clauses): equal dims stay,
// conflicting or unknown dims widen to Any. A growing-tensor loop — the
// paper's "program which grows a tensor on each loop iteration" decoder
// example — types precisely because the loop-carried value joins (n, d) with
// (n+1, d) into (Any, d).
func join(a, b ir.Type) (ir.Type, error) {
	if ta, ok := a.(*ir.TensorType); ok {
		tb, ok := b.(*ir.TensorType)
		if !ok {
			return nil, fmt.Errorf("typeinfer: cannot join %s with %s", a, b)
		}
		if ta.DType != tb.DType {
			return nil, fmt.Errorf("typeinfer: cannot join dtypes %s and %s", ta.DType, tb.DType)
		}
		if len(ta.Dims) != len(tb.Dims) {
			return nil, fmt.Errorf("typeinfer: cannot join ranks %d and %d (dynamic rank unsupported)", len(ta.Dims), len(tb.Dims))
		}
		dims := make([]ir.Dim, len(ta.Dims))
		for i := range dims {
			da, db := ta.Dims[i], tb.Dims[i]
			switch {
			case da.Equal(db):
				dims[i] = da
			case da.IsAny() && db.IsAny():
				dims[i] = ir.AnyDim() // different identities: widen to anonymous
			default:
				dims[i] = ir.AnyDim()
			}
		}
		return &ir.TensorType{Dims: dims, DType: ta.DType}, nil
	}
	if ta, ok := a.(*ir.TupleType); ok {
		tb, ok := b.(*ir.TupleType)
		if !ok || len(ta.Fields) != len(tb.Fields) {
			return nil, fmt.Errorf("typeinfer: cannot join %s with %s", a, b)
		}
		fields := make([]ir.Type, len(ta.Fields))
		for i := range fields {
			f, err := join(ta.Fields[i], tb.Fields[i])
			if err != nil {
				return nil, err
			}
			fields[i] = f
		}
		return &ir.TupleType{Fields: fields}, nil
	}
	if !a.EqualType(b) {
		return nil, fmt.Errorf("typeinfer: cannot join %s with %s", a, b)
	}
	return a, nil
}

func (inf *inferencer) infer(e ir.Expr, env map[*ir.Var]ir.Type) (ir.Type, error) {
	t, err := inf.inferInner(e, env)
	if err != nil {
		return nil, err
	}
	e.SetCheckedType(t)
	return t, nil
}

func (inf *inferencer) inferInner(e ir.Expr, env map[*ir.Var]ir.Type) (ir.Type, error) {
	switch n := e.(type) {
	case *ir.Var:
		t, ok := env[n]
		if !ok {
			if n.TypeAnn != nil {
				return n.TypeAnn, nil
			}
			return nil, fmt.Errorf("unbound variable %%%s", n.Name)
		}
		return t, nil

	case *ir.GlobalVar:
		sig, ok := inf.sigs[n.Name]
		if !ok {
			return nil, fmt.Errorf("unknown global @%s", n.Name)
		}
		return sig, nil

	case *ir.Constant:
		dims := make([]ir.Dim, n.Value.Rank())
		for i, d := range n.Value.Shape() {
			dims[i] = ir.StaticDim(d)
		}
		return &ir.TensorType{Dims: dims, DType: n.Value.DType()}, nil

	case *ir.OpRef:
		// Bare operator references only appear as callees; give them an
		// opaque function type.
		return &ir.FuncType{}, nil

	case *ir.CtorRef:
		return &ir.FuncType{Params: n.Ctor.Fields, Ret: n.Ctor.Def.Type()}, nil

	case *ir.Call:
		return inf.inferCall(n, env)

	case *ir.Function:
		// Function literal (closure): parameters must be annotated.
		inner := make(map[*ir.Var]ir.Type, len(env)+len(n.Params))
		for k, v := range env {
			inner[k] = v
		}
		params := make([]ir.Type, len(n.Params))
		for i, p := range n.Params {
			if p.TypeAnn == nil {
				return nil, fmt.Errorf("closure parameter %q lacks a type annotation", p.Name)
			}
			p.TypeAnn = inf.symbolize(p.TypeAnn)
			inner[p] = p.TypeAnn
			p.SetCheckedType(p.TypeAnn)
			params[i] = p.TypeAnn
		}
		bodyT, err := inf.infer(n.Body, inner)
		if err != nil {
			return nil, err
		}
		if n.RetAnn != nil && !assignable(bodyT, n.RetAnn) {
			return nil, fmt.Errorf("closure body %s not assignable to %s", bodyT, n.RetAnn)
		}
		ret := n.RetAnn
		if ret == nil {
			ret = bodyT
		}
		return &ir.FuncType{Params: params, Ret: ret}, nil

	case *ir.Let:
		vt, err := inf.infer(n.Value, env)
		if err != nil {
			return nil, err
		}
		if n.Bound.TypeAnn != nil && !assignable(vt, n.Bound.TypeAnn) {
			return nil, fmt.Errorf("let %%%s: value %s not assignable to annotation %s", n.Bound.Name, vt, n.Bound.TypeAnn)
		}
		n.Bound.SetCheckedType(vt)
		saved, had := env[n.Bound]
		env[n.Bound] = vt
		bodyT, err := inf.infer(n.Body, env)
		if had {
			env[n.Bound] = saved
		} else {
			delete(env, n.Bound)
		}
		if err != nil {
			return nil, err
		}
		return bodyT, nil

	case *ir.If:
		condT, err := inf.infer(n.Cond, env)
		if err != nil {
			return nil, err
		}
		ct, ok := condT.(*ir.TensorType)
		if !ok || ct.Rank() != 0 {
			return nil, fmt.Errorf("if condition must be a scalar, got %s", condT)
		}
		thenT, err := inf.infer(n.Then, env)
		if err != nil {
			return nil, err
		}
		elseT, err := inf.infer(n.Else, env)
		if err != nil {
			return nil, err
		}
		return join(thenT, elseT)

	case *ir.Tuple:
		fields := make([]ir.Type, len(n.Fields))
		for i, f := range n.Fields {
			t, err := inf.infer(f, env)
			if err != nil {
				return nil, err
			}
			fields[i] = t
		}
		return &ir.TupleType{Fields: fields}, nil

	case *ir.TupleGet:
		tt, err := inf.infer(n.Tuple, env)
		if err != nil {
			return nil, err
		}
		tup, ok := tt.(*ir.TupleType)
		if !ok {
			return nil, fmt.Errorf("tuple projection on non-tuple %s", tt)
		}
		if n.Index < 0 || n.Index >= len(tup.Fields) {
			return nil, fmt.Errorf("tuple index %d out of range for %s", n.Index, tt)
		}
		return tup.Fields[n.Index], nil

	case *ir.Match:
		return inf.inferMatch(n, env)

	default:
		return nil, fmt.Errorf("cannot infer %s", ir.ExprKind(e))
	}
}

func (inf *inferencer) inferCall(n *ir.Call, env map[*ir.Var]ir.Type) (ir.Type, error) {
	argTypes := make([]ir.Type, len(n.Args))
	for i, a := range n.Args {
		t, err := inf.infer(a, env)
		if err != nil {
			return nil, err
		}
		argTypes[i] = t
	}
	switch callee := n.Callee.(type) {
	case *ir.OpRef:
		op := callee.Op
		if op.NumInputs >= 0 && op.NumInputs != len(n.Args) {
			return nil, fmt.Errorf("%s expects %d inputs, got %d", op.Name, op.NumInputs, len(n.Args))
		}
		if op.Rel == nil {
			return nil, fmt.Errorf("%s has no type relation", op.Name)
		}
		out, err := op.Rel(argTypes, n.Attrs)
		if err != nil {
			return nil, err
		}
		callee.SetCheckedType(&ir.FuncType{Params: argTypes, Ret: out})
		return out, nil

	case *ir.CtorRef:
		c := callee.Ctor
		if len(argTypes) != len(c.Fields) {
			return nil, fmt.Errorf("constructor %s expects %d fields, got %d", c.Name, len(c.Fields), len(argTypes))
		}
		for i := range argTypes {
			if !assignable(argTypes[i], c.Fields[i]) {
				return nil, fmt.Errorf("constructor %s field %d: %s not assignable to %s", c.Name, i, argTypes[i], c.Fields[i])
			}
		}
		callee.SetCheckedType(&ir.FuncType{Params: c.Fields, Ret: c.Def.Type()})
		return c.Def.Type(), nil

	default:
		calleeT, err := inf.infer(n.Callee, env)
		if err != nil {
			return nil, err
		}
		ft, ok := calleeT.(*ir.FuncType)
		if !ok {
			return nil, fmt.Errorf("calling non-function of type %s", calleeT)
		}
		if len(ft.Params) != len(argTypes) {
			return nil, fmt.Errorf("call arity %d does not match %s", len(argTypes), ft)
		}
		for i := range argTypes {
			if !assignable(argTypes[i], ft.Params[i]) {
				return nil, fmt.Errorf("argument %d: %s not assignable to %s", i, argTypes[i], ft.Params[i])
			}
		}
		if ft.Ret == nil {
			return nil, fmt.Errorf("recursive call requires an annotated return type")
		}
		return ft.Ret, nil
	}
}

func (inf *inferencer) inferMatch(n *ir.Match, env map[*ir.Var]ir.Type) (ir.Type, error) {
	dataT, err := inf.infer(n.Data, env)
	if err != nil {
		return nil, err
	}
	adt, ok := dataT.(*ir.ADTType)
	if !ok {
		return nil, fmt.Errorf("match on non-ADT type %s", dataT)
	}
	if len(n.Clauses) == 0 {
		return nil, fmt.Errorf("match with no clauses")
	}
	var result ir.Type
	covered := map[int]bool{}
	total := false
	for _, c := range n.Clauses {
		inner := make(map[*ir.Var]ir.Type, len(env)+2)
		for k, v := range env {
			inner[k] = v
		}
		if err := inf.bindPattern(c.Pattern, adt, inner, covered, &total); err != nil {
			return nil, err
		}
		bt, err := inf.infer(c.Body, inner)
		if err != nil {
			return nil, err
		}
		if result == nil {
			result = bt
		} else {
			result, err = join(result, bt)
			if err != nil {
				return nil, err
			}
		}
	}
	if !total && len(covered) < len(adt.Def.Constructors) {
		return nil, fmt.Errorf("match on %s is not exhaustive: %d of %d constructors covered", adt.Def.Name, len(covered), len(adt.Def.Constructors))
	}
	return result, nil
}

func (inf *inferencer) bindPattern(p *ir.Pattern, t ir.Type, env map[*ir.Var]ir.Type, covered map[int]bool, total *bool) error {
	switch p.Kind {
	case ir.PatWildcard:
		*total = true
		return nil
	case ir.PatVar:
		*total = true
		env[p.Var] = t
		p.Var.SetCheckedType(t)
		return nil
	case ir.PatCtor:
		adt, ok := t.(*ir.ADTType)
		if !ok {
			return fmt.Errorf("constructor pattern %s against non-ADT %s", p.Ctor.Name, t)
		}
		if p.Ctor.Def != adt.Def {
			return fmt.Errorf("constructor %s does not belong to %s", p.Ctor.Name, adt.Def.Name)
		}
		if len(p.Sub) != len(p.Ctor.Fields) {
			return fmt.Errorf("constructor %s has %d fields, pattern binds %d", p.Ctor.Name, len(p.Ctor.Fields), len(p.Sub))
		}
		covered[p.Ctor.Tag] = true
		for i, sub := range p.Sub {
			subTotal := false
			if err := inf.bindPattern(sub, p.Ctor.Fields[i], env, map[int]bool{}, &subTotal); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("unknown pattern kind %d", p.Kind)
}
