package typeinfer

import (
	"strings"
	"testing"

	"nimble/internal/ir"
	"nimble/internal/tensor"
)

const anyd = ir.DimAny

func mustInfer(t *testing.T, fn *ir.Function) {
	t.Helper()
	if err := InferFunc(fn); err != nil {
		t.Fatalf("InferFunc: %v", err)
	}
}

func TestInferStaticDense(t *testing.T) {
	x := ir.NewVar("x", ir.TT(tensor.Float32, 4, 300))
	w := ir.NewVar("w", ir.TT(tensor.Float32, 300, 512))
	fn := ir.NewFunc([]*ir.Var{x, w}, ir.CallOp("dense", x, w), nil)
	mustInfer(t, fn)
	if got := fn.RetAnn.String(); got != "Tensor[(4, 512), float32]" {
		t.Errorf("return = %s", got)
	}
	if fn.Body.CheckedType() == nil {
		t.Error("checked type not attached")
	}
}

func TestInferDynamicDensePropagatesSym(t *testing.T) {
	// x: [Any, 300] — the Any gets a symbolic identity; dense must
	// propagate it to the output row dimension so codegen can share the
	// dispatch table with downstream kernels.
	x := ir.NewVar("x", ir.TT(tensor.Float32, anyd, 300))
	w := ir.NewVar("w", ir.TT(tensor.Float32, 300, 512))
	b := ir.NewBuilder()
	h := b.Op("dense", x, w)
	out := b.Op("sigmoid", h)
	fn := ir.NewFunc([]*ir.Var{x, w}, b.Finish(out), nil)
	mustInfer(t, fn)
	ret := fn.RetAnn.(*ir.TensorType)
	if !ret.Dims[0].IsAny() || ret.Dims[0].Sym == 0 {
		t.Errorf("symbolic identity lost: %s", fn.RetAnn)
	}
	xSym := x.TypeAnn.(*ir.TensorType).Dims[0].Sym
	if ret.Dims[0].Sym != xSym {
		t.Errorf("identity class changed: param %d, ret %d", xSym, ret.Dims[0].Sym)
	}
	rep := AnalyzeIdentity(fn)
	if len(rep.SharedClasses()) == 0 {
		t.Errorf("identity analysis found no shared class: %+v", rep.Classes)
	}
}

func TestInferContaminationExample(t *testing.T) {
	// The §4.1 example: arange yields (Any,), broadcast_add against (5, 1)
	// yields (5, Any).
	five := ir.NewVar("five", ir.TT(tensor.Float32, 5, 1))
	b := ir.NewBuilder()
	r := b.Op("arange", ir.ConstScalar(0), ir.ConstScalar(10), ir.ConstScalar(1))
	out := b.Op("add", five, r)
	fn := ir.NewFunc([]*ir.Var{five}, b.Finish(out), nil)
	mustInfer(t, fn)
	if got := fn.RetAnn.String(); got != "Tensor[(5, Any), float32]" {
		t.Errorf("return = %s", got)
	}
}

func TestInferIfJoin(t *testing.T) {
	// Branches with different static extents join to Any (sub-shape lattice
	// least upper bound) — the typed form of a growing decoder loop.
	x := ir.NewVar("x", ir.TT(tensor.Float32, 2, 4))
	cond := ir.NewVar("c", ir.BoolType())
	grow := ir.CallOpAttrs("concat", ir.Attrs{"axis": 0}, x, x) // (4, 4)
	e := &ir.If{Cond: cond, Then: grow, Else: x}
	fn := ir.NewFunc([]*ir.Var{x, cond}, e, nil)
	mustInfer(t, fn)
	if got := fn.RetAnn.String(); got != "Tensor[(Any, 4), float32]" {
		t.Errorf("join = %s", got)
	}
}

func TestInferIfSameTypeStaysStatic(t *testing.T) {
	x := ir.NewVar("x", ir.TT(tensor.Float32, 2, 4))
	cond := ir.NewVar("c", ir.BoolType())
	e := &ir.If{Cond: cond, Then: ir.CallOp("relu", x), Else: ir.CallOp("sigmoid", x)}
	fn := ir.NewFunc([]*ir.Var{x, cond}, e, nil)
	mustInfer(t, fn)
	if got := fn.RetAnn.String(); got != "Tensor[(2, 4), float32]" {
		t.Errorf("same-type join = %s", got)
	}
}

func TestInferErrors(t *testing.T) {
	f32 := tensor.Float32
	x := ir.NewVar("x", ir.TT(f32, 3))
	y := ir.NewVar("y", ir.TT(f32, 4))

	cases := []struct {
		name string
		fn   *ir.Function
		want string
	}{
		{
			"static broadcast mismatch",
			ir.NewFunc([]*ir.Var{x, y}, ir.CallOp("add", x, y), nil),
			"broadcast",
		},
		{
			"missing annotation",
			ir.NewFunc([]*ir.Var{ir.NewVar("u", nil)}, ir.ConstScalar(1), nil),
			"annotation",
		},
		{
			"unbound variable",
			ir.NewFunc([]*ir.Var{x}, ir.CallOp("relu", ir.NewVar("ghost", nil)), nil),
			"unbound",
		},
		{
			"non-scalar condition",
			ir.NewFunc([]*ir.Var{x}, &ir.If{Cond: x, Then: x, Else: x}, nil),
			"scalar",
		},
		{
			"arity",
			ir.NewFunc([]*ir.Var{x}, ir.CallOp("add", x), nil),
			"inputs",
		},
		{
			"return mismatch",
			ir.NewFunc([]*ir.Var{x}, x, ir.TT(f32, 7)),
			"not assignable",
		},
		{
			"tuple index",
			ir.NewFunc([]*ir.Var{x}, &ir.TupleGet{Tuple: &ir.Tuple{Fields: []ir.Expr{x}}, Index: 3}, nil),
			"out of range",
		},
		{
			"projection on non-tuple",
			ir.NewFunc([]*ir.Var{x}, &ir.TupleGet{Tuple: x, Index: 0}, nil),
			"non-tuple",
		},
	}
	for _, c := range cases {
		err := InferFunc(c.fn)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestInferGradualDeferral(t *testing.T) {
	// (Any,) + (3,) type-checks: whether Any == 3 or Any == 1 holds is only
	// knowable at runtime (gradual typing).
	x := ir.NewVar("x", ir.TT(tensor.Float32, anyd))
	y := ir.NewVar("y", ir.TT(tensor.Float32, 3))
	fn := ir.NewFunc([]*ir.Var{x, y}, ir.CallOp("add", x, y), nil)
	mustInfer(t, fn)
	if got := fn.RetAnn.String(); got != "Tensor[(3), float32]" {
		t.Errorf("deferred broadcast = %s", got)
	}
}

func TestInferLetAndTuple(t *testing.T) {
	x := ir.NewVar("x", ir.TT(tensor.Float32, 2, 2))
	b := ir.NewBuilder()
	h := b.Op("relu", x)
	pair := b.Bind("p", &ir.Tuple{Fields: []ir.Expr{h, x}})
	out := &ir.TupleGet{Tuple: pair, Index: 0}
	fn := ir.NewFunc([]*ir.Var{x}, b.Finish(out), nil)
	mustInfer(t, fn)
	if got := fn.RetAnn.String(); got != "Tensor[(2, 2), float32]" {
		t.Errorf("tuple projection = %s", got)
	}
}

func TestInferModuleRecursion(t *testing.T) {
	// A recursive function over an ADT — the Tree-LSTM shape. Signatures
	// come from annotations, so recursion resolves.
	f32 := tensor.Float32
	leafT := ir.TT(f32, 1, 4)
	leaf := ir.NewConstructor("Leaf", leafT)
	node := ir.NewConstructor("Node", nil, nil) // fields set after typedef exists
	td := ir.NewTypeDef("Tree", leaf, node)
	node.Fields = []ir.Type{td.Type(), td.Type()}

	m := ir.NewModule()
	m.AddTypeDef(td)

	tree := ir.NewVar("tree", td.Type())
	l := ir.NewVar("l", nil)
	r := ir.NewVar("r", nil)
	v := ir.NewVar("v", nil)
	sumTree := &ir.GlobalVar{Name: "sum_tree"}
	body := &ir.Match{Data: tree, Clauses: []*ir.Clause{
		{Pattern: ir.CtorPat(leaf, ir.VarPat(v)), Body: v},
		{Pattern: ir.CtorPat(node, ir.VarPat(l), ir.VarPat(r)),
			Body: ir.CallOp("add",
				ir.NewCall(sumTree, []ir.Expr{l}, nil),
				ir.NewCall(sumTree, []ir.Expr{r}, nil))},
	}}
	fn := ir.NewFunc([]*ir.Var{tree}, body, leafT)
	m.AddFunc("sum_tree", fn)

	main := ir.NewFunc([]*ir.Var{ir.NewVar("t", td.Type())},
		ir.NewCall(&ir.GlobalVar{Name: "sum_tree"}, []ir.Expr{ir.NewVar("t", td.Type())}, nil), nil)
	// Rebuild main so the param var is shared.
	tv := ir.NewVar("t", td.Type())
	main = ir.NewFunc([]*ir.Var{tv}, ir.NewCall(&ir.GlobalVar{Name: "sum_tree"}, []ir.Expr{tv}, nil), nil)
	m.AddFunc("main", main)

	if err := InferModule(m); err != nil {
		t.Fatalf("InferModule: %v", err)
	}
	if got := main.RetAnn.String(); got != "Tensor[(1, 4), float32]" {
		t.Errorf("main return = %s", got)
	}
}

func TestInferMatchExhaustiveness(t *testing.T) {
	f32 := tensor.Float32
	leaf := ir.NewConstructor("Leaf", ir.TT(f32, 1))
	node := ir.NewConstructor("Node", ir.TT(f32, 1))
	td := ir.NewTypeDef("T2", leaf, node)
	x := ir.NewVar("x", td.Type())
	v := ir.NewVar("v", nil)
	partial := &ir.Match{Data: x, Clauses: []*ir.Clause{
		{Pattern: ir.CtorPat(leaf, ir.VarPat(v)), Body: v},
	}}
	err := InferFunc(ir.NewFunc([]*ir.Var{x}, partial, nil))
	if err == nil || !strings.Contains(err.Error(), "exhaustive") {
		t.Errorf("non-exhaustive match accepted: %v", err)
	}
	// Wildcard makes it total.
	v2 := ir.NewVar("v2", nil)
	total := &ir.Match{Data: x, Clauses: []*ir.Clause{
		{Pattern: ir.CtorPat(leaf, ir.VarPat(v2)), Body: v2},
		{Pattern: ir.WildcardPat(), Body: ir.Const(tensor.New(f32, 1))},
	}}
	if err := InferFunc(ir.NewFunc([]*ir.Var{x}, total, nil)); err != nil {
		t.Errorf("total match rejected: %v", err)
	}
}

func TestInferClosure(t *testing.T) {
	f32 := tensor.Float32
	x := ir.NewVar("x", ir.TT(f32, 2))
	// let f = fn(y: T) { add(x, y) } in f(x)
	y := ir.NewVar("y", ir.TT(f32, 2))
	clos := ir.NewFunc([]*ir.Var{y}, ir.CallOp("add", x, y), nil)
	f := ir.NewVar("f", nil)
	body := ir.NewLet(f, clos, ir.NewCall(f, []ir.Expr{x}, nil))
	fn := ir.NewFunc([]*ir.Var{x}, body, nil)
	mustInfer(t, fn)
	if got := fn.RetAnn.String(); got != "Tensor[(2), float32]" {
		t.Errorf("closure call = %s", got)
	}
	// Calling with a wrong arg type fails.
	bad := ir.NewLet(f, clos, ir.NewCall(f, []ir.Expr{ir.Const(tensor.New(f32, 9))}, nil))
	err := InferFunc(ir.NewFunc([]*ir.Var{x}, bad, nil))
	if err == nil {
		t.Error("closure arg mismatch accepted")
	}
}

func TestInferConstant(t *testing.T) {
	c := ir.Const(tensor.New(tensor.Int64, 3, 2))
	fn := ir.NewFunc(nil, c, nil)
	mustInfer(t, fn)
	if got := fn.RetAnn.String(); got != "Tensor[(3, 2), int64]" {
		t.Errorf("constant type = %s", got)
	}
}

func TestIdentityReportOrdering(t *testing.T) {
	rep := &IdentityReport{Classes: map[int]int{3: 1, 1: 5, 2: 2}}
	got := rep.SymClasses()
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("SymClasses = %v", got)
	}
	shared := rep.SharedClasses()
	if len(shared) != 2 || shared[0] != 1 || shared[1] != 2 {
		t.Errorf("SharedClasses = %v", shared)
	}
}
