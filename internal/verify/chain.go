package verify

import (
	"nimble/internal/ir"
	"nimble/internal/tensor"
)

// This file checks the explicit-allocation dialect (post manifest-alloc):
// kill safety, storage-coalescing overlap, loop-carried buffers, and
// planned buffer sizes. The analysis deliberately does not share code with
// internal/passes — it re-derives aliasing and liveness from first
// principles so a planner bug and a verifier bug have to coincide to slip
// through.

// chainScope carries allocation facts across nested let-chains (an If
// branch can write into a buffer its parent allocated). Lookups walk the
// parent links; writes always land in the innermost scope.
type chainScope struct {
	parent *chainScope
	// storageSize maps alloc_storage results to their static byte size
	// (sizeDynamic when runtime-sized).
	storageSize map[*ir.Var]int
	// bufStorage maps alloc_tensor(_reg) results to their storage var.
	bufStorage map[*ir.Var]*ir.Var
	// bufBytes maps buffers to their static byte extent (sizeDynamic when
	// runtime-shaped).
	bufBytes map[*ir.Var]int
	// roots maps a var to the allocation roots it may alias. A var absent
	// from every scope is its own root (params, fresh non-buffer values).
	roots map[*ir.Var][]*ir.Var
}

const sizeDynamic = -1

func newChainScope(parent *chainScope) *chainScope {
	return &chainScope{
		parent:      parent,
		storageSize: map[*ir.Var]int{},
		bufStorage:  map[*ir.Var]*ir.Var{},
		bufBytes:    map[*ir.Var]int{},
		roots:       map[*ir.Var][]*ir.Var{},
	}
}

func (s *chainScope) lookupStorageSize(v *ir.Var) (int, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if sz, ok := sc.storageSize[v]; ok {
			return sz, true
		}
	}
	return 0, false
}

func (s *chainScope) lookupBufStorage(v *ir.Var) (*ir.Var, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if sv, ok := sc.bufStorage[v]; ok {
			return sv, true
		}
	}
	return nil, false
}

func (s *chainScope) lookupBufBytes(v *ir.Var) (int, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if n, ok := sc.bufBytes[v]; ok {
			return n, true
		}
	}
	return 0, false
}

// rootsOf resolves a var to its allocation roots. Unknown vars root
// themselves: a function parameter is a caller-owned buffer in its own
// right.
func (s *chainScope) rootsOf(v *ir.Var) []*ir.Var {
	for sc := s; sc != nil; sc = sc.parent {
		if rs, ok := sc.roots[v]; ok {
			return rs
		}
	}
	return []*ir.Var{v}
}

func (s *chainScope) rootsOfAll(vs []*ir.Var) []*ir.Var {
	seen := map[*ir.Var]bool{}
	var out []*ir.Var
	for _, v := range vs {
		for _, r := range s.rootsOf(v) {
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	return out
}

// tenantEvent records one alloc_tensor(_reg) claiming a storage region.
type tenantEvent struct {
	idx     int
	storage *ir.Var
	buf     *ir.Var
}

// checkChain runs the memory-dialect checks over one let-chain, recursing
// into nested chains (If branches, Match clauses, function literals) with
// the enclosing allocation facts visible.
func (c *moduleChecker) checkChain(e ir.Expr, fnName string, parent *chainScope) {
	s := newChainScope(parent)
	bs, result := splitChain(e)

	uses := make([][]*ir.Var, len(bs))
	for i, b := range bs {
		uses[i] = ir.FreeVars(b.value)
	}
	resultUses := ir.FreeVars(result)

	// Pass A: establish allocation facts and alias roots in binding order,
	// checking per-binding structural invariants (mem.dest, static
	// mem.buffer-size) and recursing into nested chains.
	var tenants []tenantEvent
	kills := map[*ir.Var][]int{} // allocation root -> kill binding indexes
	killVarAt := map[int]*ir.Var{}
	for i, b := range bs {
		call, op := opCall(b.value)
		if op == nil {
			// If/Match/Tuple/projection/bare-var values and calls to global
			// functions or closures may all alias their operands; a global
			// call can even return its own argument.
			c.recurseNested(b.value, fnName, s)
			s.roots[b.v] = s.rootsOfAll(uses[i])
			continue
		}
		pos := "let %" + b.v.Name
		switch op.Name {
		case ir.OpAllocStorage:
			size := call.Attrs.Int("size", -1)
			if size < 0 || len(call.Args) > 0 {
				size = sizeDynamic
			}
			s.storageSize[b.v] = size
			s.roots[b.v] = []*ir.Var{b.v}

		case ir.OpAllocTensor, ir.OpAllocTensorReg:
			s.roots[b.v] = []*ir.Var{b.v}
			s.bufBytes[b.v] = sizeDynamic
			sv, _ := call.Args[0].(*ir.Var)
			if sv != nil {
				s.bufStorage[b.v] = sv
				tenants = append(tenants, tenantEvent{idx: i, storage: sv, buf: b.v})
			}
			if op.Name == ir.OpAllocTensor {
				shape := tensor.Shape(call.Attrs.Ints("shape"))
				dt, err := tensor.ParseDType(call.Attrs.String("dtype", "float32"))
				if err != nil {
					break // type.op catches the malformed attr
				}
				bytes := shape.NumElements() * dt.Size()
				offset := call.Attrs.Int("offset", 0)
				s.bufBytes[b.v] = bytes
				if sv != nil {
					if sz, ok := s.lookupStorageSize(sv); ok && sz != sizeDynamic && offset+bytes > sz {
						c.report("mem.buffer-size", pos,
							"alloc_tensor needs bytes [%d, %d) of storage %%%s, which holds only %d",
							offset, offset+bytes, sv.Name, sz)
					}
				}
			}

		case ir.OpInvokeMut:
			c.checkInvokeMut(call, pos, s)
			nOut := call.Attrs.Int("num_outputs", 1)
			if nOut >= 1 && nOut < len(call.Args) {
				s.roots[b.v] = s.rootsOfAll(varsOf(call.Args[len(call.Args)-nOut:]))
			} else {
				s.roots[b.v] = []*ir.Var{b.v}
			}

		case ir.OpKill:
			if len(call.Args) == 1 {
				if kv, ok := call.Args[0].(*ir.Var); ok {
					killVarAt[i] = kv
					for _, r := range s.rootsOf(kv) {
						kills[r] = append(kills[r], i)
					}
				}
			}
			s.roots[b.v] = nil

		case ir.OpReshapeTensor:
			// Shares the source's storage without moving data.
			if len(call.Args) > 0 {
				s.roots[b.v] = s.rootsOfAll(varsOf(call.Args[:1]))
			}

		case ir.OpDeviceCopy, ir.OpShapeOf, ir.OpInvokeShapeFunc:
			// Clones / derives fresh data; no aliasing.
			s.roots[b.v] = []*ir.Var{b.v}

		default:
			if op.Eval != nil {
				// An ordinary kernel call allocates its own output.
				s.roots[b.v] = []*ir.Var{b.v}
			} else {
				s.roots[b.v] = s.rootsOfAll(uses[i])
			}
		}
	}
	c.recurseNested(result, fnName, s)

	// Pass B: liveness over roots. Kill bindings themselves are not uses.
	rootLastUse := map[*ir.Var]int{}
	escapes := map[*ir.Var]bool{}
	for i, b := range bs {
		if killVarAt[i] != nil {
			continue
		}
		consuming := consumingUse(b.value)
		aliased := inPlaceAliasArg(b.value)
		for _, v := range uses[i] {
			for _, r := range s.rootsOf(v) {
				rootLastUse[r] = i
				if !consuming || v == aliased {
					escapes[r] = true
				}
			}
		}
	}
	resultRoots := map[*ir.Var]bool{}
	for _, r := range s.rootsOfAll(resultUses) {
		resultRoots[r] = true
	}
	loop := selfTailCall(result, fnName)

	// Pass C: kill safety. A kill recycles its buffer's storage, so every
	// root it resolves to must be consumingly dead at that point.
	for i := range bs {
		kv := killVarAt[i]
		if kv == nil {
			continue
		}
		pos := "let %" + bs[i].v.Name
		for _, r := range s.rootsOf(kv) {
			switch {
			case loop && resultRoots[r]:
				c.report("mem.loop-carried", pos,
					"kill of %%%s (root %%%s) which is threaded through the backward self-call: its storage would be recycled across the loop edge",
					kv.Name, r.Name)
			case resultRoots[r]:
				c.report("ssa.use-after-kill", pos,
					"%%%s (root %%%s) is killed but escapes in the chain result",
					kv.Name, r.Name)
			case rootLastUse[r] > i:
				c.report("ssa.use-after-kill", pos,
					"%%%s (root %%%s) is used at a later binding after this kill",
					kv.Name, r.Name)
			case len(kills[r]) > 1 && kills[r][0] != i:
				c.report("ssa.use-after-kill", pos,
					"%%%s (root %%%s) is killed more than once", kv.Name, r.Name)
			case escapes[r]:
				c.report("mem.kill-consuming", pos,
					"kill of %%%s whose root %%%s has a non-consuming (aliasing) use: a later alias would read recycled storage",
					kv.Name, r.Name)
			}
		}
	}

	// Pass D: storage tenancy. A second alloc_tensor on a storage region is
	// only sound when every earlier tenant is provably dead first — the
	// exact contract storage coalescing relies on.
	for ti, t := range tenants {
		for _, prev := range tenants[:ti] {
			if prev.storage != t.storage {
				continue
			}
			pos := "let %" + t.buf.Name
			pr := prev.buf
			switch {
			case loop && resultRoots[pr]:
				c.report("mem.loop-carried", pos,
					"storage %%%s is recycled for %%%s while prior tenant %%%s is threaded through the backward self-call",
					t.storage.Name, t.buf.Name, pr.Name)
			case !killedBefore(kills[pr], t.idx):
				c.report("mem.coalesce-overlap", pos,
					"storage %%%s is reused for %%%s while prior tenant %%%s was never killed",
					t.storage.Name, t.buf.Name, pr.Name)
			case rootLastUse[pr] > t.idx || resultRoots[pr]:
				c.report("mem.coalesce-overlap", pos,
					"storage %%%s is reused for %%%s inside the live range of prior tenant %%%s",
					t.storage.Name, t.buf.Name, pr.Name)
			}
		}
	}
}

// checkInvokeMut validates one invoke_mut binding's destination discipline
// and planned size.
func (c *moduleChecker) checkInvokeMut(call *ir.Call, pos string, s *chainScope) {
	if len(call.Args) < 2 {
		c.report("mem.dest", pos, "invoke_mut needs (op, inputs..., out), got %d args", len(call.Args))
		return
	}
	target, ok := call.Args[0].(*ir.OpRef)
	if !ok {
		c.report("mem.dest", pos, "invoke_mut callee operand is %s, want OpRef", ir.ExprKind(call.Args[0]))
		return
	}
	nOut := call.Attrs.Int("num_outputs", 1)
	if nOut < 1 || nOut > len(call.Args)-1 {
		c.report("mem.dest", pos, "invoke_mut num_outputs %d out of range for %d args", nOut, len(call.Args))
		return
	}
	dests := call.Args[len(call.Args)-nOut:]
	for _, d := range dests {
		if _, isConst := d.(*ir.Constant); isConst {
			c.report("mem.dest", pos,
				"invoke_mut(%s) destination is a shared constant: in-place writes would corrupt every session",
				target.Op.Name)
		}
	}
	if target.Op.InPlace {
		if dests[0] != call.Args[1] {
			c.report("mem.dest", pos,
				"in-place operator %s must write its own first argument, but the destination is a different value",
				target.Op.Name)
		}
	}
	// Planned size: a statically shaped result must fit its planned buffer.
	if nOut == 1 && !target.Op.InPlace {
		tt, ok := call.CheckedType().(*ir.TensorType)
		if !ok {
			return
		}
		n, static := tt.NumElementsUpperBound()
		if !static {
			return
		}
		need := n * tt.DType.Size()
		if dv, ok := dests[0].(*ir.Var); ok {
			if have, known := s.lookupBufBytes(dv); known && have != sizeDynamic && need > have {
				c.report("mem.buffer-size", pos,
					"invoke_mut(%s) writes %d bytes into buffer %%%s planned at %d",
					target.Op.Name, need, dv.Name, have)
			}
		}
	}
}

// recurseNested descends into the sub-chains of a binding value or chain
// result with the enclosing allocation facts visible.
func (c *moduleChecker) recurseNested(e ir.Expr, fnName string, s *chainScope) {
	switch n := e.(type) {
	case *ir.If:
		c.checkChain(n.Then, fnName, s)
		c.checkChain(n.Else, fnName, s)
	case *ir.Match:
		for _, cl := range n.Clauses {
			c.checkChain(cl.Body, fnName, s)
		}
	case *ir.Function:
		c.checkChain(n.Body, fnName, s)
	}
}

func varsOf(es []ir.Expr) []*ir.Var {
	var out []*ir.Var
	for _, e := range es {
		if v, ok := e.(*ir.Var); ok {
			out = append(out, v)
		}
	}
	return out
}

func killedBefore(killIdxs []int, i int) bool {
	for _, k := range killIdxs {
		if k < i {
			return true
		}
	}
	return false
}

// selfTailCall reports whether the chain result re-enters the enclosing
// function — the IR form the bytecode compiler lowers to a backward Goto.
func selfTailCall(result ir.Expr, fnName string) bool {
	call, ok := result.(*ir.Call)
	if !ok {
		return false
	}
	gv, ok := call.Callee.(*ir.GlobalVar)
	return ok && gv.Name == fnName
}

// consumingUse mirrors the memory planner's classification of uses that
// only read their operands (see internal/passes); a buffer is killable only
// when every use is consuming. Re-stated here independently so the verifier
// checks the planner rather than trusting it.
func consumingUse(value ir.Expr) bool {
	_, op := opCall(value)
	if op == nil {
		return false
	}
	switch op.Name {
	case ir.OpInvokeMut, ir.OpShapeOf, ir.OpInvokeShapeFunc, ir.OpDeviceCopy, ir.OpKill:
		return true
	case ir.OpReshapeTensor, ir.OpAllocTensor, ir.OpAllocTensorReg, ir.OpAllocStorage:
		return false
	}
	return op.Eval != nil
}

// inPlaceAliasArg returns the input an in-place invoke_mut both reads and
// overwrites, or nil.
func inPlaceAliasArg(value ir.Expr) *ir.Var {
	call, op := opCall(value)
	if op == nil || op.Name != ir.OpInvokeMut || len(call.Args) < 2 {
		return nil
	}
	target, ok := call.Args[0].(*ir.OpRef)
	if !ok || !target.Op.InPlace {
		return nil
	}
	v, _ := call.Args[1].(*ir.Var)
	return v
}
