package verify_test

// The negative corpus: one hand-mutated module or executable per invariant
// class in the catalog (docs/verifier.md). Each case seeds exactly the bug
// its invariant exists to catch and pins the rendered diagnostic with a
// golden file under testdata/, so a verifier regression shows up as a
// corpus diff, not a silently weaker check. Regenerate with
//
//	go test ./internal/verify/ -run Corpus -update
import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nimble/internal/ir"
	"nimble/internal/tensor"
	"nimble/internal/verify"
	"nimble/internal/vm"
)

var update = flag.Bool("update", false, "rewrite golden diagnostics under testdata/")

// ---- module-corpus builders ----------------------------------------------

func oneFunc(body ir.Expr, params ...*ir.Var) *ir.Module {
	m := ir.NewModule()
	m.AddFunc("main", ir.NewFunc(params, body, nil))
	return m
}

func allocStorage(size int) *ir.Call {
	return ir.CallOpAttrs(ir.OpAllocStorage, ir.Attrs{"size": size, "align": 64})
}

func allocTensor(storage *ir.Var, offset int, dims ...int) *ir.Call {
	return ir.CallOpAttrs(ir.OpAllocTensor,
		ir.Attrs{"shape": dims, "dtype": "float32", "offset": offset}, storage)
}

func invokeMut(opName string, args ...ir.Expr) *ir.Call {
	all := append([]ir.Expr{&ir.OpRef{Op: ir.MustGetOp(opName)}}, args...)
	return ir.NewCall(&ir.OpRef{Op: ir.MustGetOp(ir.OpInvokeMut)}, all, ir.Attrs{"num_outputs": 1})
}

func kill(v *ir.Var) *ir.Call { return ir.CallOp(ir.OpKill, v) }

func chain(bs []ir.Expr, vars []*ir.Var, result ir.Expr) ir.Expr {
	out := result
	for i := len(bs) - 1; i >= 0; i-- {
		out = ir.NewLet(vars[i], bs[i], out)
	}
	return out
}

var memChecks = verify.ModuleChecks{ANF: true, Memory: true}

// ---- executable-corpus builders ------------------------------------------

type exeFn struct {
	name    string
	nparams int
	regs    int
	code    []vm.Instruction
}

func buildExe(fns ...exeFn) *vm.Executable {
	e := vm.NewExecutable()
	for _, f := range fns {
		start := len(e.Code)
		e.Code = append(e.Code, f.code...)
		e.AddFunc(vm.VMFunc{
			Name: f.name, NumParams: f.nparams, RegCount: f.regs,
			Start: start, Len: len(f.code),
		})
	}
	return e
}

// ---- the corpus ----------------------------------------------------------

func corpus() []struct {
	name      string
	invariant string
	err       func() error
} {
	v := func(name string) *ir.Var { return ir.NewVar(name, nil) }
	return []struct {
		name      string
		invariant string
		err       func() error
	}{
		{
			// A binding value referencing a variable no scope defines: the
			// bytecode compiler would emit a read of a register nothing wrote.
			name: "ssa_scope", invariant: "ssa.scope",
			err: func() error {
				x, y, ghost := v("x"), v("y"), v("ghost")
				body := ir.NewLet(y, ir.CallOp("add", x, ghost), y)
				return verify.Module(oneFunc(body, x), "after dce", verify.ModuleChecks{})
			},
		},
		{
			// One Var node bound by two different lets: register assignment
			// would silently merge two distinct values.
			name: "ssa_single_def", invariant: "ssa.single-def",
			err: func() error {
				x, a := v("x"), v("a")
				body := ir.NewLet(a, x, ir.NewLet(a, x, a))
				return verify.Module(oneFunc(body, x), "after dce", verify.ModuleChecks{})
			},
		},
		{
			// A checked type that contradicts the operator's own type
			// relation, plus operands the relation outright rejects.
			name: "type_op", invariant: "type.op",
			err: func() error {
				x1 := ir.NewVar("x1", ir.TT(tensor.Float32, 4))
				x2 := ir.NewVar("x2", ir.TT(tensor.Float32, 4))
				x1.SetCheckedType(ir.TT(tensor.Float32, 4))
				x2.SetCheckedType(ir.TT(tensor.Float32, 4))
				bad := ir.CallOp("add", x1, x2)
				bad.SetCheckedType(ir.TT(tensor.Float32, 8)) // relation says 4

				x3 := ir.NewVar("x3", ir.TT(tensor.Float32, 3))
				x3.SetCheckedType(ir.TT(tensor.Float32, 3))
				rejected := ir.CallOp("add", x1, x3) // 4 vs 3 never broadcasts
				rejected.SetCheckedType(ir.TT(tensor.Float32, 4))

				y, z := v("y"), v("z")
				body := ir.NewLet(y, bad, ir.NewLet(z, rejected, z))
				return verify.Module(oneFunc(body, x1, x2, x3), "after constant-fold", verify.ModuleChecks{})
			},
		},
		{
			// A compound call argument after the anf pass: every downstream
			// pass assumes one operation per binding.
			name: "anf_atomic", invariant: "anf.atomic",
			err: func() error {
				x, y := v("x"), v("y")
				body := ir.NewLet(y, ir.CallOp("add", ir.CallOp("exp", x), x), y)
				return verify.Module(oneFunc(body, x), "after anf", verify.ModuleChecks{ANF: true})
			},
		},
		{
			// Kill, then read: the recycled storage would be handed to the
			// next allocation while the old tensor still reads it.
			name: "ssa_use_after_kill", invariant: "ssa.use-after-kill",
			err: func() error {
				s1, a := v("s1"), v("a")
				s2, o := v("s2"), v("o")
				k, r := v("k"), v("r")
				bs := []ir.Expr{
					allocStorage(16), allocTensor(s1, 0, 4),
					allocStorage(16), allocTensor(s2, 0, 4),
					kill(a),
					invokeMut("add", a, a, o),
				}
				body := chain(bs, []*ir.Var{s1, a, s2, o, k, r}, r)
				return verify.Module(oneFunc(body), "after coalesce-storage", memChecks)
			},
		},
		{
			// The PR 2 bug class, reconstructed: an If merges two buffers
			// into one aliasing value, a kill recycles one side, and the
			// merged alias is read afterwards.
			name: "pr2_alias_kill", invariant: "ssa.use-after-kill",
			err: func() error {
				c := ir.NewVar("c", ir.BoolType())
				s1, a := v("s1"), v("a")
				s2, b := v("s2"), v("b")
				s3, o := v("s3"), v("o")
				t, k, r := v("t"), v("k"), v("r")
				bs := []ir.Expr{
					allocStorage(16), allocTensor(s1, 0, 4),
					allocStorage(16), allocTensor(s2, 0, 4),
					&ir.If{Cond: c, Then: a, Else: b},
					kill(a),
					allocStorage(16), allocTensor(s3, 0, 4),
					invokeMut("add", t, t, o),
				}
				body := chain(bs, []*ir.Var{s1, a, s2, b, t, k, s3, o, r}, r)
				return verify.Module(oneFunc(body, c), "after coalesce-storage", memChecks)
			},
		},
		{
			// Killing a buffer that still has a live non-consuming alias
			// (a reshape view): the view would read recycled storage.
			name: "mem_kill_consuming", invariant: "mem.kill-consuming",
			err: func() error {
				shp := v("shp")
				s1, a := v("s1"), v("a")
				rview, k := v("rview"), v("k")
				s2, o := v("s2"), v("o")
				bs := []ir.Expr{
					allocStorage(16), allocTensor(s1, 0, 4),
					ir.CallOp(ir.OpReshapeTensor, a, shp),
					kill(a),
					allocStorage(16), allocTensor(s2, 0, 4),
				}
				body := chain(bs, []*ir.Var{s1, a, rview, k, s2, o}, o)
				return verify.Module(oneFunc(body, shp), "after coalesce-storage", memChecks)
			},
		},
		{
			// Storage handed to a second tensor while the first tenant was
			// never killed and is still read — the exact overlap the
			// coalescing pass must never create.
			name: "mem_coalesce_overlap", invariant: "mem.coalesce-overlap",
			err: func() error {
				s, a, b, r := v("s"), v("a"), v("b"), v("r")
				bs := []ir.Expr{
					allocStorage(16),
					allocTensor(s, 0, 4),
					allocTensor(s, 0, 4),
					invokeMut("add", a, a, b),
				}
				body := chain(bs, []*ir.Var{s, a, b, r}, r)
				return verify.Module(oneFunc(body), "after coalesce-storage", memChecks)
			},
		},
		{
			// Killing a buffer that is threaded through the backward
			// self-call: the next iteration would read recycled storage.
			name: "mem_loop_carried", invariant: "mem.loop-carried",
			err: func() error {
				s, a, k := v("s"), v("a"), v("k")
				bs := []ir.Expr{
					allocStorage(16), allocTensor(s, 0, 4),
					kill(a),
				}
				tail := ir.NewCall(&ir.GlobalVar{Name: "main"}, []ir.Expr{a}, nil)
				body := chain(bs, []*ir.Var{s, a, k}, tail)
				x := v("x")
				return verify.Module(oneFunc(body, x), "after coalesce-storage", memChecks)
			},
		},
		{
			// A planned buffer smaller than what is stored in it: once via
			// alloc_tensor exceeding its storage, once via invoke_mut writing
			// a statically-larger result than the plan reserved.
			name: "mem_buffer_size", invariant: "mem.buffer-size",
			err: func() error {
				x := ir.NewVar("x", ir.TT(tensor.Float32, 8))
				s1, a := v("s1"), v("a")
				s2, o, r := v("s2"), v("o"), v("r")
				im := invokeMut("add", x, x, o)
				im.SetCheckedType(ir.TT(tensor.Float32, 8)) // 32 bytes into a 16-byte plan
				bs := []ir.Expr{
					allocStorage(8), allocTensor(s1, 0, 4), // 16 bytes into 8
					allocStorage(64), allocTensor(s2, 0, 4),
					im,
				}
				body := chain(bs, []*ir.Var{s1, a, s2, o, r}, r)
				return verify.Module(oneFunc(body, x), "after manifest-alloc", memChecks)
			},
		},
		{
			// invoke_mut destination discipline: an in-place operator aimed
			// at a buffer that is not its own first argument, a shared
			// constant as destination, and a num_outputs no argument backs.
			name: "mem_dest", invariant: "mem.dest",
			err: func() error {
				cache, row, idx, out, x := v("cache"), v("row"), v("idx"), v("out"), v("x")
				r1, r2, r3 := v("r1"), v("r2"), v("r3")
				wrongDest := invokeMut("cache_append", cache, row, idx, out)
				constDest := invokeMut("add", x, x, ir.Const(tensor.New(tensor.Float32, 4)))
				overclaim := ir.NewCall(&ir.OpRef{Op: ir.MustGetOp(ir.OpInvokeMut)},
					[]ir.Expr{&ir.OpRef{Op: ir.MustGetOp("add")}, x, x},
					ir.Attrs{"num_outputs": 5})
				bs := []ir.Expr{wrongDest, constDest, overclaim}
				body := chain(bs, []*ir.Var{r1, r2, r3}, r3)
				return verify.Module(oneFunc(body, cache, row, idx, out, x), "after manifest-alloc", memChecks)
			},
		},
		{
			// Function table lying about the code it owns: one descriptor
			// past the end of the stream, two descriptors claiming the same
			// instructions.
			name: "exe_func_table", invariant: "exe.func-table",
			err: func() error {
				e := buildExe(exeFn{name: "f", nparams: 1, regs: 1,
					code: []vm.Instruction{{Op: vm.OpRet, A: 0}}})
				e.AddFunc(vm.VMFunc{Name: "g", NumParams: 0, RegCount: 1, Start: 0, Len: 5})
				e.AddFunc(vm.VMFunc{Name: "h", NumParams: 0, RegCount: 1, Start: 0, Len: 1})
				return verify.Executable(e, "loaded executable")
			},
		},
		{
			// A register outside the frame the function declared.
			name: "exe_reg_bound", invariant: "exe.reg-bound",
			err: func() error {
				e := buildExe(exeFn{name: "f", nparams: 1, regs: 2, code: []vm.Instruction{
					{Op: vm.OpMove, Dst: 5, A: 0},
					{Op: vm.OpRet, A: 0},
				}})
				return verify.Executable(e, "loaded executable")
			},
		},
		{
			// Reads of registers not defined on every path: once via an If
			// branch that skips the definition, once via the loop back edge,
			// which clears every non-parameter register (recycleLoopFrame).
			name: "exe_reg_undef", invariant: "exe.reg-undef",
			err: func() error {
				e := buildExe(
					exeFn{name: "branch", nparams: 1, regs: 2, code: []vm.Instruction{
						{Op: vm.OpIf, A: 0, B: 0, Off1: 1, Off2: 2},
						{Op: vm.OpLoadConsti, Dst: 1, Imm: 5},
						{Op: vm.OpRet, A: 1}, // r1 undefined on the false path
					}},
					exeFn{name: "loop", nparams: 1, regs: 3, code: []vm.Instruction{
						{Op: vm.OpMove, Dst: 2, A: 1}, // r1 never survives the back edge
						{Op: vm.OpLoadConsti, Dst: 1, Imm: 1},
						{Op: vm.OpIf, A: 0, B: 0, Off1: 1, Off2: 2},
						{Op: vm.OpGoto, B: 1, Off1: -3},
						{Op: vm.OpRet, A: 2},
					}},
				)
				return verify.Executable(e, "loaded executable")
			},
		},
		{
			// Control-flow mutations: an unmarked backward Goto, an If that
			// does not jump strictly forward, and a function whose last
			// instruction falls off the end.
			name: "exe_cfg", invariant: "exe.cfg",
			err: func() error {
				e := buildExe(
					exeFn{name: "back", nparams: 1, regs: 1, code: []vm.Instruction{
						{Op: vm.OpLoadConsti, Dst: 0, Imm: 1},
						{Op: vm.OpGoto, B: 0, Off1: -1},
					}},
					exeFn{name: "spin", nparams: 1, regs: 1, code: []vm.Instruction{
						{Op: vm.OpIf, A: 0, B: 0, Off1: 0, Off2: 1},
						{Op: vm.OpRet, A: 0},
					}},
					exeFn{name: "dropoff", nparams: 1, regs: 1, code: []vm.Instruction{
						{Op: vm.OpMove, Dst: 0, A: 0},
					}},
				)
				return verify.Executable(e, "loaded executable")
			},
		},
		{
			// Dangling table indices: a kernel the executable does not have,
			// an Invoke whose arity contradicts the callee, a constant-pool
			// read past the end.
			name: "exe_index", invariant: "exe.index",
			err: func() error {
				e := buildExe(
					exeFn{name: "f", nparams: 1, regs: 2, code: []vm.Instruction{
						{Op: vm.OpInvokePacked, Dst: 1, Imm: 3, B: 0},
						{Op: vm.OpInvoke, Dst: 1, Imm: 1, Args: []vm.Reg{0}},
						{Op: vm.OpLoadConst, Dst: 1, Imm: 0},
						{Op: vm.OpRet, A: 1},
					}},
					exeFn{name: "g", nparams: 2, regs: 2, code: []vm.Instruction{
						{Op: vm.OpRet, A: 0},
					}},
				)
				return verify.Executable(e, "loaded executable")
			},
		},
		{
			// A stream.emit with no loop around it: the streaming entry
			// would emit exactly once and starve the consumer.
			name: "exe_stream_loop", invariant: "exe.stream-loop",
			err: func() error {
				e := buildExe(exeFn{name: "f", nparams: 1, regs: 2, code: []vm.Instruction{
					{Op: vm.OpInvokePacked, Dst: 1, Imm: 0, B: 0, Args: []vm.Reg{0}},
					{Op: vm.OpRet, A: 1},
				}})
				e.AddKernel(ir.OpStreamEmit, nil)
				return verify.Executable(e, "loaded executable")
			},
		},
		{
			// A tensor view provably larger than the storage it slices.
			name: "exe_storage_size", invariant: "exe.storage-size",
			err: func() error {
				e := buildExe(exeFn{name: "f", nparams: 1, regs: 3, code: []vm.Instruction{
					{Op: vm.OpAllocStorage, Dst: 1, A: -1, Imm: 8},
					{Op: vm.OpAllocTensor, Dst: 2, A: 1, Imm: 0, Shape: []int{4}, DType: uint8(tensor.Float32)},
					{Op: vm.OpRet, A: 2},
				}})
				return verify.Executable(e, "loaded executable")
			},
		},
	}
}

func TestCorpus(t *testing.T) {
	for _, tc := range corpus() {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.err()
			if err == nil {
				t.Fatalf("seeded %s mutation was not caught", tc.invariant)
			}
			var ve *verify.Error
			if !errors.As(err, &ve) {
				t.Fatalf("error is %T, want *verify.Error: %v", err, err)
			}
			got := err.Error() + "\n"
			if !strings.Contains(got, "["+tc.invariant+"]") {
				t.Fatalf("diagnostic does not name invariant %s:\n%s", tc.invariant, got)
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err2 := os.ReadFile(golden)
			if err2 != nil {
				t.Fatalf("missing golden (run with -update): %v", err2)
			}
			if got != string(want) {
				t.Errorf("diagnostic drifted from %s:\n--- want\n%s--- got\n%s", golden, want, got)
			}
		})
	}
}

// TestCorpusCoversCatalog pins that the corpus seeds at least one mutation
// per invariant family, so adding a catalog entry without a negative test
// fails here rather than silently.
func TestCorpusCoversCatalog(t *testing.T) {
	want := []string{
		"ssa.scope", "ssa.single-def", "ssa.use-after-kill",
		"type.op", "anf.atomic",
		"mem.dest", "mem.kill-consuming", "mem.coalesce-overlap",
		"mem.loop-carried", "mem.buffer-size",
		"exe.func-table", "exe.reg-bound", "exe.reg-undef",
		"exe.cfg", "exe.index", "exe.stream-loop", "exe.storage-size",
	}
	have := map[string]bool{}
	for _, tc := range corpus() {
		have[tc.invariant] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("no corpus case seeds a %s violation", id)
		}
	}
}
