package verify

import (
	"fmt"

	"nimble/internal/ir"
	"nimble/internal/tensor"
	"nimble/internal/vm"
)

// Executable statically checks a compiled (or deserialized) executable:
// function-table integrity, register bounds, must-defined dataflow
// (modelling the loop back edge clearing every non-parameter register),
// control-flow sanity, index bounds into the kernel/constant/function
// tables, stream.emit placement, and static storage sizes. stage names the
// artifact for diagnostics ("executable", "loaded executable").
//
// The check runs before any instruction executes, which is what makes it
// safe to apply to untrusted serialized artifacts: a .nexe that trips any
// of these invariants is rejected instead of interpreted.
func Executable(exe *vm.Executable, stage string) error {
	c := &exeChecker{exe: exe}
	c.checkFuncTable()
	for i := range exe.Funcs {
		if c.funcOK[i] {
			c.checkFunc(i)
		}
	}
	return errOrNil(stage, c.violations)
}

type exeChecker struct {
	exe        *vm.Executable
	violations []Violation
	fn         string
	// funcOK marks functions whose table entry is sound enough to scan.
	funcOK []bool
}

func (c *exeChecker) report(invariant string, pc int, format string, args ...interface{}) {
	pos := "func-table"
	if pc >= 0 {
		pos = fmt.Sprintf("pc %d", pc)
	}
	c.violations = append(c.violations, Violation{
		Invariant: invariant,
		Func:      c.fn,
		Pos:       pos,
		Message:   fmt.Sprintf(format, args...),
	})
}

// checkFuncTable enforces exe.func-table: every descriptor covers a real,
// non-overlapping slice of Code, FuncIndex is a consistent name index, and
// parameter counts fit the register file.
func (c *exeChecker) checkFuncTable() {
	exe := c.exe
	c.funcOK = make([]bool, len(exe.Funcs))
	covered := make([]int, len(exe.Code)) // instruction -> owning function + 1
	for i, f := range exe.Funcs {
		c.fn = f.Name
		ok := true
		if f.Start < 0 || f.Len < 1 || f.Start+f.Len > len(exe.Code) {
			c.report("exe.func-table", -1,
				"code range [%d, %d) is outside the %d-instruction stream",
				f.Start, f.Start+f.Len, len(exe.Code))
			ok = false
		}
		if f.NumParams < 0 || f.NumParams > f.RegCount {
			c.report("exe.func-table", -1,
				"%d parameters do not fit the %d-register frame", f.NumParams, f.RegCount)
			ok = false
		}
		if ok {
			for pc := f.Start; pc < f.Start+f.Len; pc++ {
				if covered[pc] != 0 {
					c.report("exe.func-table", pc,
						"code range overlaps function %s", exe.Funcs[covered[pc]-1].Name)
					ok = false
					break
				}
				covered[pc] = i + 1
			}
		}
		if idx, present := exe.FuncIndex[f.Name]; !present || idx != i {
			c.report("exe.func-table", -1,
				"FuncIndex maps %q to %d, expected %d", f.Name, idx, i)
		}
		c.funcOK[i] = ok
	}
	for name, idx := range exe.FuncIndex {
		if idx < 0 || idx >= len(exe.Funcs) {
			c.fn = name
			c.report("exe.func-table", -1, "FuncIndex entry %q -> %d is out of range", name, idx)
		}
	}
}

// checkFunc scans one function's instructions: per-instruction structural
// checks, control flow, then the must-defined register dataflow and the
// static storage-size walk.
func (c *exeChecker) checkFunc(idx int) {
	exe := c.exe
	f := exe.Funcs[idx]
	c.fn = f.Name
	code := exe.Code[f.Start : f.Start+f.Len]

	cfgOK := true
	for local, in := range code {
		c.checkOperands(local, in, f)
		if !c.checkFlow(local, in, f, code) {
			cfgOK = false
		}
	}
	c.checkStreamEmit(code)
	if cfgOK {
		// Dataflow needs a sane CFG to traverse.
		c.checkDefined(f, code)
	}
	c.checkStorageSizes(code)
}

// regs returns every register an instruction reads or writes.
func instrRegs(in vm.Instruction) []vm.Reg {
	rs := make([]vm.Reg, 0, 4+len(in.Args))
	switch in.Op {
	case vm.OpRet:
		rs = append(rs, in.A)
	case vm.OpIf:
		rs = append(rs, in.A, in.B)
	case vm.OpGoto, vm.OpFatal:
	case vm.OpMove, vm.OpGetField, vm.OpGetTag, vm.OpDeviceCopy, vm.OpShapeOf:
		rs = append(rs, in.Dst, in.A)
	case vm.OpAllocTensorReg, vm.OpReshapeTensor:
		rs = append(rs, in.Dst, in.A, in.B)
	case vm.OpInvokeClosure:
		rs = append(rs, in.Dst, in.A)
	case vm.OpAllocStorage:
		rs = append(rs, in.Dst)
		if in.A >= 0 {
			rs = append(rs, in.A)
		}
	case vm.OpAllocTensor:
		rs = append(rs, in.Dst, in.A)
	default:
		rs = append(rs, in.Dst)
	}
	switch in.Op {
	case vm.OpInvoke, vm.OpInvokeClosure, vm.OpInvokePacked, vm.OpAllocADT, vm.OpAllocClosure:
		rs = append(rs, in.Args...)
	}
	return rs
}

// instrUses returns the registers an instruction reads, and instrDef the
// register it writes (-1 for none); together with instrRegs they are the
// verifier's ground-truth model of the interpreter's dispatch loop.
func instrUses(in vm.Instruction) []vm.Reg {
	switch in.Op {
	case vm.OpMove, vm.OpGetField, vm.OpGetTag, vm.OpDeviceCopy, vm.OpShapeOf:
		return []vm.Reg{in.A}
	case vm.OpRet:
		return []vm.Reg{in.A}
	case vm.OpIf:
		return []vm.Reg{in.A, in.B}
	case vm.OpAllocTensor:
		return []vm.Reg{in.A}
	case vm.OpAllocTensorReg, vm.OpReshapeTensor:
		return []vm.Reg{in.A, in.B}
	case vm.OpAllocStorage:
		if in.A >= 0 {
			return []vm.Reg{in.A}
		}
		return nil
	case vm.OpInvoke, vm.OpInvokePacked, vm.OpAllocADT, vm.OpAllocClosure:
		return in.Args
	case vm.OpInvokeClosure:
		return append([]vm.Reg{in.A}, in.Args...)
	}
	return nil
}

func instrDef(in vm.Instruction) vm.Reg {
	switch in.Op {
	case vm.OpRet, vm.OpIf, vm.OpGoto, vm.OpFatal:
		return -1
	}
	return in.Dst
}

// checkOperands enforces exe.reg-bound and exe.index on one instruction.
func (c *exeChecker) checkOperands(local int, in vm.Instruction, f vm.VMFunc) {
	exe := c.exe
	for _, r := range instrRegs(in) {
		if r < 0 || r >= f.RegCount {
			c.report("exe.reg-bound", local,
				"%s references register %d outside the %d-register frame", in.Op, r, f.RegCount)
		}
	}
	switch in.Op {
	case vm.OpInvoke:
		if in.Imm < 0 || int(in.Imm) >= len(exe.Funcs) {
			c.report("exe.index", local, "Invoke names function #%d of %d", in.Imm, len(exe.Funcs))
		} else if callee := exe.Funcs[in.Imm]; callee.NumParams != len(in.Args) {
			c.report("exe.index", local,
				"Invoke passes %d args to %s, which takes %d", len(in.Args), callee.Name, callee.NumParams)
		}
	case vm.OpAllocClosure:
		if in.Imm < 0 || int(in.Imm) >= len(exe.Funcs) {
			c.report("exe.index", local, "AllocClosure names function #%d of %d", in.Imm, len(exe.Funcs))
		}
	case vm.OpInvokePacked:
		if in.Imm < 0 || int(in.Imm) >= len(exe.KernelNames) {
			c.report("exe.index", local, "InvokePacked names kernel #%d of %d", in.Imm, len(exe.KernelNames))
		}
		if in.B != 0 && in.B != 1 {
			c.report("exe.index", local, "InvokePacked output flag is %d, want 0 or 1", in.B)
		}
		if in.B == 1 && len(in.Args) < 1 {
			c.report("exe.index", local, "InvokePacked claims a destination buffer but has no arguments")
		}
	case vm.OpLoadConst:
		if in.Imm < 0 || int(in.Imm) >= len(exe.Consts) {
			c.report("exe.index", local, "LoadConst reads constant #%d of %d", in.Imm, len(exe.Consts))
		}
	case vm.OpGetField:
		if in.Imm < 0 {
			c.report("exe.index", local, "GetField index %d is negative", in.Imm)
		}
	case vm.OpAllocStorage:
		if in.A < 0 && in.Imm < 0 {
			c.report("exe.index", local, "AllocStorage static size %d is negative", in.Imm)
		}
		if in.A >= 0 && !validDType(in.DType) {
			c.report("exe.index", local, "AllocStorage dtype %d is not a tensor.DType", in.DType)
		}
	case vm.OpAllocTensor:
		if !validDType(in.DType) {
			c.report("exe.index", local, "AllocTensor dtype %d is not a tensor.DType", in.DType)
		}
		if in.Imm < 0 {
			c.report("exe.index", local, "AllocTensor offset %d is negative", in.Imm)
		}
		for _, d := range in.Shape {
			if d < 0 {
				c.report("exe.index", local, "AllocTensor shape %v has a negative extent", in.Shape)
				break
			}
		}
	case vm.OpAllocTensorReg:
		if !validDType(in.DType) {
			c.report("exe.index", local, "AllocTensorReg dtype %d is not a tensor.DType", in.DType)
		}
	}
}

func validDType(b uint8) bool { return tensor.DType(b) <= tensor.Bool }

// checkFlow enforces exe.cfg on one instruction: jump targets stay inside
// the function, the only backward jump is the compiler's marked loop back
// edge to the function entry (which keeps every loop reducible), and no
// path falls off the end of the function. Returns false when the CFG is too
// broken for dataflow.
func (c *exeChecker) checkFlow(local int, in vm.Instruction, f vm.VMFunc, code []vm.Instruction) bool {
	ok := true
	inRange := func(t int) bool { return t >= 0 && t < len(code) }
	switch in.Op {
	case vm.OpIf:
		for _, off := range []int{in.Off1, in.Off2} {
			if !inRange(local + off) {
				c.report("exe.cfg", local, "If jumps %+d past the function bounds", off)
				ok = false
			} else if off < 1 {
				c.report("exe.cfg", local,
					"If offset %+d is not strictly forward; loops may only use the marked Goto back edge", off)
				ok = false
			}
		}
	case vm.OpGoto:
		t := local + in.Off1
		switch {
		case !inRange(t):
			c.report("exe.cfg", local, "Goto jumps %+d past the function bounds", in.Off1)
			ok = false
		case in.Off1 == 0:
			c.report("exe.cfg", local, "Goto with zero offset spins forever")
			ok = false
		case in.Off1 < 0 && (in.B != 1 || t != 0):
			// recycleLoopFrame semantics hold only for this exact shape.
			c.report("exe.cfg", local,
				"backward Goto must be the marked loop back edge to the function entry (B=1, target 0); got B=%d target %d",
				in.B, t)
			ok = false
		case in.Off1 > 0 && in.B == 1:
			c.report("exe.cfg", local, "forward Goto carries the loop back-edge mark")
		}
	case vm.OpRet, vm.OpFatal:
		// Terminators.
	default:
		if local+1 >= len(code) {
			c.report("exe.cfg", local, "%s at the end of %s falls off the function", in.Op, f.Name)
			ok = false
		}
	}
	return ok
}

// checkStreamEmit enforces exe.stream-loop: a stream.emit kernel call only
// makes sense inside a compiled loop body — the region [0, backEdge] of a
// function with a marked backward Goto. Anywhere else the emit would fire
// at most once per invocation, which is a miscompiled streaming entry.
func (c *exeChecker) checkStreamEmit(code []vm.Instruction) {
	lastBack := -1
	for local, in := range code {
		if in.Op == vm.OpGoto && in.Off1 < 0 && in.B == 1 {
			lastBack = local
		}
	}
	for local, in := range code {
		if in.Op != vm.OpInvokePacked || in.Imm < 0 || int(in.Imm) >= len(c.exe.KernelNames) {
			continue
		}
		if c.exe.KernelNames[in.Imm] != ir.OpStreamEmit {
			continue
		}
		if lastBack < 0 || local > lastBack {
			c.report("exe.stream-loop", local,
				"stream.emit outside any loop body (no backward Goto after it in %s)", c.fn)
		}
	}
}

// checkDefined enforces exe.reg-undef with a must-defined forward dataflow.
// The transfer function mirrors the interpreter exactly: parameters arrive
// defined, every instruction defines Dst, and the marked loop back edge
// reaches the entry with only the parameter registers defined, because
// recycleLoopFrame clears the rest of the frame.
func (c *exeChecker) checkDefined(f vm.VMFunc, code []vm.Instruction) {
	n := len(code)
	words := (f.RegCount + 63) / 64
	if words == 0 {
		words = 1
	}
	full := make([]uint64, words)
	for i := range full {
		full[i] = ^uint64(0)
	}
	// inState[pc] is the set of registers defined on every path to pc;
	// start at "all defined" (top) and intersect.
	inState := make([][]uint64, n)
	for i := range inState {
		inState[i] = append([]uint64(nil), full...)
	}
	entry := make([]uint64, words)
	for r := 0; r < f.NumParams; r++ {
		entry[r/64] |= 1 << (r % 64)
	}
	copy(inState[0], entry)

	meet := func(pc int, state []uint64) bool {
		changed := false
		for i := range state {
			nv := inState[pc][i] & state[i]
			if nv != inState[pc][i] {
				inState[pc][i] = nv
				changed = true
			}
		}
		return changed
	}
	has := func(state []uint64, r vm.Reg) bool {
		if r < 0 || r >= f.RegCount {
			return true // bounds violation reported elsewhere
		}
		return state[r/64]&(1<<(r%64)) != 0
	}

	out := make([]uint64, words)
	for changed := true; changed; {
		changed = false
		for pc := 0; pc < n; pc++ {
			in := code[pc]
			copy(out, inState[pc])
			if d := instrDef(in); d >= 0 && d < f.RegCount {
				out[d/64] |= 1 << (d % 64)
			}
			switch in.Op {
			case vm.OpRet, vm.OpFatal:
			case vm.OpIf:
				for _, off := range []int{in.Off1, in.Off2} {
					if t := pc + off; t >= 0 && t < n && meet(t, out) {
						changed = true
					}
				}
			case vm.OpGoto:
				t := pc + in.Off1
				if t < 0 || t >= n {
					continue
				}
				if in.Off1 < 0 && in.B == 1 {
					// Back edge: only the parameter registers survive.
					if meet(t, entry) {
						changed = true
					}
				} else if meet(t, out) {
					changed = true
				}
			default:
				if pc+1 < n && meet(pc+1, out) {
					changed = true
				}
			}
		}
	}
	for pc := 0; pc < n; pc++ {
		for _, r := range instrUses(code[pc]) {
			if !has(inState[pc], r) {
				c.report("exe.reg-undef", pc,
					"%s reads register %d, which is not defined on every path (loop back edges clear non-parameter registers)",
					code[pc].Op, r)
			}
		}
	}
}

// checkStorageSizes enforces exe.storage-size: along straight-line code, an
// AllocTensor view must fit inside the static size of the storage it
// slices. Facts are tracked per register and dropped at join points, so the
// check never claims more than the instruction stream proves.
func (c *exeChecker) checkStorageSizes(code []vm.Instruction) {
	targets := map[int]bool{}
	for local, in := range code {
		switch in.Op {
		case vm.OpIf:
			targets[local+in.Off1] = true
			targets[local+in.Off2] = true
		case vm.OpGoto:
			targets[local+in.Off1] = true
		}
	}
	sizes := map[vm.Reg]int{}
	for local, in := range code {
		if targets[local] {
			sizes = map[vm.Reg]int{}
		}
		switch in.Op {
		case vm.OpAllocStorage:
			if in.A < 0 {
				sizes[in.Dst] = int(in.Imm)
			} else {
				delete(sizes, in.Dst)
			}
		case vm.OpMove:
			if sz, ok := sizes[in.A]; ok {
				sizes[in.Dst] = sz
			} else {
				delete(sizes, in.Dst)
			}
		case vm.OpAllocTensor:
			if sz, ok := sizes[in.A]; ok && validDType(in.DType) {
				need := int(in.Imm) + tensor.Shape(in.Shape).NumElements()*tensor.DType(in.DType).Size()
				if need > sz {
					c.report("exe.storage-size", local,
						"AllocTensor needs %d bytes of storage in r%d, which holds %d", need, in.A, sz)
				}
			}
			delete(sizes, in.Dst)
		case vm.OpGoto:
			sizes = map[vm.Reg]int{}
		default:
			if d := instrDef(in); d >= 0 {
				delete(sizes, d)
			}
		}
	}
}
