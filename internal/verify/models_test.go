package verify_test

// The positive half of the corpus: every registered model must compile with
// check mode on and zero violations. Together with the negative corpus this
// bounds the verifier from both sides — strict enough to catch every seeded
// mutation, lenient enough to accept everything the real pipeline emits.

import (
	"testing"

	"nimble/internal/compiler"
	"nimble/internal/ir"
	"nimble/internal/models"
)

func TestAllModelsVerifyClean(t *testing.T) {
	cases := []struct {
		name  string
		build func() *ir.Module
	}{
		{"mlp", func() *ir.Module { return models.NewMLP(models.DefaultMLPConfig()).Module }},
		{"lstm", func() *ir.Module { return models.NewLSTM(models.DefaultLSTMConfig(1)).Module }},
		{"treelstm", func() *ir.Module { return models.NewTreeLSTM(models.DefaultTreeLSTMConfig()).Module }},
		{"bert", func() *ir.Module { return models.NewBERT(models.BERTReduced()).Module }},
		{"decoder", func() *ir.Module { return models.NewDecoder(models.DefaultDecoderConfig()).Module }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := compiler.Compile(tc.build(), compiler.Options{Verify: true}); err != nil {
				t.Fatalf("%s does not verify cleanly:\n%v", tc.name, err)
			}
		})
	}
}

// BenchmarkCompileVerify is the bench guard for check mode: verification is
// opt-in precisely because it costs compile time, and this pair keeps the
// cost visible (EXPERIMENTS.md records the delta). Run-time numbers are
// unaffected by construction — the verifier never touches the executable
// after Compile returns.
func BenchmarkCompileVerify(b *testing.B) {
	for _, mode := range []struct {
		name   string
		verify bool
	}{{"off", false}, {"on", true}} {
		b.Run("lstm/verify="+mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mod := models.NewLSTM(models.DefaultLSTMConfig(1)).Module
				if _, err := compiler.Compile(mod, compiler.Options{Verify: mode.verify}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("bert/verify="+mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mod := models.NewBERT(models.BERTReduced()).Module
				if _, err := compiler.Compile(mod, compiler.Options{Verify: mode.verify}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestAblationsVerifyClean runs check mode over the pipeline's ablation
// configurations, which exercise different pass subsets (and therefore
// different ModuleChecks activation points).
func TestAblationsVerifyClean(t *testing.T) {
	cases := []struct {
		name string
		opts compiler.Options
	}{
		{"no-fusion", compiler.Options{Verify: true, DisableFusion: true}},
		{"no-coalescing", compiler.Options{Verify: true, DisableCoalescing: true}},
		{"no-memory-planning", compiler.Options{Verify: true, DisableMemoryPlanning: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mod := models.NewLSTM(models.DefaultLSTMConfig(1)).Module
			if _, err := compiler.Compile(mod, tc.opts); err != nil {
				t.Fatalf("lstm (%s) does not verify cleanly:\n%v", tc.name, err)
			}
		})
	}
}
