package verify

import (
	"fmt"

	"nimble/internal/ir"
)

// Module statically checks an IR module against the invariant catalog.
// stage names the pass boundary for diagnostics ("after coalesce-storage");
// checks selects the families that are meaningful there. The module is not
// mutated. A non-nil result is always *Error.
func Module(mod *ir.Module, stage string, checks ModuleChecks) error {
	c := &moduleChecker{
		checks:  checks,
		defined: map[*ir.Var]string{},
	}
	for _, name := range mod.FuncNames() {
		c.checkFunction(name, mod.Funcs[name])
	}
	return errOrNil(stage, c.violations)
}

type moduleChecker struct {
	checks ModuleChecks
	// defined records every Var node that received a definition anywhere in
	// the module (params, let bindings, pattern bindings), for the
	// single-definition invariant: Vars are identities, so two definitions
	// of one node mean two bindings race for one register.
	defined    map[*ir.Var]string
	violations []Violation
	fn         string
}

func (c *moduleChecker) report(invariant, pos, format string, args ...interface{}) {
	c.violations = append(c.violations, Violation{
		Invariant: invariant,
		Func:      c.fn,
		Pos:       pos,
		Message:   fmt.Sprintf(format, args...),
	})
}

func (c *moduleChecker) checkFunction(name string, fn *ir.Function) {
	c.fn = name
	scope := map[*ir.Var]bool{}
	for _, p := range fn.Params {
		c.define(p, "param")
		scope[p] = true
	}
	c.checkScopeAndTypes(fn.Body, scope)
	if c.checks.ANF {
		c.checkANFChain(fn.Body, name)
	}
	if c.checks.Memory {
		c.checkChain(fn.Body, name, newChainScope(nil))
	}
}

// define records a variable definition, enforcing ssa.single-def.
func (c *moduleChecker) define(v *ir.Var, where string) {
	if prev, dup := c.defined[v]; dup {
		c.report("ssa.single-def", "let %"+v.Name,
			"variable %%%s defined twice (%s, then %s)", v.Name, prev, where)
		return
	}
	c.defined[v] = where
}

// checkScopeAndTypes walks an expression enforcing ssa.scope (every
// variable defined before use), ssa.single-def, and type.op (each operator
// call's checked type agrees with re-running its type relation over the
// argument types, with Any dimensions as top).
func (c *moduleChecker) checkScopeAndTypes(e ir.Expr, scope map[*ir.Var]bool) {
	switch n := e.(type) {
	case nil:
	case *ir.Var:
		if !scope[n] {
			c.report("ssa.scope", "%"+n.Name, "use of undefined variable %%%s", n.Name)
		}
	case *ir.GlobalVar, *ir.Constant, *ir.OpRef, *ir.CtorRef:
	case *ir.Let:
		c.checkScopeAndTypes(n.Value, scope)
		c.define(n.Bound, "let")
		was := scope[n.Bound]
		scope[n.Bound] = true
		c.checkScopeAndTypes(n.Body, scope)
		scope[n.Bound] = was
	case *ir.Call:
		c.checkScopeAndTypes(n.Callee, scope)
		for _, a := range n.Args {
			c.checkScopeAndTypes(a, scope)
		}
		c.checkCallType(n)
	case *ir.Function:
		saved := make([]bool, len(n.Params))
		for i, p := range n.Params {
			c.define(p, "lambda param")
			saved[i] = scope[p]
			scope[p] = true
		}
		c.checkScopeAndTypes(n.Body, scope)
		for i, p := range n.Params {
			scope[p] = saved[i]
		}
	case *ir.If:
		c.checkScopeAndTypes(n.Cond, scope)
		c.checkScopeAndTypes(n.Then, scope)
		c.checkScopeAndTypes(n.Else, scope)
	case *ir.Tuple:
		for _, f := range n.Fields {
			c.checkScopeAndTypes(f, scope)
		}
	case *ir.TupleGet:
		c.checkScopeAndTypes(n.Tuple, scope)
	case *ir.Match:
		c.checkScopeAndTypes(n.Data, scope)
		for _, cl := range n.Clauses {
			vars := cl.Pattern.BoundVars()
			saved := make([]bool, len(vars))
			for i, v := range vars {
				c.define(v, "pattern")
				saved[i] = scope[v]
				scope[v] = true
			}
			c.checkScopeAndTypes(cl.Body, scope)
			for i, v := range vars {
				scope[v] = saved[i]
			}
		}
	}
}

// checkCallType re-derives an operator call's type from its registered
// relation and compares it to the checked type inference attached. Calls
// whose operands have no checked type yet (inference not run for this
// stage) are skipped — the check is about consistency, not completeness.
func (c *moduleChecker) checkCallType(n *ir.Call) {
	ref, ok := n.Callee.(*ir.OpRef)
	if !ok || ref.Op.Rel == nil {
		return
	}
	want := n.CheckedType()
	if want == nil {
		return
	}
	argTypes := make([]ir.Type, len(n.Args))
	for i, a := range n.Args {
		at := a.CheckedType()
		if at == nil {
			return
		}
		argTypes[i] = at
	}
	got, err := ref.Op.Rel(argTypes, n.Attrs)
	if err != nil {
		c.report("type.op", "call "+ref.Op.Name,
			"type relation rejects the checked operands: %v", err)
		return
	}
	if !typeCompatible(got, want) {
		c.report("type.op", "call "+ref.Op.Name,
			"checked type %s contradicts the relation's %s", want, got)
	}
}

// typeCompatible reports whether two types agree, treating Any dimensions
// as top (an Any on either side matches anything). Function and ADT types
// are out of scope for the relation check and compare as compatible.
func typeCompatible(a, b ir.Type) bool {
	if a == nil || b == nil {
		return true
	}
	switch at := a.(type) {
	case *ir.TensorType:
		bt, ok := b.(*ir.TensorType)
		if !ok {
			return false
		}
		if at.DType != bt.DType || at.Rank() != bt.Rank() {
			return false
		}
		for i := range at.Dims {
			da, db := at.Dims[i], bt.Dims[i]
			if da.IsAny() || db.IsAny() {
				continue
			}
			if da.Value != db.Value {
				return false
			}
		}
		return true
	case *ir.TupleType:
		bt, ok := b.(*ir.TupleType)
		if !ok || len(at.Fields) != len(bt.Fields) {
			return false
		}
		for i := range at.Fields {
			if !typeCompatible(at.Fields[i], bt.Fields[i]) {
				return false
			}
		}
		return true
	case *ir.StorageType:
		_, ok := b.(*ir.StorageType)
		return ok
	default:
		return true
	}
}

// ---- A-normal-form shape -------------------------------------------------

// checkANFChain enforces anf.atomic on a let-chain: every operand position
// (call arguments and callees, tuple fields, projections, conditions, match
// scrutinees) holds an atomic expression, and compound expressions appear
// only as binding values or chain results.
func (c *moduleChecker) checkANFChain(e ir.Expr, fnName string) {
	bs, result := splitChain(e)
	for _, b := range bs {
		c.checkANFValue(b.value, "let %"+b.v.Name, fnName)
	}
	c.checkANFValue(result, "result", fnName)
}

func (c *moduleChecker) checkANFValue(e ir.Expr, pos, fnName string) {
	switch n := e.(type) {
	case *ir.Var, *ir.GlobalVar, *ir.Constant, *ir.OpRef, *ir.CtorRef:
	case *ir.Call:
		if !isAtomic(n.Callee) {
			if _, isFn := n.Callee.(*ir.Function); !isFn {
				c.report("anf.atomic", pos, "call callee is a compound %s", ir.ExprKind(n.Callee))
			}
		}
		for i, a := range n.Args {
			if !isAtomic(a) {
				c.report("anf.atomic", pos, "call argument %d is a compound %s", i, ir.ExprKind(a))
			}
		}
	case *ir.If:
		if !isAtomic(n.Cond) {
			c.report("anf.atomic", pos, "if condition is a compound %s", ir.ExprKind(n.Cond))
		}
		c.checkANFChain(n.Then, fnName)
		c.checkANFChain(n.Else, fnName)
	case *ir.Match:
		if !isAtomic(n.Data) {
			c.report("anf.atomic", pos, "match scrutinee is a compound %s", ir.ExprKind(n.Data))
		}
		for _, cl := range n.Clauses {
			c.checkANFChain(cl.Body, fnName)
		}
	case *ir.Tuple:
		for i, f := range n.Fields {
			if !isAtomic(f) {
				c.report("anf.atomic", pos, "tuple field %d is a compound %s", i, ir.ExprKind(f))
			}
		}
	case *ir.TupleGet:
		if !isAtomic(n.Tuple) {
			c.report("anf.atomic", pos, "projection base is a compound %s", ir.ExprKind(n.Tuple))
		}
	case *ir.Function:
		c.checkANFChain(n.Body, fnName)
	}
}

// ---- shared helpers ------------------------------------------------------

// binding is one link of a let-chain.
type binding struct {
	v     *ir.Var
	value ir.Expr
}

func splitChain(e ir.Expr) ([]binding, ir.Expr) {
	var out []binding
	for {
		l, ok := e.(*ir.Let)
		if !ok {
			return out, e
		}
		out = append(out, binding{v: l.Bound, value: l.Value})
		e = l.Body
	}
}

func isAtomic(e ir.Expr) bool {
	switch e.(type) {
	case *ir.Var, *ir.GlobalVar, *ir.Constant, *ir.OpRef, *ir.CtorRef:
		return true
	}
	return false
}

func opCall(e ir.Expr) (*ir.Call, *ir.Op) {
	c, ok := e.(*ir.Call)
	if !ok {
		return nil, nil
	}
	if ref, ok := c.Callee.(*ir.OpRef); ok {
		return c, ref.Op
	}
	return c, nil
}
