// Package verify is the compiler's machine-checked invariant catalog: a
// static verifier over IR modules and compiled executables that can run at
// every pass boundary (check mode) and over untrusted serialized
// executables before they are adopted for execution.
//
// The point of the package is to move miscompile detection from "a wrong
// tensor three layers later" to "a named invariant and the offending
// instruction at the pass that broke it". The invariant the differential
// fuzzer caught dynamically in PR 2 — storage coalescing recycling a buffer
// whose live range an alias still covered — is mem.kill-consuming /
// mem.coalesce-overlap here, checked in milliseconds at the coalesce pass
// boundary instead of after a divergence hunt.
//
// Two entry points:
//
//   - Module checks an ir.Module between passes. Which invariant families
//     apply depends on how far the pipeline has run (ANF shape exists only
//     after the anf pass, the memory dialect only after manifest-alloc);
//     callers describe that with ModuleChecks.
//   - Executable checks a vm.Executable — after emission, and before a
//     deserialized artifact (attacker-controlled input) is executed.
//
// Every violation carries an invariant ID from the catalog in
// docs/verifier.md. Verification never mutates its input.
package verify

import (
	"fmt"
	"strings"
)

// Violation is one invariant failure: the catalog ID, where it happened,
// and a human-readable explanation naming the offending binding or
// instruction.
type Violation struct {
	// Invariant is the catalog ID, e.g. "mem.kill-consuming".
	Invariant string
	// Func is the IR/VM function the violation is in.
	Func string
	// Pos locates the violation inside the function: an IR binding
	// (let %v) or a bytecode offset (pc 12).
	Pos string
	// Message explains what is wrong.
	Message string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] %s @ %s: %s", v.Invariant, v.Func, v.Pos, v.Message)
}

// Error is the typed result of a failed verification run. It wraps every
// violation found (verification does not stop at the first), plus the
// pipeline stage that produced the artifact, so a bad pass is named at its
// own boundary.
type Error struct {
	// Stage names the boundary that was checked, e.g. "after
	// coalesce-storage" or "executable".
	Stage      string
	Violations []Violation
}

func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verify: %d invariant violation(s) %s", len(e.Violations), e.Stage)
	for _, v := range e.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}

// errOrNil wraps accumulated violations, or reports success as nil.
func errOrNil(stage string, vs []Violation) error {
	if len(vs) == 0 {
		return nil
	}
	return &Error{Stage: stage, Violations: vs}
}

// ModuleChecks selects the invariant families that are meaningful at a
// given pass boundary. Scope, single-definition, and type consistency are
// always checked.
type ModuleChecks struct {
	// ANF enables the A-normal-form shape checks (atomic operands,
	// let-chain bodies); valid after the anf pass.
	ANF bool
	// Memory enables the explicit-allocation dialect checks (kill safety,
	// coalescing overlap, loop-carried buffers, planned sizes); valid
	// after manifest-alloc.
	Memory bool
}

// AfterPass returns the checks that apply after the named pipeline pass,
// given the checks that applied before it. The mapping is monotone: every
// pass may only add structure.
func (c ModuleChecks) AfterPass(name string) ModuleChecks {
	switch name {
	case "anf":
		c.ANF = true
	case "manifest-alloc":
		c.Memory = true
	}
	return c
}
