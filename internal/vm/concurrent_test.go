package vm_test

// Concurrency conformance for the serving runtime: one frozen executable
// shared by many sessions must produce single-session results from 16
// goroutines, with no data race (CI runs this package under -race). The
// models are the paper's dynamic workloads: the recursive LSTM (dynamic
// control flow) and a BERT layer (dynamic data shapes — symbolic kernels
// and runtime shape functions on every dense).

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"nimble/internal/compiler"
	"nimble/internal/models"
	"nimble/internal/serve"
	"nimble/internal/tensor"
	"nimble/internal/vm"
)

const concurrentClients = 16

func TestConcurrentLSTMViaSessionPool(t *testing.T) {
	cfg := models.LSTMConfig{Input: 16, Hidden: 24, Layers: 1, Seed: 3}
	m := models.NewLSTM(cfg)
	res, err := compiler.Compile(m.Module, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Per-client sequences of ragged lengths, with reference outputs from a
	// dedicated single-session VM over an identical compile.
	ref := models.NewLSTM(cfg)
	refVM, _, err := compiler.CompileToVM(ref.Module, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	type job struct {
		seq  vm.Object
		want *tensor.Tensor
	}
	jobs := make([]job, concurrentClients)
	for i := range jobs {
		steps := make([]*tensor.Tensor, 2+i%5)
		for j := range steps {
			steps[j] = tensor.Random(rng, 1, 1, cfg.Input)
		}
		seq := models.SequenceToList(m.NilC.Tag, m.ConsC.Tag, steps)
		out, err := refVM.Invoke("main", seq)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job{seq: seq, want: out.(*vm.TensorObj).T}
	}

	pool, err := serve.NewPool(res.Exe, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < concurrentClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				j := jobs[(c+iter)%len(jobs)]
				out, err := pool.Invoke(context.Background(), "main", j.seq)
				if err != nil {
					t.Errorf("client %d iter %d: %v", c, iter, err)
					return
				}
				got := out.(*vm.TensorObj).T
				if !got.AllClose(j.want, 1e-6, 1e-7) {
					t.Errorf("client %d iter %d: concurrent LSTM output diverged", c, iter)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if st := pool.Stats(); st.Errors != 0 {
		t.Errorf("pool recorded %d errors", st.Errors)
	}
}

func TestConcurrentBERTLayerViaSessionPool(t *testing.T) {
	cfg := models.BERTConfig{Layers: 1, Hidden: 32, Heads: 2, FFN: 64, Vocab: 128, MaxSeq: 32, Seed: 44}
	m := models.NewBERT(cfg)
	res, err := compiler.Compile(m.Module, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := models.NewBERT(cfg)
	refVM, _, err := compiler.CompileToVM(ref.Module, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	type job struct {
		ids  *tensor.Tensor
		want *tensor.Tensor
	}
	// Ragged sequence lengths exercise symbolic kernels under concurrency:
	// every dense dispatches on the runtime residue of its length.
	jobs := make([]job, concurrentClients)
	for i := range jobs {
		ids := m.RandomIDs(rng, 3+i%7)
		want, err := refVM.InvokeTensors("main", ids)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job{ids: ids, want: want}
	}

	pool, err := serve.NewPool(res.Exe, 4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < concurrentClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				j := jobs[(c*3+iter)%len(jobs)]
				got, err := pool.InvokeTensors(context.Background(), "main", j.ids)
				if err != nil {
					t.Errorf("client %d iter %d: %v", c, iter, err)
					return
				}
				if !got.AllClose(j.want, 1e-6, 1e-7) {
					t.Errorf("client %d iter %d: concurrent BERT output diverged", c, iter)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestSessionStorageReuseSurvivesPooling pins the memory-planning payoff
// inside a pooled session: two sequential Invokes on one checked-out
// session must reuse the first invocation's storages via the VM's runtime
// pool, keeping the per-step allocation count under the same fence the
// single-VM path honors (see internal/bench's alloc regression test).
func TestSessionStorageReuseSurvivesPooling(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc calibration is timing-insensitive but not short")
	}
	const maxAllocsPerStep = 128
	cfg := models.LSTMConfig{Input: 32, Hidden: 32, Layers: 1, Seed: 3}
	m := models.NewLSTM(cfg)
	res, err := compiler.Compile(m.Module, compiler.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := serve.NewPool(res.Exe, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	const steps = 8
	seq := m.RandomSequence(rng, steps)

	s, err := pool.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Release(s)
	run := func() {
		if _, err := s.Invoke(context.Background(), "main", seq); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm this session's storage pool and frame recycler
	perInvoke := testing.AllocsPerRun(20, run)
	perStep := perInvoke / steps
	t.Logf("pooled session LSTM: %.0f allocs/invoke = %.1f allocs/step", perInvoke, perStep)
	if perStep > maxAllocsPerStep {
		t.Errorf("pooled session lost storage reuse: %.1f allocs/step exceeds the %d fence",
			perStep, maxAllocsPerStep)
	}
}

// TestPooledVMRejectsConfigMutation pins the satellite fix: SetProfiler and
// DisablePool must panic once a VM has been checked into a pool.
func TestPooledVMRejectsConfigMutation(t *testing.T) {
	e := vm.NewExecutable()
	e.AddFunc(vm.VMFunc{Name: "main", NumParams: 0, RegCount: 1, Start: 0, Len: 1})
	e.Code = []vm.Instruction{{Op: vm.OpLoadConsti, Dst: 0, Imm: 1}}
	machine := vm.New(e)
	machine.SetProfiler(vm.NewProfiler()) // legal before pooling
	machine.MarkPooled()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s on pooled VM did not panic", name)
			}
		}()
		f()
	}
	mustPanic("SetProfiler", func() { machine.SetProfiler(nil) })
	mustPanic("DisablePool", func() { machine.DisablePool() })
}
