package vm_test

// Streaming autoregressive decode, pinned at the VM level:
//
//   - the streamed token sequence is byte-identical to the non-streaming
//     Invoke result (streaming is a tap, not a different execution);
//   - the compiled loop really is a loop: the bytecode of the decoder's
//     `loop` function ends in a backward Goto marked as a loop edge, with
//     no self-Invoke left;
//   - the KV-caches live in planner-managed buffers: state_zeros kernels
//     allocate them in the entry function and every cache_append executes
//     as a destination-carrying packed call (in.B == 1), with no
//     AllocStorage inside the loop body for the cache; and
//   - loop-edge recycling holds the storage pool at a steady state: a
//     second generation on the same session allocates no fresh storage.

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"nimble/internal/compiler"
	"nimble/internal/models"
	"nimble/internal/tensor"
	"nimble/internal/vm"
)

func compileDecoder(t *testing.T) (*models.Decoder, *compiler.Result) {
	t.Helper()
	dec := models.NewDecoder(models.DefaultDecoderConfig())
	res, err := compiler.Compile(dec.Module, compiler.Options{})
	if err != nil {
		t.Fatalf("compile decoder: %v", err)
	}
	return dec, res
}

func runDecode(t *testing.T, machine *vm.VM, entry string, start int64) []int64 {
	t.Helper()
	out, err := machine.InvokeTensors(entry, models.StartToken(start))
	if err != nil {
		t.Fatalf("%s: %v", entry, err)
	}
	return append([]int64(nil), out.I64()...)
}

func TestDecodeStreamMatchesInvoke(t *testing.T) {
	dec, res := compileDecoder(t)
	M := dec.Config.MaxNew

	for _, entry := range []string{"generate", "generate_sampled"} {
		machine := vm.New(res.Exe)
		want := runDecode(t, machine, entry, 7)
		if len(want) != M {
			t.Fatalf("%s: got %d tokens, want %d", entry, len(want), M)
		}

		var streamed []int64
		sink := func(tok *tensor.Tensor) error {
			if got := tok.DType(); got != tensor.Int64 {
				return fmt.Errorf("streamed dtype %v", got)
			}
			streamed = append(streamed, tok.I64()...)
			return nil
		}
		out, err := machine.InvokeStreamContext(context.Background(), sink, entry, vm.NewTensorObj(models.StartToken(7)))
		if err != nil {
			t.Fatalf("%s stream: %v", entry, err)
		}
		final, ok := out.(*vm.TensorObj)
		if !ok {
			t.Fatalf("%s stream result: %T, want tensor", entry, out)
		}
		if len(streamed) != M {
			t.Fatalf("%s: streamed %d tokens, want %d", entry, len(streamed), M)
		}
		for i, tok := range streamed {
			if tok != want[i] {
				t.Fatalf("%s: streamed token %d = %d, Invoke produced %d\nstream: %v\ninvoke: %v",
					entry, i, tok, want[i], streamed, want)
			}
		}
		for i, tok := range final.T.I64() {
			if tok != want[i] {
				t.Fatalf("%s: stream-run result token %d = %d, want %d", entry, i, tok, want[i])
			}
		}
	}
}

func TestDecodeDeterministicAndEntriesDiffer(t *testing.T) {
	_, res := compileDecoder(t)
	a := runDecode(t, vm.New(res.Exe), "generate", 3)
	b := runDecode(t, vm.New(res.Exe), "generate", 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("greedy decode not deterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
	s1 := runDecode(t, vm.New(res.Exe), "generate_sampled", 3)
	s2 := runDecode(t, vm.New(res.Exe), "generate_sampled", 3)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("sampled decode not deterministic at %d: %d vs %d", i, s1[i], s2[i])
		}
	}
}

func TestDecodeSinkErrorAborts(t *testing.T) {
	_, res := compileDecoder(t)
	machine := vm.New(res.Exe)
	n := 0
	boom := fmt.Errorf("consumer gone")
	_, err := machine.InvokeStreamContext(context.Background(), func(*tensor.Tensor) error {
		n++
		if n == 3 {
			return boom
		}
		return nil
	}, "generate", vm.NewTensorObj(models.StartToken(1)))
	if err == nil || !strings.Contains(err.Error(), "consumer gone") {
		t.Fatalf("want sink error to abort the run, got %v", err)
	}
	if n != 3 {
		t.Fatalf("sink called %d times after aborting at 3", n)
	}
}

// TestDecodeLoopBytecode pins the compilation strategy: the loop function
// must contain a loop-marked backward Goto (tail call optimized away), no
// OpInvoke of itself, and cache_append must run as a destination-carrying
// invoke_mut; the caches' state_zeros allocations live in the entry.
func TestDecodeLoopBytecode(t *testing.T) {
	_, res := compileDecoder(t)
	exe := res.Exe

	find := func(name string) vm.VMFunc {
		for _, f := range exe.Funcs {
			if f.Name == name {
				return f
			}
		}
		t.Fatalf("no function %q in executable", name)
		return vm.VMFunc{}
	}
	loopFn := find("loop")
	loopIdx := -1
	for i, f := range exe.Funcs {
		if f.Name == "loop" {
			loopIdx = i
		}
	}

	kernelHas := func(idx int64, substr string) bool {
		return strings.Contains(exe.KernelNames[idx], substr)
	}

	backEdges, selfInvokes, cacheAppends, loopStateZeros, loopAllocs := 0, 0, 0, 0, 0
	for pc := loopFn.Start; pc < loopFn.Start+loopFn.Len; pc++ {
		in := exe.Code[pc]
		switch in.Op {
		case vm.OpGoto:
			if in.Off1 < 0 {
				backEdges++
				if in.B != 1 {
					t.Errorf("backward Goto at pc %d not marked as loop edge (B=%d)", pc, in.B)
				}
			}
		case vm.OpInvoke:
			if int(in.Imm) == loopIdx {
				selfInvokes++
			}
		case vm.OpInvokePacked:
			switch {
			case kernelHas(in.Imm, "cache_append"):
				cacheAppends++
				if in.B != 1 {
					t.Errorf("cache_append at pc %d lost its planned destination (B=%d)", pc, in.B)
				}
			case kernelHas(in.Imm, "state_zeros"):
				loopStateZeros++
			}
		case vm.OpAllocStorage:
			loopAllocs++
		}
	}
	if backEdges != 1 {
		t.Errorf("loop has %d backward Gotos, want exactly 1", backEdges)
	}
	if selfInvokes != 0 {
		t.Errorf("loop still self-Invokes %d times; tail call not optimized", selfInvokes)
	}
	// 2 layers × (K, V) + the token-output append.
	if cacheAppends != 5 {
		t.Errorf("loop executes %d cache_append invoke_muts, want 5", cacheAppends)
	}
	if loopStateZeros != 0 {
		t.Errorf("loop re-zeroes state %d times; state buffers must be allocated once in the entry", loopStateZeros)
	}

	entryFn := find("generate")
	entryStateZeros := 0
	for pc := entryFn.Start; pc < entryFn.Start+entryFn.Len; pc++ {
		in := exe.Code[pc]
		if in.Op == vm.OpInvokePacked && kernelHas(in.Imm, "state_zeros") {
			entryStateZeros++
		}
	}
	// out tokens + 2 layers × (K, V).
	if entryStateZeros != 5 {
		t.Errorf("entry allocates %d state_zeros buffers, want 5", entryStateZeros)
	}
}

// TestDecodeSteadyStateAllocs pins loop-edge recycling: after the first
// generation warms the pool, a second generation on the same session must
// serve every AllocStorage from the pool except exactly one — the result
// buffer, which escapes to the caller and so can never be recycled. Without
// recycleLoopFrame the tail-call loop would instead leak every iteration's
// buffers (the frame never exits), making this count grow with MaxNew.
func TestDecodeSteadyStateAllocs(t *testing.T) {
	_, res := compileDecoder(t)
	machine := vm.New(res.Exe)
	prof := vm.NewProfiler()
	machine.SetProfiler(prof)

	runDecode(t, machine, "generate", 5)
	warm := prof.AllocFresh
	runDecode(t, machine, "generate", 5)
	if fresh := prof.AllocFresh - warm; fresh != 1 {
		t.Errorf("second generation allocated %d fresh storages, want 1 (the escaping result)", fresh)
	}
	if prof.AllocReuses == 0 {
		t.Errorf("no storage reuse recorded across two generations")
	}
}
