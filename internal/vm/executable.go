package vm

import (
	"fmt"

	"nimble/internal/tensor"
)

// PackedFunc is an ahead-of-time compiled kernel: inputs arrive as tensors,
// and when the caller passes a destination buffer (out != nil) the kernel
// must place its result there, returning the tensor to store in the
// destination register (usually out itself, or a view of it for upper-bound
// operators that produce fewer elements than allocated). When out is nil the
// kernel allocates its own result — the convention shape functions use.
type PackedFunc func(args []*tensor.Tensor, out *tensor.Tensor) (*tensor.Tensor, error)

// VMFunc is the bytecode-level descriptor of one compiled function.
type VMFunc struct {
	Name string
	// NumParams is the number of arguments; parameters arrive in registers
	// 0..NumParams-1.
	NumParams int
	// RegCount is the size of the register file for an activation frame.
	RegCount int
	// Start is the function's entry offset in Executable.Code.
	Start int
	// Len is the number of instructions belonging to the function.
	Len int
}

// Executable is the unit Nimble's compiler produces (§3): a
// platform-independent bytecode segment (Code, Funcs, Consts) plus the
// platform-dependent kernel table. Kernels are referenced by index from
// InvokePacked; their implementations (Go closures over the kernel library)
// are bound either at compile time or, after deserialization, by LinkKernels
// using the kernel names.
//
// An executable has two phases. During construction (compile or
// deserialize+link) it is mutated by Add*/LinkKernels on one goroutine.
// Once Freeze is called it becomes an immutable shared artifact: every
// field is read-only, so any number of VMs — one per serving session — can
// execute it concurrently without synchronization. The VM never writes
// through the executable: constants are shared by reference under the §5.2
// copy-on-write discipline, and per-run caches (resolved kernel table,
// profiler, storage pool, frames) live in the VM session.
type Executable struct {
	// Funcs lists compiled functions; FuncIndex maps names to indices.
	Funcs     []VMFunc
	FuncIndex map[string]int
	// Code is the flat instruction stream of all functions.
	Code []Instruction
	// Consts is the constant pool; weights live here and "can remain
	// in-memory with no specialized support" (§5.2).
	Consts []*tensor.Tensor
	// KernelNames names each kernel slot for serialization and profiling.
	KernelNames []string

	kernels []PackedFunc
	// frozen marks the executable immutable; set by Freeze when the first
	// serving pool adopts it. Construction-phase mutators panic afterwards.
	frozen bool
}

// NewExecutable creates an empty executable.
func NewExecutable() *Executable {
	return &Executable{FuncIndex: map[string]int{}}
}

// Freeze seals the executable: construction-phase mutators (AddFunc,
// AddConst, AddKernel, LinkKernels) panic or error from now on. Freezing is
// idempotent and is how a serving pool asserts the artifact it shares
// across sessions cannot change underneath them.
func (e *Executable) Freeze() { e.frozen = true }

// Frozen reports whether Freeze has been called.
func (e *Executable) Frozen() bool { return e.frozen }

// mutCheck guards the construction-phase-only mutators: once an executable
// is frozen (adopted by a pool or serialized) any mutation is a programming
// error, caught before it can corrupt a shared artifact
// (vet:panic-ok — construction-phase misuse guard, never on a request path).
func (e *Executable) mutCheck(op string) {
	if e.frozen {
		panic(fmt.Sprintf("vm: %s on frozen executable (it is shared by a session pool)", op))
	}
}

// AddFunc appends a function descriptor and returns its index.
func (e *Executable) AddFunc(f VMFunc) int {
	e.mutCheck("AddFunc")
	idx := len(e.Funcs)
	e.Funcs = append(e.Funcs, f)
	e.FuncIndex[f.Name] = idx
	return idx
}

// AddConst appends a tensor to the constant pool and returns its index.
func (e *Executable) AddConst(t *tensor.Tensor) int {
	e.mutCheck("AddConst")
	e.Consts = append(e.Consts, t)
	return len(e.Consts) - 1
}

// AddKernel appends a named kernel and returns its index.
func (e *Executable) AddKernel(name string, fn PackedFunc) int {
	e.mutCheck("AddKernel")
	e.KernelNames = append(e.KernelNames, name)
	e.kernels = append(e.kernels, fn)
	return len(e.kernels) - 1
}

// WrapKernels replaces every bound kernel with wrap(name, kernel) — the
// hook fault injection (internal/faults) and instrumentation use to
// decorate the kernel table. Like the other construction-phase mutators it
// must run before the executable is frozen; unlinked slots are left alone.
func (e *Executable) WrapKernels(wrap func(name string, fn PackedFunc) PackedFunc) error {
	if e.frozen {
		return fmt.Errorf("vm: WrapKernels on frozen executable (wrap before pooling)")
	}
	for i, fn := range e.kernels {
		if fn != nil {
			e.kernels[i] = wrap(e.KernelNames[i], fn)
		}
	}
	return nil
}

// Kernel returns the bound kernel at idx.
func (e *Executable) Kernel(idx int) (PackedFunc, error) {
	if idx < 0 || idx >= len(e.kernels) {
		return nil, fmt.Errorf("vm: kernel index %d out of range", idx)
	}
	k := e.kernels[idx]
	if k == nil {
		return nil, fmt.Errorf("vm: kernel %q is unlinked; call LinkKernels after deserialization", e.KernelNames[idx])
	}
	return k, nil
}

// LinkKernels binds deserialized kernel names to implementations. Every
// named kernel must resolve; a missing kernel is a deployment error surfaced
// immediately rather than at first dispatch.
func (e *Executable) LinkKernels(registry map[string]PackedFunc) error {
	if e.frozen {
		return fmt.Errorf("vm: LinkKernels on frozen executable (link before pooling)")
	}
	e.kernels = make([]PackedFunc, len(e.KernelNames))
	for i, name := range e.KernelNames {
		fn, ok := registry[name]
		if !ok {
			return fmt.Errorf("vm: no kernel registered for %q", name)
		}
		e.kernels[i] = fn
	}
	return nil
}

// EntryFunc resolves a function by name.
func (e *Executable) EntryFunc(name string) (int, error) {
	idx, ok := e.FuncIndex[name]
	if !ok {
		return 0, fmt.Errorf("vm: executable has no function %q", name)
	}
	return idx, nil
}

// Disassemble renders the bytecode of all functions.
func (e *Executable) Disassemble() string {
	out := ""
	for _, f := range e.Funcs {
		out += fmt.Sprintf("func %s(params=%d, regs=%d):\n", f.Name, f.NumParams, f.RegCount)
		for i := f.Start; i < f.Start+f.Len; i++ {
			out += fmt.Sprintf("  %4d: %s\n", i-f.Start, e.Code[i])
		}
	}
	return out
}
