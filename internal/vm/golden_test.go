package vm_test

// Serialization conformance over the paper's three dynamic models. Two
// properties are pinned:
//
//  1. Round-trip fidelity: serialize → deserialize → re-serialize is
//     byte-identical, and the relinked executable computes the same
//     outputs as the original.
//  2. Format stability: the serialized bytes of a fixed-seed compile hash
//     to a checked-in golden value, so any change to the compiler
//     pipeline's output or the wire format shows up as an explicit diff
//     of this file rather than a silent drift. (This also pins compile
//     determinism itself — the memory planner once emitted kills in map
//     order, which made executables differ run over run.)
//
// If a change intentionally alters the format or compile output: bump the
// serialize version if the wire format changed, rerun with
// -run TestSerializeGolden -v to print the new hashes, and update the
// table in the same commit.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"math/rand"
	"testing"

	"nimble/internal/compiler"
	"nimble/internal/models"
	"nimble/internal/vm"
)

type goldenModel struct {
	name string
	hash string
	// entry is the invoked function; empty means "main".
	entry string
	// build compiles a fresh module (compilation mutates modules, so each
	// call constructs anew) and returns entry arguments for the output
	// comparison.
	build func(t *testing.T) (*compiler.Result, []vm.Object)
}

func goldenModels() []goldenModel {
	return []goldenModel{
		{
			name: "lstm",
			hash: "8262bc2833556cff67ced2f86afa3b951e8566fc6953053bd3f228f7ee321b79",
			build: func(t *testing.T) (*compiler.Result, []vm.Object) {
				m := models.NewLSTM(models.LSTMConfig{Input: 16, Hidden: 24, Layers: 2, Seed: 42})
				res, err := compiler.Compile(m.Module, compiler.Options{})
				if err != nil {
					t.Fatal(err)
				}
				seq := m.RandomSequence(rand.New(rand.NewSource(1)), 5)
				return res, []vm.Object{seq}
			},
		},
		{
			name: "treelstm",
			hash: "a8c68f32e142c305c060ddf47b84ed69546ae89e9a69859ce9d2c15124658377",
			build: func(t *testing.T) (*compiler.Result, []vm.Object) {
				m := models.NewTreeLSTM(models.TreeLSTMConfig{Input: 12, Hidden: 10, Seed: 43})
				res, err := compiler.Compile(m.Module, compiler.Options{})
				if err != nil {
					t.Fatal(err)
				}
				tree := models.RandomTree(rand.New(rand.NewSource(2)), 6, 12)
				return res, []vm.Object{m.ToObject(tree)}
			},
		},
		{
			name: "bert",
			hash: "e30de4e3bbc262b07e076adc028052df454b65cc6632c9f01297d07e55dae41c",
			build: func(t *testing.T) (*compiler.Result, []vm.Object) {
				m := models.NewBERT(models.BERTConfig{Layers: 1, Hidden: 32, Heads: 2, FFN: 64, Vocab: 128, MaxSeq: 32, Seed: 44})
				res, err := compiler.Compile(m.Module, compiler.Options{})
				if err != nil {
					t.Fatal(err)
				}
				ids := m.RandomIDs(rand.New(rand.NewSource(3)), 7)
				return res, []vm.Object{vm.NewTensorObj(ids)}
			},
		},
		{
			name:  "decoder",
			hash:  "96b80cfeb834a7483d7f326b9a6bc1939bde42d6b4e3e19dbce64b99c0d91745",
			entry: "generate",
			build: func(t *testing.T) (*compiler.Result, []vm.Object) {
				m := models.NewDecoder(models.DefaultDecoderConfig())
				res, err := compiler.Compile(m.Module, compiler.Options{})
				if err != nil {
					t.Fatal(err)
				}
				return res, []vm.Object{vm.NewTensorObj(models.StartToken(9))}
			},
		},
	}
}

func serializeBytes(t *testing.T, e *vm.Executable) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := e.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSerializeGolden(t *testing.T) {
	for _, gm := range goldenModels() {
		gm := gm
		t.Run(gm.name, func(t *testing.T) {
			res, args := gm.build(t)
			raw := serializeBytes(t, res.Exe)

			sum := sha256.Sum256(raw)
			got := hex.EncodeToString(sum[:])
			t.Logf("%s: %d bytes, sha256 %s", gm.name, len(raw), got)
			if got != gm.hash {
				t.Errorf("%s: serialized executable hash drifted:\n  got  %s\n  want %s\n"+
					"either the wire format or the compiler's output changed; if intentional, update the golden table",
					gm.name, got, gm.hash)
			}

			// A second fresh compile must serialize identically: compile
			// determinism is a precondition for the golden hash to mean
			// anything.
			res2, _ := gm.build(t)
			if !bytes.Equal(raw, serializeBytes(t, res2.Exe)) {
				t.Errorf("%s: two fresh compiles serialize differently (nondeterministic pipeline)", gm.name)
			}

			// Round trip: deserialize, re-serialize byte-identically.
			back, err := vm.ReadExecutable(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(raw, serializeBytes(t, back)) {
				t.Errorf("%s: re-serialization after round trip is not byte-identical", gm.name)
			}

			// Relink and compare outputs against the original executable.
			if err := back.LinkKernels(res.Registry); err != nil {
				t.Fatal(err)
			}
			entry := gm.entry
			if entry == "" {
				entry = "main"
			}
			origOut, err := vm.New(res.Exe).Invoke(entry, args...)
			if err != nil {
				t.Fatal(err)
			}
			backOut, err := vm.New(back).Invoke(entry, args...)
			if err != nil {
				t.Fatal(err)
			}
			want := origOut.(*vm.TensorObj).T
			gotT := backOut.(*vm.TensorObj).T
			if !gotT.Equal(want) {
				t.Errorf("%s: deserialized executable computes different outputs", gm.name)
			}
		})
	}
}
